package main

import "testing"

func TestBuildBenchmark(t *testing.T) {
	c, err := build("c3540", 16, false, "", 0, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumLogicGates() != 1669/16 {
		t.Errorf("gates = %d", c.NumLogicGates())
	}
}

func TestBuildC17(t *testing.T) {
	c, err := build("c17", 1, false, "", 0, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumLogicGates() != 6 {
		t.Errorf("c17 gates = %d", c.NumLogicGates())
	}
}

func TestBuildRandom(t *testing.T) {
	c, err := build("", 1, true, "r", 12, 80, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Summary()
	if s.Inputs != 12 || s.Gates != 80 || s.Outputs != 6 {
		t.Errorf("summary = %+v", s)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := build("", 1, false, "", 0, 0, 0, 1); err == nil {
		t.Error("want error without -benchmark or -random")
	}
	if _, err := build("nope", 1, false, "", 0, 0, 0, 1); err == nil {
		t.Error("want error for unknown benchmark")
	}
}
