// benchgen emits benchmark circuits in .bench format: the real c17,
// synthetic Table I stand-ins, or arbitrary random circuits.
//
// Usage:
//
//	benchgen -benchmark c3540 -scale 8 > c3540_s8.bench
//	benchgen -random -inputs 64 -gates 2000 -outputs 32 -seed 7
//	benchgen -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"statsat/internal/circuit"
	"statsat/internal/gen"
	"statsat/internal/netio"
)

func main() {
	var (
		benchmark = flag.String("benchmark", "", "Table I benchmark name (or c17)")
		scale     = flag.Int("scale", 1, "gate-count divisor for -benchmark")
		random    = flag.Bool("random", false, "generate a random circuit instead")
		inputs    = flag.Int("inputs", 32, "random circuit: primary inputs")
		gates     = flag.Int("gates", 500, "random circuit: logic gates")
		outputs   = flag.Int("outputs", 16, "random circuit: primary outputs")
		name      = flag.String("name", "random", "random circuit name")
		seed      = flag.Int64("seed", 1, "PRNG seed")
		list      = flag.Bool("list", false, "list available benchmarks and exit")
		out       = flag.String("out", "", "output path (default stdout)")
		format    = flag.String("format", "", "force netlist format: bench | verilog (default: by extension)")
	)
	flag.Parse()
	forced, err := netio.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}

	if *list {
		fmt.Printf("%-10s %-9s %8s %8s %8s\n", "Name", "Source", "Inputs", "Gates", "Outputs")
		for _, b := range gen.TableI {
			fmt.Printf("%-10s %-9s %8d %8d %8d\n", b.Name, b.Source, b.Inputs, b.Gates, b.Outputs)
		}
		for _, b := range gen.Extra {
			fmt.Printf("%-10s %-9s %8d %8d %8d\n", b.Name, b.Source, b.Inputs, b.Gates, b.Outputs)
		}
		fmt.Printf("%-10s %-9s %8d %8d %8d\n", "c17", "ISCAS85", 5, 6, 2)
		return
	}

	// Ctrl-C / SIGTERM during generation aborts before the netlist is
	// written, so -out never receives a truncated artifact.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	c, err := build(*benchmark, *scale, *random, *name, *inputs, *gates, *outputs, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "benchgen: interrupted")
		os.Exit(1)
	}
	if *out != "" {
		err = netio.WriteFile(*out, c, forced)
	} else {
		err = netio.Write(os.Stdout, c, forced)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func build(benchmark string, scale int, random bool, name string, in, gates, out int, seed int64) (*circuit.Circuit, error) {
	switch {
	case random:
		return gen.Random(name, in, gates, out, seed), nil
	case benchmark == "c17":
		return gen.C17(), nil
	case benchmark != "":
		bm, ok := gen.ByName(benchmark)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q (try -list)", benchmark)
		}
		return bm.BuildScaled(scale), nil
	}
	return nil, fmt.Errorf("need -benchmark or -random")
}
