package main

import (
	"strings"
	"testing"
)

func baseline(entries ...[3]interface{}) baselineFile {
	var b baselineFile
	b.Recorded = "2026-01-01"
	for _, e := range entries {
		b.Benchmarks = append(b.Benchmarks, struct {
			Name        string  `json:"name"`
			NsPerOp     float64 `json:"ns_per_op"`
			AllocsPerOp float64 `json:"allocs_per_op"`
		}{e[0].(string), e[1].(float64), e[2].(float64)})
	}
	return b
}

func TestParseBench(t *testing.T) {
	out := `goos: linux
BenchmarkTableII_Parallel-8   	       1	 123456789 ns/op	  500000 B/op	    1200 allocs/op
BenchmarkSignalProbs   	     100	   1000000 ns/op	     320 B/op	       2 allocs/op
BenchmarkNoAllocs-16   	      50	   2000000 ns/op
PASS
`
	res, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	// -GOMAXPROCS suffix must be stripped.
	r, ok := res["BenchmarkTableII_Parallel"]
	if !ok || !r.hasAllocs || r.allocsPerOp != 1200 || r.nsPerOp != 123456789 {
		t.Errorf("BenchmarkTableII_Parallel = %+v, ok=%v", r, ok)
	}
	// Un-suffixed names parse too.
	if r := res["BenchmarkSignalProbs"]; !r.hasAllocs || r.allocsPerOp != 2 {
		t.Errorf("BenchmarkSignalProbs = %+v", r)
	}
	// ns-only lines are kept but marked alloc-less.
	if r := res["BenchmarkNoAllocs"]; r.hasAllocs || r.nsPerOp != 2000000 {
		t.Errorf("BenchmarkNoAllocs = %+v", r)
	}
}

func TestDiffRegression(t *testing.T) {
	base := baseline([3]interface{}{"BenchmarkHot", 1000.0, 100.0})
	cur := map[string]result{"BenchmarkHot": {nsPerOp: 1100, allocsPerOp: 150, hasAllocs: true}}
	rep := diffBenchmarks(base, cur, 20)
	if rep.warnings != 1 {
		t.Fatalf("warnings = %d, want 1", rep.warnings)
	}
	if rep.rows[0].state != rowWarn || rep.rows[0].deltaAllocs != 50 {
		t.Errorf("row = %+v, want rowWarn with +50%%", rep.rows[0])
	}
	var sb strings.Builder
	rep.write(&sb, "BENCH_baseline.json", base.Recorded, 20)
	if !strings.Contains(sb.String(), "WARNING: 1 benchmark(s) regressed") {
		t.Errorf("report missing warning banner:\n%s", sb.String())
	}
}

func TestDiffImprovementAndWithinThreshold(t *testing.T) {
	base := baseline(
		[3]interface{}{"BenchmarkBetter", 1000.0, 100.0},
		[3]interface{}{"BenchmarkSame", 1000.0, 100.0},
	)
	cur := map[string]result{
		"BenchmarkBetter": {nsPerOp: 900, allocsPerOp: 40, hasAllocs: true},   // -60%: improvement
		"BenchmarkSame":   {nsPerOp: 1000, allocsPerOp: 110, hasAllocs: true}, // +10%: inside threshold
	}
	rep := diffBenchmarks(base, cur, 20)
	if rep.warnings != 0 {
		t.Fatalf("warnings = %d, want 0 (improvements must not warn)", rep.warnings)
	}
	for _, r := range rep.rows {
		if r.state != rowOK {
			t.Errorf("row %s state = %v, want rowOK", r.name, r.state)
		}
	}
	var sb strings.Builder
	rep.write(&sb, "b.json", base.Recorded, 20)
	if !strings.Contains(sb.String(), "within threshold for all recorded") {
		t.Errorf("report missing all-clear line:\n%s", sb.String())
	}
}

func TestDiffMissingAndNewBenchmarks(t *testing.T) {
	base := baseline([3]interface{}{"BenchmarkGone", 1000.0, 100.0})
	cur := map[string]result{
		"BenchmarkFresh":  {nsPerOp: 500, allocsPerOp: 7, hasAllocs: true},
		"BenchmarkNsOnly": {nsPerOp: 500}, // no -benchmem data: ignored entirely
	}
	rep := diffBenchmarks(base, cur, 20)
	if rep.warnings != 0 {
		t.Fatalf("warnings = %d, want 0 (a missing benchmark is not a regression)", rep.warnings)
	}
	if len(rep.rows) != 2 {
		t.Fatalf("rows = %+v, want missing + new", rep.rows)
	}
	if rep.rows[0].name != "BenchmarkGone" || rep.rows[0].state != rowMissing {
		t.Errorf("row 0 = %+v, want BenchmarkGone missing", rep.rows[0])
	}
	if rep.rows[1].name != "BenchmarkFresh" || rep.rows[1].state != rowNew {
		t.Errorf("row 1 = %+v, want BenchmarkFresh new", rep.rows[1])
	}
	var sb strings.Builder
	rep.write(&sb, "b.json", base.Recorded, 20)
	if !strings.Contains(sb.String(), "(not run)") || !strings.Contains(sb.String(), "(new; no baseline)") {
		t.Errorf("report missing the missing/new markers:\n%s", sb.String())
	}
}

func TestDiffThresholdBoundary(t *testing.T) {
	base := baseline([3]interface{}{"BenchmarkEdge", 1000.0, 100.0})
	// Exactly at the threshold: not a warning (strictly-greater rule).
	cur := map[string]result{"BenchmarkEdge": {nsPerOp: 1000, allocsPerOp: 120, hasAllocs: true}}
	if rep := diffBenchmarks(base, cur, 20); rep.warnings != 0 {
		t.Errorf("exactly-at-threshold warned: %+v", rep.rows[0])
	}
	cur["BenchmarkEdge"] = result{nsPerOp: 1000, allocsPerOp: 121, hasAllocs: true}
	if rep := diffBenchmarks(base, cur, 20); rep.warnings != 1 {
		t.Errorf("past-threshold did not warn: %+v", rep.rows[0])
	}
}

func TestDiffZeroAllocBaseline(t *testing.T) {
	// A zero-alloc baseline cannot express a percentage; pctDelta
	// defines it as 0 so it never warns spuriously.
	base := baseline([3]interface{}{"BenchmarkZero", 1000.0, 0.0})
	cur := map[string]result{"BenchmarkZero": {nsPerOp: 1000, allocsPerOp: 3, hasAllocs: true}}
	if rep := diffBenchmarks(base, cur, 20); rep.warnings != 0 {
		t.Errorf("zero-alloc baseline warned: %+v", rep.rows[0])
	}
}
