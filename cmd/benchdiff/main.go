// benchdiff compares a `go test -bench` run against a recorded
// baseline (BENCH_baseline.json) and warns — loudly, but by default
// without failing — when allocs/op regress beyond a threshold.
// Wall-clock numbers are reported for context only: single-shot
// -benchtime=1x timings carry 10-20% noise, but allocation counts are
// deterministic and a sustained jump means a scratch-reuse contract
// got dropped.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x -benchmem . | tee bench.out
//	go run ./cmd/benchdiff -baseline BENCH_baseline.json bench.out
//
// With no file argument, benchdiff reads the benchmark output from
// stdin. In the default warn mode the exit code is always 0: the diff
// is a review aid, and CI greps the printed WARNING lines. Pass -fail
// to turn an allocs/op regression into exit code 1 (strict mode).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
)

type baselineFile struct {
	Recorded   string `json:"recorded"`
	Benchmarks []struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

type result struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
}

// parseBench extracts per-benchmark results from `go test -bench`
// output. Benchmark names are normalised by stripping the -GOMAXPROCS
// suffix so they match the baseline's records.
func parseBench(r io.Reader) (map[string]result, error) {
	out := map[string]result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		res := out[name]
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.nsPerOp = v
			case "allocs/op":
				res.allocsPerOp = v
				res.hasAllocs = true
			}
		}
		out[name] = res
	}
	return out, sc.Err()
}

// rowState classifies one benchmark's fate in the diff.
type rowState int

const (
	rowOK      rowState = iota // present in both, within threshold
	rowWarn                    // allocs/op regressed beyond threshold
	rowMissing                 // in the baseline, absent from this run
	rowNew                     // in this run, absent from the baseline
)

// diffRow is one benchmark's comparison against the baseline.
type diffRow struct {
	name        string
	baseAllocs  float64
	curAllocs   float64
	deltaAllocs float64 // percent
	deltaNs     float64 // percent; noisy, context only
	state       rowState
}

// diffReport is the full comparison, baseline order first, then new
// benchmarks sorted by name.
type diffReport struct {
	rows     []diffRow
	warnings int
}

// diffBenchmarks compares the current results against the baseline.
// A positive allocs/op delta beyond threshold (percent) marks the row
// rowWarn; improvements and within-threshold changes are rowOK.
// Baseline entries missing from cur become rowMissing (never a
// warning: partial runs are a deliberate local workflow), and current
// results without a baseline record become rowNew.
func diffBenchmarks(base baselineFile, cur map[string]result, threshold float64) diffReport {
	var rep diffReport
	for _, b := range base.Benchmarks {
		c, ok := cur[b.Name]
		if !ok || !c.hasAllocs {
			rep.rows = append(rep.rows, diffRow{name: b.Name, baseAllocs: b.AllocsPerOp, state: rowMissing})
			continue
		}
		row := diffRow{
			name:        b.Name,
			baseAllocs:  b.AllocsPerOp,
			curAllocs:   c.allocsPerOp,
			deltaAllocs: pctDelta(b.AllocsPerOp, c.allocsPerOp),
			deltaNs:     pctDelta(b.NsPerOp, c.nsPerOp),
		}
		if row.deltaAllocs > threshold {
			row.state = rowWarn
			rep.warnings++
		}
		rep.rows = append(rep.rows, row)
	}
	known := map[string]bool{}
	for _, b := range base.Benchmarks {
		known[b.Name] = true
	}
	var extra []diffRow
	for name, c := range cur {
		if !known[name] && c.hasAllocs {
			extra = append(extra, diffRow{name: name, curAllocs: c.allocsPerOp, state: rowNew})
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i].name < extra[j].name })
	rep.rows = append(rep.rows, extra...)
	return rep
}

// write renders the report in the stable text format CI logs grep.
func (rep diffReport) write(w io.Writer, baselinePath, recorded string, threshold float64) {
	fmt.Fprintf(w, "benchdiff vs %s (recorded %s); allocs/op warn threshold %+.0f%%\n",
		baselinePath, recorded, threshold)
	fmt.Fprintf(w, "%-28s %14s %14s %8s   %s\n", "benchmark", "base allocs", "now allocs", "Δ%", "time Δ% (noisy)")
	for _, r := range rep.rows {
		switch r.state {
		case rowMissing:
			fmt.Fprintf(w, "%-28s %14.0f %14s\n", r.name, r.baseAllocs, "(not run)")
		case rowNew:
			fmt.Fprintf(w, "%-28s %14s %14.0f    (new; no baseline)\n", r.name, "-", r.curAllocs)
		default:
			warn := ""
			if r.state == rowWarn {
				warn = "  <-- WARNING: allocs/op regressed"
			}
			fmt.Fprintf(w, "%-28s %14.0f %14.0f %+7.1f%%   %+7.1f%%%s\n",
				r.name, r.baseAllocs, r.curAllocs, r.deltaAllocs, r.deltaNs, warn)
		}
	}
	if rep.warnings > 0 {
		fmt.Fprintf(w, "\n*** WARNING: %d benchmark(s) regressed allocs/op by more than %.0f%% ***\n", rep.warnings, threshold)
		fmt.Fprintln(w, "*** Allocation counts are deterministic — this is a real regression, not noise.")
		fmt.Fprintln(w, "*** Check the scratch-reuse contracts in docs/PERFORMANCE.md before shipping,")
		fmt.Fprintln(w, "*** or re-record the baseline if the extra allocations are intended.")
	} else {
		fmt.Fprintln(w, "\nallocs/op within threshold for all recorded benchmarks.")
	}
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline JSON to diff against")
	threshold := flag.Float64("threshold", 20, "allocs/op regression percentage that triggers a warning")
	failOnWarn := flag.Bool("fail", false, "exit 1 when any benchmark regresses allocs/op (strict mode)")
	flag.Parse()
	// Ctrl-C / SIGTERM (e.g. while blocked reading stdin from a piped
	// bench run) aborts before the report is written.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: parse %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	cur, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: read bench output: %v\n", err)
		os.Exit(2)
	}

	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: interrupted")
		os.Exit(2)
	}
	rep := diffBenchmarks(base, cur, *threshold)
	rep.write(os.Stdout, *baselinePath, base.Recorded, *threshold)
	if *failOnWarn && rep.warnings > 0 {
		os.Exit(1)
	}
}

func pctDelta(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}
