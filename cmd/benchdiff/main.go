// benchdiff compares a `go test -bench` run against a recorded
// baseline (BENCH_baseline.json) and warns — loudly, but without
// failing — when allocs/op regress beyond a threshold. Wall-clock
// numbers are reported for context only: single-shot -benchtime=1x
// timings carry 10-20% noise, but allocation counts are deterministic
// and a sustained jump means a scratch-reuse contract got dropped.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x -benchmem . | tee bench.out
//	go run ./cmd/benchdiff -baseline BENCH_baseline.json bench.out
//
// With no file argument, benchdiff reads the benchmark output from
// stdin. The exit code is always 0: the diff is a review aid, not a
// gate (use the printed WARNING lines in CI logs).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type baselineFile struct {
	Recorded   string `json:"recorded"`
	Benchmarks []struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

type result struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
}

// parseBench extracts per-benchmark results from `go test -bench`
// output. Benchmark names are normalised by stripping the -GOMAXPROCS
// suffix so they match the baseline's records.
func parseBench(r io.Reader) (map[string]result, error) {
	out := map[string]result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		res := out[name]
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.nsPerOp = v
			case "allocs/op":
				res.allocsPerOp = v
				res.hasAllocs = true
			}
		}
		out[name] = res
	}
	return out, sc.Err()
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline JSON to diff against")
	threshold := flag.Float64("threshold", 20, "allocs/op regression percentage that triggers a warning")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: parse %s: %v\n", *baselinePath, err)
		os.Exit(1)
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	cur, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: read bench output: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("benchdiff vs %s (recorded %s); allocs/op warn threshold %+.0f%%\n",
		*baselinePath, base.Recorded, *threshold)
	fmt.Printf("%-28s %14s %14s %8s   %s\n", "benchmark", "base allocs", "now allocs", "Δ%", "time Δ% (noisy)")
	warnings := 0
	for _, b := range base.Benchmarks {
		c, ok := cur[b.Name]
		if !ok || !c.hasAllocs {
			fmt.Printf("%-28s %14.0f %14s\n", b.Name, b.AllocsPerOp, "(not run)")
			continue
		}
		dAlloc := pctDelta(b.AllocsPerOp, c.allocsPerOp)
		dNs := pctDelta(b.NsPerOp, c.nsPerOp)
		warn := ""
		if dAlloc > *threshold {
			warn = "  <-- WARNING: allocs/op regressed"
			warnings++
		}
		fmt.Printf("%-28s %14.0f %14.0f %+7.1f%%   %+7.1f%%%s\n",
			b.Name, b.AllocsPerOp, c.allocsPerOp, dAlloc, dNs, warn)
	}
	for name, c := range cur {
		if !known(base, name) && c.hasAllocs {
			fmt.Printf("%-28s %14s %14.0f    (new; no baseline)\n", name, "-", c.allocsPerOp)
		}
	}
	if warnings > 0 {
		fmt.Printf("\n*** WARNING: %d benchmark(s) regressed allocs/op by more than %.0f%% ***\n", warnings, *threshold)
		fmt.Println("*** Allocation counts are deterministic — this is a real regression, not noise.")
		fmt.Println("*** Check the scratch-reuse contracts in docs/PERFORMANCE.md before shipping,")
		fmt.Println("*** or re-record the baseline if the extra allocations are intended.")
	} else {
		fmt.Println("\nallocs/op within threshold for all recorded benchmarks.")
	}
}

func pctDelta(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}

func known(base baselineFile, name string) bool {
	for _, b := range base.Benchmarks {
		if b.Name == name {
			return true
		}
	}
	return false
}
