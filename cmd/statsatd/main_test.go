package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe writer the daemon's stdout lands in.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenLine = regexp.MustCompile(`listening on (http://[^\s]+)`)

// startDaemon runs the daemon on an ephemeral port and returns its
// base URL, a cancel func triggering graceful shutdown, and the exit
// code channel.
func startDaemon(t *testing.T, extraArgs ...string) (string, context.CancelFunc, <-chan int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	args := append([]string{"-addr", "127.0.0.1:0", "-q"}, extraArgs...)
	code := make(chan int, 1)
	go func() { code <- run(ctx, args, stdout, stderr) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenLine.FindStringSubmatch(stdout.String()); m != nil {
			return m[1], cancel, code
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never printed its address; stderr: %s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDaemonServesAndDrains(t *testing.T) {
	base, cancel, code := startDaemon(t, "-workers", "2")

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Workers != 2 {
		t.Fatalf("healthz = %+v", health)
	}

	// Submit a quick job end-to-end through the real HTTP stack.
	spec := `{"attack":"sat","benchmark":"c17","key_bits":4,"options":{"max_iter":500}}`
	presp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var reply struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(presp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusAccepted || reply.ID == "" {
		t.Fatalf("submit = %s id=%q", presp.Status, reply.ID)
	}
	// Poll until the job settles.
	deadline := time.Now().Add(30 * time.Second)
	for {
		sresp, err := http.Get(base + "/v1/jobs/" + reply.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State string `json:"state"`
		}
		if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		sresp.Body.Close()
		if st.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Graceful drain exits 0.
	cancel()
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("exit code = %d, want 0", c)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after cancel")
	}
}

func TestDaemonFlagErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errb syncBuffer
	if c := run(ctx, []string{"-no-such-flag"}, &out, &errb); c != 2 {
		t.Errorf("unknown flag exit = %d, want 2", c)
	}
	if c := run(ctx, []string{"positional"}, &out, &errb); c != 2 {
		t.Errorf("positional arg exit = %d, want 2", c)
	}
	if c := run(ctx, []string{"-addr", "256.256.256.256:bad"}, &out, &errb); c != 1 {
		t.Errorf("bad addr exit = %d, want 1", c)
	}
}
