// statsatd is the attack-as-a-service daemon: it accepts attack jobs
// over a small REST API (POST /v1/jobs), runs them on a bounded worker
// pool, and exposes live status, an NDJSON trace stream and results
// per job. See docs/SERVER.md for the API and cmd/statsat -server for
// the companion client mode.
//
// Usage:
//
//	statsatd -addr 127.0.0.1:9355 -workers 4
//
// SIGINT/SIGTERM triggers a graceful drain: submissions are refused,
// every queued or running job is cancelled (each flushes an
// `interrupted` trace event and keeps its best-effort partial result),
// and the process exits once the pool is idle or the -drain budget
// runs out.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"statsat/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run carries the whole daemon so tests can drive it with their own
// context, flags and pipes (and so deferred cleanup survives the error
// paths). The listener binds before the "listening" line prints, so a
// -addr with port 0 is usable: parse the printed address.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("statsatd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:9355", "listen address (host:port; port 0 picks a free port)")
		workers  = fs.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
		maxJobs  = fs.Int("maxjobs", 256, "retained jobs before oldest finished jobs are evicted")
		queue    = fs.Int("queue", 0, "queued-job bound (0 = 2*maxjobs)")
		maxBody  = fs.Int64("maxbody", 8<<20, "POST body size limit in bytes (netlist uploads included)")
		traceBuf = fs.Int("tracebuf", 0, "per-job trace replay ring capacity in events (0 = 4096)")
		dataDir  = fs.String("data", "", "durable job directory: WAL + trace spill; jobs survive and resume across restarts (empty = in-memory)")
		drain    = fs.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
		quiet    = fs.Bool("q", false, "suppress per-job lifecycle logging")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "statsatd: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	cfg := server.Config{
		Workers:      *workers,
		MaxJobs:      *maxJobs,
		QueueDepth:   *queue,
		MaxBodyBytes: *maxBody,
		TraceBuffer:  *traceBuf,
		DataDir:      *dataDir,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...interface{}) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "statsatd:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "statsatd:", err)
		return 1
	}
	srv.Start(ctx)
	fmt.Fprintf(stdout, "statsatd listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintln(stderr, "statsatd:", err)
		srv.Shutdown(context.WithoutCancel(ctx))
		return 1
	}

	// Drain: cancel the jobs first so live trace streams close and
	// their handlers return, then let the HTTP server finish in-flight
	// responses. The budget context must not inherit ctx's cancellation
	// — ctx is already done; that is why we are draining.
	fmt.Fprintln(stdout, "statsatd: signal received, draining")
	dctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), *drain)
	defer cancel()
	code := 0
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(stderr, "statsatd:", err)
		code = 1
	}
	if err := hs.Shutdown(dctx); err != nil {
		fmt.Fprintln(stderr, "statsatd:", err)
		code = 1
	}
	return code
}
