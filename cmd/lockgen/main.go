// lockgen locks a combinational .bench netlist with RLL, SLL or
// SFLL-HD and writes the locked netlist plus its correct key.
//
// Usage:
//
//	lockgen -in c432.bench -tech sfll -keys 16 -h 0 -seed 1 \
//	        -out c432_locked.bench -keyout c432.key
//
// With -benchmark <name> a synthetic Table I stand-in is used instead
// of -in (e.g. -benchmark c3540 -scale 8).
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"

	"statsat/internal/circuit"
	"statsat/internal/gen"
	"statsat/internal/lock"
	"statsat/internal/netio"
)

func main() {
	var (
		in        = flag.String("in", "", "input netlist (.bench or structural .v, unlocked)")
		benchmark = flag.String("benchmark", "", "synthetic Table I benchmark name instead of -in")
		scale     = flag.Int("scale", 1, "gate-count divisor for -benchmark")
		tech      = flag.String("tech", "rll", "locking technique: rll | rll-deep | sll | sfll | antisat | sarlock")
		keys      = flag.Int("keys", 16, "key width in bits")
		hDist     = flag.Int("h", 0, "SFLL-HD Hamming distance h")
		seed      = flag.Int64("seed", 1, "PRNG seed")
		out       = flag.String("out", "", "output netlist path (default stdout, bench format)")
		format    = flag.String("format", "", "force netlist format: bench | verilog (default: by extension)")
		keyOut    = flag.String("keyout", "", "write the correct key (as 0/1 string) to this file")
		simplify  = flag.Bool("simplify", false, "run the clean-up/resynthesis pass on the locked netlist")
	)
	flag.Parse()
	// Ctrl-C / SIGTERM during locking/simplification aborts before the
	// netlist or key file is written, so neither artifact is truncated.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	forced, err := netio.ParseFormat(*format)
	if err != nil {
		fatal(err)
	}

	orig, err := loadCircuit(*in, *benchmark, *scale, forced)
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	var locked *lock.Locked
	switch *tech {
	case "rll":
		locked, err = lock.RLL(orig, *keys, rng)
	case "rll-deep":
		locked, err = lock.RLLDeep(orig, *keys, rng)
	case "sll":
		locked, err = lock.SLL(orig, *keys, rng)
	case "sfll":
		locked, err = lock.SFLLHD(orig, *keys, *hDist, rng)
	case "antisat":
		locked, err = lock.AntiSAT(orig, *keys, rng)
	case "sarlock":
		locked, err = lock.SARLock(orig, *keys, rng)
	default:
		fatal(fmt.Errorf("unknown technique %q (want rll, rll-deep, sll, sfll, antisat or sarlock)", *tech))
	}
	if err != nil {
		fatal(err)
	}
	if *simplify {
		s, err := circuit.Simplify(locked.Circuit)
		if err != nil {
			fatal(err)
		}
		locked.Circuit = s
	}

	if ctx.Err() != nil {
		fatal(fmt.Errorf("interrupted"))
	}
	if *out != "" {
		if err := netio.WriteFile(*out, locked.Circuit, forced); err != nil {
			fatal(err)
		}
	} else if err := netio.Write(os.Stdout, locked.Circuit, forced); err != nil {
		fatal(err)
	}
	keyStr := formatKey(locked.Key)
	if *keyOut != "" {
		if err := os.WriteFile(*keyOut, []byte(keyStr+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	cost := locked.CostVersus(orig)
	fmt.Fprintf(os.Stderr, "locked %s with %s, %d key bits; key=%s\n",
		orig.Name, locked.Technique, len(locked.Key), keyStr)
	fmt.Fprintf(os.Stderr, "overhead: %d -> %d gates (+%d, %.1f%%)\n",
		cost.OrigGates, cost.LockedGates, cost.ExtraGates, cost.GatePercent)
}

func loadCircuit(in, benchmark string, scale int, forced netio.Format) (*circuit.Circuit, error) {
	switch {
	case in != "" && benchmark != "":
		return nil, fmt.Errorf("lockgen: -in and -benchmark are mutually exclusive")
	case in != "":
		return netio.ReadFile(in, forced)
	case benchmark == "c17":
		return gen.C17(), nil
	case benchmark != "":
		bm, ok := gen.ByName(benchmark)
		if !ok {
			return nil, fmt.Errorf("lockgen: unknown benchmark %q", benchmark)
		}
		return bm.BuildScaled(scale), nil
	}
	return nil, fmt.Errorf("lockgen: need -in or -benchmark")
}

func formatKey(key []bool) string {
	b := make([]byte, len(key))
	for i, v := range key {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lockgen:", err)
	os.Exit(1)
}
