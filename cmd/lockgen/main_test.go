package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadCircuitFromBenchmark(t *testing.T) {
	c, err := loadCircuit("", "c880", 8, "")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumPIs() == 0 || c.NumLogicGates() == 0 {
		t.Error("empty benchmark circuit")
	}
}

func TestLoadCircuitC17(t *testing.T) {
	c, err := loadCircuit("", "c17", 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumLogicGates() != 6 {
		t.Errorf("c17 gates = %d", c.NumLogicGates())
	}
}

func TestLoadCircuitFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.bench")
	src := "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := loadCircuit(path, "", 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumLogicGates() != 1 {
		t.Error("parse failed")
	}
}

func TestLoadCircuitErrors(t *testing.T) {
	if _, err := loadCircuit("", "", 1, ""); err == nil {
		t.Error("want error when neither -in nor -benchmark given")
	}
	if _, err := loadCircuit("x.bench", "c17", 1, ""); err == nil {
		t.Error("want error when both given")
	}
	if _, err := loadCircuit("", "unknown", 1, ""); err == nil {
		t.Error("want error for unknown benchmark")
	}
	if _, err := loadCircuit("/nonexistent.bench", "", 1, ""); err == nil {
		t.Error("want error for missing file")
	}
}

func TestFormatKey(t *testing.T) {
	if got := formatKey([]bool{false, true, true}); got != "011" {
		t.Errorf("formatKey = %q", got)
	}
}
