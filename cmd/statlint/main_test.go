package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestBadFixtureExitsNonzero: the driver must exit 1 with a correctly
// formatted, correctly attributed finding for each check's bad
// fixture.
func TestBadFixtureExitsNonzero(t *testing.T) {
	findingLine := regexp.MustCompile(`(?m)^\S*fixture\.go:\d+:\d+: \[\w+\] .+$`)
	for _, check := range []string{"globalrand", "walltime", "bufretain", "tracegate", "floateq", "goleak", "lockscope", "seedflow"} {
		t.Run(check, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(context.Background(), []string{"../../internal/lint/testdata/" + check}, &stdout, &stderr)
			if code != 1 {
				t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
			}
			if !strings.Contains(stdout.String(), "["+check+"] ") {
				t.Errorf("output has no [%s] finding:\n%s", check, stdout.String())
			}
			if !findingLine.MatchString(stdout.String()) {
				t.Errorf("output does not match file:line:col: [check] message format:\n%s", stdout.String())
			}
		})
	}
}

// TestCleanFixtureExitsZero: no findings, no output, exit 0.
func TestCleanFixtureExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"../../internal/lint/testdata/clean"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", stdout.String())
	}
}

// TestListCatalogue: -list names every shipped check.
func TestListCatalogue(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, check := range []string{"globalrand", "walltime", "bufretain", "tracegate", "floateq", "ctxflow", "goleak", "lockscope", "seedflow", "doclinks"} {
		if !strings.Contains(stdout.String(), check) {
			t.Errorf("-list output missing %s:\n%s", check, stdout.String())
		}
	}
}

// TestCatalogueDrift: the `### `name“ headings of docs/LINTING.md's
// check catalogue and the -list output must name exactly the same
// checks, so the documentation cannot silently fall behind the code
// (or keep advertising a removed check).
func TestCatalogueDrift(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	listed := map[string]bool{}
	for _, line := range strings.Split(stdout.String(), "\n") {
		if f := strings.Fields(line); len(f) > 0 {
			listed[f[0]] = true
		}
	}
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "LINTING.md"))
	if err != nil {
		t.Fatal(err)
	}
	documented := map[string]bool{}
	for _, m := range regexp.MustCompile("(?m)^### `([a-z]+)`").FindAllStringSubmatch(string(data), -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("docs/LINTING.md has no `### `name`` catalogue headings; the drift gate is parsing nothing")
	}
	for name := range listed {
		if !documented[name] {
			t.Errorf("check %q is in -list but docs/LINTING.md has no `### %s` section", name, name)
		}
	}
	for name := range documented {
		if !listed[name] {
			t.Errorf("docs/LINTING.md documents %q but -list does not ship it (stale heading after a rename?)", name)
		}
	}
}

// TestSuppressionsMode: the inventory lists file:line/check/reason and
// gates on malformed or stale directives. The clean fixture has none;
// the suppress fixture deliberately contains a malformed directive, so
// the mode must exit 1 and say why on stderr.
func TestSuppressionsMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-suppressions", "../../internal/lint/testdata/clean"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("clean: exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "0 suppression(s)") {
		t.Errorf("clean: inventory did not report zero suppressions:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	code = run(context.Background(), []string{"-suppressions", "../../internal/lint/testdata/suppress"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("suppress: exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "[globalrand] fixture: demonstrates a sanctioned same-line suppression") {
		t.Errorf("inventory is missing the same-line entry:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "stale or malformed") {
		t.Errorf("stderr does not flag the malformed directive: %s", stderr.String())
	}
}

// TestBadPatternExitsTwo: load/usage errors are distinct from
// findings.
func TestBadPatternExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"./no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, stderr.String())
	}
}
