package main

import (
	"bytes"
	"context"
	"regexp"
	"strings"
	"testing"
)

// TestBadFixtureExitsNonzero: the driver must exit 1 with a correctly
// formatted, correctly attributed finding for each check's bad
// fixture.
func TestBadFixtureExitsNonzero(t *testing.T) {
	findingLine := regexp.MustCompile(`(?m)^\S*fixture\.go:\d+:\d+: \[\w+\] .+$`)
	for _, check := range []string{"globalrand", "walltime", "bufretain", "tracegate", "floateq"} {
		t.Run(check, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(context.Background(), []string{"../../internal/lint/testdata/" + check}, &stdout, &stderr)
			if code != 1 {
				t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
			}
			if !strings.Contains(stdout.String(), "["+check+"] ") {
				t.Errorf("output has no [%s] finding:\n%s", check, stdout.String())
			}
			if !findingLine.MatchString(stdout.String()) {
				t.Errorf("output does not match file:line:col: [check] message format:\n%s", stdout.String())
			}
		})
	}
}

// TestCleanFixtureExitsZero: no findings, no output, exit 0.
func TestCleanFixtureExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"../../internal/lint/testdata/clean"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", stdout.String())
	}
}

// TestListCatalogue: -list names every shipped check.
func TestListCatalogue(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, check := range []string{"globalrand", "walltime", "bufretain", "tracegate", "floateq"} {
		if !strings.Contains(stdout.String(), check) {
			t.Errorf("-list output missing %s:\n%s", check, stdout.String())
		}
	}
}

// TestBadPatternExitsTwo: load/usage errors are distinct from
// findings.
func TestBadPatternExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"./no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, stderr.String())
	}
}
