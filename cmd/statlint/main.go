// statlint is the repo's project-specific static-analysis gate: it
// machine-checks the determinism, buffer-aliasing and trace-gating
// conventions that the experiment harness's byte-identical-output
// guarantee and the hot-path allocation budgets rest on. It is built
// entirely on the standard library (go/parser + go/types with a
// module-aware source importer) so the stdlib-only rule applies to the
// linter itself.
//
// Usage:
//
//	go run ./cmd/statlint ./...           # the make verify invocation
//	go run ./cmd/statlint -list           # catalogue of checks
//	go run ./cmd/statlint -suppressions   # //lint:ignore inventory + staleness gate
//	go run ./cmd/statlint internal/core   # one package
//
// Findings print as `file:line:col: [check] message`; the exit code is
// 1 if there is any finding, 2 on a usage or load error, 0 when
// clean. Per-site suppressions use `//lint:ignore <check> <reason>` on
// the offending line or the line above it — see docs/LINTING.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"statsat/internal/lint"
)

func main() {
	// Ctrl-C / SIGTERM aborts between the (slow) load and the checks,
	// exiting with the usage/load-error code rather than mid-report.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("statlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the available checks and exit")
	docs := fs.Bool("docs", false, "run the doclinks documentation cross-link check instead of the package checks")
	suppressions := fs.Bool("suppressions", false, "print every //lint:ignore directive (file:line, check, reason) and fail on entries naming a check that no longer exists")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: statlint [-list] [-docs] [-suppressions] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	checks := lint.DefaultChecks()
	if *list {
		for _, c := range checks {
			fmt.Fprintf(stdout, "%-12s %s\n", c.Name(), c.Doc())
		}
		fmt.Fprintf(stdout, "%-12s %s\n", "doclinks",
			"(-docs mode) every documentation cross-link — markdown links, anchors, prose docs/*.md mentions — resolves")
		return 0
	}
	if *docs {
		return runDocs(stdout, stderr)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "statlint: %v\n", err)
		return 2
	}
	pkgs, err := lint.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "statlint: %v\n", err)
		return 2
	}

	if ctx.Err() != nil {
		fmt.Fprintln(stderr, "statlint: interrupted")
		return 2
	}
	if *suppressions {
		return runSuppressions(pkgs, checks, cwd, stdout, stderr)
	}
	findings := lint.RunChecks(pkgs, checks)
	for _, f := range findings {
		// Print module-relative paths: stable across machines, and
		// clickable from the repo root where make verify runs.
		if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			f.Pos.Filename = rel
		}
		fmt.Fprintln(stdout, f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "statlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// runSuppressions prints the //lint:ignore inventory — every directive
// with its file:line, check name and reason, so the suppression set is
// reviewed rather than forgotten — and exits 1 when any directive is
// malformed or names a check that no longer exists.
func runSuppressions(pkgs []*lint.Package, checks []lint.Check, cwd string, stdout, stderr io.Writer) int {
	entries, bad := lint.SuppressionReport(pkgs, checks)
	rel := func(name string) string {
		if r, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(r) {
			return r
		}
		return name
	}
	for _, s := range entries {
		s.Pos.Filename = rel(s.Pos.Filename)
		fmt.Fprintln(stdout, s.String())
	}
	fmt.Fprintf(stdout, "%d suppression(s)\n", len(entries))
	for _, f := range bad {
		f.Pos.Filename = rel(f.Pos.Filename)
		fmt.Fprintln(stdout, f.String())
	}
	if len(bad) > 0 {
		fmt.Fprintf(stderr, "statlint: %d stale or malformed suppression(s)\n", len(bad))
		return 1
	}
	return 0
}

// runDocs executes the doclinks check from the repository root (the
// working directory `make verify` runs in).
func runDocs(stdout, stderr io.Writer) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "statlint: %v\n", err)
		return 2
	}
	findings, err := lint.DocLinks(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "statlint: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "statlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
