package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runTool(t *testing.T, args []string, stdin string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(context.Background(), args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestSatisfiableFromStdin(t *testing.T) {
	// (x1 v x2) & (~x1 v x2): satisfiable with x2 = true.
	code, out, _ := runTool(t, nil, "p cnf 2 2\n1 2 0\n-1 2 0\n")
	if code != 10 {
		t.Fatalf("exit = %d, want 10", code)
	}
	if !strings.Contains(out, "s SATISFIABLE") {
		t.Fatalf("output = %q", out)
	}
	if !strings.Contains(out, "v ") || !strings.Contains(out, " 2 ") {
		t.Fatalf("model line missing or wrong: %q", out)
	}
}

func TestUnsatisfiableFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.cnf")
	if err := os.WriteFile(path, []byte("p cnf 1 2\n1 0\n-1 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runTool(t, []string{path}, "")
	if code != 20 {
		t.Fatalf("exit = %d, want 20", code)
	}
	if !strings.Contains(out, "s UNSATISFIABLE") {
		t.Fatalf("output = %q", out)
	}
}

func TestConflictBudgetUnknown(t *testing.T) {
	// A pigeonhole-flavoured hard instance would be overkill; a budget
	// of -1 (engaged but immediately exhausted on any conflict) on an
	// unsat core exercises the UNKNOWN path deterministically only if
	// the solver actually conflicts, so instead verify the flag parses
	// and a trivial formula still solves inside any budget.
	code, out, _ := runTool(t, []string{"-conflicts", "1000"}, "p cnf 1 1\n1 0\n")
	if code != 10 || !strings.Contains(out, "s SATISFIABLE") {
		t.Fatalf("exit = %d output = %q", code, out)
	}
}

func TestStatsGoToStderr(t *testing.T) {
	code, _, errOut := runTool(t, []string{"-stats"}, "p cnf 1 1\n1 0\n")
	if code != 10 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(errOut, "c decisions=") {
		t.Fatalf("stderr = %q, want stats line", errOut)
	}
}

func TestErrors(t *testing.T) {
	if code, _, _ := runTool(t, []string{"-no-such-flag"}, ""); code != 2 {
		t.Errorf("unknown flag exit = %d, want 2", code)
	}
	if code, _, _ := runTool(t, []string{"/nonexistent/formula.cnf"}, ""); code != 1 {
		t.Errorf("missing file exit = %d, want 1", code)
	}
	if code, _, _ := runTool(t, nil, "this is not dimacs"); code != 1 {
		t.Errorf("parse error exit = %d, want 1", code)
	}
}

func TestInterruptedContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb bytes.Buffer
	code := run(ctx, nil, strings.NewReader("p cnf 2 2\n1 2 0\n-1 2 0\n"), &out, &errb)
	// A pre-cancelled context may still let a trivial solve finish
	// before the first interrupt check; accept either outcome but
	// require consistency between code and output.
	switch code {
	case 1:
		if !strings.Contains(out.String(), "s UNKNOWN") {
			t.Fatalf("interrupted but output = %q", out.String())
		}
	case 10:
		if !strings.Contains(out.String(), "s SATISFIABLE") {
			t.Fatalf("code 10 but output = %q", out.String())
		}
	default:
		t.Fatalf("exit = %d", code)
	}
}
