// satsolve is a DIMACS front-end for the internal CDCL solver — the
// same engine that powers the attacks. It prints "s SATISFIABLE" with
// a "v" model line or "s UNSATISFIABLE", following SAT-competition
// output conventions and exit codes (10 SAT, 20 UNSAT).
//
// Usage:
//
//	satsolve formula.cnf
//	cat formula.cnf | satsolve
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"statsat/internal/sat"
)

func main() {
	// Ctrl-C / SIGTERM interrupts the search; the solver then reports
	// UNKNOWN and the tool exits non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run carries the whole tool so tests can drive it with their own
// context, flags and pipes. Exit codes follow SAT-competition
// convention: 10 SAT, 20 UNSAT, 0 UNKNOWN within budget, 1 on error
// or interruption.
func run(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("satsolve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		stats  = fs.Bool("stats", false, "print solver statistics")
		budget = fs.Int64("conflicts", 0, "conflict budget (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	r := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "satsolve:", err)
			return 1
		}
		defer f.Close()
		r = f
	}
	s, err := sat.ParseDIMACS(r)
	if err != nil {
		fmt.Fprintln(stderr, "satsolve:", err)
		return 1
	}
	s.ConflictBudget = *budget
	res := s.SolveCtx(ctx)
	switch res {
	case sat.Sat:
		fmt.Fprintln(stdout, "s SATISFIABLE")
		fmt.Fprint(stdout, "v")
		for v := 0; v < s.NumVars(); v++ {
			lit := v + 1
			if !s.ModelValue(sat.Var(v)) {
				lit = -lit
			}
			fmt.Fprintf(stdout, " %d", lit)
		}
		fmt.Fprintln(stdout, " 0")
	case sat.Unsat:
		fmt.Fprintln(stdout, "s UNSATISFIABLE")
	default:
		fmt.Fprintln(stdout, "s UNKNOWN")
	}
	if *stats {
		st := s.Stats
		fmt.Fprintf(stderr, "c decisions=%d propagations=%d conflicts=%d restarts=%d learnt=%d removed=%d\n",
			st.Decisions, st.Propagations, st.Conflicts, st.Restarts, st.Learnt, st.Removed)
	}
	switch {
	case res == sat.Unsat:
		return 20
	case res == sat.Sat:
		return 10
	case ctx.Err() != nil:
		fmt.Fprintln(stderr, "satsolve: interrupted")
		return 1
	}
	return 0
}
