// satsolve is a DIMACS front-end for the internal CDCL solver — the
// same engine that powers the attacks. It prints "s SATISFIABLE" with
// a "v" model line or "s UNSATISFIABLE", following SAT-competition
// output conventions.
//
// Usage:
//
//	satsolve formula.cnf
//	cat formula.cnf | satsolve
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"statsat/internal/sat"
)

func main() {
	var (
		stats  = flag.Bool("stats", false, "print solver statistics")
		budget = flag.Int64("conflicts", 0, "conflict budget (0 = unlimited)")
	)
	flag.Parse()
	// Ctrl-C / SIGTERM interrupts the search; the solver then reports
	// UNKNOWN and the tool exits non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var r io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	s, err := sat.ParseDIMACS(r)
	if err != nil {
		fatal(err)
	}
	s.ConflictBudget = *budget
	res := s.SolveCtx(ctx)
	switch res {
	case sat.Sat:
		fmt.Println("s SATISFIABLE")
		fmt.Print("v")
		for v := 0; v < s.NumVars(); v++ {
			lit := v + 1
			if !s.ModelValue(sat.Var(v)) {
				lit = -lit
			}
			fmt.Printf(" %d", lit)
		}
		fmt.Println(" 0")
	case sat.Unsat:
		fmt.Println("s UNSATISFIABLE")
	default:
		fmt.Println("s UNKNOWN")
	}
	if *stats {
		st := s.Stats
		fmt.Fprintf(os.Stderr, "c decisions=%d propagations=%d conflicts=%d restarts=%d learnt=%d removed=%d\n",
			st.Decisions, st.Propagations, st.Conflicts, st.Restarts, st.Learnt, st.Removed)
	}
	if res == sat.Unsat {
		os.Exit(20)
	}
	if res == sat.Sat {
		os.Exit(10)
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "satsolve: interrupted")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "satsolve:", err)
	os.Exit(1)
}
