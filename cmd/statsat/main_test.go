package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadKeyFromString(t *testing.T) {
	key, err := loadKey("1010", "", 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true, false}
	for i := range want {
		if key[i] != want[i] {
			t.Fatalf("key = %v", key)
		}
	}
}

func TestLoadKeyFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "k")
	if err := os.WriteFile(path, []byte("011\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	key, err := loadKey("", path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if key[0] || !key[1] || !key[2] {
		t.Fatalf("key = %v", key)
	}
}

func TestLoadKeyErrors(t *testing.T) {
	if _, err := loadKey("", "", 3); err == nil {
		t.Error("want error for missing key")
	}
	if _, err := loadKey("10", "", 3); err == nil {
		t.Error("want error for width mismatch")
	}
	if _, err := loadKey("1x0", "", 3); err == nil {
		t.Error("want error for non-binary key")
	}
	if _, err := loadKey("", "/nonexistent/key/file", 3); err == nil {
		t.Error("want error for unreadable file")
	}
}

func TestFormatKey(t *testing.T) {
	if got := formatKey([]bool{true, false, true}); got != "101" {
		t.Errorf("formatKey = %q", got)
	}
	if got := formatKey(nil); got != "" {
		t.Errorf("formatKey(nil) = %q", got)
	}
}
