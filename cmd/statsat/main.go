// statsat runs an oracle-guided attack (StatSAT, PSAT or the standard
// SAT attack) on a locked .bench netlist. The oracle is simulated from
// the same netlist activated with the correct key (-key / -keyfile),
// optionally under the paper's probabilistic gate-error model (-eps).
//
// Usage:
//
//	statsat -in locked.bench -keyfile locked.key -eps 0.0125 \
//	        -attack statsat -ninst 8 -ns 500
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"statsat/internal/attack"
	"statsat/internal/core"
	"statsat/internal/metrics"
	"statsat/internal/netio"
	"statsat/internal/oracle"
	"statsat/internal/server"
	"statsat/internal/trace"
)

func main() {
	os.Exit(run())
}

// run carries the whole tool so deferred cleanup (trace flushing) still
// happens on the non-zero exit paths — os.Exit in main would skip it.
func run() int {
	var (
		in       = flag.String("in", "", "locked netlist, .bench or structural .v (keyinput* inputs)")
		format   = flag.String("format", "", "force netlist format: bench | verilog (default: by extension)")
		keyStr   = flag.String("key", "", "correct key as a 0/1 string (activates the oracle)")
		keyFile  = flag.String("keyfile", "", "file containing the correct key (0/1 string)")
		eps      = flag.Float64("eps", 0, "oracle gate error probability (0 = deterministic chip)")
		mode     = flag.String("attack", "statsat", "attack: statsat | psat | sat")
		ns       = flag.Int("ns", 500, "oracle samples per distinguishing input")
		nSatis   = flag.Int("nsatis", 100, "satisfying keys for BER estimation")
		nEval    = flag.Int("neval", 2000, "evaluation inputs for FM/HD")
		nInst    = flag.Int("ninst", 1, "maximum SAT instances")
		uLam     = flag.Float64("ulambda", 0.25, "uncertainty threshold U_lambda")
		eLam     = flag.Float64("elambda", 0.30, "estimated-BER threshold E_lambda")
		epsG     = flag.Float64("epsg", -1, "attacker's gate-error estimate (-1 = estimate via §V-E; ignored when -eps 0)")
		seed     = flag.Int64("seed", 1, "PRNG seed")
		verbose  = flag.Bool("v", false, "log attack progress and stream trace events to stderr")
		traceOut = flag.String("trace", "", "write a JSON-lines event trace to this file (schema: docs/OBSERVABILITY.md)")
		maxIter  = flag.Int("maxiter", 20000, "iteration safety cap")
		parallel = flag.Bool("parallel", false, "run SAT instances concurrently (faster, non-reproducible)")
		srvURL   = flag.String("server", "", "submit the job to a statsatd daemon at this base URL instead of attacking locally")
		pfWork   = flag.Int("portfolio-workers", 1, "portfolio solver racing: total worker bound (<= 1 = off, byte-identical to sequential)")
		pfRace   = flag.Int("portfolio-racers", 0, "racing helper configurations per miter solve (0 = default 3)")
	)
	flag.Parse()
	if *in == "" {
		return fail(fmt.Errorf("need -in <locked netlist>"))
	}
	// Ctrl-C / SIGTERM cancels the attack at the next iteration
	// boundary; the attack then returns its best-effort partial result.
	// In -server mode the same signal DELETEs the remote job.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *srvURL != "" {
		keySrc := *keyStr
		if *keyFile != "" {
			b, err := os.ReadFile(*keyFile)
			if err != nil {
				return fail(err)
			}
			keySrc = strings.TrimSpace(string(b))
		}
		epsGuess := *epsG
		if epsGuess < 0 {
			epsGuess = 0 // daemon defaults eps_g to the true eps
		}
		return runServer(ctx, clientOptions{
			serverURL: *srvURL, in: *in, format: *format, key: keySrc,
			eps: *eps, attack: *mode, seed: *seed, verbose: *verbose,
			opts: server.SpecOptions{
				Ns: *ns, NSatis: *nSatis, NEval: *nEval, NInst: *nInst,
				ULambda: *uLam, ELambda: *eLam, EpsG: epsGuess,
				MaxIter: *maxIter, Parallel: *parallel,
				PortfolioWorkers: *pfWork, PortfolioRacers: *pfRace,
			},
		})
	}
	forced, err := netio.ParseFormat(*format)
	if err != nil {
		return fail(err)
	}
	locked, err := netio.ReadFileStreaming(*in, forced)
	if err != nil {
		return fail(err)
	}
	key, err := loadKey(*keyStr, *keyFile, locked.NumKeys())
	if err != nil {
		return fail(err)
	}

	var orc oracle.Oracle
	if *eps > 0 {
		orc = oracle.NewProbabilistic(locked, key, *eps, *seed+1)
	} else {
		orc = oracle.NewDeterministic(locked, key)
	}

	tracer, closeTrace, err := openTrace(*traceOut, *verbose)
	if err != nil {
		return fail(err)
	}
	defer closeTrace()

	interrupted := false
	switch *mode {
	case "sat":
		res, err := attack.StandardSATOpt(ctx, locked, orc, attack.SATOptions{
			MaxIter: *maxIter, Tracer: tracer,
			PortfolioWorkers: *pfWork, PortfolioRacers: *pfRace,
		})
		if err != nil {
			if !errors.Is(err, attack.ErrInterrupted) {
				return fail(err)
			}
			interrupted = true
			fmt.Fprintln(os.Stderr, "statsat: interrupted — results below are best-effort")
		}
		reportBaseline("standard SAT", res, locked, key)
	case "psat":
		res, err := attack.PSAT(ctx, locked, orc, attack.PSATOptions{
			Ns: *ns, MaxIter: *maxIter, Seed: *seed, Tracer: tracer,
			PortfolioWorkers: *pfWork, PortfolioRacers: *pfRace,
		})
		if err != nil {
			if !errors.Is(err, attack.ErrInterrupted) {
				return fail(err)
			}
			interrupted = true
			fmt.Fprintln(os.Stderr, "statsat: interrupted — results below are best-effort")
		}
		reportBaseline("PSAT", res, locked, key)
	case "statsat":
		guess := *epsG
		if *eps > 0 && guess < 0 {
			fmt.Fprintln(os.Stderr, "estimating gate error probability (§V-E)...")
			guess = core.EstimateGateError(ctx, locked, orc, core.EstimateOptions{Seed: *seed})
			fmt.Fprintf(os.Stderr, "estimated eps' = %.4f%% (true value hidden from attacker)\n", guess*100)
		}
		if guess < 0 {
			guess = 0
		}
		opts := core.Options{
			Ns: *ns, NSatis: *nSatis, NEval: *nEval, NInst: *nInst,
			ULambda: *uLam, ELambda: *eLam, EpsG: guess,
			MaxTotalIter: *maxIter, Seed: *seed, Parallel: *parallel,
			PortfolioWorkers: *pfWork, PortfolioRacers: *pfRace,
			Tracer: tracer,
		}
		if *verbose {
			opts.Logf = func(format string, args ...interface{}) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}
		}
		res, err := core.Attack(ctx, locked, orc, opts)
		if err != nil {
			if !errors.Is(err, core.ErrInterrupted) {
				return fail(err)
			}
			interrupted = true
			fmt.Fprintln(os.Stderr, "statsat: interrupted — results below are best-effort")
		}
		fmt.Printf("StatSAT: %d key(s), %d instance(s) peak, %d forks, %d force-proceeds, %d dead\n",
			len(res.Keys), res.Instances, res.Forks, res.ForceProceeds, res.DeadInstances)
		fmt.Printf("T_attack = %v, T_eval/key = %v, oracle queries = %d (+%d eval)\n",
			res.AttackDuration, res.EvalPerKey, res.OracleQueries, res.EvalQueries)
		if res.Truncated {
			fmt.Println("WARNING: iteration budget exhausted before all instances settled (-maxiter)")
		}
		if *verbose {
			fmt.Println("instance tree (id<-parent iters dips outcome):")
			for _, st := range res.InstanceStats {
				fmt.Printf("  %3d <- %3d  %5d %4d  %s\n", st.ID, st.Parent, st.Iterations, st.DIPs, st.Outcome)
			}
		}
		for i, k := range res.Keys {
			eq, err := metrics.KeysEquivalent(locked, k.Key, key)
			if err != nil {
				return fail(err)
			}
			marker := ""
			if eq {
				marker = "  (CORRECT)"
			}
			fmt.Printf("key %d: FM=%.4f HD=%.4f iters=%d %s%s\n",
				i, k.FM, k.HD, k.Iterations, formatKey(k.Key), marker)
		}
	default:
		return fail(fmt.Errorf("unknown attack %q (want statsat, psat or sat)", *mode))
	}
	if interrupted {
		return 1
	}
	return 0
}

// openTrace assembles the requested trace sinks: a JSON-lines file for
// -trace, a human-readable stderr stream for -v, both, or none (nil
// tracer, tracing off). The closer flushes the file and is always safe
// to call.
func openTrace(path string, verbose bool) (trace.Tracer, func(), error) {
	var sinks []trace.Tracer
	closer := func() {}
	if verbose {
		sinks = append(sinks, trace.NewText(os.Stderr))
	}
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return nil, nil, err
		}
		bw := bufio.NewWriter(f)
		sinks = append(sinks, trace.NewJSONL(bw))
		closer = func() {
			bw.Flush()
			f.Close()
		}
	}
	return trace.Multi(sinks...), closer, nil
}

func reportBaseline(name string, res *attack.Result, locked interface {
	NumKeys() int
}, _ []bool) {
	if res.Failed || res.Key == nil {
		fmt.Printf("%s FAILED after %d iterations (%v, %d queries)\n",
			name, res.Iterations, res.Duration, res.OracleQueries)
		return
	}
	fmt.Printf("%s: key=%s iterations=%d time=%v queries=%d\n",
		name, formatKey(res.Key), res.Iterations, res.Duration, res.OracleQueries)
}

func loadKey(keyStr, keyFile string, want int) ([]bool, error) {
	s := keyStr
	if keyFile != "" {
		b, err := os.ReadFile(keyFile)
		if err != nil {
			return nil, err
		}
		s = strings.TrimSpace(string(b))
	}
	if s == "" {
		return nil, fmt.Errorf("need -key or -keyfile with the oracle's correct key")
	}
	if len(s) != want {
		return nil, fmt.Errorf("key has %d bits, circuit has %d key inputs", len(s), want)
	}
	key := make([]bool, len(s))
	for i, c := range s {
		switch c {
		case '0':
		case '1':
			key[i] = true
		default:
			return nil, fmt.Errorf("key must be a 0/1 string, found %q", c)
		}
	}
	return key, nil
}

func formatKey(key []bool) string {
	b := make([]byte, len(key))
	for i, v := range key {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "statsat:", err)
	return 1
}
