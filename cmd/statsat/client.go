package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"statsat/internal/server"
	"statsat/internal/trace"
)

// clientOptions carries the flag values the -server submit path needs.
type clientOptions struct {
	serverURL string
	in        string
	format    string
	key       string
	eps       float64
	attack    string
	seed      int64
	verbose   bool
	opts      server.SpecOptions
}

// runServer submits the job to a statsatd daemon instead of attacking
// locally: it uploads the netlist inline, follows the NDJSON trace
// stream (rendered human-readably under -v), and prints the final
// outcome. Cancelling ctx (Ctrl-C) DELETEs the job so the daemon
// interrupts the attack and the partial result is still reported.
// Returns the process exit code: 0 clean, 1 interrupted or failed.
func runServer(ctx context.Context, co clientOptions) int {
	src, err := os.ReadFile(co.in)
	if err != nil {
		return fail(err)
	}
	format := co.format
	if format == "" && strings.HasSuffix(co.in, ".v") {
		format = "verilog"
	}
	sp := server.Spec{
		Attack:  co.attack,
		Netlist: string(src),
		Format:  format,
		Key:     co.key,
		Eps:     co.eps,
		Seed:    co.seed,
		Options: co.opts,
	}
	base := strings.TrimSuffix(co.serverURL, "/")

	id, err := submitJob(ctx, base, &sp)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "statsat: job %s submitted to %s\n", id, base)

	// On Ctrl-C the stream request dies with ctx; cancel the job
	// server-side so it settles (with its best-effort partial outcome)
	// instead of running on unobserved.
	streamErr := followTrace(ctx, base, id, co.verbose)
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "statsat: interrupted — cancelling job", id)
		cancelJob(base, id)
	} else if streamErr != nil {
		fmt.Fprintln(os.Stderr, "statsat: trace stream:", streamErr)
	}

	st, err := fetchStatus(base, id)
	if err != nil {
		return fail(err)
	}
	return reportStatus(st)
}

// retryDelays is the jitterless backoff schedule between connect
// attempts: three tries total, doubling the pause. Deterministic on
// purpose — the client is a CLI talking to one daemon, so reproducible
// timing beats thundering-herd folklore at this scale.
var retryDelays = []time.Duration{250 * time.Millisecond, 500 * time.Millisecond}

// transientError marks a failure worth retrying: the request never
// produced a response (daemon still binding its socket, connection
// refused mid-restart). Anything the server actually said — a 4xx spec
// rejection, a 429 store-full — is authoritative and never retried.
type transientError struct{ err error }

func (e transientError) Error() string { return e.err.Error() }
func (e transientError) Unwrap() error { return e.err }

// withBackoff runs attempt up to len(retryDelays)+1 times, sleeping
// the backoff schedule between tries. Only transientError retries;
// ctx cancellation cuts the wait short and returns the last failure.
func withBackoff(ctx context.Context, attempt func() error) error {
	for i := 0; ; i++ {
		err := attempt()
		var te transientError
		if err == nil || !errors.As(err, &te) || i == len(retryDelays) {
			return err
		}
		fmt.Fprintf(os.Stderr, "statsat: %v — retrying in %s\n", err, retryDelays[i])
		t := time.NewTimer(retryDelays[i])
		select {
		case <-ctx.Done():
			t.Stop()
			return err
		case <-t.C:
		}
	}
}

// transient classifies a client.Do failure: a context-driven abort is
// final, everything else (the request never reached the server) is
// worth another attempt.
func transient(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return err
	}
	return transientError{err}
}

// submitJob POSTs the spec and returns the assigned job ID, retrying
// connect-level failures on the backoff schedule (the daemon may still
// be starting, or mid-restart on its durable data directory).
func submitJob(ctx context.Context, base string, sp *server.Spec) (string, error) {
	body, err := json.Marshal(sp)
	if err != nil {
		return "", err
	}
	var id string
	err = withBackoff(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return transient(ctx, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return apiError(resp)
		}
		var reply struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			return err
		}
		id = reply.ID
		return nil
	})
	return id, err
}

// followTrace streams the job's NDJSON trace until the job finishes or
// ctx is cancelled. Events render through the same formatter as the
// local -v path, so both modes read identically.
// The initial connect retries on the same backoff schedule as the
// submit; once the stream is open, a mid-stream error is final (the
// follow-up status fetch reports the job's fate either way).
func followTrace(ctx context.Context, base, id string, verbose bool) error {
	var resp *http.Response
	err := withBackoff(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id+"/trace", nil)
		if err != nil {
			return err
		}
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			return transient(ctx, err)
		}
		if r.StatusCode != http.StatusOK {
			err := apiError(r)
			r.Body.Close()
			return err
		}
		resp = r
		return nil
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	for {
		var ev trace.Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF || ctx.Err() != nil {
				return nil
			}
			return err
		}
		if verbose {
			fmt.Fprintln(os.Stderr, ev.String())
		}
	}
}

// cancelJob issues the DELETE; errors are advisory (the daemon may
// already be gone), so it only logs.
func cancelJob(base, id string) {
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
	if err != nil {
		return
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statsat: cancel:", err)
		return
	}
	resp.Body.Close()
}

// fetchStatus GETs the job's final status. It runs without the command
// context on purpose: after Ctrl-C the job's partial result is exactly
// what we came for.
func fetchStatus(base, id string) (*server.Status, error) {
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// reportStatus prints the outcome in the local report style and maps
// the job state to the exit code.
func reportStatus(st *server.Status) int {
	if st.Outcome == nil {
		fmt.Printf("job %s: %s (no outcome)\n", st.ID, st.State)
		if st.State == server.StateFailed || st.State == server.StateCancelled {
			return 1
		}
		return 0
	}
	out := st.Outcome
	if out.Interrupted {
		fmt.Fprintln(os.Stderr, "statsat: interrupted — results below are best-effort")
	}
	fmt.Printf("%s (%s on %s): %d key(s), %d iterations, %d queries\n",
		st.Attack, st.State, st.Circuit.Name, len(out.Keys), out.Iterations, out.OracleQueries)
	for i, k := range out.Keys {
		marker := ""
		if k.Correct {
			marker = "  (CORRECT)"
		}
		if k.FM != 0 || k.HD != 0 {
			fmt.Printf("key %d: FM=%.4f HD=%.4f iters=%d %s%s\n", i, k.FM, k.HD, k.Iterations, k.Key, marker)
		} else {
			fmt.Printf("key %d: iters=%d %s%s\n", i, k.Iterations, k.Key, marker)
		}
	}
	if st.State != server.StateDone {
		return 1
	}
	return 0
}

// apiError turns a non-2xx response into an error carrying the
// server's JSON error envelope when present.
func apiError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var envelope struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &envelope) == nil && envelope.Error != "" {
		return fmt.Errorf("server: %s: %s", resp.Status, envelope.Error)
	}
	return fmt.Errorf("server: %s: %s", resp.Status, strings.TrimSpace(string(b)))
}
