package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"statsat/internal/server"
)

// shortDelays shrinks the backoff schedule so retry tests run in
// milliseconds, restoring the real schedule afterwards.
func shortDelays(t *testing.T) {
	t.Helper()
	saved := retryDelays
	retryDelays = []time.Duration{time.Millisecond, 2 * time.Millisecond}
	t.Cleanup(func() { retryDelays = saved })
}

func TestWithBackoffRetriesTransientOnly(t *testing.T) {
	shortDelays(t)
	ctx := context.Background()

	// Transient failures burn through the whole schedule...
	calls := 0
	err := withBackoff(ctx, func() error {
		calls++
		return transientError{errors.New("connection refused")}
	})
	if err == nil || calls != len(retryDelays)+1 {
		t.Fatalf("exhausted backoff: err=%v calls=%d, want %d", err, calls, len(retryDelays)+1)
	}

	// ...success mid-schedule stops early...
	calls = 0
	err = withBackoff(ctx, func() error {
		calls++
		if calls < 2 {
			return transientError{errors.New("connection refused")}
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Fatalf("retry-then-success: err=%v calls=%d", err, calls)
	}

	// ...and a definitive server answer is never retried.
	calls = 0
	final := errors.New("server: 400 Bad Request: unknown attack")
	err = withBackoff(ctx, func() error {
		calls++
		return final
	})
	if err != final || calls != 1 {
		t.Fatalf("non-transient: err=%v calls=%d", err, calls)
	}
}

func TestWithBackoffStopsOnContextCancel(t *testing.T) {
	saved := retryDelays
	retryDelays = []time.Duration{time.Hour}
	t.Cleanup(func() { retryDelays = saved })

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	start := time.Now()
	err := withBackoff(ctx, func() error {
		calls++
		return transientError{errors.New("connection refused")}
	})
	if err == nil || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("cancelled backoff slept through its schedule")
	}
}

// flakyHandler kills the first n connections at the TCP level (a
// hijack-and-close looks to the client exactly like a daemon that is
// not accepting yet), then delegates.
func flakyHandler(n int32, next http.Handler) (http.Handler, *int32) {
	var calls int32
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) <= n {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		next.ServeHTTP(w, r)
	}), &calls
}

func TestSubmitJobRetriesConnectFailures(t *testing.T) {
	shortDelays(t)
	accept := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": "j000042"})
	})
	h, calls := flakyHandler(2, accept)
	hts := httptest.NewServer(h)
	defer hts.Close()

	id, err := submitJob(context.Background(), hts.URL, &server.Spec{Attack: "sat"})
	if err != nil {
		t.Fatalf("submit through flaky connects: %v", err)
	}
	if id != "j000042" || *calls != 3 {
		t.Fatalf("id=%q calls=%d", id, *calls)
	}
}

func TestSubmitJobDoesNotRetryRejection(t *testing.T) {
	shortDelays(t)
	var calls int32
	hts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, `{"error":"unknown attack"}`, http.StatusBadRequest)
	}))
	defer hts.Close()

	_, err := submitJob(context.Background(), hts.URL, &server.Spec{Attack: "nope"})
	if err == nil || calls != 1 {
		t.Fatalf("err=%v calls=%d, want one non-retried rejection", err, calls)
	}
}

func TestFollowTraceRetriesConnect(t *testing.T) {
	shortDelays(t)
	stream := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		// Empty stream: the client sees EOF and returns nil.
	})
	h, calls := flakyHandler(2, stream)
	hts := httptest.NewServer(h)
	defer hts.Close()

	if err := followTrace(context.Background(), hts.URL, "j000001", false); err != nil {
		t.Fatalf("follow through flaky connects: %v", err)
	}
	if *calls != 3 {
		t.Fatalf("calls=%d, want 3", *calls)
	}
}
