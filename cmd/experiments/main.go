// experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -profile quick -exp all
//	experiments -profile paper -exp table2
//	experiments -exp fig6
//
// Experiment IDs: table1 table2 table3 table4 table5 fig4 fig5 fig6
// ablations defense sweep all.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"time"

	"statsat/internal/exp"
)

func main() {
	// Ctrl-C / SIGTERM stops the scheduler: no new cells start, cells
	// already completed stay flushed (table rows stream in order; the
	// partial row prefix is still written as CSV), and the tool exits
	// non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run carries the whole tool so the non-zero exit paths can still
// flush partial output first — os.Exit in main would skip defers —
// and so tests can drive it with their own context, flags and pipes.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		profile  = fs.String("profile", "quick", "profile: paper | quick | smoke")
		expID    = fs.String("exp", "all", "experiment id(s), comma-separated: table1..table5, fig4..fig6, ablations, defense, all")
		csvDir   = fs.String("csv", "", "also write each experiment's rows as CSV into this directory")
		traceDir = fs.String("trace", "", "record one JSON-lines trace per attack run into this directory (schema: docs/OBSERVABILITY.md)")
		verbose  = fs.Bool("v", false, "stream trace events to stderr as they happen")
		workers  = fs.Int("workers", 0, "experiment scheduler workers: 0 = one per CPU, 1 = sequential (results are identical for any value; see docs/PERFORMANCE.md)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	p, ok := exp.ProfileByName(*profile)
	if !ok {
		fmt.Fprintf(stderr, "experiments: unknown profile %q\n", *profile)
		return 1
	}
	p.TraceDir = *traceDir
	p.Verbose = *verbose
	p.Workers = *workers

	ids := strings.Split(*expID, ",")
	if *expID == "all" {
		ids = []string{"table1", "table2", "fig4", "fig5", "table3", "fig6", "table4", "table5", "ablations", "defense", "sweep"}
	}
	for _, id := range ids {
		//lint:ignore walltime progress reporting on stderr/stdout banners only; never reaches CSV or table artifacts
		start := time.Now()
		var err error
		var rows interface{}
		switch strings.TrimSpace(id) {
		case "table1":
			rows = exp.TableI(ctx, p, stdout)
		case "table2":
			rows, err = exp.TableII(ctx, p, stdout)
		case "table3":
			rows, err = exp.TableIII(ctx, p, stdout)
		case "table4":
			rows, err = exp.TableIV(ctx, p, stdout)
		case "table5":
			rows, err = exp.TableV(ctx, p, stdout)
		case "fig4":
			rows, err = exp.Fig4(ctx, p, stdout)
		case "fig5":
			rows, err = exp.Fig5(ctx, p, stdout)
		case "fig6":
			rows, err = exp.Fig6(ctx, p, stdout)
		case "ablations":
			rows, err = exp.Ablations(ctx, p, stdout)
		case "defense":
			rows, err = exp.Defense(ctx, p, stdout)
		case "sweep":
			rows, err = exp.SweepNs(ctx, p, stdout)
		default:
			err = fmt.Errorf("unknown experiment %q", id)
		}
		if *csvDir != "" && hasRows(rows) {
			// On cancellation, generators return the completed prefix of
			// rows: flush it as partial CSV before exiting non-zero.
			if cerr := writeCSV(*csvDir, strings.TrimSpace(id), p.Name, rows); cerr != nil {
				fmt.Fprintf(stderr, "experiments: csv %s: %v\n", id, cerr)
				return 1
			}
		}
		if err != nil {
			fmt.Fprintf(stderr, "experiments: %s: %v\n", id, err)
			return 1
		}
		//lint:ignore walltime completion banner is presentation-only; determinism tests compare generator output, not banners
		fmt.Fprintf(stdout, "[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return 0
}

// hasRows reports whether rows is a non-empty slice (typed nil slices
// arrive as non-nil interfaces, so a plain nil check is not enough).
func hasRows(rows interface{}) bool {
	if rows == nil {
		return false
	}
	v := reflect.ValueOf(rows)
	return v.Kind() == reflect.Slice && v.Len() > 0
}

func writeCSV(dir, id, profile string, rows interface{}) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", id, profile))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := exp.WriteCSV(f, rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
