// experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -profile quick -exp all
//	experiments -profile paper -exp table2
//	experiments -exp fig6
//
// Experiment IDs: table1 table2 table3 table4 table5 fig4 fig5 fig6
// ablations defense sweep all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"statsat/internal/exp"
)

func main() {
	var (
		profile  = flag.String("profile", "quick", "profile: paper | quick | smoke")
		expID    = flag.String("exp", "all", "experiment id(s), comma-separated: table1..table5, fig4..fig6, ablations, defense, all")
		csvDir   = flag.String("csv", "", "also write each experiment's rows as CSV into this directory")
		traceDir = flag.String("trace", "", "record one JSON-lines trace per attack run into this directory (schema: docs/OBSERVABILITY.md)")
		verbose  = flag.Bool("v", false, "stream trace events to stderr as they happen")
		workers  = flag.Int("workers", 0, "experiment scheduler workers: 0 = one per CPU, 1 = sequential (results are identical for any value; see docs/PERFORMANCE.md)")
	)
	flag.Parse()
	p, ok := exp.ProfileByName(*profile)
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown profile %q\n", *profile)
		os.Exit(1)
	}
	p.TraceDir = *traceDir
	p.Verbose = *verbose
	p.Workers = *workers

	ids := strings.Split(*expID, ",")
	if *expID == "all" {
		ids = []string{"table1", "table2", "fig4", "fig5", "table3", "fig6", "table4", "table5", "ablations", "defense", "sweep"}
	}
	for _, id := range ids {
		//lint:ignore walltime progress reporting on stderr/stdout banners only; never reaches CSV or table artifacts
		start := time.Now()
		var err error
		var rows interface{}
		switch strings.TrimSpace(id) {
		case "table1":
			rows = exp.TableI(p, os.Stdout)
		case "table2":
			rows, err = exp.TableII(p, os.Stdout)
		case "table3":
			rows, err = exp.TableIII(p, os.Stdout)
		case "table4":
			rows, err = exp.TableIV(p, os.Stdout)
		case "table5":
			rows, err = exp.TableV(p, os.Stdout)
		case "fig4":
			rows, err = exp.Fig4(p, os.Stdout)
		case "fig5":
			rows, err = exp.Fig5(p, os.Stdout)
		case "fig6":
			rows, err = exp.Fig6(p, os.Stdout)
		case "ablations":
			rows, err = exp.Ablations(p, os.Stdout)
		case "defense":
			rows, err = exp.Defense(p, os.Stdout)
		case "sweep":
			rows, err = exp.SweepNs(p, os.Stdout)
		default:
			err = fmt.Errorf("unknown experiment %q", id)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *csvDir != "" && rows != nil {
			if err := writeCSV(*csvDir, strings.TrimSpace(id), p.Name, rows); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: csv %s: %v\n", id, err)
				os.Exit(1)
			}
		}
		//lint:ignore walltime completion banner is presentation-only; determinism tests compare generator output, not banners
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func writeCSV(dir, id, profile string, rows interface{}) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", id, profile))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := exp.WriteCSV(f, rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
