package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runTool(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(context.Background(), args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestFlagValidation(t *testing.T) {
	if code, _, _ := runTool(t, "-no-such-flag"); code != 2 {
		t.Errorf("unknown flag exit = %d, want 2", code)
	}
	if code, _, errOut := runTool(t, "-profile", "warp"); code != 1 || !strings.Contains(errOut, "unknown profile") {
		t.Errorf("unknown profile exit = %d stderr = %q", code, errOut)
	}
	if code, _, errOut := runTool(t, "-exp", "table99"); code != 1 || !strings.Contains(errOut, "unknown experiment") {
		t.Errorf("unknown experiment exit = %d stderr = %q", code, errOut)
	}
}

func TestTable1Smoke(t *testing.T) {
	// table1 summarises the benchmark suite without running attacks, so
	// it is the cheapest end-to-end pass through the tool.
	code, out, errOut := runTool(t, "-exp", "table1", "-profile", "smoke")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errOut)
	}
	if !strings.Contains(out, "table1 completed") {
		t.Fatalf("completion banner missing: %q", out)
	}
}

func TestCSVOutput(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "csv")
	code, _, errOut := runTool(t, "-exp", "table1", "-profile", "smoke", "-csv", dir)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errOut)
	}
	b, err := os.ReadFile(filepath.Join(dir, "table1_smoke.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(bytes.Split(bytes.TrimSpace(b), []byte("\n"))) < 2 {
		t.Fatalf("CSV has no data rows: %q", b)
	}
}

func TestCancelledContextExitsNonZero(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb bytes.Buffer
	// fig4 runs real attacks; a pre-cancelled context must stop the
	// scheduler before any cell completes and surface the interruption.
	code := run(ctx, []string{"-exp", "fig4", "-profile", "smoke"}, &out, &errb)
	if code == 0 {
		t.Fatalf("cancelled run exited 0 (stdout %q)", out.String())
	}
}

func TestHasRows(t *testing.T) {
	if hasRows(nil) {
		t.Error("hasRows(nil) = true")
	}
	var typedNil []int
	if hasRows(typedNil) {
		t.Error("hasRows(typed nil slice) = true")
	}
	if !hasRows([]int{1}) {
		t.Error("hasRows(non-empty) = false")
	}
	if hasRows(42) {
		t.Error("hasRows(non-slice) = true")
	}
}
