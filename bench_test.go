// bench_test.go wires one testing.B benchmark to every table and
// figure of the paper's evaluation (§V), plus the DESIGN.md §5
// ablations. Each bench runs the corresponding experiment at the
// "smoke" profile so `go test -bench=. -benchmem` regenerates the full
// row set in minutes; run `cmd/experiments -profile quick|paper` for
// larger instances of the same code paths.
package statsat_test

import (
	"context"
	"io"
	"os"
	"testing"

	"statsat/internal/exp"
)

// benchWriter sends experiment tables to stdout on the first benchmark
// iteration only, so `-bench` output stays readable.
func benchWriter(i int) io.Writer {
	if i == 0 {
		return os.Stdout
	}
	return io.Discard
}

// smokeSeq pins the experiment scheduler to one worker so the
// per-generator numbers stay comparable with BENCH_baseline.json,
// which predates the parallel scheduler. BenchmarkTableII_Parallel
// measures the pool itself.
var smokeSeq = func() exp.Profile {
	p := exp.Smoke
	p.Workers = 1
	return p
}()

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.TableI(context.Background(), smokeSeq, benchWriter(i))
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.TableII(context.Background(), smokeSeq, benchWriter(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.TableIII(context.Background(), smokeSeq, benchWriter(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.TableIV(context.Background(), smokeSeq, benchWriter(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.TableV(context.Background(), smokeSeq, benchWriter(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII_Parallel runs the same Table II workload with one
// scheduler worker per CPU (Profile.Workers = 0, the default). The
// speed-up over BenchmarkTableII tracks the core count; the rows are
// byte-identical either way (TestParallelOutputByteIdentical).
func BenchmarkTableII_Parallel(b *testing.B) {
	p := exp.Smoke
	p.Workers = 0
	for i := 0; i < b.N; i++ {
		if _, err := exp.TableII(context.Background(), p, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig4(context.Background(), smokeSeq, benchWriter(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig5(context.Background(), smokeSeq, benchWriter(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig6(context.Background(), smokeSeq, benchWriter(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Ablations(context.Background(), smokeSeq, benchWriter(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDefense(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Defense(context.Background(), smokeSeq, benchWriter(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepNs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.SweepNs(context.Background(), smokeSeq, benchWriter(i)); err != nil {
			b.Fatal(err)
		}
	}
}
