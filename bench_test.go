// bench_test.go wires one testing.B benchmark to every table and
// figure of the paper's evaluation (§V), plus the DESIGN.md §5
// ablations. Each bench runs the corresponding experiment at the
// "smoke" profile so `go test -bench=. -benchmem` regenerates the full
// row set in minutes; run `cmd/experiments -profile quick|paper` for
// larger instances of the same code paths.
package statsat_test

import (
	"io"
	"os"
	"testing"

	"statsat/internal/exp"
)

// benchWriter sends experiment tables to stdout on the first benchmark
// iteration only, so `-bench` output stays readable.
func benchWriter(i int) io.Writer {
	if i == 0 {
		return os.Stdout
	}
	return io.Discard
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.TableI(exp.Smoke, benchWriter(i))
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.TableII(exp.Smoke, benchWriter(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.TableIII(exp.Smoke, benchWriter(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.TableIV(exp.Smoke, benchWriter(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.TableV(exp.Smoke, benchWriter(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig4(exp.Smoke, benchWriter(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig5(exp.Smoke, benchWriter(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig6(exp.Smoke, benchWriter(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Ablations(exp.Smoke, benchWriter(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDefense(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Defense(exp.Smoke, benchWriter(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepNs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.SweepNs(exp.Smoke, benchWriter(i)); err != nil {
			b.Fatal(err)
		}
	}
}
