package statsat_test

import (
	"testing"

	"statsat"
)

// lockers enumerates every locking scheme in the library with a
// test-sized key width for a 16-input, ~150-gate circuit.
func lockers(orig *statsat.Circuit) []struct {
	name string
	mk   func(seed int64) (*statsat.Locked, error)
} {
	return []struct {
		name string
		mk   func(seed int64) (*statsat.Locked, error)
	}{
		{"RLL", func(s int64) (*statsat.Locked, error) { return statsat.LockRLL(orig, 10, s) }},
		{"RLL-deep", func(s int64) (*statsat.Locked, error) { return statsat.LockRLLDeep(orig, 10, s) }},
		{"SLL", func(s int64) (*statsat.Locked, error) { return statsat.LockSLL(orig, 10, s) }},
		{"SFLL-HD0", func(s int64) (*statsat.Locked, error) { return statsat.LockSFLLHD(orig, 7, 0, s) }},
		{"SFLL-HD2", func(s int64) (*statsat.Locked, error) { return statsat.LockSFLLHD(orig, 7, 2, s) }},
		{"AntiSAT", func(s int64) (*statsat.Locked, error) { return statsat.LockAntiSAT(orig, 12, s) }},
		{"SARLock", func(s int64) (*statsat.Locked, error) { return statsat.LockSARLock(orig, 8, s) }},
	}
}

// TestIntegrationStandardSATAllLocks: on a noise-free chip the classic
// attack must break every scheme in the library (all are SAT-
// attackable in bounded time at these key widths).
func TestIntegrationStandardSATAllLocks(t *testing.T) {
	orig := statsat.RandomCircuit("integ", 16, 150, 8, 77)
	for _, lk := range lockers(orig) {
		t.Run(lk.name, func(t *testing.T) {
			l, err := lk.mk(5)
			if err != nil {
				t.Fatal(err)
			}
			orc := statsat.NewOracle(l.Circuit, l.Key)
			res, err := statsat.StandardSAT(l.Circuit, orc, 2000)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed || res.Key == nil {
				t.Fatal("attack failed")
			}
			eq, err := statsat.KeysEquivalent(l.Circuit, res.Key, l.Key)
			if err != nil {
				t.Fatal(err)
			}
			if !eq {
				t.Errorf("recovered key not equivalent (iterations=%d)", res.Iterations)
			}
		})
	}
}

// TestIntegrationStatSATAllLocks: StatSAT on a noisy chip must return
// a statistically close key for every scheme; usually the exact one.
func TestIntegrationStatSATAllLocks(t *testing.T) {
	orig := statsat.RandomCircuit("integ", 16, 150, 8, 78)
	const eps = 0.008
	for _, lk := range lockers(orig) {
		t.Run(lk.name, func(t *testing.T) {
			l, err := lk.mk(6)
			if err != nil {
				t.Fatal(err)
			}
			orc := statsat.NewNoisyOracle(l.Circuit, l.Key, eps, 55)
			res, err := statsat.Attack(l.Circuit, orc, statsat.Options{
				Ns: 256, NSatis: 10, NEval: 40, NInst: 8, EpsG: eps,
				MaxTotalIter: 4000, Seed: 3,
			})
			if err == statsat.ErrNoInstances {
				t.Fatal("every instance died")
			}
			if err != nil {
				t.Fatal(err)
			}
			if res.Best.HD > 0.1 {
				t.Errorf("best key HD %.4f too large", res.Best.HD)
			}
			eq, err := statsat.KeysEquivalent(l.Circuit, res.Best.Key, l.Key)
			if err != nil {
				t.Fatal(err)
			}
			if !eq {
				t.Logf("note: best key approximate (HD=%.4f) on %s — acceptable under noise", res.Best.HD, lk.name)
			}
		})
	}
}

// TestIntegrationSimplifyThenAttack: resynthesis (Simplify) must not
// change a lock's function nor break the attack pipeline.
func TestIntegrationSimplifyThenAttack(t *testing.T) {
	orig := statsat.RandomCircuit("integ", 16, 150, 8, 79)
	l, err := statsat.LockSFLLHD(orig, 7, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	simplified, err := statsat.Simplify(l.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	// Function preserved under the correct key.
	eq, err := statsat.EquivalentToOriginal(simplified, l.Key, orig)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("Simplify changed the locked function")
	}
	// Attack the simplified netlist.
	orc := statsat.NewOracle(simplified, l.Key)
	res, err := statsat.StandardSAT(simplified, orc, 2000)
	if err != nil {
		t.Fatal(err)
	}
	eq, err = statsat.KeysEquivalent(simplified, res.Key, l.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("attack on simplified netlist failed")
	}
}

// TestIntegrationBenchRoundTripAttack: the serialise → parse → attack
// path (what cmd/lockgen + cmd/statsat do) must agree with the
// in-memory path.
func TestIntegrationBenchRoundTripAttack(t *testing.T) {
	orig := statsat.RandomCircuit("integ", 14, 120, 7, 80)
	l, err := statsat.LockSLL(orig, 12, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"bench", "verilog"} {
		t.Run(format, func(t *testing.T) {
			var text string
			if format == "bench" {
				text = statsat.FormatBench(l.Circuit)
			} else {
				text = statsat.FormatVerilog(l.Circuit)
			}
			var back *statsat.Circuit
			var err error
			if format == "bench" {
				back, err = statsat.ParseBenchString(text)
			} else {
				back, err = statsat.ParseVerilogString(text)
			}
			if err != nil {
				t.Fatal(err)
			}
			orc := statsat.NewOracle(back, l.Key)
			res, err := statsat.StandardSAT(back, orc, 2000)
			if err != nil {
				t.Fatal(err)
			}
			eq, err := statsat.KeysEquivalent(back, res.Key, l.Key)
			if err != nil {
				t.Fatal(err)
			}
			if !eq {
				t.Errorf("%s round-trip attack failed", format)
			}
		})
	}
}

// TestIntegrationEquivalentKeysFootnote1 demonstrates footnote 1: the
// attack may return a key differing from the installed one yet
// inducing the same function (observed routinely with SLL).
func TestIntegrationEquivalentKeysFootnote1(t *testing.T) {
	found := false
	for seed := int64(0); seed < 6 && !found; seed++ {
		orig := statsat.RandomCircuit("integ", 14, 120, 7, 81+seed)
		l, err := statsat.LockSLL(orig, 12, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := statsat.StandardSAT(l.Circuit, statsat.NewOracle(l.Circuit, l.Key), 2000)
		if err != nil {
			t.Fatal(err)
		}
		eq, err := statsat.KeysEquivalent(l.Circuit, res.Key, l.Key)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatal("recovered key must be equivalent")
		}
		diff := false
		for i := range res.Key {
			if res.Key[i] != l.Key[i] {
				diff = true
			}
		}
		if diff {
			found = true
			t.Logf("seed %d: recovered %s vs installed %s — equivalent but distinct (footnote 1)",
				seed, fmtKey(res.Key), fmtKey(l.Key))
		}
	}
	if !found {
		t.Log("no distinct-but-equivalent key observed in 6 seeds (not an error)")
	}
}

func fmtKey(k []bool) string {
	s := ""
	for _, b := range k {
		if b {
			s += "1"
		} else {
			s += "0"
		}
	}
	return s
}

// TestIntegrationOverheadReporting sanity-checks the locking-cost
// metric across schemes: comparator-based schemes cost more gates than
// plain XOR insertion at the same key width.
func TestIntegrationOverheadReporting(t *testing.T) {
	orig := statsat.RandomCircuit("integ", 16, 200, 8, 90)
	rll, err := statsat.LockRLL(orig, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	sfll, err := statsat.LockSFLLHD(orig, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rll.CostVersus(orig).ExtraGates >= sfll.CostVersus(orig).ExtraGates {
		t.Errorf("RLL (+%d) should be cheaper than SFLL (+%d)",
			rll.CostVersus(orig).ExtraGates, sfll.CostVersus(orig).ExtraGates)
	}
}
