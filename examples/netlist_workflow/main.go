// netlist_workflow walks the full file-based flow a practitioner would
// use: generate a netlist, lock it, serialise it to both exchange
// formats (.bench and structural Verilog), re-load it as the attacker
// would (netlist only, no key), and attack the activated chip. It also
// shows the scan-chain handling for sequential (.bench DFF) designs.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"statsat"
)

func main() {
	dir, err := os.MkdirTemp("", "statsat-flow-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- Designer side -------------------------------------------------
	orig := statsat.RandomCircuit("design", 16, 200, 8, 2024)
	locked, err := statsat.LockSLL(orig, 16, 7)
	if err != nil {
		log.Fatal(err)
	}
	// Light resynthesis before tape-out.
	cleaned, err := statsat.Simplify(locked.Circuit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("designer: locked %q with %s (%d key bits), %d gates after clean-up\n",
		orig.Name, locked.Technique, len(locked.Key), cleaned.NumLogicGates())

	benchPath := filepath.Join(dir, "design_locked.bench")
	verilogPath := filepath.Join(dir, "design_locked.v")
	mustWrite(benchPath, statsat.FormatBench(cleaned))
	mustWrite(verilogPath, statsat.FormatVerilog(cleaned))
	fmt.Printf("designer: wrote %s and %s\n", filepath.Base(benchPath), filepath.Base(verilogPath))

	// --- Attacker side --------------------------------------------------
	// The foundry attacker reverse-engineers the layout into a netlist;
	// here: read the Verilog back. They have NO key.
	f, err := os.Open(verilogPath)
	if err != nil {
		log.Fatal(err)
	}
	stolen, err := statsat.ParseVerilog(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attacker: recovered netlist with %d key inputs\n", stolen.NumKeys())

	// They buy an activated (noisy) chip and run StatSAT.
	const eps = 0.01
	orc := statsat.NewNoisyOracle(stolen, locked.Key, eps, 99)
	res, err := statsat.Attack(stolen, orc, statsat.Options{
		Ns: 512, NSatis: 12, NEval: 60, NInst: 16, EpsG: eps, Seed: 5, Parallel: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	eq, err := statsat.KeysEquivalent(stolen, res.Best.Key, locked.Key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attacker: best key HD=%.4f correct=%v (%d keys, %v attack time)\n",
		res.Best.HD, eq, len(res.Keys), res.AttackDuration.Round(1e6))

	// --- Sequential designs ----------------------------------------------
	// ISCAS89-style netlists carry DFFs; the parser applies the
	// standard full-scan conversion (Q -> pseudo-PI, D -> pseudo-PO).
	seq := `# tiny sequential design
INPUT(a)
OUTPUT(y)
q0 = DFF(d0)
d0 = XOR(a, q0)
y  = AND(a, q0)
`
	c, err := statsat.ParseBenchString(seq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential: %d PIs (incl. scan), %d POs (incl. scan)\n", c.NumPIs(), c.NumPOs())
}

func mustWrite(path, content string) {
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
}
