// error_estimation demonstrates §V-E: the attacker does not know the
// chip's gate error probability eps_g, so they estimate it by sweeping
// a guess eps' upward until the simulated locked circuit's output
// uncertainties match the oracle's — then attack with the estimate.
package main

import (
	"fmt"
	"log"

	"statsat"
)

func main() {
	bm, _ := statsat.BenchmarkByName("c880")
	orig := bm.BuildScaled(8)
	locked, err := statsat.LockRLL(orig, 12, 4242)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%10s %12s %10s\n", "true eps%", "estimated%", "ratio")
	fmt.Println("----------------------------------------")
	for _, eps := range []float64{0.005, 0.01, 0.02, 0.04} {
		orc := statsat.NewNoisyOracle(locked.Circuit, locked.Key, eps, 11)
		est := statsat.EstimateGateError(locked.Circuit, orc, statsat.EstimateOptions{
			NProbe: 12, Ns: 200, NKeys: 4, Seed: 3,
		})
		fmt.Printf("%9.2f%% %11.3f%% %10.2f\n", eps*100, est*100, est/eps)
	}

	// Attack with the estimate instead of ground truth (as Table IV
	// does; E_lambda lowered because the estimate undershoots).
	const trueEps = 0.02
	orc := statsat.NewNoisyOracle(locked.Circuit, locked.Key, trueEps, 21)
	est := statsat.EstimateGateError(locked.Circuit, orc, statsat.EstimateOptions{Seed: 4})
	fmt.Printf("\nattacking with estimated eps'=%.3f%% (true %.2f%%)\n", est*100, trueEps*100)
	res, err := statsat.Attack(locked.Circuit, orc, statsat.Options{
		Ns: 150, NSatis: 10, NEval: 40, NInst: 8,
		EpsG:    est,
		ELambda: 0.15,
		Seed:    6,
	})
	if err != nil {
		log.Fatal(err)
	}
	eq, _ := statsat.KeysEquivalent(locked.Circuit, res.Best.Key, locked.Key)
	fmt.Printf("best key: HD=%.4f FM=%.4f correct=%v\n", res.Best.HD, res.Best.FM, eq)
	fmt.Println("knowing the exact eps_g is not necessary (paper §V-E)")
}
