// Quickstart: lock the ISCAS85 c17 circuit with random logic locking,
// activate a noisy chip (every gate flips with probability 1%), and
// recover the key with StatSAT.
package main

import (
	"fmt"
	"log"

	"statsat"
)

func main() {
	// 1. The designer's netlist.
	orig := statsat.C17()
	fmt.Printf("original: %d inputs, %d gates, %d outputs\n",
		orig.NumPIs(), orig.NumLogicGates(), orig.NumPOs())

	// 2. Lock it before sending it to the (untrusted) foundry.
	locked, err := statsat.LockRLL(orig, 4, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("locked with %s, key = %s\n", locked.Technique, keyString(locked.Key))

	// 3. The attacker buys an activated chip: a probabilistic oracle
	// with per-gate error 1%.
	const eps = 0.01
	orc := statsat.NewNoisyOracle(locked.Circuit, locked.Key, eps, 7)

	// 4. Run StatSAT (small sampling budgets — c17 is tiny).
	res, err := statsat.Attack(locked.Circuit, orc, statsat.Options{
		Ns:     200,
		NSatis: 8,
		NEval:  50,
		NInst:  4,
		EpsG:   eps, // §V assumption: the attacker knows eps_g
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Inspect the result.
	fmt.Printf("attack: %d key(s) in %v (%d oracle queries)\n",
		len(res.Keys), res.AttackDuration, res.OracleQueries)
	for i, k := range res.Keys {
		eq, err := statsat.KeysEquivalent(locked.Circuit, k.Key, locked.Key)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  key %d: %s  FM=%.4f HD=%.4f correct=%v\n",
			i, keyString(k.Key), k.FM, k.HD, eq)
	}
	best, _ := statsat.KeysEquivalent(locked.Circuit, res.Best.Key, locked.Key)
	if best {
		fmt.Println("SUCCESS: the best key unlocks the exact original function")
	} else {
		fmt.Println("best key is statistically close but not exact — rerun with larger Ns/NInst")
	}
}

func keyString(key []bool) string {
	b := make([]byte, len(key))
	for i, v := range key {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}
