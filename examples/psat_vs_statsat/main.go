// psat_vs_statsat reproduces the paper's Table V story in miniature:
// at low gate error the PSAT baseline still recovers the key, but as
// the error grows the dominant output pattern disappears, PSAT commits
// wrong patterns and collapses — while StatSAT, which works with
// per-bit signal probabilities and leaves uncertain bits unspecified,
// keeps succeeding.
package main

import (
	"fmt"
	"log"

	"statsat"
)

func main() {
	bm, _ := statsat.BenchmarkByName("c880")
	orig := bm.BuildScaled(8)
	locked, err := statsat.LockRLL(orig, 16, 880)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s, %s with %d key bits\n\n", orig.Name, locked.Technique, len(locked.Key))
	fmt.Printf("%8s | %-28s | %-28s\n", "eps_g", "PSAT (5 runs)", "StatSAT")
	fmt.Println("---------+------------------------------+------------------------------")

	// Per-run seeds derive from fixed bases plus the run index, so every
	// repetition is reproducible from coordinates alone.
	const oracleSeedBase, psatSeedBase int64 = 1000, 0

	for _, eps := range []float64{0.002, 0.01, 0.03} {
		// PSAT: repeated runs, counting correct-key recoveries.
		succ := 0
		const runs = 5
		for r := 0; r < runs; r++ {
			orc := statsat.NewNoisyOracle(locked.Circuit, locked.Key, eps, oracleSeedBase+int64(r))
			res, err := statsat.PSAT(locked.Circuit, orc, statsat.PSATOptions{
				Ns: 150, MaxIter: 2000, Seed: psatSeedBase + int64(r),
			})
			if err != nil || res.Failed || res.Key == nil {
				continue
			}
			if eq, _ := statsat.KeysEquivalent(locked.Circuit, res.Key, locked.Key); eq {
				succ++
			}
		}

		// StatSAT: one run with instance duplication enabled.
		orc := statsat.NewNoisyOracle(locked.Circuit, locked.Key, eps, 77)
		statRes, err := statsat.Attack(locked.Circuit, orc, statsat.Options{
			Ns: 150, NSatis: 10, NEval: 40, NInst: 8, EpsG: eps, Seed: 9,
		})
		statStr := "failed"
		if err == nil && statRes.Best != nil {
			eq, _ := statsat.KeysEquivalent(locked.Circuit, statRes.Best.Key, locked.Key)
			statStr = fmt.Sprintf("HD=%.4f correct=%v", statRes.Best.HD, eq)
		}
		fmt.Printf("%7.1f%% | %2d/%d correct                 | %s\n", eps*100, succ, runs, statStr)
	}
	fmt.Println("\nPSAT degrades with eps_g; StatSAT keeps recovering a (near-)correct key.")
}
