// Command tracing demonstrates the attack observability layer: it
// locks a small benchmark circuit, runs StatSAT against a noisy oracle
// with two trace sinks attached (a JSON-lines file and an in-memory
// recorder), then summarises what the trace reveals about the run —
// per-iteration solver effort, gating decisions and oracle spend.
//
// Run it from the repository root:
//
//	go run ./examples/tracing
//
// It writes trace.jsonl to the working directory; the schema of every
// line is documented in docs/OBSERVABILITY.md.
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"

	"statsat"
)

func main() {
	// A c880-style benchmark at reduced scale, locked with random
	// XOR/XNOR key gates, queried through a noisy chip (eps = 1%).
	bm, _ := statsat.BenchmarkByName("c880")
	orig := bm.BuildScaled(8)
	locked, err := statsat.LockRLL(orig, 12, 1)
	if err != nil {
		log.Fatal(err)
	}
	const eps = 0.01
	orc := statsat.NewNoisyOracle(locked.Circuit, locked.Key, eps, 7)

	// Sink 1: the portable JSON-lines format, for offline analysis.
	f, err := os.Create("trace.jsonl")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	defer bw.Flush()

	// Sink 2: an in-memory recorder, for programmatic inspection.
	rec := statsat.NewTraceRecorder()

	opts := statsat.Options{
		Ns: 128, NSatis: 16, NEval: 50, EvalNs: 128,
		NInst: 8, EpsG: eps, Seed: 1,
		Tracer: statsat.MultiTracer(statsat.NewJSONLTracer(bw), rec),
	}
	res, err := statsat.Attack(locked.Circuit, orc, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("attack finished: %d key(s), best HD = %.4f\n", len(res.Keys), res.Best.HD)
	fmt.Printf("trace: %d events written to trace.jsonl\n", len(rec.Events()))

	// The recorder gives structured access to everything the engine
	// did. A few things a Result alone cannot tell you:
	fmt.Printf("  dip_found events:   %d\n", rec.Count(statsat.TraceDIPFound))
	fmt.Printf("  forks:              %d\n", rec.Count(statsat.TraceFork))
	fmt.Printf("  force_proceeds:     %d\n", rec.Count(statsat.TraceForceProceed))

	var gatedU, gatedE, conflicts, queries int64
	for _, ev := range rec.Events() {
		switch ev.Type {
		case statsat.TraceBitsGated:
			gatedU += int64(len(ev.Gating.GatedU))
			gatedE += int64(len(ev.Gating.GatedE))
		case statsat.TraceAttackEnd:
			queries = ev.Totals.OracleQueries
		case statsat.TraceIterEnd:
			// Solver counters are cumulative; the last iteration_end
			// per instance holds that instance's total. Summing maxima
			// is overkill here — just remember the largest seen.
			if ev.Solver.Conflicts > conflicts {
				conflicts = ev.Solver.Conflicts
			}
		}
	}
	fmt.Printf("  bits gated by U_lambda: %d, by E_lambda: %d\n", gatedU, gatedE)
	fmt.Printf("  peak solver conflicts (one instance): %d\n", conflicts)
	fmt.Printf("  attack-phase oracle queries: %d\n", queries)
}
