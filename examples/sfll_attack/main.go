// sfll_attack demonstrates StatSAT against SFLL-HD — the paper's main
// locking target — on a synthetic c3540 stand-in, and contrasts the
// iteration count with the standard SAT attack on the deterministic
// version of the same chip (the comparison behind the paper's Fig. 4).
package main

import (
	"fmt"
	"log"

	"statsat"
)

func main() {
	bm, _ := statsat.BenchmarkByName("c3540")
	orig := bm.BuildScaled(16) // ~104 gates for a fast demo; use 1 for full size
	fmt.Printf("circuit %s: %d inputs, %d gates, %d outputs\n",
		orig.Name, orig.NumPIs(), orig.NumLogicGates(), orig.NumPOs())

	// SFLL-HD^0 with an 8-bit key: the SAT attack provably needs on
	// the order of 2^8 distinguishing inputs.
	locked, err := statsat.LockSFLLHD(orig, 8, 0, 3540)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("locked with %s (%d key bits)\n", locked.Technique, len(locked.Key))

	// Standard SAT attack on the noise-free chip, for reference.
	det := statsat.NewOracle(locked.Circuit, locked.Key)
	std, err := statsat.StandardSAT(locked.Circuit, det, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standard SAT (deterministic chip): %d iterations, %v\n",
		std.Iterations, std.Duration)

	// StatSAT on the probabilistic chip (paper's eps for c3540 is
	// 1.25%-2%; the scaled stand-in is shallower, so use 2.5%).
	const eps = 0.025
	orc := statsat.NewNoisyOracle(locked.Circuit, locked.Key, eps, 99)
	res, err := statsat.Attack(locked.Circuit, orc, statsat.Options{
		Ns:     150,
		NSatis: 10,
		NEval:  50,
		NInst:  8,
		EpsG:   eps,
		Seed:   5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("StatSAT (eps=%.1f%%): %d key(s), winning instance took %d iterations, T_attack=%v\n",
		eps*100, len(res.Keys), res.Best.Iterations, res.AttackDuration)
	fmt.Printf("instance stats: peak %d live, %d forks, %d force-proceeds, %d dead\n",
		res.Instances, res.Forks, res.ForceProceeds, res.DeadInstances)

	eq, err := statsat.KeysEquivalent(locked.Circuit, res.Best.Key, locked.Key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best key: FM=%.4f HD=%.4f correct=%v\n", res.Best.FM, res.Best.HD, eq)
	fmt.Printf("overhead vs standard SAT: %.1fx iterations\n",
		float64(res.Best.Iterations)/float64(std.Iterations))
}
