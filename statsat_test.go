package statsat_test

import (
	"strings"
	"testing"

	"statsat"
)

func TestFacadeEndToEnd(t *testing.T) {
	orig := statsat.C17()
	locked, err := statsat.LockRLL(orig, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	orc := statsat.NewNoisyOracle(locked.Circuit, locked.Key, 0.01, 7)
	res, err := statsat.Attack(locked.Circuit, orc, statsat.Options{
		Ns: 200, NSatis: 8, NEval: 40, NInst: 4, EpsG: 0.01, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eq, err := statsat.KeysEquivalent(locked.Circuit, res.Best.Key, locked.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("facade attack did not recover an equivalent key (HD=%.4f)", res.Best.HD)
	}
	if eq2, _ := statsat.EquivalentToOriginal(locked.Circuit, res.Best.Key, orig); !eq2 {
		t.Error("recovered key does not restore the original function")
	}
}

func TestFacadeBenchRoundTrip(t *testing.T) {
	orig := statsat.C17()
	locked, err := statsat.LockSFLLHD(orig, 4, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	text := statsat.FormatBench(locked.Circuit)
	back, err := statsat.ParseBenchString(text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if back.NumKeys() != 4 {
		t.Errorf("round-trip lost key inputs: %d", back.NumKeys())
	}
	if !strings.Contains(text, "keyinput0") {
		t.Error("serialised netlist missing keyinput names")
	}
	// Functional agreement through the round trip.
	pi := []bool{true, false, true, true, false}
	a := locked.Circuit.Eval(pi, locked.Key, nil)
	b := back.Eval(pi, locked.Key, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("round-trip changed behaviour")
		}
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	bms := statsat.Benchmarks()
	if len(bms) != 7 {
		t.Fatalf("benchmark suite has %d entries", len(bms))
	}
	if _, ok := statsat.BenchmarkByName("seq"); !ok {
		t.Error("seq missing")
	}
	c := statsat.RandomCircuit("r", 8, 50, 4, 1)
	if c.NumPIs() != 8 || c.NumPOs() != 4 {
		t.Error("RandomCircuit dims wrong")
	}
}

func TestFacadeBaselines(t *testing.T) {
	orig := statsat.C17()
	locked, err := statsat.LockSLL(orig, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	det := statsat.NewOracle(locked.Circuit, locked.Key)
	std, err := statsat.StandardSAT(locked.Circuit, det, 0)
	if err != nil {
		t.Fatal(err)
	}
	if std.Key == nil {
		t.Fatal("standard SAT failed on deterministic oracle")
	}
	ps, err := statsat.PSAT(locked.Circuit, det, statsat.PSATOptions{Ns: 3})
	if err != nil || ps.Key == nil {
		t.Fatalf("PSAT on deterministic oracle: %v %v", err, ps)
	}
}

func TestFacadeMetrics(t *testing.T) {
	a := [][]float64{{0.1, 0.9}}
	b := [][]float64{{0.2, 0.9}}
	if statsat.FM(a, b) != 0.05 {
		t.Errorf("FM = %v", statsat.FM(a, b))
	}
	if statsat.HD(a, b) != 0.05 {
		t.Errorf("HD = %v", statsat.HD(a, b))
	}
	orig := statsat.C17()
	locked, _ := statsat.LockRLL(orig, 3, 2)
	s := statsat.MeasureBER(locked.Circuit, locked.Key, 0.05, 10, 50, 1)
	if s.Avg <= 0 || s.Max < s.Avg {
		t.Errorf("BER stats: %+v", s)
	}
}

func TestFacadeEstimator(t *testing.T) {
	orig := statsat.RandomCircuit("est", 12, 120, 8, 3)
	locked, err := statsat.LockRLL(orig, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	orc := statsat.NewNoisyOracle(locked.Circuit, locked.Key, 0.02, 5)
	est := statsat.EstimateGateError(locked.Circuit, orc, statsat.EstimateOptions{
		NProbe: 6, Ns: 100, NKeys: 3, Seed: 2,
	})
	if est <= 0 || est > 0.25 {
		t.Errorf("estimate %v out of range", est)
	}
	if qs := orc.Queries(); qs == 0 {
		t.Error("estimator did not query the oracle")
	}
}

func TestFacadeVerilogAndSimplify(t *testing.T) {
	orig := statsat.RandomCircuit("v", 8, 60, 5, 9)
	text := statsat.FormatVerilog(orig)
	back, err := statsat.ParseVerilogString(text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	simp, err := statsat.Simplify(back)
	if err != nil {
		t.Fatal(err)
	}
	if simp.NumLogicGates() > back.NumLogicGates() {
		t.Error("simplify grew the netlist")
	}
	var sb strings.Builder
	if err := statsat.WriteVerilog(&sb, simp); err != nil {
		t.Fatal(err)
	}
	if _, err := statsat.ParseVerilog(strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExtraLocks(t *testing.T) {
	orig := statsat.RandomCircuit("l", 16, 150, 8, 10)
	for _, mk := range []struct {
		name string
		f    func() (*statsat.Locked, error)
	}{
		{"rll-deep", func() (*statsat.Locked, error) { return statsat.LockRLLDeep(orig, 8, 1) }},
		{"antisat", func() (*statsat.Locked, error) { return statsat.LockAntiSAT(orig, 8, 2) }},
		{"sarlock", func() (*statsat.Locked, error) { return statsat.LockSARLock(orig, 8, 3) }},
	} {
		l, err := mk.f()
		if err != nil {
			t.Fatalf("%s: %v", mk.name, err)
		}
		eq, err := statsat.EquivalentToOriginal(l.Circuit, l.Key, orig)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("%s: correct key fails", mk.name)
		}
	}
}

func TestFacadeAppSAT(t *testing.T) {
	orig := statsat.RandomCircuit("a", 10, 80, 6, 11)
	l, err := statsat.LockRLL(orig, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := statsat.AppSAT(l.Circuit, statsat.NewOracle(l.Circuit, l.Key), statsat.AppSATOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Key == nil {
		t.Fatal("AppSAT failed on deterministic oracle")
	}
	if eq, _ := statsat.KeysEquivalent(l.Circuit, res.Key, l.Key); !eq {
		t.Error("AppSAT key wrong")
	}
}

func TestFacadeCircuitBuilding(t *testing.T) {
	c := statsat.NewCircuit("manual")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.AddGate(statsat.Nand, "g", a, b)
	c.AddOutput(g, "y")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if out := c.Eval([]bool{true, true}, nil, nil); out[0] != false {
		t.Error("NAND(1,1) != 0")
	}
	if statsat.SignalProbs(statsat.NewOracle(c, nil), []bool{true, true}, 5)[0] != 0 {
		t.Error("signal prob of constant-0 output should be 0")
	}
}
