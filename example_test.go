package statsat_test

import (
	"fmt"

	"statsat"
)

// Example demonstrates the core loop: lock a design, activate a noisy
// chip, recover the key with StatSAT and verify it exactly.
func Example() {
	orig := statsat.C17()
	locked, _ := statsat.LockRLL(orig, 4, 42)
	orc := statsat.NewNoisyOracle(locked.Circuit, locked.Key, 0.01, 7)
	res, _ := statsat.Attack(locked.Circuit, orc, statsat.Options{
		Ns: 200, NSatis: 8, NEval: 40, NInst: 4, EpsG: 0.01, Seed: 1,
	})
	eq, _ := statsat.KeysEquivalent(locked.Circuit, res.Best.Key, locked.Key)
	fmt.Println("correct key recovered:", eq)
	// Output: correct key recovered: true
}

// ExampleLockSFLLHD shows SFLL-HD locking and the exact-equivalence
// check against the unlocked original.
func ExampleLockSFLLHD() {
	orig := statsat.C17()
	locked, _ := statsat.LockSFLLHD(orig, 4, 0, 3)
	eq, _ := statsat.EquivalentToOriginal(locked.Circuit, locked.Key, orig)
	fmt.Println(locked.Technique, "restores the design:", eq)
	// Output: SFLL-HD^0 restores the design: true
}

// ExampleParseBenchString parses a netlist in ISCAS .bench format;
// inputs named keyinput* become key inputs.
func ExampleParseBenchString() {
	c, _ := statsat.ParseBenchString(`
INPUT(a)
INPUT(keyinput0)
OUTPUT(y)
y = XOR(a, keyinput0)
`)
	fmt.Println(c.NumPIs(), "primary input,", c.NumKeys(), "key input")
	// Output: 1 primary input, 1 key input
}

// ExampleStandardSAT runs the classic SAT attack on a deterministic
// oracle.
func ExampleStandardSAT() {
	orig := statsat.C17()
	locked, _ := statsat.LockSLL(orig, 4, 9)
	res, _ := statsat.StandardSAT(locked.Circuit, statsat.NewOracle(locked.Circuit, locked.Key), 0)
	eq, _ := statsat.KeysEquivalent(locked.Circuit, res.Key, locked.Key)
	fmt.Println("classic SAT attack succeeds on the noise-free chip:", eq)
	// Output: classic SAT attack succeeds on the noise-free chip: true
}

// ExampleSignalProbs samples the oracle the way eq. 1 prescribes.
func ExampleSignalProbs() {
	c, _ := statsat.ParseBenchString("INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n")
	orc := statsat.NewOracle(c, nil)
	probs := statsat.SignalProbs(orc, []bool{true}, 10)
	fmt.Printf("P(y=1) = %.1f\n", probs[0])
	// Output: P(y=1) = 1.0
}
