# Tier-1 verification: vet, build everything, run the project linter,
# check formatting, then run all tests with the race detector (trace
# emission from parallel attack instances must stay race-free — see
# docs/OBSERVABILITY.md). statlint sits between vet and race so the
# repo's determinism / buffer-aliasing / trace-gating invariants are
# machine-checked on every verify — see docs/LINTING.md.
.PHONY: verify build test vet race bench statlint suppressions doclinks fmt fmtcheck

verify: vet build statlint suppressions doclinks fmtcheck race

vet:
	go vet ./...

build:
	go build ./...

# statlint: the stdlib-only project linter (globalrand, walltime,
# bufretain, tracegate, floateq, ctxflow, goleak, lockscope,
# seedflow). Nonzero exit on any finding.
statlint:
	go run ./cmd/statlint ./...

# suppressions: print the //lint:ignore inventory (reviewed, not
# forgotten) and fail on malformed directives or ones naming a check
# that no longer exists — the staleness gate for check renames.
suppressions:
	go run ./cmd/statlint -suppressions

# doclinks: fail verify when any documentation cross-link is dead — a
# markdown link or prose docs/*.md mention in README/DESIGN/ROADMAP,
# docs/*.md or a Go doc comment pointing at a missing file or heading.
doclinks:
	go run ./cmd/statlint -docs

# fmt rewrites; fmtcheck only reports (and fails verify on drift).
fmt:
	gofmt -l -w .

fmtcheck:
	@drift=$$(gofmt -l .); if [ -n "$$drift" ]; then \
		echo "gofmt drift in:"; echo "$$drift"; exit 1; fi

test:
	go test ./...

race:
	go test -race ./...

# Smoke-profile benchmarks: one pass over every table/figure generator
# (see bench_test.go). benchdiff compares against the newest recorded
# baseline (the version-sorted last of BENCH_*.json, so landing a new
# BENCH_prN.json automatically makes it the reference) and warns
# (without failing) when allocs/op regress >20% — allocation counts
# are deterministic, so that is signal, not noise. Pass -fail to
# benchdiff for a hard gate.
BENCH_BASELINE = $(shell ls BENCH_*.json | sort -V | tail -1)

bench:
	go test -run='^$$' -bench=. -benchtime=1x -benchmem . | tee bench.out
	go run ./cmd/benchdiff -baseline $(BENCH_BASELINE) bench.out
