# Tier-1 verification: vet, build everything, run all tests with the
# race detector (trace emission from parallel attack instances must
# stay race-free — see docs/OBSERVABILITY.md).
.PHONY: verify build test vet race bench

verify: vet build race

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Smoke-profile benchmarks: one pass over every table/figure generator
# (see bench_test.go). BENCH_baseline.json records a reference run;
# benchdiff warns (without failing) when allocs/op regress >20% —
# allocation counts are deterministic, so that is signal, not noise.
bench:
	go test -run='^$$' -bench=. -benchtime=1x -benchmem . | tee bench.out
	go run ./cmd/benchdiff -baseline BENCH_baseline.json bench.out
