// Package gen provides the benchmark circuits for the reproduction:
// the real ISCAS85 c17, a seeded random-DAG generator, and synthetic
// stand-ins for the Table I benchmark suite (c3540, c7552, ex1010,
// seq, b14, b15) plus c880 (used by Table V).
//
// Substitution note (see DESIGN.md §8): the original ISCAS/MCNC/ITC99
// netlists are not redistributable from memory; the stand-ins match
// the published input/gate/output counts so that attack dynamics
// (miter size, oracle width, BER distributions) are comparable, and a
// scale factor shrinks gate counts for CI-speed experiment profiles.
package gen

import (
	"fmt"
	"math/rand"

	"statsat/internal/circuit"
)

// C17 returns the real ISCAS85 c17 netlist (6 NAND gates).
func C17() *circuit.Circuit {
	c := circuit.New("c17")
	g1 := c.AddInput("1")
	g2 := c.AddInput("2")
	g3 := c.AddInput("3")
	g6 := c.AddInput("6")
	g7 := c.AddInput("7")
	g10 := c.AddGate(circuit.Nand, "10", g1, g3)
	g11 := c.AddGate(circuit.Nand, "11", g3, g6)
	g16 := c.AddGate(circuit.Nand, "16", g2, g11)
	g19 := c.AddGate(circuit.Nand, "19", g11, g7)
	g22 := c.AddGate(circuit.Nand, "22", g10, g16)
	g23 := c.AddGate(circuit.Nand, "23", g16, g19)
	c.AddOutput(g22, "22")
	c.AddOutput(g23, "23")
	return c
}

// Random generates a seeded random combinational circuit with the
// given interface widths. The construction is deterministic in the
// seed. Fanin selection is locality-biased so the netlist develops
// realistic logic depth instead of collapsing into a two-level cloud;
// each primary input is forced into at least one gate's fanin; primary
// outputs are drawn preferentially from fanout-free gates so most of
// the netlist stays observable.
func Random(name string, nIn, nGates, nOut int, seed int64) *circuit.Circuit {
	if nIn < 1 || nGates < 1 || nOut < 1 {
		panic(fmt.Sprintf("gen: Random(%q) with non-positive dimension", name))
	}
	if nOut > nGates {
		panic(fmt.Sprintf("gen: Random(%q) needs %d distinct output drivers but has only %d gates", name, nOut, nGates))
	}
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(name)
	for i := 0; i < nIn; i++ {
		c.AddInput(fmt.Sprintf("in%d", i))
	}

	// Weighted gate-type mix, roughly matching ISCAS population.
	pick := func() circuit.GateType {
		switch r := rng.Intn(100); {
		case r < 22:
			return circuit.Nand
		case r < 40:
			return circuit.And
		case r < 55:
			return circuit.Nor
		case r < 70:
			return circuit.Or
		case r < 84:
			return circuit.Not
		case r < 92:
			return circuit.Xor
		default:
			return circuit.Xnor
		}
	}
	window := nGates / 10
	if window < 8 {
		window = 8
	}
	pickFanin := func() int {
		n := len(c.Gates)
		if n > window && rng.Float64() < 0.75 {
			return n - 1 - rng.Intn(window)
		}
		return rng.Intn(n)
	}
	for i := 0; i < nGates; i++ {
		ty := pick()
		var f1 int
		if i < nIn {
			f1 = c.PIs[i] // force every input into some fanin
		} else {
			f1 = pickFanin()
		}
		if ty == circuit.Not {
			c.AddGate(ty, fmt.Sprintf("g%d", i), f1)
			continue
		}
		f2 := pickFanin()
		c.AddGate(ty, fmt.Sprintf("g%d", i), f1, f2)
	}

	// Outputs: prefer fanout-free gates (sinks) so the dead-logic
	// fraction stays small; fill up with random distinct gates.
	fan := c.Fanouts()
	var sinks []int
	for id := nIn; id < len(c.Gates); id++ {
		if len(fan[id]) == 0 {
			sinks = append(sinks, id)
		}
	}
	rng.Shuffle(len(sinks), func(i, j int) { sinks[i], sinks[j] = sinks[j], sinks[i] })
	chosen := map[int]bool{}
	for _, s := range sinks {
		if len(c.POs) >= nOut {
			break
		}
		c.AddOutput(s, "")
		chosen[s] = true
	}
	for len(c.POs) < nOut {
		id := nIn + rng.Intn(nGates)
		if chosen[id] {
			continue
		}
		c.AddOutput(id, "")
		chosen[id] = true
	}
	return c
}

// Benchmark describes one Table I (or Table V) circuit.
type Benchmark struct {
	Name    string
	Source  string
	Inputs  int
	Gates   int
	Outputs int
	Seed    int64
}

// TableI is the paper's benchmark suite (Table I), with c880 appended
// because Table V uses it for the PSAT comparison. Sizes follow the
// published counts.
var TableI = []Benchmark{
	{Name: "c3540", Source: "ISCAS85", Inputs: 50, Gates: 1669, Outputs: 22, Seed: 3540},
	{Name: "c7552", Source: "ISCAS85", Inputs: 207, Gates: 3512, Outputs: 108, Seed: 7552},
	{Name: "ex1010", Source: "MCNC", Inputs: 10, Gates: 5066, Outputs: 10, Seed: 1010},
	{Name: "seq", Source: "MCNC", Inputs: 41, Gates: 3519, Outputs: 35, Seed: 417},
	{Name: "b14", Source: "ITC99", Inputs: 277, Gates: 9767, Outputs: 299, Seed: 1499},
	{Name: "b15", Source: "ITC99", Inputs: 485, Gates: 8367, Outputs: 519, Seed: 1599},
	{Name: "c880", Source: "ISCAS85", Inputs: 60, Gates: 383, Outputs: 26, Seed: 880},
}

// Extra holds presets beyond the paper's tables: scaling targets the
// attack must handle even though no published experiment uses them.
// synth100k is the ROADMAP's "100k-gate circuits at interactive
// latency" workload — the CI smoke job and BENCH_pr7 measurements
// build it by name.
var Extra = []Benchmark{
	{Name: "synth100k", Source: "synthetic", Inputs: 256, Gates: 100000, Outputs: 128, Seed: 100001},
}

// ByName looks a benchmark up by name, in TableI first, then Extra.
func ByName(name string) (Benchmark, bool) {
	for _, b := range TableI {
		if b.Name == name {
			return b, true
		}
	}
	for _, b := range Extra {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Build synthesises the stand-in circuit at full published size.
func (b Benchmark) Build() *circuit.Circuit {
	return b.BuildScaled(1)
}

// BuildScaled synthesises the stand-in with the gate count divided by
// scale (minimum 20 gates); inputs and outputs are scaled gently
// (divided by sqrt-ish factors, floored) so the interface stays wide
// relative to the logic, but CI runs stay fast. scale=1 reproduces the
// published dimensions exactly.
func (b Benchmark) BuildScaled(scale int) *circuit.Circuit {
	if scale < 1 {
		scale = 1
	}
	gates := b.Gates / scale
	if gates < 20 {
		gates = 20
	}
	in, out := b.Inputs, b.Outputs
	if scale > 1 {
		// Halve interface widths once for any scaling, keeping at
		// least 5 inputs / 2 outputs; keeps output-BER statistics
		// meaningful while shrinking oracle sampling cost.
		in = max(5, b.Inputs/2)
		out = max(2, b.Outputs/2)
	}
	// Deep scaling can push the interface beyond the logic: every
	// output needs a distinct driver gate, and forcing more inputs
	// than gates leaves inputs dangling.
	if out > gates/2 {
		out = max(2, gates/2)
	}
	if in > gates {
		in = max(5, gates)
	}
	name := b.Name
	if scale > 1 {
		name = fmt.Sprintf("%s-s%d", b.Name, scale)
	} else {
		name = b.Name + "-syn"
	}
	return Random(name, in, gates, out, b.Seed)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
