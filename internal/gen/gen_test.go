package gen

import (
	"testing"
)

func TestC17(t *testing.T) {
	c := C17()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	s := c.Summary()
	if s.Inputs != 5 || s.Gates != 6 || s.Outputs != 2 {
		t.Errorf("c17 summary = %+v", s)
	}
	// Known vector: all ones → 22=NAND(10,16); 10=NAND(1,1)=0 → 22=1.
	out := c.Eval([]bool{true, true, true, true, true}, nil, nil)
	if out[0] != true {
		t.Errorf("c17(11111)[0] = %v, want true", out[0])
	}
}

func TestRandomDimensions(t *testing.T) {
	c := Random("r", 12, 200, 9, 42)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	s := c.Summary()
	if s.Inputs != 12 || s.Gates != 200 || s.Outputs != 9 {
		t.Errorf("summary = %+v", s)
	}
	if s.Depth < 3 {
		t.Errorf("depth %d suspiciously small for 200 gates", s.Depth)
	}
}

func TestRandomDeterministicInSeed(t *testing.T) {
	a := Random("a", 10, 150, 6, 7)
	b := Random("b", 10, 150, 6, 7)
	if a.NumGates() != b.NumGates() {
		t.Fatal("same seed, different gate count")
	}
	for i := range a.Gates {
		if a.Gates[i].Type != b.Gates[i].Type || len(a.Gates[i].Fanin) != len(b.Gates[i].Fanin) {
			t.Fatalf("gate %d differs between same-seed builds", i)
		}
		for j := range a.Gates[i].Fanin {
			if a.Gates[i].Fanin[j] != b.Gates[i].Fanin[j] {
				t.Fatalf("gate %d fanin differs", i)
			}
		}
	}
	for i := range a.POs {
		if a.POs[i] != b.POs[i] {
			t.Fatal("outputs differ between same-seed builds")
		}
	}
}

func TestRandomDifferentSeedsDiffer(t *testing.T) {
	a := Random("a", 10, 150, 6, 1)
	b := Random("b", 10, 150, 6, 2)
	same := true
	for i := range a.Gates {
		if a.Gates[i].Type != b.Gates[i].Type {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical gate types (astronomically unlikely)")
	}
}

func TestRandomAllInputsUsed(t *testing.T) {
	c := Random("r", 20, 100, 5, 3)
	fan := c.Fanouts()
	for i, id := range c.PIs {
		if len(fan[id]) == 0 {
			t.Errorf("input %d unused", i)
		}
	}
}

func TestRandomMostGatesObservable(t *testing.T) {
	c := Random("r", 15, 400, 12, 11)
	reach := c.ReachesOutput()
	obs := 0
	for id := range c.Gates {
		if reach[id] {
			obs++
		}
	}
	frac := float64(obs) / float64(c.NumGates())
	if frac < 0.5 {
		t.Errorf("only %.0f%% of gates observable; generator degenerated", 100*frac)
	}
}

func TestRandomOutputsDistinct(t *testing.T) {
	c := Random("r", 8, 60, 10, 5)
	seen := map[int]bool{}
	for _, po := range c.POs {
		if seen[po] {
			t.Fatalf("duplicate output driver %d", po)
		}
		seen[po] = true
	}
}

func TestRandomPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for zero inputs")
		}
	}()
	Random("bad", 0, 10, 1, 1)
}

func TestTableIInventory(t *testing.T) {
	wantNames := []string{"c3540", "c7552", "ex1010", "seq", "b14", "b15", "c880"}
	if len(TableI) != len(wantNames) {
		t.Fatalf("TableI has %d entries", len(TableI))
	}
	for i, n := range wantNames {
		if TableI[i].Name != n {
			t.Errorf("TableI[%d] = %s, want %s", i, TableI[i].Name, n)
		}
	}
	if b, ok := ByName("c3540"); !ok || b.Gates != 1669 || b.Inputs != 50 || b.Outputs != 22 {
		t.Errorf("c3540 entry wrong: %+v", b)
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName should miss unknown circuits")
	}
}

func TestBuildFullSize(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size synthesis in -short mode")
	}
	b, _ := ByName("c3540")
	c := b.Build()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	s := c.Summary()
	if s.Inputs != 50 || s.Gates != 1669 || s.Outputs != 22 {
		t.Errorf("c3540-syn summary = %+v, want published dims", s)
	}
}

func TestBuildScaled(t *testing.T) {
	b, _ := ByName("b14")
	c := b.BuildScaled(16)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	s := c.Summary()
	if s.Gates != 9767/16 {
		t.Errorf("scaled gates = %d, want %d", s.Gates, 9767/16)
	}
	if s.Inputs != 277/2 || s.Outputs != 299/2 {
		t.Errorf("scaled interface = %d/%d", s.Inputs, s.Outputs)
	}
	if c.Name != "b14-s16" {
		t.Errorf("scaled name = %q", c.Name)
	}
}

func TestBuildScaledFloors(t *testing.T) {
	b := Benchmark{Name: "tiny", Inputs: 6, Gates: 30, Outputs: 3, Seed: 1}
	c := b.BuildScaled(1000)
	s := c.Summary()
	if s.Gates < 20 || s.Inputs < 5 || s.Outputs < 2 {
		t.Errorf("floors not applied: %+v", s)
	}
	if d := b.BuildScaled(0); d.Summary().Gates != 30 {
		t.Error("scale<1 should clamp to 1")
	}
}

func TestScaledCircuitsAttackableShape(t *testing.T) {
	// Every Table I stand-in at scale 16 must validate and evaluate.
	for _, b := range TableI {
		c := b.BuildScaled(16)
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		var pi []bool
		for range c.PIs {
			pi = append(pi, true)
		}
		out := c.Eval(pi, nil, nil)
		if len(out) != c.NumPOs() {
			t.Errorf("%s: eval output width %d", b.Name, len(out))
		}
	}
}

func BenchmarkBuildC3540Full(b *testing.B) {
	bm, _ := ByName("c3540")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bm.Build()
	}
}
