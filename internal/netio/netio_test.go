package netio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"statsat/internal/gen"
)

func TestFormatForPath(t *testing.T) {
	cases := map[string]Format{
		"a.bench": Bench,
		"a.v":     Verilog,
		"a.V":     Verilog,
		"a.sv":    Verilog,
		"a.vlg":   Verilog,
		"a.txt":   Bench,
		"a":       Bench,
	}
	for path, want := range cases {
		if got := FormatForPath(path); got != want {
			t.Errorf("FormatForPath(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestParseFormat(t *testing.T) {
	for name, want := range map[string]Format{"bench": Bench, "verilog": Verilog, "v": Verilog, "": ""} {
		got, err := ParseFormat(name)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %q, %v", name, got, err)
		}
	}
	if _, err := ParseFormat("edif"); err == nil {
		t.Error("want error for unknown format")
	}
}

func TestFileRoundTripBothFormats(t *testing.T) {
	dir := t.TempDir()
	orig := gen.Random("rt", 8, 50, 4, 1)
	for _, name := range []string{"c.bench", "c.v"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, orig, ""); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := ReadFile(path, "")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if back.NumPIs() != orig.NumPIs() || back.NumPOs() != orig.NumPOs() {
			t.Errorf("%s: interface mismatch", name)
		}
		pi := make([]bool, orig.NumPIs())
		a := orig.Eval(pi, nil, nil)
		b := back.Eval(pi, nil, nil)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: behaviour changed through file round-trip", name)
			}
		}
	}
}

func TestExplicitFormatOverridesExtension(t *testing.T) {
	dir := t.TempDir()
	orig := gen.C17()
	path := filepath.Join(dir, "weird.txt")
	if err := WriteFile(path, orig, Verilog); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if !strings.Contains(string(data), "module") {
		t.Error("explicit Verilog format ignored on write")
	}
	if _, err := ReadFile(path, Verilog); err != nil {
		t.Errorf("explicit Verilog format ignored on read: %v", err)
	}
}

func TestReadFileErrors(t *testing.T) {
	if _, err := ReadFile("/nonexistent/x.bench", ""); err == nil {
		t.Error("want error for missing file")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.bench")
	os.WriteFile(bad, []byte("y = FROB(a)\n"), 0o644)
	if _, err := ReadFile(bad, ""); err == nil {
		t.Error("want parse error")
	}
	if !strings.Contains(func() string { _, err := ReadFile(bad, ""); return err.Error() }(), "bad.bench") {
		t.Error("error should carry the path")
	}
}

func TestWriteFileErrors(t *testing.T) {
	if err := WriteFile("/nonexistent/dir/x.bench", gen.C17(), ""); err == nil {
		t.Error("want error for unwritable path")
	}
}

func TestUnknownFormatErrors(t *testing.T) {
	if _, err := Read(strings.NewReader(""), "edif"); err == nil {
		t.Error("want read error")
	}
	if err := Write(os.Stderr, gen.C17(), "edif"); err == nil {
		t.Error("want write error")
	}
}

func TestReadFromAndReadString(t *testing.T) {
	orig := gen.C17()
	var sb strings.Builder
	if err := Write(&sb, orig, Bench); err != nil {
		t.Fatal(err)
	}
	src := sb.String()

	// ReadFrom: canonical reader-based entry point, "" defaults to bench.
	for _, f := range []Format{Bench, ""} {
		c, err := ReadFrom(strings.NewReader(src), f)
		if err != nil {
			t.Fatalf("ReadFrom(%q): %v", f, err)
		}
		if c.NumPIs() != orig.NumPIs() || c.NumPOs() != orig.NumPOs() {
			t.Errorf("ReadFrom(%q): interface mismatch", f)
		}
	}

	// ReadString is sugar over ReadFrom.
	c, err := ReadString(src, Bench)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumPIs() != orig.NumPIs() {
		t.Error("ReadString: interface mismatch")
	}

	// Verilog through the same path.
	var vb strings.Builder
	if err := Write(&vb, orig, Verilog); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrom(strings.NewReader(vb.String()), Verilog); err != nil {
		t.Errorf("ReadFrom verilog: %v", err)
	}

	if _, err := ReadFrom(strings.NewReader(src), "edif"); err == nil {
		t.Error("want error for unknown format")
	}
}
