package netio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"statsat/internal/gen"
)

func TestFormatForPath(t *testing.T) {
	cases := map[string]Format{
		"a.bench": Bench,
		"a.v":     Verilog,
		"a.V":     Verilog,
		"a.sv":    Verilog,
		"a.vlg":   Verilog,
		"a.txt":   Bench,
		"a":       Bench,
	}
	for path, want := range cases {
		if got := FormatForPath(path); got != want {
			t.Errorf("FormatForPath(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestParseFormat(t *testing.T) {
	for name, want := range map[string]Format{"bench": Bench, "verilog": Verilog, "v": Verilog, "": ""} {
		got, err := ParseFormat(name)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %q, %v", name, got, err)
		}
	}
	if _, err := ParseFormat("edif"); err == nil {
		t.Error("want error for unknown format")
	}
}

func TestFileRoundTripBothFormats(t *testing.T) {
	dir := t.TempDir()
	orig := gen.Random("rt", 8, 50, 4, 1)
	for _, name := range []string{"c.bench", "c.v"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, orig, ""); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := ReadFile(path, "")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if back.NumPIs() != orig.NumPIs() || back.NumPOs() != orig.NumPOs() {
			t.Errorf("%s: interface mismatch", name)
		}
		pi := make([]bool, orig.NumPIs())
		a := orig.Eval(pi, nil, nil)
		b := back.Eval(pi, nil, nil)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: behaviour changed through file round-trip", name)
			}
		}
	}
}

func TestExplicitFormatOverridesExtension(t *testing.T) {
	dir := t.TempDir()
	orig := gen.C17()
	path := filepath.Join(dir, "weird.txt")
	if err := WriteFile(path, orig, Verilog); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if !strings.Contains(string(data), "module") {
		t.Error("explicit Verilog format ignored on write")
	}
	if _, err := ReadFile(path, Verilog); err != nil {
		t.Errorf("explicit Verilog format ignored on read: %v", err)
	}
}

func TestReadFileErrors(t *testing.T) {
	if _, err := ReadFile("/nonexistent/x.bench", ""); err == nil {
		t.Error("want error for missing file")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.bench")
	os.WriteFile(bad, []byte("y = FROB(a)\n"), 0o644)
	if _, err := ReadFile(bad, ""); err == nil {
		t.Error("want parse error")
	}
	if !strings.Contains(func() string { _, err := ReadFile(bad, ""); return err.Error() }(), "bad.bench") {
		t.Error("error should carry the path")
	}
}

func TestWriteFileErrors(t *testing.T) {
	if err := WriteFile("/nonexistent/dir/x.bench", gen.C17(), ""); err == nil {
		t.Error("want error for unwritable path")
	}
}

func TestUnknownFormatErrors(t *testing.T) {
	if _, err := Read(strings.NewReader(""), "edif"); err == nil {
		t.Error("want read error")
	}
	if err := Write(os.Stderr, gen.C17(), "edif"); err == nil {
		t.Error("want write error")
	}
}
