// Package netio dispatches netlist reading/writing between the
// supported exchange formats (.bench and structural Verilog) by file
// extension or explicit format name. All cmd/ tools go through it.
package netio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"statsat/internal/bench"
	"statsat/internal/circuit"
	"statsat/internal/verilog"
)

// Format identifies a netlist serialisation.
type Format string

// Supported formats.
const (
	Bench   Format = "bench"
	Verilog Format = "verilog"
)

// FormatForPath infers the format from a file extension (".v"/".sv" →
// Verilog, everything else → bench, matching benchmark-suite
// conventions).
func FormatForPath(path string) Format {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".v", ".sv", ".vlg":
		return Verilog
	}
	return Bench
}

// ParseFormat validates an explicit format name ("" means: defer to
// the path).
func ParseFormat(name string) (Format, error) {
	switch strings.ToLower(name) {
	case "":
		return "", nil
	case "bench":
		return Bench, nil
	case "verilog", "v":
		return Verilog, nil
	}
	return "", fmt.Errorf("netio: unknown format %q (want bench or verilog)", name)
}

// ReadFrom parses a netlist from any reader in the given format ("" =
// Bench) — the entry point for sources that never touch the
// filesystem, such as netlists uploaded to statsatd or embedded in
// tests. The path-based helpers (ReadFile) are thin wrappers over it.
func ReadFrom(r io.Reader, f Format) (*circuit.Circuit, error) {
	switch f {
	case Verilog:
		return verilog.Parse(r)
	case Bench, "":
		return bench.Parse(r)
	}
	return nil, fmt.Errorf("netio: unknown format %q", f)
}

// ReadFromStreaming is ReadFrom through the bounded-memory .bench
// front end (bench.ParseStreaming): names interned once, gate records
// packed into flat arrays, no per-gate string slices — the right entry
// point for 100k-gate netlists, where the classic parser's
// intermediate roughly doubles peak RSS. Verilog has no streaming
// front end (its grammar needs lookahead) and falls back to the
// regular parser.
func ReadFromStreaming(r io.Reader, f Format) (*circuit.Circuit, error) {
	switch f {
	case Verilog:
		return verilog.Parse(r)
	case Bench, "":
		return bench.ParseStreaming(r)
	}
	return nil, fmt.Errorf("netio: unknown format %q", f)
}

// Read parses a netlist from r in the given format. Deprecated alias
// kept for existing callers: use ReadFrom.
func Read(r io.Reader, f Format) (*circuit.Circuit, error) {
	return ReadFrom(r, f)
}

// ReadString parses a netlist held in memory (ReadFrom over a string).
func ReadString(src string, f Format) (*circuit.Circuit, error) {
	return ReadFrom(strings.NewReader(src), f)
}

// Write serialises c to w in the given format.
func Write(w io.Writer, c *circuit.Circuit, f Format) error {
	switch f {
	case Verilog:
		return verilog.Write(w, c)
	case Bench, "":
		return bench.Write(w, c)
	}
	return fmt.Errorf("netio: unknown format %q", f)
}

// ReadFile loads a netlist, inferring the format from the path unless
// explicit is non-empty.
func ReadFile(path string, explicit Format) (*circuit.Circuit, error) {
	return readFileWith(path, explicit, ReadFrom)
}

// ReadFileStreaming is ReadFile through the bounded-memory front end
// (see ReadFromStreaming).
func ReadFileStreaming(path string, explicit Format) (*circuit.Circuit, error) {
	return readFileWith(path, explicit, ReadFromStreaming)
}

func readFileWith(path string, explicit Format, read func(io.Reader, Format) (*circuit.Circuit, error)) (*circuit.Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	format := explicit
	if format == "" {
		format = FormatForPath(path)
	}
	c, err := read(f, format)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// WriteFile stores a netlist, inferring the format from the path
// unless explicit is non-empty.
func WriteFile(path string, c *circuit.Circuit, explicit Format) error {
	format := explicit
	if format == "" {
		format = FormatForPath(path)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, c, format); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
