package bench

import "testing"

// FuzzParse exercises the .bench parser for panics and invariant
// violations on arbitrary input. The seed corpus covers the statement
// grammar; run `go test -fuzz=FuzzParse ./internal/bench` for a real
// fuzzing session (the seed corpus alone runs in every `go test`).
func FuzzParse(f *testing.F) {
	seeds := []string{
		c17Bench,
		"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n",
		"INPUT(a)\nINPUT(keyinput0)\nOUTPUT(y)\ny = XOR(a, keyinput0)\n",
		"q = DFF(d)\nd = NOT(q)\nOUTPUT(q)\nINPUT(x)\n",
		"# comment\n\nINPUT(a)\n",
		"y = AND(a, b, c, d)\n",
		"INPUT(a)\nOUTPUT(y)\ny = MUX(a, a, a)\n",
		"p cnf garbage\n",
		"INPUT(é)\nOUTPUT(é)\n",
		"y = NAND(",
		"=(",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseString(src)
		if err != nil {
			return
		}
		// Parsed circuits must validate and survive a write/parse
		// round-trip.
		if verr := c.Validate(); verr != nil {
			t.Fatalf("parser returned invalid circuit: %v", verr)
		}
		if _, rerr := ParseString(Format(c)); rerr != nil {
			t.Fatalf("round-trip failed: %v\n%s", rerr, Format(c))
		}
	})
}
