package bench

import (
	"math/rand"
	"strings"
	"testing"

	"statsat/internal/circuit"
)

// streamParityCases are netlists both parsers must handle identically:
// comments, key inputs out of numeric order, forward references, DFF
// scan conversion, aliases and mixed case.
var streamParityCases = []struct {
	name string
	src  string
}{
	{"c17", c17Bench},
	{"keyinputs unsorted", `# lockme
INPUT(a)
INPUT(keyinput10)
INPUT(keyinput2)
INPUT(b)
OUTPUT(y)
t = XOR(a, keyinput2)
u = XNOR(t, keyinput10)
y = AND(u, b)
`},
	{"forward refs", `INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(m, n)
m = OR(a, n)
n = NOT(b)
`},
	{"dff scan chain", `INPUT(a)
OUTPUT(y)
s = DFF(d)
d = XOR(a, s)
y = NOT(s)
`},
	{"aliases and case", `INPUT(a)
INPUT(b)
OUTPUT(y)
u = buff(a)
v = inv(b)
y = nand(u, v)
`},
	{"mux", `INPUT(s)
INPUT(a)
INPUT(b)
OUTPUT(y)
y = MUX(s, a, b)
`},
}

// TestParseStreamingMatchesParse checks the streaming front end
// produces a structurally identical circuit — same gate list, same
// PI/key/PO layout — for every parity case.
func TestParseStreamingMatchesParse(t *testing.T) {
	for _, tc := range streamParityCases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := Parse(strings.NewReader(tc.src))
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			got, err := ParseStreaming(strings.NewReader(tc.src))
			if err != nil {
				t.Fatalf("ParseStreaming: %v", err)
			}
			if Format(got) != Format(want) {
				t.Errorf("parsers disagree:\n--- Parse ---\n%s--- ParseStreaming ---\n%s", Format(want), Format(got))
			}
			if got.Name != want.Name {
				t.Errorf("circuit name %q, want %q", got.Name, want.Name)
			}
		})
	}
}

// TestParseStreamingErrors re-runs the Parse error table through the
// streaming parser: same rejections, same line numbers.
func TestParseStreamingErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown keyword", "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n"},
		{"undefined signal", "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n"},
		{"undefined output", "INPUT(a)\nOUTPUT(nope)\n"},
		{"bad arity not", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n"},
		{"bad arity mux", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = MUX(a, b)\n"},
		{"garbage line", "INPUT(a)\nwhat is this\n"},
		{"empty operand", "INPUT(a)\nOUTPUT(y)\ny = AND(a, )\n"},
		{"trailing comma", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b,)\n"},
		{"missing paren", "INPUT a\n"},
		{"empty input name", "INPUT()\n"},
		{"double definition", "INPUT(a)\nINPUT(a)\n"},
		{"gate redefines input", "INPUT(a)\nOUTPUT(a)\na = NOT(a)\n"},
		{"cycle", "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = NOT(y)\n"},
		{"empty assign target", "INPUT(a)\n = NOT(a)\n"},
		{"dff two inputs", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ns = DFF(a, b)\ny = NOT(s)\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, errStream := ParseStreaming(strings.NewReader(tc.src))
			if errStream == nil {
				t.Fatalf("want parse error for %q", tc.src)
			}
			_, errParse := Parse(strings.NewReader(tc.src))
			if errParse == nil {
				return // streaming-only case (Parse table covers the rest)
			}
			pa, aok := errParse.(*ParseError)
			ps, sok := errStream.(*ParseError)
			if aok && sok && pa.Line != ps.Line {
				t.Errorf("error lines differ: Parse %d, ParseStreaming %d", pa.Line, ps.Line)
			}
		})
	}
}

// TestParseStreamingRandomRoundTrip writes generated circuits and
// re-reads them with the streaming parser: functional equivalence on
// sampled inputs.
func TestParseStreamingRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		c := randomNetlist(rng, 12, 80)
		got, err := ParseStreaming(strings.NewReader(Format(c)))
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, Format(c))
		}
		for sample := 0; sample < 32; sample++ {
			x := c.RandomInputs(rng)
			want := c.Eval(x, nil, nil)
			have := got.Eval(x, nil, nil)
			for i := range want {
				if want[i] != have[i] {
					t.Fatalf("trial %d: output %d differs on %v", trial, i, x)
				}
			}
		}
	}
}

func randomNetlist(rng *rand.Rand, nin, ngates int) *circuit.Circuit {
	c := circuit.New("rand")
	ids := make([]int, 0, nin+ngates)
	for i := 0; i < nin; i++ {
		ids = append(ids, c.AddInput(""))
	}
	types := []circuit.GateType{circuit.And, circuit.Nand, circuit.Or, circuit.Nor, circuit.Xor, circuit.Xnor, circuit.Not, circuit.Buf}
	for i := 0; i < ngates; i++ {
		ty := types[rng.Intn(len(types))]
		n := 2
		if ty == circuit.Not || ty == circuit.Buf {
			n = 1
		}
		fan := make([]int, n)
		for j := range fan {
			fan[j] = ids[rng.Intn(len(ids))]
		}
		ids = append(ids, c.AddGate(ty, "", fan...))
	}
	for i := 0; i < 4; i++ {
		c.AddOutput(ids[len(ids)-1-i], "")
	}
	return c
}
