package bench

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"

	"statsat/internal/circuit"
)

// ParseStreaming reads a .bench netlist through a bounded-memory front
// end: lines come from a bufio.Scanner with a grown token buffer, every
// signal name is interned exactly once, and gate records are packed
// into flat integer arrays (one fanin pool, one record per gate)
// instead of the per-gate string slices Parse accumulates. On
// 100k-gate netlists this roughly halves peak RSS — the intermediate
// holds one int32 per operand plus one copy of each name — while
// accepting exactly the same grammar, key-input convention, DFF
// scan-chain conversion and error positions as Parse.
func ParseStreaming(r io.Reader) (*circuit.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	p := &streamParser{sym: map[string]int32{}}
	var name string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if i := bytes.IndexByte(line, '#'); i >= 0 {
			if name == "" {
				c := strings.TrimSpace(string(line[i+1:]))
				if c != "" && !strings.ContainsAny(c, "=(") {
					name = strings.Fields(c)[0]
				}
			}
			line = line[:i]
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		if err := p.statement(line, lineNo); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: read: %w", err)
	}
	return p.build(name)
}

// sgate is one packed gate record: the fanin symbols live in the
// parser's shared pool at [off, off+n).
type sgate struct {
	out  int32
	off  int32
	n    int32
	line int32
	typ  circuit.GateType
	dff  bool
}

type streamParser struct {
	sym     map[string]int32 // name -> symbol
	names   []string         // symbol -> name (the only string copies)
	defLine []int32          // symbol -> defining line, 0 when undefined
	inputs  []int32          // INPUT() symbols in file order
	outputs []int32          // OUTPUT() symbols in file order
	gates   []sgate
	fan     []int32 // shared fanin pool
}

// intern returns the symbol for a name, copying the bytes only on
// first sight (map lookups on string(b) do not allocate).
func (p *streamParser) intern(b []byte) int32 {
	if s, ok := p.sym[string(b)]; ok {
		return s
	}
	s := int32(len(p.names))
	n := string(b)
	p.names = append(p.names, n)
	p.defLine = append(p.defLine, 0)
	p.sym[n] = s
	return s
}

func (p *streamParser) define(sym int32, lineNo int) error {
	if p.defLine[sym] != 0 {
		return &ParseError{lineNo, fmt.Sprintf("signal %q defined twice", p.names[sym])}
	}
	p.defLine[sym] = int32(lineNo)
	return nil
}

// hasKeywordPrefix reports whether line starts with the ASCII keyword
// case-insensitively (the keyword itself must be upper-case).
func hasKeywordPrefix(line []byte, kw string) bool {
	if len(line) < len(kw) {
		return false
	}
	for i := 0; i < len(kw); i++ {
		c := line[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != kw[i] {
			return false
		}
	}
	return true
}

func (p *streamParser) statement(line []byte, lineNo int) error {
	switch {
	case hasKeywordPrefix(line, "INPUT("):
		arg, err := parenArgBytes(line, lineNo)
		if err != nil {
			return err
		}
		sym := p.intern(arg)
		if err := p.define(sym, lineNo); err != nil {
			return err
		}
		p.inputs = append(p.inputs, sym)
		return nil
	case hasKeywordPrefix(line, "OUTPUT("):
		arg, err := parenArgBytes(line, lineNo)
		if err != nil {
			return err
		}
		p.outputs = append(p.outputs, p.intern(arg))
		return nil
	}
	return p.assignment(line, lineNo)
}

func (p *streamParser) assignment(line []byte, lineNo int) error {
	eq := bytes.IndexByte(line, '=')
	if eq < 0 {
		return &ParseError{lineNo, fmt.Sprintf("unrecognised statement %q", line)}
	}
	target := bytes.TrimSpace(line[:eq])
	if len(target) == 0 {
		return &ParseError{lineNo, "assignment with empty target"}
	}
	rhs := bytes.TrimSpace(line[eq+1:])
	open := bytes.IndexByte(rhs, '(')
	close := bytes.LastIndexByte(rhs, ')')
	if open < 0 || close < open {
		return &ParseError{lineNo, fmt.Sprintf("malformed gate expression %q", rhs)}
	}

	// Keywords are short: upper-case into a stack buffer, no alloc.
	var kwBuf [8]byte
	kwRaw := bytes.TrimSpace(rhs[:open])
	if len(kwRaw) > len(kwBuf) {
		return &ParseError{lineNo, fmt.Sprintf("unknown gate keyword %q", kwRaw)}
	}
	for i, c := range kwRaw {
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		kwBuf[i] = c
	}
	kw := string(kwBuf[:len(kwRaw)])

	g := sgate{
		out:  p.intern(target),
		off:  int32(len(p.fan)),
		line: int32(lineNo),
	}
	if err := p.define(g.out, lineNo); err != nil {
		return err
	}

	args := rhs[open+1 : close]
	if kw == dffKeyword {
		arg := bytes.TrimSpace(args)
		if len(arg) == 0 || bytes.IndexByte(arg, ',') >= 0 {
			return &ParseError{lineNo, "DFF takes exactly one data input"}
		}
		g.dff = true
		g.n = 1
		p.fan = append(p.fan, p.intern(arg))
		p.gates = append(p.gates, g)
		return nil
	}
	typ, ok := gateKeywords[kw]
	if !ok {
		return &ParseError{lineNo, fmt.Sprintf("unknown gate keyword %q", kwRaw)}
	}
	g.typ = typ

	// Split operands on commas in place (same semantics as
	// strings.Split: a trailing or doubled comma is an empty operand).
	for {
		var tok []byte
		last := false
		if i := bytes.IndexByte(args, ','); i >= 0 {
			tok, args = args[:i], args[i+1:]
		} else {
			tok, last = args, true
		}
		tok = bytes.TrimSpace(tok)
		if len(tok) == 0 {
			return &ParseError{lineNo, "empty operand"}
		}
		p.fan = append(p.fan, p.intern(tok))
		g.n++
		if last {
			break
		}
	}
	if n, min, max := int(g.n), typ.MinFanin(), typ.MaxFanin(); n < min || (max >= 0 && n > max) {
		return &ParseError{lineNo, fmt.Sprintf("%s with %d operands", kw, n)}
	}
	p.gates = append(p.gates, g)
	return nil
}

func parenArgBytes(line []byte, lineNo int) ([]byte, error) {
	open := bytes.IndexByte(line, '(')
	close := bytes.LastIndexByte(line, ')')
	if open < 0 || close < open {
		return nil, &ParseError{lineNo, "malformed parenthesised statement"}
	}
	arg := bytes.TrimSpace(line[open+1 : close])
	if len(arg) == 0 {
		return nil, &ParseError{lineNo, "empty signal name"}
	}
	return arg, nil
}

// build assembles the circuit from the packed records: key inputs are
// stable-sorted by numeric suffix at EOF (same layout as Parse), DFFs
// become scan-chain pseudo I/O, and out-of-order gate declarations are
// resolved with a multi-pass worklist over gate indices.
func (p *streamParser) build(name string) (*circuit.Circuit, error) {
	c := circuit.New(name)
	id := make([]int32, len(p.names))
	for i := range id {
		id[i] = -1
	}

	var pis, keys []int32
	for _, sym := range p.inputs {
		if strings.HasPrefix(p.names[sym], KeyPrefix) {
			keys = append(keys, sym)
		} else {
			pis = append(pis, sym)
		}
	}
	sort.SliceStable(keys, func(i, j int) bool {
		return keySuffix(p.names[keys[i]]) < keySuffix(p.names[keys[j]])
	})
	for _, sym := range pis {
		id[sym] = int32(c.AddInput(p.names[sym]))
	}
	for _, sym := range keys {
		id[sym] = int32(c.AddKey(p.names[sym]))
	}
	for gi := range p.gates {
		if g := &p.gates[gi]; g.dff {
			id[g.out] = int32(c.AddInput(p.names[g.out]))
		}
	}

	pending := make([]int32, 0, len(p.gates))
	for gi := range p.gates {
		if !p.gates[gi].dff {
			pending = append(pending, int32(gi))
		}
	}
	var fanBuf []int
	for len(pending) > 0 {
		progressed := false
		next := pending[:0]
		for _, gi := range pending {
			g := &p.gates[gi]
			ready := true
			for _, sym := range p.fan[g.off : g.off+g.n] {
				if id[sym] < 0 {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, gi)
				continue
			}
			if cap(fanBuf) < int(g.n) {
				fanBuf = make([]int, g.n)
			}
			fan := fanBuf[:g.n]
			for i, sym := range p.fan[g.off : g.off+g.n] {
				fan[i] = int(id[sym])
			}
			id[g.out] = int32(c.AddGate(g.typ, p.names[g.out], fan...))
			progressed = true
		}
		if !progressed {
			g := &p.gates[next[0]]
			for _, sym := range p.fan[g.off : g.off+g.n] {
				if id[sym] < 0 && p.defLine[sym] == 0 {
					return nil, &ParseError{int(g.line), fmt.Sprintf("gate %q uses undefined signal %q", p.names[g.out], p.names[sym])}
				}
			}
			return nil, &ParseError{int(g.line), fmt.Sprintf("cyclic definition involving %q", p.names[g.out])}
		}
		pending = next
	}

	for _, sym := range p.outputs {
		if id[sym] < 0 {
			return nil, &ParseError{0, fmt.Sprintf("OUTPUT(%s) never defined", p.names[sym])}
		}
		c.AddOutput(int(id[sym]), p.names[sym])
	}
	for gi := range p.gates {
		g := &p.gates[gi]
		if !g.dff {
			continue
		}
		data := p.fan[g.off]
		if id[data] < 0 {
			return nil, &ParseError{int(g.line), fmt.Sprintf("DFF %q data input %q never defined", p.names[g.out], p.names[data])}
		}
		c.AddOutput(int(id[data]), p.names[g.out]+"_scanin")
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	return c, nil
}
