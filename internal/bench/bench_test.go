package bench

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"statsat/internal/circuit"
)

const c17Bench = `# c17
# 5 inputs, 2 outputs
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)

OUTPUT(22)
OUTPUT(23)

10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func TestParseC17(t *testing.T) {
	c, err := ParseString(c17Bench)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "c17" {
		t.Errorf("name = %q, want c17", c.Name)
	}
	s := c.Summary()
	if s.Inputs != 5 || s.Gates != 6 || s.Outputs != 2 {
		t.Errorf("summary = %+v", s)
	}
	out := c.Eval([]bool{false, false, false, false, false}, nil, nil)
	// All-zero inputs: every first-level NAND is 1, 22 = NAND(1,16)...
	// compute by hand: 10=1, 11=1, 16=NAND(0,1)=1, 19=NAND(1,0)=1,
	// 22=NAND(1,1)=0, 23=NAND(1,1)=0.
	if out[0] != false || out[1] != false {
		t.Errorf("c17(00000) = %v", out)
	}
}

func TestParseKeyInputs(t *testing.T) {
	src := `
INPUT(a)
INPUT(keyinput10)
INPUT(keyinput2)
INPUT(keyinput0)
OUTPUT(y)
t = XOR(a, keyinput0)
u = XNOR(t, keyinput2)
y = XOR(u, keyinput10)
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumKeys() != 3 || c.NumPIs() != 1 {
		t.Fatalf("keys=%d pis=%d", c.NumKeys(), c.NumPIs())
	}
	// Numeric ordering: keyinput0, keyinput2, keyinput10.
	want := []string{"keyinput0", "keyinput2", "keyinput10"}
	for i, kid := range c.Keys {
		if c.Gates[kid].Name != want[i] {
			t.Errorf("key %d = %q, want %q", i, c.Gates[kid].Name, want[i])
		}
	}
}

func TestParseOutOfOrderDefinitions(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(u, v)
u = NOT(a)
v = NOT(b)
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	got := c.Eval([]bool{false, false}, nil, nil)
	if got[0] != true {
		t.Errorf("AND(NOT a, NOT b)(0,0) = %v, want true", got[0])
	}
}

func TestParseGateKeywordAliases(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(y1)
OUTPUT(y2)
y1 = BUFF(a)
y2 = INV(a)
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	out := c.Eval([]bool{true}, nil, nil)
	if out[0] != true || out[1] != false {
		t.Errorf("BUFF/INV eval = %v", out)
	}
}

func TestParseMux(t *testing.T) {
	src := `
INPUT(s)
INPUT(a)
INPUT(b)
OUTPUT(y)
y = MUX(s, a, b)
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Eval([]bool{false, true, false}, nil, nil)[0]; got != true {
		t.Errorf("MUX(0,a=1,b=0) = %v, want a", got)
	}
	if got := c.Eval([]bool{true, true, false}, nil, nil)[0]; got != false {
		t.Errorf("MUX(1,a=1,b=0) = %v, want b", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown keyword", "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n"},
		{"undefined signal", "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n"},
		{"undefined output", "INPUT(a)\nOUTPUT(nope)\n"},
		{"bad arity not", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n"},
		{"bad arity mux", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = MUX(a, b)\n"},
		{"garbage line", "INPUT(a)\nwhat is this\n"},
		{"empty operand", "INPUT(a)\nOUTPUT(y)\ny = AND(a, )\n"},
		{"missing paren", "INPUT a\n"},
		{"empty input name", "INPUT()\n"},
		{"double definition", "INPUT(a)\nINPUT(a)\n"},
		{"gate redefines input", "INPUT(a)\nOUTPUT(a)\na = NOT(a)\n"},
		{"cycle", "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = NOT(y)\n"},
		{"empty assign target", "INPUT(a)\n = NOT(a)\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseString(tc.src); err == nil {
				t.Errorf("want parse error for %q", tc.src)
			}
		})
	}
}

func TestParseErrorHasLineNumber(t *testing.T) {
	_, err := ParseString("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Line != 3 {
		t.Errorf("error line = %d, want 3", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 3") {
		t.Errorf("error string %q lacks line info", pe.Error())
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := "# hello\n\n  \nINPUT(a) # trailing comment\nOUTPUT(y)\ny = NOT(a) # inline\n"
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "hello" {
		t.Errorf("name from comment = %q", c.Name)
	}
	if got := c.Eval([]bool{true}, nil, nil)[0]; got != false {
		t.Errorf("NOT(1) = %v", got)
	}
}

func TestRoundTripC17(t *testing.T) {
	c, err := ParseString(c17Bench)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ParseString(Format(c))
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, Format(c))
	}
	for m := 0; m < 32; m++ {
		pi := make([]bool, 5)
		for b := 0; b < 5; b++ {
			pi[b] = m>>b&1 == 1
		}
		a := c.Eval(pi, nil, nil)
		b := c2.Eval(pi, nil, nil)
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("round-trip mismatch at %v: %v vs %v", pi, a, b)
		}
	}
}

func randomCircuit(seed int64, nIn, nGates, nOut, nKey int) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New("rt")
	for i := 0; i < nIn; i++ {
		c.AddInput("")
	}
	for i := 0; i < nKey; i++ {
		c.AddKey("")
	}
	types := []circuit.GateType{circuit.And, circuit.Nand, circuit.Or, circuit.Nor, circuit.Xor, circuit.Xnor, circuit.Not, circuit.Buf}
	for i := 0; i < nGates; i++ {
		ty := types[rng.Intn(len(types))]
		n := len(c.Gates)
		if ty == circuit.Not || ty == circuit.Buf {
			c.AddGate(ty, "", rng.Intn(n))
		} else {
			c.AddGate(ty, "", rng.Intn(n), rng.Intn(n))
		}
	}
	for i := 0; i < nOut; i++ {
		c.AddOutput(nIn+nKey+rng.Intn(nGates), "")
	}
	return c
}

// Property: Write/Parse round-trips preserve I/O behaviour on random
// circuits with keys.
func TestQuickRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		c := randomCircuit(seed, 6, 30, 4, 3)
		text := Format(c)
		c2, err := ParseString(text)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, text)
		}
		if c2.NumPIs() != c.NumPIs() || c2.NumKeys() != c.NumKeys() || c2.NumPOs() != c.NumPOs() {
			t.Fatalf("seed %d: interface mismatch", seed)
		}
		rng := rand.New(rand.NewSource(seed + 100))
		f := func(piBits, keyBits uint8) bool {
			pi := make([]bool, 6)
			key := make([]bool, 3)
			for i := range pi {
				pi[i] = piBits>>i&1 == 1
			}
			for i := range key {
				key[i] = keyBits>>i&1 == 1
			}
			a := c.Eval(pi, key, nil)
			b := c2.Eval(pi, key, nil)
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			return true
		}
		cfg := &quick.Config{MaxCount: 30, Rand: rng}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestWriteConstGates(t *testing.T) {
	c := circuit.New("consts")
	c.AddInput("a")
	z := c.AddGate(circuit.Const0, "z")
	o := c.AddGate(circuit.Const1, "o")
	y := c.AddGate(circuit.Or, "y", z, o)
	c.AddOutput(y, "")
	text := Format(c)
	c2, err := ParseString(text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if got := c2.Eval([]bool{true}, nil, nil)[0]; got != true {
		t.Errorf("const round-trip eval = %v", got)
	}
}

// TestParseDFFScanConversion: ISCAS89-style s27 fragment — DFFs become
// scan I/O (pseudo PI for Q, pseudo PO for D), the standard full-scan
// assumption of oracle-guided attacks.
func TestParseDFFScanConversion(t *testing.T) {
	src := `# s-mini
INPUT(a)
OUTPUT(y)
q = DFF(d)
n1 = NOT(q)
d = AND(a, n1)
y = OR(q, a)
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	// PIs: a + pseudo-PI q. POs: y + pseudo-PO for d.
	if c.NumPIs() != 2 {
		t.Fatalf("PIs = %d, want 2 (a + scan q)", c.NumPIs())
	}
	if c.NumPOs() != 2 {
		t.Fatalf("POs = %d, want 2 (y + scan d)", c.NumPOs())
	}
	// With a=1, q=0: d = AND(1, NOT(0)) = 1; y = OR(0,1) = 1.
	out := c.Eval([]bool{true, false}, nil, nil)
	if out[0] != true || out[1] != true {
		t.Errorf("scan eval = %v", out)
	}
	// With a=0, q=1: d = AND(0, NOT 1)=0; y = OR(1,0)=1.
	out = c.Eval([]bool{false, true}, nil, nil)
	if out[0] != true || out[1] != false {
		t.Errorf("scan eval2 = %v", out)
	}
	if c.OutputName(1) != "q_scanin" {
		t.Errorf("scan output name = %q", c.OutputName(1))
	}
}

func TestParseDFFErrors(t *testing.T) {
	if _, err := ParseString("INPUT(a)\nOUTPUT(y)\nq = DFF(a, b)\ny = NOT(q)\n"); err == nil {
		t.Error("want error for two-input DFF")
	}
	if _, err := ParseString("INPUT(a)\nOUTPUT(q)\nq = DFF(ghost)\n"); err == nil {
		t.Error("want error for undefined DFF data input")
	}
}

func TestParseDFFLockable(t *testing.T) {
	// A scan-converted sequential circuit must be lockable/attackable
	// like any combinational netlist (keys still parse).
	src := `INPUT(a)
INPUT(keyinput0)
OUTPUT(y)
q = DFF(d)
d = XOR(a, keyinput0)
y = AND(q, a)
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumKeys() != 1 || c.NumPIs() != 2 || c.NumPOs() != 2 {
		t.Fatalf("interface: %d keys %d PIs %d POs", c.NumKeys(), c.NumPIs(), c.NumPOs())
	}
}

func TestKeySuffixOrdering(t *testing.T) {
	if keySuffix("keyinput7") != 7 {
		t.Error("numeric suffix not parsed")
	}
	if keySuffix("keyinputx") <= 1000000 {
		t.Error("non-numeric suffix should sort last")
	}
}

func BenchmarkParseC17(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(c17Bench); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFormatRandom(b *testing.B) {
	c := randomCircuit(3, 20, 500, 10, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Format(c)
	}
}
