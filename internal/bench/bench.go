// Package bench reads and writes combinational netlists in the ISCAS
// .bench format, the exchange format used by the original SAT-attack
// tooling the paper builds on.
//
// Grammar (one statement per line, '#' starts a comment):
//
//	INPUT(name)
//	OUTPUT(name)
//	name = GATE(op1, op2, ...)
//
// Supported gate keywords: BUF/BUFF, NOT/INV, AND, NAND, OR, NOR, XOR,
// XNOR, MUX. Inputs whose names begin with "keyinput" (the convention
// of the Subramanyan et al. framework and of locked netlists in the
// wild) are treated as key inputs; Parse orders them numerically when
// they carry a numeric suffix so key bit i is keyinput<i>.
package bench

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"statsat/internal/circuit"
)

// KeyPrefix is the input-name prefix marking key inputs.
const KeyPrefix = "keyinput"

// ParseError describes a syntax or semantic problem in a .bench file.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("bench: line %d: %s", e.Line, e.Msg)
}

var gateKeywords = map[string]circuit.GateType{
	"BUF":  circuit.Buf,
	"BUFF": circuit.Buf,
	"NOT":  circuit.Not,
	"INV":  circuit.Not,
	"AND":  circuit.And,
	"NAND": circuit.Nand,
	"OR":   circuit.Or,
	"NOR":  circuit.Nor,
	"XOR":  circuit.Xor,
	"XNOR": circuit.Xnor,
	"MUX":  circuit.Mux,
}

// dffKeyword marks state elements in ISCAS89-style netlists. Parse
// converts them to the standard scan-chain combinational model: the
// flip-flop's output becomes a pseudo primary input, its data input a
// pseudo primary output — the full-scan access every oracle-guided
// attack paper (including this one) assumes.
const dffKeyword = "DFF"

// Keyword returns the .bench keyword for a gate type.
func Keyword(t circuit.GateType) (string, bool) {
	switch t {
	case circuit.Buf:
		return "BUFF", true
	case circuit.Not:
		return "NOT", true
	case circuit.And:
		return "AND", true
	case circuit.Nand:
		return "NAND", true
	case circuit.Or:
		return "OR", true
	case circuit.Nor:
		return "NOR", true
	case circuit.Xor:
		return "XOR", true
	case circuit.Xnor:
		return "XNOR", true
	case circuit.Mux:
		return "MUX", true
	}
	return "", false
}

type rawGate struct {
	name  string
	typ   circuit.GateType
	args  []string
	line  int
	isDFF bool
}

// Parse reads a .bench netlist. The circuit name is taken from the
// first "# name" comment if present, else left empty.
func Parse(r io.Reader) (*circuit.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	var (
		inputs  []string
		outputs []string
		gates   []rawGate
		dffs    []rawGate // state elements, converted to scan I/O
		name    string
		lineNo  int
	)
	seenDef := map[string]int{} // defined signal -> line
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			if name == "" {
				c := strings.TrimSpace(line[i+1:])
				if c != "" && !strings.ContainsAny(c, "=(") {
					name = strings.Fields(c)[0]
				}
			}
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(strings.ToUpper(line), "INPUT("):
			arg, err := parenArg(line, lineNo)
			if err != nil {
				return nil, err
			}
			if _, dup := seenDef[arg]; dup {
				return nil, &ParseError{lineNo, fmt.Sprintf("signal %q defined twice", arg)}
			}
			seenDef[arg] = lineNo
			inputs = append(inputs, arg)
		case strings.HasPrefix(strings.ToUpper(line), "OUTPUT("):
			arg, err := parenArg(line, lineNo)
			if err != nil {
				return nil, err
			}
			outputs = append(outputs, arg)
		default:
			g, err := parseAssign(line, lineNo)
			if err != nil {
				return nil, err
			}
			if _, dup := seenDef[g.name]; dup {
				return nil, &ParseError{lineNo, fmt.Sprintf("signal %q defined twice", g.name)}
			}
			seenDef[g.name] = lineNo
			if g.isDFF {
				dffs = append(dffs, g)
			} else {
				gates = append(gates, g)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: read: %w", err)
	}

	c := circuit.New(name)
	id := map[string]int{}

	// Split inputs into primary and key inputs; key inputs sorted by
	// numeric suffix so the key vector layout is stable.
	var pis, keys []string
	for _, in := range inputs {
		if strings.HasPrefix(in, KeyPrefix) {
			keys = append(keys, in)
		} else {
			pis = append(pis, in)
		}
	}
	sort.SliceStable(keys, func(i, j int) bool {
		return keySuffix(keys[i]) < keySuffix(keys[j])
	})
	for _, n := range pis {
		id[n] = c.AddInput(n)
	}
	for _, n := range keys {
		id[n] = c.AddKey(n)
	}
	// Scan-chain model: every flip-flop output is directly
	// controllable (pseudo primary input).
	for _, d := range dffs {
		id[d.name] = c.AddInput(d.name)
	}

	// Gates may be declared in any order: resolve with a worklist in
	// dependency order. A simple multi-pass resolution is O(n·passes)
	// but netlists in the wild are near-topological; fall back to an
	// explicit error for truly undefined signals.
	pending := gates
	for len(pending) > 0 {
		progressed := false
		var next []rawGate
		for _, g := range pending {
			ready := true
			for _, a := range g.args {
				if _, ok := id[a]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, g)
				continue
			}
			fan := make([]int, len(g.args))
			for i, a := range g.args {
				fan[i] = id[a]
			}
			id[g.name] = c.AddGate(g.typ, g.name, fan...)
			progressed = true
		}
		if !progressed {
			g := next[0]
			for _, a := range g.args {
				if _, ok := id[a]; !ok {
					if _, defined := seenDef[a]; !defined {
						return nil, &ParseError{g.line, fmt.Sprintf("gate %q uses undefined signal %q", g.name, a)}
					}
				}
			}
			return nil, &ParseError{g.line, fmt.Sprintf("cyclic definition involving %q", g.name)}
		}
		pending = next
	}

	for _, o := range outputs {
		gid, ok := id[o]
		if !ok {
			return nil, &ParseError{0, fmt.Sprintf("OUTPUT(%s) never defined", o)}
		}
		c.AddOutput(gid, o)
	}
	// Scan-chain model: every flip-flop data input is directly
	// observable (pseudo primary output).
	for _, d := range dffs {
		gid, ok := id[d.args[0]]
		if !ok {
			return nil, &ParseError{d.line, fmt.Sprintf("DFF %q data input %q never defined", d.name, d.args[0])}
		}
		c.AddOutput(gid, d.name+"_scanin")
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	return c, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*circuit.Circuit, error) {
	return Parse(strings.NewReader(s))
}

func keySuffix(name string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(name, KeyPrefix))
	if err != nil {
		return 1 << 30
	}
	return n
}

func parenArg(line string, lineNo int) (string, error) {
	open := strings.IndexByte(line, '(')
	close := strings.LastIndexByte(line, ')')
	if open < 0 || close < open {
		return "", &ParseError{lineNo, "malformed parenthesised statement"}
	}
	arg := strings.TrimSpace(line[open+1 : close])
	if arg == "" {
		return "", &ParseError{lineNo, "empty signal name"}
	}
	return arg, nil
}

func parseAssign(line string, lineNo int) (rawGate, error) {
	eq := strings.IndexByte(line, '=')
	if eq < 0 {
		return rawGate{}, &ParseError{lineNo, fmt.Sprintf("unrecognised statement %q", line)}
	}
	name := strings.TrimSpace(line[:eq])
	if name == "" {
		return rawGate{}, &ParseError{lineNo, "assignment with empty target"}
	}
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.IndexByte(rhs, '(')
	close := strings.LastIndexByte(rhs, ')')
	if open < 0 || close < open {
		return rawGate{}, &ParseError{lineNo, fmt.Sprintf("malformed gate expression %q", rhs)}
	}
	kw := strings.ToUpper(strings.TrimSpace(rhs[:open]))
	if kw == dffKeyword {
		arg := strings.TrimSpace(rhs[open+1 : close])
		if arg == "" || strings.ContainsRune(arg, ',') {
			return rawGate{}, &ParseError{lineNo, "DFF takes exactly one data input"}
		}
		return rawGate{name: name, args: []string{arg}, line: lineNo, isDFF: true}, nil
	}
	typ, ok := gateKeywords[kw]
	if !ok {
		return rawGate{}, &ParseError{lineNo, fmt.Sprintf("unknown gate keyword %q", kw)}
	}
	var args []string
	for _, a := range strings.Split(rhs[open+1:close], ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return rawGate{}, &ParseError{lineNo, "empty operand"}
		}
		args = append(args, a)
	}
	if n, min, max := len(args), typ.MinFanin(), typ.MaxFanin(); n < min || (max >= 0 && n > max) {
		return rawGate{}, &ParseError{lineNo, fmt.Sprintf("%s with %d operands", kw, n)}
	}
	return rawGate{name: name, typ: typ, args: args, line: lineNo}, nil
}

// Write serialises a circuit to .bench. Gates without names get
// synthetic ones (n<ID>); key inputs are renamed keyinput<i> to keep
// the convention round-trippable.
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	names := make([]string, len(c.Gates))
	used := map[string]bool{}
	for i, kid := range c.Keys {
		names[kid] = fmt.Sprintf("%s%d", KeyPrefix, i)
		used[names[kid]] = true
	}
	for id := range c.Gates {
		if names[id] != "" {
			continue
		}
		n := c.Gates[id].Name
		if n == "" || used[n] || (c.Gates[id].Type != circuit.Key && strings.HasPrefix(n, KeyPrefix)) {
			n = fmt.Sprintf("n%d", id)
			for used[n] {
				n = "x" + n
			}
		}
		names[id] = n
		used[n] = true
	}

	if c.Name != "" {
		fmt.Fprintf(bw, "# %s\n", c.Name)
	}
	fmt.Fprintf(bw, "# %d inputs, %d keys, %d outputs, %d gates\n",
		len(c.PIs), len(c.Keys), len(c.POs), c.NumLogicGates())
	for _, id := range c.PIs {
		fmt.Fprintf(bw, "INPUT(%s)\n", names[id])
	}
	for _, id := range c.Keys {
		fmt.Fprintf(bw, "INPUT(%s)\n", names[id])
	}
	for _, id := range c.POs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", names[id])
	}
	for _, id := range c.MustTopoOrder() {
		g := &c.Gates[id]
		if g.Type.IsInputType() {
			switch g.Type {
			// .bench has no constant literal; emit the standard trick.
			case circuit.Const0:
				fmt.Fprintf(bw, "%s = XOR(%s, %s)\n", names[id], firstSource(c, names), firstSource(c, names))
			case circuit.Const1:
				fmt.Fprintf(bw, "%s = XNOR(%s, %s)\n", names[id], firstSource(c, names), firstSource(c, names))
			}
			continue
		}
		kw, ok := Keyword(g.Type)
		if !ok {
			return fmt.Errorf("bench: cannot serialise gate type %v", g.Type)
		}
		ops := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			ops[i] = names[f]
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", names[id], kw, strings.Join(ops, ", "))
	}
	return bw.Flush()
}

func firstSource(c *circuit.Circuit, names []string) string {
	if len(c.PIs) > 0 {
		return names[c.PIs[0]]
	}
	if len(c.Keys) > 0 {
		return names[c.Keys[0]]
	}
	return "n0"
}

// Format renders the circuit as a .bench string.
func Format(c *circuit.Circuit) string {
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		return "# error: " + err.Error()
	}
	return sb.String()
}
