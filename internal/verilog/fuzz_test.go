package verilog

import "testing"

// FuzzParse exercises the structural-Verilog parser for panics and
// invariant violations on arbitrary input.
func FuzzParse(f *testing.F) {
	seeds := []string{
		c17Verilog,
		"module m(a,y); input a; output y; not g(y,a); endmodule",
		"module m(a,y); input a; output y; assign y = 1'b0; endmodule",
		"module m(); endmodule",
		"module m(a,y); /* c */ input a; // x\n output y; buf g(y,a); endmodule",
		"module",
		"and g(y,a)",
		"module m(a,keyinput0,y); input a, keyinput0; output y; xor g(y,a,keyinput0); endmodule",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseString(src)
		if err != nil {
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("parser returned invalid circuit: %v", verr)
		}
		if _, rerr := ParseString(Format(c)); rerr != nil {
			t.Fatalf("round-trip failed: %v\n%s", rerr, Format(c))
		}
	})
}
