// Package verilog reads and writes gate-level structural Verilog — the
// second common exchange format for the ISCAS/ITC benchmark suites
// (alongside .bench). Only the structural subset used by such netlists
// is supported:
//
//	module name (port, ...);
//	  input a, b;            // "keyinput*" inputs become key inputs
//	  output y;
//	  wire w1, w2;
//	  and g1 (out, in1, in2, ...);
//	  nand|or|nor|xor|xnor|not|buf ...
//	  assign y = w1;         // treated as a BUF
//	endmodule
//
// Comments (// and /* */), multi-line statements and 1'b0/1'b1
// constants in assigns are handled. Behavioural constructs are
// rejected with a positioned error.
package verilog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"statsat/internal/circuit"
)

// KeyPrefix marks key inputs, mirroring the .bench convention.
const KeyPrefix = "keyinput"

// ParseError reports a syntax/semantic problem with its statement.
type ParseError struct {
	Stmt string
	Msg  string
}

func (e *ParseError) Error() string {
	s := e.Stmt
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return fmt.Sprintf("verilog: %s (in %q)", e.Msg, s)
}

var gateKeywords = map[string]circuit.GateType{
	"and":  circuit.And,
	"nand": circuit.Nand,
	"or":   circuit.Or,
	"nor":  circuit.Nor,
	"xor":  circuit.Xor,
	"xnor": circuit.Xnor,
	"not":  circuit.Not,
	"buf":  circuit.Buf,
}

// Parse reads one structural Verilog module into a circuit.
func Parse(r io.Reader) (*circuit.Circuit, error) {
	stmts, name, err := tokenizeStatements(r)
	if err != nil {
		return nil, err
	}
	var (
		inputs  []string
		outputs []string
		gates   []rawGate
	)
	declared := map[string]bool{}
	for _, st := range stmts {
		fields := strings.Fields(st)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "input", "output", "wire":
			names := splitNames(strings.TrimPrefix(st, fields[0]))
			for _, n := range names {
				if n == "" {
					return nil, &ParseError{st, "empty identifier"}
				}
				declared[n] = true
				switch fields[0] {
				case "input":
					inputs = append(inputs, n)
				case "output":
					outputs = append(outputs, n)
				}
			}
		case "assign":
			g, err := parseAssign(st)
			if err != nil {
				return nil, err
			}
			gates = append(gates, g)
		default:
			if ty, ok := gateKeywords[fields[0]]; ok {
				g, err := parseGateInst(st, fields[0], ty)
				if err != nil {
					return nil, err
				}
				gates = append(gates, g)
				continue
			}
			return nil, &ParseError{st, fmt.Sprintf("unsupported construct %q", fields[0])}
		}
	}

	c := circuit.New(name)
	id := map[string]int{}
	var pis, keys []string
	for _, in := range inputs {
		if strings.HasPrefix(in, KeyPrefix) {
			keys = append(keys, in)
		} else {
			pis = append(pis, in)
		}
	}
	sort.SliceStable(keys, func(i, j int) bool { return keySuffix(keys[i]) < keySuffix(keys[j]) })
	for _, n := range pis {
		id[n] = c.AddInput(n)
	}
	for _, n := range keys {
		id[n] = c.AddKey(n)
	}
	// Constants on demand.
	constID := map[bool]int{}
	getConst := func(v bool) int {
		if g, ok := constID[v]; ok {
			return g
		}
		ty := circuit.Const0
		n := "const0"
		if v {
			ty = circuit.Const1
			n = "const1"
		}
		g := c.AddGate(ty, n)
		constID[v] = g
		return g
	}

	// Multi-pass dependency resolution (same scheme as the bench parser).
	pending := gates
	defined := map[string]bool{}
	for _, n := range inputs {
		defined[n] = true
	}
	for len(pending) > 0 {
		progressed := false
		var next []rawGate
		for _, g := range pending {
			ready := true
			for _, a := range g.args {
				if a == "1'b0" || a == "1'b1" {
					continue
				}
				if _, ok := id[a]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, g)
				continue
			}
			fan := make([]int, len(g.args))
			for i, a := range g.args {
				switch a {
				case "1'b0":
					fan[i] = getConst(false)
				case "1'b1":
					fan[i] = getConst(true)
				default:
					fan[i] = id[a]
				}
			}
			if _, dup := id[g.out]; dup {
				return nil, &ParseError{g.stmt, fmt.Sprintf("signal %q driven twice", g.out)}
			}
			id[g.out] = c.AddGate(g.typ, g.out, fan...)
			progressed = true
		}
		if !progressed {
			g := next[0]
			for _, a := range g.args {
				if _, ok := id[a]; !ok && a != "1'b0" && a != "1'b1" {
					if !declared[a] {
						return nil, &ParseError{g.stmt, fmt.Sprintf("undeclared signal %q", a)}
					}
					return nil, &ParseError{g.stmt, fmt.Sprintf("signal %q never driven (or cyclic)", a)}
				}
			}
			return nil, &ParseError{g.stmt, "cyclic gate definitions"}
		}
		pending = next
	}
	for _, o := range outputs {
		gid, ok := id[o]
		if !ok {
			return nil, &ParseError{o, "output never driven"}
		}
		c.AddOutput(gid, o)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("verilog: %w", err)
	}
	return c, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*circuit.Circuit, error) {
	return Parse(strings.NewReader(s))
}

type rawGate struct {
	out  string
	typ  circuit.GateType
	args []string
	stmt string
}

// tokenizeStatements strips comments, joins statements across lines
// (terminated by ';'), extracts the module name and drops the module
// header / endmodule lines.
func tokenizeStatements(r io.Reader) ([]string, string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var sb strings.Builder
	inBlockComment := false
	for sc.Scan() {
		line := sc.Text()
		for {
			if inBlockComment {
				end := strings.Index(line, "*/")
				if end < 0 {
					line = ""
					break
				}
				line = line[end+2:]
				inBlockComment = false
			}
			start := strings.Index(line, "/*")
			if start < 0 {
				break
			}
			rest := line[start+2:]
			line = line[:start]
			if end := strings.Index(rest, "*/"); end >= 0 {
				line += " " + rest[end+2:]
				continue
			}
			inBlockComment = true
			break
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, "", fmt.Errorf("verilog: read: %w", err)
	}
	text := sb.String()

	var stmts []string
	name := ""
	for _, raw := range strings.Split(text, ";") {
		st := strings.Join(strings.Fields(raw), " ")
		if st == "" {
			continue
		}
		st = strings.TrimPrefix(st, "endmodule")
		st = strings.TrimSpace(st)
		if st == "" {
			continue
		}
		if strings.HasPrefix(st, "module ") {
			rest := strings.TrimSpace(st[len("module "):])
			if i := strings.IndexAny(rest, " ("); i >= 0 {
				name = rest[:i]
			} else {
				name = rest
			}
			continue
		}
		stmts = append(stmts, st)
	}
	return stmts, name, nil
}

// splitNames parses "a, b , c" (optionally with a [msb:lsb] range,
// which is rejected — the subset is scalar-only).
func splitNames(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		out = append(out, strings.TrimSpace(n))
	}
	return out
}

// parseGateInst parses "and g1 (out, a, b)" or "and (out, a)".
func parseGateInst(st, kw string, ty circuit.GateType) (rawGate, error) {
	open := strings.IndexByte(st, '(')
	close := strings.LastIndexByte(st, ')')
	if open < 0 || close < open {
		return rawGate{}, &ParseError{st, "malformed gate instantiation"}
	}
	ports := splitNames(st[open+1 : close])
	if len(ports) < 2 {
		return rawGate{}, &ParseError{st, "gate needs an output and at least one input"}
	}
	for _, p := range ports {
		if p == "" {
			return rawGate{}, &ParseError{st, "empty port"}
		}
	}
	out, args := ports[0], ports[1:]
	if n, min, max := len(args), ty.MinFanin(), ty.MaxFanin(); n < min || (max >= 0 && n > max) {
		return rawGate{}, &ParseError{st, fmt.Sprintf("%s with %d inputs", kw, n)}
	}
	return rawGate{out: out, typ: ty, args: args, stmt: st}, nil
}

// parseAssign handles "assign y = x" and "assign y = 1'b0/1'b1" (the
// forms ISCAS-converted netlists use); anything else is rejected.
func parseAssign(st string) (rawGate, error) {
	body := strings.TrimSpace(strings.TrimPrefix(st, "assign"))
	eq := strings.IndexByte(body, '=')
	if eq < 0 {
		return rawGate{}, &ParseError{st, "assign without '='"}
	}
	lhs := strings.TrimSpace(body[:eq])
	rhs := strings.TrimSpace(body[eq+1:])
	if lhs == "" || rhs == "" {
		return rawGate{}, &ParseError{st, "malformed assign"}
	}
	if strings.ContainsAny(rhs, "&|^~?(") {
		return rawGate{}, &ParseError{st, "behavioural assign expressions are not supported"}
	}
	return rawGate{out: lhs, typ: circuit.Buf, args: []string{rhs}, stmt: st}, nil
}

func keySuffix(name string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(name, KeyPrefix))
	if err != nil {
		return 1 << 30
	}
	return n
}

// Write serialises a circuit as a structural Verilog module. MUX gates
// are lowered to and/or/not primitives (structural Verilog has no mux
// primitive); constants become 1'b0 / 1'b1 assigns.
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	names := make([]string, len(c.Gates))
	used := map[string]bool{}
	for i, kid := range c.Keys {
		names[kid] = fmt.Sprintf("%s%d", KeyPrefix, i)
		used[names[kid]] = true
	}
	sanitize := func(n string) string {
		var sb strings.Builder
		for _, r := range n {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
				sb.WriteRune(r)
			default:
				sb.WriteByte('_')
			}
		}
		s := sb.String()
		if s == "" || (s[0] >= '0' && s[0] <= '9') {
			s = "n" + s
		}
		return s
	}
	for id := range c.Gates {
		if names[id] != "" {
			continue
		}
		n := sanitize(c.Gates[id].Name)
		if n == "" || n == "n" || used[n] || (c.Gates[id].Type != circuit.Key && strings.HasPrefix(n, KeyPrefix)) {
			n = fmt.Sprintf("g%d", id)
			for used[n] {
				n = "x" + n
			}
		}
		names[id] = n
		used[n] = true
	}
	// Output ports must not collide with internal wire names: emit
	// dedicated port wires driven by assigns.
	outPorts := make([]string, len(c.POs))
	for i := range c.POs {
		p := sanitize(c.OutputName(i))
		if p == "" || used[p] {
			p = fmt.Sprintf("po%d", i)
			for used[p] {
				p = "x" + p
			}
		}
		outPorts[i] = p
		used[p] = true
	}

	modName := sanitize(c.Name)
	if modName == "" || modName == "n" {
		modName = "top"
	}
	var ports []string
	for _, id := range c.PIs {
		ports = append(ports, names[id])
	}
	for _, id := range c.Keys {
		ports = append(ports, names[id])
	}
	ports = append(ports, outPorts...)
	fmt.Fprintf(bw, "module %s (%s);\n", modName, strings.Join(ports, ", "))
	for _, id := range c.PIs {
		fmt.Fprintf(bw, "  input %s;\n", names[id])
	}
	for _, id := range c.Keys {
		fmt.Fprintf(bw, "  input %s;\n", names[id])
	}
	for _, p := range outPorts {
		fmt.Fprintf(bw, "  output %s;\n", p)
	}
	for _, id := range c.MustTopoOrder() {
		g := &c.Gates[id]
		if g.Type == circuit.Input || g.Type == circuit.Key {
			continue
		}
		fmt.Fprintf(bw, "  wire %s;\n", names[id])
	}
	auxCount := 0
	aux := func() string {
		auxCount++
		n := fmt.Sprintf("mx%d", auxCount)
		for used[n] {
			n = "x" + n
		}
		used[n] = true
		fmt.Fprintf(bw, "  wire %s;\n", n)
		return n
	}
	gi := 0
	inst := func(kw, out string, ins ...string) {
		gi++
		fmt.Fprintf(bw, "  %s I%d (%s, %s);\n", kw, gi, out, strings.Join(ins, ", "))
	}
	for _, id := range c.MustTopoOrder() {
		g := &c.Gates[id]
		ins := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			ins[i] = names[f]
		}
		switch g.Type {
		case circuit.Input, circuit.Key:
		case circuit.Const0:
			fmt.Fprintf(bw, "  assign %s = 1'b0;\n", names[id])
		case circuit.Const1:
			fmt.Fprintf(bw, "  assign %s = 1'b1;\n", names[id])
		case circuit.Buf:
			inst("buf", names[id], ins...)
		case circuit.Not:
			inst("not", names[id], ins...)
		case circuit.And:
			inst("and", names[id], ins...)
		case circuit.Nand:
			inst("nand", names[id], ins...)
		case circuit.Or:
			inst("or", names[id], ins...)
		case circuit.Nor:
			inst("nor", names[id], ins...)
		case circuit.Xor:
			inst("xor", names[id], ins...)
		case circuit.Xnor:
			inst("xnor", names[id], ins...)
		case circuit.Mux:
			// z = (~s & a) | (s & b)
			ns, t1, t2 := aux(), aux(), aux()
			inst("not", ns, ins[0])
			inst("and", t1, ns, ins[1])
			inst("and", t2, ins[0], ins[2])
			inst("or", names[id], t1, t2)
		default:
			return fmt.Errorf("verilog: cannot serialise gate type %v", g.Type)
		}
	}
	for i, po := range c.POs {
		fmt.Fprintf(bw, "  assign %s = %s;\n", outPorts[i], names[po])
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

// Format renders the circuit as a Verilog string.
func Format(c *circuit.Circuit) string {
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		return "// error: " + err.Error()
	}
	return sb.String()
}
