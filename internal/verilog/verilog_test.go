package verilog

import (
	"math/rand"
	"strings"
	"testing"

	"statsat/internal/bench"
	"statsat/internal/circuit"
	"statsat/internal/gen"
	"statsat/internal/lock"
)

const c17Verilog = `// ISCAS85 c17
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;
  nand g1 (N10, N1, N3);
  nand g2 (N11, N3, N6);
  nand g3 (N16, N2, N11);
  nand g4 (N19, N11, N7);
  nand g5 (N22, N10, N16);
  nand g6 (N23, N16, N19);
endmodule
`

func TestParseC17(t *testing.T) {
	c, err := ParseString(c17Verilog)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "c17" {
		t.Errorf("module name = %q", c.Name)
	}
	s := c.Summary()
	if s.Inputs != 5 || s.Gates != 6 || s.Outputs != 2 {
		t.Fatalf("summary = %+v", s)
	}
	// Must agree with the canonical c17 on the full truth table.
	ref := gen.C17()
	pi := make([]bool, 5)
	for m := 0; m < 32; m++ {
		for b := 0; b < 5; b++ {
			pi[b] = m>>uint(b)&1 == 1
		}
		a := ref.Eval(pi, nil, nil)
		g := c.Eval(pi, nil, nil)
		if a[0] != g[0] || a[1] != g[1] {
			t.Fatalf("c17 mismatch at %v: %v vs %v", pi, g, a)
		}
	}
}

func TestParseMultiLineAndComments(t *testing.T) {
	src := `
module m (a,
          b, /* block
          comment spanning lines */ y);
  input a, b;   // line comment
  output y;
  and g1 (y,
          a, b);
endmodule
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Eval([]bool{true, true}, nil, nil)[0]; got != true {
		t.Errorf("AND(1,1) = %v", got)
	}
}

func TestParseKeyInputs(t *testing.T) {
	src := `
module locked (a, keyinput1, keyinput0, y);
  input a;
  input keyinput1, keyinput0;
  output y;
  wire t;
  xor g1 (t, a, keyinput0);
  xnor g2 (y, t, keyinput1);
endmodule
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumKeys() != 2 || c.NumPIs() != 1 {
		t.Fatalf("keys=%d pis=%d", c.NumKeys(), c.NumPIs())
	}
	if c.Gates[c.Keys[0]].Name != "keyinput0" {
		t.Error("key ordering wrong")
	}
}

func TestParseAssignAndConstants(t *testing.T) {
	src := `
module m (a, y1, y2, y3);
  input a;
  output y1, y2, y3;
  wire w;
  not g1 (w, a);
  assign y1 = w;
  assign y2 = 1'b1;
  assign y3 = 1'b0;
endmodule
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	out := c.Eval([]bool{true}, nil, nil)
	if out[0] != false || out[1] != true || out[2] != false {
		t.Errorf("eval = %v", out)
	}
}

func TestParseOutOfOrder(t *testing.T) {
	src := `
module m (a, y);
  input a;
  output y;
  wire w1, w2;
  and g2 (y, w1, w2);
  not g1 (w1, a);
  buf g0 (w2, a);
endmodule
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Eval([]bool{true}, nil, nil)[0]; got != false {
		t.Errorf("a AND NOT a = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"behavioural assign", "module m(a,y); input a; output y; assign y = a & a; endmodule"},
		{"always block", "module m(a,y); input a; output y; always @(a) y = a; endmodule"},
		{"undriven output", "module m(a,y); input a; output y; endmodule"},
		{"undeclared signal ok but undriven", "module m(a,y); input a; output y; and g(y, a, ghost); endmodule"},
		{"double driver", "module m(a,y); input a; output y; not g1(y,a); buf g2(y,a); endmodule"},
		{"cycle", "module m(a,y); input a; output y; wire w; and g1(y,a,w); not g2(w,y); endmodule"},
		{"bad arity not", "module m(a,b,y); input a,b; output y; not g(y,a,b); endmodule"},
		{"malformed gate", "module m(a,y); input a; output y; and g y a; endmodule"},
		{"empty port", "module m(a,y); input a; output y; and g(y,,a); endmodule"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseString(tc.src); err == nil {
				t.Errorf("want error for %s", tc.src)
			}
		})
	}
}

func TestParseErrorString(t *testing.T) {
	_, err := ParseString("module m(a,y); input a; output y; frobnicate g(y,a); endmodule")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "frobnicate") {
		t.Errorf("error lacks context: %v", err)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for seed := int64(0); seed < 8; seed++ {
		orig := gen.Random("rt", 8, 60, 5, seed)
		text := Format(orig)
		back, err := ParseString(text)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, text)
		}
		for trial := 0; trial < 40; trial++ {
			pi := orig.RandomInputs(rng)
			a := orig.Eval(pi, nil, nil)
			b := back.Eval(pi, nil, nil)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seed %d: round-trip mismatch at output %d", seed, i)
				}
			}
		}
	}
}

func TestWriteRoundTripLockedCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	orig := gen.Random("lk", 10, 80, 6, 3)
	l, err := lock.RLL(orig, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(Format(l.Circuit))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumKeys() != 8 {
		t.Fatalf("keys lost: %d", back.NumKeys())
	}
	for trial := 0; trial < 50; trial++ {
		pi := orig.RandomInputs(rng)
		a := l.Circuit.Eval(pi, l.Key, nil)
		b := back.Eval(pi, l.Key, nil)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("locked round-trip mismatch")
			}
		}
	}
}

func TestWriteMuxLowering(t *testing.T) {
	c := circuit.New("muxer")
	s := c.AddInput("s")
	a := c.AddInput("a")
	b := c.AddInput("b")
	m := c.AddGate(circuit.Mux, "m", s, a, b)
	c.AddOutput(m, "y")
	back, err := ParseString(Format(c))
	if err != nil {
		t.Fatalf("%v\n%s", err, Format(c))
	}
	for mval := 0; mval < 8; mval++ {
		pi := []bool{mval&1 == 1, mval&2 == 2, mval&4 == 4}
		if c.Eval(pi, nil, nil)[0] != back.Eval(pi, nil, nil)[0] {
			t.Fatalf("mux lowering wrong at %v", pi)
		}
	}
}

func TestWriteConstants(t *testing.T) {
	c := circuit.New("k")
	c.AddInput("a")
	z := c.AddGate(circuit.Const0, "z")
	o := c.AddGate(circuit.Const1, "o")
	g := c.AddGate(circuit.Nor, "g", z, o)
	c.AddOutput(g, "y")
	back, err := ParseString(Format(c))
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Eval([]bool{false}, nil, nil)[0]; got != false {
		t.Errorf("NOR(0,1) = %v", got)
	}
}

func TestWriteSanitizesNames(t *testing.T) {
	c := circuit.New("weird name!")
	a := c.AddInput("in[0]")
	g := c.AddGate(circuit.Not, "3bad.name", a)
	c.AddOutput(g, "out-1")
	text := Format(c)
	if strings.ContainsAny(text, "[].!-") {
		t.Errorf("unsanitised identifiers in:\n%s", text)
	}
	if _, err := ParseString(text); err != nil {
		t.Fatalf("sanitised output unparsable: %v\n%s", err, text)
	}
}

// TestCrossFormatAgreement: bench → circuit → verilog → circuit keeps
// behaviour.
func TestCrossFormatAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orig := gen.Random("xf", 9, 70, 5, 11)
	viaBench, err := bench.ParseString(bench.Format(orig))
	if err != nil {
		t.Fatal(err)
	}
	viaVerilog, err := ParseString(Format(viaBench))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		pi := orig.RandomInputs(rng)
		a := orig.Eval(pi, nil, nil)
		b := viaVerilog.Eval(pi, nil, nil)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("cross-format mismatch")
			}
		}
	}
}

func BenchmarkParseC17(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(c17Verilog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFormatRandom(b *testing.B) {
	c := gen.Random("f", 20, 500, 10, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Format(c)
	}
}
