// Package lint is a project-specific static-analysis pass built
// entirely on the standard library (go/parser, go/ast, go/types). It
// machine-checks the conventions the repo's headline guarantees rest
// on — byte-identical experiment output at any worker count, the
// BatchQuerier buffer-validity contract, and zero-allocation hot paths
// when tracing is off — which until now were enforced only by reviewer
// vigilance. See docs/LINTING.md for the catalogue of checks, the
// invariant each one guards, and the suppression syntax.
//
// The architecture is deliberately small: a Check inspects one
// type-checked Package and reports Findings; Run loads packages,
// applies every check whose scope matches, filters findings through
// //lint:ignore directives, and returns the remainder sorted by
// position. cmd/statlint is a thin driver over Run.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the finding in the canonical driver output format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Package is one parsed and type-checked package, the unit a Check
// inspects.
type Package struct {
	// Path is the import path ("statsat/internal/core").
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Fset positions all Files.
	Fset *token.FileSet
	// Files are the parsed non-test source files, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker's expression/object tables.
	Info *types.Info
}

// Check is one self-contained rule. Checks must be stateless across
// packages: Run may be called for many packages in any order.
type Check interface {
	// Name is the short identifier used in output and in
	// //lint:ignore directives ("globalrand").
	Name() string
	// Doc is a one-paragraph description of the invariant guarded.
	Doc() string
	// Applies reports whether the check inspects the package with the
	// given import path. Scoping lives here so the driver stays
	// generic.
	Applies(pkgPath string) bool
	// Run inspects p and returns raw findings; suppression directives
	// are applied by the framework, not by individual checks. m is the
	// module-wide view (call graph + per-function summaries) built once
	// over every loaded package; per-package pattern checks may ignore
	// it.
	Run(p *Package, m *Module) []Finding
}

// DefaultChecks returns the full catalogue in a stable order.
func DefaultChecks() []Check {
	return []Check{
		GlobalRand{},
		WallTime{},
		BufRetain{},
		TraceGate{},
		FloatEq{},
		CtxFlow{},
		GoLeak{},
		LockScope{},
		SeedFlow{},
	}
}

// fixtureScope marks the lint fixture tree: every check also applies
// there so the harness and the driver exercise real scoping end to
// end. Fixtures for one check are written to be clean under all the
// others.
const fixtureScope = "internal/lint/testdata"

// inScope reports whether pkgPath is the module-internal path prefix
// (or exactly it), or part of the fixture tree.
func inScope(pkgPath string, prefixes ...string) bool {
	if strings.Contains(pkgPath, fixtureScope) {
		return true
	}
	for _, p := range prefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	check  string // check name, or "*" for any
	reason string
	line   int
	pos    token.Position
	used   bool
}

// parseIgnores collects //lint:ignore directives from a file. The
// directive suppresses matching findings on its own line (trailing
// comment) or on the line immediately below (standalone comment line).
// A directive without a reason is itself reported as a finding — an
// unexplained suppression is exactly the silent drift the pass exists
// to prevent.
func parseIgnores(fset *token.FileSet, file *ast.File) (dirs []*ignoreDirective, malformed []Finding) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "lint:ignore") {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:ignore"))
			fields := strings.SplitN(rest, " ", 2)
			if len(fields) < 2 || strings.TrimSpace(fields[1]) == "" || fields[0] == "" {
				malformed = append(malformed, Finding{
					Pos:   pos,
					Check: "lint",
					Message: "malformed //lint:ignore directive: want " +
						"\"//lint:ignore <check> <reason>\" with a non-empty reason",
				})
				continue
			}
			dirs = append(dirs, &ignoreDirective{
				check:  fields[0],
				reason: strings.TrimSpace(fields[1]),
				line:   pos.Line,
				pos:    pos,
			})
		}
	}
	return dirs, malformed
}

// suppressed reports whether f is covered by a directive: same check
// name (or "*"), same file, and the directive sits on the finding's
// line or the line above it.
func suppressed(f Finding, dirs []*ignoreDirective) bool {
	for _, d := range dirs {
		if d.check != "*" && d.check != f.Check {
			continue
		}
		if d.pos.Filename != f.Pos.Filename {
			continue
		}
		if d.line == f.Pos.Line || d.line == f.Pos.Line-1 {
			d.used = true
			return true
		}
	}
	return false
}

// RunChecks applies every matching check to every package, filters
// suppressed findings, and returns the rest sorted by position.
// Malformed and unused //lint:ignore directives are reported under the
// pseudo-check "lint".
func RunChecks(pkgs []*Package, checks []Check) []Finding {
	m := NewModule(pkgs)
	var out []Finding
	for _, p := range pkgs {
		var dirs []*ignoreDirective
		for _, file := range p.Files {
			d, bad := parseIgnores(p.Fset, file)
			dirs = append(dirs, d...)
			out = append(out, bad...)
		}
		var raw []Finding
		for _, c := range checks {
			if !c.Applies(p.Path) {
				continue
			}
			raw = append(raw, c.Run(p, m)...)
		}
		for _, f := range raw {
			if !suppressed(f, dirs) {
				out = append(out, f)
			}
		}
		for _, d := range dirs {
			if !d.used {
				out = append(out, Finding{
					Pos:   d.pos,
					Check: "lint",
					Message: fmt.Sprintf("unused //lint:ignore %s directive: no %s finding on this or the next line",
						d.check, d.check),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

// walkStack traverses every file of p, calling fn with each node and
// the stack of its ancestors (outermost first, not including the node
// itself). It is the parent-aware traversal the guard-dominance
// analysis in tracegate and the retention analysis in bufretain need;
// stdlib ast.Inspect alone does not expose parents.
func walkStack(p *Package, fn func(n ast.Node, stack []ast.Node)) {
	for _, file := range p.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			fn(n, stack)
			stack = append(stack, n)
			return true
		})
	}
}

// funcObj resolves the called function/method object of a call
// expression, or nil if the callee is not a known func (e.g. a
// conversion or a func-typed variable).
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// pkgFuncUse reports whether the identifier use resolves to the
// package-level function pkgPath.name, returning the resolved func.
func pkgFunc(obj types.Object, pkgPath string) (*types.Func, bool) {
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return nil, false
	}
	// Package-level functions only: methods have a receiver.
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return nil, false
	}
	return f, true
}
