package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockScope enforces mutex discipline across internal/: while a
// sync.Mutex or sync.RWMutex is held, nothing may block — no channel
// sends or receives, no select without default, no WaitGroup/Cond
// Wait, no Solve* calls, no module callee whose summary blocks, and no
// Emit with an allocating payload (trace fan-out can stall on slow
// subscribers; cheap envelopes are fine) — and every path out of the
// function must release what it acquired (deferred Unlock, including
// inside a deferred FuncLit, satisfies all paths at once). The
// analysis is a branch-sensitive walk over each function body tracking
// the held/deferred state per mutex expression; TryLock in an if
// condition is understood in both polarities. Blocking under a lock is
// how the serialised-oracle design deadlocks or convoys: every
// instance goroutine funnels through lockedOracle.mu, so one blocked
// holder stalls the whole portfolio.
type LockScope struct{}

func (LockScope) Name() string { return "lockscope" }

func (LockScope) Doc() string {
	return "no blocking operations (channel ops, Wait, Solve*, Emit with an allocating " +
		"payload, blocking module callees) while a sync.Mutex/RWMutex is held, and " +
		"unlock-on-all-paths discipline including defer"
}

func (LockScope) Applies(pkgPath string) bool {
	return inScope(pkgPath, "statsat/internal")
}

func (c LockScope) Run(p *Package, m *Module) []Finding {
	w := &lockWalker{p: p, m: m, check: c.Name()}
	// Analyze every function body — declarations and literals alike —
	// each with an empty entry state. Literals are collected first so
	// the statement walk can treat them as opaque.
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w.analyzeBody(fd.Body)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				w.analyzeBody(lit.Body)
			}
			return true
		})
	}
	sort.Slice(w.out, func(i, j int) bool { return w.out[i].Pos.Offset < w.out[j].Pos.Offset })
	return w.out
}

// lockVal is the tracked state of one mutex within one function.
type lockVal struct {
	held     bool
	deferred bool      // an Unlock for it is deferred
	lockPos  token.Pos // where it was last acquired
}

// lockEnv maps a rendered mutex expression ("c.mu", "s.pool.mu") to
// its state. Keys are syntactic: two expressions spelling the same
// path are the same mutex, aliases are (deliberately) not chased.
type lockEnv map[string]*lockVal

func (e lockEnv) clone() lockEnv {
	c := make(lockEnv, len(e))
	for k, v := range e {
		cp := *v
		c[k] = &cp
	}
	return c
}

func (e lockEnv) get(key string) *lockVal {
	if v, ok := e[key]; ok {
		return v
	}
	v := &lockVal{}
	e[key] = v
	return v
}

// anyHeld returns the (alphabetically first, for determinism) held
// mutex key, or "".
func (e lockEnv) anyHeld() string {
	var keys []string
	for k, v := range e {
		if v.held {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return ""
	}
	sort.Strings(keys)
	return keys[0]
}

// heldEqual reports whether two environments agree on which mutexes
// are held, returning the first key they disagree on.
func heldEqual(a, b lockEnv) (string, bool) {
	var keys []string
	for k := range a {
		keys = append(keys, k)
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		ah := a[k] != nil && a[k].held
		bh := b[k] != nil && b[k].held
		if ah != bh {
			return k, false
		}
	}
	return "", true
}

type lockWalker struct {
	p     *Package
	m     *Module
	check string
	out   []Finding
}

func (w *lockWalker) finding(pos token.Pos, msg string) {
	w.out = append(w.out, Finding{Pos: w.p.Fset.Position(pos), Check: w.check, Message: msg})
}

func (w *lockWalker) analyzeBody(body *ast.BlockStmt) {
	env := lockEnv{}
	terminal := w.stmts(body.List, env)
	if terminal {
		return
	}
	for _, key := range sortedKeys(env) {
		v := env[key]
		if v.held && !v.deferred {
			w.finding(v.lockPos, "function ends holding "+key+
				"; release on all paths or defer the Unlock")
		}
	}
}

func sortedKeys(env lockEnv) []string {
	keys := make([]string, 0, len(env))
	for k := range env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// stmts walks a statement list, returning true when the list ends the
// control-flow path (return/branch on every continuation).
func (w *lockWalker) stmts(list []ast.Stmt, env lockEnv) bool {
	for _, s := range list {
		if w.stmt(s, env) {
			return true
		}
	}
	return false
}

func (w *lockWalker) stmt(s ast.Stmt, env lockEnv) bool {
	switch x := s.(type) {
	case *ast.ExprStmt:
		w.scan(x.X, env)
	case *ast.SendStmt:
		if h := env.anyHeld(); h != "" {
			w.finding(x.Pos(), "channel send while holding "+h+
				"; release the lock before blocking channel operations")
		}
		w.scan(x.Chan, env)
		w.scan(x.Value, env)
	case *ast.IncDecStmt:
		w.scan(x.X, env)
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			w.scan(e, env)
		}
		for _, e := range x.Lhs {
			w.scan(e, env)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scan(v, env)
					}
				}
			}
		}
	case *ast.DeferStmt:
		w.deferStmt(x, env)
	case *ast.GoStmt:
		for _, a := range x.Call.Args {
			w.scan(a, env)
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.scan(r, env)
		}
		for _, key := range sortedKeys(env) {
			v := env[key]
			if v.held && !v.deferred {
				w.finding(x.Pos(), "return while holding "+key+
					" with no deferred Unlock on this path")
			}
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the current construct; treating
		// them as terminal keeps the merge logic simple and errs
		// toward silence.
		return true
	case *ast.BlockStmt:
		return w.stmts(x.List, env)
	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, env)
	case *ast.IfStmt:
		return w.ifStmt(x, env)
	case *ast.ForStmt:
		if x.Init != nil {
			w.stmt(x.Init, env)
		}
		if x.Cond != nil {
			w.scan(x.Cond, env)
		}
		w.loopBody(x.Pos(), x.Body, env, func(e lockEnv) bool {
			t := w.stmts(x.Body.List, e)
			if !t && x.Post != nil {
				w.stmt(x.Post, e)
			}
			return t
		})
	case *ast.RangeStmt:
		if tv, ok := w.p.Info.Types[x.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				if h := env.anyHeld(); h != "" {
					w.finding(x.Pos(), "range over a channel while holding "+h+
						"; the receive blocks until the sender runs")
				}
			}
		}
		w.scan(x.X, env)
		w.loopBody(x.Pos(), x.Body, env, func(e lockEnv) bool {
			return w.stmts(x.Body.List, e)
		})
	case *ast.SwitchStmt:
		if x.Init != nil {
			w.stmt(x.Init, env)
		}
		if x.Tag != nil {
			w.scan(x.Tag, env)
		}
		w.caseClauses(x.Pos(), x.Body.List, env, hasDefaultCase(x.Body.List))
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			w.stmt(x.Init, env)
		}
		w.caseClauses(x.Pos(), x.Body.List, env, hasDefaultCase(x.Body.List))
	case *ast.SelectStmt:
		if !selectHasDefault(x) {
			if h := env.anyHeld(); h != "" {
				w.finding(x.Pos(), "select without default while holding "+h+
					"; the wait can stall every other holder of the lock")
			}
		}
		w.caseClauses(x.Pos(), x.Body.List, env, true)
	}
	return false
}

// ifStmt handles branch merge and the TryLock-in-condition idiom.
func (w *lockWalker) ifStmt(x *ast.IfStmt, env lockEnv) bool {
	if x.Init != nil {
		w.stmt(x.Init, env)
	}
	tryKey, negated, isTry := w.tryLockCond(x.Cond)
	if !isTry {
		w.scan(x.Cond, env)
	}
	thenEnv := env.clone()
	elseEnv := env.clone()
	if isTry {
		// `if mu.TryLock()` holds in the then-branch; `if !mu.TryLock()`
		// holds in the else/fallthrough.
		acquired := thenEnv
		if negated {
			acquired = elseEnv
		}
		v := acquired.get(tryKey)
		v.held = true
		v.lockPos = x.Cond.Pos()
	}
	tThen := w.stmts(x.Body.List, thenEnv)
	tElse := false
	if x.Else != nil {
		tElse = w.stmt(x.Else, elseEnv)
	}
	switch {
	case tThen && tElse:
		return true
	case tThen:
		replace(env, elseEnv)
	case tElse:
		replace(env, thenEnv)
	default:
		if key, ok := heldEqual(thenEnv, elseEnv); !ok {
			w.finding(x.Pos(), key+" is conditionally held after this if; "+
				"acquire and release symmetrically on both branches")
			// Continue un-held so the one real defect does not cascade.
			thenEnv.get(key).held = false
			elseEnv.get(key).held = false
		}
		replace(env, thenEnv)
	}
	return false
}

// loopBody analyzes a loop body on a cloned environment and reports
// when an iteration would exit with a different set of held locks than
// it entered with — the asymmetry that deadlocks on iteration two.
func (w *lockWalker) loopBody(pos token.Pos, body *ast.BlockStmt, env lockEnv, run func(lockEnv) bool) {
	bodyEnv := env.clone()
	terminal := run(bodyEnv)
	if !terminal {
		if key, ok := heldEqual(env, bodyEnv); !ok {
			w.finding(pos, "lock state of "+key+" changes across a loop iteration; "+
				"each iteration must release what it acquires")
		}
	}
	// The loop may run zero times; continue with the entry state.
}

// caseClauses walks each case/comm clause on a cloned environment and
// merges. covered=false adds the entry environment as an implicit
// fall-through path (a switch with no default).
func (w *lockWalker) caseClauses(pos token.Pos, clauses []ast.Stmt, env lockEnv, covered bool) {
	type branch struct {
		env      lockEnv
		terminal bool
	}
	var branches []branch
	for _, cl := range clauses {
		be := env.clone()
		var body []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.scan(e, be)
			}
			body = c.Body
		case *ast.CommClause:
			// The comm op's blocking nature is judged at the select
			// level; locals bound here cannot touch mutex state.
			body = c.Body
		}
		branches = append(branches, branch{be, w.stmts(body, be)})
	}
	if !covered {
		branches = append(branches, branch{env.clone(), false})
	}
	var live []lockEnv
	for _, b := range branches {
		if !b.terminal {
			live = append(live, b.env)
		}
	}
	if len(live) == 0 {
		return
	}
	for _, other := range live[1:] {
		if key, ok := heldEqual(live[0], other); !ok {
			w.finding(pos, key+" is conditionally held after this switch/select; "+
				"acquire and release symmetrically in every case")
			live[0].get(key).held = false
			other.get(key).held = false
		}
	}
	replace(env, live[0])
}

func replace(dst, src lockEnv) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// deferStmt registers deferred Unlocks — direct (`defer mu.Unlock()`)
// or inside a deferred FuncLit — and scans argument expressions, which
// evaluate immediately.
func (w *lockWalker) deferStmt(d *ast.DeferStmt, env lockEnv) {
	if key, method, ok := w.mutexMethod(d.Call); ok {
		if method == "Unlock" || method == "RUnlock" {
			env.get(key).deferred = true
		}
		return
	}
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if key, method, ok := w.mutexMethod(call); ok &&
					(method == "Unlock" || method == "RUnlock") {
					env.get(key).deferred = true
				}
			}
			return true
		})
		return
	}
	for _, a := range d.Call.Args {
		w.scan(a, env)
	}
}

// scan inspects an expression for mutex transitions and blocking
// operations under a held lock. FuncLits are opaque (analyzed
// separately with their own empty state).
func (w *lockWalker) scan(e ast.Expr, env lockEnv) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if h := env.anyHeld(); h != "" {
					w.finding(x.Pos(), "channel receive while holding "+h+
						"; release the lock before blocking channel operations")
				}
			}
		case *ast.CallExpr:
			if key, method, ok := w.mutexMethod(x); ok {
				v := env.get(key)
				switch method {
				case "Lock", "RLock":
					v.held = true
					v.lockPos = x.Pos()
				case "Unlock", "RUnlock":
					v.held = false
				}
				// TryLock outside an if condition: acquisition is
				// conditional, so no state transition is recorded.
				return false
			}
			if h := env.anyHeld(); h != "" {
				if desc, blocks := w.blockingCall(x); blocks {
					w.finding(x.Pos(), desc+" while holding "+h+
						"; release the lock around blocking work")
				}
			}
		}
		return true
	})
}

// blockingCall extends the shared summary classifier with the
// Emit-with-allocating-payload rule: trace fan-out of a payload that
// had to be built is presumed slow enough to matter under a lock,
// while cheap by-value envelopes pass.
func (w *lockWalker) blockingCall(call *ast.CallExpr) (string, bool) {
	if desc, blocks := w.m.callBlocks(w.p, call); blocks {
		return desc, true
	}
	if f := funcObj(w.p.Info, call); f != nil && f.Name() == "Emit" {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			if alloc := allocatingArg(w.p, call); alloc != "" {
				return "Emit with an allocating payload (" + alloc + ")", true
			}
		}
	}
	return "", false
}

// mutexMethod matches a call to (*sync.Mutex)/(*sync.RWMutex)
// Lock/Unlock/RLock/RUnlock/TryLock/TryRLock and returns the rendered
// receiver expression as the tracking key.
func (w *lockWalker) mutexMethod(call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	f, isFunc := w.p.Info.Uses[sel.Sel].(*types.Func)
	if !isFunc {
		return "", "", false
	}
	recv := syncRecv(f)
	if recv != "Mutex" && recv != "RWMutex" {
		return "", "", false
	}
	switch f.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
		return types.ExprString(sel.X), f.Name(), true
	}
	return "", "", false
}

// tryLockCond recognizes `mu.TryLock()` and `!mu.TryLock()` as an if
// condition (optionally parenthesized).
func (w *lockWalker) tryLockCond(cond ast.Expr) (key string, negated bool, ok bool) {
	e := ast.Unparen(cond)
	if u, isNot := e.(*ast.UnaryExpr); isNot && u.Op == token.NOT {
		negated = true
		e = ast.Unparen(u.X)
	}
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	k, method, isMutex := w.mutexMethod(call)
	if !isMutex || (method != "TryLock" && method != "TryRLock") {
		return "", false, false
	}
	return k, negated, true
}

func hasDefaultCase(clauses []ast.Stmt) bool {
	for _, cl := range clauses {
		if c, ok := cl.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if c, ok := cl.(*ast.CommClause); ok && c.Comm == nil {
			return true
		}
	}
	return false
}
