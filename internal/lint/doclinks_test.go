package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a fixture repo in a temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func findingStrings(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.String()
	}
	return out
}

func TestDocLinksClean(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md": "# Repo\n\nSee [the design](DESIGN.md#layout) and [docs](docs/GOOD.md).\n" +
			"Prose mention of docs/GOOD.md too.\n",
		"DESIGN.md":    "# Design\n\n## Layout\n\nBack to [readme](README.md).\n",
		"docs/GOOD.md": "# Good\n\nIntra-file [hop](#details).\n\n## Details\n\nText.\n",
		"pkg/ok.go":    "// Package ok is documented in docs/GOOD.md.\npackage ok\n",
	})
	fs, err := DocLinks(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("clean tree produced findings:\n%s", strings.Join(findingStrings(fs), "\n"))
	}
}

func TestDocLinksDeadTargets(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md": strings.Join([]string{
			"# Repo",
			"[gone](docs/MISSING.md)",            // dead file link
			"[bad anchor](DESIGN.md#no-such)",    // dead anchor
			"[self](#nowhere)",                   // dead intra-file anchor
			"Prose docs/ALSO-MISSING.md mention", // dead prose reference
			"[ok](DESIGN.md)",
		}, "\n") + "\n",
		"DESIGN.md":   "# Design\n",
		"pkg/bad.go":  "// See docs/GONE.md for details.\npackage bad\n",
		"docs/OK.md":  "# Fine\n",
		"CHANGES.md":  "Historical docs/REMOVED.md mention: not scanned.\n",
		"pkg/t.go.md": "ignored: not a scanned location\n",
	})
	fs, err := DocLinks(root)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(findingStrings(fs), "\n")
	for _, want := range []string{
		"docs/MISSING.md does not exist",
		"no heading #no-such in DESIGN.md",
		"no heading #nowhere in README.md",
		"docs/ALSO-MISSING.md does not exist",
		"docs/GONE.md does not exist",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing finding %q in:\n%s", want, got)
		}
	}
	if len(fs) != 5 {
		t.Errorf("got %d findings, want 5:\n%s", len(fs), got)
	}
	if strings.Contains(got, "REMOVED") {
		t.Errorf("CHANGES.md should not be scanned:\n%s", got)
	}
}

func TestDocLinksSkipsFencesAndExternal(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md": strings.Join([]string{
			"# Repo",
			"[external](https://example.com/docs/NOPE.md)",
			"[mail](mailto:x@example.com)",
			"```",
			"[fenced](docs/NOT-REAL.md) and prose docs/NOT-REAL.md",
			"```",
			"[anchored code](docs/D.md#in-code) is dead: the heading is fenced",
		}, "\n") + "\n",
		"docs/D.md": "# D\n\n```\n## In code\n```\n",
	})
	fs, err := DocLinks(root)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(findingStrings(fs), "\n")
	if strings.Contains(got, "NOT-REAL") || strings.Contains(got, "NOPE") {
		t.Errorf("fenced/external content was checked:\n%s", got)
	}
	if !strings.Contains(got, "no heading #in-code") {
		t.Errorf("fenced heading treated as an anchor:\n%s", got)
	}
}

func TestHeadingSlugs(t *testing.T) {
	slugs := headingSlugs(strings.Join([]string{
		"# The `Solve` Loop!",
		"## VSIDS & phase-saving",
		"## Repeat",
		"## Repeat",
		"#not-a-heading",
		"## With [a link](x.md) inside",
	}, "\n"))
	for _, want := range []string{
		"the-solve-loop",
		"vsids--phase-saving",
		"repeat",
		"repeat-1",
		"with-a-link-inside",
	} {
		if !slugs[want] {
			t.Errorf("missing slug %q in %v", want, slugs)
		}
	}
	if slugs["not-a-heading"] || slugs["#not-a-heading"] {
		t.Error("#not-a-heading should not anchor")
	}
}
