package lint

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// wantRx extracts the backquoted expectation patterns of a
// `// want `rx` `rx“ comment.
var wantRx = regexp.MustCompile("`([^`]+)`")

// expectation is one `// want` annotation in a fixture file.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// FixtureMismatches loads the fixture package rooted at dir, runs the
// default checks through the full pipeline (scoping + suppression
// included, exactly as the driver would), and compares the findings
// against the fixtures' `// want `regex“ comments. Every want must be
// matched by a finding on its own line, and every finding must be
// covered by a want; each discrepancy is returned as a human-readable
// mismatch. An empty slice means the fixture behaves as annotated.
func FixtureMismatches(dir string) ([]string, error) {
	pkgs, err := Load(dir, []string{"."})
	if err != nil {
		return nil, err
	}
	if len(pkgs) != 1 {
		return nil, fmt.Errorf("lint: fixture %s: want exactly 1 package, got %d", dir, len(pkgs))
	}
	p := pkgs[0]

	var wants []*expectation
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				ms := wantRx.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					return nil, fmt.Errorf("%s:%d: malformed want comment (patterns must be backquoted)", pos.Filename, pos.Line)
				}
				for _, m := range ms {
					rx, err := regexp.Compile(m[1])
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern: %v", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: rx})
				}
			}
		}
	}

	findings := RunChecks(pkgs, DefaultChecks())
	var mismatches []string
	for _, f := range findings {
		text := fmt.Sprintf("[%s] %s", f.Check, f.Message)
		covered := false
		for _, w := range wants {
			if w.file == f.Pos.Filename && w.line == f.Pos.Line && w.pattern.MatchString(text) {
				w.matched = true
				covered = true
			}
		}
		if !covered {
			mismatches = append(mismatches, fmt.Sprintf("unexpected finding at %s:%d: %s", f.Pos.Filename, f.Pos.Line, text))
		}
	}
	for _, w := range wants {
		if !w.matched {
			mismatches = append(mismatches, fmt.Sprintf("missing finding at %s:%d: no match for `%s`", w.file, w.line, w.pattern))
		}
	}
	sort.Strings(mismatches)
	return mismatches, nil
}

// DirectiveLine returns the 1-based line of the first comment in the
// fixture package at dir whose text equals exactly `//` + text, or 0
// if absent. Tests use it to locate expected [lint] directive findings
// without hardcoding line numbers.
func DirectiveLine(dir, text string) (string, int, error) {
	pkgs, err := Load(dir, []string{"."})
	if err != nil {
		return "", 0, err
	}
	for _, p := range pkgs {
		for _, file := range p.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == text {
						pos := p.Fset.Position(c.Pos())
						return pos.Filename, pos.Line, nil
					}
				}
			}
		}
	}
	return "", 0, nil
}
