package lint

import (
	"go/ast"
	"go/types"
)

// BufRetain enforces the BatchQuerier buffer-validity contract from
// the PR 2 allocation diet: the slices returned (or filled) by
// SignalProbsInto, UncertaintiesInto and EvalNoisyBatchInto alias the
// callee's reusable scratch and are invalid after the next call on the
// same receiver. Retaining such a slice — storing it into a struct
// field, a package-level variable, a map/slice reachable from one, a
// composite literal, or appending it into a retained destination —
// produces silently stale probability vectors, exactly the
// quiet-corruption failure mode that wrecks SAT-attack conclusions
// without crashing. Local-variable reuse (buf = SignalProbsInto(...,
// buf)) is the intended idiom and stays legal.
type BufRetain struct{}

func (BufRetain) Name() string { return "bufretain" }

func (BufRetain) Doc() string {
	return "flags storing a SignalProbsInto/UncertaintiesInto/EvalNoisyBatchInto/" +
		"EvalNoisyBlockInto/QueryBatch/QueryBlock result " +
		"into a struct field, global, composite literal or retained append target " +
		"without copying; these buffers are invalid after the next call"
}

func (BufRetain) Applies(string) bool { return true }

// bufReturningFuncs name the functions/methods whose results alias
// reusable internal buffers. Matching is by name across the module so
// interface methods (BatchQuerier/BlockQuerier implementations) are
// covered too. The blocked-evaluation APIs carry the same contract as
// their single-word ancestors: one scratch per owner, aliases invalid
// after the next call.
var bufReturningFuncs = map[string]bool{
	"SignalProbsInto":    true,
	"UncertaintiesInto":  true,
	"EvalNoisyBatchInto": true,
	"EvalNoisyBlockInto": true,
	"QueryBatch":         true,
	"QueryBlock":         true,
}

// aliasesBuf reports whether a call returns a buffer alias: a direct
// call to one of the named contract functions, or — through the module
// summaries — a wrapper whose return value is such an alias.
func aliasesBuf(m *Module, f *types.Func) bool {
	if bufReturningFuncs[f.Name()] {
		return true
	}
	if s := m.SummaryOf(f); s != nil && s.ReturnsBufAlias {
		return true
	}
	return false
}

func (c BufRetain) Run(p *Package, m *Module) []Finding {
	var out []Finding
	report := func(call *ast.CallExpr, fname, target string) {
		out = append(out, Finding{
			Pos:   p.Fset.Position(call.Pos()),
			Check: c.Name(),
			Message: "result of " + fname + " aliases a reusable internal buffer (invalid " +
				"after the next call); copy it before storing into " + target,
		})
	}

	walkStack(p, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		f := funcObj(p.Info, call)
		if f == nil || !aliasesBuf(m, f) {
			return
		}
		fname := f.Name()

		// Walk outward from the call through value-preserving wrappers
		// (parens, append chains) to the construct that consumes it.
		val := ast.Node(call)
		for i := len(stack) - 1; i >= 0; i-- {
			switch parent := stack[i].(type) {
			case *ast.ParenExpr:
				val = parent
				continue
			case *ast.CallExpr:
				// The alias flows through append in two shapes: as the
				// first argument (append may return the same backing
				// array) and as a non-spread element of a
				// slice-of-slices (the slice header itself is stored).
				// append(dst, buf...) however COPIES the elements —
				// that is the sanctioned copy idiom — so the spread
				// position is safe.
				if id, ok := ast.Unparen(parent.Fun).(*ast.Ident); ok && id.Name == "append" {
					if _, builtin := p.Info.Uses[id].(*types.Builtin); builtin {
						spread := parent.Ellipsis.IsValid() && len(parent.Args) > 0 &&
							sameExpr(parent.Args[len(parent.Args)-1], val)
						if !spread {
							val = parent
							continue
						}
						return
					}
				}
				// Any other call consumes the value behind an API
				// boundary — which the module summaries let us see
				// through: if the callee retains that argument position,
				// the alias escapes just as surely as a direct store.
				if g := funcObj(p.Info, parent); g != nil {
					if gs := m.SummaryOf(g); gs != nil {
						for argIdx, arg := range parent.Args {
							if sameExpr(arg, val) && gs.RetainsParam[argIdx] {
								report(call, fname, "an argument of "+g.Name()+
									", which retains it")
								return
							}
						}
					}
				}
				return
			case *ast.KeyValueExpr:
				if _, ok := stack[i-1].(*ast.CompositeLit); ok {
					report(call, fname, "a composite literal")
				}
				return
			case *ast.CompositeLit:
				report(call, fname, "a composite literal")
				return
			case *ast.AssignStmt:
				if tgt, retained := assignTarget(p, parent, val); retained {
					report(call, fname, tgt)
				}
				return
			case *ast.ValueSpec:
				// var g = SignalProbsInto(...): retained iff the spec
				// declares package-level variables.
				for _, name := range parent.Names {
					if obj := p.Info.Defs[name]; obj != nil && obj.Parent() == p.Types.Scope() {
						report(call, fname, "package-level var "+name.Name)
						return
					}
				}
				return
			default:
				return
			}
		}
	})
	return out
}

// sameExpr reports whether a is val modulo parentheses.
func sameExpr(a ast.Expr, val ast.Node) bool {
	return a == val || ast.Unparen(a) == val
}

// assignTarget finds which LHS of assign receives val and reports
// whether that destination outlives the statement (struct field,
// package-level var, or element of either).
func assignTarget(p *Package, assign *ast.AssignStmt, val ast.Node) (string, bool) {
	idx := -1
	for i, rhs := range assign.Rhs {
		if ast.Unparen(rhs) == val || rhs == val {
			idx = i
			break
		}
	}
	if idx < 0 || idx >= len(assign.Lhs) {
		return "", false
	}
	return retainedDest(p, assign.Lhs[idx])
}

// retainedDest reports whether storing into expr retains the value
// beyond the enclosing statement's scope: a struct field, a
// package-level variable, or an index into either.
func retainedDest(p *Package, expr ast.Expr) (string, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return "struct field " + e.Sel.Name, true
		}
		// Qualified package-level var (pkg.V).
		if v, ok := p.Info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return "package-level var " + e.Sel.Name, true
		}
	case *ast.Ident:
		if v, ok := p.Info.Uses[e].(*types.Var); ok && v.Parent() == p.Types.Scope() {
			return "package-level var " + e.Name, true
		}
	case *ast.IndexExpr:
		return retainedDest(p, e.X)
	case *ast.StarExpr:
		return retainedDest(p, e.X)
	}
	return "", false
}
