package lint

import (
	"go/ast"
	"go/types"
)

// WallTime forbids reading the wall clock (time.Now, time.Since,
// time.Until) outside the sanctioned timing sites. Experiment
// generators must be byte-identical at any worker count, so wall-clock
// reads may exist only where timing is the *product*: the trace
// emitter's monotonic stamps (internal/trace) and the attack engines'
// Result duration fields (internal/engine, internal/attack,
// internal/core) — both of which the harness zeroes before output
// comparison. Anywhere else a clock read is nondeterminism waiting to
// leak into generated artifacts.
type WallTime struct{}

func (WallTime) Name() string { return "walltime" }

func (WallTime) Doc() string {
	return "forbids time.Now/time.Since/time.Until outside internal/trace, " +
		"internal/engine, internal/attack, internal/core and internal/server, the " +
		"sanctioned timing sites whose readings are zeroed before deterministic " +
		"output comparison (or, for the server, are presentation-only metadata)"
}

// wallTimeAllowed are the packages whose clock reads are part of the
// documented timing contract. internal/engine joined the list when the
// shared attack loop (and with it the Result duration stamping) moved
// there from internal/attack; internal/server's job timestamps
// (created/started/finished in status responses) are presentation
// metadata, never experiment output, so the daemon is sanctioned too.
var wallTimeAllowed = map[string]bool{
	"statsat/internal/trace":  true,
	"statsat/internal/attack": true,
	"statsat/internal/core":   true,
	"statsat/internal/engine": true,
	"statsat/internal/server": true,
}

func (WallTime) Applies(pkgPath string) bool {
	return !wallTimeAllowed[pkgPath]
}

var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func (c WallTime) Run(p *Package, _ *Module) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			f, ok := p.Info.Uses[id].(*types.Func)
			if !ok || f.Pkg() == nil || f.Pkg().Path() != "time" || !wallClockFuncs[f.Name()] {
				return true
			}
			if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			out = append(out, Finding{
				Pos:   p.Fset.Position(id.Pos()),
				Check: c.Name(),
				Message: "wall-clock read (time." + f.Name() + ") outside the sanctioned timing " +
					"sites (internal/trace, internal/engine, internal/attack, internal/core); " +
					"generator output must be byte-identical across runs and worker counts",
			})
			return true
		})
	}
	return out
}
