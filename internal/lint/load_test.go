package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// writeModule materialises a throwaway module for loader tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const testGoMod = "module example.test\n\ngo 1.21\n"

// TestLoadImportCycle: a module-internal import cycle must surface as
// a load error naming the cycle, not as a hang or a type-check panic.
func TestLoadImportCycle(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":   testGoMod,
		"a/a.go":   "package a\n\nimport \"example.test/b\"\n\nvar A = b.B\n",
		"b/b.go":   "package b\n\nimport \"example.test/a\"\n\nvar B = 1\n\nvar _ = a.A\n",
		"m/m.go":   "package m\n",
		"m/doc.go": "package m\n",
	})
	_, err := Load(dir, []string{"a"})
	if err == nil {
		t.Fatal("Load on a cyclic module succeeded")
	}
	if !strings.Contains(err.Error(), "import cycle") {
		t.Errorf("error %q does not mention the import cycle", err)
	}
}

// TestLoadMissingPackage: an import of a module path with no directory
// behind it fails with the path in the message.
func TestLoadMissingPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": testGoMod,
		"a/a.go": "package a\n\nimport \"example.test/nope\"\n\nvar A = nope.X\n",
	})
	_, err := Load(dir, []string{"a"})
	if err == nil {
		t.Fatal("Load with a missing internal import succeeded")
	}
	if !strings.Contains(err.Error(), "nope") {
		t.Errorf("error %q does not name the missing package", err)
	}
}

// TestLoadBuildConstraints: files excluded on the current platform —
// by //go:build expression or filename suffix — must be dropped before
// type-checking. Every excluded file redeclares Impl, so accidental
// inclusion is a guaranteed type error, and the included tagged file
// proves satisfied constraints still load.
func TestLoadBuildConstraints(t *testing.T) {
	otherOS := "windows"
	if runtime.GOOS == "windows" {
		otherOS = "linux"
	}
	otherArch := "arm64"
	if runtime.GOARCH == "arm64" {
		otherArch = "amd64"
	}
	dir := writeModule(t, map[string]string{
		"go.mod": testGoMod,
		"p/p.go": "package p\n\nconst Impl = \"generic\"\n",
		"p/tagged.go": fmt.Sprintf(
			"//go:build %s\n\npackage p\n\nconst FromTagged = 1\n", runtime.GOOS),
		"p/excluded_expr.go": "//go:build windows && plan9\n\npackage p\n\nconst Impl = \"impossible\"\n",
		"p/excluded_neg.go": fmt.Sprintf(
			"//go:build !%s\n\npackage p\n\nconst Impl = \"negated\"\n", runtime.GOOS),
		fmt.Sprintf("p/impl_%s.go", otherOS):                    "package p\n\nconst Impl = \"other os\"\n",
		fmt.Sprintf("p/impl_%s_%s.go", otherOS, runtime.GOARCH): "package p\n\nconst Impl = \"other os, this arch\"\n",
		fmt.Sprintf("p/impl_%s.go", otherArch):                  "package p\n\nconst Impl = \"other arch\"\n",
	})
	pkgs, err := Load(dir, []string{"p"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if got := len(p.Files); got != 2 {
		for _, f := range p.Files {
			t.Logf("loaded: %s", p.Fset.Position(f.Pos()).Filename)
		}
		t.Errorf("loaded %d files, want 2 (p.go + tagged.go)", got)
	}
	for _, sym := range []string{"Impl", "FromTagged"} {
		if p.Types.Scope().Lookup(sym) == nil {
			t.Errorf("package scope is missing %s", sym)
		}
	}
}

// TestFileMatchesPlatform pins the filename-suffix rules, including
// the non-rules: a bare GOOS name and an unknown suffix do not
// constrain.
func TestFileMatchesPlatform(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{"plain.go", true},
		{"linux.go", true},                  // bare GOOS is not a constraint
		{"util_helper.go", true},            // unknown suffix
		{"x_" + runtime.GOOS + ".go", true}, // this OS
		{"x_" + runtime.GOOS + "_" + runtime.GOARCH + ".go", true},
		{"x_" + runtime.GOOS + "_test.go", true},
		{"x_plan9.go", runtime.GOOS == "plan9"},
		{"x_wasm.go", runtime.GOARCH == "wasm"},
		{"x_plan9_" + runtime.GOARCH + ".go", runtime.GOOS == "plan9"},
		{"x_" + runtime.GOOS + "_wasm.go", runtime.GOARCH == "wasm"},
	}
	for _, c := range cases {
		if got := fileMatchesPlatform(c.name); got != c.want {
			t.Errorf("fileMatchesPlatform(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}
