package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestCheckFixtures drives every check over its fixture package and
// asserts the exact finding positions via the `// want` annotations.
// The full pipeline runs (scoping and suppression included), so each
// fixture is also implicitly asserted clean under the other checks.
func TestCheckFixtures(t *testing.T) {
	for _, c := range DefaultChecks() {
		t.Run(c.Name(), func(t *testing.T) {
			dir := filepath.Join("testdata", c.Name())
			mismatches, err := FixtureMismatches(dir)
			if err != nil {
				t.Fatalf("FixtureMismatches(%s): %v", dir, err)
			}
			for _, m := range mismatches {
				t.Error(m)
			}
		})
	}
}

// TestCheckMetadata pins the catalogue: names are unique and non-empty
// and every check documents itself (docs/LINTING.md is generated from
// these strings by hand; keep them meaningful).
func TestCheckMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range DefaultChecks() {
		if c.Name() == "" || c.Doc() == "" {
			t.Errorf("check %T: empty Name or Doc", c)
		}
		if seen[c.Name()] {
			t.Errorf("duplicate check name %q", c.Name())
		}
		seen[c.Name()] = true
	}
	for _, name := range []string{"globalrand", "walltime", "bufretain", "tracegate", "floateq", "ctxflow", "goleak", "lockscope", "seedflow"} {
		if !seen[name] {
			t.Errorf("catalogue is missing check %q", name)
		}
	}
}

// TestSuppression exercises the //lint:ignore machinery end to end on
// testdata/suppress: two correctly suppressed globalrand findings must
// vanish, a malformed directive (no reason) must surface both the
// [lint] finding and the finding it failed to suppress, and an unused
// directive must be reported.
func TestSuppression(t *testing.T) {
	dir := filepath.Join("testdata", "suppress")
	pkgs, err := Load(dir, []string{"."})
	if err != nil {
		t.Fatal(err)
	}
	findings := RunChecks(pkgs, DefaultChecks())

	_, malformedLine, err := DirectiveLine(dir, "lint:ignore globalrand")
	if err != nil || malformedLine == 0 {
		t.Fatalf("locating malformed directive: line=%d err=%v", malformedLine, err)
	}
	_, unusedLine, err := DirectiveLine(dir, "lint:ignore walltime fixture: nothing on the next line triggers walltime")
	if err != nil || unusedLine == 0 {
		t.Fatalf("locating unused directive: line=%d err=%v", unusedLine, err)
	}

	type want struct {
		line    int
		check   string
		message string
	}
	wants := []want{
		{malformedLine, "lint", "malformed //lint:ignore directive"},
		{malformedLine + 1, "globalrand", "use of global math/rand.Intn"},
		{unusedLine, "lint", "unused //lint:ignore walltime directive"},
	}
	if len(findings) != len(wants) {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want %d", len(findings), len(wants))
	}
	for i, w := range wants {
		f := findings[i]
		if f.Pos.Line != w.line || f.Check != w.check || !strings.Contains(f.Message, w.message) {
			t.Errorf("finding %d = %s; want line %d check %s message containing %q", i, f, w.line, w.check, w.message)
		}
	}
}

// TestExpandSkipsTestdata: the recursive pattern must not descend into
// testdata (fixtures contain deliberate violations), while explicitly
// named fixture directories must still load.
func TestExpandSkipsTestdata(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := l.Expand(".", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("Expand(./...) descended into %s", d)
		}
	}
	explicit, err := l.Expand(".", []string{"testdata/clean"})
	if err != nil {
		t.Fatal(err)
	}
	if len(explicit) != 1 {
		t.Errorf("Expand(testdata/clean) = %v, want exactly the fixture dir", explicit)
	}
}

// TestCleanFixture: the pipeline reports nothing on the clean package.
func TestCleanFixture(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "clean"), []string{"."})
	if err != nil {
		t.Fatal(err)
	}
	if findings := RunChecks(pkgs, DefaultChecks()); len(findings) != 0 {
		for _, f := range findings {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

// TestWallTimeScope pins the sanctioned-package allowlist: the four
// timing packages are exempt, everything else is in scope.
func TestWallTimeScope(t *testing.T) {
	c := WallTime{}
	for _, path := range []string{"statsat/internal/trace", "statsat/internal/engine", "statsat/internal/attack", "statsat/internal/core"} {
		if c.Applies(path) {
			t.Errorf("walltime should not apply to sanctioned package %s", path)
		}
	}
	for _, path := range []string{"statsat", "statsat/internal/exp", "statsat/internal/gen", "statsat/cmd/experiments"} {
		if !c.Applies(path) {
			t.Errorf("walltime should apply to %s", path)
		}
	}
}

// TestExampleScope pins the examples-as-templates rule: the seed and
// randomness provenance checks cover examples/ (they are what users
// copy first), while the concurrency checks stay internal-only —
// examples are single-goroutine mains.
func TestExampleScope(t *testing.T) {
	const ex = "statsat/examples/quickstart"
	for _, c := range []Check{GlobalRand{}, SeedFlow{}} {
		if !c.Applies(ex) {
			t.Errorf("%s should apply to %s", c.Name(), ex)
		}
	}
	for _, c := range []Check{GoLeak{}, LockScope{}, TraceGate{}, CtxFlow{}} {
		if c.Applies(ex) {
			t.Errorf("%s should not apply to %s", c.Name(), ex)
		}
	}
}

// TestExpandIncludesExamples: the recursive walk from the module root
// reaches the examples tree, so the scoping asserted by
// TestExampleScope is actually exercised by `statlint ./...`.
func TestExpandIncludesExamples(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := l.Expand(l.modRoot, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range dirs {
		if strings.HasSuffix(d, filepath.Join("examples", "quickstart")) {
			found = true
		}
	}
	if !found {
		t.Errorf("Expand(./...) from the module root missed examples/quickstart; got %d dirs", len(dirs))
	}
}

// TestGoLeakScope pins the concurrent-subsystem scope of the goroutine
// leak check.
func TestGoLeakScope(t *testing.T) {
	c := GoLeak{}
	for _, path := range []string{"statsat/internal/server", "statsat/internal/portfolio", "statsat/internal/core", "statsat/internal/trace"} {
		if !c.Applies(path) {
			t.Errorf("goleak should apply to %s", path)
		}
	}
	for _, path := range []string{"statsat", "statsat/internal/gen", "statsat/cmd/statsatd"} {
		if c.Applies(path) {
			t.Errorf("goleak should not apply to %s", path)
		}
	}
}

// TestCtxFlowScope pins the attack-layer scope: the three packages the
// cancellation contract flows through are checked, the rest are not
// (cmd/ tools and tests construct root contexts legitimately).
func TestCtxFlowScope(t *testing.T) {
	c := CtxFlow{}
	for _, path := range []string{"statsat/internal/engine", "statsat/internal/attack", "statsat/internal/core"} {
		if !c.Applies(path) {
			t.Errorf("ctxflow should apply to %s", path)
		}
	}
	for _, path := range []string{"statsat", "statsat/internal/exp", "statsat/internal/sat", "statsat/cmd/statsat", "statsat/cmd/experiments"} {
		if c.Applies(path) {
			t.Errorf("ctxflow should not apply to %s", path)
		}
	}
}
