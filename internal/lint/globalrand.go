package lint

import (
	"go/ast"
	"go/types"
)

// GlobalRand forbids the process-global math/rand source inside
// internal/ and examples/. Every random decision in the attack and the
// experiment harness must flow from an explicit seeded *rand.Rand
// (parameter or struct field) derived from run coordinates, or the
// scheduler's byte-identical-output-at-any-worker-count guarantee
// silently breaks: the global source is shared mutable state whose
// consumption order depends on goroutine interleaving. Additionally,
// rand.New must be seeded right at the call site
// (rand.New(rand.NewSource(seed))) so the seed provenance is
// auditable. Examples are in scope because they are the copy-paste
// templates users start from: a global-rand example teaches the exact
// anti-pattern the check exists to keep out.
type GlobalRand struct{}

func (GlobalRand) Name() string { return "globalrand" }

func (GlobalRand) Doc() string {
	return "forbids package-level math/rand functions and rand.New calls not seeded " +
		"directly from rand.NewSource; all randomness must flow from an explicit " +
		"seeded *rand.Rand so output is deterministic at any worker count"
}

func (GlobalRand) Applies(pkgPath string) bool {
	return inScope(pkgPath, "statsat/internal", "statsat/examples")
}

// randConstructors are the package-level functions that do NOT touch
// the global source (math/rand and math/rand/v2 spellings).
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func (c GlobalRand) Run(p *Package, _ *Module) []Finding {
	var out []Finding
	seededNew := map[*ast.Ident]bool{} // rand.New idents whose arg is rand.NewSource(...)

	// First pass: find rand.New(rand.NewSource(...)) call shapes so
	// the second pass can tell seeded from un-seeded uses.
	walkStack(p, func(n ast.Node, _ []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		f := funcObj(p.Info, call)
		if f == nil || f.Pkg() == nil || !isRandPkg(f.Pkg().Path()) || f.Name() != "New" {
			return
		}
		if len(call.Args) != 1 {
			return
		}
		arg, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		af := funcObj(p.Info, arg)
		if af == nil || af.Pkg() == nil || !isRandPkg(af.Pkg().Path()) {
			return
		}
		if af.Name() != "NewSource" && af.Name() != "NewPCG" && af.Name() != "NewChaCha8" {
			return
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			seededNew[sel.Sel] = true
		} else if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			seededNew[id] = true
		}
	})

	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.Uses[id]
			f, ok := obj.(*types.Func)
			if !ok || f.Pkg() == nil || !isRandPkg(f.Pkg().Path()) {
				return true
			}
			if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods on *rand.Rand / Source are fine
			}
			switch {
			case !randConstructors[f.Name()]:
				out = append(out, Finding{
					Pos:   p.Fset.Position(id.Pos()),
					Check: c.Name(),
					Message: "use of global " + f.Pkg().Path() + "." + f.Name() +
						"; randomness must flow from an explicit seeded *rand.Rand " +
						"derived from run coordinates",
				})
			case f.Name() == "New" && !seededNew[id]:
				out = append(out, Finding{
					Pos:   p.Fset.Position(id.Pos()),
					Check: c.Name(),
					Message: "rand.New not seeded at the call site; write " +
						"rand.New(rand.NewSource(<derived seed>)) so seed provenance is auditable",
				})
			}
			return true
		})
	}
	return out
}
