package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Summary is one function's interprocedural behavior as the checks
// consume it. Every field is monotone (false→true, sets only grow), so
// the fixpoint iteration over an SCC in NewModule converges.
type Summary struct {
	// Blocks reports that the function may block indefinitely: a
	// channel send/receive or select outside a select-with-default, a
	// WaitGroup/Cond Wait, time.Sleep, a Solve* call, or a module
	// callee that blocks. BlockDesc names the first (source-order)
	// piece of evidence.
	Blocks    bool
	BlockDesc string
	// ObservesCancel reports that the function (or a module callee)
	// reads ctx.Done() or polls ctx.Err() — the repo's two sanctioned
	// cancellation idioms.
	ObservesCancel bool
	// WGDone reports a (possibly deferred) sync.WaitGroup.Done call,
	// the evidence that a spawner's wg.Wait joins this goroutine.
	WGDone bool
	// Loops reports a `for` with no condition; together with !Blocks it
	// decides Terminates.
	Loops bool
	// RecvChans are the channel objects the function receives from,
	// ranges over, or selects on; a goroutine is bounded when one of
	// them is in Module.ClosedChans.
	RecvChans map[types.Object]bool
	// RetainsParam marks parameter indices the function stores into a
	// struct field, package-level variable, composite literal, or
	// passes to a callee that retains them. Consumed by the escalated
	// bufretain check.
	RetainsParam map[int]bool
	// ReturnsBufAlias reports that the function returns the result of a
	// buffer-aliasing call (SignalProbsInto and friends, or a module
	// callee that itself returns such an alias), making the function a
	// buf-returning wrapper.
	ReturnsBufAlias bool
}

// Terminates reports that the function provably runs to completion:
// nothing in it (or its module callees) blocks or loops unconditionally.
func (s *Summary) Terminates() bool { return !s.Blocks && !s.Loops }

func (s *Summary) equal(o *Summary) bool {
	if o == nil {
		return false
	}
	if s.Blocks != o.Blocks || s.BlockDesc != o.BlockDesc ||
		s.ObservesCancel != o.ObservesCancel || s.WGDone != o.WGDone ||
		s.Loops != o.Loops || s.ReturnsBufAlias != o.ReturnsBufAlias {
		return false
	}
	if len(s.RecvChans) != len(o.RecvChans) || len(s.RetainsParam) != len(o.RetainsParam) {
		return false
	}
	for c := range s.RecvChans {
		if !o.RecvChans[c] {
			return false
		}
	}
	for i := range s.RetainsParam {
		if !o.RetainsParam[i] {
			return false
		}
	}
	return true
}

func (s *Summary) block(desc string) {
	if !s.Blocks {
		s.Blocks = true
		s.BlockDesc = desc
	}
}

func (s *Summary) recvChan(obj types.Object) {
	if obj == nil {
		return
	}
	if s.RecvChans == nil {
		s.RecvChans = map[types.Object]bool{}
	}
	s.RecvChans[obj] = true
}

// summarize computes the concurrency half of a Summary for one
// function body (declared function, method, or goroutine FuncLit).
// Nested FuncLits are opaque — they run at some other time — except
// when directly deferred, since a deferred literal executes on this
// function's own exit path (the `defer func() { <-sem; wg.Done() }()`
// idiom). go statements are skipped entirely: what a spawned goroutine
// does is its own summary's business.
func (m *Module) summarize(p *Package, body *ast.BlockStmt) *Summary {
	s := &Summary{}

	// Prepass: which FuncLits run inline (deferred), and which comm
	// operations sit inside a select (the select node itself carries
	// the blocking evidence, once).
	inlineLits := map[*ast.FuncLit]bool{}
	commOp := map[ast.Node]bool{}
	hasDefault := map[*ast.SelectStmt]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				inlineLits[lit] = true
			}
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm == nil {
					hasDefault[x] = true
					continue
				}
				commOp[cc.Comm] = true
				switch comm := cc.Comm.(type) {
				case *ast.SendStmt:
					commOp[comm] = true
				case *ast.ExprStmt:
					commOp[ast.Unparen(comm.X)] = true
				case *ast.AssignStmt:
					if len(comm.Rhs) == 1 {
						commOp[ast.Unparen(comm.Rhs[0])] = true
					}
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return inlineLits[x]
		case *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			if !hasDefault[x] {
				s.block("select without default")
			}
			// Record what the select receives on either way.
			for _, c := range x.Body.List {
				cc := c.(*ast.CommClause)
				var recv ast.Expr
				switch comm := cc.Comm.(type) {
				case *ast.ExprStmt:
					recv = comm.X
				case *ast.AssignStmt:
					if len(comm.Rhs) == 1 {
						recv = comm.Rhs[0]
					}
				}
				if u, ok := ast.Unparen(recv).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					m.markRecv(p, s, u.X)
				}
			}
		case *ast.SendStmt:
			if !commOp[x] {
				s.block("channel send")
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				m.markRecv(p, s, x.X)
				if !commOp[x] {
					s.block("channel receive")
				}
			}
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					s.block("range over a channel")
					s.recvChan(exprObj(p, x.X))
				}
			}
		case *ast.ForStmt:
			if x.Cond == nil {
				s.Loops = true
			}
		case *ast.CallExpr:
			m.summarizeCall(p, s, x)
		}
		return true
	})
	return s
}

// markRecv records cancellation/closed-channel evidence for a receive
// operand: <-ctx.Done() observes cancellation, anything resolvable is a
// received-from channel object.
func (m *Module) markRecv(p *Package, s *Summary, ch ast.Expr) {
	if ch == nil {
		return
	}
	if call, ok := ast.Unparen(ch).(*ast.CallExpr); ok {
		if f := funcObj(p.Info, call); f != nil && f.Pkg() != nil &&
			f.Pkg().Path() == "context" && f.Name() == "Done" {
			s.ObservesCancel = true
		}
		return
	}
	s.recvChan(exprObj(p, ch))
}

// summarizeCall folds one call's evidence into s: direct blocking
// classification plus union of the callee's summary for module-internal
// calls.
func (m *Module) summarizeCall(p *Package, s *Summary, call *ast.CallExpr) {
	f := funcObj(p.Info, call)
	if f == nil {
		return
	}
	if f.Pkg() != nil && f.Pkg().Path() == "context" &&
		(f.Name() == "Done" || f.Name() == "Err") {
		s.ObservesCancel = true
		return
	}
	if recv := syncRecv(f); recv != "" {
		switch {
		case f.Name() == "Done" && recv == "WaitGroup":
			s.WGDone = true
		case f.Name() == "Wait" && (recv == "WaitGroup" || recv == "Cond"):
			s.block("sync." + recv + ".Wait")
		}
		return
	}
	if desc, blocks := m.callBlocks(p, call); blocks {
		s.block(desc)
	}
	if fi := m.Funcs[f]; fi != nil && fi.Sum != nil {
		sum := fi.Sum
		s.ObservesCancel = s.ObservesCancel || sum.ObservesCancel
		s.WGDone = s.WGDone || sum.WGDone
		s.Loops = s.Loops || sum.Loops
		for c := range sum.RecvChans {
			s.recvChan(c)
		}
	}
}

// callBlocks classifies a call as potentially long-blocking: WaitGroup
// or Cond Wait, time.Sleep, anything named Solve* (solver work —
// interface methods included, which is exactly where SolveCtx hides),
// or a module callee whose summary blocks. Unresolvable calls (dynamic
// func values, conversions) and unknown externals are assumed
// non-blocking; the checks that consume this lean on the repo rule that
// blocking externals do not exist outside the patterns above.
func (m *Module) callBlocks(p *Package, call *ast.CallExpr) (string, bool) {
	f := funcObj(p.Info, call)
	if f == nil {
		return "", false
	}
	if recv := syncRecv(f); recv != "" {
		if f.Name() == "Wait" && (recv == "WaitGroup" || recv == "Cond") {
			return "sync." + recv + ".Wait", true
		}
		return "", false
	}
	if f.Pkg() != nil && f.Pkg().Path() == "time" && f.Name() == "Sleep" {
		return "time.Sleep", true
	}
	if osFileRecv(f) && fileBlockingMethods[f.Name()] {
		return "os.File." + f.Name() + " (blocking file I/O)", true
	}
	if strings.HasPrefix(f.Name(), "Solve") {
		return "call to " + f.Name() + " (solver work)", true
	}
	if fi := m.Funcs[f]; fi != nil && fi.Sum != nil && fi.Sum.Blocks {
		return "call to " + f.Name() + ", which may block (" + fi.Sum.BlockDesc + ")", true
	}
	return "", false
}

// fileBlockingMethods are the (*os.File) methods that hit the disk and
// can stall the caller for as long as the filesystem pleases — an
// fsync on a busy device is routinely tens of milliseconds. The WAL's
// single-writer design exists precisely so these never run under a
// mutex; this classification lets lockscope prove it stays that way.
// Close is deliberately absent: it is resource release, not I/O, and
// flagging it would outlaw the universal `defer f.Close()` shape.
var fileBlockingMethods = map[string]bool{
	"Sync":        true,
	"Write":       true,
	"WriteString": true,
	"WriteAt":     true,
	"Read":        true,
	"ReadAt":      true,
	"Truncate":    true,
}

// osFileRecv reports whether f is a method on os.File (pointer or
// value receiver), mirroring syncRecv's package-path matching.
func osFileRecv(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File"
}

// syncRecv returns the sync.<Type> receiver name ("Mutex", "RWMutex",
// "WaitGroup", "Cond", ...) of a method, or "".
func syncRecv(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return ""
	}
	return named.Obj().Name()
}

// retentionPass computes the escape half of the summary: which
// parameters the function retains (stores somewhere that outlives the
// call) and whether it returns a buffer-aliasing result. Single-step
// dataflow on purpose — the transitive part comes from the SCC
// fixpoint, not from chasing local aliases.
func (m *Module) retentionPass(p *Package, decl *ast.FuncDecl, s *Summary) {
	paramIdx := map[types.Object]int{}
	if decl.Type.Params != nil {
		i := 0
		for _, field := range decl.Type.Params.List {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					paramIdx[obj] = i
				}
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
	}

	inspectStack(decl.Body, func(n ast.Node, stack []ast.Node) {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				call, ok := ast.Unparen(r).(*ast.CallExpr)
				if !ok {
					continue
				}
				g := funcObj(p.Info, call)
				if g == nil {
					continue
				}
				if bufReturningFuncs[g.Name()] {
					s.ReturnsBufAlias = true
				} else if gs := m.SummaryOf(g); gs != nil && gs.ReturnsBufAlias {
					s.ReturnsBufAlias = true
				}
			}
		case *ast.Ident:
			idx, isParam := paramIdx[p.Info.Uses[x]]
			if !isParam {
				return
			}
			if m.valueRetained(p, x, stack) {
				if s.RetainsParam == nil {
					s.RetainsParam = map[int]bool{}
				}
				s.RetainsParam[idx] = true
			}
		}
	})
}

// valueRetained walks outward from a value use through the same
// value-preserving wrappers bufretain recognizes and reports whether
// the value lands somewhere that outlives the call: a retained
// assignment destination, a composite literal, or an argument position
// a module callee retains. append(dst, v...) copies and is safe.
func (m *Module) valueRetained(p *Package, use ast.Expr, stack []ast.Node) bool {
	val := ast.Node(use)
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			val = parent
			continue
		case *ast.CallExpr:
			if id, ok := ast.Unparen(parent.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, builtin := p.Info.Uses[id].(*types.Builtin); builtin {
					spread := parent.Ellipsis.IsValid() && len(parent.Args) > 0 &&
						sameExpr(parent.Args[len(parent.Args)-1], val)
					if spread {
						return false // element copy, the sanctioned idiom
					}
					val = parent
					continue
				}
			}
			// Passed to a callee: retained iff the callee's summary says
			// that argument position escapes.
			g := funcObj(p.Info, parent)
			if g == nil {
				return false
			}
			gs := m.SummaryOf(g)
			if gs == nil || len(gs.RetainsParam) == 0 {
				return false
			}
			for argIdx, arg := range parent.Args {
				if sameExpr(arg, val) {
					return gs.RetainsParam[argIdx]
				}
			}
			return false
		case *ast.KeyValueExpr:
			if parent.Key == val {
				return false
			}
			val = parent
			continue
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			if parent.Op == token.AND {
				val = parent
				continue
			}
			return false
		case *ast.AssignStmt:
			if _, retained := assignTarget(p, parent, val); retained {
				return true
			}
			return false
		case *ast.ValueSpec:
			for _, name := range parent.Names {
				if obj := p.Info.Defs[name]; obj != nil && obj.Parent() == p.Types.Scope() {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
	return false
}

// inspectStack is walkStack for a single subtree: fn receives each node
// with the stack of its ancestors within root (outermost first).
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}
