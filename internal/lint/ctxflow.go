package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlow enforces the cancellation contract's plumbing in the attack
// layers (internal/engine, internal/attack, internal/core): a context
// must flow from the entry point down to every solver and oracle call,
// never be conjured mid-stack. Two failure shapes are flagged. First,
// any use of context.Background() or context.TODO() — a fresh context
// inside the attack layer detaches the work below it from the caller's
// deadline, which is exactly the "Ctrl-C hangs until convergence" bug
// the engine refactor removed; fresh contexts belong in cmd/ binaries
// and tests only. Second, an exported function (or method) that
// accepts a context.Context but never uses it — callers reasonably
// assume passing a deadline has an effect, so an ignored ctx parameter
// is a silent contract violation. See docs/ARCHITECTURE.md for the
// cancellation contract the plumbing serves.
type CtxFlow struct{}

func (CtxFlow) Name() string { return "ctxflow" }

func (CtxFlow) Doc() string {
	return "forbids context.Background/context.TODO in internal/engine, internal/attack, " +
		"internal/core and internal/server, and flags exported functions there that " +
		"accept a context.Context without using it; the caller's context must flow " +
		"down intact"
}

func (CtxFlow) Applies(pkgPath string) bool {
	return inScope(pkgPath,
		"statsat/internal/engine",
		"statsat/internal/attack",
		"statsat/internal/core",
		"statsat/internal/server")
}

func (c CtxFlow) Run(p *Package, _ *Module) []Finding {
	out := c.freshContexts(p)
	out = append(out, c.droppedParams(p)...)
	return out
}

// freshContexts flags every use of context.Background / context.TODO.
func (c CtxFlow) freshContexts(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			f, ok := p.Info.Uses[id].(*types.Func)
			if !ok || f.Pkg() == nil || f.Pkg().Path() != "context" {
				return true
			}
			if f.Name() != "Background" && f.Name() != "TODO" {
				return true
			}
			out = append(out, Finding{
				Pos:   p.Fset.Position(id.Pos()),
				Check: c.Name(),
				Message: "context." + f.Name() + "() in an attack-layer package detaches callees " +
					"from the caller's deadline; accept a ctx parameter instead (fresh contexts " +
					"belong in cmd/ and tests)",
			})
			return true
		})
	}
	return out
}

// droppedParams flags exported functions and methods whose
// context.Context parameter is unnamed, blank, or never used in the
// body.
func (c CtxFlow) droppedParams(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			for _, field := range fd.Type.Params.List {
				if !isContextType(p, field.Type) {
					continue
				}
				if len(field.Names) == 0 {
					out = append(out, c.dropped(p, field.Pos(), fd))
					continue
				}
				for _, name := range field.Names {
					if name.Name == "_" {
						out = append(out, c.dropped(p, name.Pos(), fd))
						continue
					}
					obj := p.Info.Defs[name]
					if obj != nil && !identUsed(p, fd.Body, obj) {
						out = append(out, c.dropped(p, name.Pos(), fd))
					}
				}
			}
		}
	}
	return out
}

func (c CtxFlow) dropped(p *Package, pos token.Pos, fd *ast.FuncDecl) Finding {
	return Finding{
		Pos:   p.Fset.Position(pos),
		Check: c.Name(),
		Message: "exported " + fd.Name.Name + " accepts a context.Context it never uses; " +
			"thread ctx through to callees (or drop the parameter) so the caller's " +
			"deadline keeps meaning something",
	}
}

// identUsed reports whether any identifier in body resolves to obj.
func identUsed(p *Package, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}

// isContextType reports whether the parameter type expression denotes
// context.Context.
func isContextType(p *Package, expr ast.Expr) bool {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
