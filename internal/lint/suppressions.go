package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Suppression is one //lint:ignore directive found in the loaded
// packages, as reported by the `statlint -suppressions` inventory.
type Suppression struct {
	Pos    token.Position
	Check  string // the suppressed check name, or "*"
	Reason string
}

// String renders one inventory row.
func (s Suppression) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", s.Pos.Filename, s.Pos.Line, s.Check, s.Reason)
}

// SuppressionReport inventories every //lint:ignore directive in pkgs.
// Well-formed entries come back sorted by position for review;
// malformed directives and entries naming a check that no longer
// exists (the stale-after-a-rename failure the -suppressions CI gate
// exists to catch) come back as findings.
func SuppressionReport(pkgs []*Package, checks []Check) ([]Suppression, []Finding) {
	valid := map[string]bool{"*": true}
	for _, c := range checks {
		valid[c.Name()] = true
	}
	var entries []Suppression
	var bad []Finding
	for _, p := range pkgs {
		for _, file := range p.Files {
			dirs, malformed := parseIgnores(p.Fset, file)
			bad = append(bad, malformed...)
			for _, d := range dirs {
				entries = append(entries, Suppression{Pos: d.pos, Check: d.check, Reason: d.reason})
				if !valid[d.check] {
					bad = append(bad, Finding{
						Pos:   d.pos,
						Check: "lint",
						Message: fmt.Sprintf("//lint:ignore names unknown check %q "+
							"(stale after a check rename or removal?)", d.check),
					})
				}
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].Pos, entries[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	sort.Slice(bad, func(i, j int) bool {
		a, b := bad[i].Pos, bad[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return entries, bad
}
