package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq forbids == and != between floating-point operands in the
// statistics packages (internal/metrics, internal/errprop). Those
// packages compute the probability estimates and error bounds the
// attack's gating decisions rest on; an exact float comparison there
// is almost always a latent bug that surfaces as a silently wrong
// match/mismatch count rather than a crash. Compare with a tolerance
// (math.Abs(a-b) <= tol) or restructure onto integers; genuinely
// exact sentinel comparisons get a //lint:ignore with the reason.
type FloatEq struct{}

func (FloatEq) Name() string { return "floateq" }

func (FloatEq) Doc() string {
	return "forbids ==/!= on float operands in internal/metrics and internal/errprop; " +
		"compare with an explicit tolerance or an exact integer representation"
}

func (FloatEq) Applies(pkgPath string) bool {
	return inScope(pkgPath, "statsat/internal/metrics", "statsat/internal/errprop")
}

func (c FloatEq) Run(p *Package, _ *Module) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(p, bin.X) && !isFloat(p, bin.Y) {
				return true
			}
			out = append(out, Finding{
				Pos:   p.Fset.Position(bin.OpPos),
				Check: c.Name(),
				Message: "exact float comparison (" + bin.Op.String() + "); use a tolerance " +
					"(math.Abs(a-b) <= tol) or an exact integer representation",
			})
			return true
		})
	}
	return out
}

func isFloat(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
