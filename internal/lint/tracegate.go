package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TraceGate enforces the zero-allocation-when-untraced contract in the
// internal/core hot paths: an Emit call whose event carries an
// allocating payload (a snapshot call, a built slice, a boxed struct)
// must be dominated by a tracer-enabled guard — `if tr.Enabled()`,
// `if tracer != nil`, a negated early return, or a boolean derived
// from one — so that disabling tracing really does remove the
// per-iteration allocations the PR 2 benchmarks count on. Emit itself
// is nil-safe, which is precisely why the compiler cannot catch this:
// the event struct and its payloads are built (and allocated) before
// the no-op call.
type TraceGate struct{}

func (TraceGate) Name() string { return "tracegate" }

func (TraceGate) Doc() string {
	return "flags Emit calls in internal/core that build allocating trace payloads " +
		"without a dominating tracer-enabled guard; diagnostic allocations must " +
		"vanish when tracing is off"
}

func (TraceGate) Applies(pkgPath string) bool {
	return inScope(pkgPath, "statsat/internal/core")
}

func (c TraceGate) Run(p *Package, _ *Module) []Finding {
	var out []Finding
	walkStack(p, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		f := funcObj(p.Info, call)
		if f == nil || f.Name() != "Emit" {
			return
		}
		if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() == nil {
			return // only method-shaped emitters
		}
		alloc := allocatingArg(p, call)
		if alloc == "" {
			return
		}
		if guarded(p, call, stack) {
			return
		}
		out = append(out, Finding{
			Pos:   p.Fset.Position(call.Pos()),
			Check: c.Name(),
			Message: "Emit builds an allocating payload (" + alloc + ") without a dominating " +
				"tracer-enabled guard; wrap in `if tr.Enabled() { ... }` so the allocation " +
				"disappears when tracing is off",
		})
	})
	return out
}

// allocatingArg returns a short description of the first allocating
// expression found inside the call's arguments, or "" if every
// argument is allocation-free (identifiers, selectors, basic literals,
// conversions, len/cap). Function calls are assumed allocating: the
// payload builders (snapshots, key copies) all are, and the check
// cannot prove otherwise for the rest.
func allocatingArg(p *Package, emit *ast.CallExpr) string {
	var found string
	for _, arg := range emit.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if found != "" {
				return false
			}
			switch e := n.(type) {
			case *ast.CallExpr:
				fun := ast.Unparen(e.Fun)
				// Type conversions don't allocate payloads.
				if tv, ok := p.Info.Types[fun]; ok && tv.IsType() {
					return true
				}
				if id, ok := fun.(*ast.Ident); ok {
					if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
						switch b.Name() {
						case "len", "cap", "min", "max":
							return true
						default: // make, append, new, ...
							found = "call to " + b.Name()
							return false
						}
					}
				}
				if f := funcObj(p.Info, e); f != nil {
					found = "call to " + f.Name()
				} else {
					found = "function call"
				}
				return false
			case *ast.CompositeLit:
				// The event envelope itself is a by-value struct; only
				// reference-typed literals (slices, maps) and literals
				// nested under & allocate.
				switch p.Info.Types[e].Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					found = "slice/map literal"
					return false
				}
				return true
			case *ast.UnaryExpr:
				if e.Op == token.AND {
					found = "&-composite payload"
					return false
				}
				return true
			}
			return true
		})
		if found != "" {
			return found
		}
	}
	return ""
}

// guarded reports whether the emit call is dominated by a
// tracer-enabled condition: an enclosing `if <enabled>` (taken
// branch), or an earlier `if <!enabled> { return }` in an enclosing
// block.
func guarded(p *Package, call *ast.CallExpr, stack []ast.Node) bool {
	child := ast.Node(call)
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.IfStmt:
			// Guarded only when we sit in the body of the if, not in
			// its condition/else, and the condition implies enabled.
			if parent.Body == child && enabledCond(p, parent.Cond, stack[:i], false) {
				return true
			}
		case *ast.BlockStmt:
			// An earlier negated guard with an unconditional escape
			// (`if !tr.Enabled() { return }`) dominates the rest of
			// the block.
			for _, stmt := range parent.List {
				if stmt == child {
					break
				}
				ifs, ok := stmt.(*ast.IfStmt)
				if !ok || ifs.Else != nil || len(ifs.Body.List) == 0 {
					continue
				}
				switch ifs.Body.List[len(ifs.Body.List)-1].(type) {
				case *ast.ReturnStmt, *ast.BranchStmt:
				default:
					continue
				}
				if enabledCond(p, ifs.Cond, stack[:i+1], true) {
					return true
				}
			}
		}
		child = stack[i]
	}
	return false
}

// enabledCond reports whether cond implies the tracer is enabled
// (negate=false) or disabled (negate=true). Recognised shapes:
// x.Enabled(), x != nil / x == nil on a tracer-ish value, !<cond>,
// <cond> && y / y && <cond> (resp. || for negated), and a plain bool
// variable whose visible defining assignment wraps one of the above
// (the `traced := tr.Enabled(); if traced { ... }` idiom).
func enabledCond(p *Package, cond ast.Expr, scope []ast.Node, negate bool) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.CallExpr:
		if negate {
			return false
		}
		f := funcObj(p.Info, e)
		return f != nil && f.Name() == "Enabled"
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return enabledCond(p, e.X, scope, !negate)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.NEQ, token.EQL:
			want := token.NEQ
			if negate {
				want = token.EQL
			}
			if e.Op != want {
				return false
			}
			x, y := ast.Unparen(e.X), ast.Unparen(e.Y)
			if isNil(p, y) {
				return tracerish(p, x)
			}
			if isNil(p, x) {
				return tracerish(p, y)
			}
		case token.LAND:
			if !negate {
				return enabledCond(p, e.X, scope, false) || enabledCond(p, e.Y, scope, false)
			}
		case token.LOR:
			if negate {
				return enabledCond(p, e.X, scope, true) || enabledCond(p, e.Y, scope, true)
			}
		}
	case *ast.Ident:
		// A bool variable: scan the enclosing function for its
		// defining `name := <expr>` and recurse into the RHS.
		obj := p.Info.Uses[e]
		if obj == nil {
			return false
		}
		var fn ast.Node
		for _, n := range scope {
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				fn = n
			}
		}
		if fn == nil {
			return false
		}
		found := false
		ast.Inspect(fn, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || found {
				return !found
			}
			for i, lhs := range assign.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || p.Info.Defs[id] != obj && p.Info.Uses[id] != obj {
					continue
				}
				if i < len(assign.Rhs) && enabledCond(p, assign.Rhs[i], scope, negate) {
					found = true
				}
			}
			return !found
		})
		return found
	}
	return false
}

// isNil reports whether e is the predeclared nil.
func isNil(p *Package, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := p.Info.Uses[id].(*types.Nil)
	return isNilObj
}

// tracerish reports whether e's type looks like a tracer handle: the
// trace.Tracer interface, a *trace.Emitter, or any named type whose
// name mentions Tracer/Emitter.
func tracerish(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		name := strings.ToLower(named.Obj().Name())
		return strings.Contains(name, "tracer") || strings.Contains(name, "emitter")
	}
	return false
}
