// Package fixture is deliberately violation-free: the driver test
// asserts that statlint exits 0 on it.
package fixture

import "math/rand"

// Mean averages xs; pure arithmetic, no clocks, no global randomness.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// Jitter draws from an explicitly seeded generator.
func Jitter(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}
