// Package fixture exercises the ctxflow check: inside the attack
// layers a context must flow down from the caller — never be created
// fresh, never be accepted and ignored by an exported function.
package fixture

import "context"

func work(ctx context.Context) error { return ctx.Err() }

// GoodThreaded passes its context down: no finding.
func GoodThreaded(ctx context.Context) error {
	return work(ctx)
}

// GoodErrCheck uses the context directly: no finding.
func GoodErrCheck(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return nil
}

// unexportedDropped is outside the exported-API rule: callers inside
// the package can see the parameter is dead. No finding.
func unexportedDropped(ctx context.Context) int { return 42 }

func BadFresh() error {
	return work(context.Background()) // want `\[ctxflow\] context\.Background\(\)`
}

func BadTODO() error {
	return work(context.TODO()) // want `\[ctxflow\] context\.TODO\(\)`
}

func BadDropped(ctx context.Context) int { // want `\[ctxflow\] exported BadDropped accepts a context\.Context it never uses`
	return 1
}

func BadBlank(_ context.Context) int { // want `\[ctxflow\] exported BadBlank accepts a context\.Context it never uses`
	return 2
}

type Runner struct{}

// Run is an exported method: the rule applies to methods too.
func (Runner) Run(ctx context.Context) int { // want `\[ctxflow\] exported Run accepts a context\.Context it never uses`
	return 3
}

// GoodMethod threads the context: no finding.
func (Runner) GoodMethod(ctx context.Context) error { return work(ctx) }

// GoodSuppressed documents why its context is deliberately unused.
//
//lint:ignore ctxflow fixture: interface compliance requires the parameter
func GoodSuppressed(ctx context.Context) int { return 4 }
