// Package fixture exercises the goleak check: every go statement
// needs a bounded exit — a WaitGroup join, a ctx.Done or
// closed-channel receive, a channel join with the spawner, or provable
// termination — judged transitively through the module summaries.
// Expected findings are marked with `// want`.
package fixture

import (
	"context"
	"sync"
)

// leakForever spins sending into a channel nobody drains here: no
// join, no cancellation, no closed channel.
func leakForever(ch chan int) {
	go func() { // want `\[goleak\] goroutine has no bounded exit`
		for {
			ch <- 1
		}
	}()
}

// joined is the sanctioned WaitGroup shape, Done deferred inside the
// goroutine.
func joined(items []int) int {
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for _, it := range items {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			mu.Lock()
			total += v
			mu.Unlock()
		}(it)
	}
	wg.Wait()
	return total
}

// semJoined releases a worker-slot semaphore and the WaitGroup from a
// deferred literal — the deferred-FuncLit idiom the summaries must see
// through.
func semJoined(sem chan struct{}, work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	sem <- struct{}{}
	go func() {
		defer func() {
			<-sem
			wg.Done()
		}()
		work()
	}()
	wg.Wait()
}

// watcher observes cancellation: the select on ctx.Done bounds the
// loop.
func watcher(ctx context.Context, ticks chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticks:
			}
		}
	}()
}

// pool spawns a worker ranging over a channel the spawner close()s —
// the pull-queue shape, bounded through the module-wide closed-channel
// set.
func pool(jobs chan int) {
	go func() {
		for range jobs {
		}
	}()
	for i := 0; i < 8; i++ {
		jobs <- i
	}
	close(jobs)
}

// queue is drained by a named worker; shutdown close()s it, so drain's
// range is bounded even though spawn and close sit in different
// functions.
var queue = make(chan int, 16)

func startWorker() {
	go drain()
}

func drain() {
	for range queue {
	}
}

func shutdown() {
	close(queue)
}

// chanJoin hands its result back over a channel the spawner receives
// from.
func chanJoin() int {
	out := make(chan int, 1)
	go func() {
		out <- 42
	}()
	return <-out
}

// spin calls a named function that loops forever with no exit evidence
// at all: the select has a default, so it never blocks, never observes
// anything, never returns — the summary propagates the leak through
// the call.
func spin(stop chan struct{}) {
	go ticker(stop) // want `\[goleak\] goroutine has no bounded exit`
}

func ticker(stop chan struct{}) {
	for {
		select {
		case <-stop:
		default:
		}
	}
}

// indirect is transitively bounded: the goroutine body only calls a
// helper, and the helper polls ctx.Err — evidence one call away.
func indirect(ctx context.Context, ticks chan int) {
	go func() {
		loopUntilCancelled(ctx, ticks)
	}()
}

func loopUntilCancelled(ctx context.Context, ticks chan int) {
	for {
		if ctx.Err() != nil {
			return
		}
		select {
		case <-ticks:
		default:
			return
		}
	}
}

// fireAndForget terminates provably: nothing in the body blocks or
// loops unconditionally, so no join is required.
func fireAndForget(dst []int) {
	go func() {
		for i := range dst {
			dst[i] = 0
		}
	}()
}
