// Package fixture exercises the lockscope check: nothing may block
// while a sync.Mutex/RWMutex is held, and every path out of a function
// must release what it acquired (deferred Unlock counts for all paths
// at once). Expected findings are marked with `// want`.
package fixture

import (
	"os"
	"sync"
)

type counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
	ch chan int
}

// good: the plain acquire/mutate/release shape.
func good(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// goodDefer: a deferred Unlock satisfies every exit path.
func goodDefer(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// goodDeferLit: the Unlock may sit inside a deferred literal.
func goodDeferLit(c *counter) {
	c.mu.Lock()
	defer func() {
		c.n = 0
		c.mu.Unlock()
	}()
	c.n++
}

// goodRead: RWMutex read-side discipline.
func goodRead(c *counter) int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.n
}

// goodTry: TryLock in an if condition holds only in the taken branch.
func goodTry(c *counter) bool {
	if c.mu.TryLock() {
		c.n++
		c.mu.Unlock()
		return true
	}
	return false
}

// negTry: the negated polarity — the early return leaves unheld, the
// fallthrough holds and releases.
func negTry(c *counter) {
	if !c.mu.TryLock() {
		return
	}
	c.n++
	c.mu.Unlock()
}

// goodReleaseAroundSend: release before the blocking operation.
func goodReleaseAroundSend(c *counter) {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	c.ch <- v
}

func sendWhileLocked(c *counter) {
	c.mu.Lock()
	c.ch <- c.n // want `\[lockscope\] channel send while holding c\.mu`
	c.mu.Unlock()
}

func recvWhileLocked(c *counter) int {
	c.mu.Lock()
	v := <-c.ch // want `\[lockscope\] channel receive while holding c\.mu`
	c.mu.Unlock()
	return v
}

func leakyReturn(c *counter, bad bool) {
	c.mu.Lock()
	if bad {
		return // want `\[lockscope\] return while holding c\.mu with no deferred Unlock`
	}
	c.mu.Unlock()
}

func neverUnlocks(c *counter) {
	c.mu.Lock() // want `\[lockscope\] function ends holding c\.mu`
	c.n++
}

func conditional(c *counter, p bool) {
	if p { // want `\[lockscope\] c\.mu is conditionally held after this if`
		c.mu.Lock()
	}
	c.n++
}

func switchAsym(c *counter, k int) {
	switch k { // want `\[lockscope\] c\.mu is conditionally held after this switch/select`
	case 1:
		c.mu.Lock()
	default:
	}
}

func selectUnder(c *counter) {
	c.mu.Lock()
	select { // want `\[lockscope\] select without default while holding c\.mu`
	case <-c.ch:
	}
	c.mu.Unlock()
}

func rangeUnder(c *counter) {
	c.mu.Lock()
	for range c.ch { // want `\[lockscope\] range over a channel while holding c\.mu`
	}
	c.mu.Unlock()
}

func loopAsym(c *counter) {
	for i := 0; i < 3; i++ { // want `\[lockscope\] lock state of c\.mu changes across a loop iteration`
		c.mu.Lock()
	}
}

func waitUnder(c *counter, wg *sync.WaitGroup) {
	c.mu.Lock()
	wg.Wait() // want `\[lockscope\] sync\.WaitGroup\.Wait while holding c\.mu`
	c.mu.Unlock()
}

// SolveStep stands in for solver work: anything Solve-prefixed is
// presumed long-running.
func SolveStep(c *counter) int {
	return c.n
}

func solveUnder(c *counter) int {
	c.mu.Lock()
	v := SolveStep(c) // want `\[lockscope\] call to SolveStep \(solver work\) while holding c\.mu`
	c.mu.Unlock()
	return v
}

// waitForItem blocks on a channel receive; the summary carries that to
// its callers.
func waitForItem(c *counter) int {
	return <-c.ch
}

func underCalleeBlock(c *counter) {
	c.mu.Lock()
	waitForItem(c) // want `\[lockscope\] call to waitForItem, which may block \(channel receive\) while holding c\.mu`
	c.mu.Unlock()
}

// tracer is a minimal method-shaped emitter for the
// Emit-with-allocating-payload rule.
type tracer struct{ enabled bool }

func (t *tracer) Enabled() bool { return t.enabled }

func (t *tracer) Emit(payload []int) {}

func snapshot(c *counter) []int { return []int{c.n} }

// emitUnderLock: the payload is guarded (so tracegate is satisfied),
// but fan-out of a built payload still must not happen under the lock.
func emitUnderLock(c *counter, tr *tracer) {
	c.mu.Lock()
	if tr.Enabled() {
		tr.Emit(snapshot(c)) // want `\[lockscope\] Emit with an allocating payload \(call to snapshot\) while holding c\.mu`
	}
	c.mu.Unlock()
}

// emitAfterUnlock: the same emit is fine once the lock is released.
func emitAfterUnlock(c *counter, tr *tracer) {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	if tr.Enabled() {
		tr.Emit([]int{v})
	}
}

// syncUnderLock: an fsync stalls for as long as the device pleases —
// the WAL funnels all file I/O through a lockless writer goroutine so
// this shape never appears in real code.
func syncUnderLock(c *counter, f *os.File) {
	c.mu.Lock()
	f.Sync() // want `\[lockscope\] os\.File\.Sync \(blocking file I/O\) while holding c\.mu`
	c.mu.Unlock()
}

// appendFrame does the write one call down; the blocking
// classification must propagate through the module summary.
func appendFrame(f *os.File, b []byte) {
	f.Write(b)
}

func writeUnderLockViaHelper(c *counter, f *os.File) {
	c.mu.Lock()
	appendFrame(f, nil) // want `\[lockscope\] call to appendFrame, which may block \(os\.File\.Write \(blocking file I/O\)\) while holding c\.mu`
	c.mu.Unlock()
}

// syncAfterUnlock: release first, then hit the disk.
func syncAfterUnlock(c *counter, f *os.File) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	f.Sync()
}

// closeUnderLock: Close is resource release, not I/O — deliberately
// unflagged so the universal `defer f.Close()` under a cleanup lock
// stays legal.
func closeUnderLock(c *counter, f *os.File) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f.Close()
}
