// Package fixture exercises the floateq check: exact ==/!= between
// float operands is forbidden in the statistics packages.
package fixture

import "math"

func badEq(a, b float64) bool {
	return a == b // want `\[floateq\] exact float comparison \(==\)`
}

func badNeq(a, b float32) bool {
	return a != b // want `\[floateq\] exact float comparison \(!=\)`
}

func badLiteral(p float64) bool {
	return p == 0.5 // want `\[floateq\] exact float comparison \(==\)`
}

func goodTolerance(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9
}

func goodOrdering(a, b float64) bool {
	return a <= b
}

func goodInts(a, b int) bool {
	return a == b
}
