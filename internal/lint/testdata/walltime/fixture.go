// Package fixture exercises the walltime check: wall-clock reads are
// forbidden outside the sanctioned timing packages.
package fixture

import "time"

func badNow() time.Time {
	return time.Now() // want `\[walltime\] wall-clock read \(time\.Now\)`
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `\[walltime\] wall-clock read \(time\.Since\)`
}

func badUntil(t0 time.Time) time.Duration {
	return time.Until(t0) // want `\[walltime\] wall-clock read \(time\.Until\)`
}

func goodArithmetic(t0, t1 time.Time) time.Duration {
	return t1.Sub(t0)
}

func goodConstants() time.Duration {
	return 3 * time.Millisecond
}
