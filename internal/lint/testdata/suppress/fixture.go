// Package fixture exercises the //lint:ignore directive machinery:
// same-line and line-above suppression, the malformed-directive
// finding, and the unused-directive finding. TestSuppression in
// internal/lint asserts the exact expected finding set for this file.
package fixture

import "math/rand"

func suppressedSameLine(n int) int {
	return rand.Intn(n) //lint:ignore globalrand fixture: demonstrates a sanctioned same-line suppression
}

func suppressedLineAbove(n int) int {
	//lint:ignore globalrand fixture: demonstrates a line-above suppression
	return rand.Intn(n)
}

func malformedDirective(n int) int {
	//lint:ignore globalrand
	return rand.Intn(n)
}

func unusedDirective(a, b int) bool {
	//lint:ignore walltime fixture: nothing on the next line triggers walltime
	return a == b
}
