// Package fixture exercises the globalrand check: the global
// math/rand source is forbidden, and rand.New must be seeded directly
// at the call site. Expected findings are marked with `// want`.
package fixture

import "math/rand"

func badGlobalCall(n int) int {
	return rand.Intn(n) // want `\[globalrand\] use of global math/rand\.Intn`
}

func badGlobalValue() func() float64 {
	return rand.Float64 // want `\[globalrand\] use of global math/rand\.Float64`
}

func badShuffle(xs []int, n int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `\[globalrand\] use of global math/rand\.Shuffle`
}

func badIndirectNew(seed int64) *rand.Rand {
	src := rand.NewSource(seed)
	return rand.New(src) // want `\[globalrand\] rand\.New not seeded at the call site`
}

func goodSeededNew(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func goodExplicitRand(rng *rand.Rand, n int) int {
	return rng.Intn(n)
}

type goodHolder struct {
	rng *rand.Rand
}

func (h *goodHolder) draw() float64 {
	return h.rng.Float64()
}
