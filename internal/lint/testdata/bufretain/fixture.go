// Package fixture exercises the bufretain check. The local querier
// mimics the BatchQuerier contract: the *Into methods return aliases
// of an internal scratch buffer that the next call overwrites.
package fixture

type querier struct {
	scratch []float64
	out     []uint64
}

func (q *querier) SignalProbsInto(dst []float64) []float64 {
	if cap(q.scratch) == 0 {
		q.scratch = make([]float64, 8)
	}
	return q.scratch
}

func (q *querier) EvalNoisyBatchInto(out []uint64) []uint64 {
	return q.out
}

func (q *querier) EvalNoisyBlockInto(out []uint64, words int) []uint64 {
	return q.out
}

func (q *querier) QueryBlock(x []bool, words int) []uint64 {
	return q.out
}

func UncertaintiesInto(probs, dst []float64) []float64 {
	return probs
}

type holder struct {
	buf        []float64
	history    [][]float64
	batchAlias []uint64
}

var globalBuf []float64

func badFieldStore(h *holder, q *querier) {
	h.buf = q.SignalProbsInto(nil) // want `\[bufretain\] result of SignalProbsInto .* struct field buf`
}

func badGlobalStore(q *querier) {
	globalBuf = UncertaintiesInto(q.SignalProbsInto(nil), nil) // want `\[bufretain\] result of UncertaintiesInto .* package-level var globalBuf`
}

func badAppendElement(h *holder, q *querier) {
	h.history = append(h.history, q.SignalProbsInto(nil)) // want `\[bufretain\] result of SignalProbsInto .* struct field history`
}

func badAppendFirstArg(h *holder, q *querier) {
	h.batchAlias = append(q.EvalNoisyBatchInto(nil), 0) // want `\[bufretain\] result of EvalNoisyBatchInto .* struct field batchAlias`
}

func badCompositeLit(q *querier) holder {
	return holder{buf: q.SignalProbsInto(nil)} // want `\[bufretain\] result of SignalProbsInto .* composite literal`
}

func badBlockFieldStore(h *holder, q *querier) {
	h.batchAlias = q.EvalNoisyBlockInto(nil, 4) // want `\[bufretain\] result of EvalNoisyBlockInto .* struct field batchAlias`
}

func badQueryBlockStore(h *holder, q *querier) {
	h.batchAlias = q.QueryBlock(nil, 4) // want `\[bufretain\] result of QueryBlock .* struct field batchAlias`
}

func goodBlockCopy(h *holder, q *querier) {
	h.batchAlias = append(h.batchAlias[:0], q.QueryBlock(nil, 4)...)
}

func goodLocalReuse(q *querier) float64 {
	var buf []float64
	buf = q.SignalProbsInto(buf)
	sum := 0.0
	for _, v := range buf {
		sum += v
	}
	return sum
}

func goodExplicitCopy(h *holder, q *querier) {
	h.buf = append(h.buf[:0], q.SignalProbsInto(nil)...)
}
