// Package fixture exercises the seedflow check: every seed position —
// an argument bound to a seed-named parameter, or an assignment,
// declaration or composite-literal field with a seed-named target —
// must be a fixed constant or derive visibly from a seed-named input
// or a deriveSeed-style call. Expected findings are marked with
// `// want`.
package fixture

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
)

// Options carries the run's base seed, the root every derivation
// traces back to.
type Options struct {
	Seed int64
}

type runConfig struct {
	Seed int64
	N    int
}

// deriveSeed mixes run coordinates into a per-stream seed — the
// sanctioned derivation shape; its name roots any expression it
// appears in.
func deriveSeed(base int64, inst, iter int) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(base))
	h.Write(buf[:])
	return int64(h.Sum64()) ^ int64(inst)*7919 ^ int64(iter)
}

// scramble is an opaque transformation: the result is deterministic
// but its provenance is invisible at the call site.
func scramble(x int64) int64 {
	return x*6364136223846793005 + 1442695040888963407
}

// goodDerived: a deriveSeed-style call is a root.
func goodDerived(opts Options, inst int) *rand.Rand {
	return rand.New(rand.NewSource(deriveSeed(opts.Seed, inst, 0)))
}

// goodArith: arithmetic over a seed-named input is transparent; the
// loop index is a neutral coordinate.
func goodArith(opts Options, inst int) *rand.Rand {
	return rand.New(rand.NewSource(opts.Seed + int64(inst)*7919))
}

// goodFixed: a whole-expression constant is auditable in place.
func goodFixed() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

// goodNamedBase: a seed-named constant roots the derivation even
// though the expression is built from a constant and an index.
func goodNamedBase(inst int) *rand.Rand {
	const seedBase int64 = 1000
	return rand.New(rand.NewSource(seedBase + int64(inst)))
}

// goodIndexed: indexing a seed-named table keeps the provenance.
func goodIndexed(seeds []int64, inst int) *rand.Rand {
	return rand.New(rand.NewSource(seeds[inst]))
}

// goodSpec: a declaration with a seed-named target rooted in a
// seed-named input.
func goodSpec(opts Options, inst int) int64 {
	var streamSeed = opts.Seed ^ int64(inst)
	return streamSeed
}

// goodField: composite-literal seed fields take derived values.
func configs(opts Options, n int) []runConfig {
	out := make([]runConfig, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, runConfig{Seed: deriveSeed(opts.Seed, i, 0), N: i})
	}
	return out
}

// goodAssign: reseeding from the previous seed plus coordinates.
func reseedGood(cfg *runConfig, workerID int) {
	cfg.Seed = deriveSeed(cfg.Seed, workerID, 1)
}

// badBare: a bare loop/worker index has no visible provenance.
func badBare(inst int) *rand.Rand {
	return rand.New(rand.NewSource(int64(inst) * 2654435761)) // want `\[seedflow\] seed value has no visible provenance`
}

// badOpaque: the provenance is hidden behind a non-seed-named call.
func badOpaque(opts Options) *rand.Rand {
	return rand.New(rand.NewSource(scramble(opts.Seed))) // want `\[seedflow\] seed derived through call to scramble`
}

// badAssign: assigning a raw worker ID to a seed-named field.
func reseedBad(cfg *runConfig, workerID int) {
	cfg.Seed = int64(workerID) // want `\[seedflow\] seed value has no visible provenance`
}

// badField: a composite-literal seed built from an arbitrary counter.
func badConfig(ticks int64) runConfig {
	return runConfig{Seed: ticks * 3} // want `\[seedflow\] seed value has no visible provenance`
}
