// Package fixture exercises the tracegate check. The local
// traceEmitter mimics internal/trace: Emit is nil-safe, which is
// exactly why the compiler cannot see that the event payload is built
// (and allocated) even when tracing is off.
package fixture

type event struct {
	kind    string
	count   int
	payload *payload
	items   []int
}

type payload struct {
	bits []int
}

type traceEmitter struct {
	on bool
}

func (e *traceEmitter) Enabled() bool {
	return e != nil && e.on
}

func (e *traceEmitter) Emit(ev event) {}

func snapshot() *payload {
	return &payload{bits: make([]int, 4)}
}

func badBoxedPayload(e *traceEmitter) {
	e.Emit(event{kind: "x", payload: &payload{}}) // want `\[tracegate\] Emit builds an allocating payload`
}

func badSliceLiteral(e *traceEmitter, n int) {
	e.Emit(event{kind: "y", items: []int{n}}) // want `\[tracegate\] Emit builds an allocating payload`
}

func badSnapshotCall(e *traceEmitter) {
	e.Emit(event{kind: "z", payload: snapshot()}) // want `\[tracegate\] Emit builds an allocating payload`
}

func badMake(e *traceEmitter, n int) {
	e.Emit(event{kind: "m", items: make([]int, n)}) // want `\[tracegate\] Emit builds an allocating payload`
}

func goodGuarded(e *traceEmitter) {
	if e.Enabled() {
		e.Emit(event{kind: "x", payload: snapshot()})
	}
}

func goodEarlyReturn(e *traceEmitter, n int) {
	if !e.Enabled() {
		return
	}
	e.Emit(event{kind: "x", items: make([]int, n)})
}

func goodDerivedBool(e *traceEmitter) {
	traced := e.Enabled()
	if traced {
		e.Emit(event{kind: "x", payload: snapshot()})
	}
}

func goodNilGuard(e *traceEmitter) {
	if e != nil {
		e.Emit(event{kind: "x", payload: snapshot()})
	}
}

func goodConjunction(e *traceEmitter, hot bool) {
	if hot && e.Enabled() {
		e.Emit(event{kind: "x", payload: snapshot()})
	}
}

func goodCheapEnvelope(e *traceEmitter, n int) {
	e.Emit(event{kind: "cheap", count: n})
}

func goodConversion(e *traceEmitter, n int64) {
	e.Emit(event{kind: "conv", count: int(n)})
}
