package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// Module is the cross-package view the interprocedural checks consume:
// every named function/method declared in the analyzed packages, the
// call edges between them, and per-function behavioral summaries
// (Summary) computed bottom-up over strongly connected components. It
// is deliberately module-local — edges into the standard library or
// through interface/func-typed values are not resolved; the summary
// rules treat such calls conservatively (see summary.go).
type Module struct {
	Pkgs []*Package
	// Funcs indexes every function and method with a body declared in
	// the analyzed packages.
	Funcs map[*types.Func]*FuncInfo
	// ClosedChans records every channel-valued object (local variable,
	// struct field, or package-level variable) that some analyzed
	// function close()s. A goroutine ranging or receiving on such a
	// channel has a bounded exit once the closer runs.
	ClosedChans map[types.Object]bool
}

// FuncInfo is one call-graph node: a declared function or method, its
// resolved module-internal callees, and its computed Summary.
type FuncInfo struct {
	Obj     *types.Func
	Decl    *ast.FuncDecl
	Pkg     *Package
	Callees []*types.Func
	Sum     *Summary
}

// NewModule builds the call graph over pkgs and computes every
// function's Summary bottom-up: Tarjan's algorithm emits SCCs in
// callee-first order, and within each SCC the (monotone) summaries are
// iterated to a fixpoint, so mutual recursion converges.
func NewModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:        pkgs,
		Funcs:       map[*types.Func]*FuncInfo{},
		ClosedChans: map[types.Object]bool{},
	}
	// Index declarations in deterministic (source) order.
	var order []*FuncInfo
	for _, p := range pkgs {
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				f, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Obj: f, Decl: fd, Pkg: p, Sum: &Summary{}}
				m.Funcs[f] = fi
				order = append(order, fi)
			}
		}
	}
	// Edges and the module-wide closed-channel set. close() evidence
	// counts wherever it appears — including goroutine bodies — so this
	// walk does not skip FuncLits the way the summarizer does.
	for _, fi := range order {
		p := fi.Pkg
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
					if b.Name() == "close" && len(call.Args) == 1 {
						if obj := exprObj(p, call.Args[0]); obj != nil {
							m.ClosedChans[obj] = true
						}
					}
					return true
				}
			}
			if g := funcObj(p.Info, call); g != nil {
				if _, ok := m.Funcs[g]; ok {
					fi.Callees = append(fi.Callees, g)
				}
			}
			return true
		})
	}
	// Bottom-up summary computation over SCCs.
	for _, scc := range m.sccs(order) {
		for changed := true; changed; {
			changed = false
			for _, fi := range scc {
				ns := m.summarize(fi.Pkg, fi.Decl.Body)
				m.retentionPass(fi.Pkg, fi.Decl, ns)
				if !ns.equal(fi.Sum) {
					fi.Sum = ns
					changed = true
				}
			}
		}
	}
	return m
}

// SummaryOf returns the summary for a resolved function, or nil for
// functions outside the analyzed set (stdlib, interface methods,
// bodiless declarations).
func (m *Module) SummaryOf(f *types.Func) *Summary {
	if fi := m.Funcs[f]; fi != nil {
		return fi.Sum
	}
	return nil
}

// sccs returns the strongly connected components of the call graph in
// reverse topological (callee-first) order — the order Tarjan's
// algorithm naturally pops them.
func (m *Module) sccs(order []*FuncInfo) [][]*FuncInfo {
	type nodeState struct {
		index, lowlink int
		onStack        bool
	}
	index := 1
	states := map[*FuncInfo]*nodeState{}
	var stack []*FuncInfo
	var out [][]*FuncInfo

	var strongconnect func(fi *FuncInfo)
	strongconnect = func(fi *FuncInfo) {
		st := &nodeState{index: index, lowlink: index, onStack: true}
		states[fi] = st
		index++
		stack = append(stack, fi)
		for _, g := range fi.Callees {
			gi := m.Funcs[g]
			gs := states[gi]
			if gs == nil {
				strongconnect(gi)
				if gl := states[gi].lowlink; gl < st.lowlink {
					st.lowlink = gl
				}
			} else if gs.onStack && gs.index < st.lowlink {
				st.lowlink = gs.index
			}
		}
		if st.lowlink == st.index {
			var scc []*FuncInfo
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				states[w].onStack = false
				scc = append(scc, w)
				if w == fi {
					break
				}
			}
			out = append(out, scc)
		}
	}
	for _, fi := range order {
		if states[fi] == nil {
			strongconnect(fi)
		}
	}
	return out
}

// exprObj resolves the object a channel-or-variable expression denotes:
// a plain identifier, or a selector naming a struct field or qualified
// package-level variable. Anything more dynamic (map index, function
// result) resolves to nil.
func exprObj(p *Package, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := p.Info.Uses[x]; o != nil {
			return o
		}
		return p.Info.Defs[x]
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[x]; ok {
			return sel.Obj()
		}
		return p.Info.Uses[x.Sel]
	}
	return nil
}

// sortedObjs renders a deterministic order over an object set (used
// only for summary equality, never for output).
func sortedObjs(set map[types.Object]bool) []types.Object {
	objs := make([]types.Object, 0, len(set))
	for o := range set {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	return objs
}
