package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// DocLinks is the documentation cross-link check behind `statlint
// -docs` (and the `make doclinks` verify step): it fails when a
// markdown link or a prose `docs/<name>.md` reference points at a file that
// does not exist, or at a heading anchor that no longer resolves.
//
// Scope, matching how the repo's documentation is wired together:
//
//   - Referencing files: README.md, DESIGN.md, ROADMAP.md and every
//     docs/*.md. (PAPER.md, PAPERS.md and CHANGES.md are historical
//     records and may legitimately mention files that no longer
//     exist.)
//   - Go sources: any `docs/<name>.md` mention in a .go file (doc comments
//     routinely anchor a package to its design document and must not
//     rot).
//   - Markdown links [text](target): relative targets must exist;
//     a #fragment (on another file or standalone) must match a heading
//     in the target, slugified the way GitHub renders it. http(s) and
//     mailto targets are not checked (no network in verify).
//
// Fenced code blocks are skipped: example links in snippets are
// illustrations, not contracts.

// mdLink matches [text](target); the first capture is the target.
// Images (![alt](target)) share the suffix and are matched too.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// proseDoc matches bare docs/<name>.md mentions outside link syntax.
var proseDoc = regexp.MustCompile(`docs/[A-Za-z0-9_.-]+\.md`)

// DocLinks checks documentation cross-links under root (the repo
// top-level) and returns one finding per dead reference.
func DocLinks(root string) ([]Finding, error) {
	var sources []string // markdown files whose outgoing links are checked
	for _, name := range []string{"README.md", "DESIGN.md", "ROADMAP.md"} {
		if _, err := os.Stat(filepath.Join(root, name)); err == nil {
			sources = append(sources, name)
		}
	}
	docs, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		return nil, err
	}
	for _, d := range docs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		sources = append(sources, rel)
	}
	sort.Strings(sources)

	var out []Finding
	anchors := map[string]map[string]bool{} // md file (root-relative) -> heading slugs
	slugsOf := func(rel string) (map[string]bool, error) {
		if a, ok := anchors[rel]; ok {
			return a, nil
		}
		b, err := os.ReadFile(filepath.Join(root, rel))
		if err != nil {
			return nil, err
		}
		a := headingSlugs(string(b))
		anchors[rel] = a
		return a, nil
	}

	for _, src := range sources {
		b, err := os.ReadFile(filepath.Join(root, src))
		if err != nil {
			return nil, err
		}
		out = append(out, checkMarkdown(root, src, string(b), slugsOf)...)
	}

	goFindings, err := checkGoSources(root)
	if err != nil {
		return nil, err
	}
	out = append(out, goFindings...)

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out, nil
}

// checkMarkdown validates all outgoing references of one markdown file.
// src is root-relative; slugsOf lazily loads a target's heading set.
func checkMarkdown(root, src, content string, slugsOf func(string) (map[string]bool, error)) []Finding {
	var out []Finding
	report := func(line int, format string, args ...interface{}) {
		out = append(out, Finding{
			Pos:     token.Position{Filename: src, Line: line, Column: 1},
			Check:   "doclinks",
			Message: fmt.Sprintf(format, args...),
		})
	}

	inFence := false
	for i, line := range strings.Split(content, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		lineNo := i + 1

		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, frag, _ := strings.Cut(target, "#")
			var rel string
			if path == "" {
				rel = src // intra-file anchor
			} else {
				// Resolve relative to the referencing file, normalised
				// back to a root-relative path.
				rel = filepath.Join(filepath.Dir(src), path)
				if _, err := os.Stat(filepath.Join(root, rel)); err != nil {
					report(lineNo, "dead link %q: %s does not exist", target, rel)
					continue
				}
			}
			if frag == "" {
				continue
			}
			if !strings.HasSuffix(rel, ".md") {
				continue // anchors only checked on markdown targets
			}
			slugs, err := slugsOf(rel)
			if err != nil {
				report(lineNo, "dead link %q: %v", target, err)
				continue
			}
			if !slugs[frag] {
				report(lineNo, "dead anchor %q: no heading #%s in %s", target, frag, rel)
			}
		}

		// Prose references, with link syntax stripped first so a
		// target (local or external URL) is not double-counted.
		for _, ref := range proseDoc.FindAllString(mdLink.ReplaceAllString(line, ""), -1) {
			if _, err := os.Stat(filepath.Join(root, ref)); err != nil {
				report(lineNo, "dead reference: %s does not exist", ref)
			}
		}
	}
	return out
}

// checkGoSources verifies every docs/<name>.md mention in the repo's Go
// files (doc comments and strings alike — a mention is a promise the
// file exists).
func checkGoSources(root string) ([]Finding, error) {
	var out []Finding
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip hidden trees and the lint fixtures (which may
			// reference hypothetical docs on purpose).
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		// Non-test sources only: test files hold fixture strings that
		// reference hypothetical docs on purpose.
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(b), "\n") {
			for _, ref := range proseDoc.FindAllString(line, -1) {
				if _, err := os.Stat(filepath.Join(root, ref)); err != nil {
					out = append(out, Finding{
						Pos:     token.Position{Filename: rel, Line: i + 1, Column: 1},
						Check:   "doclinks",
						Message: fmt.Sprintf("dead reference: %s does not exist", ref),
					})
				}
			}
		}
		return nil
	})
	return out, err
}

// headingSlugs collects the GitHub-style anchor slugs of every ATX
// heading in a markdown document (lowercase; punctuation dropped;
// spaces to hyphens; duplicates suffixed -1, -2, ...).
func headingSlugs(content string) map[string]bool {
	slugs := map[string]bool{}
	counts := map[string]int{}
	inFence := false
	for _, line := range strings.Split(content, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(trimmed, "#") {
			continue
		}
		text := strings.TrimLeft(trimmed, "#")
		if text == "" || !strings.HasPrefix(text, " ") {
			continue // not an ATX heading ("#foo" is plain text)
		}
		slug := slugify(strings.TrimSpace(text))
		if n := counts[slug]; n > 0 {
			slugs[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			slugs[slug] = true
		}
		counts[slug]++
	}
	return slugs
}

// slugify reduces heading text to its GitHub anchor id.
func slugify(text string) string {
	// Drop inline markup the way GitHub's renderer does before
	// anchoring: backticks, emphasis markers and link syntax.
	text = strings.ReplaceAll(text, "`", "")
	text = strings.ReplaceAll(text, "*", "")
	text = mdLink.ReplaceAllStringFunc(text, func(l string) string {
		return l[1:strings.Index(l, "]")]
	})
	var b strings.Builder
	for _, r := range strings.ToLower(text) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteRune('-')
		}
	}
	return b.String()
}
