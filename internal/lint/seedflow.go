package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SeedFlow closes the provenance gap globalrand leaves open:
// globalrand pins the call-site *shape* (rand.New(rand.NewSource(x)))
// but says nothing about where x came from. SeedFlow vets every seed
// position — an argument bound to a seed-named parameter (which covers
// rand.NewSource itself, deriveSeed, newSeededRand, MeasureBER, …),
// and assignments or composite-literal fields whose target is
// seed-named — and requires the value to trace back to run
// coordinates:
//
//   - a whole-expression constant is sanctioned (a fixed literal seed
//     is auditable exactly where it stands);
//   - otherwise the expression is decomposed through arithmetic,
//     bitwise ops, unary ^/-, parens and integer conversions; at least
//     one leaf must be a seed root — a seed-named identifier/selector
//     or a call to a seed-named derivation function (deriveSeed-style)
//     — and no leaf may be a call to anything else, which would hide
//     the provenance behind an opaque computation.
//
// Constants and plain identifiers inside a derivation are neutral:
// they are the coordinates (`opts.Seed + int64(i)*7919` is fine, the
// root is opts.Seed). The invariant this guards is the
// seed-derivation scheme in docs/PERFORMANCE.md: every *rand.Rand in
// the tree must be reproducible from the run's base seed and
// coordinates alone.
type SeedFlow struct{}

func (SeedFlow) Name() string { return "seedflow" }

func (SeedFlow) Doc() string {
	return "every seed value (argument to a seed-named parameter, assignment to a " +
		"seed-named target) must be a fixed constant or derive visibly from a " +
		"seed-named input or deriveSeed-style call; opaque computations hide provenance"
}

func (SeedFlow) Applies(pkgPath string) bool {
	return pkgPath == "statsat" ||
		inScope(pkgPath, "statsat/internal", "statsat/examples")
}

func (c SeedFlow) Run(p *Package, m *Module) []Finding {
	var out []Finding
	vet := func(e ast.Expr) {
		// Seeds are integers; a seed-named map/struct/func value (the
		// linter's own seededNew table, say) is not a seed position.
		if tv, ok := p.Info.Types[e]; !ok || !isIntegerType(tv.Type) {
			return
		}
		if f, bad := vetSeedExpr(p, e); bad {
			f.Check = c.Name()
			out = append(out, f)
		}
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				sig := callSignature(p, x)
				if sig == nil || x.Ellipsis.IsValid() {
					return true
				}
				for i := 0; i < sig.Params().Len() && i < len(x.Args); i++ {
					if sig.Variadic() && i == sig.Params().Len()-1 {
						break
					}
					if seedNamed(sig.Params().At(i).Name()) {
						vet(x.Args[i])
					}
				}
			case *ast.AssignStmt:
				if len(x.Lhs) != len(x.Rhs) {
					return true
				}
				for i, lhs := range x.Lhs {
					if seedNamed(exprBaseName(lhs)) {
						vet(x.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(x.Names) != len(x.Values) {
					return true
				}
				for i, name := range x.Names {
					if seedNamed(name.Name) {
						vet(x.Values[i])
					}
				}
			case *ast.KeyValueExpr:
				if key, ok := x.Key.(*ast.Ident); ok && seedNamed(key.Name) {
					vet(x.Value)
				}
			}
			return true
		})
	}
	return out
}

// isIntegerType reports whether t is (or aliases) a basic integer.
func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// seedNamed reports whether a parameter/variable/field name marks a
// seed position.
func seedNamed(name string) bool {
	return strings.Contains(strings.ToLower(name), "seed")
}

// exprBaseName extracts the name an assignment target answers to: the
// identifier, or the final selector component.
func exprBaseName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}

// callSignature resolves the signature of the called function,
// skipping type conversions.
func callSignature(p *Package, call *ast.CallExpr) *types.Signature {
	if tv, ok := p.Info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		return nil
	}
	f := funcObj(p.Info, call)
	if f == nil {
		return nil
	}
	sig, _ := f.Type().(*types.Signature)
	return sig
}

// vetSeedExpr checks one seed expression and returns the finding (with
// Pos and Message set, Check left blank) plus whether it is bad.
func vetSeedExpr(p *Package, e ast.Expr) (Finding, bool) {
	// A whole-expression constant is sanctioned.
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
		return Finding{}, false
	}
	root, opaque := decomposeSeed(p, ast.Unparen(e))
	pos := p.Fset.Position(e.Pos())
	if opaque != "" {
		return Finding{
			Pos: pos,
			Message: "seed derived through " + opaque + ", which hides its provenance; " +
				"derive seeds from run coordinates via a seed-named input or a " +
				"deriveSeed-style computation",
		}, true
	}
	if !root {
		return Finding{
			Pos: pos,
			Message: "seed value has no visible provenance from run coordinates; " +
				"derive it from a seed-named input or a deriveSeed-style call " +
				"(or use a fixed literal, which is auditable in place)",
		}, true
	}
	return Finding{}, false
}

// decomposeSeed walks a seed expression. root reports that a
// seed-named leaf (identifier, selector, or seed-named call) was
// found; opaque names the first non-seed call encountered, which
// poisons the expression.
func decomposeSeed(p *Package, e ast.Expr) (root bool, opaque string) {
	// A seed-named name roots the derivation even when it is a named
	// constant (`seedBase + int64(r)`); anonymous constant
	// sub-expressions are neutral coordinates.
	switch x := e.(type) {
	case *ast.Ident:
		return seedNamed(x.Name), ""
	case *ast.SelectorExpr:
		return seedNamed(x.Sel.Name), ""
	}
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
		return false, ""
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return decomposeSeed(p, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.XOR || x.Op == token.SUB || x.Op == token.ADD {
			return decomposeSeed(p, x.X)
		}
		return false, ""
	case *ast.BinaryExpr:
		switch x.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
			token.XOR, token.AND, token.OR, token.AND_NOT, token.SHL, token.SHR:
			r1, o1 := decomposeSeed(p, x.X)
			if o1 != "" {
				return false, o1
			}
			r2, o2 := decomposeSeed(p, x.Y)
			if o2 != "" {
				return false, o2
			}
			return r1 || r2, ""
		}
		return false, ""
	case *ast.IndexExpr:
		// seeds[i]: the base carries the provenance.
		return decomposeSeed(p, ast.Unparen(x.X))
	case *ast.CallExpr:
		// Integer conversions are transparent.
		if tv, ok := p.Info.Types[ast.Unparen(x.Fun)]; ok && tv.IsType() {
			if len(x.Args) == 1 {
				return decomposeSeed(p, ast.Unparen(x.Args[0]))
			}
			return false, ""
		}
		// A call to a seed-named function (deriveSeed, newSeededRand,
		// DeriveLockSeed, …) is itself the root; its arguments are the
		// derivation's coordinates and are not descended into.
		if f := funcObj(p.Info, x); f != nil {
			if seedNamed(f.Name()) {
				return true, ""
			}
			return false, "call to " + f.Name()
		}
		return false, "a function call"
	}
	return false, ""
}
