package lint

import (
	"go/ast"
	"go/token"
)

// GoLeak requires every `go` statement in the concurrent subsystems to
// have a bounded exit, judged transitively through the module
// summaries. A goroutine is bounded when any of the following holds:
//
//   - it calls sync.WaitGroup.Done (possibly deferred, possibly inside
//     a deferred FuncLit releasing a semaphore first), so a spawner's
//     wg.Wait joins it;
//   - it observes cancellation — selects or receives on ctx.Done(), or
//     polls ctx.Err() (the amortized-poll idiom the hot paths use);
//   - it receives from or ranges over a channel some analyzed function
//     close()s (the pull-queue worker shape);
//   - it sends on or closes a channel the spawning function itself
//     receives from (the channel-join shape: `go func() { out <- f() }();
//     <-out`);
//   - it provably terminates: nothing in it or its module callees
//     blocks or loops unconditionally.
//
// Anything else — including goroutines whose body the analysis cannot
// resolve — is a leak candidate: a goroutine with no visible exit path
// outlives its job, holds its captures alive, and (worst) keeps
// touching shared oracle state after the attack run that owned it
// finished, which corrupts the next run's observations silently. See
// docs/LINTING.md.
type GoLeak struct{}

func (GoLeak) Name() string { return "goleak" }

func (GoLeak) Doc() string {
	return "every go statement in the concurrent subsystems must have a bounded exit " +
		"(WaitGroup join, ctx.Done/closed-channel receive, channel join with the " +
		"spawner, or provable termination), transitively through call summaries"
}

func (GoLeak) Applies(pkgPath string) bool {
	return inScope(pkgPath,
		"statsat/internal/server",
		"statsat/internal/portfolio",
		"statsat/internal/exp",
		"statsat/internal/trace",
		"statsat/internal/sat",
		"statsat/internal/engine",
		"statsat/internal/core",
		"statsat/internal/wal")
}

func (c GoLeak) Run(p *Package, m *Module) []Finding {
	var out []Finding
	walkStack(p, func(n ast.Node, stack []ast.Node) {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return
		}
		if reason := m.goroutineUnbounded(p, g, stack); reason != "" {
			out = append(out, Finding{
				Pos:   p.Fset.Position(g.Pos()),
				Check: c.Name(),
				Message: "goroutine has no bounded exit (" + reason + "); join it with a " +
					"WaitGroup, select on ctx.Done or a closed channel, or hand its " +
					"result to the spawner over a channel",
			})
		}
	})
	return out
}

// goroutineUnbounded returns "" when the spawned goroutine has a
// bounded exit, or a short reason string when it does not.
func (m *Module) goroutineUnbounded(p *Package, g *ast.GoStmt, stack []ast.Node) string {
	var sum *Summary
	lit, isLit := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if isLit {
		sum = m.summarize(p, lit.Body)
	} else if f := funcObj(p.Info, g.Call); f != nil {
		if fi := m.Funcs[f]; fi != nil {
			sum = fi.Sum
		} else {
			return "go " + f.Name() + " calls a function outside the analyzed module, " +
				"so no exit path is visible"
		}
	} else {
		return "dynamic go call; the analysis cannot see the goroutine body"
	}

	switch {
	case sum.WGDone:
		return ""
	case sum.ObservesCancel:
		return ""
	case sum.Terminates():
		return ""
	}
	for ch := range sum.RecvChans {
		if m.ClosedChans[ch] {
			return ""
		}
	}
	// Channel join: the literal sends on (or closes) a channel the
	// spawning function receives from outside the go statement.
	if isLit && m.chanJoined(p, g, lit, stack) {
		return ""
	}
	desc := sum.BlockDesc
	if desc == "" {
		desc = "unconditional loop"
	}
	return "blocks on " + desc + " with no WaitGroup join, cancellation observation, " +
		"closed-channel receive, or spawner channel join"
}

// chanJoined reports the channel-join shape: a channel object the
// goroutine literal sends on or closes is received from (<-ch, range
// ch, or a select case) by the enclosing function outside the go
// statement itself.
func (m *Module) chanJoined(p *Package, g *ast.GoStmt, lit *ast.FuncLit, stack []ast.Node) bool {
	// Channels the goroutine writes.
	written := map[interface{}]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			if obj := exprObj(p, x.Chan); obj != nil {
				written[obj] = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" && len(x.Args) == 1 {
				if obj := exprObj(p, x.Args[0]); obj != nil {
					written[obj] = true
				}
			}
		}
		return true
	})
	if len(written) == 0 {
		return false
	}
	// Innermost enclosing function body.
	var encl ast.Node
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			encl = fn.Body
		case *ast.FuncLit:
			encl = fn.Body
		}
		if encl != nil {
			break
		}
	}
	if encl == nil {
		return false
	}
	joined := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if n == g || joined {
			return false
		}
		var ch ast.Expr
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				ch = x.X
			}
		case *ast.RangeStmt:
			ch = x.X
		}
		if ch != nil {
			if obj := exprObj(p, ch); obj != nil && written[obj] {
				joined = true
				return false
			}
		}
		return true
	})
	return joined
}
