package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages from a module tree without
// any external dependency: module-internal imports are resolved
// straight from the module directory (recursively, memoized), and
// everything else — in this repo that means only the standard library
// — is delegated to the stdlib source importer, which reads GOROOT
// sources. No `go list` subprocess, no export data, no x/tools.
type Loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer
	pkgs    map[string]*Package // by import path; nil entry = in progress
	// IncludeTests adds _test.go files of the package itself (not
	// external _test packages). Off by default: the determinism
	// invariants target production code, and tests legitimately use
	// fixed ad-hoc seeds and wall-clock timing.
	IncludeTests bool
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		modRoot: root,
		modPath: path,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and extracts
// the module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// Expand resolves command-line patterns relative to dir into package
// directories. Supported forms: "./..." and "dir/..." (recursive walk
// skipping testdata, hidden and underscore directories), plain
// directory paths, and module-internal import paths. Explicitly named
// directories are returned even inside testdata — that is how the
// driver's own tests point it at known-bad fixtures.
func (l *Loader) Expand(dir string, patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base := rest
			if base == "." || base == "" {
				base = dir
			} else if !filepath.IsAbs(base) {
				base = filepath.Join(dir, base)
			}
			err := filepath.WalkDir(base, func(path string, de os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if de.IsDir() {
					name := de.Name()
					if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
						return filepath.SkipDir
					}
					return nil
				}
				if strings.HasSuffix(de.Name(), ".go") && !strings.HasSuffix(de.Name(), "_test.go") {
					add(filepath.Dir(path))
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		p := pat
		if !filepath.IsAbs(p) {
			if strings.HasPrefix(pat, l.modPath+"/") || pat == l.modPath {
				p = filepath.Join(l.modRoot, strings.TrimPrefix(strings.TrimPrefix(pat, l.modPath), "/"))
			} else {
				p = filepath.Join(dir, pat)
			}
		}
		if fi, err := os.Stat(p); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q: not a package directory", pat)
		}
		add(p)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// LoadDirs type-checks each directory as one package.
func (l *Loader) LoadDirs(dirs []string) ([]*Package, error) {
	var out []*Package
	for _, d := range dirs {
		path, err := l.importPathFor(d)
		if err != nil {
			return nil, err
		}
		p, err := l.load(path, d)
		if err != nil {
			return nil, err
		}
		if p != nil {
			out = append(out, p)
		}
	}
	return out, nil
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.modRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.modRoot)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// load parses and type-checks one package (memoized). Returns
// (nil, nil) for a directory with no non-test Go files.
func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return p, nil
	}
	l.pkgs[path] = nil // cycle marker

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		delete(l.pkgs, path)
		return nil, nil
	}
	// External test packages (package foo_test) cannot be mixed into
	// the same type-check unit; drop them even with IncludeTests.
	base := files[0].Name.Name
	kept := files[:0]
	for _, f := range files {
		if f.Name.Name == base || !strings.HasSuffix(f.Name.Name, "_test") {
			kept = append(kept, f)
		}
	}
	files = kept

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: (*moduleImporter)(l),
		// The tree already passed `go build` in the verify chain; any
		// residual error (e.g. in fixtures) should fail loudly.
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// moduleImporter routes module-internal imports to the loader and
// everything else to the stdlib source importer.
type moduleImporter Loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(m)
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		p, err := l.load(path, filepath.Join(l.modRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", path)
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Load is the one-call convenience used by cmd/statlint and the test
// harness: expand patterns relative to dir, load, return packages.
func Load(dir string, patterns []string) ([]*Package, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := l.Expand(dir, patterns)
	if err != nil {
		return nil, err
	}
	return l.LoadDirs(dirs)
}
