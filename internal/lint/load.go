package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Loader parses and type-checks packages from a module tree without
// any external dependency: module-internal imports are resolved
// straight from the module directory (recursively, memoized), and
// everything else — in this repo that means only the standard library
// — is delegated to the stdlib source importer, which reads GOROOT
// sources. No `go list` subprocess, no export data, no x/tools.
type Loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer
	pkgs    map[string]*Package // by import path; nil entry = in progress
	// IncludeTests adds _test.go files of the package itself (not
	// external _test packages). Off by default: the determinism
	// invariants target production code, and tests legitimately use
	// fixed ad-hoc seeds and wall-clock timing.
	IncludeTests bool
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		modRoot: root,
		modPath: path,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and extracts
// the module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// Expand resolves command-line patterns relative to dir into package
// directories. Supported forms: "./..." and "dir/..." (recursive walk
// skipping testdata, hidden and underscore directories), plain
// directory paths, and module-internal import paths. Explicitly named
// directories are returned even inside testdata — that is how the
// driver's own tests point it at known-bad fixtures.
func (l *Loader) Expand(dir string, patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base := rest
			if base == "." || base == "" {
				base = dir
			} else if !filepath.IsAbs(base) {
				base = filepath.Join(dir, base)
			}
			err := filepath.WalkDir(base, func(path string, de os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if de.IsDir() {
					name := de.Name()
					if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
						return filepath.SkipDir
					}
					return nil
				}
				if strings.HasSuffix(de.Name(), ".go") && !strings.HasSuffix(de.Name(), "_test.go") {
					add(filepath.Dir(path))
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		p := pat
		if !filepath.IsAbs(p) {
			if strings.HasPrefix(pat, l.modPath+"/") || pat == l.modPath {
				p = filepath.Join(l.modRoot, strings.TrimPrefix(strings.TrimPrefix(pat, l.modPath), "/"))
			} else {
				p = filepath.Join(dir, pat)
			}
		}
		if fi, err := os.Stat(p); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q: not a package directory", pat)
		}
		add(p)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// LoadDirs type-checks each directory as one package.
func (l *Loader) LoadDirs(dirs []string) ([]*Package, error) {
	var out []*Package
	for _, d := range dirs {
		path, err := l.importPathFor(d)
		if err != nil {
			return nil, err
		}
		p, err := l.load(path, d)
		if err != nil {
			return nil, err
		}
		if p != nil {
			out = append(out, p)
		}
	}
	return out, nil
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.modRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.modRoot)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// load parses and type-checks one package (memoized). Returns
// (nil, nil) for a directory with no non-test Go files. Files excluded
// on the current platform — by a //go:build constraint or a
// _GOOS/_GOARCH filename suffix — are dropped before type-checking,
// exactly as `go build` would drop them; without this a single
// foo_windows.go turns the whole package into a type error on linux.
func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return p, nil
	}
	l.pkgs[path] = nil // cycle marker

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !fileMatchesPlatform(name) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if x := fileConstraint(f); x != nil && !x.Eval(buildTagSatisfied) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		delete(l.pkgs, path)
		return nil, nil
	}
	// External test packages (package foo_test) cannot be mixed into
	// the same type-check unit; drop them even with IncludeTests.
	base := files[0].Name.Name
	kept := files[:0]
	for _, f := range files {
		if f.Name.Name == base || !strings.HasSuffix(f.Name.Name, "_test") {
			kept = append(kept, f)
		}
	}
	files = kept

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: (*moduleImporter)(l),
		// The tree already passed `go build` in the verify chain; any
		// residual error (e.g. in fixtures) should fail loudly.
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// fileConstraint returns the //go:build expression of a parsed file
// (the constraint must precede the package clause), or nil when the
// file is unconstrained. Legacy // +build lines are not recognised;
// the repo is post-go1.17 throughout.
func fileConstraint(f *ast.File) constraint.Expr {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if constraint.IsGoBuild(c.Text) {
				if x, err := constraint.Parse(c.Text); err == nil {
					return x
				}
			}
		}
	}
	return nil
}

// buildTagSatisfied evaluates one build tag for the platform the
// linter itself runs on — the only platform whose files it can
// type-check.
func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH:
		return true
	case "unix":
		return unixOS[runtime.GOOS]
	case "cgo":
		return false
	}
	// Release tags: assume the current toolchain satisfies every go1.x
	// the tree mentions (it builds the tree).
	return strings.HasPrefix(tag, "go1")
}

// fileMatchesPlatform applies the `go build` filename rules:
// name_GOOS.go, name_GOARCH.go and name_GOOS_GOARCH.go (with an
// optional _test before .go) constrain the file to that platform. A
// bare GOOS/GOARCH filename (linux.go) is not a constraint.
func fileMatchesPlatform(name string) bool {
	name = strings.TrimSuffix(name, ".go")
	name = strings.TrimSuffix(name, "_test")
	parts := strings.Split(name, "_")
	if len(parts) < 2 {
		return true
	}
	last := parts[len(parts)-1]
	prev := ""
	if len(parts) >= 3 {
		prev = parts[len(parts)-2]
	}
	if knownArch[last] {
		if last != runtime.GOARCH {
			return false
		}
		if knownOS[prev] {
			return prev == runtime.GOOS
		}
		return true
	}
	if knownOS[last] {
		return last == runtime.GOOS
	}
	return true
}

// knownOS/knownArch mirror go/build's syslists; they only need to
// cover names that could plausibly appear as filename suffixes.
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"js": true, "linux": true, "netbsd": true, "openbsd": true,
	"plan9": true, "solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mipsle": true, "mips64": true,
	"mips64le": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"linux": true, "netbsd": true, "openbsd": true, "solaris": true,
}

// moduleImporter routes module-internal imports to the loader and
// everything else to the stdlib source importer.
type moduleImporter Loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(m)
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		p, err := l.load(path, filepath.Join(l.modRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", path)
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Load is the one-call convenience used by cmd/statlint and the test
// harness: expand patterns relative to dir, load, return packages.
func Load(dir string, patterns []string) ([]*Package, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := l.Expand(dir, patterns)
	if err != nil {
		return nil, err
	}
	return l.LoadDirs(dirs)
}
