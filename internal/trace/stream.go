package trace

import "sync"

// Stream is a fan-out Tracer for live consumers: it retains emitted
// events in a bounded replay buffer and forwards them to any number of
// subscribers attached before or during the run. A subscriber first
// receives the replay (everything still buffered at subscription time)
// and then every later event, in emission order, over a single channel
// that closes when the stream closes or the subscription is cancelled.
//
// Stream is the backing sink of statsatd's NDJSON trace endpoint
// (docs/SERVER.md), but it is attack-agnostic: anything that accepts a
// Tracer can be observed live through it.
//
// Delivery never blocks the attack. The replay buffer is a ring: once
// full, the oldest events are evicted and counted in Dropped. A
// subscriber whose channel is full loses events too, counted per
// subscription — consumers that must not miss events size their buffer
// accordingly or drain promptly.
type Stream struct {
	mu      sync.Mutex
	ring    []Event
	start   int // index of the oldest buffered event
	count   int // buffered events
	dropped int64
	subs    map[*StreamSub]struct{}
	closed  bool
}

// streamDefaultBuffer bounds the replay ring when NewStream is given a
// non-positive capacity; streamSubBuffer is the default per-subscriber
// channel slack beyond the replay.
const (
	streamDefaultBuffer = 4096
	streamSubBuffer     = 256
)

// NewStream returns an open stream retaining up to max events for
// replay (max <= 0 selects a default of 4096).
func NewStream(max int) *Stream {
	if max <= 0 {
		max = streamDefaultBuffer
	}
	return &Stream{ring: make([]Event, max), subs: map[*StreamSub]struct{}{}}
}

// Emit implements Tracer: buffer the event (evicting the oldest when
// the ring is full) and offer it to every live subscriber without
// blocking.
func (s *Stream) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if s.count == len(s.ring) {
		s.start = (s.start + 1) % len(s.ring)
		s.count--
		s.dropped++
	}
	s.ring[(s.start+s.count)%len(s.ring)] = ev
	s.count++
	for sub := range s.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped++
		}
	}
}

// Close ends the stream: every subscriber's channel is closed after
// the events already delivered, later Emit calls are dropped, and
// later Subscribe calls receive the replay followed by an immediately
// closed channel. Close is idempotent.
func (s *Stream) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for sub := range s.subs {
		close(sub.ch)
	}
	s.subs = map[*StreamSub]struct{}{}
}

// Closed reports whether Close has been called.
func (s *Stream) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Dropped returns the number of events evicted from the replay ring so
// far (late subscribers missed at least these).
func (s *Stream) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Len returns the number of events currently buffered for replay.
func (s *Stream) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// StreamSub is one live subscription. Receive from C until it closes;
// call Cancel when done (safe to call even after C closed).
type StreamSub struct {
	// C delivers the replay followed by live events, in order.
	C <-chan Event

	s       *Stream
	ch      chan Event
	dropped int64
	done    bool
}

// Subscribe attaches a consumer: the returned subscription's channel
// already holds every event still buffered (the replay) and then
// receives each later event as it is emitted. buf is extra channel
// capacity beyond the replay for the live tail (buf <= 0 selects a
// default of 256). On a closed stream the channel holds the replay and
// is already closed.
func (s *Stream) Subscribe(buf int) *StreamSub {
	if buf <= 0 {
		buf = streamSubBuffer
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan Event, s.count+buf)
	for i := 0; i < s.count; i++ {
		//lint:ignore lockscope ch is freshly made with capacity count+buf, so this replay fill of count events can never block
		ch <- s.ring[(s.start+i)%len(s.ring)]
	}
	sub := &StreamSub{C: ch, s: s, ch: ch}
	if s.closed {
		close(ch)
		sub.done = true
		return sub
	}
	s.subs[sub] = struct{}{}
	return sub
}

// Cancel detaches the subscription and closes its channel (unless the
// stream already closed it). Idempotent.
func (sub *StreamSub) Cancel() {
	sub.s.mu.Lock()
	defer sub.s.mu.Unlock()
	if sub.done {
		return
	}
	sub.done = true
	if _, live := sub.s.subs[sub]; live {
		delete(sub.s.subs, sub)
		close(sub.ch)
	}
}

// Dropped returns the number of live events this subscription lost to
// a full channel.
func (sub *StreamSub) Dropped() int64 {
	sub.s.mu.Lock()
	defer sub.s.mu.Unlock()
	return sub.dropped
}
