package trace

import (
	"sync"
	"testing"
)

func evN(n int) Event {
	return Event{Type: IterStart, Iter: n, Instance: 0}
}

func TestStreamReplayThenLive(t *testing.T) {
	s := NewStream(16)
	for i := 0; i < 3; i++ {
		s.Emit(evN(i))
	}
	sub := s.Subscribe(8)
	defer sub.Cancel()
	// Replay: the three buffered events are already in the channel.
	for i := 0; i < 3; i++ {
		ev := <-sub.C
		if ev.Iter != i {
			t.Fatalf("replay event %d has iter %d", i, ev.Iter)
		}
	}
	// Live tail.
	s.Emit(evN(3))
	if ev := <-sub.C; ev.Iter != 3 {
		t.Fatalf("live event iter = %d, want 3", ev.Iter)
	}
}

func TestStreamRingEviction(t *testing.T) {
	s := NewStream(4)
	for i := 0; i < 10; i++ {
		s.Emit(evN(i))
	}
	if got := s.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := s.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	sub := s.Subscribe(1)
	defer sub.Cancel()
	// Replay holds only the newest 4, oldest first.
	for want := 6; want < 10; want++ {
		if ev := <-sub.C; ev.Iter != want {
			t.Fatalf("replay iter = %d, want %d", ev.Iter, want)
		}
	}
}

func TestStreamCloseEndsSubscribers(t *testing.T) {
	s := NewStream(8)
	s.Emit(evN(0))
	sub := s.Subscribe(4)
	s.Close()
	if !s.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	// The pre-close event is still delivered, then the channel closes.
	if ev, ok := <-sub.C; !ok || ev.Iter != 0 {
		t.Fatalf("pre-close event = %+v ok=%v", ev, ok)
	}
	if _, ok := <-sub.C; ok {
		t.Fatal("channel still open after Close")
	}
	// Emit after close is dropped silently.
	s.Emit(evN(1))
	if s.Len() != 1 {
		t.Fatalf("Len after post-close emit = %d, want 1", s.Len())
	}
	// Close and Cancel stay idempotent.
	s.Close()
	sub.Cancel()
	sub.Cancel()
}

func TestStreamSubscribeAfterClose(t *testing.T) {
	s := NewStream(8)
	s.Emit(evN(0))
	s.Emit(evN(1))
	s.Close()
	sub := s.Subscribe(0)
	var got []int
	for ev := range sub.C { // closed channel: loop ends after replay
		got = append(got, ev.Iter)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("replay after close = %v", got)
	}
	sub.Cancel() // must not panic on the already-closed channel
}

func TestStreamSlowSubscriberDropsNotBlocks(t *testing.T) {
	s := NewStream(64)
	sub := s.Subscribe(2) // room for 2 live events, no replay
	defer sub.Cancel()
	for i := 0; i < 10; i++ {
		s.Emit(evN(i)) // must never block even though nobody drains
	}
	if got := sub.Dropped(); got != 8 {
		t.Fatalf("sub.Dropped = %d, want 8", got)
	}
	// The two delivered events are the earliest ones.
	if ev := <-sub.C; ev.Iter != 0 {
		t.Fatalf("first delivered iter = %d, want 0", ev.Iter)
	}
}

func TestStreamCancelDetaches(t *testing.T) {
	s := NewStream(8)
	sub := s.Subscribe(4)
	sub.Cancel()
	if _, ok := <-sub.C; ok {
		t.Fatal("channel open after Cancel")
	}
	s.Emit(evN(0)) // must not panic (send on closed channel) post-Cancel
	s.Close()
}

func TestStreamConcurrentEmitSubscribe(t *testing.T) {
	s := NewStream(128)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			s.Emit(evN(i))
		}
		s.Close()
	}()
	var received int
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			sub := s.Subscribe(16)
			for range sub.C {
				received++
				break // sample one event, then detach
			}
			sub.Cancel()
		}
	}()
	wg.Wait()
	_ = received // the assertions are -race cleanliness and no deadlock
}

func TestStreamDefaultCapacity(t *testing.T) {
	s := NewStream(0)
	if len(s.ring) != streamDefaultBuffer {
		t.Fatalf("default ring = %d, want %d", len(s.ring), streamDefaultBuffer)
	}
}
