package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"statsat/internal/sat"
)

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e := NewEmitter(NewJSONL(&buf))
	e.Emit(Event{
		Type: AttackStart, Attack: "statsat", Instance: -1,
		Circuit: &CircuitInfo{Name: "c17", PIs: 5, POs: 2, Keys: 4},
		Opts:    &OptionsInfo{Ns: 500, NInst: 4, ULambda: 0.25, ELambda: 0.30},
	})
	e.Emit(Event{
		Type: DIPFound, Instance: 0, Iter: 1,
		DIP: &DIPInfo{Index: 0, X: "01011", Y: "1x", Outputs: 2, Specified: 1, Candidates: 8},
	})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var first, second Event
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	if first.Type != AttackStart || first.Seq != 1 || first.Instance != -1 {
		t.Errorf("first = %+v", first)
	}
	if first.Circuit == nil || first.Circuit.Keys != 4 {
		t.Errorf("circuit payload lost: %+v", first.Circuit)
	}
	if second.Type != DIPFound || second.Seq != 2 || second.DIP == nil || second.DIP.Y != "1x" {
		t.Errorf("second = %+v", second)
	}
	if second.TNs < first.TNs {
		t.Errorf("timestamps not monotonic: %d then %d", first.TNs, second.TNs)
	}
	// Unused payloads must be omitted from the wire format entirely.
	if strings.Contains(lines[1], "totals") || strings.Contains(lines[0], "fork") {
		t.Errorf("empty payloads serialised: %s", lines[1])
	}
}

func TestNilEmitterDropsEverything(t *testing.T) {
	var e *Emitter
	if e.Enabled() {
		t.Error("nil emitter reports enabled")
	}
	e.Emit(Event{Type: AttackStart}) // must not panic
	if NewEmitter(nil) != nil {
		t.Error("NewEmitter(nil) should return nil")
	}
}

// TestConcurrentEmission drives one emitter from many goroutines (the
// parallel-instance scenario) and checks that the trace keeps a total
// order: every event lands intact with a unique sequence number. Run
// with -race to check the emission path for data races.
func TestConcurrentEmission(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder()
	e := NewEmitter(Multi(NewJSONL(&buf), rec))
	const workers, each = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				e.Emit(Event{Type: IterStart, Instance: w, Iter: i + 1,
					Solver: &SolverStats{Conflicts: int64(i)}})
			}
		}(w)
	}
	wg.Wait()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != workers*each {
		t.Fatalf("got %d JSONL lines, want %d", len(lines), workers*each)
	}
	seen := make(map[int64]bool)
	for _, ln := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("corrupt line %q: %v", ln, err)
		}
		if ev.Seq < 1 || ev.Seq > int64(workers*each) || seen[ev.Seq] {
			t.Fatalf("bad/duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
	if got := rec.Count(IterStart); got != workers*each {
		t.Errorf("recorder saw %d events, want %d", got, workers*each)
	}
}

func TestMultiFiltersNil(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("Multi of nothing should be nil (tracing off)")
	}
	rec := NewRecorder()
	if Multi(nil, rec) != Tracer(rec) {
		t.Error("Multi with one live sink should return it directly")
	}
	m := Multi(rec, NewRecorder())
	m.Emit(Event{Type: Fork})
	if rec.Count(Fork) != 1 {
		t.Error("multi did not forward")
	}
}

func TestSolverSnapshot(t *testing.T) {
	s := sat.New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(sat.PosLit(a), sat.PosLit(b))
	s.AddClause(sat.NegLit(a), sat.PosLit(b))
	if s.Solve() != sat.Sat {
		t.Fatal("trivial formula unsat")
	}
	st := SolverSnapshot(s)
	if st.Vars != 2 || st.Clauses != 2 {
		t.Errorf("snapshot size wrong: %+v", st)
	}
	if st.Solves != 1 {
		t.Errorf("solves = %d, want 1", st.Solves)
	}
}

func TestEventStringAllTypes(t *testing.T) {
	events := []Event{
		{Type: AttackStart, Attack: "statsat", Instance: -1,
			Circuit: &CircuitInfo{Name: "c880", PIs: 60, POs: 26, Keys: 16}},
		{Type: IterStart, Instance: 0, Iter: 3, Solver: &SolverStats{Vars: 10}},
		{Type: IterEnd, Instance: 0, Iter: 3, Status: "dip", Solver: &SolverStats{}},
		{Type: DIPFound, Instance: 0, Iter: 3, DIP: &DIPInfo{X: "0", Y: "x", Outputs: 1}},
		{Type: BitsGated, Instance: 0, Gating: &GatingInfo{GatedU: []int{1}}},
		{Type: Fork, Instance: 0, Fork: &ForkInfo{Child: 1, Bit: 2, U: 0.4, E: 0.1}},
		{Type: ForceProceed, Instance: 0, Fork: &ForkInfo{Bit: 2, E: 0.1}},
		{Type: InstanceDead, Instance: 1, Key: &KeyInfo{Iterations: 5, DIPs: 4}},
		{Type: KeyAccepted, Instance: 0, Key: &KeyInfo{Key: "1010", Iterations: 9, DIPs: 7}},
		{Type: AttackEnd, Instance: -1, Totals: &TotalsInfo{Keys: 1, Iterations: 9}},
		{Type: EvalStart, Instance: -1, Eval: &EvalInfo{Keys: 1, NEval: 100}},
		{Type: KeyScored, Instance: 0, Key: &KeyInfo{Key: "1010"}, Score: &ScoreInfo{FM: 0.01, HD: 0.02}},
		{Type: EvalEnd, Instance: -1, Score: &ScoreInfo{}, Eval: &EvalInfo{Keys: 1}},
	}
	var buf bytes.Buffer
	text := NewText(&buf)
	for _, ev := range events {
		s := ev.String()
		if !strings.Contains(s, string(ev.Type)) {
			t.Errorf("String() for %s lacks the type name: %q", ev.Type, s)
		}
		text.Emit(ev)
	}
	if got := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); got != len(events) {
		t.Errorf("text sink wrote %d lines, want %d", got, len(events))
	}
}
