package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// jsonlTracer writes one JSON object per event, newline-terminated
// (JSON-lines). Writes are serialised by a mutex.
type jsonlTracer struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONL returns a Tracer writing JSON-lines events to w. Each Emit
// performs one Write on w; wrap files in a bufio.Writer (and flush it
// when done) for high-frequency traces.
func NewJSONL(w io.Writer) Tracer {
	return &jsonlTracer{enc: json.NewEncoder(w)}
}

func (t *jsonlTracer) Emit(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Encode errors (closed file, full disk) are swallowed: tracing
	// must never fail the attack it observes.
	_ = t.enc.Encode(ev)
}

// textTracer writes one human-readable line per event.
type textTracer struct {
	mu sync.Mutex
	w  io.Writer
}

// NewText returns a Tracer writing human-readable lines to w (the -v
// style companion of NewJSONL).
func NewText(w io.Writer) Tracer {
	return &textTracer{w: w}
}

func (t *textTracer) Emit(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintln(t.w, ev.String())
}

// String renders the event as a single human-readable line.
func (ev Event) String() string {
	ts := time.Duration(ev.TNs).Round(time.Microsecond)
	head := fmt.Sprintf("[%12v] #%-5d", ts, ev.Seq)
	if ev.Instance >= 0 {
		head += fmt.Sprintf(" inst %-3d", ev.Instance)
	} else {
		head += " run     "
	}
	body := string(ev.Type)
	switch ev.Type {
	case AttackStart:
		if ev.Circuit != nil {
			body += fmt.Sprintf(" %s attack on %q (%d in, %d out, %d key bits)",
				ev.Attack, ev.Circuit.Name, ev.Circuit.PIs, ev.Circuit.POs, ev.Circuit.Keys)
		}
	case IterStart, IterEnd:
		body += fmt.Sprintf(" iter %d", ev.Iter)
		if ev.Status != "" {
			body += " " + ev.Status
		}
		if ev.Solver != nil {
			body += fmt.Sprintf(" [%d vars, %d clauses, %d learnts, %d conflicts]",
				ev.Solver.Vars, ev.Solver.Clauses, ev.Solver.Learnts, ev.Solver.Conflicts)
		}
	case DIPFound:
		if ev.DIP != nil {
			body += fmt.Sprintf(" %d: x=%s y=%s (%d/%d specified, %d candidates)",
				ev.DIP.Index, ev.DIP.X, ev.DIP.Y, ev.DIP.Specified, ev.DIP.Outputs, ev.DIP.Candidates)
		}
	case BitsGated:
		if ev.Gating != nil {
			body += fmt.Sprintf(" dip %d: gated_u=%v gated_e=%v",
				ev.Gating.DIP, ev.Gating.GatedU, ev.Gating.GatedE)
		}
	case Fork:
		if ev.Fork != nil {
			body += fmt.Sprintf(" -> inst %d on bit %d (U=%.3f E=%.3f, parent takes %v)",
				ev.Fork.Child, ev.Fork.Bit, ev.Fork.U, ev.Fork.E, ev.Fork.Value)
		}
	case ForceProceed:
		if ev.Fork != nil {
			body += fmt.Sprintf(" bit %d = %v (U=%.3f E=%.3f)",
				ev.Fork.Bit, ev.Fork.Value, ev.Fork.U, ev.Fork.E)
		}
	case InstanceDead:
		if ev.Key != nil {
			body += fmt.Sprintf(" after %d iterations, %d dips", ev.Key.Iterations, ev.Key.DIPs)
		}
	case KeyAccepted:
		if ev.Key != nil {
			body += fmt.Sprintf(" key=%s after %d iterations, %d dips",
				ev.Key.Key, ev.Key.Iterations, ev.Key.DIPs)
		}
	case KeyScored:
		if ev.Key != nil && ev.Score != nil {
			body += fmt.Sprintf(" key=%s FM=%.4f HD=%.4f", ev.Key.Key, ev.Score.FM, ev.Score.HD)
		}
	case Interrupted:
		if ev.Interrupt != nil {
			body += fmt.Sprintf(" %s after %d iterations (results are best-effort)",
				ev.Interrupt.Cause, ev.Interrupt.Iterations)
		}
	case AttackEnd:
		if ev.Totals != nil {
			body += fmt.Sprintf(" %d key(s), %d iterations, %d instances (%d forks, %d force-proceeds, %d dead), %d queries in %v",
				ev.Totals.Keys, ev.Totals.Iterations, ev.Totals.InstancesCreated,
				ev.Totals.Forks, ev.Totals.ForceProceeds, ev.Totals.DeadInstances,
				ev.Totals.OracleQueries, time.Duration(ev.Totals.DurationNs).Round(time.Microsecond))
		}
	case EvalStart:
		if ev.Eval != nil {
			body += fmt.Sprintf(" %d key(s), N_eval=%d, Ns=%d", ev.Eval.Keys, ev.Eval.NEval, ev.Eval.EvalNs)
		}
	case EvalEnd:
		if ev.Eval != nil && ev.Score != nil {
			body += fmt.Sprintf(" best FM=%.4f HD=%.4f (%d queries in %v)",
				ev.Score.FM, ev.Score.HD, ev.Eval.OracleQueries,
				time.Duration(ev.Eval.DurationNs).Round(time.Microsecond))
		}
	}
	if ev.OracleQueries > 0 && (ev.Type == IterStart || ev.Type == DIPFound) {
		body += fmt.Sprintf(" (queries=%d)", ev.OracleQueries)
	}
	return head + " " + body
}

// multiTracer fans one event out to several sinks.
type multiTracer struct{ ts []Tracer }

// Multi returns a Tracer forwarding every event to each non-nil t in
// order. With zero (or all-nil) arguments it returns nil, which the
// attack engines treat as "tracing off".
func Multi(ts ...Tracer) Tracer {
	var live []Tracer
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &multiTracer{ts: live}
}

func (m *multiTracer) Emit(ev Event) {
	for _, t := range m.ts {
		t.Emit(ev)
	}
}

// Recorder is an in-memory Tracer for tests and programmatic trace
// consumption.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Emit implements Tracer.
func (r *Recorder) Emit(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
}

// Events returns a copy of everything recorded so far.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Count returns the number of recorded events of type t.
func (r *Recorder) Count(t EventType) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ev := range r.events {
		if ev.Type == t {
			n++
		}
	}
	return n
}
