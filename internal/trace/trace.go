// Package trace is the attack observability layer: a pluggable Tracer
// receives typed, timestamped events from the attack engines
// (internal/core, internal/attack) so that run-time behaviour — DI
// discovery, uncertainty/BER gating, instance forking, force-proceed,
// solver search effort, oracle query spend — is recordable and
// machine-readable instead of being visible only through final Result
// fields.
//
// The event schema is a stable, documented contract: every event type,
// field and unit is specified in docs/OBSERVABILITY.md. Changes to the
// schema must update that document.
//
// Emission is race-safe: the attack engines may emit from concurrent
// instance goroutines; the Emitter stamps a process-wide-unique
// sequence number and a monotonic timestamp atomically, and every sink
// shipped here serialises its writes internally.
package trace

import (
	"sync"
	"time"

	"statsat/internal/sat"
)

// EventType names one kind of trace event. The string values are the
// wire format (the "type" field of a JSON-lines trace).
type EventType string

// Event types, in the approximate order they appear in a trace. See
// docs/OBSERVABILITY.md for the exact payload of each.
const (
	// AttackStart opens a trace: circuit interface + attack options.
	AttackStart EventType = "attack_start"
	// IterStart marks one SAT iteration attempt (pre-solve snapshot).
	IterStart EventType = "iteration_start"
	// IterEnd closes the iteration with its outcome (post snapshot).
	IterEnd EventType = "iteration_end"
	// DIPFound records a new distinguishing input with its gating
	// summary.
	DIPFound EventType = "dip_found"
	// BitsGated details which output bits were withheld by U_lambda vs
	// E_lambda for the DIP just found.
	BitsGated EventType = "bits_gated"
	// Fork records an eq. 5 instance duplication.
	Fork EventType = "fork"
	// ForceProceed records an eq. 6 forced bit specification.
	ForceProceed EventType = "force_proceed"
	// InstanceDead records an instance whose formula went UNSAT (or
	// that ran out of candidate keys).
	InstanceDead EventType = "instance_dead"
	// KeyAccepted records an instance finishing with a key.
	KeyAccepted EventType = "key_accepted"
	// Interrupted records a cancellation or deadline expiry: the run
	// stopped early and the results that follow are best-effort.
	Interrupted EventType = "interrupted"
	// ClauseShared reports the portfolio clause-exchange deltas for one
	// raced miter solve (emitted only when something moved).
	ClauseShared EventType = "clause_shared"
	// RaceWinner records a racing helper configuration beating the base
	// solver to an UNSAT verdict (portfolio mode only).
	RaceWinner EventType = "race_winner"
	// AttackEnd closes the key-finding phase with run totals.
	AttackEnd EventType = "attack_end"
	// EvalStart opens the key-evaluation phase (eq. 7-8).
	EvalStart EventType = "eval_start"
	// KeyScored reports one key's FM/HD scores.
	KeyScored EventType = "key_scored"
	// EvalEnd closes the evaluation phase with the best key's scores.
	EvalEnd EventType = "eval_end"
)

// Event is one trace record. Only the envelope fields (Seq, TNs, Type,
// Instance) are always present; payload pointers are populated per
// event type as documented in docs/OBSERVABILITY.md.
type Event struct {
	// Seq is a per-trace sequence number, strictly increasing from 1
	// in emission order (total order even across instance goroutines).
	Seq int64 `json:"seq"`
	// TNs is the monotonic time of emission in nanoseconds since the
	// trace began (emitter creation, just before attack_start).
	TNs int64 `json:"t_ns"`
	// Type discriminates the payload.
	Type EventType `json:"type"`
	// Attack names the engine ("statsat", "psat", "sat"); set on
	// attack_start only.
	Attack string `json:"attack,omitempty"`
	// Instance is the SAT-instance ID the event belongs to, or -1 for
	// run-scoped events (attack_start/end, eval_start/end).
	Instance int `json:"instance"`
	// Iter is the instance's 1-based iteration attempt counter; 0
	// (omitted) when not iteration-scoped.
	Iter int `json:"iter,omitempty"`
	// Status is the iteration outcome on iteration_end:
	// "dip" | "repeat" | "unsat" | "dead".
	Status string `json:"status,omitempty"`
	// OracleQueries is the cumulative attack-phase chip query count at
	// emission time (shared across instances).
	OracleQueries int64 `json:"oracle_queries,omitempty"`

	Circuit   *CircuitInfo   `json:"circuit,omitempty"`
	Opts      *OptionsInfo   `json:"opts,omitempty"`
	Solver    *SolverStats   `json:"solver,omitempty"`
	DIP       *DIPInfo       `json:"dip,omitempty"`
	Gating    *GatingInfo    `json:"gating,omitempty"`
	Fork      *ForkInfo      `json:"fork,omitempty"`
	Key       *KeyInfo       `json:"key,omitempty"`
	Score     *ScoreInfo     `json:"score,omitempty"`
	Eval      *EvalInfo      `json:"eval,omitempty"`
	Totals    *TotalsInfo    `json:"totals,omitempty"`
	Interrupt *InterruptInfo `json:"interrupt,omitempty"`
	Share     *ShareInfo     `json:"share,omitempty"`
	Race      *RaceInfo      `json:"race,omitempty"`
}

// CircuitInfo describes the attacked netlist's interface
// (attack_start).
type CircuitInfo struct {
	Name string `json:"name"`
	PIs  int    `json:"pis"`
	POs  int    `json:"pos"`
	Keys int    `json:"keys"`
}

// OptionsInfo echoes the attack parameters in force (attack_start).
// Zero-valued knobs that an engine does not use are omitted.
type OptionsInfo struct {
	Ns       int     `json:"ns,omitempty"`
	NSatis   int     `json:"nsatis,omitempty"`
	NEval    int     `json:"neval,omitempty"`
	EvalNs   int     `json:"eval_ns,omitempty"`
	NInst    int     `json:"ninst,omitempty"`
	ULambda  float64 `json:"ulambda,omitempty"`
	ELambda  float64 `json:"elambda,omitempty"`
	EpsG     float64 `json:"epsg,omitempty"`
	MaxIter  int     `json:"max_iter,omitempty"`
	Parallel bool    `json:"parallel,omitempty"`
	// PortfolioWorkers / PortfolioRacers echo the portfolio knobs when
	// racing is enabled (both omitted in sequential mode, keeping
	// off-mode traces byte-identical).
	PortfolioWorkers int `json:"portfolio_workers,omitempty"`
	PortfolioRacers  int `json:"portfolio_racers,omitempty"`
}

// SolverStats is a point-in-time snapshot of one instance's miter
// solver: formula size plus the cumulative sat.Statistics counters.
type SolverStats struct {
	Vars         int   `json:"vars"`
	Clauses      int   `json:"clauses"`
	Learnts      int   `json:"learnts"`
	Decisions    int64 `json:"decisions"`
	Propagations int64 `json:"propagations"`
	Conflicts    int64 `json:"conflicts"`
	Restarts     int64 `json:"restarts"`
	LearntTotal  int64 `json:"learnt_total"`
	Removed      int64 `json:"removed"`
	Solves       int64 `json:"solves"`
	// Exported / Imported count portfolio clause exchange; both are
	// omitted (always zero) outside portfolio mode.
	Exported int64 `json:"exported,omitempty"`
	Imported int64 `json:"imported,omitempty"`
}

// SolverSnapshot captures s's current counters. Call it only from the
// goroutine driving the solver (solvers are not goroutine-safe).
func SolverSnapshot(s *sat.Solver) *SolverStats {
	snap := s.Snapshot()
	return &SolverStats{
		Vars:         snap.Vars,
		Clauses:      snap.Clauses,
		Learnts:      snap.Learnts,
		Decisions:    snap.Decisions,
		Propagations: snap.Propagations,
		Conflicts:    snap.Conflicts,
		Restarts:     snap.Restarts,
		LearntTotal:  snap.Learnt,
		Removed:      snap.Removed,
		Solves:       snap.Solves,
		Exported:     snap.Exported,
		Imported:     snap.Imported,
	}
}

// DIPInfo describes a newly recorded distinguishing input (dip_found).
type DIPInfo struct {
	// Index is the 0-based DIP index within the emitting instance.
	Index int `json:"index"`
	// X is the input pattern ('0'/'1', one byte per primary input).
	X string `json:"x"`
	// Y is the partially specified output pattern ('0'/'1'/'x').
	Y string `json:"y"`
	// Outputs is the circuit's primary-output count (= len(Y)).
	Outputs int `json:"outputs"`
	// Specified counts the bits of Y pinned at recording time.
	Specified int `json:"specified"`
	// Candidates is the number of satisfying keys enumerated for the
	// BER estimate (StatSAT only).
	Candidates int `json:"candidates,omitempty"`
}

// GatingInfo details the eq. 3-4 gating decision for one DIP
// (bits_gated). The three slices partition [0, outputs).
type GatingInfo struct {
	// DIP is the 0-based DIP index the gating belongs to.
	DIP int `json:"dip"`
	// Specified lists output bit indices pinned (U <= U_lambda and
	// E <= E_lambda).
	Specified []int `json:"specified,omitempty"`
	// GatedU lists bits withheld because U > U_lambda (eq. 3).
	GatedU []int `json:"gated_u,omitempty"`
	// GatedE lists bits with acceptable uncertainty withheld because
	// E > E_lambda (eq. 4).
	GatedE []int `json:"gated_e,omitempty"`
}

// ForkInfo describes an eq. 5 duplication (fork) or an eq. 6 forced
// specification (force_proceed; Child absent).
type ForkInfo struct {
	// Child is the new instance's ID (fork only; children are never 0).
	Child int `json:"child,omitempty"`
	// Bit is the output bit index being specified.
	Bit int `json:"bit"`
	// U and E are the bit's uncertainty and estimated BER.
	U float64 `json:"u"`
	E float64 `json:"e"`
	// Value is the value the emitting instance takes (the fork child
	// takes !Value).
	Value bool `json:"value"`
}

// KeyInfo describes a recovered key (key_accepted, key_scored) or a
// finished instance without one (instance_dead).
type KeyInfo struct {
	// Key is the key bits as a '0'/'1' string (absent on
	// instance_dead, where no key exists).
	Key string `json:"key,omitempty"`
	// Iterations is the producing instance's iteration count.
	Iterations int `json:"iterations,omitempty"`
	// DIPs is the producing instance's recorded DIP count.
	DIPs int `json:"dips,omitempty"`
}

// ScoreInfo carries eq. 7-8 evaluation scores (key_scored, eval_end).
type ScoreInfo struct {
	FM float64 `json:"fm"`
	HD float64 `json:"hd"`
}

// EvalInfo describes the key-evaluation phase (eval_start, eval_end).
type EvalInfo struct {
	// Keys is the number of keys being (or just) scored.
	Keys int `json:"keys"`
	// NEval and EvalNs echo the evaluation sampling budget
	// (eval_start only).
	NEval  int `json:"neval,omitempty"`
	EvalNs int `json:"eval_ns,omitempty"`
	// DurationNs and OracleQueries report the phase's cost
	// (eval_end only).
	DurationNs    int64 `json:"duration_ns,omitempty"`
	OracleQueries int64 `json:"oracle_queries,omitempty"`
}

// TotalsInfo summarises the key-finding phase (attack_end).
type TotalsInfo struct {
	Keys             int   `json:"keys"`
	Iterations       int   `json:"iterations"`
	InstancesCreated int   `json:"instances_created"`
	PeakLive         int   `json:"peak_live"`
	Forks            int   `json:"forks"`
	ForceProceeds    int   `json:"force_proceeds"`
	DeadInstances    int   `json:"dead_instances"`
	OracleQueries    int64 `json:"oracle_queries"`
	Truncated        bool  `json:"truncated,omitempty"`
	DurationNs       int64 `json:"duration_ns"`
}

// ShareInfo reports portfolio clause-exchange activity for one raced
// miter solve (clause_shared).
type ShareInfo struct {
	// Exported / Imported are the clauses this instance's solvers
	// published to and accepted from the shared pool during the solve.
	Exported int64 `json:"exported"`
	Imported int64 `json:"imported"`
	// Pool is the shared pool's total clause count after the solve.
	Pool int `json:"pool"`
}

// RaceInfo describes a racing helper beating the base solver
// (race_winner).
type RaceInfo struct {
	// Winner names the winning helper configuration (e.g. "cfg1").
	Winner string `json:"winner"`
	// Status is the winning verdict's wire form (always "UNSAT": only
	// model-free verdicts may be taken from a helper).
	Status string `json:"status"`
	// Racers is the number of solvers in the race, base included.
	Racers int `json:"racers"`
}

// InterruptInfo describes why a run stopped early (interrupted).
type InterruptInfo struct {
	// Cause is the context error text ("context canceled" or
	// "context deadline exceeded").
	Cause string `json:"cause"`
	// Iterations is the total iteration count completed before the
	// interrupt.
	Iterations int `json:"iterations"`
}

// Tracer receives trace events. Implementations must be safe for
// concurrent Emit calls: the parallel instance scheduler emits from
// multiple goroutines.
type Tracer interface {
	Emit(ev Event)
}

// Emitter stamps events with a strictly increasing sequence number and
// a monotonic timestamp before forwarding them to a Tracer. A nil
// *Emitter is valid and drops everything, so attack engines can emit
// unconditionally.
//
// Stamping and forwarding happen under one lock, which yields the
// ordering contract consumers rely on: the sink receives events in Seq
// order (1, 2, 3, ...) with non-decreasing TNs, even when concurrent
// instance goroutines emit simultaneously.
type Emitter struct {
	t     Tracer
	start time.Time
	mu    sync.Mutex
	seq   int64
}

// NewEmitter wraps t; a nil t yields a nil (disabled) emitter. The
// monotonic clock starts now, so create the emitter at attack start.
func NewEmitter(t Tracer) *Emitter {
	if t == nil {
		return nil
	}
	return &Emitter{t: t, start: time.Now()}
}

// Enabled reports whether events will actually be forwarded; use it to
// skip building expensive payloads.
func (e *Emitter) Enabled() bool { return e != nil }

// Emit stamps ev's Seq and TNs and forwards it. Safe for concurrent
// use; no-op on a nil emitter.
func (e *Emitter) Emit(ev Event) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.seq++
	ev.Seq = e.seq
	ev.TNs = time.Since(e.start).Nanoseconds()
	e.t.Emit(ev)
}
