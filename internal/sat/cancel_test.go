package sat

import (
	"context"
	"testing"
	"time"
)

func TestSolveCtxAlreadyCancelled(t *testing.T) {
	s, v := mk(2)
	s.AddClause(PosLit(v[0]), PosLit(v[1]))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	solvesBefore := s.Stats.Solves
	if got := s.SolveCtx(ctx); got != Unknown {
		t.Errorf("SolveCtx(cancelled) = %v, want Unknown", got)
	}
	if s.Stats.Solves != solvesBefore+1 {
		t.Errorf("Solves = %d, want %d (cancelled calls still count)",
			s.Stats.Solves, solvesBefore+1)
	}
	// The solver must stay fully usable: a live context solves normally.
	if got := s.SolveCtx(context.Background()); got != Sat {
		t.Errorf("SolveCtx(live) after cancelled call = %v, want Sat", got)
	}
}

func TestSolveCtxDeadlineInterruptsSearch(t *testing.T) {
	// PHP(10, 9) needs far more than interruptCheckInterval conflicts,
	// so an expired deadline is observed at an amortized check long
	// before the proof completes.
	s := New()
	pigeonhole(s, 10, 9)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if got := s.SolveCtx(ctx); got != Unknown {
		t.Fatalf("SolveCtx under 1ms deadline = %v, want Unknown", got)
	}
	if ctx.Err() == nil {
		t.Fatal("deadline did not fire — Unknown came from somewhere else")
	}
	// The transient interrupt channel must not leak into later Solve
	// calls: a plain Solve on a small instance completes.
	if s.interrupt != nil {
		t.Fatal("interrupt channel survived SolveCtx return")
	}
}

func TestSolveCtxLiveContextMatchesSolve(t *testing.T) {
	// A context that never fires must not perturb the search result.
	mkPigeon := func() *Solver {
		s := New()
		pigeonhole(s, 5, 4)
		return s
	}
	plain := mkPigeon().Solve()
	withCtx := mkPigeon().SolveCtx(context.Background())
	if plain != withCtx {
		t.Errorf("SolveCtx = %v, Solve = %v; live context changed the result", withCtx, plain)
	}
	if withCtx != Unsat {
		t.Errorf("PHP(5,4) = %v, want Unsat", withCtx)
	}
}

func TestSolveCtxAssumptionsPassThrough(t *testing.T) {
	// SolveCtx must forward assumptions exactly like Solve.
	s, v := mk(2)
	s.AddClause(PosLit(v[0]), PosLit(v[1]))
	if got := s.SolveCtx(context.Background(), NegLit(v[0]), NegLit(v[1])); got != Unsat {
		t.Errorf("SolveCtx with contradictory assumptions = %v, want Unsat", got)
	}
	if got := s.SolveCtx(context.Background(), PosLit(v[0])); got != Sat {
		t.Errorf("SolveCtx with satisfiable assumption = %v, want Sat", got)
	}
}
