package sat

import (
	"math/rand"
	"testing"
)

// mk builds a solver over n variables.
func mk(n int) (*Solver, []Var) {
	s := New()
	vars := make([]Var, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	return s, vars
}

func lits(s *Solver, xs ...int) []Lit {
	out := make([]Lit, len(xs))
	for i, x := range xs {
		if x > 0 {
			out[i] = PosLit(Var(x - 1))
		} else {
			out[i] = NegLit(Var(-x - 1))
		}
	}
	return out
}

func TestLitEncoding(t *testing.T) {
	v := Var(5)
	p, n := PosLit(v), NegLit(v)
	if p.Var() != v || n.Var() != v {
		t.Error("Var() broken")
	}
	if p.Neg() || !n.Neg() {
		t.Error("Neg() broken")
	}
	if p.Not() != n || n.Not() != p {
		t.Error("Not() broken")
	}
	if p.String() != "6" || n.String() != "-6" {
		t.Errorf("String() = %q, %q", p, n)
	}
	if MkLit(v, true) != n || MkLit(v, false) != p {
		t.Error("MkLit broken")
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Error("Status strings wrong")
	}
}

func TestTrivialSat(t *testing.T) {
	s, v := mk(1)
	s.AddClause(PosLit(v[0]))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
	if !s.ModelValue(v[0]) {
		t.Error("model: x must be true")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s, v := mk(1)
	s.AddClause(PosLit(v[0]))
	s.AddClause(NegLit(v[0]))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v", got)
	}
	if s.Okay() {
		t.Error("solver should be permanently inconsistent")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s, _ := mk(1)
	if s.AddClause() {
		t.Error("empty clause must fail")
	}
	if s.Solve() != Unsat {
		t.Error("empty clause ⇒ Unsat")
	}
}

func TestEmptyFormulaSat(t *testing.T) {
	s, _ := mk(3)
	if s.Solve() != Sat {
		t.Error("empty formula over 3 vars should be Sat")
	}
}

func TestTautologyDropped(t *testing.T) {
	s, v := mk(1)
	s.AddClause(PosLit(v[0]), NegLit(v[0]))
	if s.NumClauses() != 0 {
		t.Error("tautology should not be stored")
	}
	if s.Solve() != Sat {
		t.Error("tautology-only formula is Sat")
	}
}

func TestDuplicateLiteralsDeduped(t *testing.T) {
	s, v := mk(2)
	s.AddClause(PosLit(v[0]), PosLit(v[0]), PosLit(v[1]))
	if s.Solve() != Sat {
		t.Error("should be Sat")
	}
}

func TestImplicationChain(t *testing.T) {
	// x0 ∧ (x0→x1) ∧ (x1→x2) ... forces all true.
	const n = 50
	s, v := mk(n)
	s.AddClause(PosLit(v[0]))
	for i := 0; i+1 < n; i++ {
		s.AddClause(NegLit(v[i]), PosLit(v[i+1]))
	}
	if s.Solve() != Sat {
		t.Fatal("chain should be Sat")
	}
	for i := 0; i < n; i++ {
		if !s.ModelValue(v[i]) {
			t.Fatalf("x%d should be true", i)
		}
	}
}

func TestXorChainUnsat(t *testing.T) {
	// (a⊕b) ∧ (b⊕c) ∧ (a⊕c) is UNSAT (odd cycle).
	s, v := mk(3)
	xor := func(a, b Var) {
		s.AddClause(PosLit(a), PosLit(b))
		s.AddClause(NegLit(a), NegLit(b))
	}
	xor(v[0], v[1])
	xor(v[1], v[2])
	xor(v[0], v[2])
	if s.Solve() != Unsat {
		t.Error("odd xor cycle should be Unsat")
	}
}

// pigeonhole encodes PHP(n+1, n): n+1 pigeons in n holes, UNSAT.
func pigeonhole(s *Solver, pigeons, holes int) {
	v := make([][]Var, pigeons)
	for p := range v {
		v[p] = make([]Var, holes)
		for h := range v[p] {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		c := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			c[h] = PosLit(v[p][h])
		}
		s.AddClause(c...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(NegLit(v[p1][h]), NegLit(v[p2][h]))
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := New()
		pigeonhole(s, n+1, n)
		if got := s.Solve(); got != Unsat {
			t.Errorf("PHP(%d,%d) = %v, want Unsat", n+1, n, got)
		}
	}
}

func TestPigeonholeSatWhenEnoughHoles(t *testing.T) {
	s := New()
	pigeonhole(s, 5, 5)
	if got := s.Solve(); got != Sat {
		t.Errorf("PHP(5,5) = %v, want Sat", got)
	}
}

func TestAssumptions(t *testing.T) {
	s, v := mk(3)
	// (x0 ∨ x1) ∧ (¬x0 ∨ x2)
	s.AddClause(PosLit(v[0]), PosLit(v[1]))
	s.AddClause(NegLit(v[0]), PosLit(v[2]))

	if s.Solve(PosLit(v[0]), NegLit(v[2])) != Unsat {
		t.Error("x0 ∧ ¬x2 should contradict")
	}
	// Solver must remain usable with different assumptions.
	if s.Solve(PosLit(v[0])) != Sat {
		t.Error("x0 alone should be Sat")
	}
	if !s.ModelValue(v[2]) {
		t.Error("x0 forces x2")
	}
	if s.Solve(NegLit(v[0]), NegLit(v[1])) != Unsat {
		t.Error("¬x0 ∧ ¬x1 should contradict clause 1")
	}
	if s.Solve() != Sat {
		t.Error("formula without assumptions is Sat")
	}
	if !s.Okay() {
		t.Error("assumption UNSAT must not poison the solver")
	}
}

func TestContradictoryAssumptions(t *testing.T) {
	s, v := mk(2)
	s.AddClause(PosLit(v[0]), PosLit(v[1]))
	if s.Solve(PosLit(v[0]), NegLit(v[0])) != Unsat {
		t.Error("a ∧ ¬a assumptions must be Unsat")
	}
	if s.Solve() != Sat {
		t.Error("solver must survive contradictory assumptions")
	}
}

func TestRedundantAssumptions(t *testing.T) {
	s, v := mk(2)
	s.AddClause(PosLit(v[0]))
	// Assumption already implied at root level.
	if s.Solve(PosLit(v[0]), PosLit(v[1])) != Sat {
		t.Error("implied assumption should still work")
	}
	if !s.ModelValue(v[1]) {
		t.Error("assumed x1 must hold in model")
	}
}

func TestIncrementalAddBetweenSolves(t *testing.T) {
	s, v := mk(3)
	s.AddClause(PosLit(v[0]), PosLit(v[1]))
	if s.Solve() != Sat {
		t.Fatal("phase 1 Sat")
	}
	s.AddClause(NegLit(v[0]))
	if s.Solve() != Sat {
		t.Fatal("phase 2 Sat")
	}
	if !s.ModelValue(v[1]) {
		t.Error("¬x0 forces x1")
	}
	s.AddClause(NegLit(v[1]))
	if s.Solve() != Unsat {
		t.Error("phase 3 should be Unsat")
	}
}

func TestNewVarAfterSolve(t *testing.T) {
	s, v := mk(1)
	s.AddClause(PosLit(v[0]))
	if s.Solve() != Sat {
		t.Fatal("Sat expected")
	}
	w := s.NewVar()
	s.AddClause(NegLit(w))
	if s.Solve() != Sat {
		t.Fatal("still Sat")
	}
	if s.ModelValue(w) {
		t.Error("w must be false")
	}
}

func TestModelEnumeration(t *testing.T) {
	// Enumerate all models of (x0 ∨ x1 ∨ x2) by blocking clauses.
	s, v := mk(3)
	s.AddClause(PosLit(v[0]), PosLit(v[1]), PosLit(v[2]))
	count := 0
	for s.Solve() == Sat {
		count++
		if count > 8 {
			t.Fatal("runaway enumeration")
		}
		block := make([]Lit, 3)
		for i, x := range v {
			block[i] = MkLit(x, s.ModelValue(x))
		}
		s.AddClause(block...)
	}
	if count != 7 {
		t.Errorf("model count = %d, want 7", count)
	}
}

// bruteForce returns whether the clause set is satisfiable over n vars.
func bruteForce(n int, clauses [][]Lit) bool {
	for m := 0; m < 1<<n; m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				val := m>>int(l.Var())&1 == 1
				if l.Neg() {
					val = !val
				}
				if val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		n := 4 + rng.Intn(9) // 4..12 vars
		m := 1 + rng.Intn(5*n)
		var clauses [][]Lit
		s := New()
		for i := 0; i < n; i++ {
			s.NewVar()
		}
		okSoFar := true
		for j := 0; j < m; j++ {
			k := 1 + rng.Intn(3)
			c := make([]Lit, k)
			for x := range c {
				c[x] = MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1)
			}
			clauses = append(clauses, c)
			if !s.AddClause(c...) {
				okSoFar = false
			}
		}
		var got Status
		if !okSoFar {
			got = Unsat
		} else {
			got = s.Solve()
		}
		want := bruteForce(n, clauses)
		if (got == Sat) != want {
			t.Fatalf("trial %d: solver=%v bruteforce=%v (n=%d, m=%d, clauses=%v)",
				trial, got, want, n, m, clauses)
		}
		if got == Sat {
			// Verify the model actually satisfies every clause.
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					if s.ModelLit(l) {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("trial %d: model does not satisfy %v", trial, c)
				}
			}
		}
	}
}

func TestRandomIncrementalAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(6)
		s := New()
		for i := 0; i < n; i++ {
			s.NewVar()
		}
		var clauses [][]Lit
		alive := true
		for phase := 0; phase < 4; phase++ {
			for j := 0; j < 1+rng.Intn(2*n); j++ {
				k := 1 + rng.Intn(3)
				c := make([]Lit, k)
				for x := range c {
					c[x] = MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1)
				}
				clauses = append(clauses, c)
				if !s.AddClause(c...) {
					alive = false
				}
			}
			var got Status
			if !alive {
				got = Unsat
			} else {
				got = s.Solve()
				if got == Unsat {
					alive = false
				}
			}
			want := bruteForce(n, clauses)
			if (got == Sat) != want {
				t.Fatalf("trial %d phase %d: solver=%v brute=%v", trial, phase, got, want)
			}
		}
	}
}

func TestRandomAssumptionsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(6)
		s := New()
		for i := 0; i < n; i++ {
			s.NewVar()
		}
		var clauses [][]Lit
		ok := true
		for j := 0; j < 2*n; j++ {
			k := 1 + rng.Intn(3)
			c := make([]Lit, k)
			for x := range c {
				c[x] = MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1)
			}
			clauses = append(clauses, c)
			if !s.AddClause(c...) {
				ok = false
			}
		}
		// A few rounds of random assumptions; the solver state must
		// stay consistent across them.
		for round := 0; round < 3; round++ {
			na := rng.Intn(3)
			assumps := make([]Lit, na)
			seen := map[Var]bool{}
			for x := 0; x < na; x++ {
				v := Var(rng.Intn(n))
				for seen[v] {
					v = Var(rng.Intn(n))
				}
				seen[v] = true
				assumps[x] = MkLit(v, rng.Intn(2) == 1)
			}
			all := append([][]Lit{}, clauses...)
			for _, a := range assumps {
				all = append(all, []Lit{a})
			}
			var got Status
			if !ok {
				got = Unsat
			} else {
				got = s.Solve(assumps...)
			}
			want := bruteForce(n, all)
			if (got == Sat) != want {
				t.Fatalf("trial %d round %d: solver=%v brute=%v assumps=%v clauses=%v",
					trial, round, got, want, assumps, clauses)
			}
			if got == Sat {
				for _, a := range assumps {
					if !s.ModelLit(a) {
						t.Fatalf("trial %d: assumption %v violated in model", trial, a)
					}
				}
			}
		}
	}
}

// TestAssumptionSurvivesDeepBackjump is the regression test for a bug
// where any conflict that backjumped below the assumption decision
// levels (e.g. on learning a unit clause) was misreported as
// assumption failure. A satisfiable instance solved under a fresh,
// unconstrained assumption literal must stay satisfiable no matter how
// much the search learns.
func TestAssumptionSurvivesDeepBackjump(t *testing.T) {
	s := New()
	pigeonhole(s, 7, 7) // Sat, with non-trivial search
	act := PosLit(s.NewVar())
	for round := 0; round < 5; round++ {
		if got := s.Solve(act); got != Sat {
			t.Fatalf("round %d: Solve(act) = %v on satisfiable formula", round, got)
		}
		if !s.ModelLit(act) {
			t.Fatal("assumption not honoured in model")
		}
		// Mimic model enumeration: block the found assignment under act.
		var block []Lit
		block = append(block, act.Not())
		for v := Var(0); v < Var(10); v++ {
			block = append(block, MkLit(v, s.ModelValue(v)))
		}
		s.AddClause(block...)
	}
	if s.Solve() != Sat {
		t.Fatal("formula must stay satisfiable without assumptions")
	}
}

func TestCloneIndependence(t *testing.T) {
	s, v := mk(4)
	s.AddClause(PosLit(v[0]), PosLit(v[1]))
	s.AddClause(NegLit(v[1]), PosLit(v[2]))
	if s.Solve() != Sat {
		t.Fatal("base Sat")
	}
	c := s.Clone()
	// Diverge: original gets ¬x0, clone gets x0.
	s.AddClause(NegLit(v[0]))
	c.AddClause(PosLit(v[0]))
	if s.Solve() != Sat || !s.ModelValue(v[1]) {
		t.Error("original: ¬x0 forces x1")
	}
	if c.Solve() != Sat || !c.ModelValue(v[0]) {
		t.Error("clone: x0 must hold")
	}
	// Push original to Unsat; clone must be unaffected.
	s.AddClause(NegLit(v[1]))
	if s.Solve() != Unsat {
		t.Error("original should now be Unsat")
	}
	if c.Solve() != Sat {
		t.Error("clone poisoned by original's clauses")
	}
}

func TestCloneAfterManyConflicts(t *testing.T) {
	s := New()
	pigeonhole(s, 6, 6) // Sat but with search effort
	if s.Solve() != Sat {
		t.Fatal("PHP(6,6) Sat")
	}
	c := s.Clone()
	if c.Solve() != Sat {
		t.Error("clone should solve too")
	}
	// Clone keeps working after more clauses.
	v := c.NewVar()
	c.AddClause(PosLit(v))
	if c.Solve() != Sat || !c.ModelValue(v) {
		t.Error("clone broken after growth")
	}
}

func TestConflictBudget(t *testing.T) {
	s := New()
	pigeonhole(s, 7, 6) // UNSAT, needs more than a handful of conflicts
	s.ConflictBudget = 5
	if got := s.Solve(); got != Unknown {
		t.Skipf("instance solved within tiny budget: %v", got)
	}
	s.ConflictBudget = 0
	if got := s.Solve(); got != Unsat {
		t.Errorf("unbounded solve = %v, want Unsat", got)
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := New()
	pigeonhole(s, 5, 4)
	s.Solve()
	if s.Stats.Conflicts == 0 || s.Stats.Decisions == 0 || s.Stats.Propagations == 0 {
		t.Errorf("stats not collected: %+v", s.Stats)
	}
	if s.Stats.Solves != 1 {
		t.Errorf("Solves = %d", s.Stats.Solves)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestAddClausePanicsOnUnknownVar(t *testing.T) {
	s, _ := mk(1)
	defer func() {
		if recover() == nil {
			t.Error("want panic for unallocated variable")
		}
	}()
	s.AddClause(PosLit(Var(10)))
}

// TestReduceDBUnderLongSearch forces enough conflicts that the learnt
// clause database is reduced at least once, and checks the solver
// stays correct afterwards (detach/removeWatch paths).
func TestReduceDBUnderLongSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	// A batch of medium random 3-SAT instances near the phase
	// transition: plenty of conflicts, mixed SAT/UNSAT.
	for trial := 0; trial < 6; trial++ {
		const n = 60
		s := New()
		s.NewVars(n)
		var clauses [][]Lit
		ok := true
		nClauses := 4260 * n / 1000 // ~4.26 clauses/var: phase transition
		for j := 0; j < nClauses; j++ {
			c := []Lit{
				MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1),
				MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1),
				MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1),
			}
			clauses = append(clauses, c)
			if !s.AddClause(c...) {
				ok = false
			}
		}
		var got Status
		if ok {
			got = s.Solve()
		} else {
			got = Unsat
		}
		if got == Sat {
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					if s.ModelLit(l) {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("trial %d: model violates %v", trial, c)
				}
			}
		}
		// The solver must remain usable for a follow-up query.
		v := s.NewVar()
		s.AddClause(PosLit(v))
		follow := s.Solve()
		if got == Sat && follow != Sat {
			t.Fatalf("trial %d: follow-up solve %v after Sat", trial, follow)
		}
	}
}

// TestReduceDBDirect exercises the clause-database reduction and the
// detach path explicitly (white-box: the organic trigger needs very
// long searches).
func TestReduceDBDirect(t *testing.T) {
	s := New()
	pigeonhole(s, 7, 6) // UNSAT with a few thousand conflicts
	if s.Solve() != Unsat {
		t.Fatal("PHP(7,6) must be Unsat")
	}
	// Re-prime a satisfiable solver with learnt clauses, then reduce.
	s2 := New()
	pigeonhole(s2, 7, 7)
	if s2.Solve() != Sat {
		t.Fatal("PHP(7,7) must be Sat")
	}
	learnt := len(s2.learnts)
	if learnt == 0 {
		t.Skip("search produced no retained learnt clauses")
	}
	s2.reduceDB()
	if s2.Stats.Removed == 0 && len(s2.learnts) == learnt {
		t.Error("reduceDB removed nothing")
	}
	// Solver must stay correct after reduction.
	if s2.Solve() != Sat {
		t.Error("solver broken after reduceDB")
	}
}

func TestClausesAccessor(t *testing.T) {
	s, v := mk(3)
	s.AddClause(PosLit(v[0]), PosLit(v[1]))
	s.AddClause(NegLit(v[2])) // unit → root assignment
	cl := s.Clauses()
	if len(cl) != 2 {
		t.Fatalf("Clauses() = %d entries, want 2", len(cl))
	}
	// Mutating the copy must not affect the solver.
	cl[0][0] = PosLit(v[2])
	if s.Solve() != Sat {
		t.Error("solver state corrupted by Clauses() mutation")
	}
}

func TestModelValueOutOfRange(t *testing.T) {
	s, v := mk(1)
	s.AddClause(PosLit(v[0]))
	if s.Solve() != Sat {
		t.Fatal("setup")
	}
	if s.ModelValue(Var(99)) {
		t.Error("out-of-range model value should be false")
	}
}

func TestGraphColoringSat(t *testing.T) {
	// 3-coloring of a 5-cycle (possible) and of K4 (impossible).
	color := func(edges [][2]int, nNodes, k int) Status {
		s := New()
		vars := make([][]Var, nNodes)
		for i := range vars {
			vars[i] = make([]Var, k)
			cl := make([]Lit, k)
			for c := range vars[i] {
				vars[i][c] = s.NewVar()
				cl[c] = PosLit(vars[i][c])
			}
			s.AddClause(cl...)
		}
		for _, e := range edges {
			for c := 0; c < k; c++ {
				s.AddClause(NegLit(vars[e[0]][c]), NegLit(vars[e[1]][c]))
			}
		}
		return s.Solve()
	}
	cycle5 := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	if color(cycle5, 5, 3) != Sat {
		t.Error("C5 is 3-colorable")
	}
	k4 := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if color(k4, 4, 3) != Unsat {
		t.Error("K4 is not 3-colorable")
	}
}

func BenchmarkSolvePigeonhole8(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New()
		pigeonhole(s, 8, 7)
		if s.Solve() != Unsat {
			b.Fatal("PHP(8,7) must be Unsat")
		}
	}
}

func BenchmarkSolveRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		const n = 100
		s := New()
		for j := 0; j < n; j++ {
			s.NewVar()
		}
		for j := 0; j < 4*n; j++ {
			s.AddClause(
				MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1),
				MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1),
				MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1),
			)
		}
		s.Solve()
	}
}
