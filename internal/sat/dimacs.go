package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MaxDIMACSVars bounds the variable count ParseDIMACS accepts; a bare
// literal like "100000000" must not allocate gigabytes.
const MaxDIMACSVars = 1 << 20

// ParseDIMACS reads a CNF formula in DIMACS format into a fresh
// solver. The "p cnf <vars> <clauses>" header is honoured for variable
// pre-allocation but the clause count is not enforced (real-world
// files frequently lie). Comment lines ("c ...") and the optional "%"
// trailer used by some benchmark suites are skipped. Formulas beyond
// MaxDIMACSVars variables are rejected.
func ParseDIMACS(r io.Reader) (*Solver, error) {
	s := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var clause []Lit
	lineNo := 0
	sawPercent := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == 'c' {
			continue
		}
		if line[0] == '%' {
			sawPercent = true
			continue
		}
		if sawPercent && line == "0" {
			continue // "%\n0" benchmark trailer
		}
		if line[0] == 'p' {
			f := strings.Fields(line)
			if len(f) < 4 || f[1] != "cnf" {
				return nil, fmt.Errorf("sat: dimacs line %d: malformed header %q", lineNo, line)
			}
			n, err := strconv.Atoi(f[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("sat: dimacs line %d: bad variable count", lineNo)
			}
			if n > MaxDIMACSVars {
				return nil, fmt.Errorf("sat: dimacs line %d: %d variables exceed limit %d", lineNo, n, MaxDIMACSVars)
			}
			s.NewVars(n)
			continue
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: dimacs line %d: bad literal %q", lineNo, tok)
			}
			if v == 0 {
				s.AddClause(clause...)
				clause = clause[:0]
				continue
			}
			idx := v
			if idx < 0 {
				idx = -idx
			}
			if idx > MaxDIMACSVars {
				return nil, fmt.Errorf("sat: dimacs line %d: literal %d exceeds variable limit %d", lineNo, v, MaxDIMACSVars)
			}
			// Tolerate files whose header undercounts (or is absent).
			for idx > s.NumVars() {
				s.NewVar()
			}
			clause = append(clause, MkLit(Var(idx-1), v < 0))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sat: dimacs read: %w", err)
	}
	if len(clause) > 0 {
		// Final clause without terminating 0 — accept it.
		s.AddClause(clause...)
	}
	return s, nil
}

// WriteDIMACS dumps the solver's current problem clauses (after
// top-level simplification) plus its root-level unit assignments in
// DIMACS format. Learnt clauses are not emitted.
func (s *Solver) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if !s.okay {
		// The formula is inconsistent at the root; an empty clause
		// preserves that through the round trip.
		fmt.Fprintf(bw, "p cnf %d 1\n0\n", s.NumVars())
		return bw.Flush()
	}
	units := 0
	for _, l := range s.trail {
		if s.level[l.Var()] == 0 {
			units++
		}
	}
	fmt.Fprintf(bw, "p cnf %d %d\n", s.NumVars(), len(s.clauses)+units)
	for _, l := range s.trail {
		if s.level[l.Var()] == 0 {
			fmt.Fprintf(bw, "%s 0\n", l)
		}
	}
	for _, c := range s.clauses {
		for _, l := range c.lits {
			fmt.Fprintf(bw, "%s ", l)
		}
		fmt.Fprintln(bw, "0")
	}
	return bw.Flush()
}
