package sat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestParseDIMACSSimple(t *testing.T) {
	src := `c a comment
p cnf 3 2
1 -3 0
2 3 -1 0
`
	s, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars() != 3 {
		t.Errorf("vars = %d", s.NumVars())
	}
	if s.Solve() != Sat {
		t.Error("formula should be Sat")
	}
}

func TestParseDIMACSUnsat(t *testing.T) {
	src := "p cnf 1 2\n1 0\n-1 0\n"
	s, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != Unsat {
		t.Error("x ∧ ¬x should be Unsat")
	}
}

func TestParseDIMACSNoHeader(t *testing.T) {
	s, err := ParseDIMACS(strings.NewReader("1 2 0\n-1 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != Sat || !s.ModelValue(Var(1)) {
		t.Error("headerless parse broken")
	}
}

func TestParseDIMACSUndercountedHeader(t *testing.T) {
	s, err := ParseDIMACS(strings.NewReader("p cnf 1 1\n1 5 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars() < 5 {
		t.Errorf("vars = %d, want ≥5", s.NumVars())
	}
}

func TestParseDIMACSMissingFinalZero(t *testing.T) {
	s, err := ParseDIMACS(strings.NewReader("p cnf 2 1\n1 2"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != Sat {
		t.Error("trailing clause without 0 not accepted")
	}
}

func TestParseDIMACSPercentTrailer(t *testing.T) {
	src := "p cnf 1 1\n1 0\n%\n0\n"
	s, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != Sat {
		t.Error("benchmark-style trailer broke the parse")
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	for _, src := range []string{
		"p cnf x 2\n",
		"p dnf 3 2\n",
		"p cnf 2 1\n1 frog 0\n",
	} {
		if _, err := ParseDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("want parse error for %q", src)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(6)
		s := New()
		s.NewVars(n)
		var clauses [][]Lit
		ok := true
		for j := 0; j < 3*n; j++ {
			k := 1 + rng.Intn(3)
			c := make([]Lit, k)
			for x := range c {
				c[x] = MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1)
			}
			clauses = append(clauses, c)
			if !s.AddClause(c...) {
				ok = false
			}
		}
		var buf bytes.Buffer
		if err := s.WriteDIMACS(&buf); err != nil {
			t.Fatal(err)
		}
		s2, err := ParseDIMACS(&buf)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		var want, got Status
		if ok {
			want = s.Solve()
		} else {
			want = Unsat
		}
		got = s2.Solve()
		if want != got {
			t.Fatalf("trial %d: original %v, round-trip %v", trial, want, got)
		}
	}
}

func TestWriteDIMACSAfterSolve(t *testing.T) {
	s, v := mk(3)
	s.AddClause(PosLit(v[0]), PosLit(v[1]))
	s.AddClause(NegLit(v[0]))
	if s.Solve() != Sat {
		t.Fatal("setup")
	}
	var buf bytes.Buffer
	if err := s.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "-1 0") {
		t.Errorf("root-level unit missing from dump:\n%s", out)
	}
}
