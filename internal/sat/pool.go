package sat

import (
	"math"
	"sync"
)

// Pool is the shared, append-only learnt-clause store behind portfolio
// solving (docs/SOLVER.md). Solvers publish learnts through a
// PoolClient bound as their exporter and pick up other solvers'
// clauses through the same client bound as their importer.
//
// Soundness across forked StatSAT instances is decided by derivation
// watermarks, not by clause literals: every clause carries the fork
// epoch of the newest formula addition its derivation touched, and a
// clause travels from instance S to instance T only when that
// watermark predates the point where S's and T's formulas diverged.
// (The naive "no forked-bit literals" rule is not enough — resolution
// can eliminate the forked bit from a clause whose derivation still
// depends on it.) Within one instance — its base solver and its racing
// helpers — every clause is eligible regardless of watermark, since
// they all solve the same formula.
//
// The pool is append-only and capacity-bounded: once full, new
// publishes are counted and dropped, so importer cursors stay valid
// forever and memory stays bounded on long runs.
type Pool struct {
	mu      sync.Mutex
	entries []poolEntry
	epoch   int32
	chains  map[int][]forkPoint // instance id -> root-path fork points
	nextSrc int
	cap     int
	dropped int64
}

type poolEntry struct {
	src    int // publishing client id (entries are never re-imported by their publisher)
	origin int // instance the publisher solves
	epoch  int32
	lits   []Lit
}

// forkPoint is one step of an instance's ancestry: the instance that
// split off and the global epoch at which it did.
type forkPoint struct {
	inst int
	born int32
}

// DefaultPoolCap bounds the pool's entry count (publishes past it are
// dropped, never blocking a solver).
const DefaultPoolCap = 1 << 14

// NewPool returns an empty pool holding at most capacity clauses
// (DefaultPoolCap when capacity <= 0).
func NewPool(capacity int) *Pool {
	if capacity <= 0 {
		capacity = DefaultPoolCap
	}
	return &Pool{chains: map[int][]forkPoint{}, cap: capacity}
}

// RegisterRoot records id as a lineage root (epoch 0 ancestry). Attach
// does this implicitly; RegisterRoot exists for symmetry and tests.
func (p *Pool) RegisterRoot(id int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.registerLocked(id)
}

func (p *Pool) registerLocked(id int) {
	if _, ok := p.chains[id]; !ok {
		p.chains[id] = []forkPoint{{inst: id, born: 0}}
	}
}

// Fork registers child as a fork of parent and returns the new global
// epoch. Both siblings' solvers must adopt it (Solver.SetEpoch) BEFORE
// the diverging key-bit pins are added, so everything derived from a
// pin carries a watermark that blocks it from crossing the fork.
func (p *Pool) Fork(parent, child int) int32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.registerLocked(parent)
	p.epoch++
	pc := p.chains[parent]
	nc := make([]forkPoint, len(pc), len(pc)+1)
	copy(nc, pc)
	p.chains[child] = append(nc, forkPoint{inst: child, born: p.epoch})
	return p.epoch
}

// Epoch returns the current global fork epoch.
func (p *Pool) Epoch() int32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// Size returns the number of clauses currently held.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// Dropped returns the number of publishes rejected by the capacity
// bound.
func (p *Pool) Dropped() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// diverge returns the first epoch at which the two ancestry chains
// split: clauses watermarked strictly before it are sound in both
// instances. Identical chains (same instance) never diverge.
func diverge(ca, cb []forkPoint) int32 {
	i := 0
	for i < len(ca) && i < len(cb) && ca[i] == cb[i] {
		i++
	}
	d := int32(math.MaxInt32)
	if i < len(ca) && ca[i].born < d {
		d = ca[i].born
	}
	if i < len(cb) && cb[i].born < d {
		d = cb[i].born
	}
	return d
}

// Attach creates a client publishing and importing on behalf of the
// given instance. Each solver in the portfolio gets its own client —
// the client's cursor and counters are part of that solver's state and
// must only be used from the goroutine driving it.
func (p *Pool) Attach(origin int) *PoolClient {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.registerLocked(origin)
	p.nextSrc++
	return &PoolClient{p: p, origin: origin, src: p.nextSrc}
}

// PoolClient is one solver's handle on the pool. Export matches
// Solver.SetExporter's hook signature, Imports matches
// Solver.SetImporter's.
type PoolClient struct {
	p        *Pool
	origin   int
	src      int
	cursor   int
	exported int64
	imported int64
}

// Export publishes a learnt clause (copying lits). Filtering by size
// and LBD happens solver-side (SetExporter), so this only applies the
// capacity bound.
func (c *PoolClient) Export(lits []Lit, lbd, epoch int32) {
	p := c.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.entries) >= p.cap {
		p.dropped++
		return
	}
	p.entries = append(p.entries, poolEntry{
		src: c.src, origin: c.origin, epoch: epoch,
		lits: append([]Lit(nil), lits...),
	})
	c.exported++
}

// Imports returns the clauses published since the last call that are
// sound for this client's instance: everything from the same instance,
// and from other instances only clauses watermarked before the two
// lineages diverged. The returned lits alias pool storage — read-only.
func (c *PoolClient) Imports() []Import {
	p := c.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if c.cursor >= len(p.entries) {
		return nil
	}
	myChain := p.chains[c.origin]
	var out []Import
	for _, e := range p.entries[c.cursor:] {
		if e.src == c.src {
			continue
		}
		if e.origin != c.origin && e.epoch >= diverge(p.chains[e.origin], myChain) {
			continue
		}
		out = append(out, Import{Lits: e.lits, Epoch: e.epoch})
	}
	c.cursor = len(p.entries)
	c.imported += int64(len(out))
	return out
}

// Stats returns the client's lifetime export/import counts.
func (c *PoolClient) Stats() (exported, imported int64) {
	c.p.mu.Lock()
	defer c.p.mu.Unlock()
	return c.exported, c.imported
}
