package sat

import (
	"math"
	"math/rand"
	"testing"
)

// litsOf builds a clause literal slice from signed ints (+v / -v, 1-based).
func litsOf(vs ...int) []Lit {
	out := make([]Lit, len(vs))
	for i, v := range vs {
		if v > 0 {
			out[i] = PosLit(Var(v - 1))
		} else {
			out[i] = NegLit(Var(-v - 1))
		}
	}
	return out
}

// forkTree builds the test lineage: root 0, children 1 and 2, and 3
// forked from 1 (epochs 1, 2, 3).
func forkTree(t *testing.T) *Pool {
	t.Helper()
	p := NewPool(0)
	p.RegisterRoot(0)
	e1 := p.Fork(0, 1)
	e2 := p.Fork(0, 2)
	e3 := p.Fork(1, 3)
	if e1 != 1 || e2 != 2 || e3 != 3 {
		t.Fatalf("fork epochs = %d,%d,%d, want 1,2,3", e1, e2, e3)
	}
	if p.Epoch() != 3 {
		t.Fatalf("Epoch() = %d, want 3", p.Epoch())
	}
	return p
}

func TestPoolForkDivergenceMatrix(t *testing.T) {
	// A fresh pool per case: importer cursors start at the pool's
	// beginning, so entries must not leak between cases.
	cases := []struct {
		name     string
		origin   int
		epoch    int32
		eligible map[int]bool // importer origin -> should receive
	}{
		{"pre-fork from root", 0, 0, map[int]bool{1: true, 2: true, 3: true}},
		{"post-fork-1 from root", 0, 1, map[int]bool{1: false, 2: true, 3: false}},
		{"post-fork-2 from child 1", 1, 2, map[int]bool{0: false, 2: false, 3: true}},
		{"newest from child 1", 1, 3, map[int]bool{0: false, 2: false, 3: false}},
	}
	for _, tc := range cases {
		p := forkTree(t)
		pub := p.Attach(tc.origin)
		pub.Export(litsOf(1, 2), 2, tc.epoch)
		for dst, want := range tc.eligible {
			imp := p.Attach(dst)
			got := len(imp.Imports()) > 0
			if got != want {
				t.Errorf("%s: origin %d epoch %d -> instance %d: imported=%v, want %v",
					tc.name, tc.origin, tc.epoch, dst, got, want)
			}
		}
		// Same instance is always eligible, watermark regardless.
		same := p.Attach(tc.origin)
		if len(same.Imports()) == 0 {
			t.Errorf("%s: same-origin import blocked", tc.name)
		}
		// The publisher never re-imports its own clause.
		if n := len(pub.Imports()); n != 0 {
			t.Errorf("%s: publisher re-imported %d own clauses", tc.name, n)
		}
	}
}

func TestPoolDivergeChains(t *testing.T) {
	root := []forkPoint{{0, 0}}
	c1 := []forkPoint{{0, 0}, {1, 1}}
	c2 := []forkPoint{{0, 0}, {2, 2}}
	c3 := []forkPoint{{0, 0}, {1, 1}, {3, 3}}
	for _, tc := range []struct {
		a, b []forkPoint
		want int32
	}{
		{root, root, math.MaxInt32}, // identical lineage never diverges
		{root, c1, 1},
		{c1, root, 1},
		{root, c3, 1},
		{c1, c2, 1}, // sibling subtrees split at the earlier fork
		{c1, c3, 3},
		{c2, c3, 1},
	} {
		if got := diverge(tc.a, tc.b); got != tc.want {
			t.Errorf("diverge(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestPoolCapacityBound(t *testing.T) {
	p := NewPool(2)
	c := p.Attach(0)
	for i := 0; i < 5; i++ {
		c.Export(litsOf(1), 1, 0)
	}
	if p.Size() != 2 {
		t.Errorf("Size() = %d, want 2", p.Size())
	}
	if p.Dropped() != 3 {
		t.Errorf("Dropped() = %d, want 3", p.Dropped())
	}
	exp, _ := c.Stats()
	if exp != 2 {
		t.Errorf("client exported = %d, want 2 (drops don't count)", exp)
	}
}

func TestPoolImportCursor(t *testing.T) {
	p := NewPool(0)
	pub, sub := p.Attach(0), p.Attach(0)
	pub.Export(litsOf(1, 2), 2, 0)
	if n := len(sub.Imports()); n != 1 {
		t.Fatalf("first Imports() = %d clauses, want 1", n)
	}
	if n := len(sub.Imports()); n != 0 {
		t.Errorf("repeated Imports() = %d clauses, want 0 (cursor advanced)", n)
	}
	pub.Export(litsOf(2, 3), 2, 0)
	if n := len(sub.Imports()); n != 1 {
		t.Errorf("incremental Imports() = %d clauses, want 1", n)
	}
	if _, imp := sub.Stats(); imp != 2 {
		t.Errorf("client imported = %d, want 2", imp)
	}
}

// TestPoolShareSoundnessRandom is the clause-sharing soundness property
// test: on randomized formulas, fork two siblings with opposite unit
// pins (the StatSAT eq. 5 shape), let sibling A learn and export under
// random probing, and check that everything the pool offers sibling B
//
//	(a) is logically implied by B's pre-fork formula alone, and
//	(b) never flips B's SAT/UNSAT answer, plain or under assumptions,
//	    against an import-free control clone.
func TestPoolShareSoundnessRandom(t *testing.T) {
	const (
		nVars    = 30
		nClauses = 105 // ratio 3.5: mostly SAT, still conflict-rich
		seeds    = 8
	)
	totalImports := 0
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base := make([][]Lit, 0, nClauses)
		for i := 0; i < nClauses; i++ {
			c := make([]Lit, 3)
			for j := range c {
				c[j] = MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 1)
			}
			base = append(base, c)
		}
		probe := func(r *rand.Rand) []Lit {
			a := make([]Lit, 3)
			for j := range a {
				a[j] = MkLit(Var(r.Intn(nVars)), r.Intn(2) == 1)
			}
			return a
		}

		pool := NewPool(0)
		sA := New()
		sA.NewVars(nVars)
		for _, c := range base {
			sA.AddClause(c...)
		}
		clientA := pool.Attach(0)
		sA.SetExporter(clientA.Export, 50, 50)

		// Pre-fork probing: epoch-0 learnts flow to the pool.
		probeRng := rand.New(rand.NewSource(seed + 1000))
		for k := 0; k < 4 && sA.Okay(); k++ {
			sA.Solve(probe(probeRng)...)
		}
		if !sA.Okay() {
			continue // formula died at the root; nothing to share
		}

		// Fork: clone, bump the epoch, then pin opposite key-bit values.
		sB := sA.Clone()
		e := pool.Fork(0, 1)
		sA.SetEpoch(e)
		sB.SetEpoch(e)
		pin := Var(rng.Intn(nVars))
		sA.AddClause(PosLit(pin))
		sB.AddClause(NegLit(pin))

		// Post-fork probing on A: learnts touching the pin carry
		// watermark e and must not cross to B.
		for k := 0; k < 6 && sA.Okay(); k++ {
			sA.Solve(probe(probeRng)...)
		}

		// (a) Every clause eligible for B is implied by the shared
		// pre-fork formula: asserting its negation must be UNSAT.
		checker := New()
		checker.NewVars(nVars)
		for _, c := range base {
			checker.AddClause(c...)
		}
		verifier := pool.Attach(1)
		offered := verifier.Imports()
		for _, im := range offered {
			if im.Epoch >= e {
				t.Fatalf("seed %d: import watermark %d >= divergence %d", seed, im.Epoch, e)
			}
			neg := make([]Lit, len(im.Lits))
			for i, l := range im.Lits {
				neg[i] = l.Not()
			}
			if checker.Okay() && checker.Solve(neg...) != Unsat {
				t.Fatalf("seed %d: eligible clause %v not implied by pre-fork formula", seed, im.Lits)
			}
		}
		totalImports += len(offered)

		// A same-origin client sees at least as much as the fork
		// sibling (lineage filtering only ever removes clauses).
		sameOrigin := pool.Attach(0)
		if n := len(sameOrigin.Imports()); n < len(offered) {
			t.Errorf("seed %d: same-origin sees %d < sibling's %d", seed, n, len(offered))
		}

		// (b) Importing never flips B's verdicts vs an import-free
		// control on the same probe sequence.
		control := sB.Clone()
		clientB := pool.Attach(1)
		sB.SetImporter(clientB.Imports)
		verdictRng := rand.New(rand.NewSource(seed + 2000))
		if got, want := sB.Solve(), control.Solve(); got != want {
			t.Fatalf("seed %d: plain verdict flipped: %v vs control %v", seed, got, want)
		}
		for k := 0; k < 8; k++ {
			as := probe(verdictRng)
			got, want := sB.Solve(as...), control.Solve(as...)
			if got != want {
				t.Fatalf("seed %d probe %d: verdict flipped under %v: %v vs control %v",
					seed, k, as, got, want)
			}
		}
	}
	if totalImports == 0 {
		t.Fatal("property test vacuous: no clause ever crossed the pool")
	}
}

// TestImportSkipsUnknownVars checks that a pooled clause mentioning
// variables the importer has not allocated yet is deferred, not
// mis-applied.
func TestImportSkipsUnknownVars(t *testing.T) {
	p := NewPool(0)
	pub := p.Attach(0)
	pub.Export(litsOf(40, -41), 2, 0) // vars 39/40: beyond the importer
	pub.Export(litsOf(1, 2), 2, 0)

	s := New()
	s.NewVars(3)
	s.AddClause(litsOf(-1, 2)...)
	sub := p.Attach(0)
	s.SetImporter(sub.Imports)
	if st := s.Solve(); st != Sat {
		t.Fatalf("Solve = %v, want Sat", st)
	}
	if s.Stats.Imported != 1 {
		t.Errorf("Imported = %d, want 1 (out-of-range clause skipped)", s.Stats.Imported)
	}
}

func TestSetConfigKnobs(t *testing.T) {
	s := New()
	s.NewVars(3)
	if s.Solve() != Sat {
		t.Fatal("empty formula unsat?")
	}
	for v := Var(0); v < 3; v++ {
		if s.ModelValue(v) {
			t.Fatalf("default phase should pick false for var %d", v)
		}
	}

	inv := New()
	inv.NewVars(3)
	inv.SetConfig(Config{PhaseTrue: true})
	if inv.Solve() != Sat {
		t.Fatal("empty formula unsat?")
	}
	for v := Var(0); v < 3; v++ {
		if !inv.ModelValue(v) {
			t.Fatalf("PhaseTrue should pick true for var %d", v)
		}
	}
	// New variables allocated after SetConfig inherit the phase too.
	nv := inv.NewVar()
	if inv.Solve() != Sat || !inv.ModelValue(nv) {
		t.Error("PhaseTrue not applied to later vars")
	}

	// Zero-valued fields keep defaults; set fields stick.
	tuned := New()
	tuned.SetConfig(Config{VarDecay: 0.85, RestartBase: 50})
	tuned.SetConfig(Config{}) // no-op
	if tuned.varDecay != 0.85 || tuned.restartBase != 50 {
		t.Errorf("config lost: decay=%v base=%d", tuned.varDecay, tuned.restartBase)
	}
}

func TestClauseJournal(t *testing.T) {
	s := New()
	s.NewVars(4)
	s.AddClause(litsOf(1, 2)...) // pre-log: not journaled
	s.EnableLog()
	s.AddClause(litsOf(-1, 3)...)
	s.SetEpoch(5)
	s.AddClause(litsOf(2, 4)...)
	s.SetEpoch(3) // backwards: ignored
	if s.Epoch() != 5 {
		t.Errorf("Epoch() = %d, want 5 (forward-only)", s.Epoch())
	}
	if s.LogLen() != 2 {
		t.Fatalf("LogLen() = %d, want 2", s.LogLen())
	}
	log := s.LogSince(0)
	if log[0].Epoch != 0 || log[1].Epoch != 5 {
		t.Errorf("journal epochs = %d,%d, want 0,5", log[0].Epoch, log[1].Epoch)
	}
	if len(s.LogSince(1)) != 1 {
		t.Errorf("LogSince(1) = %d entries, want 1", len(s.LogSince(1)))
	}

	// Replaying the journal into a clone of the pre-log solver yields
	// the same formula.
	r := New()
	r.NewVars(4)
	r.AddClause(litsOf(1, 2)...)
	for _, e := range s.LogSince(0) {
		r.AddClauseEpoch(e.Epoch, e.Lits...)
	}
	if r.NumClauses() != s.NumClauses() {
		t.Errorf("replayed %d clauses, original has %d", r.NumClauses(), s.NumClauses())
	}
}

// BenchmarkPoolExportImport is the shared pool's steady-state
// publish/drain cycle: one publisher exports a ternary clause, one
// subscriber (same instance, so always eligible) picks it up.
func BenchmarkPoolExportImport(b *testing.B) {
	pool := NewPool(b.N + 1) // never hit the capacity drop path
	pub := pool.Attach(0)
	sub := pool.Attach(0)
	lits := litsOf(1, -2, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pub.Export(lits, 2, 0)
		if got := sub.Imports(); len(got) != 1 {
			b.Fatalf("imports = %d, want 1", len(got))
		}
	}
}

// BenchmarkPoolImportsFiltered measures the lineage filter on the
// import path: the subscriber sits on a forked sibling, so every
// post-fork entry is walked and rejected by the divergence check.
func BenchmarkPoolImportsFiltered(b *testing.B) {
	pool := NewPool(b.N + 1)
	epoch := pool.Fork(0, 1)
	pub := pool.Attach(0)
	sub := pool.Attach(1)
	lits := litsOf(1, -2, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pub.Export(lits, 2, epoch) // post-fork watermark: ineligible in 1
		if got := sub.Imports(); len(got) != 0 {
			b.Fatalf("imports = %d, want 0", len(got))
		}
	}
}
