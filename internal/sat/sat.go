// Package sat implements a from-scratch CDCL (conflict-driven clause
// learning) Boolean satisfiability solver in the MiniSat lineage:
// two-watched-literal propagation, first-UIP conflict analysis with
// clause minimisation, VSIDS variable activities, phase saving, Luby
// restarts, activity-based learnt-clause reduction, incremental clause
// addition between calls, solving under assumptions, and deep cloning
// (used by StatSAT instance duplication).
//
// The paper's reference implementation drives Lingeling through the
// Subramanyan et al. SAT-attack framework; this package is the
// self-contained substitute.
package sat

import (
	"context"
	"fmt"
	"sort"
)

// Var is a 0-based variable index.
type Var int32

// Lit is a literal: variable 2*v for the positive phase, 2*v+1 for the
// negative phase.
type Lit int32

// MkLit builds a literal from a variable and a sign (true = negated).
func MkLit(v Var, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// PosLit and NegLit are convenience constructors.
func PosLit(v Var) Lit { return MkLit(v, false) }
func NegLit(v Var) Lit { return MkLit(v, true) }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// String renders the literal DIMACS-style (1-based, minus = negated).
func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("-%d", l.Var()+1)
	}
	return fmt.Sprintf("%d", l.Var()+1)
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func boolToLbool(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

func (b lbool) neg() lbool {
	switch b {
	case lTrue:
		return lFalse
	case lFalse:
		return lTrue
	}
	return lUndef
}

type clause struct {
	lits   []Lit
	act    float32
	lbd    int32
	epoch  int32 // derivation watermark (see vepoch); 0 = pre-fork formula
	learnt bool
}

type watcher struct {
	c       *clause
	blocker Lit
}

// Status is the outcome of a Solve call.
type Status int8

// Solve outcomes.
const (
	// Unknown means the solver stopped before reaching a verdict
	// (budget exhausted).
	Unknown Status = iota
	// Sat means a model was found.
	Sat
	// Unsat means the formula (under the given assumptions) has no model.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	}
	return "UNKNOWN"
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	clauses []*clause // problem clauses
	learnts []*clause // learnt clauses
	watches [][]watcher

	assigns  []lbool
	level    []int32
	reason   []*clause
	trail    []Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	varDecay float64
	order    heap // max-activity variable heap
	phase    []lbool

	claInc   float64
	claDecay float64

	// Fork-epoch tracking for sound clause sharing (docs/SOLVER.md).
	// epoch stamps clauses added from now on; vepoch records, per
	// variable, the derivation watermark of its root-level assignment
	// (conflict analysis skips level-0 literals, so the watermark of a
	// learnt clause must absorb them here instead).
	epoch        int32
	vepoch       []int32
	analyzeWM    int32 // scratch: watermark of the learnt being derived
	pendingEpoch int32 // scratch: epoch for the next reason-less root enqueue
	defaultPhase lbool // initial saved phase for new variables

	// Portfolio hooks: exporter receives every learnt that passes the
	// size/LBD filter; importer is drained at Solve start and at each
	// restart boundary. Neither is copied by Clone.
	exporter     func(lits []Lit, lbd, epoch int32)
	exportMaxLen int
	exportMaxLBD int32
	importer     func() []Import

	// Clause journal for portfolio helper sync: when enabled, every
	// AddClause call is recorded verbatim (pre-simplification) with its
	// epoch so a lagging clone can replay it. Not copied by Clone.
	logging bool
	log     []LogEntry

	okay bool // false once a top-level conflict is established

	// Luby restart state.
	restartBase int

	// analyze scratch.
	seen       []byte
	analyzeBuf []Lit

	// Statistics.
	Stats Statistics

	// Budget limits a single Solve call; 0 means unlimited.
	ConflictBudget int64

	// interrupt, when non-nil, aborts the search once the channel is
	// closed (checked amortized over conflicts, like ConflictBudget).
	// Set transiently by SolveCtx; never copied by Clone.
	interrupt <-chan struct{}

	// Model caching: last solution, indexed by var.
	model []lbool
}

// Statistics accumulates solver counters across Solve calls.
type Statistics struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	Learnt       int64
	Removed      int64
	Solves       int64
	Exported     int64 // learnts handed to the portfolio exporter
	Imported     int64 // shared clauses accepted from the importer
}

// Snapshot is a point-in-time view of a solver: current formula size
// plus the cumulative Statistics counters. It is a plain value — safe
// to retain after the solver moves on.
type Snapshot struct {
	Vars    int
	Clauses int
	Learnts int // learnt clauses currently retained (Statistics.Learnt counts all ever learnt)
	Statistics
}

// Snapshot captures the solver's current counters. The solver is not
// goroutine-safe, so call this only from the goroutine driving it.
func (s *Solver) Snapshot() Snapshot {
	return Snapshot{
		Vars:       s.NumVars(),
		Clauses:    s.NumClauses(),
		Learnts:    s.NumLearnts(),
		Statistics: s.Stats,
	}
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{
		varInc:       1,
		varDecay:     0.95,
		claInc:       1,
		claDecay:     0.999,
		okay:         true,
		restartBase:  100,
		defaultPhase: lFalse,
	}
}

// Config collects the search-strategy knobs a portfolio varies between
// otherwise-identical racing solvers. Zero values keep the solver's
// current setting, so Config{} is a no-op.
type Config struct {
	// VarDecay is the VSIDS activity decay factor (default 0.95;
	// smaller = more agile, larger = more focused).
	VarDecay float64
	// ClauseDecay is the learnt-clause activity decay (default 0.999).
	ClauseDecay float64
	// RestartBase is the Luby restart unit in conflicts (default 100).
	RestartBase int
	// PhaseTrue resets the saved phases (and the default for future
	// variables) to true; the stock solver branches false first.
	PhaseTrue bool
}

// SetConfig applies the non-zero knobs. Safe between Solve calls only.
func (s *Solver) SetConfig(c Config) {
	if c.VarDecay > 0 {
		s.varDecay = c.VarDecay
	}
	if c.ClauseDecay > 0 {
		s.claDecay = c.ClauseDecay
	}
	if c.RestartBase > 0 {
		s.restartBase = c.RestartBase
	}
	if c.PhaseTrue {
		s.defaultPhase = lTrue
		for i := range s.phase {
			s.phase[i] = lTrue
		}
	}
}

// Epoch returns the solver's current fork epoch (the stamp applied to
// newly added problem clauses).
func (s *Solver) Epoch() int32 { return s.epoch }

// SetEpoch advances the fork epoch. Epochs only move forward; a lower
// value is ignored. Called by the portfolio when an instance forks,
// before the diverging key-bit pins are added, so those pins (and
// everything derived from them) carry the new watermark.
func (s *Solver) SetEpoch(e int32) {
	if e > s.epoch {
		s.epoch = e
	}
}

// SetExporter installs the learnt-clause export hook: fn is called for
// every learnt clause with at most maxLen literals and LBD at most
// maxLBD, with the clause's derivation watermark. The lits slice is
// only valid for the duration of the call — fn must copy. A nil fn
// removes the hook.
func (s *Solver) SetExporter(fn func(lits []Lit, lbd, epoch int32), maxLen int, maxLBD int32) {
	s.exporter = fn
	s.exportMaxLen = maxLen
	s.exportMaxLBD = maxLBD
}

// SetImporter installs the shared-clause import hook. The solver
// drains it (adding each clause as a learnt, stamped with its carried
// epoch) at the start of every Solve call and at each restart
// boundary. Returned Import slices are treated as read-only.
func (s *Solver) SetImporter(fn func() []Import) { s.importer = fn }

// Import is one shared clause handed to an importing solver: the
// literals plus the derivation watermark they carry into the importer.
type Import struct {
	Lits  []Lit
	Epoch int32
}

// LogEntry is one recorded AddClause call: the original literals
// (pre-simplification) and the epoch they were stamped with.
type LogEntry struct {
	Lits  []Lit
	Epoch int32
}

// EnableLog starts journaling AddClause calls so a clone taken earlier
// can be brought up to date with LogSince + AddClauseEpoch. The log is
// never copied by Clone; each solver that needs one enables its own.
func (s *Solver) EnableLog() { s.logging = true }

// LogLen returns the number of journaled AddClause calls.
func (s *Solver) LogLen() int { return len(s.log) }

// LogSince returns the journal entries from position n onward. The
// returned slice aliases the journal — callers must not mutate it and
// must finish with it before the next AddClause on this solver.
func (s *Solver) LogSince(n int) []LogEntry { return s.log[n:] }

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem clauses retained.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumLearnts returns the number of learnt clauses currently retained
// (reduceDB periodically discards about half).
func (s *Solver) NumLearnts() int { return len(s.learnts) }

// Clauses returns a copy of the retained problem clauses (after
// top-level simplification) plus the root-level unit assignments.
// Intended for tooling and verification, not hot paths.
func (s *Solver) Clauses() [][]Lit {
	out := make([][]Lit, 0, len(s.clauses)+8)
	for _, l := range s.trail {
		if s.level[l.Var()] == 0 {
			out = append(out, []Lit{l})
		}
	}
	for _, c := range s.clauses {
		out = append(out, append([]Lit(nil), c.lits...))
	}
	return out
}

// NewVar allocates a fresh variable and returns it.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, s.defaultPhase)
	s.vepoch = append(s.vepoch, 0)
	s.seen = append(s.seen, 0)
	s.watches = append(s.watches, nil, nil)
	s.order.push(v, &s.activity)
	return v
}

// NewVars allocates n fresh variables and returns the first.
func (s *Solver) NewVars(n int) Var {
	first := Var(len(s.assigns))
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	return first
}

func (s *Solver) litValue(l Lit) lbool {
	v := s.assigns[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Neg() {
		return v.neg()
	}
	return v
}

// Okay reports whether the solver is still consistent at the top level
// (false after an empty-clause addition or a level-0 conflict).
func (s *Solver) Okay() bool { return s.okay }

// AddClause adds a clause (given as a literal disjunction). It may be
// called before or between Solve calls; the solver backtracks to the
// root level first. Returns false if the solver became inconsistent.
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.logging {
		s.log = append(s.log, LogEntry{Lits: append([]Lit(nil), lits...), Epoch: s.epoch})
	}
	return s.addClauseEpoch(lits, s.epoch, false)
}

// AddClauseEpoch adds a problem clause stamped with an explicit
// derivation epoch instead of the solver's current one. Portfolio
// helper sync uses it to replay a sibling's journal with the epochs
// the originals were recorded at.
func (s *Solver) AddClauseEpoch(epoch int32, lits ...Lit) bool {
	return s.addClauseEpoch(lits, epoch, false)
}

func (s *Solver) addClauseEpoch(in []Lit, baseEpoch int32, learnt bool) bool {
	if !s.okay {
		return false
	}
	s.cancelUntil(0)
	// The stored clause's watermark starts at the caller's epoch and
	// absorbs the derivation epochs of any root-false literals dropped
	// below: the simplified clause is implied by the original PLUS
	// those root facts, so soundness in a sibling requires all of them.
	wm := baseEpoch
	// Sort and dedup; drop tautologies and false literals.
	lits := append([]Lit(nil), in...)
	sort.Slice(lits, func(i, j int) bool { return lits[i] < lits[j] })
	out := lits[:0]
	var prev Lit = -1
	for _, l := range lits {
		if int(l.Var()) >= len(s.assigns) {
			panic(fmt.Sprintf("sat: clause uses unallocated variable %d", l.Var()))
		}
		if l == prev {
			continue
		}
		if prev >= 0 && l == prev.Not() && l.Var() == prev.Var() {
			return true // tautology: x ∨ ¬x
		}
		switch s.litValue(l) {
		case lTrue:
			if s.level[l.Var()] == 0 {
				return true // satisfied at root
			}
		case lFalse:
			if s.level[l.Var()] == 0 {
				if ve := s.vepoch[l.Var()]; ve > wm {
					wm = ve
				}
				prev = l
				continue // drop root-false literal
			}
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.okay = false
		return false
	case 1:
		s.pendingEpoch = wm
		if !s.enqueue(out[0], nil) {
			s.okay = false
			return false
		}
		if s.propagate() != nil {
			s.okay = false
			return false
		}
		return true
	}
	c := &clause{lits: out, epoch: wm, learnt: learnt}
	if learnt {
		c.lbd = int32(len(out)) // pessimistic: imported clauses are reducible
		s.learnts = append(s.learnts, c)
	} else {
		s.clauses = append(s.clauses, c)
	}
	s.attach(c)
	return true
}

// importPending drains the importer, adding each shared clause as a
// learnt. Returns false when an import exposed top-level inconsistency
// (the formula is then Unsat — shared clauses are implied, so a
// contradiction with them is a contradiction of the formula itself).
func (s *Solver) importPending() bool {
	if s.importer == nil {
		return true
	}
	for _, im := range s.importer() {
		ok := true
		for _, l := range im.Lits {
			if int(l.Var()) >= len(s.assigns) {
				ok = false // publisher's var space ran ahead of ours; skip
				break
			}
		}
		if !ok {
			continue
		}
		s.Stats.Imported++
		if !s.addClauseEpoch(im.Lits, im.Epoch, true) {
			return false
		}
	}
	return true
}

func (s *Solver) attach(c *clause) {
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{c, c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, c.lits[0]})
}

func (s *Solver) detach(c *clause) {
	s.removeWatch(c.lits[0].Not(), c)
	s.removeWatch(c.lits[1].Not(), c)
}

func (s *Solver) removeWatch(l Lit, c *clause) {
	ws := s.watches[l]
	for i := range ws {
		if ws[i].c == c {
			ws[i] = ws[len(ws)-1]
			s.watches[l] = ws[:len(ws)-1]
			return
		}
	}
}

func (s *Solver) decisionLevel() int32 { return int32(len(s.trailLim)) }

func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.litValue(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	s.assigns[v] = boolToLbool(!l.Neg())
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	if len(s.trailLim) == 0 {
		// Root-level assignment: record its derivation watermark, since
		// conflict analysis silently skips level-0 literals and must be
		// able to account for them in learnt-clause epochs. Reason-less
		// root enqueues (unit clauses, unit learnts) pass their epoch
		// via pendingEpoch.
		e := s.pendingEpoch
		if from != nil {
			e = from.epoch
			for _, q := range from.lits {
				if q.Var() != v {
					if ve := s.vepoch[q.Var()]; ve > e {
						e = ve
					}
				}
			}
		}
		s.vepoch[v] = e
	}
	s.trail = append(s.trail, l)
	return true
}

func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		ws := s.watches[p]
		i, j := 0, 0
		var confl *clause
	outer:
		for i < len(ws) {
			w := ws[i]
			if s.litValue(w.blocker) == lTrue {
				ws[j] = w
				i++
				j++
				continue
			}
			c := w.c
			// Ensure the false literal is lits[1].
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.litValue(first) == lTrue {
				ws[j] = watcher{c, first}
				i++
				j++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.litValue(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, first})
					i++
					continue outer
				}
			}
			// Clause is unit or conflicting.
			ws[j] = watcher{c, first}
			i++
			j++
			if !s.enqueue(first, c) {
				confl = c
				s.qhead = len(s.trail)
				break
			}
		}
		for i < len(ws) {
			ws[j] = ws[i]
			i++
			j++
		}
		s.watches[p] = ws[:j]
		if confl != nil {
			return confl
		}
	}
	return nil
}

func (s *Solver) cancelUntil(level int32) {
	if s.decisionLevel() <= level {
		return
	}
	limit := s.trailLim[level]
	for i := len(s.trail) - 1; i >= limit; i-- {
		l := s.trail[i]
		v := l.Var()
		s.phase[v] = s.assigns[v]
		s.assigns[v] = lUndef
		s.reason[v] = nil
		if !s.order.inHeap(v) {
			s.order.push(v, &s.activity)
		}
	}
	s.trail = s.trail[:limit]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if s.order.inHeap(v) {
		s.order.decrease(v, &s.activity)
	}
}

func (s *Solver) bumpClause(c *clause) {
	c.act += float32(s.claInc)
	if c.act > 1e20 {
		for _, lc := range s.learnts {
			lc.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

// analyze performs 1-UIP conflict analysis and returns the learnt
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int32) {
	learnt := s.analyzeBuf[:0]
	learnt = append(learnt, 0) // placeholder for asserting literal
	var p Lit = -1
	idx := len(s.trail) - 1
	counter := 0
	s.analyzeWM = 0
	for {
		s.bumpClause(confl)
		if confl.epoch > s.analyzeWM {
			s.analyzeWM = confl.epoch
		}
		start := 0
		if p != -1 {
			start = 1
		}
		for k := start; k < len(confl.lits); k++ {
			q := confl.lits[k]
			v := q.Var()
			if s.seen[v] == 0 && s.level[v] > 0 {
				s.seen[v] = 1
				s.bumpVar(v)
				if s.level[v] >= s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			} else if s.level[v] == 0 {
				// Implicitly resolved against a root fact: fold its
				// derivation epoch into the learnt's watermark.
				if ve := s.vepoch[v]; ve > s.analyzeWM {
					s.analyzeWM = ve
				}
			}
		}
		// Find next literal on trail to resolve on.
		for s.seen[s.trail[idx].Var()] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = 0
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Not()

	// Conflict clause minimisation (local: drop literals implied by
	// the rest of the clause through their reason clauses). Record all
	// marked variables first so seen[] can be fully cleared afterwards
	// even for the literals the minimisation drops.
	toClear := make([]Var, len(learnt))
	for i, l := range learnt {
		s.seen[l.Var()] = 1
		toClear[i] = l.Var()
	}
	j := 1
	for i := 1; i < len(learnt); i++ {
		if !s.redundant(learnt[i]) {
			learnt[j] = learnt[i]
			j++
		}
	}
	minimised := learnt[:j]

	// Backtrack level: second-highest level in clause.
	btLevel := int32(0)
	if len(minimised) > 1 {
		maxI := 1
		for i := 2; i < len(minimised); i++ {
			if s.level[minimised[i].Var()] > s.level[minimised[maxI].Var()] {
				maxI = i
			}
		}
		minimised[1], minimised[maxI] = minimised[maxI], minimised[1]
		btLevel = s.level[minimised[1].Var()]
	}
	for _, v := range toClear {
		s.seen[v] = 0
	}
	s.analyzeBuf = learnt[:0]
	out := append([]Lit(nil), minimised...)
	return out, btLevel
}

// redundant reports whether literal l in a learnt clause is implied by
// the other marked literals via its reason clause (one-step check).
// A successful drop resolves the learnt against the reason clause (and
// any root facts it mentions), so the watermark absorbs their epochs.
func (s *Solver) redundant(l Lit) bool {
	r := s.reason[l.Var()]
	if r == nil {
		return false
	}
	wm := r.epoch
	for _, q := range r.lits {
		if q.Var() == l.Var() {
			continue
		}
		if s.level[q.Var()] == 0 {
			if ve := s.vepoch[q.Var()]; ve > wm {
				wm = ve
			}
			continue
		}
		if s.seen[q.Var()] == 0 {
			return false
		}
	}
	if wm > s.analyzeWM {
		s.analyzeWM = wm
	}
	return true
}

func (s *Solver) computeLBD(lits []Lit) int32 {
	seenLevels := map[int32]struct{}{}
	for _, l := range lits {
		seenLevels[s.level[l.Var()]] = struct{}{}
	}
	return int32(len(seenLevels))
}

func (s *Solver) recordLearnt(lits []Lit, btLevel int32) bool {
	s.cancelUntil(btLevel)
	wm := s.analyzeWM
	lbd := int32(1)
	switch len(lits) {
	case 0:
		s.okay = false
		return false
	case 1:
		s.pendingEpoch = wm
		if !s.enqueue(lits[0], nil) {
			s.okay = false
			return false
		}
	default:
		lbd = s.computeLBD(lits)
		c := &clause{lits: lits, learnt: true, lbd: lbd, epoch: wm}
		s.learnts = append(s.learnts, c)
		s.Stats.Learnt++
		s.attach(c)
		s.bumpClause(c)
		if !s.enqueue(lits[0], c) {
			s.okay = false
			return false
		}
	}
	if s.exporter != nil && len(lits) <= s.exportMaxLen && lbd <= s.exportMaxLBD {
		s.Stats.Exported++
		s.exporter(lits, lbd, wm)
	}
	s.varInc /= s.varDecay
	s.claInc /= s.claDecay
	return true
}

// reduceDB removes roughly half of the learnt clauses, keeping the
// most active / lowest-LBD ones and any currently locked clause.
func (s *Solver) reduceDB() {
	sort.Slice(s.learnts, func(i, j int) bool {
		a, b := s.learnts[i], s.learnts[j]
		if (a.lbd <= 2) != (b.lbd <= 2) {
			return a.lbd <= 2
		}
		return a.act > b.act
	})
	keep := len(s.learnts) / 2
	kept := s.learnts[:0]
	for i, c := range s.learnts {
		locked := len(c.lits) > 0 && s.reason[c.lits[0].Var()] == c && s.litValue(c.lits[0]) == lTrue
		if i < keep || locked || len(c.lits) <= 2 {
			kept = append(kept, c)
		} else {
			s.detach(c)
			s.Stats.Removed++
		}
	}
	s.learnts = kept
}

func (s *Solver) pickBranchVar() (Var, bool) {
	for s.order.size() > 0 {
		v := s.order.pop(&s.activity)
		if s.assigns[v] == lUndef {
			return v, true
		}
	}
	return 0, false
}

// luby computes the Luby sequence value for index i (1-based):
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
func luby(i int64) int64 {
	x := i - 1
	size, seq := int64(1), uint(0)
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return 1 << seq
}

// interruptCheckInterval is how many conflicts pass between two looks
// at the interrupt channel: cheap enough to be invisible in the search
// loop, fine-grained enough that cancellation lands within
// milliseconds on any real formula.
const interruptCheckInterval = 256

// SolveCtx is Solve with cancellation: when ctx is cancelled or its
// deadline passes, the search unwinds and returns Unknown. The check
// is amortized over conflicts (every interruptCheckInterval), so a
// solve that never conflicts — unit propagation straight to a model —
// completes even under a cancelled context. Callers distinguish a
// cancelled Unknown from a ConflictBudget Unknown via ctx.Err().
func (s *Solver) SolveCtx(ctx context.Context, assumptions ...Lit) Status {
	if ctx.Err() != nil {
		s.Stats.Solves++
		return Unknown
	}
	s.interrupt = ctx.Done()
	defer func() { s.interrupt = nil }()
	return s.Solve(assumptions...)
}

// Solve runs the CDCL search under the given assumptions. It returns
// Sat, Unsat, or Unknown (only when ConflictBudget is exhausted or a
// SolveCtx context fires).
func (s *Solver) Solve(assumptions ...Lit) Status {
	s.Stats.Solves++
	if !s.okay {
		return Unsat
	}
	s.cancelUntil(0)
	if s.propagate() != nil {
		s.okay = false
		return Unsat
	}
	if !s.importPending() {
		return Unsat
	}

	var conflictsAtStart = s.Stats.Conflicts
	var restartIdx int64 = 1
	restartLimit := int64(s.restartBase) * luby(restartIdx)
	conflictsSinceRestart := int64(0)
	maxLearnts := int64(len(s.clauses))/3 + 1000

	for {
		confl := s.propagate()
		if confl != nil {
			s.Stats.Conflicts++
			conflictsSinceRestart++
			if s.decisionLevel() == 0 {
				s.okay = false
				return Unsat
			}
			// Learn and backjump. Backjumping below the assumption
			// levels is fine: the decision loop re-asserts the
			// assumptions; a genuinely inconsistent assumption then
			// shows up as litValue == lFalse at its decision point.
			learnt, btLevel := s.analyze(confl)
			if !s.recordLearnt(learnt, btLevel) {
				return Unsat
			}
			if s.ConflictBudget > 0 && s.Stats.Conflicts-conflictsAtStart >= s.ConflictBudget {
				s.cancelUntil(0)
				return Unknown
			}
			if s.interrupt != nil &&
				(s.Stats.Conflicts-conflictsAtStart)%interruptCheckInterval == 0 {
				select {
				case <-s.interrupt:
					s.cancelUntil(0)
					return Unknown
				default:
				}
			}
			continue
		}

		if conflictsSinceRestart >= restartLimit {
			s.Stats.Restarts++
			restartIdx++
			restartLimit = int64(s.restartBase) * luby(restartIdx)
			conflictsSinceRestart = 0
			s.cancelUntil(int32(s.countAssumptionLevels(assumptions)))
			// Restart boundary: fold in clauses shared by the portfolio
			// (importPending backtracks to root; the decision loop
			// re-asserts the assumptions).
			if !s.importPending() {
				return Unsat
			}
			continue
		}

		if int64(len(s.learnts)) >= maxLearnts {
			maxLearnts += maxLearnts / 10
			s.reduceDB()
		}

		// Assumption decisions first.
		if int(s.decisionLevel()) < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.litValue(a) {
			case lTrue:
				// Already satisfied: open an empty decision level so
				// the level↔assumption-index mapping stays aligned.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				s.cancelUntil(0)
				return Unsat
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			if !s.enqueue(a, nil) {
				s.cancelUntil(0)
				return Unsat
			}
			continue
		}

		v, ok := s.pickBranchVar()
		if !ok {
			// All variables assigned: model found.
			s.saveModel()
			s.cancelUntil(0)
			return Sat
		}
		s.Stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		ph := s.phase[v]
		lit := MkLit(v, ph != lTrue)
		s.enqueue(lit, nil)
	}
}

func (s *Solver) countAssumptionLevels(assumptions []Lit) int {
	n := len(assumptions)
	if int(s.decisionLevel()) < n {
		n = int(s.decisionLevel())
	}
	return n
}

func (s *Solver) saveModel() {
	if cap(s.model) < len(s.assigns) {
		s.model = make([]lbool, len(s.assigns))
	}
	s.model = s.model[:len(s.assigns)]
	copy(s.model, s.assigns)
}

// ModelValue returns the last model's value of v. Only meaningful
// directly after Solve returned Sat.
func (s *Solver) ModelValue(v Var) bool {
	if int(v) >= len(s.model) {
		return false
	}
	return s.model[v] == lTrue
}

// ModelLit returns the last model's truth value of a literal.
func (s *Solver) ModelLit(l Lit) bool {
	b := s.ModelValue(l.Var())
	if l.Neg() {
		return !b
	}
	return b
}

// Clone returns a deep copy of the solver: clauses, learnt clauses,
// activities, phases, epochs and statistics. The clone can evolve
// completely independently (StatSAT instance duplication relies on
// this). Portfolio bindings — exporter, importer, clause journal — are
// deliberately NOT copied: pool membership is per-solver and each
// clone that wants one registers its own (docs/SOLVER.md).
func (s *Solver) Clone() *Solver {
	s.cancelUntil(0)
	n := New()
	n.okay = s.okay
	n.varInc, n.varDecay = s.varInc, s.varDecay
	n.claInc, n.claDecay = s.claInc, s.claDecay
	n.restartBase = s.restartBase
	n.defaultPhase = s.defaultPhase
	n.epoch = s.epoch
	n.ConflictBudget = s.ConflictBudget
	n.Stats = s.Stats

	n.assigns = append([]lbool(nil), s.assigns...)
	n.level = append([]int32(nil), s.level...)
	n.trail = append([]Lit(nil), s.trail...)
	n.qhead = s.qhead
	n.activity = append([]float64(nil), s.activity...)
	n.phase = append([]lbool(nil), s.phase...)
	n.vepoch = append([]int32(nil), s.vepoch...)
	n.seen = make([]byte, len(s.seen))
	n.model = append([]lbool(nil), s.model...)

	// Deep-copy clauses, tracking the old→new mapping for watches and
	// reasons.
	remap := make(map[*clause]*clause, len(s.clauses)+len(s.learnts))
	cp := func(c *clause) *clause {
		nc := &clause{lits: append([]Lit(nil), c.lits...), act: c.act, lbd: c.lbd, epoch: c.epoch, learnt: c.learnt}
		remap[c] = nc
		return nc
	}
	n.clauses = make([]*clause, len(s.clauses))
	for i, c := range s.clauses {
		n.clauses[i] = cp(c)
	}
	n.learnts = make([]*clause, len(s.learnts))
	for i, c := range s.learnts {
		n.learnts[i] = cp(c)
	}
	n.watches = make([][]watcher, len(s.watches))
	for i, ws := range s.watches {
		if len(ws) == 0 {
			continue
		}
		nws := make([]watcher, len(ws))
		for j, w := range ws {
			nws[j] = watcher{c: remap[w.c], blocker: w.blocker}
		}
		n.watches[i] = nws
	}
	n.reason = make([]*clause, len(s.reason))
	for i, r := range s.reason {
		if r != nil {
			n.reason[i] = remap[r]
		}
	}
	n.order = s.order.clone()
	return n
}

// heap is a max-heap over variables keyed by activity.
type heap struct {
	data []Var
	pos  []int32 // var -> index in data, -1 if absent
}

func (h *heap) size() int { return len(h.data) }

func (h *heap) inHeap(v Var) bool {
	return int(v) < len(h.pos) && h.pos[v] >= 0
}

func (h *heap) push(v Var, act *[]float64) {
	for int(v) >= len(h.pos) {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] >= 0 {
		return
	}
	h.pos[v] = int32(len(h.data))
	h.data = append(h.data, v)
	h.up(int(h.pos[v]), act)
}

func (h *heap) pop(act *[]float64) Var {
	top := h.data[0]
	last := h.data[len(h.data)-1]
	h.data = h.data[:len(h.data)-1]
	h.pos[top] = -1
	if len(h.data) > 0 {
		h.data[0] = last
		h.pos[last] = 0
		h.down(0, act)
	}
	return top
}

func (h *heap) decrease(v Var, act *[]float64) {
	h.up(int(h.pos[v]), act)
}

func (h *heap) up(i int, act *[]float64) {
	a := *act
	x := h.data[i]
	for i > 0 {
		p := (i - 1) / 2
		if a[h.data[p]] >= a[x] {
			break
		}
		h.data[i] = h.data[p]
		h.pos[h.data[i]] = int32(i)
		i = p
	}
	h.data[i] = x
	h.pos[x] = int32(i)
}

func (h *heap) down(i int, act *[]float64) {
	a := *act
	x := h.data[i]
	for {
		l := 2*i + 1
		if l >= len(h.data) {
			break
		}
		c := l
		if r := l + 1; r < len(h.data) && a[h.data[r]] > a[h.data[l]] {
			c = r
		}
		if a[h.data[c]] <= a[x] {
			break
		}
		h.data[i] = h.data[c]
		h.pos[h.data[i]] = int32(i)
		i = c
	}
	h.data[i] = x
	h.pos[x] = int32(i)
}

func (h *heap) clone() heap {
	return heap{
		data: append([]Var(nil), h.data...),
		pos:  append([]int32(nil), h.pos...),
	}
}
