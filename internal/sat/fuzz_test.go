package sat

import (
	"strings"
	"testing"
)

// FuzzParseDIMACS exercises the DIMACS reader for panics; any formula
// it accepts must solve without crashing, and a Sat verdict's model
// must actually satisfy every retained clause.
func FuzzParseDIMACS(f *testing.F) {
	seeds := []string{
		"p cnf 3 2\n1 -3 0\n2 3 -1 0\n",
		"p cnf 1 2\n1 0\n-1 0\n",
		"c comment\n1 2 0",
		"p cnf 0 0\n",
		"%\n0\n",
		"p cnf 2 1\n1 -2",
		"1 1 1 0\n-1 0\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		s, err := ParseDIMACS(strings.NewReader(src))
		if err != nil {
			return
		}
		if s.NumVars() > 1<<16 {
			return // header-declared monsters: skip solving
		}
		clauses := s.Clauses()
		s.ConflictBudget = 2000
		if s.Solve() != Sat {
			return
		}
		for _, c := range clauses {
			ok := false
			for _, l := range c {
				if s.ModelLit(l) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("model does not satisfy clause %v", c)
			}
		}
	})
}
