// Package wal implements the append-only record log backing statsatd's
// durable job fabric (docs/SERVER.md "Persistence and recovery"). A log
// is a single file of length-prefixed, CRC-checksummed records:
//
//	[u32 LE payload length][u32 LE IEEE CRC32 of payload][payload]
//
// Open replays every intact record and truncates the torn tail — a
// crash mid-append leaves a short header, a short payload, or a CRC
// mismatch, and in every case the longest valid prefix is the durable
// state. Compaction (Rewrite) replaces the whole file atomically via a
// temp file + rename so a crash during compaction preserves either the
// old log or the new one, never a mix.
//
// Concurrency: all file I/O is owned by a single writer goroutine fed
// by a request channel. Append/Sync/Rewrite enqueue a request and wait
// for its ack; the writer batches whatever has queued up behind one
// fsync (group commit). No file operation ever runs under the log's
// mutex — the mutex guards only the closed flag (the lockscope check
// enforces this, see docs/LINTING.md).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// maxRecord bounds a single record's payload; a length prefix beyond
// it is treated as tail corruption, not an allocation request.
const maxRecord = 64 << 20

const headerSize = 8

type reqKind int

const (
	reqAppend reqKind = iota
	reqSync
	reqRewrite
)

type request struct {
	kind     reqKind
	payload  []byte
	payloads [][]byte
	fsync    bool
	ack      chan error
}

// Log is an append-only record log bound to one file.
type Log struct {
	path string

	mu       sync.Mutex // guards closed only; never held across I/O
	closed   bool
	inflight sync.WaitGroup

	reqs chan request
	done chan struct{}

	// writer-goroutine state; untouched after Open returns except by
	// the writer itself.
	f   *os.File
	err error
}

// Open opens (creating if absent) the log at path, replays every
// intact record, truncates any torn tail, and returns the log ready
// for appends plus the replayed payloads in write order.
func Open(path string) (*Log, [][]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	recs, valid, err := replay(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if fi, err := f.Stat(); err != nil {
		f.Close()
		return nil, nil, err
	} else if fi.Size() > valid {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	l := &Log{
		path: path,
		reqs: make(chan request),
		done: make(chan struct{}),
		f:    f,
	}
	go l.writer()
	return l, recs, nil
}

// replay reads records from the start of f, stopping at the first
// torn or corrupt one. It returns the intact payloads and the byte
// offset of the valid prefix's end.
func replay(f *os.File) ([][]byte, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	var (
		recs   [][]byte
		offset int64
		hdr    [headerSize]byte
	)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			// EOF here is a clean end; a partial header is a torn
			// append. Either way the valid prefix ends at offset.
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return recs, offset, nil
			}
			return nil, 0, err
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxRecord {
			return recs, offset, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return recs, offset, nil
			}
			return nil, 0, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, offset, nil
		}
		recs = append(recs, payload)
		offset += headerSize + int64(n)
	}
}

// encode frames one payload into dst and returns the extended slice.
func encode(dst, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// submit enqueues a request and waits for the writer's ack. The
// channel send happens outside the mutex: the lock only guards the
// closed flag and the inflight count that Close waits on.
func (l *Log) submit(req request) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.inflight.Add(1)
	l.mu.Unlock()
	defer l.inflight.Done()
	req.ack = make(chan error, 1)
	l.reqs <- req
	return <-req.ack
}

// Append durably frames payload onto the log. The payload is copied
// before the call returns to the writer queue, so callers may reuse
// their buffer. The record is written (and CRC-framed) but not
// fsynced; call Sync or AppendSync for a durability barrier.
func (l *Log) Append(payload []byte) error {
	return l.submit(request{kind: reqAppend, payload: append([]byte(nil), payload...)})
}

// AppendSync appends payload and forces it (plus everything queued
// before it) to stable storage before returning.
func (l *Log) AppendSync(payload []byte) error {
	return l.submit(request{kind: reqAppend, payload: append([]byte(nil), payload...), fsync: true})
}

// Sync forces everything appended so far to stable storage.
func (l *Log) Sync() error {
	return l.submit(request{kind: reqSync, fsync: true})
}

// Rewrite atomically replaces the log's contents with the given
// payloads (compaction): they are framed into a temp file, fsynced,
// and renamed over the log. Appends queued behind the rewrite land in
// the new file.
func (l *Log) Rewrite(payloads [][]byte) error {
	return l.submit(request{kind: reqRewrite, payloads: payloads, fsync: true})
}

// Close drains in-flight requests, syncs, and closes the file. The
// log is unusable afterwards; Close is idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return l.err
	}
	l.closed = true
	l.mu.Unlock()
	l.inflight.Wait()
	close(l.reqs)
	<-l.done
	return l.err
}

// writer owns the file: it serves requests in arrival order, folding
// whatever has queued up behind a single fsync (group commit). It
// exits when Close closes the request channel.
func (l *Log) writer() {
	defer close(l.done)
	for req := range l.reqs {
		batch := []request{req}
	drain:
		for {
			select {
			case r, ok := <-l.reqs:
				if !ok {
					break drain
				}
				batch = append(batch, r)
			default:
				break drain
			}
		}
		l.serve(batch)
	}
	if l.f != nil {
		if err := l.f.Sync(); err != nil && l.err == nil {
			l.err = err
		}
		if err := l.f.Close(); err != nil && l.err == nil {
			l.err = err
		}
		l.f = nil
	}
}

// serve executes one group-committed batch.
func (l *Log) serve(batch []request) {
	if l.err != nil {
		// Sticky failure: a log that failed a write never acks success
		// again — callers must treat the job fabric as degraded.
		for _, r := range batch {
			r.ack <- l.err
		}
		return
	}
	var buf []byte
	needSync := false
	flush := func() bool {
		if len(buf) == 0 {
			return true
		}
		_, err := l.f.Write(buf)
		buf = buf[:0]
		if err != nil {
			l.err = err
			return false
		}
		return true
	}
	for _, r := range batch {
		switch r.kind {
		case reqAppend:
			buf = encode(buf, r.payload)
		case reqRewrite:
			if !flush() {
				break
			}
			if err := l.rewrite(r.payloads); err != nil {
				l.err = err
			}
			needSync = false // rewrite is its own barrier
		}
		if r.fsync {
			needSync = true
		}
		if l.err != nil {
			break
		}
	}
	if l.err == nil {
		flush()
	}
	if l.err == nil && needSync {
		if err := l.f.Sync(); err != nil {
			l.err = err
		}
	}
	for _, r := range batch {
		r.ack <- l.err
	}
}

// rewrite performs the atomic compaction swap: frame payloads into a
// temp file in the same directory, fsync it, rename over the log, and
// fsync the directory so the rename itself is durable.
func (l *Log) rewrite(payloads [][]byte) error {
	dir := filepath.Dir(l.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(l.path)+".rewrite-*")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	var buf []byte
	for _, p := range payloads {
		buf = encode(buf, p)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := syncDir(dir); err != nil {
		tmp.Close()
		return err
	}
	old := l.f
	l.f = tmp
	old.Close()
	return nil
}

// syncDir fsyncs a directory so a just-completed rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
