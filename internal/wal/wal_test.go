package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T, path string) (*Log, [][]byte) {
	t.Helper()
	l, recs, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return l, recs
}

func closeT(t *testing.T, l *Log) {
	t.Helper()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf(`{"rec":%d,"pad":"%032d"}`, i, i))
	}
	return out
}

func wantRecords(t *testing.T, got, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.wal")
	want := payloads(17)
	l, recs := openT(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	for i, p := range want {
		var err error
		if i%5 == 4 {
			err = l.AppendSync(p)
		} else {
			err = l.Append(p)
		}
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	closeT(t, l)

	l2, recs := openT(t, path)
	wantRecords(t, recs, want)
	// The reopened log must accept further appends after the replayed
	// prefix.
	extra := []byte("after-reopen")
	if err := l2.AppendSync(extra); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	closeT(t, l2)
	_, recs = openT(t, path)
	wantRecords(t, recs, append(append([][]byte{}, want...), extra))
}

func TestAppendCopiesPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.wal")
	l, _ := openT(t, path)
	buf := []byte("original")
	if err := l.Append(buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "CLOBBER!")
	closeT(t, l)
	_, recs := openT(t, path)
	wantRecords(t, recs, [][]byte{[]byte("original")})
}

func TestEmptyAndZeroLengthRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.wal")
	l, _ := openT(t, path)
	if err := l.AppendSync(nil); err != nil {
		t.Fatalf("zero-length append: %v", err)
	}
	closeT(t, l)
	_, recs := openT(t, path)
	if len(recs) != 1 || len(recs[0]) != 0 {
		t.Fatalf("replay of zero-length record: got %q", recs)
	}
}

// TestTornWriteTable is the crash-recovery table test the durable
// fabric's correctness rests on: a log of N records is truncated at
// every byte offset inside its final record (header and payload), and
// replay must recover exactly the first N-1 records — the longest
// valid prefix — without error, then truncate the torn tail so
// subsequent appends produce a well-formed log.
func TestTornWriteTable(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal")
	want := payloads(4)
	l, _ := openT(t, full)
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	closeT(t, l)

	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lastLen := headerSize + len(want[3])
	prefixLen := len(raw) - lastLen

	for cut := prefixLen; cut < len(raw); cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "torn.wal")
			if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			l, recs := openT(t, path)
			wantRecords(t, recs, want[:3])
			// The torn tail must be gone: appending and replaying
			// yields prefix + the new record, nothing in between.
			if err := l.AppendSync([]byte("recovered")); err != nil {
				t.Fatal(err)
			}
			closeT(t, l)
			_, recs = openT(t, path)
			wantRecords(t, recs, append(append([][]byte{}, want[:3]...), []byte("recovered")))
		})
	}
}

// TestCorruptTail covers the bit-flip variant of a torn write: the
// final record's CRC no longer matches, so replay drops it.
func TestCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.wal")
	want := payloads(3)
	l, _ := openT(t, path)
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	closeT(t, l)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l, recs := openT(t, path)
	wantRecords(t, recs, want[:2])
	closeT(t, l)
}

// TestInsaneLengthPrefix: a tail whose length field decodes to an
// absurd size is corruption, not an allocation request.
func TestInsaneLengthPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.wal")
	l, _ := openT(t, path)
	if err := l.AppendSync([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	closeT(t, l)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	l, recs := openT(t, path)
	wantRecords(t, recs, [][]byte{[]byte("ok")})
	closeT(t, l)
}

func TestRewriteCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.wal")
	l, _ := openT(t, path)
	for _, p := range payloads(10) {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	kept := [][]byte{[]byte("survivor-a"), []byte("survivor-b")}
	if err := l.Rewrite(kept); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	// Appends after the rewrite land in the new file.
	if err := l.AppendSync([]byte("post-compaction")); err != nil {
		t.Fatal(err)
	}
	closeT(t, l)
	_, recs := openT(t, path)
	wantRecords(t, recs, append(append([][]byte{}, kept...), []byte("post-compaction")))
}

func TestOperationsAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.wal")
	l, _ := openT(t, path)
	closeT(t, l)
	if err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("Sync after Close = %v, want ErrClosed", err)
	}
	// Idempotent Close.
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestConcurrentAppend drives the group-commit writer from many
// goroutines under -race; every record must survive intact (order
// across goroutines is unspecified, presence and integrity are not).
func TestConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.wal")
	l, _ := openT(t, path)
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p := []byte(fmt.Sprintf("w%02d-%03d", w, i))
				var err error
				if i%7 == 0 {
					err = l.AppendSync(p)
				} else {
					err = l.Append(p)
				}
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	closeT(t, l)
	_, recs := openT(t, path)
	if len(recs) != writers*per {
		t.Fatalf("replayed %d records, want %d", len(recs), writers*per)
	}
	seen := make(map[string]bool, len(recs))
	for _, r := range recs {
		seen[string(r)] = true
	}
	if len(seen) != writers*per {
		t.Fatalf("%d distinct records, want %d", len(seen), writers*per)
	}
}
