// Package circuit provides the gate-level combinational netlist
// representation used throughout the StatSAT reproduction: gate types,
// a builder API, structural validation, topological ordering and both
// deterministic and noisy (probabilistic) evaluation.
//
// A Circuit is a DAG of gates. Primary inputs and key inputs are gates
// of type Input and Key with no fanin; every other gate computes a
// Boolean function of its fanin wires. Primary outputs are references
// to driver gates (a gate may drive several outputs, and an output may
// be driven by an input gate directly).
package circuit

import (
	"fmt"
	"math/rand"
)

// GateType enumerates the supported gate functions. The set matches
// what appears in ISCAS/MCNC-style .bench netlists plus the Key input
// type introduced by logic locking.
type GateType uint8

// Supported gate types.
const (
	// Input is a primary input; it has no fanin.
	Input GateType = iota
	// Key is a key input added by logic locking; it has no fanin.
	Key
	// Const0 is the constant false; it has no fanin.
	Const0
	// Const1 is the constant true; it has no fanin.
	Const1
	// Buf passes its single fanin through.
	Buf
	// Not inverts its single fanin.
	Not
	// And is a conjunction of 1..n fanins.
	And
	// Nand is an inverted conjunction.
	Nand
	// Or is a disjunction of 1..n fanins.
	Or
	// Nor is an inverted disjunction.
	Nor
	// Xor is the parity of its fanins.
	Xor
	// Xnor is the inverted parity of its fanins.
	Xnor
	// Mux selects fanin[1] when fanin[0] is false, fanin[2] when true.
	Mux

	numGateTypes
)

var gateTypeNames = [numGateTypes]string{
	Input:  "INPUT",
	Key:    "KEY",
	Const0: "CONST0",
	Const1: "CONST1",
	Buf:    "BUF",
	Not:    "NOT",
	And:    "AND",
	Nand:   "NAND",
	Or:     "OR",
	Nor:    "NOR",
	Xor:    "XOR",
	Xnor:   "XNOR",
	Mux:    "MUX",
}

// String returns the upper-case conventional name of the gate type.
func (t GateType) String() string {
	if int(t) < len(gateTypeNames) {
		return gateTypeNames[t]
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// IsInputType reports whether the type is a source (no fanin allowed).
func (t GateType) IsInputType() bool {
	switch t {
	case Input, Key, Const0, Const1:
		return true
	}
	return false
}

// MinFanin returns the minimum legal fanin count for the type.
func (t GateType) MinFanin() int {
	switch t {
	case Input, Key, Const0, Const1:
		return 0
	case Buf, Not:
		return 1
	case Mux:
		return 3
	default:
		return 1
	}
}

// MaxFanin returns the maximum legal fanin count for the type, or -1
// for unbounded.
func (t GateType) MaxFanin() int {
	switch t {
	case Input, Key, Const0, Const1:
		return 0
	case Buf, Not:
		return 1
	case Mux:
		return 3
	default:
		return -1
	}
}

// Eval computes the gate function over the given fanin values. It
// panics if the fanin count is illegal for the type; structural
// validation is expected to have happened at build time.
func (t GateType) Eval(in []bool) bool {
	switch t {
	case Const0:
		return false
	case Const1:
		return true
	case Buf:
		return in[0]
	case Not:
		return !in[0]
	case And, Nand:
		v := true
		for _, b := range in {
			v = v && b
		}
		if t == Nand {
			return !v
		}
		return v
	case Or, Nor:
		v := false
		for _, b := range in {
			v = v || b
		}
		if t == Nor {
			return !v
		}
		return v
	case Xor, Xnor:
		v := false
		for _, b := range in {
			v = v != b
		}
		if t == Xnor {
			return !v
		}
		return v
	case Mux:
		if in[0] {
			return in[2]
		}
		return in[1]
	}
	panic(fmt.Sprintf("circuit: Eval on source gate type %v", t))
}

// Gate is a single node in the netlist. Fanin holds gate IDs.
type Gate struct {
	Type  GateType
	Name  string
	Fanin []int
}

// Circuit is a combinational netlist. Gates are addressed by dense
// integer IDs (index into Gates). The zero value is an empty circuit
// ready for use via the Add* methods.
type Circuit struct {
	Name  string
	Gates []Gate
	// PIs, Keys list the gate IDs of primary and key inputs in
	// declaration order; these orders define the layout of input and
	// key vectors everywhere in the library.
	PIs  []int
	Keys []int
	// POs lists, in declaration order, the driver gate ID of each
	// primary output. The same gate may drive several outputs.
	POs []int
	// PONames optionally names outputs (parallel to POs). Empty names
	// fall back to the driver gate's name.
	PONames []string

	topo []int     // cached topological order; nil until built
	prog *evalProg // cached evaluation schedule; nil until built
}

// New returns an empty circuit with the given name.
func New(name string) *Circuit {
	return &Circuit{Name: name}
}

// NumGates returns the total number of gates including inputs.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// NumLogicGates returns the number of non-source gates (the gates that
// are subject to probabilistic errors under the paper's model).
func (c *Circuit) NumLogicGates() int {
	n := 0
	for i := range c.Gates {
		if !c.Gates[i].Type.IsInputType() {
			n++
		}
	}
	return n
}

// NumPIs, NumKeys and NumPOs report interface widths.
func (c *Circuit) NumPIs() int  { return len(c.PIs) }
func (c *Circuit) NumKeys() int { return len(c.Keys) }
func (c *Circuit) NumPOs() int  { return len(c.POs) }

// addGate appends a gate and invalidates cached analyses.
func (c *Circuit) addGate(g Gate) int {
	id := len(c.Gates)
	c.Gates = append(c.Gates, g)
	c.topo = nil
	c.prog = nil
	return id
}

// AddInput declares a primary input and returns its gate ID.
func (c *Circuit) AddInput(name string) int {
	id := c.addGate(Gate{Type: Input, Name: name})
	c.PIs = append(c.PIs, id)
	return id
}

// AddKey declares a key input and returns its gate ID.
func (c *Circuit) AddKey(name string) int {
	id := c.addGate(Gate{Type: Key, Name: name})
	c.Keys = append(c.Keys, id)
	return id
}

// AddGate adds a logic gate with the given fanin gate IDs and returns
// its ID. Structural legality is checked by Validate, not here, so
// builders may wire forward references freely as long as the final
// netlist is acyclic.
func (c *Circuit) AddGate(t GateType, name string, fanin ...int) int {
	return c.addGate(Gate{Type: t, Name: name, Fanin: append([]int(nil), fanin...)})
}

// AddOutput declares gate id as a primary output with an optional
// distinct name (empty means: use the driver gate's name).
func (c *Circuit) AddOutput(id int, name string) {
	c.POs = append(c.POs, id)
	c.PONames = append(c.PONames, name)
}

// OutputName returns the name of output index i.
func (c *Circuit) OutputName(i int) string {
	if i < len(c.PONames) && c.PONames[i] != "" {
		return c.PONames[i]
	}
	return c.Gates[c.POs[i]].Name
}

// Validate checks structural sanity: fanin IDs in range, fanin arity
// legal for each type, no fanin on source gates, outputs in range, and
// acyclicity. It returns the first problem found.
func (c *Circuit) Validate() error {
	for id := range c.Gates {
		g := &c.Gates[id]
		if g.Type.IsInputType() && len(g.Fanin) != 0 {
			return fmt.Errorf("circuit %q: gate %d (%s %v) is a source but has %d fanins",
				c.Name, id, g.Name, g.Type, len(g.Fanin))
		}
		if n, min, max := len(g.Fanin), g.Type.MinFanin(), g.Type.MaxFanin(); n < min || (max >= 0 && n > max) {
			return fmt.Errorf("circuit %q: gate %d (%s %v) has illegal fanin count %d",
				c.Name, id, g.Name, g.Type, n)
		}
		for _, f := range g.Fanin {
			if f < 0 || f >= len(c.Gates) {
				return fmt.Errorf("circuit %q: gate %d (%s) references out-of-range fanin %d",
					c.Name, id, g.Name, f)
			}
		}
	}
	for i, po := range c.POs {
		if po < 0 || po >= len(c.Gates) {
			return fmt.Errorf("circuit %q: output %d references out-of-range gate %d", c.Name, i, po)
		}
	}
	if _, err := c.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns (and caches) a topological order of all gate IDs
// (sources first). It fails if the netlist contains a cycle.
func (c *Circuit) TopoOrder() ([]int, error) {
	if c.topo != nil {
		return c.topo, nil
	}
	n := len(c.Gates)
	indeg := make([]int, n)
	fanout := make([][]int32, n)
	for id := range c.Gates {
		for _, f := range c.Gates[id].Fanin {
			if f < 0 || f >= n {
				return nil, fmt.Errorf("circuit %q: gate %d references out-of-range fanin %d", c.Name, id, f)
			}
			indeg[id]++
			fanout[f] = append(fanout[f], int32(id))
		}
	}
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, s := range fanout[id] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, int(s))
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("circuit %q: netlist contains a combinational cycle", c.Name)
	}
	c.topo = order
	return order, nil
}

// MustTopoOrder is TopoOrder for circuits already known valid.
func (c *Circuit) MustTopoOrder() []int {
	o, err := c.TopoOrder()
	if err != nil {
		panic(err)
	}
	return o
}

// Eval evaluates the circuit deterministically. pi and key supply the
// primary and key input values in PIs/Keys order; key may be nil for
// unlocked circuits. The returned slice holds output values in POs
// order. scratch, if non-nil and large enough, is used for wire values
// to avoid allocation.
func (c *Circuit) Eval(pi, key []bool, scratch []bool) []bool {
	w := c.EvalWires(pi, key, scratch)
	out := make([]bool, len(c.POs))
	for i, po := range c.POs {
		out[i] = w[po]
	}
	return out
}

// EvalWires evaluates all wires deterministically and returns the
// per-gate value slice (indexed by gate ID). scratch, if cap-sufficient,
// backs the result.
func (c *Circuit) EvalWires(pi, key []bool, scratch []bool) []bool {
	if len(pi) != len(c.PIs) {
		panic(fmt.Sprintf("circuit %q: Eval with %d PI values, want %d", c.Name, len(pi), len(c.PIs)))
	}
	if len(key) != len(c.Keys) {
		panic(fmt.Sprintf("circuit %q: Eval with %d key values, want %d", c.Name, len(key), len(c.Keys)))
	}
	var w []bool
	if cap(scratch) >= len(c.Gates) {
		w = scratch[:len(c.Gates)]
	} else {
		w = make([]bool, len(c.Gates))
	}
	for i, id := range c.PIs {
		w[id] = pi[i]
	}
	for i, id := range c.Keys {
		w[id] = key[i]
	}
	var inBuf [8]bool
	for _, id := range c.MustTopoOrder() {
		g := &c.Gates[id]
		if g.Type.IsInputType() {
			if g.Type == Const1 {
				w[id] = true
			} else if g.Type == Const0 {
				w[id] = false
			}
			continue
		}
		in := inBuf[:0]
		for _, f := range g.Fanin {
			in = append(in, w[f])
		}
		w[id] = g.Type.Eval(in)
	}
	return w
}

// EvalNoisy evaluates the circuit under the paper's probabilistic
// error model: every logic gate's output is flipped independently with
// probability eps after its function is computed (source gates are
// noise-free). A fresh sample is drawn per call from rng.
func (c *Circuit) EvalNoisy(pi, key []bool, eps float64, rng *rand.Rand, scratch []bool) []bool {
	if len(pi) != len(c.PIs) || len(key) != len(c.Keys) {
		panic(fmt.Sprintf("circuit %q: EvalNoisy input width mismatch (%d/%d PIs, %d/%d keys)",
			c.Name, len(pi), len(c.PIs), len(key), len(c.Keys)))
	}
	var w []bool
	if cap(scratch) >= len(c.Gates) {
		w = scratch[:len(c.Gates)]
	} else {
		w = make([]bool, len(c.Gates))
	}
	for i, id := range c.PIs {
		w[id] = pi[i]
	}
	for i, id := range c.Keys {
		w[id] = key[i]
	}
	var inBuf [8]bool
	for _, id := range c.MustTopoOrder() {
		g := &c.Gates[id]
		if g.Type.IsInputType() {
			if g.Type == Const1 {
				w[id] = true
			} else if g.Type == Const0 {
				w[id] = false
			}
			continue
		}
		in := inBuf[:0]
		for _, f := range g.Fanin {
			in = append(in, w[f])
		}
		v := g.Type.Eval(in)
		if eps > 0 && rng.Float64() < eps {
			v = !v
		}
		w[id] = v
	}
	out := make([]bool, len(c.POs))
	for i, po := range c.POs {
		out[i] = w[po]
	}
	return out
}

// Clone returns a deep copy of the circuit (caches dropped).
func (c *Circuit) Clone() *Circuit {
	nc := &Circuit{
		Name:    c.Name,
		Gates:   make([]Gate, len(c.Gates)),
		PIs:     append([]int(nil), c.PIs...),
		Keys:    append([]int(nil), c.Keys...),
		POs:     append([]int(nil), c.POs...),
		PONames: append([]string(nil), c.PONames...),
	}
	for i, g := range c.Gates {
		nc.Gates[i] = Gate{Type: g.Type, Name: g.Name, Fanin: append([]int(nil), g.Fanin...)}
	}
	return nc
}

// GateByName returns the ID of the first gate with the given name.
func (c *Circuit) GateByName(name string) (int, bool) {
	for id := range c.Gates {
		if c.Gates[id].Name == name {
			return id, true
		}
	}
	return 0, false
}
