package circuit

import "math/rand"

// Fanouts returns, for every gate ID, the list of gate IDs that read it.
func (c *Circuit) Fanouts() [][]int {
	out := make([][]int, len(c.Gates))
	for id := range c.Gates {
		for _, f := range c.Gates[id].Fanin {
			out[f] = append(out[f], id)
		}
	}
	return out
}

// Levels returns the logic depth of every gate (sources at level 0,
// a gate one past its deepest fanin) and the overall circuit depth.
func (c *Circuit) Levels() ([]int, int) {
	lv := make([]int, len(c.Gates))
	depth := 0
	for _, id := range c.MustTopoOrder() {
		g := &c.Gates[id]
		l := 0
		for _, f := range g.Fanin {
			if lv[f]+1 > l {
				l = lv[f] + 1
			}
		}
		lv[id] = l
		if l > depth {
			depth = l
		}
	}
	return lv, depth
}

// OutputCone returns a bitset (indexed by gate ID) marking every gate
// in the transitive fanout of id, including id itself.
func (c *Circuit) OutputCone(id int) []bool {
	fan := c.Fanouts()
	in := make([]bool, len(c.Gates))
	stack := []int{id}
	in[id] = true
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range fan[g] {
			if !in[s] {
				in[s] = true
				stack = append(stack, s)
			}
		}
	}
	return in
}

// InputCone returns a bitset marking the transitive fanin of id,
// including id itself.
func (c *Circuit) InputCone(id int) []bool {
	in := make([]bool, len(c.Gates))
	stack := []int{id}
	in[id] = true
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range c.Gates[g].Fanin {
			if !in[f] {
				in[f] = true
				stack = append(stack, f)
			}
		}
	}
	return in
}

// ReachesOutput returns, per gate, whether it is in the transitive
// fanin of at least one primary output (i.e. observable).
func (c *Circuit) ReachesOutput() []bool {
	mark := make([]bool, len(c.Gates))
	var stack []int
	for _, po := range c.POs {
		if !mark[po] {
			mark[po] = true
			stack = append(stack, po)
		}
	}
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range c.Gates[g].Fanin {
			if !mark[f] {
				mark[f] = true
				stack = append(stack, f)
			}
		}
	}
	return mark
}

// RandomInputs draws a uniform random primary-input vector.
func (c *Circuit) RandomInputs(rng *rand.Rand) []bool {
	v := make([]bool, len(c.PIs))
	for i := range v {
		v[i] = rng.Intn(2) == 1
	}
	return v
}

// RandomKey draws a uniform random key vector.
func (c *Circuit) RandomKey(rng *rand.Rand) []bool {
	v := make([]bool, len(c.Keys))
	for i := range v {
		v[i] = rng.Intn(2) == 1
	}
	return v
}

// Stats summarises a netlist for reporting (Table I columns).
type Stats struct {
	Name    string
	Inputs  int
	Keys    int
	Gates   int // logic gates only, matching the paper's "Gates" column
	Outputs int
	Depth   int
}

// Summary computes the Stats of the circuit.
func (c *Circuit) Summary() Stats {
	_, depth := c.Levels()
	return Stats{
		Name:    c.Name,
		Inputs:  len(c.PIs),
		Keys:    len(c.Keys),
		Gates:   c.NumLogicGates(),
		Outputs: len(c.POs),
		Depth:   depth,
	}
}
