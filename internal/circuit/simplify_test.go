package circuit

import (
	"math/rand"
	"testing"
)

// equivalentOnSamples cross-checks two circuits with identical
// interfaces on random vectors.
func equivalentOnSamples(t *testing.T, a, b *Circuit, samples int, seed int64) {
	t.Helper()
	if a.NumPIs() != b.NumPIs() || a.NumKeys() != b.NumKeys() || a.NumPOs() != b.NumPOs() {
		t.Fatalf("interface mismatch: %d/%d PIs, %d/%d keys, %d/%d POs",
			a.NumPIs(), b.NumPIs(), a.NumKeys(), b.NumKeys(), a.NumPOs(), b.NumPOs())
	}
	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < samples; s++ {
		pi := a.RandomInputs(rng)
		key := a.RandomKey(rng)
		x := a.Eval(pi, key, nil)
		y := b.Eval(pi, key, nil)
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("output %d differs for pi=%v key=%v", i, pi, key)
			}
		}
	}
}

func TestSimplifyPreservesC17(t *testing.T) {
	c := buildC17(t)
	s, err := Simplify(c)
	if err != nil {
		t.Fatal(err)
	}
	equivalentOnSamples(t, c, s, 32, 1)
	// c17 is already minimal; gate count must not grow.
	if s.NumLogicGates() > c.NumLogicGates() {
		t.Errorf("simplify grew c17: %d -> %d", c.NumLogicGates(), s.NumLogicGates())
	}
}

func TestSimplifyConstantFolding(t *testing.T) {
	c := New("k")
	a := c.AddInput("a")
	one := c.AddGate(Const1, "one")
	zero := c.AddGate(Const0, "zero")
	g1 := c.AddGate(And, "g1", a, one)  // = a
	g2 := c.AddGate(Or, "g2", g1, zero) // = a
	g3 := c.AddGate(Xor, "g3", g2, one) // = ¬a
	c.AddOutput(g3, "y")
	s, err := Simplify(c)
	if err != nil {
		t.Fatal(err)
	}
	equivalentOnSamples(t, c, s, 4, 2)
	if s.NumLogicGates() != 1 {
		t.Errorf("expected a single NOT gate, got %d gates", s.NumLogicGates())
	}
}

func TestSimplifyAbsorbingConstants(t *testing.T) {
	c := New("k")
	a := c.AddInput("a")
	zero := c.AddGate(Const0, "z")
	one := c.AddGate(Const1, "o")
	g1 := c.AddGate(And, "g1", a, zero) // = 0
	g2 := c.AddGate(Nor, "g2", a, one)  // = 0
	g3 := c.AddGate(Or, "g3", g1, g2)   // = 0
	c.AddOutput(g3, "y")
	s, err := Simplify(c)
	if err != nil {
		t.Fatal(err)
	}
	equivalentOnSamples(t, c, s, 4, 3)
	// Everything folds to a constant-0 output; constants are source
	// gates, so no logic gates remain.
	if s.NumLogicGates() != 0 {
		t.Errorf("got %d logic gates, want 0", s.NumLogicGates())
	}
	if out := s.Eval([]bool{true}, nil, nil); out[0] {
		t.Error("folded output should be constant 0")
	}
}

func TestSimplifyXorCancellation(t *testing.T) {
	c := New("k")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(Xor, "g1", a, b)
	g2 := c.AddGate(Xor, "g2", g1, b) // = a
	c.AddOutput(g2, "y")
	s, err := Simplify(c)
	if err != nil {
		t.Fatal(err)
	}
	equivalentOnSamples(t, c, s, 4, 4)
	// XOR flattening splices the inner gate, so XOR(XOR(a,b),b)
	// becomes XOR(a,b,b) and the pair cancels: the output is just a.
	if s.NumLogicGates() != 0 {
		t.Errorf("XOR(XOR(a,b),b) should fold to a, got %d gates", s.NumLogicGates())
	}
}

func TestSimplifyDuplicateFanin(t *testing.T) {
	c := New("k")
	a := c.AddInput("a")
	g1 := c.AddGate(And, "g1", a, a) // = a
	g2 := c.AddGate(Xor, "g2", a, a) // = 0
	g3 := c.AddGate(Or, "g3", g1, g2)
	c.AddOutput(g3, "y")
	s, err := Simplify(c)
	if err != nil {
		t.Fatal(err)
	}
	equivalentOnSamples(t, c, s, 4, 5)
	if s.NumLogicGates() != 0 {
		t.Errorf("AND(a,a) ∨ XOR(a,a) should fold to just a, got %d gates", s.NumLogicGates())
	}
}

func TestSimplifyMux(t *testing.T) {
	c := New("k")
	s0 := c.AddInput("s")
	a := c.AddInput("a")
	b := c.AddInput("b")
	one := c.AddGate(Const1, "one")
	zero := c.AddGate(Const0, "zero")
	m1 := c.AddGate(Mux, "m1", zero, a, b)    // = a
	m2 := c.AddGate(Mux, "m2", s0, one, b)    // = ¬s ∨ ... = (¬s) + (s∧b)
	m3 := c.AddGate(Mux, "m3", s0, a, a)      // = a
	m4 := c.AddGate(Mux, "m4", s0, zero, one) // = s
	g := c.AddGate(Xor, "g", m1, m2)
	g2 := c.AddGate(Xor, "g2", m3, m4)
	g3 := c.AddGate(Xor, "g3", g, g2)
	c.AddOutput(g3, "y")
	simp, err := Simplify(c)
	if err != nil {
		t.Fatal(err)
	}
	equivalentOnSamples(t, c, simp, 8, 6)
}

func TestSimplifyCSE(t *testing.T) {
	c := New("k")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(And, "g1", a, b)
	g2 := c.AddGate(And, "g2", b, a) // same function, swapped fanin
	g3 := c.AddGate(Xor, "g3", g1, g2)
	c.AddOutput(g3, "y")
	s, err := Simplify(c)
	if err != nil {
		t.Fatal(err)
	}
	equivalentOnSamples(t, c, s, 4, 7)
	// g1 and g2 merge; XOR(x,x) folds to 0.
	if s.NumLogicGates() > 1 {
		t.Errorf("CSE missed the commuted AND pair: %d gates", s.NumLogicGates())
	}
}

func TestSimplifyDeadGateSweep(t *testing.T) {
	c := New("k")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(And, "live", a, b)
	c.AddGate(Or, "dead1", a, b)
	c.AddGate(Xor, "dead2", a, b)
	c.AddOutput(g1, "y")
	s, err := Simplify(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumLogicGates() != 1 {
		t.Errorf("dead gates survived: %d", s.NumLogicGates())
	}
}

func TestSimplifyPreservesInterface(t *testing.T) {
	c := New("k")
	a := c.AddInput("a")
	c.AddInput("unused_b")
	k := c.AddKey("keyinput0")
	c.AddKey("unused_key")
	g := c.AddGate(Xor, "g", a, k)
	c.AddOutput(g, "y")
	c.AddOutput(a, "passthru")
	s, err := Simplify(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPIs() != 2 || s.NumKeys() != 2 || s.NumPOs() != 2 {
		t.Fatalf("interface changed: %d PIs %d keys %d POs", s.NumPIs(), s.NumKeys(), s.NumPOs())
	}
	if s.OutputName(0) != "y" || s.OutputName(1) != "passthru" {
		t.Errorf("output names lost: %q %q", s.OutputName(0), s.OutputName(1))
	}
	equivalentOnSamples(t, c, s, 16, 8)
}

func TestSimplifyConstantOutput(t *testing.T) {
	c := New("k")
	a := c.AddInput("a")
	na := c.AddGate(Not, "na", a)
	g := c.AddGate(And, "g", a, na) // = 0
	c.AddOutput(g, "y")
	s, err := Simplify(c)
	if err != nil {
		t.Fatal(err)
	}
	equivalentOnSamples(t, c, s, 4, 9)
	// Complement-pair detection resolves AND(a, ¬a) to constant 0.
	if s.NumLogicGates() != 0 {
		t.Errorf("AND(a, ¬a) should fold to constant 0, got %d gates", s.NumLogicGates())
	}
	if out := s.Eval([]bool{true}, nil, nil); out[0] {
		t.Error("folded output should be constant 0")
	}
}

func TestSimplifyRandomCircuits(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		c := randomCircuit(seed, 10, 120, 8)
		s, err := Simplify(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		equivalentOnSamples(t, c, s, 60, seed+100)
		if s.NumLogicGates() > c.NumLogicGates() {
			t.Errorf("seed %d: simplify grew the netlist %d -> %d",
				seed, c.NumLogicGates(), s.NumLogicGates())
		}
	}
}

func TestSimplifyIdempotent(t *testing.T) {
	c := randomCircuit(5, 10, 150, 8)
	s1, err := Simplify(c)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Simplify(s1)
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumLogicGates() > s1.NumLogicGates() {
		t.Errorf("second pass grew the netlist: %d -> %d", s1.NumLogicGates(), s2.NumLogicGates())
	}
	equivalentOnSamples(t, s1, s2, 40, 11)
}

// TestSimplifyXorCancelThroughNotChain is the regression test for the
// pairwise-cancellation gap: XOR(NOT(NOT(x)), x) used to survive as a
// NOT chain plus an XOR because cancellation only compared raw gate
// ids. Double-negation elimination now exposes the duplicate fanin.
func TestSimplifyXorCancelThroughNotChain(t *testing.T) {
	c := New("k")
	a := c.AddInput("a")
	n1 := c.AddGate(Not, "n1", a)
	n2 := c.AddGate(Not, "n2", n1)
	g := c.AddGate(Xor, "g", n2, a)
	c.AddOutput(g, "y")
	s, err := Simplify(c)
	if err != nil {
		t.Fatal(err)
	}
	equivalentOnSamples(t, c, s, 4, 21)
	if s.NumLogicGates() != 0 {
		t.Errorf("XOR(¬¬a, a) should fold to constant 0, got %d gates", s.NumLogicGates())
	}
	if out := s.Eval([]bool{true}, nil, nil); out[0] {
		t.Error("folded output should be constant 0")
	}
}

// TestSimplifyXorCancelAfterCSE checks cancellation fires on fanins
// that only become duplicates once CSE merges them (commuted AND).
func TestSimplifyXorCancelAfterCSE(t *testing.T) {
	c := New("k")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(And, "g1", a, b)
	g2 := c.AddGate(And, "g2", b, a)
	g := c.AddGate(Xor, "g", g1, g2)
	c.AddOutput(g, "y")
	s, err := Simplify(c)
	if err != nil {
		t.Fatal(err)
	}
	equivalentOnSamples(t, c, s, 4, 22)
	if s.NumLogicGates() != 0 {
		t.Errorf("XOR of commuted ANDs should fold to constant 0, got %d gates", s.NumLogicGates())
	}
}

// TestSimplifyComplementAfterDeMorgan: NOR(¬a,¬b) normalises to
// AND(a,b), which the strash table then recognises as the complement
// of NAND(a,b), so their XOR is constant 1.
func TestSimplifyComplementAfterDeMorgan(t *testing.T) {
	c := New("k")
	a := c.AddInput("a")
	b := c.AddInput("b")
	nd := c.AddGate(Nand, "nd", a, b)
	na := c.AddGate(Not, "na", a)
	nb := c.AddGate(Not, "nb", b)
	nr := c.AddGate(Nor, "nr", na, nb)
	g := c.AddGate(Xor, "g", nd, nr)
	c.AddOutput(g, "y")
	s, err := Simplify(c)
	if err != nil {
		t.Fatal(err)
	}
	equivalentOnSamples(t, c, s, 4, 23)
	if s.NumLogicGates() != 0 {
		t.Errorf("XOR(NAND(a,b), NOR(¬a,¬b)) should fold to constant 1, got %d gates",
			s.NumLogicGates())
	}
	if out := s.Eval([]bool{false, true}, nil, nil); !out[0] {
		t.Error("folded output should be constant 1")
	}
}

// TestSimplifyMuxComplementArms: a MUX whose arms are complements is
// a disguised parity gate.
func TestSimplifyMuxComplementArms(t *testing.T) {
	c := New("k")
	s0 := c.AddInput("s")
	a := c.AddInput("a")
	na := c.AddGate(Not, "na", a)
	m := c.AddGate(Mux, "m", s0, a, na) // = s ⊕ a
	c.AddOutput(m, "y")
	simp, err := Simplify(c)
	if err != nil {
		t.Fatal(err)
	}
	equivalentOnSamples(t, c, simp, 8, 24)
	if simp.NumLogicGates() != 1 {
		t.Errorf("mux(s,a,¬a) should fold to a single XOR, got %d gates", simp.NumLogicGates())
	}
}

// TestSimplifyEquivalence2k is the randomized large-circuit harness:
// 2k-gate netlists must stay functionally equivalent (and never grow)
// through the full strash + rewrite + sweep pipeline.
func TestSimplifyEquivalence2k(t *testing.T) {
	seeds := []int64{41, 42, 43, 44, 45}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		c := randomCircuit(seed, 24, 2000, 16)
		s, err := Simplify(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		equivalentOnSamples(t, c, s, 48, seed+300)
		if s.NumLogicGates() > c.NumLogicGates() {
			t.Errorf("seed %d: simplify grew the netlist %d -> %d",
				seed, c.NumLogicGates(), s.NumLogicGates())
		}
	}
}

func TestPruneKeepsInterface(t *testing.T) {
	c := New("p")
	c.AddInput("a")
	b := c.AddInput("b")
	c.AddGate(Not, "dead", b)
	g := c.AddGate(Buf, "live", b)
	c.AddOutput(g, "y")
	p := Prune(c)
	if p.NumPIs() != 2 || p.NumPOs() != 1 {
		t.Fatalf("interface changed")
	}
	if p.NumLogicGates() != 1 {
		t.Errorf("dead gate survived prune: %d", p.NumLogicGates())
	}
}

func BenchmarkSimplifyRandom2k(b *testing.B) {
	c := randomCircuit(1, 50, 2000, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simplify(c); err != nil {
			b.Fatal(err)
		}
	}
}
