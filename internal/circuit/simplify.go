package circuit

import (
	"fmt"
	"sort"
)

// sval is a simplified wire value: a constant or a gate in the new
// circuit.
type sval struct {
	isConst bool
	cval    bool
	id      int
}

func constV(v bool) sval { return sval{isConst: true, cval: v} }
func wireV(id int) sval  { return sval{id: id} }

// Simplify returns a functionally equivalent copy of the circuit with
// standard netlist clean-ups applied:
//
//   - constant propagation (Const0/Const1 folded through gates),
//   - identity folding (BUF collapsed, single-input AND/OR/XOR
//     reduced, duplicate AND/OR fanins deduplicated, XOR pairs
//     cancelled, constant-selected MUXes resolved),
//   - common-subexpression elimination (structurally identical gates
//     merged; commutative gates canonicalised by sorted fanin),
//   - dead-gate sweep (gates outside every output's fanin cone drop).
//
// The interface is preserved exactly: all primary/key inputs remain
// (in order) even if unused, and outputs keep their order and names.
// Locking flows use it to emulate the light resynthesis a foundry
// netlist would have seen.
func Simplify(c *Circuit) (*Circuit, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := New(c.Name)
	val := make([]sval, len(c.Gates))

	cse := map[string]int{}
	emit := func(t GateType, name string, fanin ...int) int {
		sig := signature(t, fanin)
		if id, ok := cse[sig]; ok {
			return id
		}
		id := n.AddGate(t, name, fanin...)
		cse[sig] = id
		return id
	}
	var constGate [2]int
	haveConst := [2]bool{}
	materialize := func(v sval) int {
		if !v.isConst {
			return v.id
		}
		idx := 0
		ty := Const0
		if v.cval {
			idx, ty = 1, Const1
		}
		if !haveConst[idx] {
			constGate[idx] = n.AddGate(ty, fmt.Sprintf("const%d", idx))
			haveConst[idx] = true
		}
		return constGate[idx]
	}

	for _, id := range c.PIs {
		val[id] = wireV(n.AddInput(c.Gates[id].Name))
	}
	for _, id := range c.Keys {
		val[id] = wireV(n.AddKey(c.Gates[id].Name))
	}

	fan := make([]sval, 0, 8)
	for _, id := range order {
		g := &c.Gates[id]
		if g.Type == Input || g.Type == Key {
			continue
		}
		fan = fan[:0]
		for _, f := range g.Fanin {
			fan = append(fan, val[f])
		}
		val[id] = foldGate(g, fan, emit)
	}

	for i, po := range c.POs {
		name := ""
		if i < len(c.PONames) {
			name = c.PONames[i]
		}
		if name == "" {
			name = c.Gates[po].Name
		}
		n.AddOutput(materialize(val[po]), name)
	}

	pruned := Prune(n)
	if err := pruned.Validate(); err != nil {
		return nil, fmt.Errorf("circuit: Simplify produced invalid netlist: %w", err)
	}
	return pruned, nil
}

// foldGate computes the simplified value of one gate.
func foldGate(g *Gate, fan []sval, emit func(GateType, string, ...int) int) sval {
	notOf := func(v sval) sval {
		if v.isConst {
			return constV(!v.cval)
		}
		return wireV(emit(Not, g.Name+"_n", v.id))
	}
	switch g.Type {
	case Const0:
		return constV(false)
	case Const1:
		return constV(true)
	case Buf:
		return fan[0]
	case Not:
		return notOf(fan[0])
	case And, Nand, Or, Nor:
		isOr := g.Type == Or || g.Type == Nor
		neg := g.Type == Nand || g.Type == Nor
		var wires []int
		for _, v := range fan {
			if v.isConst {
				if v.cval == isOr { // AND·0 or OR+1: absorbing
					return constV(isOr != neg)
				}
				continue // identity element: drop
			}
			wires = append(wires, v.id)
		}
		wires = dedupSorted(wires)
		switch len(wires) {
		case 0:
			return constV(!isOr != neg) // AND()=1, OR()=0, then negate
		case 1:
			v := wireV(wires[0])
			if neg {
				return notOf(v)
			}
			return v
		}
		t := And
		switch {
		case isOr && neg:
			t = Nor
		case isOr:
			t = Or
		case neg:
			t = Nand
		}
		return wireV(emit(t, g.Name, wires...))
	case Xor, Xnor:
		parity := g.Type == Xnor
		var wires []int
		for _, v := range fan {
			if v.isConst {
				if v.cval {
					parity = !parity
				}
				continue
			}
			wires = append(wires, v.id)
		}
		wires = cancelPairsSorted(wires)
		switch len(wires) {
		case 0:
			return constV(parity)
		case 1:
			v := wireV(wires[0])
			if parity {
				return notOf(v)
			}
			return v
		}
		t := Xor
		if parity {
			t = Xnor
		}
		return wireV(emit(t, g.Name, wires...))
	case Mux:
		sel, a, b := fan[0], fan[1], fan[2]
		if sel.isConst {
			if sel.cval {
				return b
			}
			return a
		}
		if a.isConst && b.isConst {
			switch {
			case a.cval == b.cval:
				return a
			case b.cval: // mux(s,0,1) = s
				return sel
			default: // mux(s,1,0) = ¬s
				return notOf(sel)
			}
		}
		if !a.isConst && !b.isConst && a.id == b.id {
			return a
		}
		// Lower constant arms: mux(s,a,1) = ¬s·a + s = s ∨ a ... keep
		// it simple and only fold the fully symbolic case.
		sid := sel.id
		aid, bid := -1, -1
		if a.isConst || b.isConst {
			// Materialise the constant arm through emit-able constant
			// gates is not available here; keep a MUX with NOT/AND/OR
			// decomposition instead.
			// mux(s,a,b) = (¬s ∧ a) ∨ (s ∧ b); constant arms fold:
			ns := emit(Not, g.Name+"_ns", sid)
			var terms []int
			if a.isConst {
				if a.cval {
					terms = append(terms, ns)
				}
			} else {
				terms = append(terms, emit(And, g.Name+"_ta", ns, a.id))
			}
			if b.isConst {
				if b.cval {
					terms = append(terms, sid)
				}
			} else {
				terms = append(terms, emit(And, g.Name+"_tb", sid, b.id))
			}
			switch len(terms) {
			case 0:
				return constV(false)
			case 1:
				return wireV(terms[0])
			default:
				return wireV(emit(Or, g.Name+"_or", terms...))
			}
		}
		aid, bid = a.id, b.id
		return wireV(emit(Mux, g.Name, sid, aid, bid))
	}
	panic("circuit: foldGate: unreachable gate type " + g.Type.String())
}

func dedupSorted(ws []int) []int {
	sort.Ints(ws)
	out := ws[:0]
	prev := -1
	for _, w := range ws {
		if w != prev {
			out = append(out, w)
			prev = w
		}
	}
	return out
}

func cancelPairsSorted(ws []int) []int {
	sort.Ints(ws)
	out := ws[:0]
	for i := 0; i < len(ws); {
		if i+1 < len(ws) && ws[i] == ws[i+1] {
			i += 2 // x ⊕ x = 0
			continue
		}
		out = append(out, ws[i])
		i++
	}
	return out
}

func signature(t GateType, fanin []int) string {
	f := append([]int(nil), fanin...)
	switch t {
	case And, Nand, Or, Nor, Xor, Xnor:
		sort.Ints(f)
	}
	sig := fmt.Sprintf("%d:", t)
	for _, x := range f {
		sig += fmt.Sprintf("%d,", x)
	}
	return sig
}

// Prune returns a copy of the circuit without gates outside every
// output's fanin cone (inputs and keys are always kept, preserving the
// interface).
func Prune(c *Circuit) *Circuit {
	keep := c.ReachesOutput()
	for _, id := range c.PIs {
		keep[id] = true
	}
	for _, id := range c.Keys {
		keep[id] = true
	}
	remap := make([]int, len(c.Gates))
	for i := range remap {
		remap[i] = -1
	}
	n := New(c.Name)
	for _, id := range c.MustTopoOrder() {
		if !keep[id] {
			continue
		}
		g := &c.Gates[id]
		switch g.Type {
		case Input:
			remap[id] = n.AddInput(g.Name)
		case Key:
			remap[id] = n.AddKey(g.Name)
		default:
			fanin := make([]int, len(g.Fanin))
			for i, f := range g.Fanin {
				fanin[i] = remap[f]
			}
			remap[id] = n.AddGate(g.Type, g.Name, fanin...)
		}
	}
	for i, po := range c.POs {
		name := ""
		if i < len(c.PONames) {
			name = c.PONames[i]
		}
		n.AddOutput(remap[po], name)
	}
	return n
}
