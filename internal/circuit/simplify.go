package circuit

import (
	"fmt"
	"sort"
)

// sval is a simplified wire value: a constant or a gate in the new
// circuit.
type sval struct {
	isConst bool
	cval    bool
	id      int
}

func constV(v bool) sval { return sval{isConst: true, cval: v} }
func wireV(id int) sval  { return sval{id: id} }

// maxFlatten caps the fanin width produced by AND/OR/XOR flattening.
// Wider gates would still encode fine (Tseitin handles n-ary gates)
// but very wide conjunctions defeat sharing and bloat single clauses.
const maxFlatten = 16

// simplifyMaxPasses bounds the outer rewrite fixed-point. Rewrites
// (De Morgan, inverter absorption, flattening) can expose new merges
// for the next pass; in practice two passes reach the fixed point and
// the bound only guards against pathological ping-ponging.
const simplifyMaxPasses = 4

// Simplify returns a functionally equivalent copy of the circuit with
// standard netlist clean-ups applied:
//
//   - constant propagation (Const0/Const1 folded through gates, and
//     re-propagated when later merges expose new constants),
//   - identity folding (BUF collapsed, single-input AND/OR/XOR
//     reduced, duplicate AND/OR fanins deduplicated, XOR pairs and
//     complement pairs cancelled, constant-selected MUXes resolved),
//   - structural hashing (structurally identical gates merged via an
//     integer strash table; commutative gates canonicalised by sorted
//     fanin),
//   - rewriting (double-negation elimination, inverter absorption
//     into the dual gate, De Morgan normalisation, bounded AND/OR/XOR
//     flattening), iterated to a bounded fixed point,
//   - dead-gate sweep (gates outside every output's fanin cone drop;
//     the reachability walk is iterative, so 100k-gate cones do not
//     risk stack growth).
//
// The interface is preserved exactly: all primary/key inputs remain
// (in order) even if unused, and outputs keep their order and names.
// Locking flows use it to emulate the light resynthesis a foundry
// netlist would have seen.
func Simplify(c *Circuit) (*Circuit, error) {
	var out *Circuit
	cur := c
	for pass := 0; pass < simplifyMaxPasses; pass++ {
		next, err := simplifyOnce(cur)
		if err != nil {
			return nil, err
		}
		if out != nil && next.NumLogicGates() >= out.NumLogicGates() {
			break // fixed point: the rewrite pass stopped shrinking
		}
		out = next
		cur = next
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("circuit: Simplify produced invalid netlist: %w", err)
	}
	return out, nil
}

// simplifyOnce is one full fold + strash + rewrite + sweep pass.
func simplifyOnce(c *Circuit) (*Circuit, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	sm := &simplifier{
		n:       New(c.Name),
		buckets: make(map[uint64][]int32, len(c.Gates)),
	}
	val := make([]sval, len(c.Gates))

	for _, id := range c.PIs {
		val[id] = wireV(sm.n.AddInput(c.Gates[id].Name))
	}
	for _, id := range c.Keys {
		val[id] = wireV(sm.n.AddKey(c.Gates[id].Name))
	}

	fan := make([]sval, 0, 8)
	for _, id := range order {
		g := &c.Gates[id]
		if g.Type == Input || g.Type == Key {
			continue
		}
		fan = fan[:0]
		for _, f := range g.Fanin {
			fan = append(fan, val[f])
		}
		val[id] = sm.foldGate(g, fan)
	}

	for i, po := range c.POs {
		name := ""
		if i < len(c.PONames) {
			name = c.PONames[i]
		}
		if name == "" {
			name = c.Gates[po].Name
		}
		sm.n.AddOutput(sm.materialize(val[po]), name)
	}

	return Prune(sm.n), nil
}

// simplifier builds the simplified copy of a circuit. Its strash
// table maps (type, canonical fanin) to the existing gate id in the
// new circuit, keyed by an integer hash — no per-gate string
// signatures, which were the dominant allocation of the old CSE map.
type simplifier struct {
	n         *Circuit
	buckets   map[uint64][]int32
	absorb    []bool // per-operand drop marks, reused across emits
	constGate [2]int
	haveConst [2]bool
}

func strashHash(t GateType, fanin []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(t)) * prime64
	for _, f := range fanin {
		h = (h ^ uint64(f)) * prime64
	}
	return h
}

// lookup returns the id of an existing gate with this exact type and
// (canonically ordered) fanin, or -1. It never inserts.
func (sm *simplifier) lookup(t GateType, fanin []int) int {
	for _, cand := range sm.buckets[strashHash(t, fanin)] {
		g := &sm.n.Gates[cand]
		if g.Type != t || len(g.Fanin) != len(fanin) {
			continue
		}
		same := true
		for i, f := range g.Fanin {
			if f != fanin[i] {
				same = false
				break
			}
		}
		if same {
			return int(cand)
		}
	}
	return -1
}

// strash returns the existing structurally identical gate or inserts
// a new one. fanin must already be in canonical order.
func (sm *simplifier) strash(t GateType, name string, fanin []int) int {
	if id := sm.lookup(t, fanin); id >= 0 {
		return id
	}
	id := sm.n.AddGate(t, name, fanin...)
	h := strashHash(t, fanin)
	sm.buckets[h] = append(sm.buckets[h], int32(id))
	return id
}

// strashPolar is strash with polarity-dual reuse: when the dual gate
// over the same operands already exists (NAND vs AND, NOR vs OR,
// XNOR vs XOR), return a NOT of it instead of a fresh gate. Gate
// count is unchanged (one NOT replaces one dual gate) but inverters
// are free in the CNF encoding — a literal flip — so both polarities
// share a single Tseitin variable.
func (sm *simplifier) strashPolar(t GateType, name string, fanin []int) int {
	if id := sm.lookup(t, fanin); id >= 0 {
		return id
	}
	if d := sm.lookup(dualType(t), fanin); d >= 0 {
		one := [1]int{d}
		return sm.strash(Not, name+"_n", one[:])
	}
	return sm.strash(t, name, fanin)
}

func (sm *simplifier) materialize(v sval) int {
	if !v.isConst {
		return v.id
	}
	idx := 0
	ty := Const0
	if v.cval {
		idx, ty = 1, Const1
	}
	if !sm.haveConst[idx] {
		sm.constGate[idx] = sm.n.AddGate(ty, fmt.Sprintf("const%d", idx))
		sm.haveConst[idx] = true
	}
	return sm.constGate[idx]
}

func dualType(t GateType) GateType {
	switch t {
	case And:
		return Nand
	case Nand:
		return And
	case Or:
		return Nor
	case Nor:
		return Or
	case Xor:
		return Xnor
	case Xnor:
		return Xor
	}
	panic("circuit: dualType: " + t.String())
}

// compID returns the id of a gate in the new circuit that computes
// the complement of wire id, or -1 when none exists yet. It only ever
// looks up — complements are recognised, never created — so using it
// for cancellation cannot grow the netlist.
func (sm *simplifier) compID(id int) int {
	g := &sm.n.Gates[id]
	switch g.Type {
	case Not:
		return g.Fanin[0]
	case And, Nand, Or, Nor, Xor, Xnor:
		if d := sm.lookup(dualType(g.Type), g.Fanin); d >= 0 {
			return d
		}
	}
	one := [1]int{id}
	return sm.lookup(Not, one[:])
}

// notOf complements a value with inverter absorption: the complement
// of an AND/OR/XOR-family gate is its dual gate, and double negation
// cancels. Only source wires (inputs, keys, MUX outputs) get a real
// NOT gate, which is what keeps NOT chains out of the new circuit and
// lets XOR cancellation see through them.
func (sm *simplifier) notOf(v sval, name string) sval {
	if v.isConst {
		return constV(!v.cval)
	}
	g := &sm.n.Gates[v.id]
	switch g.Type {
	case Not:
		return wireV(g.Fanin[0])
	case And, Nand, Or, Nor, Xor, Xnor:
		return sm.emit(dualType(g.Type), name, append([]int(nil), g.Fanin...))
	}
	one := [1]int{v.id}
	return wireV(sm.strash(Not, name, one[:]))
}

// foldGate computes the simplified value of one gate: constant-level
// folding over sval operands, then emit for the structural rules.
func (sm *simplifier) foldGate(g *Gate, fan []sval) sval {
	switch g.Type {
	case Const0:
		return constV(false)
	case Const1:
		return constV(true)
	case Buf:
		return fan[0]
	case Not:
		return sm.notOf(fan[0], g.Name+"_n")
	case And, Nand, Or, Nor:
		isOr := g.Type == Or || g.Type == Nor
		neg := g.Type == Nand || g.Type == Nor
		var wires []int
		for _, v := range fan {
			if v.isConst {
				if v.cval == isOr { // AND·0 or OR+1: absorbing
					return constV(isOr != neg)
				}
				continue // identity element: drop
			}
			wires = append(wires, v.id)
		}
		base := And
		if isOr {
			base = Or
		}
		t := base
		if neg {
			t = dualType(base)
		}
		return sm.emit(t, g.Name, wires)
	case Xor, Xnor:
		parity := g.Type == Xnor
		var wires []int
		for _, v := range fan {
			if v.isConst {
				if v.cval {
					parity = !parity
				}
				continue
			}
			wires = append(wires, v.id)
		}
		t := Xor
		if parity {
			t = Xnor
		}
		return sm.emit(t, g.Name, wires)
	case Mux:
		return sm.foldMux(g, fan)
	}
	panic("circuit: foldGate: unreachable gate type " + g.Type.String())
}

func (sm *simplifier) foldMux(g *Gate, fan []sval) sval {
	sel, a, b := fan[0], fan[1], fan[2]
	if sel.isConst {
		if sel.cval {
			return b
		}
		return a
	}
	// An inverted select swaps the arms: mux(¬s,a,b) = mux(s,b,a).
	if ng := &sm.n.Gates[sel.id]; ng.Type == Not {
		sel = wireV(ng.Fanin[0])
		a, b = b, a
	}
	if a.isConst && b.isConst {
		switch {
		case a.cval == b.cval:
			return a
		case b.cval: // mux(s,0,1) = s
			return sel
		default: // mux(s,1,0) = ¬s
			return sm.notOf(sel, g.Name+"_n")
		}
	}
	if !a.isConst && !b.isConst {
		if a.id == b.id {
			return a
		}
		// Complementary arms are a disguised parity gate:
		// mux(s,a,¬a) = s⊕a and mux(s,¬b,b) = ¬(s⊕b).
		if sm.compID(a.id) == b.id {
			return sm.emit(Xor, g.Name, []int{sel.id, a.id})
		}
		if sm.compID(b.id) == a.id {
			return sm.emit(Xnor, g.Name, []int{sel.id, b.id})
		}
	}
	sid := sel.id
	if a.isConst || b.isConst {
		// mux(s,a,b) = (¬s ∧ a) ∨ (s ∧ b); constant arms fold the
		// corresponding term away (or reduce it to the select).
		ns := sm.notOf(sel, g.Name+"_ns")
		var terms []sval
		if a.isConst {
			if a.cval {
				terms = append(terms, ns)
			}
		} else {
			terms = append(terms, sm.emit(And, g.Name+"_ta", []int{sm.materialize(ns), a.id}))
		}
		if b.isConst {
			if b.cval {
				terms = append(terms, wireV(sid))
			}
		} else {
			terms = append(terms, sm.emit(And, g.Name+"_tb", []int{sid, b.id}))
		}
		var wires []int
		for _, t := range terms {
			if t.isConst {
				if t.cval {
					return constV(true)
				}
				continue
			}
			wires = append(wires, t.id)
		}
		return sm.emit(Or, g.Name+"_or", wires)
	}
	return wireV(sm.strash(Mux, g.Name, []int{sid, a.id, b.id}))
}

// emit creates (or finds) the gate computing t over the given wires,
// after applying the structural rewrite rules:
//
//   - bounded same-polarity flattening (AND inside AND/NAND, OR
//     inside OR/NOR, XOR/XNOR inside XOR/XNOR with parity folding),
//   - canonical sort + duplicate handling (idempotent for AND/OR,
//     pairwise cancellation for XOR),
//   - complement-pair detection (x∧¬x=0, x∨¬x=1, x⊕¬x=1) against
//     already-built gates via the strash table,
//   - De Morgan normalisation when every operand is inverted,
//   - degenerate-width collapse (empty and single-operand gates).
//
// It returns an sval because rules can resolve the gate to a constant
// or an existing wire; callers then re-propagate those constants.
func (sm *simplifier) emit(t GateType, name string, wires []int) sval {
	switch t {
	case And, Nand, Or, Nor:
		return sm.emitAndOr(t, name, wires)
	case Xor, Xnor:
		return sm.emitXor(t, name, wires)
	}
	panic("circuit: emit: unexpected gate type " + t.String())
}

func (sm *simplifier) emitAndOr(t GateType, name string, wires []int) sval {
	base := And
	if t == Or || t == Nor {
		base = Or
	}
	neg := t == Nand || t == Nor
	isOr := base == Or

	wires = sm.flatten(base, wires)
	wires = dedupSorted(wires)

	// x ∧ ¬x (or x ∨ ¬x) collapses to the absorbing constant.
	for _, w := range wires {
		if c := sm.compID(w); c >= 0 && containsSorted(wires, c) {
			return constV(isOr != neg)
		}
	}

	// Absorption: x ∧ (x ∨ y) = x and x ∨ (x ∧ y) = x — a dual-base
	// operand containing another operand is redundant. All drops are
	// decided against the unmodified operand list before compacting;
	// absorption chains always bottom out at a surviving operand
	// because containment follows strictly decreasing gate ids.
	// Dropping operands never grows the netlist.
	dual := Or
	if isOr {
		dual = And
	}
	sm.absorb = sm.absorb[:0]
	for _, w := range wires {
		g := &sm.n.Gates[w]
		absorbed := false
		if g.Type == dual {
			for _, f := range g.Fanin {
				if f != w && containsSorted(wires, f) {
					absorbed = true
					break
				}
			}
		}
		sm.absorb = append(sm.absorb, absorbed)
	}
	kept := wires[:0]
	for i, w := range wires {
		if !sm.absorb[i] {
			kept = append(kept, w)
		}
	}
	wires = kept

	switch len(wires) {
	case 0:
		return constV(!isOr != neg) // AND()=1, OR()=0, then negate
	case 1:
		if neg {
			return sm.notOf(wireV(wires[0]), name+"_n")
		}
		return wireV(wires[0])
	}

	// De Morgan normalisation: a gate whose operands are all inverted
	// becomes the dual gate over the uninverted operands, which both
	// drops the inverters from the cone and lets the dual merge with
	// gates built directly over the plain wires.
	allNot := true
	for _, w := range wires {
		if sm.n.Gates[w].Type != Not {
			allNot = false
			break
		}
	}
	if allNot {
		stripped := make([]int, len(wires))
		for i, w := range wires {
			stripped[i] = sm.n.Gates[w].Fanin[0]
		}
		// ∧¬xᵢ = ¬(∨xᵢ) and ∨¬xᵢ = ¬(∧xᵢ); the outer negation flips
		// with the gate's own polarity.
		dual := Or
		if isOr {
			dual = And
		}
		ndual := dual
		if !neg {
			ndual = dualType(dual)
		}
		return sm.emit(ndual, name, stripped)
	}

	return wireV(sm.strashPolar(t, name, wires))
}

func (sm *simplifier) emitXor(t GateType, name string, wires []int) sval {
	parity := t == Xnor

	// Flatten nested parity gates transitively under the width cap; an
	// XNOR operand contributes its fanins plus one inversion. Parity
	// gates are materialised as 2-input chains (below), so splicing
	// must iterate to see through a whole chain.
	flat := append(make([]int, 0, len(wires)+4), wires...)
	for i := 0; i < len(flat); {
		g := &sm.n.Gates[flat[i]]
		if (g.Type == Xor || g.Type == Xnor) && len(flat)+len(g.Fanin)-1 <= maxFlatten {
			if g.Type == Xnor {
				parity = !parity
			}
			rest := append(make([]int, 0, len(g.Fanin)+len(flat)-i-1), g.Fanin...)
			rest = append(rest, flat[i+1:]...)
			flat = append(flat[:i], rest...)
			continue // re-examine position i (may have spliced in a chain link)
		}
		i++
	}
	wires = cancelPairsSorted(flat) // x ⊕ x = 0

	// x ⊕ ¬x = 1: cancel complement pairs, flipping parity per pair.
	for i := 0; i < len(wires); i++ {
		c := sm.compID(wires[i])
		if c < 0 {
			continue
		}
		for j := range wires {
			if j == i || wires[j] != c {
				continue
			}
			if i > j {
				i, j = j, i
			}
			wires = append(wires[:j], wires[j+1:]...)
			wires = append(wires[:i], wires[i+1:]...)
			parity = !parity
			i = -1 // restart the scan over the shrunken list
			break
		}
	}

	switch len(wires) {
	case 0:
		return constV(parity)
	case 1:
		if parity {
			return sm.notOf(wireV(wires[0]), name+"_n")
		}
		return wireV(wires[0])
	}
	// Materialise as a chain of 2-input XORs over the sorted operands
	// rather than one wide gate: parity gates cost one CNF variable
	// per pair either way, but chained pairs strash, so gates whose
	// flattened operand lists share a prefix share the encoding too
	// (a wide gate re-derives the whole chain privately). A trailing
	// inversion folds into the final link as an XNOR — emitted
	// directly, not via notOf, which would recurse into this function.
	acc := wires[0]
	for i, w := range wires[1:] {
		lt := Xor
		if parity && i == len(wires)-2 {
			lt = Xnor
		}
		pair := [2]int{w, acc} // acc is always the newer (larger) id
		if acc < w {
			pair = [2]int{acc, w}
		}
		acc = sm.strashPolar(lt, name, pair[:])
	}
	return wireV(acc)
}

// flatten splices operands that are themselves base-type gates (AND
// into AND/NAND, OR into OR/NOR), all-or-nothing under the maxFlatten
// width cap. It creates no gates, so it can only shrink the netlist
// (spliced inner gates die when nothing else uses them).
func (sm *simplifier) flatten(base GateType, wires []int) []int {
	splice, total := false, 0
	for _, w := range wires {
		if g := &sm.n.Gates[w]; g.Type == base {
			splice = true
			total += len(g.Fanin)
		} else {
			total++
		}
	}
	if !splice || total > maxFlatten {
		return wires
	}
	flat := make([]int, 0, total)
	for _, w := range wires {
		if g := &sm.n.Gates[w]; g.Type == base {
			flat = append(flat, g.Fanin...)
			continue
		}
		flat = append(flat, w)
	}
	return flat
}

func containsSorted(ws []int, x int) bool {
	i := sort.SearchInts(ws, x)
	return i < len(ws) && ws[i] == x
}

func dedupSorted(ws []int) []int {
	sort.Ints(ws)
	out := ws[:0]
	prev := -1
	for _, w := range ws {
		if w != prev {
			out = append(out, w)
			prev = w
		}
	}
	return out
}

func cancelPairsSorted(ws []int) []int {
	sort.Ints(ws)
	out := ws[:0]
	for i := 0; i < len(ws); {
		if i+1 < len(ws) && ws[i] == ws[i+1] {
			i += 2 // x ⊕ x = 0
			continue
		}
		out = append(out, ws[i])
		i++
	}
	return out
}

// Prune returns a copy of the circuit without gates outside every
// output's fanin cone (inputs and keys are always kept, preserving the
// interface).
func Prune(c *Circuit) *Circuit {
	keep := c.ReachesOutput()
	for _, id := range c.PIs {
		keep[id] = true
	}
	for _, id := range c.Keys {
		keep[id] = true
	}
	remap := make([]int, len(c.Gates))
	for i := range remap {
		remap[i] = -1
	}
	n := New(c.Name)
	for _, id := range c.MustTopoOrder() {
		if !keep[id] {
			continue
		}
		g := &c.Gates[id]
		switch g.Type {
		case Input:
			remap[id] = n.AddInput(g.Name)
		case Key:
			remap[id] = n.AddKey(g.Name)
		default:
			fanin := make([]int, len(g.Fanin))
			for i, f := range g.Fanin {
				fanin[i] = remap[f]
			}
			remap[id] = n.AddGate(g.Type, g.Name, fanin...)
		}
	}
	for i, po := range c.POs {
		name := ""
		if i < len(c.PONames) {
			name = c.PONames[i]
		}
		n.AddOutput(remap[po], name)
	}
	return n
}
