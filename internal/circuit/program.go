package circuit

// evalOp is one compiled gate operation: the gate's function, its
// output wire slot and a window into the program's flat fanin array.
// Compiling the topological walk once turns the per-pass evaluation
// loop from pointer-chasing Gate structs (type + name pointer + fanin
// slice header per gate) into a linear scan over two dense arrays,
// which is what keeps 100k-gate passes memory-bound on wire data
// instead of on netlist metadata.
type evalOp struct {
	typ  GateType
	nfan int32
	out  int32
	off  int32 // start of the fanin window in evalProg.fanin
}

// evalProg is the compiled evaluation schedule of a circuit: all
// non-source gates in topological order plus the constant wires that
// must be pinned before a pass.
type evalProg struct {
	ops    []evalOp
	fanin  []int32
	const0 []int32 // gate IDs of Const0 sources
	const1 []int32 // gate IDs of Const1 sources
}

// program returns (and caches) the compiled evaluation schedule. Like
// the topological-order cache it is built lazily and invalidated by
// addGate; share a circuit across goroutines only behind a lock or
// after priming both caches (the oracle wrappers in internal/core
// serialise all evaluation, matching the one-physical-chip model).
func (c *Circuit) program() *evalProg {
	if c.prog != nil {
		return c.prog
	}
	p := &evalProg{}
	nfan := 0
	for id := range c.Gates {
		nfan += len(c.Gates[id].Fanin)
	}
	p.fanin = make([]int32, 0, nfan)
	for _, id := range c.MustTopoOrder() {
		g := &c.Gates[id]
		switch g.Type {
		case Input, Key:
			continue
		case Const0:
			p.const0 = append(p.const0, int32(id))
			continue
		case Const1:
			p.const1 = append(p.const1, int32(id))
			continue
		}
		off := int32(len(p.fanin))
		for _, f := range g.Fanin {
			p.fanin = append(p.fanin, int32(f))
		}
		p.ops = append(p.ops, evalOp{typ: g.Type, nfan: int32(len(g.Fanin)), out: int32(id), off: off})
	}
	c.prog = p
	return p
}

// NumLogicOps returns the number of compiled (noise-carrying) gate
// operations: every non-source gate. This is the per-pass flip-stream
// length of the noisy evaluators.
func (c *Circuit) NumLogicOps() int { return len(c.program().ops) }
