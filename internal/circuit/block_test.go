package circuit

import (
	"math/rand"
	"testing"
)

// TestEvalNoisyBlockParityWithBatch is the block-width determinism
// contract: word column k of one blocked pass must be bit-identical to
// the k-th of `words` successive 64-lane passes over the same rng.
func TestEvalNoisyBlockParityWithBatch(t *testing.T) {
	c := randomCircuit(3, 12, 400, 10)
	pi := c.RandomInputs(rand.New(rand.NewSource(77)))
	for _, eps := range []float64{0, 0.003, 0.05, 0.5, 1} {
		for _, words := range []int{1, 2, 4, 8} {
			rngA := rand.New(rand.NewSource(42))
			rngB := rand.New(rand.NewSource(42))
			var scratch BlockScratch
			blk := c.EvalNoisyBlockInto(nil, pi, nil, eps, rngA, words, &scratch)
			for k := 0; k < words; k++ {
				ref := c.EvalNoisyBatch(pi, nil, eps, rngB, nil)
				for i := range ref {
					if blk[i*words+k] != ref[i] {
						t.Fatalf("eps=%v words=%d: output %d word %d differs: %016x vs %016x",
							eps, words, i, k, blk[i*words+k], ref[i])
					}
				}
			}
			// The two rngs must also end in the same state: equal
			// consumption is what keeps later passes aligned too.
			if rngA.Int63() != rngB.Int63() {
				t.Fatalf("eps=%v words=%d: rng streams diverged", eps, words)
			}
		}
	}
}

// TestEvalNoisyBlockScratchReuse checks that a reused scratch and
// output buffer produce the same words as fresh allocations.
func TestEvalNoisyBlockScratchReuse(t *testing.T) {
	c := randomCircuit(4, 8, 200, 6)
	pi := c.RandomInputs(rand.New(rand.NewSource(5)))
	var scratch BlockScratch
	out := make([]uint64, 0, c.NumPOs()*4)
	a := c.EvalNoisyBlockInto(out, pi, nil, 0.01, rand.New(rand.NewSource(9)), 4, &scratch)
	b := c.EvalNoisyBlockInto(nil, pi, nil, 0.01, rand.New(rand.NewSource(9)), 4, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("word %d differs between reused and fresh buffers", i)
		}
	}
	// Mixed widths on the same scratch must not cross-contaminate.
	c.EvalNoisyBlockInto(a, pi, nil, 0.01, rand.New(rand.NewSource(11)), 2, &scratch)
	d := c.EvalNoisyBlockInto(nil, pi, nil, 0.01, rand.New(rand.NewSource(9)), 4, &scratch)
	for i := range b {
		if b[i] != d[i] {
			t.Fatalf("word %d differs after width change on shared scratch", i)
		}
	}
}

func TestEvalNoisyBlockZeroEpsMatchesScalar(t *testing.T) {
	c := randomCircuit(6, 10, 300, 8)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 8; trial++ {
		pi := c.RandomInputs(rng)
		want := c.Eval(pi, nil, nil)
		blk := c.EvalNoisyBlock(pi, nil, 0, rng, 4, nil)
		for i, b := range want {
			for k := 0; k < 4; k++ {
				w := blk[i*4+k]
				if (b && w != ^uint64(0)) || (!b && w != 0) {
					t.Fatalf("trial %d output %d word %d: %016x, want all-%v", trial, i, k, w, b)
				}
			}
		}
	}
}

func TestEvalNoisyBlockPanics(t *testing.T) {
	c := New("p")
	a := c.AddInput("a")
	c.AddOutput(c.AddGate(Not, "n", a), "y")
	rng := rand.New(rand.NewSource(1))
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("width", func() { c.EvalNoisyBlock([]bool{true, false}, nil, 0.1, rng, 2, nil) })
	expectPanic("eps", func() { c.EvalNoisyBlock([]bool{true}, nil, 1.5, rng, 2, nil) })
	expectPanic("words-low", func() { c.EvalNoisyBlock([]bool{true}, nil, 0.1, rng, 0, nil) })
	expectPanic("words-high", func() { c.EvalNoisyBlock([]bool{true}, nil, 0.1, rng, MaxBlockWords+1, nil) })
}

func TestDefaultBlockWords(t *testing.T) {
	if w := DefaultBlockWords(2000); w != MaxBlockWords {
		t.Errorf("2k gates: width %d, want %d", w, MaxBlockWords)
	}
	if w := DefaultBlockWords(100000); w < 1 || w > MaxBlockWords {
		t.Errorf("100k gates: width %d out of range", w)
	}
	big := DefaultBlockWords(1 << 22)
	if big != 1 {
		t.Errorf("4M gates: width %d, want 1 (nothing fits the cache budget)", big)
	}
	if DefaultBlockWords(0) < 1 {
		t.Error("degenerate gate count must still give width >= 1")
	}
}

// TestProgramInvalidation ensures the compiled schedule is rebuilt
// after the netlist changes.
func TestProgramInvalidation(t *testing.T) {
	c := New("p")
	a := c.AddInput("a")
	n1 := c.AddGate(Not, "n1", a)
	c.AddOutput(n1, "y")
	if got := c.NumLogicOps(); got != 1 {
		t.Fatalf("ops = %d, want 1", got)
	}
	n2 := c.AddGate(Not, "n2", n1)
	c.AddOutput(n2, "y2")
	if got := c.NumLogicOps(); got != 2 {
		t.Fatalf("ops after AddGate = %d, want 2 (stale program cache)", got)
	}
}

func benchEvalNoisyBlock2k(b *testing.B, eps float64, words int) {
	c := randomCircuit(1, 64, 2000, 32)
	pi := c.RandomInputs(rand.New(rand.NewSource(3)))
	rng := rand.New(rand.NewSource(4))
	var scratch BlockScratch
	out := make([]uint64, c.NumPOs()*words)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = c.EvalNoisyBlockInto(out, pi, nil, eps, rng, words, &scratch)
	}
	// words × 64 lanes per iteration: samples/op for comparison with
	// BenchmarkEvalNoisyBatch2k (64 samples/op).
	b.ReportMetric(float64(words*BatchLanes), "samples/op")
}

func BenchmarkEvalNoisyBlock2kW8(b *testing.B) { benchEvalNoisyBlock2k(b, 0.01, 8) }

// The LowEps pair measures the near-deterministic regime (eps=1e-3,
// where large circuits actually operate): flip-mask generation is
// sample-proportional and bounds the speedup at the eps≥0.01 settings
// above, but at small eps the gate evaluation dominates and the block
// width's amortisation of the schedule walk is fully visible.
func BenchmarkEvalNoisyBlock2kW1LowEps(b *testing.B) { benchEvalNoisyBlock2k(b, 0.001, 1) }
func BenchmarkEvalNoisyBlock2kW8LowEps(b *testing.B) { benchEvalNoisyBlock2k(b, 0.001, 8) }
