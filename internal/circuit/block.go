package circuit

import (
	"fmt"
	"math"
	"math/rand"
)

// MaxBlockWords bounds the block width of EvalNoisyBlockInto: eight
// 64-bit words per wire, i.e. 512 Monte-Carlo lanes per pass.
const MaxBlockWords = 8

// blockCacheBudget is the target footprint of one blocked pass: wire
// words plus flip-mask words should stay within a mid-level-cache
// sized budget so a pass streams instead of thrashing. 8 MiB keeps
// W=8 for everything up to ~65k gates and degrades gracefully (W=4,
// then 2, then 1) beyond that; at 100k+ gates even a single-word pass
// no longer fits L2, so the narrower block costs nothing and the win
// comes from the compiled schedule instead.
const blockCacheBudget = 8 << 20

// DefaultBlockWords returns the recommended block width for a circuit
// with the given gate count: the largest power-of-two W ≤ MaxBlockWords
// whose wire + mask footprint (two uint64 arrays of numGates×W) fits
// blockCacheBudget, and at least 1.
func DefaultBlockWords(numGates int) int {
	if numGates < 1 {
		numGates = 1
	}
	for w := MaxBlockWords; w > 1; w /= 2 {
		if numGates*16*w <= blockCacheBudget {
			return w
		}
	}
	return 1
}

// BlockScratch owns the wire and flip-mask buffers of blocked noisy
// evaluation. A zero BlockScratch is ready for use; buffers grow on
// demand and are reused across calls, so one scratch per oracle keeps
// the sampling hot path allocation-free at any block width. A
// BlockScratch is not safe for concurrent use.
type BlockScratch struct {
	wires []uint64
	masks []uint64
}

func grow(buf []uint64, n int) []uint64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]uint64, n)
}

// EvalNoisyBlock is EvalNoisyBlockInto with a freshly allocated output
// slice.
func (c *Circuit) EvalNoisyBlock(pi, key []bool, eps float64, rng *rand.Rand, words int, scratch *BlockScratch) []uint64 {
	return c.EvalNoisyBlockInto(nil, pi, key, eps, rng, words, scratch)
}

// EvalNoisyBlockInto evaluates words×BatchLanes independent noisy
// samples of the circuit in one blocked bit-parallel pass: every wire
// is a row of `words` 64-bit machine words, each bit lane an
// independent Monte-Carlo sample under the paper's per-gate error
// model. It generalises EvalNoisyBatchInto (the words=1 case) so a
// signal-probability query with Ns samples costs
// ceil(Ns/(64·words)) full-circuit passes instead of ceil(Ns/64).
//
// The result holds NumPOs rows: output i's word k sits at
// out[i*words+k]. Determinism contract: with the same rng state, word
// column k of a blocked pass is bit-identical to the k-th of `words`
// successive EvalNoisyBatchInto calls — the per-word flip streams are
// drawn in exactly that order — so attack trajectories (keys, DIPs,
// iteration and oracle-query counts) are independent of the block
// width. The parity tests in block_test.go enforce this.
//
// out, if cap-sufficient (NumPOs·words), backs the result; scratch may
// be nil (allocates internally) and is otherwise reused across calls.
func (c *Circuit) EvalNoisyBlockInto(out []uint64, pi, key []bool, eps float64, rng *rand.Rand, words int, scratch *BlockScratch) []uint64 {
	if len(pi) != len(c.PIs) || len(key) != len(c.Keys) {
		panic(fmt.Sprintf("circuit %q: EvalNoisyBlock input width mismatch (%d/%d PIs, %d/%d keys)",
			c.Name, len(pi), len(c.PIs), len(key), len(c.Keys)))
	}
	if eps < 0 || eps > 1 {
		panic(fmt.Sprintf("circuit %q: eps %v out of [0,1]", c.Name, eps))
	}
	if words < 1 || words > MaxBlockWords {
		panic(fmt.Sprintf("circuit %q: block width %d out of [1,%d]", c.Name, words, MaxBlockWords))
	}
	if scratch == nil {
		scratch = &BlockScratch{}
	}
	p := c.program()
	w := grow(scratch.wires, len(c.Gates)*words)
	scratch.wires = w

	for i, id := range c.PIs {
		fill(w[int(id)*words:(int(id)+1)*words], broadcast(pi[i]))
	}
	for i, id := range c.Keys {
		fill(w[int(id)*words:(int(id)+1)*words], broadcast(key[i]))
	}
	for _, id := range p.const0 {
		fill(w[int(id)*words:(int(id)+1)*words], 0)
	}
	for _, id := range p.const1 {
		fill(w[int(id)*words:(int(id)+1)*words], ^uint64(0))
	}

	// Flip masks are pre-drawn word-column by word-column — one
	// geometric-skipping stream per column, columns consumed in stream
	// order — which is what makes the blocked pass bit-identical to
	// `words` successive single-word passes over the same rng.
	var masks []uint64
	if eps > 0 {
		masks = grow(scratch.masks, len(p.ops)*words)
		scratch.masks = masks
		drawFlipMasks(masks, len(p.ops), words, eps, rng)
	}

	evalOps(p, w, masks, words)

	if cap(out) >= len(c.POs)*words {
		out = out[:len(c.POs)*words]
	} else {
		out = make([]uint64, len(c.POs)*words)
	}
	for i, po := range c.POs {
		copy(out[i*words:(i+1)*words], w[po*words:(po+1)*words])
	}
	return out
}

// drawFlipMasks fills one flip-mask column per block word: bit l of
// masks[i*words+k] says whether op i's lane l flips in word k (row
// major — one contiguous row per op, which is what the dense apply
// loop in the eval kernels reads). Rather than asking a flipStream
// for every (op, word) mask — most of which are zero at the small eps
// values the paper studies — it clears the whole array once (a
// memclr) and then walks each column's flip events directly, jumping
// from absolute lane position to absolute lane position. The rng draw
// sequence is exactly flipStream's (one geometric draw per flip
// event, in stream order, leftover gap discarded at the end of the
// column), so the masks are bit-identical to `words` successive
// nextMask sweeps; only the per-op call and loop overhead disappears.
func drawFlipMasks(masks []uint64, nops, words int, eps float64, rng *rand.Rand) {
	if eps >= 1 {
		fill(masks, ^uint64(0))
		return
	}
	for i := range masks {
		masks[i] = 0
	}
	limit := int64(nops) * BatchLanes
	// Open-coded flipStream: the geometric draw below is step-for-step
	// flipStream.draw (same uniforms, same log, same truncation and
	// clamp), with one initial draw per column and one more after every
	// flip, exactly as nextMask would issue them. Hand-inlining it here
	// matters because draw() is past the compiler's inline budget and
	// the call overhead is paid once per flip event.
	invLog := 1 / math.Log1p(-eps)
	for k := 0; k < words; k++ {
		pos := int64(-1)
		for {
			u := rng.Float64()
			for u == 0 {
				u = rng.Float64()
			}
			g := int64(math.Log(u) * invLog)
			if g < 0 {
				g = 0
			}
			pos += 1 + g
			if pos >= limit {
				break
			}
			masks[int(pos>>6)*words+k] |= 1 << uint(pos&63)
		}
	}
}

func fill(row []uint64, v uint64) {
	for k := range row {
		row[k] = v
	}
}

// evalOps runs the compiled schedule over wire rows of `words` words.
// masks, when non-nil, holds one pre-drawn row-major flip row per op.
// The two widths the oracle actually issues — the full block
// (MaxBlockWords) and the single-word tail — dispatch to specialised
// kernels whose wire rows are fixed-size array pointers: that removes
// the per-op slice-header setup and per-lane bounds checks that
// dominate the generic loop once flip drawing is out of the way.
func evalOps(p *evalProg, w, masks []uint64, words int) {
	switch words {
	case 1:
		evalOps1(p, w, masks)
	case 8:
		evalOps8(p, w, masks)
	default:
		evalOpsGeneric(p, w, masks, words)
	}
}

func evalOpsGeneric(p *evalProg, w, masks []uint64, words int) {
	fanin := p.fanin
	for i := range p.ops {
		op := &p.ops[i]
		dst := w[int(op.out)*words : (int(op.out)+1)*words]
		fan := fanin[op.off : op.off+op.nfan]
		switch op.typ {
		case Buf:
			copy(dst, w[int(fan[0])*words:(int(fan[0])+1)*words])
		case Not:
			src := w[int(fan[0])*words : (int(fan[0])+1)*words]
			for k := range dst {
				dst[k] = ^src[k]
			}
		case And, Nand:
			a := w[int(fan[0])*words : (int(fan[0])+1)*words]
			if len(fan) == 2 {
				b := w[int(fan[1])*words : (int(fan[1])+1)*words]
				for k := range dst {
					dst[k] = a[k] & b[k]
				}
			} else {
				copy(dst, a)
				for _, f := range fan[1:] {
					src := w[int(f)*words : (int(f)+1)*words]
					for k := range dst {
						dst[k] &= src[k]
					}
				}
			}
			if op.typ == Nand {
				for k := range dst {
					dst[k] = ^dst[k]
				}
			}
		case Or, Nor:
			a := w[int(fan[0])*words : (int(fan[0])+1)*words]
			if len(fan) == 2 {
				b := w[int(fan[1])*words : (int(fan[1])+1)*words]
				for k := range dst {
					dst[k] = a[k] | b[k]
				}
			} else {
				copy(dst, a)
				for _, f := range fan[1:] {
					src := w[int(f)*words : (int(f)+1)*words]
					for k := range dst {
						dst[k] |= src[k]
					}
				}
			}
			if op.typ == Nor {
				for k := range dst {
					dst[k] = ^dst[k]
				}
			}
		case Xor, Xnor:
			a := w[int(fan[0])*words : (int(fan[0])+1)*words]
			if len(fan) == 2 {
				b := w[int(fan[1])*words : (int(fan[1])+1)*words]
				for k := range dst {
					dst[k] = a[k] ^ b[k]
				}
			} else {
				copy(dst, a)
				for _, f := range fan[1:] {
					src := w[int(f)*words : (int(f)+1)*words]
					for k := range dst {
						dst[k] ^= src[k]
					}
				}
			}
			if op.typ == Xnor {
				for k := range dst {
					dst[k] = ^dst[k]
				}
			}
		case Mux:
			s := w[int(fan[0])*words : (int(fan[0])+1)*words]
			a := w[int(fan[1])*words : (int(fan[1])+1)*words]
			b := w[int(fan[2])*words : (int(fan[2])+1)*words]
			for k := range dst {
				dst[k] = (^s[k] & a[k]) | (s[k] & b[k])
			}
		default:
			panic(fmt.Sprintf("circuit: unsupported gate type %v in compiled schedule", op.typ))
		}
		if masks != nil {
			m := masks[i*words : (i+1)*words]
			for k := range dst {
				dst[k] ^= m[k]
			}
		}
	}
}

// evalOps1 is the single-word kernel: every wire row is one machine
// word held in a register through the op, exactly the shape of the
// EvalNoisyBatchInto loop.
func evalOps1(p *evalProg, w, masks []uint64) {
	fanin := p.fanin
	for i := range p.ops {
		op := &p.ops[i]
		fan := fanin[op.off : op.off+op.nfan]
		var v uint64
		switch op.typ {
		case Buf:
			v = w[fan[0]]
		case Not:
			v = ^w[fan[0]]
		case And, Nand:
			v = ^uint64(0)
			for _, f := range fan {
				v &= w[f]
			}
			if op.typ == Nand {
				v = ^v
			}
		case Or, Nor:
			v = 0
			for _, f := range fan {
				v |= w[f]
			}
			if op.typ == Nor {
				v = ^v
			}
		case Xor, Xnor:
			v = 0
			for _, f := range fan {
				v ^= w[f]
			}
			if op.typ == Xnor {
				v = ^v
			}
		case Mux:
			s := w[fan[0]]
			v = (^s & w[fan[1]]) | (s & w[fan[2]])
		default:
			panic(fmt.Sprintf("circuit: unsupported gate type %v in compiled schedule", op.typ))
		}
		if masks != nil {
			v ^= masks[i]
		}
		w[op.out] = v
	}
}

// row8 returns wire id's 8-word row as a fixed-size array pointer, so
// the kernel's inner loops run with compile-time bounds.
func row8(w []uint64, id int32) *[8]uint64 {
	return (*[8]uint64)(w[int(id)*8:])
}

// zero8 is the flip row of a noiseless pass: XORing it is the
// identity, which lets every evalOps8 case fuse the mask application
// into its compute loop unconditionally instead of re-walking dst in
// a second pass.
var zero8 [8]uint64

// evalOps8 is the full-block kernel (MaxBlockWords = 8 words per
// wire). Each gate type gets its own fused loop — inverting types
// fold their negation into the store, and the flip mask is XORed in
// the same pass — so every op is one sweep over registers-worth of
// array-pointer rows with no second dst walk. Multi-fanin gates
// beyond two inputs take a slower reduction path; the netlist front
// ends only emit unary and binary gates.
func evalOps8(p *evalProg, w, masks []uint64) {
	fanin := p.fanin
	for i := range p.ops {
		op := &p.ops[i]
		dst := row8(w, op.out)
		fan := fanin[op.off : op.off+op.nfan]
		m := &zero8
		if masks != nil {
			m = (*[8]uint64)(masks[i*8:])
		}
		if len(fan) == 2 {
			a, b := row8(w, fan[0]), row8(w, fan[1])
			switch op.typ {
			case And:
				for k := 0; k < 8; k++ {
					dst[k] = (a[k] & b[k]) ^ m[k]
				}
			case Nand:
				for k := 0; k < 8; k++ {
					dst[k] = ^(a[k] & b[k]) ^ m[k]
				}
			case Or:
				for k := 0; k < 8; k++ {
					dst[k] = (a[k] | b[k]) ^ m[k]
				}
			case Nor:
				for k := 0; k < 8; k++ {
					dst[k] = ^(a[k] | b[k]) ^ m[k]
				}
			case Xor:
				for k := 0; k < 8; k++ {
					dst[k] = a[k] ^ b[k] ^ m[k]
				}
			case Xnor:
				for k := 0; k < 8; k++ {
					dst[k] = ^(a[k] ^ b[k]) ^ m[k]
				}
			default:
				evalOpSlow(p, w, m, op, fan)
			}
			continue
		}
		switch op.typ {
		case Buf:
			src := row8(w, fan[0])
			for k := 0; k < 8; k++ {
				dst[k] = src[k] ^ m[k]
			}
		case Not:
			src := row8(w, fan[0])
			for k := 0; k < 8; k++ {
				dst[k] = ^src[k] ^ m[k]
			}
		case Mux:
			s, a, b := row8(w, fan[0]), row8(w, fan[1]), row8(w, fan[2])
			for k := 0; k < 8; k++ {
				dst[k] = ((^s[k] & a[k]) | (s[k] & b[k])) ^ m[k]
			}
		default:
			evalOpSlow(p, w, m, op, fan)
		}
	}
}

// evalOpSlow handles the rare shapes evalOps8's fast paths skip
// (associative gates with three or more fanins): a running reduction
// over the fanin rows, negation and flip mask folded into the final
// store.
func evalOpSlow(p *evalProg, w []uint64, m *[8]uint64, op *evalOp, fan []int32) {
	var acc [8]uint64
	switch op.typ {
	case And, Nand, Or, Nor, Xor, Xnor:
		acc = *row8(w, fan[0])
		for _, f := range fan[1:] {
			src := row8(w, f)
			switch op.typ {
			case And, Nand:
				for k := 0; k < 8; k++ {
					acc[k] &= src[k]
				}
			case Or, Nor:
				for k := 0; k < 8; k++ {
					acc[k] |= src[k]
				}
			default:
				for k := 0; k < 8; k++ {
					acc[k] ^= src[k]
				}
			}
		}
	default:
		panic(fmt.Sprintf("circuit: unsupported gate type %v in compiled schedule", op.typ))
	}
	dst := row8(w, op.out)
	switch op.typ {
	case Nand, Nor, Xnor:
		for k := 0; k < 8; k++ {
			dst[k] = ^acc[k] ^ m[k]
		}
	default:
		for k := 0; k < 8; k++ {
			dst[k] = acc[k] ^ m[k]
		}
	}
}
