package circuit

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
)

func TestEvalNoisyBatchZeroEpsMatchesScalar(t *testing.T) {
	c := randomCircuit(3, 10, 80, 6)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		pi := c.RandomInputs(rng)
		want := c.Eval(pi, nil, nil)
		words := c.EvalNoisyBatch(pi, nil, 0, rng, nil)
		for i, w := range words {
			expect := broadcast(want[i])
			if w != expect {
				t.Fatalf("output %d: batch word %016x, want %016x", i, w, expect)
			}
		}
	}
}

func TestEvalNoisyBatchEpsOne(t *testing.T) {
	// eps=1: every gate always flips; equal to eps=1 scalar semantics.
	c := New("inv")
	a := c.AddInput("a")
	b := c.AddGate(Buf, "b", a)
	c.AddOutput(b, "")
	rng := rand.New(rand.NewSource(2))
	words := c.EvalNoisyBatch([]bool{true}, nil, 1, rng, nil)
	if words[0] != 0 {
		t.Errorf("BUF(1) with eps=1 must be all-zero lanes, got %016x", words[0])
	}
}

func TestEvalNoisyBatchFlipRate(t *testing.T) {
	// Single BUF: flip rate per lane must converge to eps.
	c := New("buf")
	a := c.AddInput("a")
	b := c.AddGate(Buf, "b", a)
	c.AddOutput(b, "")
	rng := rand.New(rand.NewSource(3))
	const eps = 0.07
	const passes = 4000 // 256k lanes
	flips := 0
	for i := 0; i < passes; i++ {
		w := c.EvalNoisyBatch([]bool{false}, nil, eps, rng, nil)
		flips += bits.OnesCount64(w[0])
	}
	got := float64(flips) / float64(passes*BatchLanes)
	if math.Abs(got-eps) > 0.004 {
		t.Errorf("lane flip rate %.5f, want ≈%.2f", got, eps)
	}
}

func TestEvalNoisyBatchLanesIndependent(t *testing.T) {
	// Correlation check between two lanes of the same word: the
	// fraction of passes where lanes 0 and 17 flip together should be
	// ≈ eps², not ≈ eps.
	c := New("buf")
	a := c.AddInput("a")
	b := c.AddGate(Buf, "b", a)
	c.AddOutput(b, "")
	rng := rand.New(rand.NewSource(4))
	const eps = 0.1
	const passes = 30000
	both, either := 0, 0
	for i := 0; i < passes; i++ {
		w := c.EvalNoisyBatch([]bool{false}, nil, eps, rng, nil)
		l0 := w[0]&1 != 0
		l17 := w[0]&(1<<17) != 0
		if l0 && l17 {
			both++
		}
		if l0 || l17 {
			either++
		}
	}
	pBoth := float64(both) / passes
	if math.Abs(pBoth-eps*eps) > 0.005 {
		t.Errorf("joint flip rate %.5f, want ≈%.4f (lanes correlated?)", pBoth, eps*eps)
	}
}

func TestEvalNoisyBatchStatisticalAgreementWithScalar(t *testing.T) {
	// Per-output signal probabilities from batch and scalar paths must
	// agree on a real circuit.
	c := randomCircuit(5, 12, 150, 8)
	rng := rand.New(rand.NewSource(6))
	pi := c.RandomInputs(rng)
	const eps = 0.02

	scalarCounts := make([]int, c.NumPOs())
	const ns = 12800
	scratch := make([]bool, c.NumGates())
	for i := 0; i < ns; i++ {
		y := c.EvalNoisy(pi, nil, eps, rng, scratch)
		for j, b := range y {
			if b {
				scalarCounts[j]++
			}
		}
	}
	batchCounts := make([]int, c.NumPOs())
	wscratch := make([]uint64, c.NumGates())
	for i := 0; i < ns/BatchLanes; i++ {
		words := c.EvalNoisyBatch(pi, nil, eps, rng, wscratch)
		for j, w := range words {
			batchCounts[j] += bits.OnesCount64(w)
		}
	}
	for j := range scalarCounts {
		ps := float64(scalarCounts[j]) / ns
		pb := float64(batchCounts[j]) / ns
		if math.Abs(ps-pb) > 0.03 {
			t.Errorf("output %d: scalar P=%.4f batch P=%.4f", j, ps, pb)
		}
	}
}

func TestEvalNoisyBatchSeedDeterminism(t *testing.T) {
	c := randomCircuit(7, 8, 60, 4)
	pi := make([]bool, 8)
	a := c.EvalNoisyBatch(pi, nil, 0.05, rand.New(rand.NewSource(9)), nil)
	b := c.EvalNoisyBatch(pi, nil, 0.05, rand.New(rand.NewSource(9)), nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different batch words")
		}
	}
}

func TestEvalNoisyBatchPanics(t *testing.T) {
	c := randomCircuit(8, 4, 10, 2)
	rng := rand.New(rand.NewSource(1))
	t.Run("width", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		c.EvalNoisyBatch([]bool{true}, nil, 0.1, rng, nil)
	})
	t.Run("eps", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		c.EvalNoisyBatch(make([]bool, 4), nil, 1.5, rng, nil)
	})
}

func TestFlipStreamMaskDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fs := newFlipStream(0.25, rng)
	total := 0
	const n = 20000
	for i := 0; i < n; i++ {
		total += bits.OnesCount64(fs.nextMask())
	}
	got := float64(total) / float64(n*BatchLanes)
	if math.Abs(got-0.25) > 0.01 {
		t.Errorf("mask density %.4f, want 0.25", got)
	}
}

func TestFlipStreamEdgeEps(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	zero := newFlipStream(0, rng)
	if m := zero.nextMask(); m != 0 {
		t.Error("eps=0 mask must be empty")
	}
	one := newFlipStream(1, rng)
	if m := one.nextMask(); m != ^uint64(0) {
		t.Error("eps=1 mask must be full")
	}
}

func TestMuxBatchSemantics(t *testing.T) {
	c := New("mux")
	s := c.AddInput("s")
	a := c.AddInput("a")
	b := c.AddInput("b")
	m := c.AddGate(Mux, "m", s, a, b)
	c.AddOutput(m, "")
	rng := rand.New(rand.NewSource(13))
	for _, in := range [][]bool{{false, true, false}, {true, true, false}, {false, false, true}, {true, false, true}} {
		want := broadcast(c.Eval(in, nil, nil)[0])
		got := c.EvalNoisyBatch(in, nil, 0, rng, nil)[0]
		if got != want {
			t.Errorf("mux(%v): %016x want %016x", in, got, want)
		}
	}
}

func BenchmarkEvalNoisyBatch2k(b *testing.B) { benchEvalNoisyBatch2k(b, 0.01) }

// BenchmarkEvalNoisyBatch2kLowEps is the single-word baseline for the
// blocked LowEps pair in block_test.go (same regime, 64 samples/op).
func BenchmarkEvalNoisyBatch2kLowEps(b *testing.B) { benchEvalNoisyBatch2k(b, 0.001) }

func benchEvalNoisyBatch2k(b *testing.B, eps float64) {
	c := randomCircuit(1, 50, 2000, 20)
	rng := rand.New(rand.NewSource(2))
	pi := c.RandomInputs(rng)
	scratch := make([]uint64, c.NumGates())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EvalNoisyBatch(pi, nil, eps, rng, scratch)
	}
}
