package circuit

import (
	"fmt"
	"math"
	"math/rand"
)

// BatchLanes is the number of independent samples evaluated per
// bit-parallel pass: one per bit of a machine word.
const BatchLanes = 64

// EvalNoisyBatch evaluates BatchLanes independent noisy samples of the
// circuit in one bit-parallel pass: every wire is a 64-bit word whose
// bit lanes are independent Monte-Carlo samples under the paper's
// per-gate error model (each logic gate flips each lane independently
// with probability eps).
//
// All lanes share the same primary-input and key values — exactly the
// oracle-sampling workload of eq. 1 — so a signal-probability query
// with Ns samples costs ceil(Ns/64) passes instead of Ns.
//
// Gate flips are generated with geometric skipping: the expected
// number of RNG draws per gate is 64*eps + O(1) rather than 64, which
// is what makes the batch pass worthwhile at the small eps values the
// paper studies.
//
// The returned slice holds one word per primary output. scratch, if
// cap-sufficient (NumGates words), backs the intermediate wires.
func (c *Circuit) EvalNoisyBatch(pi, key []bool, eps float64, rng *rand.Rand, scratch []uint64) []uint64 {
	return c.EvalNoisyBatchInto(nil, pi, key, eps, rng, scratch)
}

// EvalNoisyBatchInto is EvalNoisyBatch with a caller-provided output
// buffer: when out has capacity for NumPOs words it backs the result
// and no output allocation happens, which matters on sampling hot
// paths (SignalProbs issues ceil(Ns/64) passes per distinguishing
// input). Passing nil falls back to allocating.
func (c *Circuit) EvalNoisyBatchInto(out []uint64, pi, key []bool, eps float64, rng *rand.Rand, scratch []uint64) []uint64 {
	if len(pi) != len(c.PIs) || len(key) != len(c.Keys) {
		panic(fmt.Sprintf("circuit %q: EvalNoisyBatch input width mismatch (%d/%d PIs, %d/%d keys)",
			c.Name, len(pi), len(c.PIs), len(key), len(c.Keys)))
	}
	if eps < 0 || eps > 1 {
		panic(fmt.Sprintf("circuit %q: eps %v out of [0,1]", c.Name, eps))
	}
	p := c.program()
	var w []uint64
	if cap(scratch) >= len(c.Gates) {
		w = scratch[:len(c.Gates)]
	} else {
		w = make([]uint64, len(c.Gates))
	}
	for i, id := range c.PIs {
		w[id] = broadcast(pi[i])
	}
	for i, id := range c.Keys {
		w[id] = broadcast(key[i])
	}
	for _, id := range p.const0 {
		w[id] = 0
	}
	for _, id := range p.const1 {
		w[id] = ^uint64(0)
	}
	// Geometric-skipping state shared across all gates: we walk a
	// virtual stream of lane slots (64 per gate) and jump between flip
	// positions. The stream advances once per compiled op, in schedule
	// order — the same order EvalNoisyBlockInto pre-draws its mask
	// columns in, which keeps the two paths bit-identical.
	skip := newFlipStream(eps, rng)

	fanin := p.fanin
	for i := range p.ops {
		op := &p.ops[i]
		fan := fanin[op.off : op.off+op.nfan]
		var v uint64
		switch op.typ {
		case Buf:
			v = w[fan[0]]
		case Not:
			v = ^w[fan[0]]
		case And, Nand:
			v = ^uint64(0)
			for _, f := range fan {
				v &= w[f]
			}
			if op.typ == Nand {
				v = ^v
			}
		case Or, Nor:
			v = 0
			for _, f := range fan {
				v |= w[f]
			}
			if op.typ == Nor {
				v = ^v
			}
		case Xor, Xnor:
			v = 0
			for _, f := range fan {
				v ^= w[f]
			}
			if op.typ == Xnor {
				v = ^v
			}
		case Mux:
			s := w[fan[0]]
			v = (^s & w[fan[1]]) | (s & w[fan[2]])
		default:
			panic(fmt.Sprintf("circuit %q: unsupported gate type %v", c.Name, op.typ))
		}
		if eps > 0 {
			v ^= skip.nextMask()
		}
		w[op.out] = v
	}
	if cap(out) >= len(c.POs) {
		out = out[:len(c.POs)]
	} else {
		out = make([]uint64, len(c.POs))
	}
	for i, po := range c.POs {
		out[i] = w[po]
	}
	return out
}

func broadcast(b bool) uint64 {
	if b {
		return ^uint64(0)
	}
	return 0
}

// flipStream produces per-gate 64-bit flip masks where each bit is set
// independently with probability eps, using geometric skipping over
// the lane stream.
type flipStream struct {
	eps    float64
	rng    *rand.Rand
	invLog float64 // 1 / log(1-eps)
	gap    int64   // lanes until the next flip, relative to the
	// current gate's lane 0
}

// newFlipStream returns the stream by value so the sampling hot path
// keeps it on the stack (one batch pass = one stream; a heap stream
// per pass was the top allocation of SignalProbs).
func newFlipStream(eps float64, rng *rand.Rand) flipStream {
	fs := flipStream{eps: eps, rng: rng}
	switch {
	case eps <= 0:
		fs.gap = math.MaxInt64
	case eps >= 1:
		fs.gap = 0
		fs.invLog = 0
	default:
		fs.invLog = 1 / math.Log1p(-eps)
		fs.gap = fs.draw()
	}
	return fs
}

// draw samples a geometric gap (number of non-flipped lanes before the
// next flipped one). drawFlipMasks open-codes this same arithmetic on
// its hot path; the two must stay step-identical (the block/batch
// parity tests enforce it).
func (fs *flipStream) draw() int64 {
	u := fs.rng.Float64()
	for u == 0 {
		u = fs.rng.Float64()
	}
	g := int64(math.Log(u) * fs.invLog)
	if g < 0 {
		g = 0
	}
	return g
}

// nextMask returns the flip mask for the next gate (64 lanes).
func (fs *flipStream) nextMask() uint64 {
	if fs.eps <= 0 {
		return 0
	}
	if fs.eps >= 1 {
		return ^uint64(0)
	}
	var m uint64
	for fs.gap < BatchLanes {
		m |= 1 << uint(fs.gap)
		fs.gap += 1 + fs.draw()
	}
	fs.gap -= BatchLanes
	return m
}
