package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildC17 constructs the ISCAS85 c17 benchmark by hand.
//
//	10 = NAND(1, 3)    11 = NAND(3, 6)
//	16 = NAND(2, 11)   19 = NAND(11, 7)
//	22 = NAND(10, 16)  23 = NAND(16, 19)
//	outputs: 22, 23
func buildC17(t testing.TB) *Circuit {
	c := New("c17")
	g1 := c.AddInput("1")
	g2 := c.AddInput("2")
	g3 := c.AddInput("3")
	g6 := c.AddInput("6")
	g7 := c.AddInput("7")
	g10 := c.AddGate(Nand, "10", g1, g3)
	g11 := c.AddGate(Nand, "11", g3, g6)
	g16 := c.AddGate(Nand, "16", g2, g11)
	g19 := c.AddGate(Nand, "19", g11, g7)
	g22 := c.AddGate(Nand, "22", g10, g16)
	g23 := c.AddGate(Nand, "23", g16, g19)
	c.AddOutput(g22, "")
	c.AddOutput(g23, "")
	if err := c.Validate(); err != nil {
		t.Fatalf("c17 validate: %v", err)
	}
	return c
}

func TestGateTypeEval(t *testing.T) {
	cases := []struct {
		t    GateType
		in   []bool
		want bool
	}{
		{And, []bool{true, true}, true},
		{And, []bool{true, false}, false},
		{Nand, []bool{true, true}, false},
		{Nand, []bool{false, true}, true},
		{Or, []bool{false, false}, false},
		{Or, []bool{false, true}, true},
		{Nor, []bool{false, false}, true},
		{Nor, []bool{true, false}, false},
		{Xor, []bool{true, true}, false},
		{Xor, []bool{true, false}, true},
		{Xor, []bool{true, true, true}, true},
		{Xnor, []bool{true, false}, false},
		{Xnor, []bool{false, false}, true},
		{Not, []bool{true}, false},
		{Buf, []bool{true}, true},
		{Mux, []bool{false, true, false}, true},
		{Mux, []bool{true, true, false}, false},
		{Const0, nil, false},
		{Const1, nil, true},
		{And, []bool{true, true, true, false}, false},
		{Or, []bool{false, false, false, true}, true},
	}
	for _, tc := range cases {
		if got := tc.t.Eval(tc.in); got != tc.want {
			t.Errorf("%v.Eval(%v) = %v, want %v", tc.t, tc.in, got, tc.want)
		}
	}
}

func TestGateTypeString(t *testing.T) {
	if And.String() != "AND" || Xnor.String() != "XNOR" || Key.String() != "KEY" {
		t.Errorf("unexpected gate type names: %v %v %v", And, Xnor, Key)
	}
	if GateType(200).String() == "" {
		t.Error("out-of-range GateType should still stringify")
	}
}

func TestC17TruthTable(t *testing.T) {
	c := buildC17(t)
	// Reference implementation straight from the NAND equations.
	ref := func(in [5]bool) (bool, bool) {
		n1, n2, n3, n6, n7 := in[0], in[1], in[2], in[3], in[4]
		g10 := !(n1 && n3)
		g11 := !(n3 && n6)
		g16 := !(n2 && g11)
		g19 := !(g11 && n7)
		return !(g10 && g16), !(g16 && g19)
	}
	var pi [5]bool
	for m := 0; m < 32; m++ {
		for b := 0; b < 5; b++ {
			pi[b] = m>>b&1 == 1
		}
		out := c.Eval(pi[:], nil, nil)
		w22, w23 := ref(pi)
		if out[0] != w22 || out[1] != w23 {
			t.Fatalf("c17(%v) = %v,%v want %v,%v", pi, out[0], out[1], w22, w23)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	t.Run("source with fanin", func(t *testing.T) {
		c := New("bad")
		a := c.AddInput("a")
		c.Gates[a].Fanin = []int{a}
		if err := c.Validate(); err == nil {
			t.Error("want error for input with fanin")
		}
	})
	t.Run("bad arity", func(t *testing.T) {
		c := New("bad")
		a := c.AddInput("a")
		c.AddGate(Not, "n", a, a)
		if err := c.Validate(); err == nil {
			t.Error("want error for 2-input NOT")
		}
	})
	t.Run("mux arity", func(t *testing.T) {
		c := New("bad")
		a := c.AddInput("a")
		b := c.AddInput("b")
		c.AddGate(Mux, "m", a, b)
		if err := c.Validate(); err == nil {
			t.Error("want error for 2-input MUX")
		}
	})
	t.Run("out of range fanin", func(t *testing.T) {
		c := New("bad")
		a := c.AddInput("a")
		c.AddGate(Not, "n", a+10)
		if err := c.Validate(); err == nil {
			t.Error("want error for out-of-range fanin")
		}
	})
	t.Run("out of range output", func(t *testing.T) {
		c := New("bad")
		c.AddInput("a")
		c.AddOutput(99, "")
		if err := c.Validate(); err == nil {
			t.Error("want error for out-of-range output")
		}
	})
	t.Run("cycle", func(t *testing.T) {
		c := New("bad")
		a := c.AddInput("a")
		n1 := c.AddGate(And, "n1", a, a) // placeholder fanin, rewired below
		n2 := c.AddGate(And, "n2", a, n1)
		c.Gates[n1].Fanin = []int{a, n2}
		if err := c.Validate(); err == nil {
			t.Error("want error for combinational cycle")
		}
	})
	t.Run("valid empty", func(t *testing.T) {
		if err := New("empty").Validate(); err != nil {
			t.Errorf("empty circuit should validate: %v", err)
		}
	})
}

func TestKeyInputs(t *testing.T) {
	c := New("locked")
	a := c.AddInput("a")
	k := c.AddKey("k0")
	x := c.AddGate(Xor, "x", a, k)
	c.AddOutput(x, "y")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.Eval([]bool{true}, []bool{false}, nil)[0]; got != true {
		t.Errorf("a^k with a=1,k=0: got %v want true", got)
	}
	if got := c.Eval([]bool{true}, []bool{true}, nil)[0]; got != false {
		t.Errorf("a^k with a=1,k=1: got %v want false", got)
	}
	if c.NumKeys() != 1 || c.NumPIs() != 1 || c.NumPOs() != 1 {
		t.Errorf("interface widths wrong: %d %d %d", c.NumKeys(), c.NumPIs(), c.NumPOs())
	}
}

func TestEvalPanicsOnWidthMismatch(t *testing.T) {
	c := buildC17(t)
	defer func() {
		if recover() == nil {
			t.Error("want panic on PI width mismatch")
		}
	}()
	c.Eval([]bool{true}, nil, nil)
}

func TestConstGates(t *testing.T) {
	c := New("consts")
	z := c.AddGate(Const0, "zero")
	o := c.AddGate(Const1, "one")
	a := c.AddGate(And, "a", z, o)
	r := c.AddGate(Or, "r", z, o)
	c.AddOutput(a, "")
	c.AddOutput(r, "")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	out := c.Eval(nil, nil, nil)
	if out[0] != false || out[1] != true {
		t.Errorf("const eval got %v", out)
	}
}

func TestEvalNoisyZeroEpsMatchesEval(t *testing.T) {
	c := buildC17(t)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		pi := c.RandomInputs(rng)
		a := c.Eval(pi, nil, nil)
		b := c.EvalNoisy(pi, nil, 0, rng, nil)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("eps=0 noisy eval diverged on %v", pi)
			}
		}
	}
}

func TestEvalNoisyFlipRate(t *testing.T) {
	// Single BUF gate: output BER must be ~eps.
	c := New("buf")
	a := c.AddInput("a")
	b := c.AddGate(Buf, "b", a)
	c.AddOutput(b, "")
	rng := rand.New(rand.NewSource(7))
	const eps = 0.2
	const n = 20000
	flips := 0
	for i := 0; i < n; i++ {
		if c.EvalNoisy([]bool{true}, nil, eps, rng, nil)[0] != true {
			flips++
		}
	}
	got := float64(flips) / n
	if got < 0.17 || got > 0.23 {
		t.Errorf("BUF flip rate %.4f, want ~%.2f", got, eps)
	}
}

func TestEvalNoisyEpsOneInvertsEverything(t *testing.T) {
	c := New("inv")
	a := c.AddInput("a")
	b := c.AddGate(Buf, "b", a)
	c.AddOutput(b, "")
	rng := rand.New(rand.NewSource(3))
	if c.EvalNoisy([]bool{true}, nil, 1.0, rng, nil)[0] != false {
		t.Error("eps=1 should always flip the single gate")
	}
}

func TestTopoOrderProperties(t *testing.T) {
	c := buildC17(t)
	order := c.MustTopoOrder()
	pos := make([]int, len(c.Gates))
	for i, id := range order {
		pos[id] = i
	}
	for id := range c.Gates {
		for _, f := range c.Gates[id].Fanin {
			if pos[f] >= pos[id] {
				t.Fatalf("gate %d before its fanin %d", id, f)
			}
		}
	}
	if len(order) != c.NumGates() {
		t.Fatalf("topo order has %d entries, want %d", len(order), c.NumGates())
	}
}

func TestLevels(t *testing.T) {
	c := buildC17(t)
	lv, depth := c.Levels()
	if depth != 3 {
		t.Errorf("c17 depth = %d, want 3", depth)
	}
	for _, id := range c.PIs {
		if lv[id] != 0 {
			t.Errorf("input %d at level %d", id, lv[id])
		}
	}
}

func TestFanoutsAndCones(t *testing.T) {
	c := buildC17(t)
	fan := c.Fanouts()
	g11, _ := c.GateByName("11")
	if len(fan[g11]) != 2 {
		t.Errorf("gate 11 fanout = %d, want 2", len(fan[g11]))
	}
	cone := c.OutputCone(g11)
	g22, _ := c.GateByName("22")
	g23, _ := c.GateByName("23")
	if !cone[g22] || !cone[g23] {
		t.Error("gate 11 should reach both outputs")
	}
	in := c.InputCone(g22)
	g7, _ := c.GateByName("7")
	if in[g7] {
		t.Error("input 7 should not be in the fanin cone of gate 22")
	}
	reach := c.ReachesOutput()
	for id := range c.Gates {
		if !reach[id] {
			t.Errorf("gate %d unobservable in c17", id)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := buildC17(t)
	d := c.Clone()
	d.Gates[5].Fanin[0] = 0
	d.PIs[0] = 99
	if c.Gates[5].Fanin[0] == 0 && c.PIs[0] == 99 {
		t.Error("Clone shares state with original")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("original damaged by clone mutation: %v", err)
	}
}

func TestSummary(t *testing.T) {
	c := buildC17(t)
	s := c.Summary()
	if s.Inputs != 5 || s.Gates != 6 || s.Outputs != 2 || s.Depth != 3 || s.Keys != 0 {
		t.Errorf("c17 summary = %+v", s)
	}
}

func TestOutputName(t *testing.T) {
	c := New("n")
	a := c.AddInput("a")
	c.AddOutput(a, "")
	c.AddOutput(a, "alias")
	if c.OutputName(0) != "a" || c.OutputName(1) != "alias" {
		t.Errorf("output names: %q %q", c.OutputName(0), c.OutputName(1))
	}
}

// randomCircuit builds a random valid DAG circuit from a seed, used by
// property tests here and reused conceptually by internal/gen.
func randomCircuit(seed int64, nIn, nGates, nOut int) *Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := New("rand")
	for i := 0; i < nIn; i++ {
		c.AddInput("")
	}
	types := []GateType{And, Nand, Or, Nor, Xor, Xnor, Not}
	for i := 0; i < nGates; i++ {
		ty := types[rng.Intn(len(types))]
		n := len(c.Gates)
		if ty == Not {
			c.AddGate(ty, "", rng.Intn(n))
		} else {
			c.AddGate(ty, "", rng.Intn(n), rng.Intn(n))
		}
	}
	for i := 0; i < nOut; i++ {
		c.AddOutput(nIn+rng.Intn(nGates), "")
	}
	return c
}

func TestRandomCircuitsValidate(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		c := randomCircuit(seed, 8, 40, 5)
		if err := c.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// Property: evaluation is deterministic — same inputs, same outputs.
func TestQuickEvalDeterministic(t *testing.T) {
	c := randomCircuit(42, 10, 60, 6)
	f := func(bits uint16) bool {
		pi := make([]bool, 10)
		for i := range pi {
			pi[i] = bits>>i&1 == 1
		}
		a := c.Eval(pi, nil, nil)
		b := c.Eval(pi, nil, nil)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: XOR-locking a wire with key=0 preserves the function.
func TestQuickXorKeyZeroTransparent(t *testing.T) {
	base := randomCircuit(7, 8, 30, 4)
	locked := base.Clone()
	// Insert an XOR key gate in front of output 0's driver.
	drv := locked.POs[0]
	k := locked.AddKey("k0")
	x := locked.AddGate(Xor, "xk", drv, k)
	locked.POs[0] = x
	if err := locked.Validate(); err != nil {
		t.Fatal(err)
	}
	f := func(bits uint8) bool {
		pi := make([]bool, 8)
		for i := range pi {
			pi[i] = bits>>i&1 == 1
		}
		want := base.Eval(pi, nil, nil)
		got := locked.Eval(pi, []bool{false}, nil)
		bad := locked.Eval(pi, []bool{true}, nil)
		return got[0] == want[0] && bad[0] != want[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalScratchReuse(t *testing.T) {
	c := buildC17(t)
	scratch := make([]bool, c.NumGates())
	pi := []bool{true, false, true, true, false}
	a := c.Eval(pi, nil, scratch)
	b := c.Eval(pi, nil, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("scratch-backed eval differs")
		}
	}
}

func BenchmarkEvalC17(b *testing.B) {
	c := buildC17(b)
	pi := []bool{true, false, true, true, false}
	scratch := make([]bool, c.NumGates())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.EvalWires(pi, nil, scratch)
	}
}

func BenchmarkEvalRandom2k(b *testing.B) {
	c := randomCircuit(1, 50, 2000, 20)
	rng := rand.New(rand.NewSource(2))
	pi := c.RandomInputs(rng)
	scratch := make([]bool, c.NumGates())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.EvalWires(pi, nil, scratch)
	}
}

func BenchmarkEvalNoisy2k(b *testing.B) {
	c := randomCircuit(1, 50, 2000, 20)
	rng := rand.New(rand.NewSource(2))
	pi := c.RandomInputs(rng)
	scratch := make([]bool, c.NumGates())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.EvalNoisy(pi, nil, 0.01, rng, scratch)
	}
}
