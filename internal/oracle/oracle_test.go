package oracle

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"statsat/internal/circuit"
	"statsat/internal/gen"
	"statsat/internal/lock"
)

func lockedC17(t testing.TB) *lock.Locked {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	l, err := lock.RLL(gen.C17(), 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestDeterministicOracle(t *testing.T) {
	l := lockedC17(t)
	o := NewDeterministic(l.Circuit, l.Key)
	if o.NumInputs() != 5 || o.NumOutputs() != 2 {
		t.Fatalf("pinout %d/%d", o.NumInputs(), o.NumOutputs())
	}
	orig := gen.C17()
	pi := make([]bool, 5)
	for m := 0; m < 32; m++ {
		for b := 0; b < 5; b++ {
			pi[b] = m>>uint(b)&1 == 1
		}
		want := orig.Eval(pi, nil, nil)
		got := o.Query(pi)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("oracle(%v) = %v, want %v", pi, got, want)
			}
		}
	}
	if o.Queries() != 32 {
		t.Errorf("query count = %d, want 32", o.Queries())
	}
}

func TestDeterministicRepeatable(t *testing.T) {
	l := lockedC17(t)
	o := NewDeterministic(l.Circuit, l.Key)
	x := []bool{true, false, true, false, true}
	a := o.Query(x)
	b := o.Query(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("deterministic oracle is inconsistent")
		}
	}
}

func TestProbabilisticZeroEpsMatchesDeterministic(t *testing.T) {
	l := lockedC17(t)
	d := NewDeterministic(l.Circuit, l.Key)
	p := NewProbabilistic(l.Circuit, l.Key, 0, 7)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		x := l.Circuit.RandomInputs(rng)
		a := d.Query(x)
		b := p.Query(x)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("eps=0 probabilistic oracle diverged")
			}
		}
	}
}

func TestProbabilisticIsNoisy(t *testing.T) {
	l := lockedC17(t)
	p := NewProbabilistic(l.Circuit, l.Key, 0.1, 11)
	x := []bool{true, true, false, true, false}
	d := NewDeterministic(l.Circuit, l.Key)
	ref := d.Query(x)
	diffs := 0
	for i := 0; i < 500; i++ {
		y := p.Query(x)
		for j := range y {
			if y[j] != ref[j] {
				diffs++
				break
			}
		}
	}
	if diffs == 0 {
		t.Error("eps=0.1 oracle never deviated in 500 queries")
	}
	if diffs == 500 {
		t.Error("oracle always wrong; error model broken")
	}
}

func TestProbabilisticSeededReproducible(t *testing.T) {
	l := lockedC17(t)
	a := NewProbabilistic(l.Circuit, l.Key, 0.05, 99)
	b := NewProbabilistic(l.Circuit, l.Key, 0.05, 99)
	x := []bool{false, true, true, false, true}
	for i := 0; i < 100; i++ {
		ya, yb := a.Query(x), b.Query(x)
		for j := range ya {
			if ya[j] != yb[j] {
				t.Fatal("same seed produced different noise streams")
			}
		}
	}
}

func TestSignalProbsConvergeToBER(t *testing.T) {
	// Single BUF gate circuit: P(output wrong) = eps exactly.
	c := circuit.New("buf")
	a := c.AddInput("a")
	b := c.AddGate(circuit.Buf, "b", a)
	c.AddOutput(b, "")
	const eps = 0.3
	o := NewProbabilistic(c, nil, eps, 5)
	probs := SignalProbs(context.Background(), o, []bool{true}, 20000)
	// Correct value 1, flips w.p. 0.3 → signal prob ≈ 0.7.
	if math.Abs(probs[0]-0.7) > 0.02 {
		t.Errorf("signal prob %.4f, want ≈0.70", probs[0])
	}
	// Batch sampling rounds up to whole passes.
	if q := o.Queries(); q < 20000 || q >= 20000+circuit.BatchLanes {
		t.Errorf("queries = %d, want 20000 rounded up to a pass boundary", q)
	}
}

func TestSignalProbsPanicsOnZeroNs(t *testing.T) {
	l := lockedC17(t)
	o := NewDeterministic(l.Circuit, l.Key)
	defer func() {
		if recover() == nil {
			t.Error("want panic for ns=0")
		}
	}()
	SignalProbs(context.Background(), o, []bool{true, true, true, true, true}, 0)
}

func TestUncertainties(t *testing.T) {
	u := Uncertainties([]float64{0, 1, 0.5, 0.2, 0.8})
	want := []float64{0, 0, 0.5, 0.2, 0.2}
	for i := range want {
		if math.Abs(u[i]-want[i]) > 1e-12 {
			t.Errorf("U[%d] = %v, want %v", i, u[i], want[i])
		}
	}
}

func TestPatternCounts(t *testing.T) {
	l := lockedC17(t)
	d := NewDeterministic(l.Circuit, l.Key)
	x := []bool{true, false, false, true, true}
	counts := PatternCounts(context.Background(), d, x, 25)
	if len(counts) != 1 {
		t.Fatalf("deterministic oracle produced %d patterns", len(counts))
	}
	for p, n := range counts {
		if n != 25 {
			t.Errorf("pattern count = %d, want 25", n)
		}
		bits := PatternToBits(p)
		ref := d.Query(x)
		for i := range ref {
			if bits[i] != ref[i] {
				t.Error("pattern decode mismatch")
			}
		}
	}
}

func TestPatternCountsNoisySpreads(t *testing.T) {
	l := lockedC17(t)
	p := NewProbabilistic(l.Circuit, l.Key, 0.15, 21)
	counts := PatternCounts(context.Background(), p, []bool{true, true, true, true, true}, 400)
	if len(counts) < 2 {
		t.Errorf("noisy oracle produced only %d distinct patterns", len(counts))
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 400 {
		t.Errorf("pattern counts sum to %d", total)
	}
}

func TestProbabilisticAccessors(t *testing.T) {
	l := lockedC17(t)
	p := NewProbabilistic(l.Circuit, l.Key, 0.07, 1)
	if p.Eps() != 0.07 {
		t.Errorf("Eps = %v", p.Eps())
	}
	if p.NumInputs() != 5 || p.NumOutputs() != 2 {
		t.Errorf("pinout %d/%d", p.NumInputs(), p.NumOutputs())
	}
}

func TestPatternToBitsEmpty(t *testing.T) {
	if len(PatternToBits("")) != 0 {
		t.Error("empty pattern should decode to empty slice")
	}
}

func TestQueryBatchCountsQueries(t *testing.T) {
	l := lockedC17(t)
	p := NewProbabilistic(l.Circuit, l.Key, 0.05, 31)
	p.QueryBatch([]bool{true, true, false, false, true})
	if p.Queries() != circuit.BatchLanes {
		t.Errorf("queries = %d, want %d", p.Queries(), circuit.BatchLanes)
	}
}

func TestSignalProbsBatchMatchesScalar(t *testing.T) {
	// Same circuit, same eps: batch-path and scalar-path signal
	// probabilities must agree statistically.
	l := lockedC17(t)
	x := []bool{true, false, true, true, false}
	const ns = 6400
	batch := SignalProbs(context.Background(), NewProbabilistic(l.Circuit, l.Key, 0.08, 41), x, ns)
	// Force the scalar path through a wrapper that hides QueryBatch.
	scalarOracle := scalarOnly{NewProbabilistic(l.Circuit, l.Key, 0.08, 42)}
	scalar := SignalProbs(context.Background(), scalarOracle, x, ns)
	for i := range batch {
		if d := batch[i] - scalar[i]; d > 0.03 || d < -0.03 {
			t.Errorf("output %d: batch %.4f vs scalar %.4f", i, batch[i], scalar[i])
		}
	}
}

// scalarOnly hides the BatchQuerier/BlockQuerier interfaces of the
// wrapped oracle. Explicit delegation, not embedding: an embedded
// *Probabilistic would promote QueryBatch and defeat the hiding.
type scalarOnly struct{ p *Probabilistic }

func (s scalarOnly) Query(x []bool) []bool { return s.p.Query(x) }
func (s scalarOnly) NumInputs() int        { return s.p.NumInputs() }
func (s scalarOnly) NumOutputs() int       { return s.p.NumOutputs() }
func (s scalarOnly) Queries() int64        { return s.p.Queries() }

// batchOnly exposes QueryBatch but hides QueryBlock, pinning the
// single-word batch path for parity tests.
type batchOnly struct{ p *Probabilistic }

func (b batchOnly) Query(x []bool) []bool        { return b.p.Query(x) }
func (b batchOnly) QueryBatch(x []bool) []uint64 { return b.p.QueryBatch(x) }
func (b batchOnly) NumInputs() int               { return b.p.NumInputs() }
func (b batchOnly) NumOutputs() int              { return b.p.NumOutputs() }
func (b batchOnly) Queries() int64               { return b.p.Queries() }

func TestPatternCountsBatchTotals(t *testing.T) {
	l := lockedC17(t)
	p := NewProbabilistic(l.Circuit, l.Key, 0.1, 51)
	const ns = 150 // 2 full passes + 22 scalar
	counts := PatternCounts(context.Background(), p, []bool{true, true, true, false, false}, ns)
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != ns {
		t.Errorf("pattern total = %d, want %d", total, ns)
	}
}

func TestPatternCountsBatchVsScalarDistribution(t *testing.T) {
	l := lockedC17(t)
	x := []bool{false, true, false, true, true}
	const ns = 6400
	batch := PatternCounts(context.Background(), NewProbabilistic(l.Circuit, l.Key, 0.06, 61), x, ns)
	scalar := PatternCounts(context.Background(), scalarOnly{NewProbabilistic(l.Circuit, l.Key, 0.06, 62)}, x, ns)
	// The dominant pattern must agree and have similar mass.
	bestOf := func(m map[string]int) (string, int) {
		bp, bn := "", -1
		for p, n := range m {
			if n > bn {
				bp, bn = p, n
			}
		}
		return bp, bn
	}
	bp, bn := bestOf(batch)
	sp, sn := bestOf(scalar)
	if bp != sp {
		t.Errorf("dominant patterns differ: %q vs %q", bp, sp)
	}
	if d := float64(bn-sn) / ns; d > 0.05 || d < -0.05 {
		t.Errorf("dominant masses differ: %d vs %d", bn, sn)
	}
}

func TestOracleKeyWidthPanics(t *testing.T) {
	l := lockedC17(t)
	defer func() {
		if recover() == nil {
			t.Error("want panic for wrong key width")
		}
	}()
	NewDeterministic(l.Circuit, []bool{true})
}

func TestProbabilisticEpsRangePanics(t *testing.T) {
	l := lockedC17(t)
	defer func() {
		if recover() == nil {
			t.Error("want panic for eps out of range")
		}
	}()
	NewProbabilistic(l.Circuit, l.Key, 1.5, 1)
}

func TestOracleDoesNotAliasKey(t *testing.T) {
	l := lockedC17(t)
	key := append([]bool(nil), l.Key...)
	o := NewDeterministic(l.Circuit, key)
	x := []bool{true, true, true, true, true}
	before := o.Query(x)
	key[0] = !key[0] // mutate caller's slice
	after := o.Query(x)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("oracle aliased the caller's key slice")
		}
	}
}

func BenchmarkProbabilisticQueryScale8(b *testing.B) {
	bm, _ := gen.ByName("c3540")
	orig := bm.BuildScaled(8)
	rng := rand.New(rand.NewSource(1))
	l, err := lock.RLL(orig, 16, rng)
	if err != nil {
		b.Fatal(err)
	}
	o := NewProbabilistic(l.Circuit, l.Key, 0.0125, 3)
	x := orig.RandomInputs(rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Query(x)
	}
}

func BenchmarkSignalProbs500(b *testing.B) {
	bm, _ := gen.ByName("c3540")
	orig := bm.BuildScaled(16)
	rng := rand.New(rand.NewSource(1))
	l, err := lock.RLL(orig, 16, rng)
	if err != nil {
		b.Fatal(err)
	}
	o := NewProbabilistic(l.Circuit, l.Key, 0.0125, 3)
	x := orig.RandomInputs(rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SignalProbs(context.Background(), o, x, 500)
	}
}

// BenchmarkSignalProbs500Into is the scratch-reuse path SignalProbs
// delegates to; the allocs/op delta against BenchmarkSignalProbs500
// is exactly the per-call result slice.
func BenchmarkSignalProbs500Into(b *testing.B) {
	bm, _ := gen.ByName("c3540")
	orig := bm.BuildScaled(16)
	rng := rand.New(rand.NewSource(1))
	l, err := lock.RLL(orig, 16, rng)
	if err != nil {
		b.Fatal(err)
	}
	o := NewProbabilistic(l.Circuit, l.Key, 0.0125, 3)
	x := orig.RandomInputs(rng)
	var dst []float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = SignalProbsInto(context.Background(), o, x, 500, dst)
	}
}

func TestQueryBlockCountsQueries(t *testing.T) {
	l := lockedC17(t)
	p := NewProbabilistic(l.Circuit, l.Key, 0.05, 31)
	x := []bool{true, true, false, false, true}
	p.QueryBlock(x, 2)
	if want := int64(2 * circuit.BatchLanes); p.Queries() != want {
		t.Errorf("queries = %d, want %d", p.Queries(), want)
	}
	if p.ScalarQueries() != 0 || p.BatchQueries() != p.Queries() {
		t.Errorf("breakdown %d/%d, want 0/%d", p.ScalarQueries(), p.BatchQueries(), p.Queries())
	}
}

func TestBlockWordsBoundsPanics(t *testing.T) {
	l := lockedC17(t)
	p := NewProbabilistic(l.Circuit, l.Key, 0.05, 31)
	for _, w := range []int{0, circuit.MaxBlockWords + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetBlockWords(%d) did not panic", w)
				}
			}()
			p.SetBlockWords(w)
		}()
	}
	p.SetBlockWords(2)
	if p.BlockWords() != 2 {
		t.Fatalf("BlockWords = %d after SetBlockWords(2)", p.BlockWords())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("QueryBlock wider than BlockWords did not panic")
			}
		}()
		p.QueryBlock([]bool{true, true, false, false, true}, 3)
	}()
}

// TestSignalProbsBlockWidthParity is the oracle-level face of the
// determinism contract: the estimated probabilities AND the recorded
// query counts must be byte-identical at every block width and on the
// pre-block single-word batch path, given the same noise seed. The
// comparisons are exact — identical one-counts divided by identical
// totals — not statistical.
func TestSignalProbsBlockWidthParity(t *testing.T) {
	l := lockedC17(t)
	x := []bool{true, false, true, true, false}
	const ns = 1000 // 16 words: exercises full and partial blocks at every width
	const eps, seed = 0.07, 93

	refOracle := NewProbabilistic(l.Circuit, l.Key, eps, seed)
	ref := SignalProbs(context.Background(), batchOnly{refOracle}, x, ns)
	refQueries := refOracle.Queries()

	for _, w := range []int{1, 2, 4, 8} {
		p := NewProbabilistic(l.Circuit, l.Key, eps, seed)
		p.SetBlockWords(w)
		got := SignalProbs(context.Background(), p, x, ns)
		if p.Queries() != refQueries {
			t.Errorf("W=%d: %d queries, want %d", w, p.Queries(), refQueries)
		}
		for j := range ref {
			//lint:ignore floateq identical integer one-counts over identical totals must divide to identical float64s — approximate equality would hide a lost sample
			if got[j] != ref[j] {
				t.Errorf("W=%d output %d: %v, want %v", w, j, got[j], ref[j])
			}
		}
	}
}

// TestPatternCountsBlockWidthParity checks the blocked PatternCounts
// path tallies exactly the same patterns as the single-word batch
// path, including the scalar remainder that follows the whole-word
// blocks (the rng hand-off between blocked and scalar sampling must
// be width-independent too).
func TestPatternCountsBlockWidthParity(t *testing.T) {
	l := lockedC17(t)
	x := []bool{false, true, true, false, true}
	const ns = 2*circuit.BatchLanes + 22 // blocks + scalar tail
	const eps, seed = 0.09, 77

	refOracle := NewProbabilistic(l.Circuit, l.Key, eps, seed)
	ref := PatternCounts(context.Background(), batchOnly{refOracle}, x, ns)
	refQueries := refOracle.Queries()

	for _, w := range []int{1, 2, 4, 8} {
		p := NewProbabilistic(l.Circuit, l.Key, eps, seed)
		p.SetBlockWords(w)
		got := PatternCounts(context.Background(), p, x, ns)
		if p.Queries() != refQueries {
			t.Errorf("W=%d: %d queries, want %d", w, p.Queries(), refQueries)
		}
		if len(got) != len(ref) {
			t.Fatalf("W=%d: %d distinct patterns, want %d", w, len(got), len(ref))
		}
		for pat, n := range ref {
			if got[pat] != n {
				t.Errorf("W=%d pattern %q: %d, want %d", w, pat, got[pat], n)
			}
		}
	}
}
