package oracle

import (
	"context"
	"testing"

	"statsat/internal/circuit"
	"statsat/internal/gen"
)

// journalFixture builds the c17 benchmark with a fixed key and returns
// a fresh noisy oracle over it.
func journalFixture(t *testing.T) (*circuit.Circuit, []bool, func() *Probabilistic) {
	t.Helper()
	c := gen.C17()
	key := make([]bool, c.NumKeys())
	return c, key, func() *Probabilistic {
		return NewProbabilistic(c, key, 0.05, 42)
	}
}

// drive performs a deterministic mixed workload (scalar, batch, block,
// SignalProbs) against o and returns a digest of every answer.
func drive(t *testing.T, o Oracle, nin int, upto int) [][]bool {
	t.Helper()
	ctx := context.Background()
	var out [][]bool
	x := make([]bool, nin)
	for i := 0; i < upto; i++ {
		for j := range x {
			x[j] = (i>>uint(j%8))&1 == 1
		}
		switch i % 3 {
		case 0:
			out = append(out, append([]bool(nil), o.Query(x)...))
		case 1:
			p := SignalProbs(ctx, o, x, 130)
			row := make([]bool, len(p))
			for j, v := range p {
				row[j] = v > 0.5
			}
			out = append(out, row)
		case 2:
			if bq, ok := o.(BatchQuerier); ok {
				w := bq.QueryBatch(x)
				row := make([]bool, len(w))
				for j, v := range w {
					row[j] = v&1 == 1
				}
				out = append(out, row)
			}
		}
	}
	return out
}

func sameAnswers(t *testing.T, a, b [][]bool) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("answer counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("answer %d bit %d differs", i, j)
			}
		}
	}
}

// TestJournalResumeEquivalence is the resume-determinism kernel: a
// recorded run interrupted after k interactions, resumed on a FRESH
// oracle with the recorded tape prefix, must produce exactly the
// answers — and exactly the counters — of the uninterrupted run, for
// every cut point k.
func TestJournalResumeEquivalence(t *testing.T) {
	_, _, fresh := journalFixture(t)
	const steps = 12
	nin := fresh().NumInputs()

	// Uninterrupted control: record the full tape and answers.
	var tape []TapeRecord
	ctrl := NewJournal(fresh(), nil, func(r TapeRecord) { tape = append(tape, r) })
	want := drive(t, ctrl, nin, steps)
	wantQ, wantB := ctrl.Queries(), ctrl.(QueryBreakdown).BatchQueries()
	wantD := ctrl.(NoiseCounter).NoiseDraws()
	if wantQ == 0 || wantB == 0 || wantD == 0 {
		t.Fatalf("control consumed nothing: q=%d b=%d d=%d", wantQ, wantB, wantD)
	}

	for cut := 0; cut <= len(tape); cut += 1 + len(tape)/16 {
		prefix := tape[:cut]
		var resumedTail []TapeRecord
		res := NewJournal(fresh(), prefix, func(r TapeRecord) { resumedTail = append(resumedTail, r) })
		got := drive(t, res, nin, steps)
		sameAnswers(t, want, got)
		if q := res.Queries(); q != wantQ {
			t.Fatalf("cut %d: queries %d, want %d", cut, q, wantQ)
		}
		if b := res.(QueryBreakdown).BatchQueries(); b != wantB {
			t.Fatalf("cut %d: batch queries %d, want %d", cut, b, wantB)
		}
		if d := res.(NoiseCounter).NoiseDraws(); d != wantD {
			t.Fatalf("cut %d: noise draws %d, want %d", cut, d, wantD)
		}
		// The resumed run's recorded tail must extend the prefix into
		// the same full tape the control recorded.
		if len(prefix)+len(resumedTail) != len(tape) {
			t.Fatalf("cut %d: prefix %d + tail %d != full tape %d",
				cut, len(prefix), len(resumedTail), len(tape))
		}
		for i, r := range resumedTail {
			full := tape[cut+i]
			if r.Kind != full.Kind || r.X != full.X || r.Y != full.Y ||
				r.Queries != full.Queries || r.Draws != full.Draws {
				t.Fatalf("cut %d: resumed tail record %d differs from control", cut, i)
			}
		}
	}
}

// TestJournalScalarOracle: a journal over a Deterministic oracle must
// stay scalar-only (no BlockQuerier leaking through the wrapper) and
// still replay correctly.
func TestJournalScalarOracle(t *testing.T) {
	c, key, _ := journalFixture(t)
	fresh := func() Oracle { return NewDeterministic(c, key) }

	var tape []TapeRecord
	ctrl := NewJournal(fresh(), nil, func(r TapeRecord) { tape = append(tape, r) })
	if _, ok := ctrl.(BatchQuerier); ok {
		t.Fatal("journal over a scalar oracle must not claim BatchQuerier")
	}
	want := drive(t, ctrl, ctrl.NumInputs(), 9)

	res := NewJournal(fresh(), tape[:len(tape)/2], nil)
	got := drive(t, res, res.NumInputs(), 9)
	sameAnswers(t, want, got)
	if res.Queries() != ctrl.Queries() {
		t.Fatalf("queries %d, want %d", res.Queries(), ctrl.Queries())
	}
}

// TestJournalDivergenceFreezes: serving a mismatching input mid-replay
// must drop the tape, mark the journal diverged, stop recording, and
// keep serving the live oracle.
func TestJournalDivergenceFreezes(t *testing.T) {
	_, _, fresh := journalFixture(t)
	o := fresh()
	x0 := make([]bool, o.NumInputs())
	x1 := make([]bool, o.NumInputs())
	x1[0] = true

	var tape []TapeRecord
	ctrl := NewJournal(fresh(), nil, func(r TapeRecord) { tape = append(tape, r) })
	ctrl.Query(x0)
	ctrl.Query(x0)

	recorded := 0
	res := NewJournal(fresh(), tape, func(TapeRecord) { recorded++ })
	res.Query(x0) // matches record 0
	y := res.Query(x1)
	if len(y) != o.NumOutputs() {
		t.Fatalf("diverged query returned %d bits", len(y))
	}
	j, ok := res.(*BlockJournal)
	if !ok {
		t.Fatalf("journal over Probabilistic should be a BlockJournal, got %T", res)
	}
	if !j.Diverged() {
		t.Fatal("mismatching input did not mark the journal diverged")
	}
	if recorded != 0 {
		t.Fatalf("diverged journal recorded %d new records; the tape must freeze", recorded)
	}
	res.Query(x0)
	if recorded != 0 {
		t.Fatal("journal resumed recording after divergence")
	}
}

func TestValidateTape(t *testing.T) {
	c, key, fresh := journalFixture(t)
	var tape []TapeRecord
	ctrl := NewJournal(fresh(), nil, func(r TapeRecord) { tape = append(tape, r) })
	drive(t, ctrl, ctrl.NumInputs(), 6)
	if err := ValidateTape(tape, fresh()); err != nil {
		t.Fatalf("valid tape rejected: %v", err)
	}
	if err := ValidateTape(tape, NewDeterministic(c, key)); err == nil {
		t.Fatal("block records accepted by a scalar-only oracle")
	}
	bad := append([]TapeRecord(nil), tape...)
	bad[0].X += "0"
	if err := ValidateTape(bad, fresh()); err == nil {
		t.Fatal("wrong input width accepted")
	}
	bad = append([]TapeRecord(nil), tape...)
	bad[len(bad)-1].Queries = 0
	if err := ValidateTape(bad, fresh()); err == nil {
		t.Fatal("non-monotone counters accepted")
	}
	bad = append([]TapeRecord(nil), tape...)
	bad[0].Kind = "zz"
	if err := ValidateTape(bad, fresh()); err == nil {
		t.Fatal("unknown record kind accepted")
	}
}

// TestNoiseDrawSkipEquivalence pins the countingSource contract: a
// fresh oracle skipped n draws continues the stream exactly where a
// used oracle that consumed n draws is.
func TestNoiseDrawSkipEquivalence(t *testing.T) {
	_, _, fresh := journalFixture(t)
	a := fresh()
	x := make([]bool, a.NumInputs())
	for i := 0; i < 7; i++ {
		a.Query(x)
		a.QueryBlock(x, 2)
	}
	n := a.NoiseDraws()
	if n == 0 {
		t.Fatal("no draws consumed")
	}
	b := fresh()
	b.SkipNoiseDraws(n)
	if b.NoiseDraws() != n {
		t.Fatalf("skip landed at %d, want %d", b.NoiseDraws(), n)
	}
	ya := append([]bool(nil), a.Query(x)...)
	yb := append([]bool(nil), b.Query(x)...)
	for i := range ya {
		if ya[i] != yb[i] {
			t.Fatal("skipped oracle diverged from the continuously used one")
		}
	}
	wa := append([]uint64(nil), a.QueryBlock(x, 3)...)
	wb := append([]uint64(nil), b.QueryBlock(x, 3)...)
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("skipped oracle block words diverged")
		}
	}
}
