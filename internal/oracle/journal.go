package oracle

// The journal is the resume substrate for the durable job fabric
// (docs/SERVER.md "Persistence and recovery"): every oracle
// interaction of a running attack is recorded as a TapeRecord, and a
// resumed attack re-executes from iteration zero with the tape served
// back instead of fresh silicon queries. Because every attack in this
// repository is deterministic given its seed and its oracle answers
// (docs/ARCHITECTURE.md), replaying the recorded answers reproduces
// the interrupted trajectory exactly — same DIPs, same forks, same
// counters — after which the journal switches to the live oracle,
// whose noise stream has been skipped to the recorded draw position.
// The resumed run is therefore byte-identical to an uninterrupted one,
// no matter where the original was interrupted (even mid-sampling:
// a tape prefix simply replays fewer samples before going live).

import "fmt"

// NoiseCounter is implemented by oracles whose noisy evaluations
// consume a counted rng stream (Probabilistic). NoiseDraws reports the
// stream position; SkipNoiseDraws advances a fresh oracle to a
// recorded position so resumed sampling continues the same stream.
type NoiseCounter interface {
	NoiseDraws() uint64
	SkipNoiseDraws(n uint64)
}

// TapeRecord is one recorded oracle interaction. Kind "q" is a scalar
// Query (Y holds the output bits); kind "b" is a QueryBlock of Words
// words (W holds the NumOutputs×Words result words; QueryBatch is the
// Words==1 case). The counter fields are cumulative totals after the
// interaction, so the final record of a tape carries everything a
// resume needs to position a fresh oracle.
type TapeRecord struct {
	Kind    string   `json:"k"`
	X       string   `json:"x"`
	Words   int      `json:"w,omitempty"`
	Y       string   `json:"y,omitempty"`
	W       []uint64 `json:"bw,omitempty"`
	Queries int64    `json:"q"`
	Batch   int64    `json:"bq,omitempty"`
	Draws   uint64   `json:"d,omitempty"`
}

// bitsKey packs a bool vector into the tape's '0'/'1' string form.
func bitsKey(bits []bool) string {
	buf := make([]byte, len(bits))
	for i, b := range bits {
		if b {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}

// keyBits decodes the tape string form back into bools.
func keyBits(s string) []bool {
	out := make([]bool, len(s))
	for i := range s {
		out[i] = s[i] == '1'
	}
	return out
}

// Journal wraps an oracle with replay-then-record semantics. While a
// tape prefix remains it serves recorded answers (consuming no real
// queries and no noise); once exhausted it passes through to the
// inner oracle and feeds each new interaction to the sink. Counter
// accessors always report the trajectory position — recorded totals
// during replay, recorded-plus-live after.
type Journal struct {
	inner    Oracle
	tape     []TapeRecord
	pos      int
	sink     func(TapeRecord)
	frozen   bool
	diverged bool
	// counters of the last consumed tape record; the live phase adds
	// the (initially zero) inner counters on top.
	baseQ int64
	baseB int64
	baseD uint64
}

// BlockJournal is the Journal over an inner BlockQuerier: it
// additionally replays and records batch/block queries, so the
// blocked sampling paths keep working — and keep their trajectories —
// across a resume. Constructed by NewJournal; never construct a
// BlockJournal over a scalar-only oracle.
type BlockJournal struct {
	Journal
}

// NewJournal wraps a freshly materialized oracle (its counters at
// zero) with the given tape and record sink (either may be nil/empty).
// If the inner oracle counts noise draws, its stream is skipped to the
// tape's final draw position so post-replay sampling continues where
// the recorded run stopped. The returned oracle implements
// BatchQuerier/BlockQuerier exactly when the inner one does.
func NewJournal(inner Oracle, tape []TapeRecord, sink func(TapeRecord)) Oracle {
	j := Journal{inner: inner, tape: tape, sink: sink}
	if len(tape) > 0 {
		end := tape[len(tape)-1]
		if nc, ok := inner.(NoiseCounter); ok {
			nc.SkipNoiseDraws(end.Draws - nc.NoiseDraws())
		}
	}
	if _, ok := inner.(BlockQuerier); ok {
		return &BlockJournal{Journal: j}
	}
	return &j
}

// replaying reports whether a tape prefix remains to be served.
func (j *Journal) replaying() bool { return !j.diverged && j.pos < len(j.tape) }

// Replaying exposes the replay state (the server's healthz/status
// surfaces use it to show recovery progress).
func (j *Journal) Replaying() bool { return j.replaying() }

// Diverged reports that a replayed interaction did not match the tape
// (possible only under Options.Parallel, whose scheduling is
// documented as nondeterministic — see docs/ARCHITECTURE.md). The
// journal then drops the rest of the tape, stops recording entirely
// (the durable tape no longer describes this trajectory), and serves
// the live oracle.
func (j *Journal) Diverged() bool { return j.diverged }

func (j *Journal) diverge() {
	j.diverged = true
	j.frozen = true
	j.pos = len(j.tape)
}

// consume advances past tape[pos], adopting its cumulative counters.
func (j *Journal) consume() *TapeRecord {
	r := &j.tape[j.pos]
	j.pos++
	j.baseQ, j.baseB, j.baseD = r.Queries, r.Batch, r.Draws
	return r
}

// record feeds one live interaction to the sink with cumulative
// counters stamped.
func (j *Journal) record(r TapeRecord) {
	if j.frozen || j.sink == nil {
		return
	}
	r.Queries = j.Queries()
	r.Batch = j.BatchQueries()
	if nc, ok := j.inner.(NoiseCounter); ok {
		r.Draws = nc.NoiseDraws()
	}
	j.sink(r)
}

// Query implements Oracle.
func (j *Journal) Query(x []bool) []bool {
	if j.replaying() {
		if r := &j.tape[j.pos]; r.Kind == "q" && r.X == bitsKey(x) {
			return keyBits(j.consume().Y)
		}
		j.diverge()
	}
	y := j.inner.Query(x)
	j.record(TapeRecord{Kind: "q", X: bitsKey(x), Y: bitsKey(y)})
	return y
}

// NumInputs implements Oracle.
func (j *Journal) NumInputs() int { return j.inner.NumInputs() }

// NumOutputs implements Oracle.
func (j *Journal) NumOutputs() int { return j.inner.NumOutputs() }

// Queries implements Oracle: the trajectory's cumulative query count
// (recorded totals while replaying, plus live queries after).
func (j *Journal) Queries() int64 { return j.baseQ + j.inner.Queries() }

// BatchQueries implements QueryBreakdown.
func (j *Journal) BatchQueries() int64 {
	var live int64
	if qb, ok := j.inner.(QueryBreakdown); ok {
		live = qb.BatchQueries()
	}
	return j.baseB + live
}

// ScalarQueries implements QueryBreakdown.
func (j *Journal) ScalarQueries() int64 { return j.Queries() - j.BatchQueries() }

// NoiseDraws implements NoiseCounter (position of the trajectory, not
// of the pre-skipped inner stream, while replaying).
func (j *Journal) NoiseDraws() uint64 {
	if j.replaying() {
		return j.baseD
	}
	if nc, ok := j.inner.(NoiseCounter); ok {
		return nc.NoiseDraws()
	}
	return 0
}

// SkipNoiseDraws implements NoiseCounter, forwarding to the inner
// oracle (a journal is itself journal-able, though the server never
// nests them).
func (j *Journal) SkipNoiseDraws(n uint64) {
	if nc, ok := j.inner.(NoiseCounter); ok {
		nc.SkipNoiseDraws(n)
	}
}

// QueryBatch implements BatchQuerier (BlockJournal only): the
// single-word block, mirroring Probabilistic.
func (j *BlockJournal) QueryBatch(x []bool) []uint64 {
	return j.QueryBlock(x, 1)
}

// QueryBlock implements BlockQuerier (BlockJournal only).
func (j *BlockJournal) QueryBlock(x []bool, words int) []uint64 {
	if j.replaying() {
		if r := &j.tape[j.pos]; r.Kind == "b" && r.Words == words && r.X == bitsKey(x) {
			return j.consume().W
		}
		j.diverge()
	}
	w := j.inner.(BlockQuerier).QueryBlock(x, words)
	j.record(TapeRecord{Kind: "b", X: bitsKey(x), Words: words, W: append([]uint64(nil), w...)})
	return w
}

// BlockWords implements BlockQuerier (BlockJournal only).
func (j *BlockJournal) BlockWords() int { return j.inner.(BlockQuerier).BlockWords() }

// ValidateTape sanity-checks a replayed tape before a resume commits
// to it: records must match the oracle's pinout and carry monotone
// non-decreasing cumulative counters. A WAL that replays intact but
// fails validation (a spec/netlist mismatch) aborts the resume rather
// than silently diverging.
func ValidateTape(tape []TapeRecord, o Oracle) error {
	var q, b int64
	var d uint64
	for i, r := range tape {
		switch r.Kind {
		case "q":
			if len(r.Y) != o.NumOutputs() {
				return fmt.Errorf("oracle: tape record %d: %d output bits, oracle has %d", i, len(r.Y), o.NumOutputs())
			}
		case "b":
			if r.Words < 1 || len(r.W) != o.NumOutputs()*r.Words {
				return fmt.Errorf("oracle: tape record %d: %d block words for width %d, oracle has %d outputs",
					i, len(r.W), r.Words, o.NumOutputs())
			}
			if _, ok := o.(BlockQuerier); !ok {
				return fmt.Errorf("oracle: tape record %d is a block query but the oracle is scalar-only", i)
			}
		default:
			return fmt.Errorf("oracle: tape record %d: unknown kind %q", i, r.Kind)
		}
		if len(r.X) != o.NumInputs() {
			return fmt.Errorf("oracle: tape record %d: %d input bits, oracle has %d", i, len(r.X), o.NumInputs())
		}
		if r.Queries < q || r.Batch < b || r.Draws < d {
			return fmt.Errorf("oracle: tape record %d: counters went backwards", i)
		}
		q, b, d = r.Queries, r.Batch, r.Draws
	}
	return nil
}
