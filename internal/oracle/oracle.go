// Package oracle models the activated chip the attacker buys on the
// open market (§II-B threat model). A deterministic oracle answers
// queries exactly; a probabilistic oracle implements the paper's §III
// error model — every logic gate independently inverts its output with
// probability eps per evaluation — so repeated queries with the same
// input return inconsistent answers.
package oracle

import (
	"fmt"
	"math/bits"
	"math/rand"

	"statsat/internal/circuit"
)

// Oracle is a black-box activated chip: one Query is one application
// of an input vector to the silicon.
type Oracle interface {
	// Query applies x once and returns the (possibly noisy) outputs.
	Query(x []bool) []bool
	// NumInputs and NumOutputs describe the pinout.
	NumInputs() int
	NumOutputs() int
	// Queries returns the number of Query calls so far (attack cost
	// accounting: the paper's T_eval and Ns trade-offs count queries).
	Queries() int64
}

// Deterministic is the noise-free activated chip (used by the
// standard SAT attack and as the reference for BER measurements).
type Deterministic struct {
	c       *circuit.Circuit
	key     []bool
	scratch []bool
	queries int64
}

// NewDeterministic activates circuit c with the given correct key
// (key may be nil for unlocked netlists).
func NewDeterministic(c *circuit.Circuit, key []bool) *Deterministic {
	if len(key) != c.NumKeys() {
		panic(fmt.Sprintf("oracle: key width %d, circuit has %d key inputs", len(key), c.NumKeys()))
	}
	return &Deterministic{
		c:       c,
		key:     append([]bool(nil), key...),
		scratch: make([]bool, c.NumGates()),
	}
}

// Query implements Oracle.
func (o *Deterministic) Query(x []bool) []bool {
	o.queries++
	return o.c.Eval(x, o.key, o.scratch)
}

// NumInputs implements Oracle.
func (o *Deterministic) NumInputs() int { return o.c.NumPIs() }

// NumOutputs implements Oracle.
func (o *Deterministic) NumOutputs() int { return o.c.NumPOs() }

// Queries implements Oracle.
func (o *Deterministic) Queries() int64 { return o.queries }

// ScalarQueries implements QueryBreakdown (all queries are scalar).
func (o *Deterministic) ScalarQueries() int64 { return o.queries }

// BatchQueries implements QueryBreakdown.
func (o *Deterministic) BatchQueries() int64 { return 0 }

// Probabilistic is the paper's noisy activated chip.
type Probabilistic struct {
	c            *circuit.Circuit
	key          []bool
	eps          float64
	rng          *rand.Rand
	scratch      []bool
	wscratch     []uint64
	queries      int64
	batchQueries int64
}

// BatchQuerier is implemented by oracles that can evaluate
// circuit.BatchLanes independent samples per call. SignalProbs uses it
// when available; each call counts as BatchLanes queries.
type BatchQuerier interface {
	QueryBatch(x []bool) []uint64
}

// QueryBreakdown is implemented by oracles that can split their total
// query count into scalar and bit-parallel batch samples. The
// invariant is Queries() == ScalarQueries() + BatchQueries(); the
// trace layer records the split so sampling strategies are comparable
// at equal query budgets.
type QueryBreakdown interface {
	ScalarQueries() int64
	BatchQueries() int64
}

// NewProbabilistic activates circuit c with the correct key under
// gate error probability eps. The noise stream is seeded for
// reproducible experiments.
func NewProbabilistic(c *circuit.Circuit, key []bool, eps float64, seed int64) *Probabilistic {
	if len(key) != c.NumKeys() {
		panic(fmt.Sprintf("oracle: key width %d, circuit has %d key inputs", len(key), c.NumKeys()))
	}
	if eps < 0 || eps > 1 {
		panic(fmt.Sprintf("oracle: gate error probability %v out of [0,1]", eps))
	}
	return &Probabilistic{
		c:       c,
		key:     append([]bool(nil), key...),
		eps:     eps,
		rng:     rand.New(rand.NewSource(seed)),
		scratch: make([]bool, c.NumGates()),
	}
}

// Query implements Oracle: one noisy evaluation.
func (o *Probabilistic) Query(x []bool) []bool {
	o.queries++
	return o.c.EvalNoisy(x, o.key, o.eps, o.rng, o.scratch)
}

// QueryBatch implements BatchQuerier: circuit.BatchLanes independent
// noisy evaluations in one bit-parallel pass (one word per output,
// one sample per bit lane).
func (o *Probabilistic) QueryBatch(x []bool) []uint64 {
	o.queries += circuit.BatchLanes
	o.batchQueries += circuit.BatchLanes
	if o.wscratch == nil {
		o.wscratch = make([]uint64, o.c.NumGates())
	}
	return o.c.EvalNoisyBatch(x, o.key, o.eps, o.rng, o.wscratch)
}

// NumInputs implements Oracle.
func (o *Probabilistic) NumInputs() int { return o.c.NumPIs() }

// NumOutputs implements Oracle.
func (o *Probabilistic) NumOutputs() int { return o.c.NumPOs() }

// Queries implements Oracle.
func (o *Probabilistic) Queries() int64 { return o.queries }

// ScalarQueries implements QueryBreakdown.
func (o *Probabilistic) ScalarQueries() int64 { return o.queries - o.batchQueries }

// BatchQueries implements QueryBreakdown.
func (o *Probabilistic) BatchQueries() int64 { return o.batchQueries }

// Eps exposes the true gate error probability (experiment harness
// only; the attacker is not entitled to it — §V-E estimates it).
func (o *Probabilistic) Eps() float64 { return o.eps }

// SignalProbs queries the oracle ns times with x and returns the
// per-output signal probabilities (eq. 1). Oracles implementing
// BatchQuerier are sampled bit-parallel, BatchLanes samples per pass
// (the sample count is then rounded up to a whole number of passes —
// never fewer samples than requested).
func SignalProbs(o Oracle, x []bool, ns int) []float64 {
	if ns <= 0 {
		panic("oracle: SignalProbs needs ns >= 1")
	}
	counts := make([]int, o.NumOutputs())
	if bq, ok := o.(BatchQuerier); ok {
		passes := (ns + circuit.BatchLanes - 1) / circuit.BatchLanes
		total := passes * circuit.BatchLanes
		for p := 0; p < passes; p++ {
			words := bq.QueryBatch(x)
			for j, w := range words {
				counts[j] += bits.OnesCount64(w)
			}
		}
		probs := make([]float64, len(counts))
		for j, c := range counts {
			probs[j] = float64(c) / float64(total)
		}
		return probs
	}
	for i := 0; i < ns; i++ {
		y := o.Query(x)
		for j, b := range y {
			if b {
				counts[j]++
			}
		}
	}
	probs := make([]float64, len(counts))
	for j, c := range counts {
		probs[j] = float64(c) / float64(ns)
	}
	return probs
}

// Uncertainties converts signal probabilities to the paper's
// uncertainty measure U_i = min(P_i, 1-P_i) (eq. 2).
func Uncertainties(probs []float64) []float64 {
	u := make([]float64, len(probs))
	for i, p := range probs {
		if p <= 0.5 {
			u[i] = p
		} else {
			u[i] = 1 - p
		}
	}
	return u
}

// PatternCounts queries the oracle ns times and tallies whole output
// patterns (the PSAT baseline consumes patterns, not per-bit
// probabilities). Keys are the string of '0'/'1' bytes.
func PatternCounts(o Oracle, x []bool, ns int) map[string]int {
	counts := make(map[string]int)
	buf := make([]byte, o.NumOutputs())
	remaining := ns
	if bq, ok := o.(BatchQuerier); ok {
		for remaining >= circuit.BatchLanes {
			words := bq.QueryBatch(x)
			for lane := 0; lane < circuit.BatchLanes; lane++ {
				for j, w := range words {
					if w>>uint(lane)&1 == 1 {
						buf[j] = '1'
					} else {
						buf[j] = '0'
					}
				}
				counts[string(buf)]++
			}
			remaining -= circuit.BatchLanes
		}
	}
	for i := 0; i < remaining; i++ {
		y := o.Query(x)
		for j, b := range y {
			if b {
				buf[j] = '1'
			} else {
				buf[j] = '0'
			}
		}
		counts[string(buf)]++
	}
	return counts
}

// PatternToBits decodes a PatternCounts key back into a bool vector.
func PatternToBits(p string) []bool {
	out := make([]bool, len(p))
	for i := range p {
		out[i] = p[i] == '1'
	}
	return out
}
