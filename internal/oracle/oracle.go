// Package oracle models the activated chip the attacker buys on the
// open market (§II-B threat model). A deterministic oracle answers
// queries exactly; a probabilistic oracle implements the paper's §III
// error model — every logic gate independently inverts its output with
// probability eps per evaluation — so repeated queries with the same
// input return inconsistent answers.
package oracle

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand"

	"statsat/internal/circuit"
)

// Oracle is a black-box activated chip: one Query is one application
// of an input vector to the silicon.
type Oracle interface {
	// Query applies x once and returns the (possibly noisy) outputs.
	Query(x []bool) []bool
	// NumInputs and NumOutputs describe the pinout.
	NumInputs() int
	NumOutputs() int
	// Queries returns the number of Query calls so far (attack cost
	// accounting: the paper's T_eval and Ns trade-offs count queries).
	Queries() int64
}

// Deterministic is the noise-free activated chip (used by the
// standard SAT attack and as the reference for BER measurements).
type Deterministic struct {
	c       *circuit.Circuit
	key     []bool
	scratch []bool
	queries int64
}

// NewDeterministic activates circuit c with the given correct key
// (key may be nil for unlocked netlists).
func NewDeterministic(c *circuit.Circuit, key []bool) *Deterministic {
	if len(key) != c.NumKeys() {
		panic(fmt.Sprintf("oracle: key width %d, circuit has %d key inputs", len(key), c.NumKeys()))
	}
	return &Deterministic{
		c:       c,
		key:     append([]bool(nil), key...),
		scratch: make([]bool, c.NumGates()),
	}
}

// Query implements Oracle.
func (o *Deterministic) Query(x []bool) []bool {
	o.queries++
	return o.c.Eval(x, o.key, o.scratch)
}

// NumInputs implements Oracle.
func (o *Deterministic) NumInputs() int { return o.c.NumPIs() }

// NumOutputs implements Oracle.
func (o *Deterministic) NumOutputs() int { return o.c.NumPOs() }

// Queries implements Oracle.
func (o *Deterministic) Queries() int64 { return o.queries }

// ScalarQueries implements QueryBreakdown (all queries are scalar).
func (o *Deterministic) ScalarQueries() int64 { return o.queries }

// BatchQueries implements QueryBreakdown.
func (o *Deterministic) BatchQueries() int64 { return 0 }

// Probabilistic is the paper's noisy activated chip.
type Probabilistic struct {
	c            *circuit.Circuit
	key          []bool
	eps          float64
	rng          *rand.Rand
	src          *countingSource
	scratch      []bool
	blockWords   int
	bscratch     circuit.BlockScratch
	blockBuf     []uint64
	queries      int64
	batchQueries int64
}

// countingSource wraps the seeded math/rand source so the oracle can
// report — and on resume, restore — its exact position in the noise
// stream (NoiseCounter). Every Int63/Uint64 call advances the
// underlying generator by exactly one step, so the count is a complete
// description of the stream position regardless of which *rand.Rand
// methods consumed it.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func newCountingSource(seed int64) *countingSource {
	// math/rand's seeded source implements Source64; keeping the
	// wrapper on the 64-bit path preserves rand.Rand's value stream
	// bit-for-bit versus an unwrapped rand.NewSource.
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (s *countingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.n = 0
}

// skip advances the stream by n draws. One Uint64 call consumes the
// same single generator step as any other draw, so skipping n draws
// lands on the identical position a real run reached after n draws.
func (s *countingSource) skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.Uint64()
	}
}

// BatchQuerier is implemented by oracles that can evaluate
// circuit.BatchLanes independent samples per call. SignalProbs uses it
// when available; each call counts as BatchLanes queries.
//
// The returned slice is only valid until the next QueryBatch call on
// the same oracle: implementations may (and Probabilistic does) reuse
// one output buffer across calls to keep the sampling loop
// allocation-free. Callers that retain the words must copy them.
type BatchQuerier interface {
	QueryBatch(x []bool) []uint64
}

// BlockQuerier generalises BatchQuerier to whole evaluation blocks:
// one QueryBlock call draws words×circuit.BatchLanes independent
// samples, so an Ns-sample probability estimate costs
// ceil(Ns/(64·words)) circuit passes instead of ceil(Ns/64). Word
// column k of a block is bit-identical to the k-th of `words`
// successive QueryBatch calls over the same noise stream
// (circuit.EvalNoisyBlockInto's determinism contract), so sampling
// results — and therefore attack trajectories — are independent of the
// block width.
//
// The returned slice holds NumOutputs rows of `words` words (output
// j's word k at [j*words+k]) and is only valid until the next
// QueryBlock or QueryBatch call on the same oracle; callers that
// retain it must copy.
type BlockQuerier interface {
	BatchQuerier
	// QueryBlock draws words×circuit.BatchLanes samples in one blocked
	// pass; words must be in [1, BlockWords()]. Each call counts as
	// words×circuit.BatchLanes queries.
	QueryBlock(x []bool, words int) []uint64
	// BlockWords reports the widest block one QueryBlock call accepts.
	BlockWords() int
}

// QueryBreakdown is implemented by oracles that can split their total
// query count into scalar and bit-parallel batch samples. The
// invariant is Queries() == ScalarQueries() + BatchQueries(); the
// trace layer records the split so sampling strategies are comparable
// at equal query budgets.
type QueryBreakdown interface {
	ScalarQueries() int64
	BatchQueries() int64
}

// NewProbabilistic activates circuit c with the correct key under
// gate error probability eps. The noise stream is seeded for
// reproducible experiments.
func NewProbabilistic(c *circuit.Circuit, key []bool, eps float64, seed int64) *Probabilistic {
	if len(key) != c.NumKeys() {
		panic(fmt.Sprintf("oracle: key width %d, circuit has %d key inputs", len(key), c.NumKeys()))
	}
	if eps < 0 || eps > 1 {
		panic(fmt.Sprintf("oracle: gate error probability %v out of [0,1]", eps))
	}
	src := newCountingSource(seed)
	//lint:ignore globalrand countingSource wraps the rand.NewSource(seed) built inside newCountingSource one call up; seed provenance stays auditable and the wrapper only counts draws for checkpoint/resume
	rng := rand.New(src)
	return &Probabilistic{
		c:          c,
		key:        append([]bool(nil), key...),
		eps:        eps,
		rng:        rng,
		src:        src,
		scratch:    make([]bool, c.NumGates()),
		blockWords: circuit.DefaultBlockWords(c.NumGates()),
	}
}

// NoiseDraws implements NoiseCounter: the number of noise-source draws
// consumed so far (the oracle's exact position in its noise stream).
func (o *Probabilistic) NoiseDraws() uint64 { return o.src.n }

// SkipNoiseDraws implements NoiseCounter: advance the noise stream by
// n draws without evaluating anything. Resume support — a freshly
// seeded oracle skipped to a recorded draw count produces the same
// noise a continuously running oracle would from that point on.
func (o *Probabilistic) SkipNoiseDraws(n uint64) { o.src.skip(n) }

// Query implements Oracle: one noisy evaluation.
func (o *Probabilistic) Query(x []bool) []bool {
	o.queries++
	return o.c.EvalNoisy(x, o.key, o.eps, o.rng, o.scratch)
}

// QueryBatch implements BatchQuerier: circuit.BatchLanes independent
// noisy evaluations in one bit-parallel pass (one word per output,
// one sample per bit lane). The returned slice is reused across calls
// (see BatchQuerier); copy it to retain the words. It is the
// single-word block, so the noise stream is shared with QueryBlock.
func (o *Probabilistic) QueryBatch(x []bool) []uint64 {
	return o.QueryBlock(x, 1)
}

// QueryBlock implements BlockQuerier: words×circuit.BatchLanes
// independent noisy evaluations in one blocked bit-parallel pass. The
// returned slice is reused across calls (see BlockQuerier); copy it
// to retain the words.
func (o *Probabilistic) QueryBlock(x []bool, words int) []uint64 {
	if words < 1 || words > o.blockWords {
		panic(fmt.Sprintf("oracle: block width %d out of [1,%d]", words, o.blockWords))
	}
	n := int64(words) * circuit.BatchLanes
	o.queries += n
	o.batchQueries += n
	//lint:ignore bufretain o.blockBuf IS the reusable scratch the contract is about: the oracle owns it and hands out aliases; callers, not the owner, must copy
	o.blockBuf = o.c.EvalNoisyBlockInto(o.blockBuf, x, o.key, o.eps, o.rng, words, &o.bscratch)
	return o.blockBuf
}

// BlockWords implements BlockQuerier: the default is
// circuit.DefaultBlockWords for the activated circuit's size.
func (o *Probabilistic) BlockWords() int { return o.blockWords }

// SetBlockWords overrides the block width cap (parity experiments and
// cache tuning; the sampled bits are width-independent either way).
func (o *Probabilistic) SetBlockWords(w int) {
	if w < 1 || w > circuit.MaxBlockWords {
		panic(fmt.Sprintf("oracle: block width %d out of [1,%d]", w, circuit.MaxBlockWords))
	}
	o.blockWords = w
}

// NumInputs implements Oracle.
func (o *Probabilistic) NumInputs() int { return o.c.NumPIs() }

// NumOutputs implements Oracle.
func (o *Probabilistic) NumOutputs() int { return o.c.NumPOs() }

// Queries implements Oracle.
func (o *Probabilistic) Queries() int64 { return o.queries }

// ScalarQueries implements QueryBreakdown.
func (o *Probabilistic) ScalarQueries() int64 { return o.queries - o.batchQueries }

// BatchQueries implements QueryBreakdown.
func (o *Probabilistic) BatchQueries() int64 { return o.batchQueries }

// Eps exposes the true gate error probability (experiment harness
// only; the attacker is not entitled to it — §V-E estimates it).
func (o *Probabilistic) Eps() float64 { return o.eps }

// SignalProbs queries the oracle ns times with x and returns the
// per-output signal probabilities (eq. 1). Oracles implementing
// BatchQuerier are sampled bit-parallel, BatchLanes samples per pass
// (the sample count is then rounded up to a whole number of passes —
// never fewer samples than requested).
//
// Cancelling ctx stops the sampling early; the probabilities are then
// normalised over the samples actually taken (best-effort, all-zero
// when cancellation preceded the first sample). Callers that must
// distinguish partial from complete data check ctx.Err() afterwards.
func SignalProbs(ctx context.Context, o Oracle, x []bool, ns int) []float64 {
	return SignalProbsInto(ctx, o, x, ns, nil)
}

// SignalProbsInto is SignalProbs with a caller-provided result buffer:
// when dst has capacity for NumOutputs values it backs the result, so
// repeated probability queries (BER sweeps, eps'_g estimation, HD
// floors) run without per-call allocation. One-counts accumulate
// directly into dst (exact in float64 for any realistic ns), so no
// intermediate counter slice is needed either.
func SignalProbsInto(ctx context.Context, o Oracle, x []bool, ns int, dst []float64) []float64 {
	if ns <= 0 {
		panic("oracle: SignalProbs needs ns >= 1")
	}
	if cap(dst) >= o.NumOutputs() {
		dst = dst[:o.NumOutputs()]
	} else {
		dst = make([]float64, o.NumOutputs())
	}
	for j := range dst {
		dst[j] = 0
	}
	total := 0
	if blq, ok := o.(BlockQuerier); ok {
		// Blocked sampling: same whole-word rounding as the batch path
		// (ceil(ns/64) words), consumed up to BlockWords() words per
		// circuit pass. Word columns are drawn in the same stream order
		// as successive batch passes, so counts — and the query total —
		// are bit-identical at every block width.
		left := (ns + circuit.BatchLanes - 1) / circuit.BatchLanes
		wmax := blq.BlockWords()
		for left > 0 && ctx.Err() == nil {
			wblk := wmax
			if left < wblk {
				wblk = left
			}
			words := blq.QueryBlock(x, wblk)
			for j := range dst {
				ones := 0
				for _, w := range words[j*wblk : (j+1)*wblk] {
					ones += bits.OnesCount64(w)
				}
				dst[j] += float64(ones)
			}
			total += wblk * circuit.BatchLanes
			left -= wblk
		}
	} else if bq, ok := o.(BatchQuerier); ok {
		passes := (ns + circuit.BatchLanes - 1) / circuit.BatchLanes
		for p := 0; p < passes && ctx.Err() == nil; p++ {
			words := bq.QueryBatch(x)
			for j, w := range words {
				dst[j] += float64(bits.OnesCount64(w))
			}
			total += circuit.BatchLanes
		}
	} else {
		for i := 0; i < ns && ctx.Err() == nil; i++ {
			y := o.Query(x)
			for j, b := range y {
				if b {
					dst[j]++
				}
			}
			total++
		}
	}
	if total == 0 {
		return dst
	}
	for j := range dst {
		dst[j] /= float64(total)
	}
	return dst
}

// Uncertainties converts signal probabilities to the paper's
// uncertainty measure U_i = min(P_i, 1-P_i) (eq. 2).
func Uncertainties(probs []float64) []float64 {
	return UncertaintiesInto(probs, nil)
}

// UncertaintiesInto is Uncertainties with a caller-provided result
// buffer (aliasing probs is allowed: the transform is element-wise).
func UncertaintiesInto(probs, dst []float64) []float64 {
	if cap(dst) >= len(probs) {
		dst = dst[:len(probs)]
	} else {
		dst = make([]float64, len(probs))
	}
	for i, p := range probs {
		if p <= 0.5 {
			dst[i] = p
		} else {
			dst[i] = 1 - p
		}
	}
	return dst
}

// PatternCounts queries the oracle ns times and tallies whole output
// patterns (the PSAT baseline consumes patterns, not per-bit
// probabilities). Keys are the string of '0'/'1' bytes. Cancelling ctx
// stops the sampling early and returns the tallies so far.
func PatternCounts(ctx context.Context, o Oracle, x []bool, ns int) map[string]int {
	counts := make(map[string]int)
	buf := make([]byte, o.NumOutputs())
	remaining := ns
	if blq, ok := o.(BlockQuerier); ok {
		wmax := blq.BlockWords()
		for remaining >= circuit.BatchLanes && ctx.Err() == nil {
			wblk := remaining / circuit.BatchLanes
			if wblk > wmax {
				wblk = wmax
			}
			words := blq.QueryBlock(x, wblk)
			for k := 0; k < wblk; k++ {
				for lane := 0; lane < circuit.BatchLanes; lane++ {
					for j := range buf {
						if words[j*wblk+k]>>uint(lane)&1 == 1 {
							buf[j] = '1'
						} else {
							buf[j] = '0'
						}
					}
					counts[string(buf)]++
				}
			}
			remaining -= wblk * circuit.BatchLanes
		}
	} else if bq, ok := o.(BatchQuerier); ok {
		for remaining >= circuit.BatchLanes && ctx.Err() == nil {
			words := bq.QueryBatch(x)
			for lane := 0; lane < circuit.BatchLanes; lane++ {
				for j, w := range words {
					if w>>uint(lane)&1 == 1 {
						buf[j] = '1'
					} else {
						buf[j] = '0'
					}
				}
				counts[string(buf)]++
			}
			remaining -= circuit.BatchLanes
		}
	}
	for i := 0; i < remaining && ctx.Err() == nil; i++ {
		y := o.Query(x)
		for j, b := range y {
			if b {
				buf[j] = '1'
			} else {
				buf[j] = '0'
			}
		}
		counts[string(buf)]++
	}
	return counts
}

// PatternToBits decodes a PatternCounts key back into a bool vector.
func PatternToBits(p string) []bool {
	out := make([]bool, len(p))
	for i := range p {
		out[i] = p[i] == '1'
	}
	return out
}
