package core

import (
	"context"
	"sync"

	"statsat/internal/oracle"
)

// lockedOracle serialises access to a (stateful) oracle so multiple
// instance goroutines can share the activated chip. This matches the
// physical reality: the attacker owns one chip and queries it
// sequentially; parallelism buys concurrent SAT solving and BER
// estimation, not concurrent silicon.
type lockedOracle struct {
	mu    sync.Mutex
	inner oracle.Oracle
	// batch is inner's BatchQuerier view, stored once at wrap time so
	// QueryBatch cannot panic on a mismatched dynamic type later; it
	// is non-nil exactly when wrapOracle returned *lockedOracle
	// directly (the batch-capable path).
	batch oracle.BatchQuerier
}

func (o *lockedOracle) Query(x []bool) []bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.inner.Query(x)
}

func (o *lockedOracle) QueryBatch(x []bool) []uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	// The inner oracle reuses its output buffer across calls
	// (oracle.BatchQuerier contract); the caller reads the words after
	// the lock is released, so hand out a private copy — otherwise a
	// concurrent instance's next pass would overwrite them mid-read.
	return append([]uint64(nil), o.batch.QueryBatch(x)...)
}

func (o *lockedOracle) NumInputs() int  { return o.inner.NumInputs() }
func (o *lockedOracle) NumOutputs() int { return o.inner.NumOutputs() }

func (o *lockedOracle) Queries() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.inner.Queries()
}

// NoiseDraws forwards oracle.NoiseCounter when the chip counts noise
// draws (zero otherwise), so engine checkpoints can stamp the stream
// position through the serialising wrapper.
func (o *lockedOracle) NoiseDraws() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	if nc, ok := o.inner.(interface{ NoiseDraws() uint64 }); ok {
		return nc.NoiseDraws()
	}
	return 0
}

// blockLockedOracle extends lockedOracle with the blocked sampling
// view, so instances sharing the chip keep the wide-pass fast path
// (oracle.SignalProbs prefers BlockQuerier when present).
type blockLockedOracle struct {
	*lockedOracle
	block oracle.BlockQuerier
}

func (o *blockLockedOracle) QueryBlock(x []bool, words int) []uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	// Copy under the lock for the same reason QueryBatch does: the
	// inner oracle's block buffer is reused across calls, and the
	// caller reads the words after the lock is released.
	return append([]uint64(nil), o.block.QueryBlock(x, words)...)
}

func (o *blockLockedOracle) BlockWords() int { return o.block.BlockWords() }

// scalarLockedOracle is the wrapper for oracles without QueryBatch; it
// deliberately lacks the BatchQuerier method so SignalProbs falls back
// to the scalar path.
type scalarLockedOracle struct{ lo *lockedOracle }

func (o scalarLockedOracle) Query(x []bool) []bool { return o.lo.Query(x) }
func (o scalarLockedOracle) NumInputs() int        { return o.lo.NumInputs() }
func (o scalarLockedOracle) NumOutputs() int       { return o.lo.NumOutputs() }
func (o scalarLockedOracle) Queries() int64        { return o.lo.Queries() }
func (o scalarLockedOracle) NoiseDraws() uint64    { return o.lo.NoiseDraws() }

// wrapOracle returns a goroutine-safe view of orc, preserving blocked
// and batch sampling capability when present.
func wrapOracle(orc oracle.Oracle) oracle.Oracle {
	lo := &lockedOracle{inner: orc}
	if blk, ok := orc.(oracle.BlockQuerier); ok {
		lo.batch = blk
		return &blockLockedOracle{lockedOracle: lo, block: blk}
	}
	if bq, ok := orc.(oracle.BatchQuerier); ok {
		lo.batch = bq
		return lo
	}
	return scalarLockedOracle{lo}
}

// runParallel executes the instance scheduler with one goroutine per
// live instance; forked children get their own goroutines via
// run.spawn. The N_inst bound, the iteration budget and all result
// counters are enforced exactly as in the sequential path (shared
// bookkeeping sits behind run.mu).
func (run *attackRun) runParallel(ctx context.Context, root *instance) {
	var wg sync.WaitGroup
	run.spawn = func(in *instance) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run.instanceLoop(ctx, in)
		}()
	}
	run.spawn(root)
	wg.Wait()
	run.spawn = nil
}

// instanceLoop drives one instance until it finishes, dies, errors,
// exhausts the shared iteration budget, or the context is cancelled.
func (run *attackRun) instanceLoop(ctx context.Context, in *instance) {
	for {
		run.mu.Lock()
		stop := run.err != nil || in.state != running
		run.mu.Unlock()
		if stop {
			return
		}
		if err := ctx.Err(); err != nil {
			run.setErr(run.interrupted(in, err))
			return
		}
		if !run.takeIteration() {
			run.markTruncated()
			return
		}
		if err := run.step(ctx, in); err != nil {
			run.setErr(err)
			return
		}
	}
}
