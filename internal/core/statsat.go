// Package core implements StatSAT — the paper's contribution: a SAT
// attack on logic-locked circuits whose activated chip (oracle)
// behaves probabilistically.
//
// The attack augments the classic miter-based SAT attack (§II-B) with:
//
//   - signal-probability oracle queries: each distinguishing input is
//     applied Ns times and averaged per output bit (eq. 1);
//   - uncertainty gating: output bits whose uncertainty
//     U_i = min(P_i, 1-P_i) exceeds U_lambda stay unspecified (eq. 2-3);
//   - BER-estimate gating: per-output bit error ratios are estimated
//     with Boolean Difference Calculus over up to N_satis keys that
//     satisfy the recorded DIPs; bits with E_i > E_lambda also stay
//     unspecified (eq. 4);
//   - instance duplication: when a distinguishing input repeats, the
//     SAT instance forks, specifying the riskiest unspecified bit both
//     ways (eq. 5), bounded by N_inst live instances;
//   - force-proceed: at the instance cap, the least-risky unspecified
//     bit (min E_i) is rounded in (eq. 6);
//   - key evaluation: every returned key is scored with the figure of
//     merit FM (eq. 7) against fresh oracle measurements; HD (eq. 8)
//     reports closeness of statistical behaviour.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"statsat/internal/circuit"
	"statsat/internal/cnf"
	"statsat/internal/engine"
	"statsat/internal/errprop"
	"statsat/internal/metrics"
	"statsat/internal/oracle"
	"statsat/internal/portfolio"
	"statsat/internal/sat"
	"statsat/internal/trace"
)

// Options configures a StatSAT run. Zero values select the paper's
// defaults where one exists.
type Options struct {
	// Ns is the number of oracle samples per distinguishing input
	// (paper: 500).
	Ns int
	// NSatis is the number of satisfying keys averaged for the BER
	// estimate (paper: 100).
	NSatis int
	// NEval is the number of random evaluation inputs for FM/HD
	// (paper: 2000).
	NEval int
	// EvalNs is the number of samples per evaluation input; defaults
	// to Ns.
	EvalNs int
	// NInst is the maximum number of simultaneous SAT instances
	// (paper: swept in powers of two).
	NInst int
	// ULambda is the uncertainty threshold (paper: 0.25).
	ULambda float64
	// ELambda is the estimated-BER threshold (paper: 0.30).
	ELambda float64
	// EpsG is the gate error probability the attacker uses for BER
	// estimation — either known (§V assumption) or estimated (§V-E,
	// EstimateGateError).
	EpsG float64
	// MaxTotalIter bounds the summed iterations across instances
	// (safety net; 0 = 20000).
	MaxTotalIter int
	// Seed drives all attack-side randomness (key evaluation inputs,
	// simulated unlocked-circuit noise).
	Seed int64
	// Parallel runs live SAT instances on concurrent goroutines (the
	// instances are independent by construction — §IV-D). Oracle
	// queries stay serialised (one chip). Results remain valid but
	// are no longer bit-reproducible across runs, because instances
	// interleave their oracle noise draws; leave false for
	// deterministic experiments.
	Parallel bool
	// PortfolioWorkers enables portfolio solving (internal/portfolio):
	// up to PortfolioWorkers-1 helper solvers with diverse
	// configurations race each miter solve and exchange learnt clauses
	// through a shared pool. Values <= 1 disable racing entirely and
	// keep runs byte-identical to sequential mode. Unlike Parallel,
	// racing preserves the DIP trajectory and the accepted keys for
	// any worker count (helpers only ever contribute UNSAT verdicts).
	PortfolioWorkers int
	// PortfolioRacers caps the helper configurations raced per
	// instance solve (default 3; capped by free worker slots).
	PortfolioRacers int
	// Logf, if set, receives progress lines (serialised internally).
	Logf func(format string, args ...interface{})
	// Tracer, if set, receives structured trace events for every
	// iteration, DIP, gating decision, fork, force-proceed and key —
	// the schema is documented in docs/OBSERVABILITY.md. Emission is
	// race-safe under Parallel. Tracing an attack changes nothing
	// about its behaviour or results.
	Tracer trace.Tracer
	// Checkpoint, if set, receives a progress checkpoint after every
	// engine Step of every instance (the durable-resume boundary; see
	// docs/ARCHITECTURE.md "Checkpoint contract"). Like Tracer, a
	// checkpoint sink changes nothing about behaviour or results.
	Checkpoint engine.CheckpointSink
}

func (o *Options) setDefaults() {
	if o.Ns <= 0 {
		o.Ns = 500
	}
	if o.NSatis <= 0 {
		o.NSatis = 100
	}
	if o.NEval <= 0 {
		o.NEval = 2000
	}
	if o.EvalNs <= 0 {
		o.EvalNs = o.Ns
	}
	if o.NInst <= 0 {
		o.NInst = 1
	}
	if o.ULambda <= 0 {
		o.ULambda = 0.25
	}
	if o.ELambda <= 0 {
		o.ELambda = 0.30
	}
	if o.MaxTotalIter <= 0 {
		o.MaxTotalIter = 20000
	}
}

// KeyReport is one recovered key with its evaluation scores.
type KeyReport struct {
	Key        []bool
	FM         float64
	HD         float64
	Iterations int // SAT iterations of the instance that produced it
	Instance   int // instance ID
}

// Result is the outcome of a StatSAT attack.
type Result struct {
	// Keys holds every key returned by a finished instance (|K| in
	// Table II), best (minimum FM) first.
	Keys []KeyReport
	// Best points at Keys[0] when any key was found.
	Best *KeyReport
	// Instances is the peak number of simultaneously live instances.
	Instances int
	// InstancesCreated counts every instance ever forked (incl. root).
	InstancesCreated int
	// Forks and ForceProceeds count eq. 5 / eq. 6 events.
	Forks         int
	ForceProceeds int
	// DeadInstances counts instances that went UNSAT.
	DeadInstances int
	// TotalIterations sums SAT iterations over all instances.
	TotalIterations int
	// OracleQueries counts chip queries during the attack phase.
	OracleQueries int64
	// EvalQueries counts chip queries during key evaluation.
	EvalQueries int64
	// AttackDuration is T_attack (key finding only, paper Fig. 5).
	AttackDuration time.Duration
	// EvalDuration is the total evaluation time; EvalPerKey is the
	// per-key share (T_eval, paper Fig. 5).
	EvalDuration time.Duration
	EvalPerKey   time.Duration
	// Truncated is set when MaxTotalIter stopped running instances.
	Truncated bool
	// InstanceStats records the full fork tree: one entry per instance
	// ever created, in creation order.
	InstanceStats []InstanceStat
}

// InstanceStat summarises one SAT instance's life.
type InstanceStat struct {
	ID         int
	Parent     int // -1 for the root
	Iterations int
	DIPs       int
	// Outcome: "finished", "dead", or "running" (budget-truncated).
	Outcome  string
	KeyFound bool
}

// ErrNoInstances is returned when every instance died without
// producing a key (the attack failed outright).
var ErrNoInstances = errors.New("statsat: every SAT instance became unsatisfiable")

// ErrInterrupted matches any attack stopped by context cancellation or
// deadline expiry (via errors.Is). It always arrives alongside a
// non-nil best-effort Result; see engine.InterruptedError.
var ErrInterrupted = engine.ErrInterrupted

// dip is one distinguishing input with its oracle statistics and the
// (partially specified) output vector shared with the SAT solvers.
type dip struct {
	x     []bool
	probs []float64 // P^Y (eq. 1)
	u     []float64 // uncertainties (eq. 2)
	e     []float64 // estimated BERs (§IV-C)
	y     []int8    // -1 unspecified, 0, 1 (per instance)
	outA  []cnf.Wire
	outB  []cnf.Wire
	outs  []cnf.Wire // key-solver copy outputs
}

func (d *dip) cloneFor() *dip {
	nd := *d
	nd.y = append([]int8(nil), d.y...)
	return &nd
}

// unspecifiedInto collects the indices of unspecified bits into buf
// (reused across calls on the hot repeat path).
func (d *dip) unspecifiedInto(buf []int) []int {
	idx := buf[:0]
	for i, v := range d.y {
		if v < 0 {
			idx = append(idx, i)
		}
	}
	return idx
}

type instState int8

const (
	running instState = iota
	finished
	dead
)

// instance is one SAT formulation (CNF formulas + recorded DIPs). The
// embedded engine.Instance carries the miter (M), key solver (KS), ID
// and iteration counter the shared loop operates on; this wrapper adds
// StatSAT's fork-tree state. The *Buf fields are per-instance scratch
// for the iteration hot path; an instance is only ever driven by one
// goroutine at a time, so they need no locking (and clones get fresh
// ones).
type instance struct {
	engine.Instance
	parent  int // id of the instance this one forked from (-1 for root)
	dips    []*dip
	byInput map[string]int // input pattern -> dip index
	state   instState
	key     []bool
	// sib is the instance's portfolio handle (nil outside portfolio
	// mode); Instance.Port aliases it for the engine's miter solves.
	sib *portfolio.Sibling

	keyBuf    []byte // repeated-DIP map lookups without a string alloc
	unspecBuf []int  // unspecified-bit index scratch (handleRepeat)
}

// fmtY, keyOf and appendBits delegate to the shared formatting helpers
// in internal/engine (one implementation for every attack).

func fmtY(y []int8) string { return engine.FmtY(y) }

func keyOf(x []bool) string { return engine.BitString(x) }

func appendBits(buf []byte, x []bool) []byte { return engine.AppendBits(buf, x) }

func (in *instance) clone(id int) *instance {
	n := &instance{
		Instance: engine.Instance{
			ID:         id,
			M:          in.M.Clone(),
			KS:         in.KS.Clone(),
			Iterations: in.Iterations,
		},
		parent:  in.ID,
		dips:    make([]*dip, len(in.dips)),
		byInput: make(map[string]int, len(in.byInput)),
		state:   in.state,
	}
	for i, d := range in.dips {
		n.dips[i] = d.cloneFor()
	}
	for k, v := range in.byInput {
		n.byInput[k] = v
	}
	return n
}

// specify pins output bit j of dip d to val in both solvers.
func (in *instance) specify(d *dip, j int, val bool) {
	var v int8
	if val {
		v = 1
	}
	d.y[j] = v
	cnf.Equal(in.M.S, d.outA[j], val)
	cnf.Equal(in.M.S, d.outB[j], val)
	cnf.Equal(in.KS.S, d.outs[j], val)
}

// attack bundles the run state. mu guards insts, res, nextID, peakLive
// and err whenever instances run concurrently; the sequential
// scheduler takes the same locks (uncontended, negligible cost) so the
// two paths share one implementation.
type attackRun struct {
	locked *circuit.Circuit
	orc    oracle.Oracle
	opts   Options

	mu       sync.Mutex
	insts    []*instance
	nextID   int
	res      *Result
	peakLive int
	err      error
	spawn    func(*instance) // set by the parallel scheduler

	// eng drives the shared oracle-guided loop (internal/engine); its
	// StartQ stays 0 so StatSAT events stamp the absolute shared-chip
	// query counter.
	eng *engine.Engine

	// port owns the shared clause pool and racing worker slots; nil
	// outside portfolio mode (Options.PortfolioWorkers <= 1).
	port *portfolio.Portfolio

	// tr stamps and forwards trace events; nil (all methods no-op)
	// when no Tracer is configured.
	tr *trace.Emitter

	// estPool hands out per-goroutine errprop.Estimators so the
	// N_satis-key BER estimation of every DIP reuses its wire-value and
	// probability scratch instead of reallocating it per key, without
	// sharing buffers between concurrently stepping instances.
	estPool sync.Pool

	logMu sync.Mutex
}

func (run *attackRun) getEstimator() *errprop.Estimator {
	if est, ok := run.estPool.Get().(*errprop.Estimator); ok {
		return est
	}
	return errprop.NewEstimator(run.locked)
}

func (run *attackRun) logf(format string, args ...interface{}) {
	if run.opts.Logf == nil {
		return
	}
	run.logMu.Lock()
	defer run.logMu.Unlock()
	run.opts.Logf(format, args...)
}

// Attack runs StatSAT against the oracle and returns every recovered
// key with FM/HD scores (best first). The caller decides "correctness"
// externally (e.g. metrics.KeysEquivalent against ground truth).
//
// Cancelling ctx (or letting its deadline expire) stops the attack at
// the next iteration boundary — or mid-solve, via the SAT solver's
// amortized interrupt check — and returns an error matching
// ErrInterrupted together with a non-nil best-effort Result: full
// instance statistics, any keys produced by already-finished instances
// (unscored; the evaluation phase is skipped) and, failing that, a key
// candidate extracted from the most advanced live instance.
func Attack(ctx context.Context, locked *circuit.Circuit, orc oracle.Oracle, opts Options) (*Result, error) {
	opts.setDefaults()
	if locked.NumPIs() != orc.NumInputs() || locked.NumPOs() != orc.NumOutputs() {
		return nil, fmt.Errorf("statsat: netlist/oracle interface mismatch (%d/%d in, %d/%d out)",
			locked.NumPIs(), orc.NumInputs(), locked.NumPOs(), orc.NumOutputs())
	}
	if locked.NumKeys() == 0 {
		return nil, fmt.Errorf("statsat: circuit %q has no key inputs", locked.Name)
	}

	run := &attackRun{locked: locked, orc: orc, opts: opts, res: &Result{}}
	if opts.Parallel {
		run.orc = wrapOracle(orc)
	}
	run.tr = trace.NewEmitter(opts.Tracer)
	run.eng = &engine.Engine{Locked: locked, Orc: run.orc, Tr: run.tr, Ckpt: opts.Checkpoint}
	run.port = portfolio.New(portfolio.Options{
		Workers: opts.PortfolioWorkers, Racers: opts.PortfolioRacers,
	}, run.tr)
	oi := &trace.OptionsInfo{
		Ns: opts.Ns, NSatis: opts.NSatis, NEval: opts.NEval, EvalNs: opts.EvalNs,
		NInst: opts.NInst, ULambda: opts.ULambda, ELambda: opts.ELambda,
		EpsG: opts.EpsG, MaxIter: opts.MaxTotalIter, Parallel: opts.Parallel,
	}
	if run.port.Enabled() {
		oi.PortfolioWorkers = opts.PortfolioWorkers
		oi.PortfolioRacers = opts.PortfolioRacers
	}
	run.eng.EmitStart("statsat", oi)
	startQ := run.orc.Queries()
	start := time.Now()

	root, err := run.newRootInstance()
	if err != nil {
		return nil, err
	}
	run.insts = []*instance{root}
	run.res.InstancesCreated = 1
	run.peakLive = 1

	if opts.Parallel {
		run.runParallel(ctx, root)
	} else {
		run.runSequential(ctx)
	}
	var interrupted *engine.InterruptedError
	if run.err != nil && !errors.As(run.err, &interrupted) {
		return nil, run.err
	}
	run.res.Instances = run.peakLive
	if interrupted == nil && run.anyRunning() && !run.res.Truncated {
		run.res.Truncated = true
	}
	if run.res.Truncated {
		run.logf("statsat: iteration budget exhausted with instances still running")
	}
	run.res.AttackDuration = time.Since(start)
	run.res.OracleQueries = run.orc.Queries() - startQ

	for _, in := range run.insts {
		st := InstanceStat{
			ID:         in.ID,
			Parent:     in.parent,
			Iterations: in.Iterations,
			DIPs:       len(in.dips),
			KeyFound:   in.key != nil,
		}
		switch in.state {
		case finished:
			st.Outcome = "finished"
		case dead:
			st.Outcome = "dead"
		default:
			st.Outcome = "running"
		}
		run.res.InstanceStats = append(run.res.InstanceStats, st)
	}

	// Collect keys.
	var keys []KeyReport
	for _, in := range run.insts {
		if in.state == finished && in.key != nil {
			keys = append(keys, KeyReport{
				Key:        in.key,
				Iterations: in.Iterations,
				Instance:   in.ID,
			})
		}
	}
	if interrupted != nil {
		return run.interruptedResult(keys, interrupted)
	}
	run.emitAttackEnd(len(keys))
	if len(keys) == 0 {
		return run.res, ErrNoInstances
	}

	// Evaluation phase (eq. 7 / eq. 8).
	if run.tr.Enabled() {
		run.tr.Emit(trace.Event{
			Type:     trace.EvalStart,
			Instance: -1,
			Eval:     &trace.EvalInfo{Keys: len(keys), NEval: opts.NEval, EvalNs: opts.EvalNs},
		})
	}
	evalStart := time.Now()
	startEvalQ := run.orc.Queries()
	run.evaluateKeys(ctx, keys)
	run.res.EvalDuration = time.Since(evalStart)
	run.res.EvalQueries = run.orc.Queries() - startEvalQ
	run.res.EvalPerKey = run.res.EvalDuration / time.Duration(len(keys))
	if run.tr.Enabled() {
		run.tr.Emit(trace.Event{
			Type:     trace.EvalEnd,
			Instance: -1,
			Score:    &trace.ScoreInfo{FM: run.res.Best.FM, HD: run.res.Best.HD},
			Eval: &trace.EvalInfo{
				Keys:          len(keys),
				DurationNs:    run.res.EvalDuration.Nanoseconds(),
				OracleQueries: run.res.EvalQueries,
			},
		})
	}
	// A cancellation landing during evaluation leaves the attack-phase
	// result intact but the scores best-effort; report it.
	if err := ctx.Err(); err != nil {
		run.eng.EmitInterrupted(err, run.res.TotalIterations)
		return run.res, &engine.InterruptedError{Cause: err, Instance: -1, Iterations: run.res.TotalIterations}
	}
	return run.res, nil
}

// emitAttackEnd closes the attack phase of the trace with its totals.
func (run *attackRun) emitAttackEnd(keys int) {
	if !run.tr.Enabled() {
		return
	}
	run.tr.Emit(trace.Event{
		Type:     trace.AttackEnd,
		Instance: -1,
		Totals: &trace.TotalsInfo{
			Keys:             keys,
			Iterations:       run.res.TotalIterations,
			InstancesCreated: run.res.InstancesCreated,
			PeakLive:         run.res.Instances,
			Forks:            run.res.Forks,
			ForceProceeds:    run.res.ForceProceeds,
			DeadInstances:    run.res.DeadInstances,
			OracleQueries:    run.res.OracleQueries,
			Truncated:        run.res.Truncated,
			DurationNs:       run.res.AttackDuration.Nanoseconds(),
		},
	})
}

// interruptedResult finalises a cancelled run: when no instance had
// finished yet, a best-effort key candidate is extracted from the live
// instances' accumulated DIP constraints (unscored, like every
// interrupted key — the evaluation phase needs oracle access the
// deadline no longer affords). Instances are tried most-advanced
// first; an instance whose solver has gone UNSAT under noisy
// constraints simply yields nothing and the next one is consulted.
// The trace closes with an interrupted marker followed by the partial
// totals.
func (run *attackRun) interruptedResult(keys []KeyReport, ie *engine.InterruptedError) (*Result, error) {
	if len(keys) == 0 {
		live := make([]*instance, 0, len(run.insts))
		for _, in := range run.insts {
			if in.state == running {
				live = append(live, in)
			}
		}
		sort.Slice(live, func(i, j int) bool { return live[i].Iterations > live[j].Iterations })
		for _, in := range live {
			if key := engine.BestEffortKey(in.KS); key != nil {
				keys = append(keys, KeyReport{Key: key, Iterations: in.Iterations, Instance: in.ID})
				break
			}
		}
	}
	run.res.Keys = keys
	if len(keys) > 0 {
		run.res.Best = &run.res.Keys[0]
	}
	run.eng.EmitInterrupted(ie.Cause, run.res.TotalIterations)
	run.emitAttackEnd(len(keys))
	run.logf("statsat: interrupted after %d iterations (%v); result is best-effort",
		run.res.TotalIterations, ie.Cause)
	return run.res, run.err
}

// runSequential is the deterministic round-robin scheduler.
func (run *attackRun) runSequential(ctx context.Context) {
	for {
		progressed := false
		for i := 0; i < len(run.insts); i++ {
			in := run.insts[i]
			if in.state != running {
				continue
			}
			if err := ctx.Err(); err != nil {
				run.setErr(run.interrupted(in, err))
				return
			}
			if !run.takeIteration() {
				run.markTruncated()
				return
			}
			if err := run.step(ctx, in); err != nil {
				run.setErr(err)
				return
			}
			progressed = true
		}
		if !progressed {
			return
		}
	}
}

// interrupted wraps a context error with the observing instance's
// progress.
func (run *attackRun) interrupted(in *instance, err error) error {
	return &engine.InterruptedError{Cause: err, Instance: in.ID, Iterations: in.Iterations}
}

// setErr records the first error of the run (later ones are dropped;
// schedulers stop on the first).
func (run *attackRun) setErr(err error) {
	run.mu.Lock()
	if run.err == nil {
		run.err = err
	}
	run.mu.Unlock()
}

// takeIteration reserves one scheduler step from the global budget.
func (run *attackRun) takeIteration() bool {
	run.mu.Lock()
	defer run.mu.Unlock()
	if run.res.TotalIterations >= run.opts.MaxTotalIter {
		return false
	}
	run.res.TotalIterations++
	return true
}

func (run *attackRun) markTruncated() {
	run.mu.Lock()
	run.res.Truncated = true
	run.mu.Unlock()
}

// setState transitions an instance under the shared lock and keeps the
// dead-instance counter and live peak consistent. Death is traced here
// so every path that kills an instance emits exactly one event.
func (run *attackRun) setState(in *instance, st instState) {
	run.mu.Lock()
	changed := in.state != st
	if changed {
		in.state = st
		if st == dead {
			run.res.DeadInstances++
		}
	}
	run.mu.Unlock()
	if changed && st == dead && run.tr.Enabled() {
		run.tr.Emit(trace.Event{
			Type: trace.InstanceDead, Instance: in.ID,
			Key: &trace.KeyInfo{Iterations: in.Iterations, DIPs: len(in.dips)},
		})
	}
}

func (run *attackRun) liveCountLocked() int {
	n := 0
	for _, in := range run.insts {
		if in.state != dead {
			n++
		}
	}
	return n
}

func (run *attackRun) anyRunning() bool {
	run.mu.Lock()
	defer run.mu.Unlock()
	for _, in := range run.insts {
		if in.state == running {
			return true
		}
	}
	return false
}

func (run *attackRun) newRootInstance() (*instance, error) {
	ei, err := run.eng.NewInstance(0)
	if err != nil {
		return nil, err
	}
	in := &instance{
		Instance: *ei,
		parent:   -1,
		byInput:  map[string]int{},
	}
	if run.port.Enabled() {
		in.sib = run.port.Root(in.ID, in.M.S)
		in.Port = in.sib
	}
	return in, nil
}

// step performs one SAT iteration for the instance through the shared
// engine loop. It is safe to call concurrently for distinct instances
// (each emits only for itself; the emitter and sinks serialise
// internally). Convergence and scheduling are read back from in.state,
// so the engine's done flag is redundant here.
func (run *attackRun) step(ctx context.Context, in *instance) error {
	_, err := run.eng.Step(ctx, &in.Instance, &instStrategy{run: run, in: in})
	return err
}

// instStrategy adapts one StatSAT instance to the engine's Strategy:
// Respond implements the §IV DIP handling (repeat detection, gated
// recording), Converged the key extraction.
type instStrategy struct {
	run *attackRun
	in  *instance
}

func (s *instStrategy) Respond(ctx context.Context, _ *engine.Instance, x []bool) (string, bool, error) {
	run, in := s.run, s.in
	in.keyBuf = appendBits(in.keyBuf[:0], x)
	if idx, ok := in.byInput[string(in.keyBuf)]; ok {
		// Repeated DI (§IV-D): the unspecified bits starve the solver.
		if err := run.handleRepeat(in, in.dips[idx]); err != nil {
			return "", false, err
		}
		return "repeat", false, nil
	}
	if err := run.recordNewDIP(ctx, in, x); err != nil {
		return "", false, err
	}
	// recordNewDIP kills the instance when key enumeration comes up
	// empty; only this goroutine transitions in.state, so the read is
	// safe without the lock.
	if in.state == dead {
		return "dead", true, nil
	}
	return "dip", false, nil
}

func (s *instStrategy) Converged(ctx context.Context, _ *engine.Instance) error {
	return s.run.finish(ctx, s.in)
}

// finish extracts the instance's key (or marks it dead). A context
// interrupt during the extraction solve leaves the instance running
// and surfaces as an InterruptedError instead.
func (run *attackRun) finish(ctx context.Context, in *instance) error {
	switch in.KS.S.SolveCtx(ctx) {
	case sat.Sat:
		in.key = in.KS.Key()
		run.setState(in, finished)
		if run.tr.Enabled() {
			run.tr.Emit(trace.Event{
				Type: trace.KeyAccepted, Instance: in.ID,
				Key: &trace.KeyInfo{Key: keyOf(in.key), Iterations: in.Iterations, DIPs: len(in.dips)},
			})
		}
		run.logf("statsat: instance %d finished after %d iterations", in.ID, in.Iterations)
		return nil
	case sat.Unknown:
		if err := ctx.Err(); err != nil {
			return run.interrupted(in, err)
		}
	}
	run.setState(in, dead)
	run.logf("statsat: instance %d UNSAT (dead) after %d iterations", in.ID, in.Iterations)
	if run.opts.Logf != nil {
		// Diagnostic cross-check: rebuild the key constraints from the
		// recorded DIPs in a fresh solver and compare.
		fresh := cnf.NewKeySolver(run.locked)
		for _, d := range in.dips {
			outs, err := fresh.AddDIPCopy(d.x)
			if err != nil {
				run.logf("statsat: rebuild failed: %v", err)
				return nil
			}
			for i, v := range d.y {
				if v >= 0 {
					cnf.Equal(fresh.S, outs[i], v == 1)
				}
			}
		}
		run.logf("statsat: DIAG instance %d fresh-rebuild solve=%v (incremental said UNSAT)",
			in.ID, fresh.S.Solve())
	}
	return nil
}

// recordNewDIP queries the oracle, estimates BERs, translates the
// signal probabilities into a partially-specified output vector
// (eq. 4) and installs the DIP constraints. Context checks follow the
// two expensive stages (oracle sampling, key enumeration) so a
// cancelled run never mistakes their truncated output for real data —
// in particular an interrupted enumeration must not kill the instance.
func (run *attackRun) recordNewDIP(ctx context.Context, in *instance, x []bool) error {
	opts := &run.opts
	probs := oracle.SignalProbs(ctx, run.orc, x, opts.Ns)
	if err := ctx.Err(); err != nil {
		return run.interrupted(in, err)
	}
	u := oracle.Uncertainties(probs)

	// Satisfying keys of the recorded DIPs → averaged BER estimate.
	cand := in.KS.EnumerateKeys(ctx, opts.NSatis)
	if err := ctx.Err(); err != nil {
		return run.interrupted(in, err)
	}
	if len(cand) == 0 {
		run.setState(in, dead)
		return nil
	}
	est := run.getEstimator()
	e, err := est.AverageOutputBERs(x, cand, opts.EpsG)
	run.estPool.Put(est)
	if err != nil {
		return fmt.Errorf("statsat: BER estimation: %w", err)
	}

	d := &dip{x: append([]bool(nil), x...), probs: probs, u: u, e: e, y: make([]int8, len(probs))}
	for i := range d.y {
		d.y[i] = -1
	}
	d.outA, d.outB, err = in.M.AddDIPCopies(x)
	if err != nil {
		return err
	}
	d.outs, err = in.KS.AddDIPCopy(x)
	if err != nil {
		return err
	}
	in.dips = append(in.dips, d)
	dipIdx := len(in.dips) - 1
	in.byInput[keyOf(x)] = dipIdx

	// eq. 4: specify bits that are both certain and low-estimated-BER;
	// the rest stay unspecified, partitioned by which threshold
	// withheld them (eq. 3's U_lambda first, then eq. 4's E_lambda).
	// The index slices exist only for the BitsGated trace event, so
	// untraced runs skip building them on this hot path.
	traced := run.tr.Enabled()
	specified := 0
	var specIdx, gatedU, gatedE []int
	for i := range probs {
		switch {
		case u[i] > opts.ULambda:
			if traced {
				gatedU = append(gatedU, i)
			}
		case e[i] > opts.ELambda:
			if traced {
				gatedE = append(gatedE, i)
			}
		default:
			in.specify(d, i, probs[i] >= 0.5)
			specified++
			if traced {
				specIdx = append(specIdx, i)
			}
		}
	}
	if traced {
		run.eng.EmitDIP(&in.Instance, in.Iterations, &trace.DIPInfo{
			Index: dipIdx, X: keyOf(x), Y: fmtY(d.y),
			Outputs: len(probs), Specified: specified, Candidates: len(cand),
		})
		run.tr.Emit(trace.Event{
			Type: trace.BitsGated, Instance: in.ID, Iter: in.Iterations,
			Gating: &trace.GatingInfo{DIP: dipIdx, Specified: specIdx, GatedU: gatedU, GatedE: gatedE},
		})
	}
	if run.opts.Logf != nil {
		run.logf("statsat: instance %d DIP %d: x=%s y=%s (%d/%d bits specified, %d candidate keys)",
			in.ID, len(in.dips), keyOf(x), fmtY(d.y), specified, len(probs), len(cand))
	}
	return nil
}

// handleRepeat implements §IV-D: duplicate when capacity allows
// (eq. 5), otherwise force-proceed (eq. 6). The capacity check and
// child registration are atomic so the parallel scheduler respects
// N_inst exactly.
func (run *attackRun) handleRepeat(in *instance, d *dip) error {
	in.unspecBuf = d.unspecifiedInto(in.unspecBuf)
	unspec := in.unspecBuf
	if len(unspec) == 0 {
		// Should be impossible: fully specified DIPs exclude their
		// input from the miter. Defensive: treat as dead.
		run.setState(in, dead)
		return nil
	}
	run.mu.Lock()
	var child *instance
	if run.liveCountLocked() < run.opts.NInst {
		run.nextID++
		child = in.clone(run.nextID)
		run.insts = append(run.insts, child)
		run.res.InstancesCreated++
		run.res.Forks++
		if live := run.liveCountLocked(); live > run.peakLive {
			run.peakLive = live
		}
	} else {
		run.res.ForceProceeds++
	}
	run.mu.Unlock()

	if child != nil {
		if run.port.Enabled() {
			// Register the fork with the clause pool between the clone
			// and the diverging pins: Fork bumps the global epoch both
			// bases adopt, so the pins added just below carry a
			// watermark that keeps them (and everything derived from
			// them) from crossing between the siblings.
			child.sib = in.sib.Fork(child.ID, child.M.S)
			child.Port = child.sib
		}
		// eq. 5: pick j_dup = argmax U if that max exceeds U_lambda,
		// else argmax E.
		j := argmaxAt(d.u, unspec)
		if d.u[j] <= run.opts.ULambda {
			j = argmaxAt(d.e, unspec)
		}
		v := d.probs[j] >= 0.5
		in.specify(d, j, v)
		childDip := child.dips[in.dipIndex(d)]
		child.specify(childDip, j, !v)
		if run.tr.Enabled() {
			run.tr.Emit(trace.Event{
				Type: trace.Fork, Instance: in.ID, Iter: in.Iterations,
				Fork: &trace.ForkInfo{Child: child.ID, Bit: j, U: d.u[j], E: d.e[j], Value: v},
			})
		}
		run.logf("statsat: instance %d forked -> %d on bit %d (U=%.3f E=%.3f)",
			in.ID, child.ID, j, d.u[j], d.e[j])
		if run.spawn != nil {
			run.spawn(child)
		}
		return nil
	}
	// eq. 6: force-proceed on the least-risky unspecified bit.
	j := argminAt(d.e, unspec)
	v := d.probs[j] >= 0.5
	in.specify(d, j, v)
	if run.tr.Enabled() {
		run.tr.Emit(trace.Event{
			Type: trace.ForceProceed, Instance: in.ID, Iter: in.Iterations,
			Fork: &trace.ForkInfo{Bit: j, U: d.u[j], E: d.e[j], Value: v},
		})
	}
	run.logf("statsat: instance %d force-proceeds on bit %d (E=%.3f)", in.ID, j, d.e[j])
	return nil
}

func (in *instance) dipIndex(d *dip) int {
	return in.byInput[keyOf(d.x)]
}

func argmaxAt(vals []float64, idx []int) int {
	best := idx[0]
	for _, i := range idx[1:] {
		if vals[i] > vals[best] {
			best = i
		}
	}
	return best
}

func argminAt(vals []float64, idx []int) int {
	best := idx[0]
	for _, i := range idx[1:] {
		if vals[i] < vals[best] {
			best = i
		}
	}
	return best
}

// evaluateKeys scores every key with FM/HD against fresh oracle
// measurements (eq. 7-8) and sorts best (min FM) first. The oracle is
// sampled once; the per-key simulations are independent and run
// concurrently (each with its own simulated chip and noise stream, so
// results are deterministic regardless of scheduling).
func (run *attackRun) evaluateKeys(ctx context.Context, keys []KeyReport) {
	opts := &run.opts
	rng := rand.New(rand.NewSource(opts.Seed ^ 0x5eed))
	inputs := metrics.RandomInputSet(run.locked, opts.NEval, rng)
	oracleProbs := metrics.SignalProbMatrix(ctx, run.orc, inputs, opts.EvalNs)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range keys {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			sim := oracle.NewProbabilistic(run.locked, keys[i].Key, opts.EpsG, opts.Seed+int64(i)*7919)
			keyProbs := metrics.SignalProbMatrix(ctx, sim, inputs, opts.EvalNs)
			keys[i].FM = metrics.FM(oracleProbs, keyProbs)
			keys[i].HD = metrics.HD(oracleProbs, keyProbs)
			if run.tr.Enabled() {
				run.tr.Emit(trace.Event{
					Type: trace.KeyScored, Instance: keys[i].Instance,
					Key:   &trace.KeyInfo{Key: keyOf(keys[i].Key)},
					Score: &trace.ScoreInfo{FM: keys[i].FM, HD: keys[i].HD},
				})
			}
		}(i)
	}
	wg.Wait()
	// Selection sort by FM (N_inst keys at most; simplicity wins).
	for i := 0; i < len(keys); i++ {
		min := i
		for j := i + 1; j < len(keys); j++ {
			if keys[j].FM < keys[min].FM {
				min = j
			}
		}
		keys[i], keys[min] = keys[min], keys[i]
	}
	run.res.Keys = keys
	run.res.Best = &run.res.Keys[0]
}

// EstimateOptions configures the §V-E gate-error estimator.
type EstimateOptions struct {
	// NProbe random inputs are compared (default 20).
	NProbe int
	// Ns oracle/simulation samples per input (default 200).
	Ns int
	// NKeys random keys are averaged on the simulation side (default 5).
	NKeys int
	// Grid step factor for eps' (default 1.25; grid starts at 1e-4 and
	// is capped at 0.25).
	Step float64
	// Tolerance for "comparable" uncertainties: |U_sim - U_oracle| <=
	// max(AbsTol, RelTol*U_oracle). Defaults 0.02 / 0.25.
	AbsTol, RelTol float64
	Seed           int64
}

func (o *EstimateOptions) setDefaults() {
	if o.NProbe <= 0 {
		o.NProbe = 20
	}
	if o.Ns <= 0 {
		o.Ns = 200
	}
	if o.NKeys <= 0 {
		o.NKeys = 5
	}
	if o.Step <= 1 {
		o.Step = 1.25
	}
	if o.AbsTol <= 0 {
		o.AbsTol = 0.02
	}
	if o.RelTol <= 0 {
		o.RelTol = 0.25
	}
}

// EstimateGateError implements §V-E: the attacker, not knowing eps_g,
// sweeps a guess eps' upward, simulating the locked netlist with
// random keys, until at least half of the observed output
// uncertainties become comparable with the oracle's. Like in the
// paper, the estimate tends to undershoot the true eps_g (wrong keys
// add functional, not noise-induced, disagreement that the comparison
// charges against the uncertainty match).
//
// Cancelling ctx stops the grid sweep early and returns the best
// matching eps' found so far (best-effort, never blocking).
func EstimateGateError(ctx context.Context, locked *circuit.Circuit, orc oracle.Oracle, opts EstimateOptions) float64 {
	opts.setDefaults()
	rng := rand.New(rand.NewSource(opts.Seed ^ 0x9e3779b9))
	inputs := metrics.RandomInputSet(locked, opts.NProbe, rng)
	oracleU := make([][]float64, len(inputs))
	for j, x := range inputs {
		oracleU[j] = oracle.Uncertainties(oracle.SignalProbs(ctx, orc, x, opts.Ns))
	}
	randKeys := make([][]bool, opts.NKeys)
	for i := range randKeys {
		randKeys[i] = locked.RandomKey(rng)
	}

	best, bestFrac := 1e-4, -1.0
	simU := make([]float64, locked.NumPOs())
	var probsBuf []float64 // reused across the whole grid sweep
	for eps := 1e-4; eps <= 0.25; eps *= opts.Step {
		if ctx.Err() != nil {
			return best
		}
		match, total := 0, 0
		for j, x := range inputs {
			// Average simulated uncertainty over the random keys.
			for i := range simU {
				simU[i] = 0
			}
			for ki, k := range randKeys {
				sim := oracle.NewProbabilistic(locked, k, eps, opts.Seed+int64(ki)*131+int64(j))
				probsBuf = oracle.SignalProbsInto(ctx, sim, x, opts.Ns, probsBuf)
				u := oracle.UncertaintiesInto(probsBuf, probsBuf)
				for i := range u {
					simU[i] += u[i]
				}
			}
			for i := range simU {
				simU[i] /= float64(opts.NKeys)
				tol := opts.AbsTol
				if r := opts.RelTol * oracleU[j][i]; r > tol {
					tol = r
				}
				if math.Abs(simU[i]-oracleU[j][i]) <= tol {
					match++
				}
				total++
			}
		}
		frac := 0.0
		if total > 0 {
			frac = float64(match) / float64(total)
		}
		if frac >= 0.5 {
			return eps
		}
		if frac > bestFrac {
			best, bestFrac = eps, frac
		}
	}
	// The stopping rule never triggered: fall back to the best-matching
	// grid point instead of the grid maximum.
	return best
}
