package core

import (
	"context"
	"sync"
	"testing"

	"statsat/internal/oracle"
	"statsat/internal/trace"
)

// checkTraceInvariants validates a recorded event stream against the
// attack's Result — the contract documented in docs/OBSERVABILITY.md.
func checkTraceInvariants(t *testing.T, events []trace.Event, res *Result) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	if events[0].Type != trace.AttackStart || events[0].Attack != "statsat" {
		t.Fatalf("first event = %+v, want attack_start", events[0])
	}
	if events[0].Circuit == nil || events[0].Opts == nil {
		t.Fatal("attack_start missing circuit/opts payloads")
	}

	seen := make(map[int64]bool)
	counts := make(map[trace.EventType]int)
	var totals *trace.TotalsInfo
	for i, ev := range events {
		if ev.Seq != int64(i+1) || seen[ev.Seq] {
			t.Fatalf("event %d has seq %d (want dense, unique, emission-ordered)", i, ev.Seq)
		}
		seen[ev.Seq] = true
		if i > 0 && ev.TNs < events[i-1].TNs {
			t.Fatalf("timestamps not monotonic at seq %d", ev.Seq)
		}
		counts[ev.Type]++
		if ev.Type == trace.AttackEnd {
			totals = ev.Totals
		}
		switch ev.Type {
		case trace.AttackStart, trace.AttackEnd, trace.EvalStart, trace.EvalEnd:
			if ev.Instance != -1 {
				t.Errorf("%s has instance %d, want -1", ev.Type, ev.Instance)
			}
		case trace.IterStart, trace.IterEnd:
			if ev.Instance < 0 || ev.Iter < 1 || ev.Solver == nil {
				t.Errorf("%s missing instance/iter/solver: %+v", ev.Type, ev)
			}
		case trace.DIPFound:
			if ev.DIP == nil || len(ev.DIP.Y) != ev.DIP.Outputs {
				t.Errorf("dip_found payload malformed: %+v", ev.DIP)
			}
		case trace.BitsGated:
			if ev.Gating == nil {
				t.Errorf("bits_gated without gating payload")
			}
		case trace.Fork:
			if ev.Fork == nil || ev.Fork.Child <= 0 {
				t.Errorf("fork payload malformed: %+v", ev.Fork)
			}
		case trace.ForceProceed:
			if ev.Fork == nil || ev.Fork.Child != 0 {
				t.Errorf("force_proceed payload malformed: %+v", ev.Fork)
			}
		case trace.KeyAccepted:
			if ev.Key == nil || ev.Key.Key == "" {
				t.Errorf("key_accepted without key")
			}
		}
	}

	if counts[trace.AttackStart] != 1 || counts[trace.AttackEnd] != 1 {
		t.Errorf("attack_start/end counts = %d/%d, want 1/1",
			counts[trace.AttackStart], counts[trace.AttackEnd])
	}
	if counts[trace.IterStart] != counts[trace.IterEnd] {
		t.Errorf("iteration_start (%d) != iteration_end (%d)",
			counts[trace.IterStart], counts[trace.IterEnd])
	}
	if counts[trace.IterStart] != res.TotalIterations {
		t.Errorf("iteration_start count %d != Result.TotalIterations %d",
			counts[trace.IterStart], res.TotalIterations)
	}
	if counts[trace.DIPFound] != counts[trace.BitsGated] {
		t.Errorf("dip_found (%d) and bits_gated (%d) not paired",
			counts[trace.DIPFound], counts[trace.BitsGated])
	}
	if counts[trace.DIPFound] == 0 {
		t.Error("no dip_found events")
	}
	if counts[trace.Fork] != res.Forks {
		t.Errorf("fork events %d != Result.Forks %d", counts[trace.Fork], res.Forks)
	}
	if counts[trace.ForceProceed] != res.ForceProceeds {
		t.Errorf("force_proceed events %d != Result.ForceProceeds %d",
			counts[trace.ForceProceed], res.ForceProceeds)
	}
	if counts[trace.InstanceDead] != res.DeadInstances {
		t.Errorf("instance_dead events %d != Result.DeadInstances %d",
			counts[trace.InstanceDead], res.DeadInstances)
	}
	if counts[trace.KeyAccepted] != len(res.Keys) {
		t.Errorf("key_accepted events %d != %d keys", counts[trace.KeyAccepted], len(res.Keys))
	}
	if counts[trace.KeyScored] != len(res.Keys) {
		t.Errorf("key_scored events %d != %d keys", counts[trace.KeyScored], len(res.Keys))
	}
	if counts[trace.EvalStart] != 1 || counts[trace.EvalEnd] != 1 {
		t.Errorf("eval_start/end counts = %d/%d, want 1/1",
			counts[trace.EvalStart], counts[trace.EvalEnd])
	}

	if totals == nil {
		t.Fatal("attack_end missing totals")
	}
	if totals.Keys != len(res.Keys) || totals.Iterations != res.TotalIterations ||
		totals.Forks != res.Forks || totals.ForceProceeds != res.ForceProceeds ||
		totals.DeadInstances != res.DeadInstances ||
		totals.InstancesCreated != res.InstancesCreated ||
		totals.OracleQueries != res.OracleQueries {
		t.Errorf("attack_end totals %+v disagree with Result", totals)
	}
}

func TestAttackTraceSequential(t *testing.T) {
	_, l := lockedSmall(t, 2, 10)
	const eps = 0.01
	orc := oracle.NewProbabilistic(l.Circuit, l.Key, eps, 20)
	rec := trace.NewRecorder()
	opts := quickOpts(eps, 8)
	opts.Tracer = rec
	res, err := Attack(context.Background(), l.Circuit, orc, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkTraceInvariants(t, rec.Events(), res)
}

// TestAttackTraceParallel runs concurrent instances with a tracer
// attached; under -race this exercises emission from multiple instance
// goroutines plus the eval workers.
func TestAttackTraceParallel(t *testing.T) {
	_, l := lockedSmall(t, 2, 10)
	const eps = 0.01
	orc := oracle.NewProbabilistic(l.Circuit, l.Key, eps, 20)
	rec := trace.NewRecorder()
	opts := quickOpts(eps, 8)
	opts.Parallel = true
	opts.Tracer = rec
	res, err := Attack(context.Background(), l.Circuit, orc, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkTraceInvariants(t, rec.Events(), res)
}

// TestLockedOracleConcurrentCounters hammers the goroutine-safe oracle
// wrapper with concurrent queries and counter reads — the exact access
// pattern of parallel instances emitting trace events (which read
// Queries()) while other instances sample the chip.
func TestLockedOracleConcurrentCounters(t *testing.T) {
	_, l := lockedSmall(t, 5, 8)
	inner := oracle.NewProbabilistic(l.Circuit, l.Key, 0.01, 9)
	orc := wrapOracle(inner)
	bq, ok := orc.(oracle.BatchQuerier)
	if !ok {
		t.Fatal("wrapped probabilistic oracle lost batch capability")
	}
	x := make([]bool, orc.NumInputs())
	const workers, each = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if w%2 == 0 {
					orc.Query(x)
				} else {
					bq.QueryBatch(x)
				}
				if orc.Queries() <= 0 {
					t.Error("counter went non-positive")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// 4 scalar workers × 25 single queries + 4 batch workers × 25
	// 64-lane passes.
	want := int64(4*each) + int64(4*each*64)
	if got := orc.Queries(); got != want {
		t.Errorf("Queries() = %d, want %d", got, want)
	}
}
