package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"statsat/internal/engine"
	"statsat/internal/gen"
	"statsat/internal/lock"
	"statsat/internal/oracle"
	"statsat/internal/trace"
)

// lockedC880Full is the Table V workload (full-size c880, 32-bit RLL
// key): big enough that StatSAT cannot converge inside a millisecond.
func lockedC880Full(t testing.TB, seed int64) *lock.Locked {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	bm, _ := gen.ByName("c880")
	l, err := lock.RLL(bm.BuildScaled(1), 32, rng)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestAttackDeadlineInterrupted pins the headline contract: a StatSAT
// run launched with a 1ms deadline on c880 returns ErrInterrupted with
// a non-nil best-effort result instead of hanging.
func TestAttackDeadlineInterrupted(t *testing.T) {
	l := lockedC880Full(t, 11)
	orc := oracle.NewProbabilistic(l.Circuit, l.Key, 0.01, 30)
	rec := trace.NewRecorder()
	opts := quickOpts(0.01, 4)
	opts.Tracer = rec
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	res, err := Attack(ctx, l.Circuit, orc, opts)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want to unwrap to context.DeadlineExceeded", err)
	}
	if res == nil {
		t.Fatal("interrupted attack returned nil result")
	}
	if len(res.Keys) == 0 || res.Best == nil {
		t.Fatalf("interrupted result has no best-effort key: %+v", res)
	}
	if got := len(res.Best.Key); got != len(l.Key) {
		t.Errorf("best-effort key has %d bits, want %d", got, len(l.Key))
	}
	checkInterruptedTrace(t, rec.Events())
}

// checkInterruptedTrace validates the interrupted-run trace shape: the
// stream still opens with attack_start and closes with attack_end, and
// exactly one interrupted event with a populated payload sits directly
// before attack_end.
func checkInterruptedTrace(t *testing.T, events []trace.Event) {
	t.Helper()
	if len(events) < 3 {
		t.Fatalf("only %d events recorded", len(events))
	}
	if events[0].Type != trace.AttackStart {
		t.Errorf("first event = %s, want attack_start", events[0].Type)
	}
	last, prev := events[len(events)-1], events[len(events)-2]
	if last.Type != trace.AttackEnd {
		t.Errorf("last event = %s, want attack_end", last.Type)
	}
	if prev.Type != trace.Interrupted {
		t.Fatalf("event before attack_end = %s, want interrupted", prev.Type)
	}
	if prev.Interrupt == nil || prev.Interrupt.Cause == "" {
		t.Fatalf("interrupted event missing payload: %+v", prev)
	}
	n := 0
	for _, ev := range events {
		if ev.Type == trace.Interrupted {
			n++
		}
	}
	if n != 1 {
		t.Errorf("interrupted events = %d, want exactly 1", n)
	}
}

// TestAttackCancelParallel cancels a live multi-instance run; under
// -race this exercises the interrupt path racing against concurrent
// instance goroutines and the shared-oracle lock.
func TestAttackCancelParallel(t *testing.T) {
	l := lockedC880Full(t, 12)
	orc := oracle.NewProbabilistic(l.Circuit, l.Key, 0.02, 31)
	opts := quickOpts(0.02, 4)
	opts.Parallel = true
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	res, err := Attack(ctx, l.Circuit, orc, opts)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want to unwrap to context.Canceled", err)
	}
	if res == nil {
		t.Fatal("interrupted parallel run returned nil result")
	}
	if len(res.InstanceStats) == 0 || res.TotalIterations == 0 {
		t.Fatalf("interrupted result carries no partial statistics: %+v", res)
	}
	// Keys are best-effort: normally at least one live instance yields
	// a candidate, but under noise every live solver can be UNSAT at
	// the moment of cancellation, so empty keys are legal here.
	if len(res.Keys) == 0 {
		t.Logf("no best-effort key this run (all live solvers UNSAT): %+v", res.InstanceStats)
	}
	var ie *engine.InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %T, want *engine.InterruptedError", err)
	}
	// In-flight instance goroutines finish their current step after
	// the interrupt is recorded, so the final total may exceed the
	// error's snapshot — but never trail it.
	if res.TotalIterations < ie.Iterations {
		t.Errorf("result iterations %d < error iterations %d",
			res.TotalIterations, ie.Iterations)
	}
}

// TestEstimateGateErrorCancelled checks the estimator's best-effort
// contract: a cancelled context returns immediately with a plain
// float64 (no error channel), never blocking on the grid sweep.
func TestEstimateGateErrorCancelled(t *testing.T) {
	_, l := lockedSmall(t, 3, 8)
	orc := oracle.NewProbabilistic(l.Circuit, l.Key, 0.02, 33)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan float64, 1)
	go func() {
		done <- EstimateGateError(ctx, l.Circuit, orc, EstimateOptions{Seed: 4})
	}()
	select {
	case eps := <-done:
		if eps < 0 {
			t.Errorf("EstimateGateError = %v, want >= 0", eps)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("EstimateGateError did not return under a cancelled context")
	}
}
