package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"statsat/internal/circuit"
	"statsat/internal/gen"
	"statsat/internal/lock"
	"statsat/internal/metrics"
	"statsat/internal/oracle"
)

// quickOpts returns CI-sized attack options.
func quickOpts(eps float64, nInst int) Options {
	return Options{
		Ns:     150,
		NSatis: 12,
		NEval:  40,
		EvalNs: 150,
		NInst:  nInst,
		EpsG:   eps,
		Seed:   1,
	}
}

func lockedSmall(t testing.TB, seed int64, keys int) (*circuit.Circuit, *lock.Locked) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	bm, _ := gen.ByName("c880")
	orig := bm.BuildScaled(8)
	l, err := lock.RLL(orig, keys, rng)
	if err != nil {
		t.Fatal(err)
	}
	return orig, l
}

func TestAttackDeterministicOracleExactKey(t *testing.T) {
	// eps=0: StatSAT should behave like the standard SAT attack and
	// find an equivalent key with a single instance.
	orig, l := lockedSmall(t, 1, 10)
	orc := oracle.NewProbabilistic(l.Circuit, l.Key, 0, 10)
	res, err := Attack(context.Background(), l.Circuit, orc, quickOpts(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no key recovered")
	}
	eq, err := metrics.EquivalentToOriginal(l.Circuit, res.Best.Key, orig)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("key %v not equivalent", res.Best.Key)
	}
	if res.Instances != 1 || res.Forks != 0 {
		t.Errorf("eps=0 run forked: %d instances, %d forks", res.Instances, res.Forks)
	}
	if res.Best.FM != 0 {
		t.Errorf("FM of exact key under eps=0 should be 0, got %v", res.Best.FM)
	}
}

func TestAttackNoisyOracleRecoversKey(t *testing.T) {
	// Moderate noise: the attack must return a key whose behaviour is
	// statistically close; usually the exactly-correct key.
	orig, l := lockedSmall(t, 2, 10)
	const eps = 0.01
	orc := oracle.NewProbabilistic(l.Circuit, l.Key, eps, 20)
	res, err := Attack(context.Background(), l.Circuit, orc, quickOpts(eps, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no key recovered")
	}
	if res.Best.HD > 0.2 {
		t.Errorf("best key HD %.4f too large", res.Best.HD)
	}
	eq, err := metrics.EquivalentToOriginal(l.Circuit, res.Best.Key, orig)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Logf("note: best key not exactly equivalent (HD=%.4f, FM=%.4f) — acceptable at this noise",
			res.Best.HD, res.Best.FM)
	}
	if res.OracleQueries == 0 || res.EvalQueries == 0 {
		t.Error("query accounting missing")
	}
	if res.AttackDuration <= 0 || res.EvalDuration <= 0 {
		t.Error("duration accounting missing")
	}
}

func TestAttackSFLLNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bm, _ := gen.ByName("c880")
	orig := bm.BuildScaled(8)
	l, err := lock.SFLLHD(orig, 6, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.005
	orc := oracle.NewProbabilistic(l.Circuit, l.Key, eps, 30)
	opts := quickOpts(eps, 8)
	opts.MaxTotalIter = 3000
	res, err := Attack(context.Background(), l.Circuit, orc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no key recovered")
	}
	eq, err := metrics.EquivalentToOriginal(l.Circuit, res.Best.Key, orig)
	if err != nil {
		t.Fatal(err)
	}
	if !eq && res.Best.HD > 0.05 {
		t.Errorf("SFLL best key poor: HD=%.4f eq=%v", res.Best.HD, eq)
	}
}

func TestAttackKeysSortedByFM(t *testing.T) {
	_, l := lockedSmall(t, 4, 8)
	const eps = 0.015
	orc := oracle.NewProbabilistic(l.Circuit, l.Key, eps, 40)
	res, err := Attack(context.Background(), l.Circuit, orc, quickOpts(eps, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Keys); i++ {
		if res.Keys[i].FM < res.Keys[i-1].FM {
			t.Errorf("keys not sorted by FM: %v then %v", res.Keys[i-1].FM, res.Keys[i].FM)
		}
	}
	if res.Best != &res.Keys[0] {
		t.Error("Best should alias Keys[0]")
	}
	if len(res.Keys) > 4 {
		t.Errorf("%d keys exceed N_inst=4", len(res.Keys))
	}
}

func TestAttackOptionValidation(t *testing.T) {
	_, l := lockedSmall(t, 5, 6)
	other := gen.Random("o", 4, 20, 3, 2)
	orc := oracle.NewDeterministic(other, nil)
	if _, err := Attack(context.Background(), l.Circuit, orc, Options{}); err == nil {
		t.Error("want interface mismatch error")
	}
	// Unlocked circuit.
	orc2 := oracle.NewDeterministic(other, nil)
	if _, err := Attack(context.Background(), other, orc2, Options{}); err == nil {
		t.Error("want error for keyless circuit")
	}
}

func TestOptionDefaults(t *testing.T) {
	var o Options
	o.setDefaults()
	if o.Ns != 500 || o.NSatis != 100 || o.NEval != 2000 ||
		o.ULambda != 0.25 || o.ELambda != 0.30 || o.NInst != 1 || o.EvalNs != 500 {
		t.Errorf("paper defaults wrong: %+v", o)
	}
}

func TestAttackTruncationGuard(t *testing.T) {
	_, l := lockedSmall(t, 6, 12)
	const eps = 0.04 // aggressive noise
	orc := oracle.NewProbabilistic(l.Circuit, l.Key, eps, 60)
	opts := quickOpts(eps, 2)
	opts.MaxTotalIter = 5 // tiny budget
	res, err := Attack(context.Background(), l.Circuit, orc, opts)
	if err == ErrNoInstances {
		return // acceptable: budget killed everything
	}
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated && res.TotalIterations > 5 {
		t.Errorf("iteration budget not honoured: %d", res.TotalIterations)
	}
}

func TestDipHelpers(t *testing.T) {
	d := &dip{y: []int8{-1, 0, 1, -1}}
	u := d.unspecifiedInto(nil)
	if len(u) != 2 || u[0] != 0 || u[1] != 3 {
		t.Errorf("unspecified = %v", u)
	}
	// Buffer reuse keeps the contents correct.
	u = d.unspecifiedInto(u)
	if len(u) != 2 || u[0] != 0 || u[1] != 3 {
		t.Errorf("unspecified (reused buf) = %v", u)
	}
	c := d.cloneFor()
	c.y[0] = 1
	if d.y[0] != -1 {
		t.Error("cloneFor shares y")
	}
}

func TestArgHelpers(t *testing.T) {
	vals := []float64{0.5, 0.1, 0.9, 0.3}
	if argmaxAt(vals, []int{0, 1, 2, 3}) != 2 {
		t.Error("argmax wrong")
	}
	if argminAt(vals, []int{0, 1, 2, 3}) != 1 {
		t.Error("argmin wrong")
	}
	if argmaxAt(vals, []int{0, 3}) != 0 {
		t.Error("argmax over subset wrong")
	}
}

func TestKeyOf(t *testing.T) {
	if keyOf([]bool{true, false, true}) != "101" {
		t.Errorf("keyOf = %q", keyOf([]bool{true, false, true}))
	}
}

func TestInstanceStatsLineage(t *testing.T) {
	_, l := lockedSmall(t, 17, 10)
	const eps = 0.025
	orc := oracle.NewProbabilistic(l.Circuit, l.Key, eps, 600)
	opts := quickOpts(eps, 8)
	opts.MaxTotalIter = 3000
	res, err := Attack(context.Background(), l.Circuit, orc, opts)
	if err == ErrNoInstances {
		t.Skip("all instances died on this seed")
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InstanceStats) != res.InstancesCreated {
		t.Fatalf("stats %d != created %d", len(res.InstanceStats), res.InstancesCreated)
	}
	seen := map[int]bool{}
	for i, st := range res.InstanceStats {
		if seen[st.ID] {
			t.Fatalf("duplicate instance id %d", st.ID)
		}
		seen[st.ID] = true
		if i == 0 {
			if st.Parent != -1 {
				t.Errorf("root parent = %d", st.Parent)
			}
		} else if !seen[st.Parent] {
			t.Errorf("instance %d forked from unseen parent %d", st.ID, st.Parent)
		}
		if st.Outcome != "finished" && st.Outcome != "dead" && st.Outcome != "running" {
			t.Errorf("bad outcome %q", st.Outcome)
		}
		if st.KeyFound && st.Outcome != "finished" {
			t.Errorf("key without finished state: %+v", st)
		}
	}
	// Every reported key's instance must appear as finished.
	for _, k := range res.Keys {
		found := false
		for _, st := range res.InstanceStats {
			if st.ID == k.Instance && st.Outcome == "finished" {
				found = true
			}
		}
		if !found {
			t.Errorf("key from instance %d has no finished stat", k.Instance)
		}
	}
}

func TestFmtY(t *testing.T) {
	if got := fmtY([]int8{-1, 0, 1}); got != "x01" {
		t.Errorf("fmtY = %q", got)
	}
	if got := fmtY(nil); got != "" {
		t.Errorf("fmtY(nil) = %q", got)
	}
}

func TestAttackWithLogging(t *testing.T) {
	// Exercise the verbose code paths (per-DIP logging, finish logs,
	// dead-instance diagnostics) end to end.
	_, l := lockedSmall(t, 13, 8)
	const eps = 0.03
	orc := oracle.NewProbabilistic(l.Circuit, l.Key, eps, 400)
	opts := quickOpts(eps, 2)
	opts.MaxTotalIter = 400
	lines := 0
	opts.Logf = func(format string, args ...interface{}) { lines++ }
	if _, err := Attack(context.Background(), l.Circuit, orc, opts); err != nil && err != ErrNoInstances {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Error("Logf never called")
	}
}

func TestWrapOracleScalar(t *testing.T) {
	// A non-batch oracle wrapped for parallel mode must keep working
	// through the scalar path (no QueryBatch promoted).
	_, l := lockedSmall(t, 14, 6)
	det := oracle.NewDeterministic(l.Circuit, l.Key)
	w := wrapOracle(det)
	if _, ok := w.(oracle.BatchQuerier); ok {
		t.Error("scalar oracle must not gain QueryBatch through wrapping")
	}
	x := make([]bool, l.Circuit.NumPIs())
	a := det.Query(x)
	b := w.Query(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("wrapped query differs")
		}
	}
	if w.NumInputs() != det.NumInputs() || w.NumOutputs() != det.NumOutputs() {
		t.Error("wrapped pinout differs")
	}
	if w.Queries() != det.Queries() {
		t.Error("wrapped query count differs")
	}
}

func TestWrapOracleBatch(t *testing.T) {
	_, l := lockedSmall(t, 15, 6)
	prob := oracle.NewProbabilistic(l.Circuit, l.Key, 0.01, 500)
	w := wrapOracle(prob)
	bq, ok := w.(oracle.BatchQuerier)
	if !ok {
		t.Fatal("batch oracle lost QueryBatch through wrapping")
	}
	words := bq.QueryBatch(make([]bool, l.Circuit.NumPIs()))
	if len(words) != l.Circuit.NumPOs() {
		t.Errorf("batch width %d", len(words))
	}
	if w.Queries() == 0 {
		t.Error("batch queries not counted")
	}
}

func TestAttackParallelDeterministicOracle(t *testing.T) {
	// Parallel mode with a deterministic (scalar) oracle: exercises
	// scalarLockedOracle inside the attack.
	orig, l := lockedSmall(t, 16, 8)
	orc := oracle.NewDeterministic(l.Circuit, l.Key)
	opts := quickOpts(0, 2)
	opts.Parallel = true
	res, err := Attack(context.Background(), l.Circuit, orc, opts)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := metrics.EquivalentToOriginal(l.Circuit, res.Best.Key, orig)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("parallel deterministic attack failed")
	}
}

func TestUncertaintyGatingLeavesBitsUnspecified(t *testing.T) {
	// Construct a locked circuit with one output fed through a long
	// noisy chain (high BER → high uncertainty) and one clean output.
	// At moderate eps, StatSAT must leave the noisy output unspecified
	// in its first DIP.
	c := circuit.New("gate")
	a := c.AddInput("a")
	b := c.AddInput("b")
	clean := c.AddGate(circuit.And, "clean", a, b)
	w := c.AddGate(circuit.Or, "w0", a, b)
	for i := 0; i < 40; i++ {
		w = c.AddGate(circuit.Buf, "", w)
	}
	c.AddOutput(clean, "y0")
	c.AddOutput(w, "y1")
	rng := rand.New(rand.NewSource(7))
	l, err := lock.RLL(c, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.02 // 40-deep chain → output BER ≈ 0.28, U >> 0.25 sometimes
	orc := oracle.NewProbabilistic(l.Circuit, l.Key, eps, 70)
	opts := quickOpts(eps, 4)
	opts.MaxTotalIter = 200
	res, err := Attack(context.Background(), l.Circuit, orc, opts)
	if err == ErrNoInstances {
		t.Fatal("attack died entirely")
	}
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no key")
	}
	// The clean half of the circuit must be unlocked correctly: check
	// output 0 matches on all 4 input patterns.
	for m := 0; m < 4; m++ {
		pi := []bool{m&1 == 1, m&2 == 2}
		want := c.Eval(pi, nil, nil)[0]
		got := l.Circuit.Eval(pi, res.Best.Key, nil)[0]
		if got != want {
			t.Errorf("clean output wrong at %v", pi)
		}
	}
}

func TestAttackParallelMatchesQuality(t *testing.T) {
	// Parallel instance execution must produce a result of comparable
	// quality (it cannot be bit-identical: oracle noise draws
	// interleave differently).
	orig, l := lockedSmall(t, 11, 10)
	const eps = 0.015
	orc := oracle.NewProbabilistic(l.Circuit, l.Key, eps, 200)
	opts := quickOpts(eps, 8)
	opts.Parallel = true
	opts.MaxTotalIter = 4000
	res, err := Attack(context.Background(), l.Circuit, orc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("parallel attack produced no key")
	}
	if res.Best.HD > 0.25 {
		t.Errorf("parallel best key HD %.4f too large", res.Best.HD)
	}
	if res.OracleQueries == 0 {
		t.Error("oracle accounting lost in parallel mode")
	}
	eq, err := metrics.EquivalentToOriginal(l.Circuit, res.Best.Key, orig)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Logf("parallel best key not exactly equivalent (HD=%.4f) — tolerated", res.Best.HD)
	}
}

func TestAttackParallelRespectsInstanceCap(t *testing.T) {
	_, l := lockedSmall(t, 12, 12)
	const eps = 0.03
	orc := oracle.NewProbabilistic(l.Circuit, l.Key, eps, 300)
	opts := quickOpts(eps, 4)
	opts.Parallel = true
	opts.MaxTotalIter = 2000
	res, err := Attack(context.Background(), l.Circuit, orc, opts)
	if err == ErrNoInstances {
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances > 4 {
		t.Errorf("parallel run used %d live instances, cap was 4", res.Instances)
	}
	if len(res.Keys) > 4 {
		t.Errorf("%d keys exceed N_inst", len(res.Keys))
	}
}

func TestEstimateGateErrorOrdering(t *testing.T) {
	// The estimate must increase with the true eps and stay within an
	// order of magnitude (paper Table IV: underestimates but usable).
	_, l := lockedSmall(t, 8, 8)
	est := make([]float64, 0, 2)
	for _, eps := range []float64{0.005, 0.03} {
		orc := oracle.NewProbabilistic(l.Circuit, l.Key, eps, 80)
		e := EstimateGateError(context.Background(), l.Circuit, orc, EstimateOptions{NProbe: 8, Ns: 120, NKeys: 3, Seed: 5})
		if e <= 0 || e > 0.3 {
			t.Fatalf("estimate %v out of range", e)
		}
		est = append(est, e)
	}
	if est[1] <= est[0] {
		t.Errorf("estimate not increasing with true eps: %v", est)
	}
}

func TestEstimateGateErrorZeroNoise(t *testing.T) {
	_, l := lockedSmall(t, 9, 6)
	orc := oracle.NewProbabilistic(l.Circuit, l.Key, 0, 90)
	e := EstimateGateError(context.Background(), l.Circuit, orc, EstimateOptions{NProbe: 5, Ns: 80, NKeys: 2, Seed: 6})
	if e > 0.01 {
		t.Errorf("noise-free oracle estimated eps %v, want tiny", e)
	}
}

func TestEstimateDefaults(t *testing.T) {
	var o EstimateOptions
	o.setDefaults()
	if o.NProbe != 20 || o.Ns != 200 || o.NKeys != 5 || o.Step != 1.25 ||
		math.Abs(o.AbsTol-0.02) > 1e-12 || math.Abs(o.RelTol-0.25) > 1e-12 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestAttackHigherNoiseNeedsMoreInstances(t *testing.T) {
	// Qualitative Table II property: at higher eps, a 1-instance run
	// is more likely to fail or yield a worse key than an 8-instance
	// run. We assert the 8-instance run succeeds.
	_, l := lockedSmall(t, 10, 8)
	const eps = 0.02
	orc := oracle.NewProbabilistic(l.Circuit, l.Key, eps, 100)
	opts := quickOpts(eps, 8)
	opts.MaxTotalIter = 4000
	res, err := Attack(context.Background(), l.Circuit, orc, opts)
	if err != nil {
		t.Fatalf("8-instance attack failed outright: %v", err)
	}
	if res.Best == nil || res.Best.HD > 0.25 {
		t.Errorf("8-instance attack quality poor: %+v", res.Best)
	}
}

func BenchmarkAttackC880Scale8Eps1pc(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bm, _ := gen.ByName("c880")
	orig := bm.BuildScaled(8)
	l, err := lock.RLL(orig, 10, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		orc := oracle.NewProbabilistic(l.Circuit, l.Key, 0.01, int64(i))
		if _, err := Attack(context.Background(), l.Circuit, orc, quickOpts(0.01, 4)); err != nil && err != ErrNoInstances {
			b.Fatal(err)
		}
	}
}
