package core

import (
	"context"
	"encoding/json"
	"testing"

	"statsat/internal/oracle"
	"statsat/internal/trace"
)

// normalizeTrace strips wall-clock fields so deterministic runs can be
// compared byte for byte.
func normalizeTrace(t *testing.T, events []trace.Event) []byte {
	t.Helper()
	out := make([]trace.Event, len(events))
	for i, ev := range events {
		ev.TNs = 0
		if ev.Totals != nil {
			cp := *ev.Totals
			cp.DurationNs = 0
			ev.Totals = &cp
		}
		if ev.Eval != nil {
			cp := *ev.Eval
			cp.DurationNs = 0
			ev.Eval = &cp
		}
		out[i] = ev
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func runTraced(t *testing.T, workers int) ([]trace.Event, *Result) {
	t.Helper()
	_, l := lockedSmall(t, 2, 10)
	const eps = 0.01
	orc := oracle.NewProbabilistic(l.Circuit, l.Key, eps, 20)
	rec := trace.NewRecorder()
	opts := quickOpts(eps, 8)
	opts.Tracer = rec
	opts.PortfolioWorkers = workers
	res, err := Attack(context.Background(), l.Circuit, orc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Events(), res
}

// TestAttackPortfolioOffByteIdentical is the headline off-mode
// guarantee: a noisy StatSAT run (forks and all) with
// PortfolioWorkers=1 emits a byte-identical trace to a run without the
// option.
func TestAttackPortfolioOffByteIdentical(t *testing.T) {
	evOff, resOff := runTraced(t, 0)
	evOne, resOne := runTraced(t, 1)
	a, b := normalizeTrace(t, evOff), normalizeTrace(t, evOne)
	if string(a) != string(b) {
		t.Error("traces differ between no-portfolio and one-worker runs")
	}
	compareOutcomes(t, resOff, resOne)
}

// TestAttackPortfolioSameTrajectory is the N-worker guarantee on the
// full StatSAT engine: with racing on, the fork tree, the per-instance
// stats and every accepted key (bits and scores) match the sequential
// run exactly.
func TestAttackPortfolioSameTrajectory(t *testing.T) {
	_, seq := runTraced(t, 0)
	evPar, par := runTraced(t, 4)
	compareOutcomes(t, seq, par)
	// The racing run's trace must still be well-formed against its own
	// result (clause_shared/race_winner events ride along freely).
	checkTraceInvariants(t, evPar, par)
}

// compareOutcomes asserts two runs walked the same trajectory: same
// totals, same fork tree, same keys with the same scores.
func compareOutcomes(t *testing.T, a, b *Result) {
	t.Helper()
	if a.TotalIterations != b.TotalIterations || a.OracleQueries != b.OracleQueries ||
		a.Forks != b.Forks || a.ForceProceeds != b.ForceProceeds ||
		a.DeadInstances != b.DeadInstances || a.InstancesCreated != b.InstancesCreated ||
		a.Truncated != b.Truncated {
		t.Errorf("run totals diverged:\n%+v\nvs\n%+v", a, b)
	}
	if len(a.Keys) != len(b.Keys) {
		t.Fatalf("key counts diverged: %d vs %d", len(a.Keys), len(b.Keys))
	}
	for i := range a.Keys {
		ka, kb := a.Keys[i], b.Keys[i]
		if keyOf(ka.Key) != keyOf(kb.Key) || ka.FM != kb.FM || ka.HD != kb.HD ||
			ka.Iterations != kb.Iterations || ka.Instance != kb.Instance {
			t.Errorf("key %d diverged: %+v vs %+v", i, ka, kb)
		}
	}
	if len(a.InstanceStats) != len(b.InstanceStats) {
		t.Fatalf("instance stats diverged: %d vs %d", len(a.InstanceStats), len(b.InstanceStats))
	}
	for i := range a.InstanceStats {
		sa, sb := a.InstanceStats[i], b.InstanceStats[i]
		if sa.ID != sb.ID || sa.Parent != sb.Parent || sa.Iterations != sb.Iterations ||
			sa.DIPs != sb.DIPs || sa.Outcome != sb.Outcome {
			t.Errorf("instance %d stats diverged: %+v vs %+v", i, sa, sb)
		}
	}
}
