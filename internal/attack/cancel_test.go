package attack

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"statsat/internal/engine"
	"statsat/internal/gen"
	"statsat/internal/lock"
	"statsat/internal/oracle"
)

// lockedC880Full builds the full-size c880 stand-in with a 32-bit RLL
// key (Table V's configuration) — large enough that no attack finishes
// within a millisecond deadline.
func lockedC880Full(t testing.TB, seed int64) *lock.Locked {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	bm, _ := gen.ByName("c880")
	l, err := lock.RLL(bm.BuildScaled(1), 32, rng)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestStandardSATDeadlineInterrupted is the headline cancellation
// contract: an attack launched with a 1ms deadline on c880 returns an
// error matching ErrInterrupted together with a non-nil best-effort
// result, instead of hanging until convergence.
func TestStandardSATDeadlineInterrupted(t *testing.T) {
	l := lockedC880Full(t, 7)
	orc := oracle.NewDeterministic(l.Circuit, l.Key)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	res, err := StandardSAT(ctx, l.Circuit, orc, 0)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want to unwrap to context.DeadlineExceeded", err)
	}
	var ie *InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %T, want *InterruptedError", err)
	}
	if res == nil {
		t.Fatal("interrupted attack returned nil result")
	}
	if res.Key == nil {
		t.Error("interrupted result missing best-effort key")
	}
	if len(res.Key) != len(l.Key) {
		t.Errorf("best-effort key has %d bits, want %d", len(res.Key), len(l.Key))
	}
	if res.Iterations != ie.Iterations {
		t.Errorf("result iterations %d != error iterations %d", res.Iterations, ie.Iterations)
	}
}

func TestPSATAlreadyCancelled(t *testing.T) {
	l := lockedC880Full(t, 8)
	orc := oracle.NewProbabilistic(l.Circuit, l.Key, 0.01, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := PSAT(ctx, l.Circuit, orc, PSATOptions{})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want to unwrap to context.Canceled", err)
	}
	if res == nil {
		t.Fatal("interrupted PSAT returned nil result")
	}
	if res.Key == nil {
		t.Error("zero-iteration interrupt should still extract an unconstrained key candidate")
	}
	if res.Iterations != 0 {
		t.Errorf("Iterations = %d, want 0 under a pre-cancelled context", res.Iterations)
	}
}

func TestAppSATDeadlineInterrupted(t *testing.T) {
	l := lockedC880Full(t, 9)
	orc := oracle.NewDeterministic(l.Circuit, l.Key)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	res, err := AppSAT(ctx, l.Circuit, orc, AppSATOptions{Seed: 3})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if res == nil {
		t.Fatal("interrupted AppSAT returned nil result")
	}
	if res.Key == nil {
		t.Error("interrupted AppSAT result missing best-effort key")
	}
}

// TestInterruptedErrorShape pins the error type's matching behaviour:
// one errors.Is for the sentinel, one for the context cause, and As
// for the payload.
func TestInterruptedErrorShape(t *testing.T) {
	ie := &engine.InterruptedError{Cause: context.Canceled, Instance: 3, Iterations: 17}
	if !errors.Is(ie, ErrInterrupted) {
		t.Error("InterruptedError does not match ErrInterrupted")
	}
	if !errors.Is(ie, context.Canceled) {
		t.Error("InterruptedError does not unwrap to its cause")
	}
	if errors.Is(ie, context.DeadlineExceeded) {
		t.Error("InterruptedError matched a cause it does not carry")
	}
	var got *InterruptedError
	if !errors.As(ie, &got) || got.Instance != 3 || got.Iterations != 17 {
		t.Errorf("errors.As round-trip lost fields: %+v", got)
	}
}
