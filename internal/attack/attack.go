// Package attack implements the two baseline oracle-guided attacks the
// paper compares against:
//
//   - the standard SAT attack (Subramanyan et al., HOST'15 / El Massad
//     et al., NDSS'15) for deterministic oracles (§II-B), and
//   - PSAT (Patnaik et al., TCAD'19), the probabilistic variant that
//     queries the oracle Ns times per distinguishing input and commits
//     to a single whole output pattern — the dominant one if one
//     exists, otherwise one sampled by frequency (§III).
//
// Both are thin adapters over the shared loop in internal/engine: they
// contribute only a Strategy (how to answer a distinguishing input)
// and let the engine own iteration, tracing and cancellation. StatSAT
// itself lives in internal/core.
package attack

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"statsat/internal/circuit"
	"statsat/internal/engine"
	"statsat/internal/oracle"
	"statsat/internal/portfolio"
	"statsat/internal/trace"
)

// ErrIterationLimit is returned when an attack exceeds its iteration
// budget without converging. It is the engine's sentinel, re-exported
// so existing callers keep comparing against attack.ErrIterationLimit.
var ErrIterationLimit = engine.ErrIterationLimit

// ErrInterrupted matches any attack stopped by context cancellation or
// deadline expiry (errors.Is). Interrupted attacks return it together
// with a non-nil best-effort Result.
var ErrInterrupted = engine.ErrInterrupted

// Result reports the outcome of a baseline attack.
type Result = engine.Result

// InterruptedError carries the cancellation cause and the progress
// made; see engine.InterruptedError.
type InterruptedError = engine.InterruptedError

// SATOptions configures StandardSATOpt.
type SATOptions struct {
	// MaxIter bounds the number of DIP iterations (0 = 1<<20).
	MaxIter int
	// Tracer, if set, receives structured trace events (the same
	// schema as StatSAT; see docs/OBSERVABILITY.md).
	Tracer trace.Tracer
	// PortfolioWorkers / PortfolioRacers enable portfolio racing of
	// the miter solves (internal/portfolio); <= 1 workers keeps the
	// attack byte-identical to the sequential path.
	PortfolioWorkers int
	PortfolioRacers  int
	// Checkpoint, if set, receives a progress checkpoint after every
	// engine Step (the durable-resume boundary; see
	// docs/ARCHITECTURE.md "Checkpoint contract").
	Checkpoint engine.CheckpointSink
}

// portfolioAttach builds the engine Attach hook that registers a
// baseline's single instance with a fresh portfolio; nil (no hook)
// when workers <= 1. It also echoes the knobs into oi for the
// attack_start event, only when racing is actually on.
func portfolioAttach(workers, racers int, tr *trace.Emitter, oi *trace.OptionsInfo) func(*engine.Instance) {
	p := portfolio.New(portfolio.Options{Workers: workers, Racers: racers}, tr)
	if !p.Enabled() {
		return nil
	}
	if oi != nil {
		oi.PortfolioWorkers = workers
		oi.PortfolioRacers = racers
	}
	return func(inst *engine.Instance) { inst.Port = p.Root(inst.ID, inst.M.S) }
}

// StandardSAT runs the classic SAT attack against a (deterministic)
// oracle. maxIter bounds the number of DIP iterations (0 = 1<<20).
func StandardSAT(ctx context.Context, locked *circuit.Circuit, orc oracle.Oracle, maxIter int) (*Result, error) {
	return StandardSATOpt(ctx, locked, orc, SATOptions{MaxIter: maxIter})
}

// StandardSATOpt is StandardSAT with the full option set. On context
// cancellation it returns the best-effort partial result alongside an
// error matching ErrInterrupted.
func StandardSATOpt(ctx context.Context, locked *circuit.Circuit, orc oracle.Oracle, opts SATOptions) (*Result, error) {
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 1 << 20
	}
	if locked.NumPIs() != orc.NumInputs() || locked.NumPOs() != orc.NumOutputs() {
		return nil, fmt.Errorf("attack: netlist/oracle interface mismatch (%d/%d in, %d/%d out)",
			locked.NumPIs(), orc.NumInputs(), locked.NumPOs(), orc.NumOutputs())
	}
	eng := &engine.Engine{Locked: locked, Orc: orc, Tr: trace.NewEmitter(opts.Tracer), Ckpt: opts.Checkpoint}
	res := &Result{}
	st := &satStrategy{eng: eng, res: res}
	oi := &trace.OptionsInfo{MaxIter: maxIter}
	cfg := engine.Config{
		Name: "sat", MaxIter: maxIter, Opts: oi,
		Attach: portfolioAttach(opts.PortfolioWorkers, opts.PortfolioRacers, eng.Tr, oi),
	}
	return finishRun(res, eng.Run(ctx, cfg, st, res))
}

// finishRun maps an engine.Run error to the baseline return contract:
// interrupted runs keep their best-effort result, every other error
// discards it.
func finishRun(res *Result, err error) (*Result, error) {
	if err == nil {
		return res, nil
	}
	if errors.Is(err, ErrInterrupted) {
		return res, err
	}
	return nil, err
}

// satStrategy answers each DIP with a single deterministic oracle
// query and records the full I/O pair.
type satStrategy struct {
	eng *engine.Engine
	res *Result
}

//lint:ignore ctxflow Strategy interface compliance: the engine checks ctx in Step right before Respond, and the single deterministic oracle query cannot block
func (s *satStrategy) Respond(ctx context.Context, inst *engine.Instance, x []bool) (string, bool, error) {
	y := s.eng.Orc.Query(x)
	if err := engine.InstallDIP(inst, x, y); err != nil {
		return "", false, err
	}
	emitFullDIP(s.eng, inst, x, y)
	return "dip", false, nil
}

func (s *satStrategy) Converged(ctx context.Context, inst *engine.Instance) error {
	return engine.DefaultConverged(ctx, inst, s.res)
}

// emitFullDIP records a fully specified distinguishing I/O pair
// (baselines specify every output bit).
func emitFullDIP(eng *engine.Engine, inst *engine.Instance, x, y []bool) {
	if !eng.Tr.Enabled() {
		return
	}
	eng.EmitDIP(inst, inst.Iterations, &trace.DIPInfo{
		Index: inst.Iterations - 1, X: engine.BitString(x), Y: engine.BitString(y),
		Outputs: len(y), Specified: len(y),
	})
}

// PSATOptions configures the PSAT baseline.
type PSATOptions struct {
	// Ns is the number of oracle queries per distinguishing input
	// (paper: 500).
	Ns int
	// DominanceThreshold is the pattern frequency above which the most
	// frequent pattern is committed directly; below it a pattern is
	// sampled by frequency. [15] calls such a pattern "dominant"; we
	// use a majority threshold of 0.5 by default.
	DominanceThreshold float64
	// MaxIter bounds DIP iterations (0 = 1<<20).
	MaxIter int
	// Seed drives the frequency-sampling randomness.
	Seed int64
	// Tracer, if set, receives structured trace events (the same
	// schema as StatSAT; see docs/OBSERVABILITY.md).
	Tracer trace.Tracer
	// PortfolioWorkers / PortfolioRacers enable portfolio racing of
	// the miter solves (internal/portfolio).
	PortfolioWorkers int
	PortfolioRacers  int
	// Checkpoint, if set, receives a progress checkpoint after every
	// engine Step (see docs/ARCHITECTURE.md "Checkpoint contract").
	Checkpoint engine.CheckpointSink
}

func (o *PSATOptions) setDefaults() {
	if o.Ns <= 0 {
		o.Ns = 500
	}
	if o.DominanceThreshold <= 0 {
		o.DominanceThreshold = 0.5
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 1 << 20
	}
}

// PSAT runs the probabilistic-SAT baseline: per DIP, the oracle is
// sampled Ns times; the committed output pattern is the dominant one,
// or one drawn from the empirical pattern distribution. All output
// bits are always specified — the design decision StatSAT criticises —
// so a single mis-committed pattern can drive the formula UNSAT
// (Failed=true) or eliminate the correct key silently.
func PSAT(ctx context.Context, locked *circuit.Circuit, orc oracle.Oracle, opts PSATOptions) (*Result, error) {
	opts.setDefaults()
	if locked.NumPIs() != orc.NumInputs() || locked.NumPOs() != orc.NumOutputs() {
		return nil, fmt.Errorf("attack: netlist/oracle interface mismatch")
	}
	eng := &engine.Engine{Locked: locked, Orc: orc, Tr: trace.NewEmitter(opts.Tracer), Ckpt: opts.Checkpoint}
	res := &Result{}
	st := &psatStrategy{
		eng: eng, res: res, opts: opts,
		rng: rand.New(rand.NewSource(opts.Seed)),
	}
	oi := &trace.OptionsInfo{Ns: opts.Ns, MaxIter: opts.MaxIter}
	cfg := engine.Config{
		Name: "psat", MaxIter: opts.MaxIter, Opts: oi,
		Attach: portfolioAttach(opts.PortfolioWorkers, opts.PortfolioRacers, eng.Tr, oi),
	}
	return finishRun(res, eng.Run(ctx, cfg, st, res))
	// A wrong committed pattern may make the formulas UNSAT; the next
	// Step detects it as convergence with Failed set.
}

// psatStrategy answers each DIP with Ns oracle samples collapsed to a
// single committed pattern.
type psatStrategy struct {
	eng  *engine.Engine
	res  *Result
	opts PSATOptions
	rng  *rand.Rand
}

func (s *psatStrategy) Respond(ctx context.Context, inst *engine.Instance, x []bool) (string, bool, error) {
	y := choosePattern(ctx, s.eng.Orc, x, s.opts.Ns, s.opts.DominanceThreshold, s.rng)
	if err := engine.InstallDIP(inst, x, y); err != nil {
		return "", false, err
	}
	emitFullDIP(s.eng, inst, x, y)
	return "dip", false, nil
}

func (s *psatStrategy) Converged(ctx context.Context, inst *engine.Instance) error {
	return engine.DefaultConverged(ctx, inst, s.res)
}

// choosePattern implements [15]'s pattern selection: dominant pattern
// if its frequency exceeds the threshold, else frequency-weighted
// sampling.
func choosePattern(ctx context.Context, orc oracle.Oracle, x []bool, ns int, threshold float64, rng *rand.Rand) []bool {
	counts := oracle.PatternCounts(ctx, orc, x, ns)
	// Deterministic iteration order for reproducibility.
	pats := make([]string, 0, len(counts))
	for p := range counts {
		pats = append(pats, p)
	}
	sort.Strings(pats)
	best, bestN := "", -1
	for _, p := range pats {
		if counts[p] > bestN {
			best, bestN = p, counts[p]
		}
	}
	if float64(bestN) > threshold*float64(ns) {
		return oracle.PatternToBits(best)
	}
	r := rng.Intn(ns)
	acc := 0
	for _, p := range pats {
		acc += counts[p]
		if r < acc {
			return oracle.PatternToBits(p)
		}
	}
	return oracle.PatternToBits(best)
}
