// Package attack implements the two baseline oracle-guided attacks the
// paper compares against:
//
//   - the standard SAT attack (Subramanyan et al., HOST'15 / El Massad
//     et al., NDSS'15) for deterministic oracles (§II-B), and
//   - PSAT (Patnaik et al., TCAD'19), the probabilistic variant that
//     queries the oracle Ns times per distinguishing input and commits
//     to a single whole output pattern — the dominant one if one
//     exists, otherwise one sampled by frequency (§III).
//
// StatSAT itself lives in internal/core.
package attack

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"statsat/internal/circuit"
	"statsat/internal/cnf"
	"statsat/internal/oracle"
	"statsat/internal/sat"
	"statsat/internal/trace"
)

// ErrIterationLimit is returned when an attack exceeds its iteration
// budget without converging.
var ErrIterationLimit = errors.New("attack: iteration limit exceeded")

// Result reports the outcome of a baseline attack.
type Result struct {
	// Key is the recovered key, nil if the attack failed (PSAT's CNF
	// can become unsatisfiable when a wrong pattern is recorded).
	Key []bool
	// Iterations is the number of distinguishing inputs processed.
	Iterations int
	// Duration is the wall-clock attack time (T_attack).
	Duration time.Duration
	// OracleQueries counts total chip queries.
	OracleQueries int64
	// Failed is set when the formula became UNSAT before a key was
	// produced (inconsistent DIPs — the §III failure mode).
	Failed bool
}

// SATOptions configures StandardSATOpt.
type SATOptions struct {
	// MaxIter bounds the number of DIP iterations (0 = 1<<20).
	MaxIter int
	// Tracer, if set, receives structured trace events (the same
	// schema as StatSAT; see docs/OBSERVABILITY.md).
	Tracer trace.Tracer
}

// StandardSAT runs the classic SAT attack against a (deterministic)
// oracle. maxIter bounds the number of DIP iterations (0 = 1<<20).
func StandardSAT(locked *circuit.Circuit, orc oracle.Oracle, maxIter int) (*Result, error) {
	return StandardSATOpt(locked, orc, SATOptions{MaxIter: maxIter})
}

// StandardSATOpt is StandardSAT with the full option set.
func StandardSATOpt(locked *circuit.Circuit, orc oracle.Oracle, opts SATOptions) (*Result, error) {
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 1 << 20
	}
	if locked.NumPIs() != orc.NumInputs() || locked.NumPOs() != orc.NumOutputs() {
		return nil, fmt.Errorf("attack: netlist/oracle interface mismatch (%d/%d in, %d/%d out)",
			locked.NumPIs(), orc.NumInputs(), locked.NumPOs(), orc.NumOutputs())
	}
	tr := trace.NewEmitter(opts.Tracer)
	emitStart(tr, "sat", locked, &trace.OptionsInfo{MaxIter: maxIter})
	start := time.Now()
	startQ := orc.Queries()
	m, err := cnf.NewMiter(locked)
	if err != nil {
		return nil, err
	}
	ks := cnf.NewKeySolver(locked)
	res := &Result{}
	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		emitIterStart(tr, res.Iterations+1, m.S, orc, startQ)
		status := m.S.Solve()
		if status == sat.Unknown {
			return nil, fmt.Errorf("attack: miter solve exceeded budget at iteration %d", res.Iterations)
		}
		if status == sat.Unsat {
			// Converged: any key satisfying the DIPs is correct.
			if ks.S.Solve() == sat.Sat {
				res.Key = ks.Key()
			} else {
				res.Failed = true
			}
			res.Duration = time.Since(start)
			res.OracleQueries = orc.Queries() - startQ
			emitConverged(tr, m.S, orc, startQ, res)
			return res, nil
		}
		x := m.Input()
		y := orc.Query(x)
		if err := installDIP(m, ks, x, y); err != nil {
			return nil, err
		}
		emitDIP(tr, res.Iterations, keyString(x), keyString(y), orc, startQ)
		emitIterEnd(tr, res.Iterations+1, "dip", m.S, orc, startQ)
	}
	return nil, ErrIterationLimit
}

// installDIP adds one fully specified distinguishing I/O pair to the
// miter and key solvers.
func installDIP(m *cnf.Miter, ks *cnf.KeySolver, x, y []bool) error {
	outA, outB, err := m.AddDIPCopies(x)
	if err != nil {
		return err
	}
	for i := range y {
		cnf.Equal(m.S, outA[i], y[i])
		cnf.Equal(m.S, outB[i], y[i])
	}
	outs, err := ks.AddDIPCopy(x)
	if err != nil {
		return err
	}
	for i := range y {
		cnf.Equal(ks.S, outs[i], y[i])
	}
	return nil
}

// PSATOptions configures the PSAT baseline.
type PSATOptions struct {
	// Ns is the number of oracle queries per distinguishing input
	// (paper: 500).
	Ns int
	// DominanceThreshold is the pattern frequency above which the most
	// frequent pattern is committed directly; below it a pattern is
	// sampled by frequency. [15] calls such a pattern "dominant"; we
	// use a majority threshold of 0.5 by default.
	DominanceThreshold float64
	// MaxIter bounds DIP iterations (0 = 1<<20).
	MaxIter int
	// Seed drives the frequency-sampling randomness.
	Seed int64
	// Tracer, if set, receives structured trace events (the same
	// schema as StatSAT; see docs/OBSERVABILITY.md).
	Tracer trace.Tracer
}

func (o *PSATOptions) setDefaults() {
	if o.Ns <= 0 {
		o.Ns = 500
	}
	if o.DominanceThreshold <= 0 {
		o.DominanceThreshold = 0.5
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 1 << 20
	}
}

// PSAT runs the probabilistic-SAT baseline: per DIP, the oracle is
// sampled Ns times; the committed output pattern is the dominant one,
// or one drawn from the empirical pattern distribution. All output
// bits are always specified — the design decision StatSAT criticises —
// so a single mis-committed pattern can drive the formula UNSAT
// (Failed=true) or eliminate the correct key silently.
func PSAT(locked *circuit.Circuit, orc oracle.Oracle, opts PSATOptions) (*Result, error) {
	opts.setDefaults()
	if locked.NumPIs() != orc.NumInputs() || locked.NumPOs() != orc.NumOutputs() {
		return nil, fmt.Errorf("attack: netlist/oracle interface mismatch")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	tr := trace.NewEmitter(opts.Tracer)
	emitStart(tr, "psat", locked, &trace.OptionsInfo{Ns: opts.Ns, MaxIter: opts.MaxIter})
	start := time.Now()
	startQ := orc.Queries()
	m, err := cnf.NewMiter(locked)
	if err != nil {
		return nil, err
	}
	ks := cnf.NewKeySolver(locked)
	res := &Result{}
	for res.Iterations = 0; res.Iterations < opts.MaxIter; res.Iterations++ {
		emitIterStart(tr, res.Iterations+1, m.S, orc, startQ)
		status := m.S.Solve()
		if status == sat.Unknown {
			return nil, fmt.Errorf("attack: miter solve exceeded budget at iteration %d", res.Iterations)
		}
		if status == sat.Unsat {
			if ks.S.Solve() == sat.Sat {
				res.Key = ks.Key()
			} else {
				res.Failed = true
			}
			res.Duration = time.Since(start)
			res.OracleQueries = orc.Queries() - startQ
			emitConverged(tr, m.S, orc, startQ, res)
			return res, nil
		}
		x := m.Input()
		y := choosePattern(orc, x, opts.Ns, opts.DominanceThreshold, rng)
		if err := installDIP(m, ks, x, y); err != nil {
			return nil, err
		}
		emitDIP(tr, res.Iterations, keyString(x), keyString(y), orc, startQ)
		emitIterEnd(tr, res.Iterations+1, "dip", m.S, orc, startQ)
		// A wrong committed pattern may have made the formulas UNSAT
		// already; the next Solve detects it.
	}
	return nil, ErrIterationLimit
}

// keyString renders a bit vector as a '0'/'1' string for trace events.
func keyString(bits []bool) string {
	b := make([]byte, len(bits))
	for i, v := range bits {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// The emit helpers below keep the baselines on the same event schema
// as StatSAT (docs/OBSERVABILITY.md); baselines run a single SAT
// instance, so every instance-scoped event carries instance 0.

func emitStart(tr *trace.Emitter, name string, locked *circuit.Circuit, opts *trace.OptionsInfo) {
	tr.Emit(trace.Event{
		Type: trace.AttackStart, Attack: name, Instance: -1,
		Circuit: &trace.CircuitInfo{
			Name: locked.Name, PIs: locked.NumPIs(), POs: locked.NumPOs(), Keys: locked.NumKeys(),
		},
		Opts: opts,
	})
}

func emitIterStart(tr *trace.Emitter, iter int, s *sat.Solver, orc oracle.Oracle, startQ int64) {
	if !tr.Enabled() {
		return
	}
	tr.Emit(trace.Event{
		Type: trace.IterStart, Instance: 0, Iter: iter,
		Solver: trace.SolverSnapshot(s), OracleQueries: orc.Queries() - startQ,
	})
}

func emitIterEnd(tr *trace.Emitter, iter int, status string, s *sat.Solver, orc oracle.Oracle, startQ int64) {
	if !tr.Enabled() {
		return
	}
	tr.Emit(trace.Event{
		Type: trace.IterEnd, Instance: 0, Iter: iter, Status: status,
		Solver: trace.SolverSnapshot(s), OracleQueries: orc.Queries() - startQ,
	})
}

func emitDIP(tr *trace.Emitter, index int, x, y string, orc oracle.Oracle, startQ int64) {
	if !tr.Enabled() {
		return
	}
	tr.Emit(trace.Event{
		Type: trace.DIPFound, Instance: 0, Iter: index + 1,
		OracleQueries: orc.Queries() - startQ,
		DIP: &trace.DIPInfo{
			Index: index, X: x, Y: y, Outputs: len(y), Specified: len(y),
		},
	})
}

// emitConverged closes a baseline trace: the final iteration_end
// ("unsat"), then key_accepted or instance_dead, then attack_end.
func emitConverged(tr *trace.Emitter, s *sat.Solver, orc oracle.Oracle, startQ int64, res *Result) {
	if !tr.Enabled() {
		return
	}
	emitIterEnd(tr, res.Iterations+1, "unsat", s, orc, startQ)
	if res.Key != nil {
		tr.Emit(trace.Event{
			Type: trace.KeyAccepted, Instance: 0,
			Key: &trace.KeyInfo{Key: keyString(res.Key), Iterations: res.Iterations, DIPs: res.Iterations},
		})
	} else {
		tr.Emit(trace.Event{
			Type: trace.InstanceDead, Instance: 0,
			Key: &trace.KeyInfo{Iterations: res.Iterations, DIPs: res.Iterations},
		})
	}
	keys := 0
	if res.Key != nil {
		keys = 1
	}
	dead := 0
	if res.Failed {
		dead = 1
	}
	tr.Emit(trace.Event{
		Type: trace.AttackEnd, Instance: -1,
		Totals: &trace.TotalsInfo{
			Keys: keys, Iterations: res.Iterations, InstancesCreated: 1, PeakLive: 1,
			DeadInstances: dead, OracleQueries: res.OracleQueries,
			DurationNs: res.Duration.Nanoseconds(),
		},
	})
}

// choosePattern implements [15]'s pattern selection: dominant pattern
// if its frequency exceeds the threshold, else frequency-weighted
// sampling.
func choosePattern(orc oracle.Oracle, x []bool, ns int, threshold float64, rng *rand.Rand) []bool {
	counts := oracle.PatternCounts(orc, x, ns)
	// Deterministic iteration order for reproducibility.
	pats := make([]string, 0, len(counts))
	for p := range counts {
		pats = append(pats, p)
	}
	sort.Strings(pats)
	best, bestN := "", -1
	for _, p := range pats {
		if counts[p] > bestN {
			best, bestN = p, counts[p]
		}
	}
	if float64(bestN) > threshold*float64(ns) {
		return oracle.PatternToBits(best)
	}
	r := rng.Intn(ns)
	acc := 0
	for _, p := range pats {
		acc += counts[p]
		if r < acc {
			return oracle.PatternToBits(p)
		}
	}
	return oracle.PatternToBits(best)
}
