// Package attack implements the two baseline oracle-guided attacks the
// paper compares against:
//
//   - the standard SAT attack (Subramanyan et al., HOST'15 / El Massad
//     et al., NDSS'15) for deterministic oracles (§II-B), and
//   - PSAT (Patnaik et al., TCAD'19), the probabilistic variant that
//     queries the oracle Ns times per distinguishing input and commits
//     to a single whole output pattern — the dominant one if one
//     exists, otherwise one sampled by frequency (§III).
//
// StatSAT itself lives in internal/core.
package attack

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"statsat/internal/circuit"
	"statsat/internal/cnf"
	"statsat/internal/oracle"
	"statsat/internal/sat"
)

// ErrIterationLimit is returned when an attack exceeds its iteration
// budget without converging.
var ErrIterationLimit = errors.New("attack: iteration limit exceeded")

// Result reports the outcome of a baseline attack.
type Result struct {
	// Key is the recovered key, nil if the attack failed (PSAT's CNF
	// can become unsatisfiable when a wrong pattern is recorded).
	Key []bool
	// Iterations is the number of distinguishing inputs processed.
	Iterations int
	// Duration is the wall-clock attack time (T_attack).
	Duration time.Duration
	// OracleQueries counts total chip queries.
	OracleQueries int64
	// Failed is set when the formula became UNSAT before a key was
	// produced (inconsistent DIPs — the §III failure mode).
	Failed bool
}

// StandardSAT runs the classic SAT attack against a (deterministic)
// oracle. maxIter bounds the number of DIP iterations (0 = 1<<20).
func StandardSAT(locked *circuit.Circuit, orc oracle.Oracle, maxIter int) (*Result, error) {
	if maxIter <= 0 {
		maxIter = 1 << 20
	}
	if locked.NumPIs() != orc.NumInputs() || locked.NumPOs() != orc.NumOutputs() {
		return nil, fmt.Errorf("attack: netlist/oracle interface mismatch (%d/%d in, %d/%d out)",
			locked.NumPIs(), orc.NumInputs(), locked.NumPOs(), orc.NumOutputs())
	}
	start := time.Now()
	startQ := orc.Queries()
	m, err := cnf.NewMiter(locked)
	if err != nil {
		return nil, err
	}
	ks := cnf.NewKeySolver(locked)
	res := &Result{}
	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		status := m.S.Solve()
		if status == sat.Unknown {
			return nil, fmt.Errorf("attack: miter solve exceeded budget at iteration %d", res.Iterations)
		}
		if status == sat.Unsat {
			// Converged: any key satisfying the DIPs is correct.
			if ks.S.Solve() != sat.Sat {
				res.Failed = true
				res.Duration = time.Since(start)
				res.OracleQueries = orc.Queries() - startQ
				return res, nil
			}
			res.Key = ks.Key()
			res.Duration = time.Since(start)
			res.OracleQueries = orc.Queries() - startQ
			return res, nil
		}
		x := m.Input()
		y := orc.Query(x)
		outA, outB, err := m.AddDIPCopies(x)
		if err != nil {
			return nil, err
		}
		for i := range y {
			cnf.Equal(m.S, outA[i], y[i])
			cnf.Equal(m.S, outB[i], y[i])
		}
		outs, err := ks.AddDIPCopy(x)
		if err != nil {
			return nil, err
		}
		for i := range y {
			cnf.Equal(ks.S, outs[i], y[i])
		}
	}
	return nil, ErrIterationLimit
}

// PSATOptions configures the PSAT baseline.
type PSATOptions struct {
	// Ns is the number of oracle queries per distinguishing input
	// (paper: 500).
	Ns int
	// DominanceThreshold is the pattern frequency above which the most
	// frequent pattern is committed directly; below it a pattern is
	// sampled by frequency. [15] calls such a pattern "dominant"; we
	// use a majority threshold of 0.5 by default.
	DominanceThreshold float64
	// MaxIter bounds DIP iterations (0 = 1<<20).
	MaxIter int
	// Seed drives the frequency-sampling randomness.
	Seed int64
}

func (o *PSATOptions) setDefaults() {
	if o.Ns <= 0 {
		o.Ns = 500
	}
	if o.DominanceThreshold <= 0 {
		o.DominanceThreshold = 0.5
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 1 << 20
	}
}

// PSAT runs the probabilistic-SAT baseline: per DIP, the oracle is
// sampled Ns times; the committed output pattern is the dominant one,
// or one drawn from the empirical pattern distribution. All output
// bits are always specified — the design decision StatSAT criticises —
// so a single mis-committed pattern can drive the formula UNSAT
// (Failed=true) or eliminate the correct key silently.
func PSAT(locked *circuit.Circuit, orc oracle.Oracle, opts PSATOptions) (*Result, error) {
	opts.setDefaults()
	if locked.NumPIs() != orc.NumInputs() || locked.NumPOs() != orc.NumOutputs() {
		return nil, fmt.Errorf("attack: netlist/oracle interface mismatch")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	start := time.Now()
	startQ := orc.Queries()
	m, err := cnf.NewMiter(locked)
	if err != nil {
		return nil, err
	}
	ks := cnf.NewKeySolver(locked)
	res := &Result{}
	for res.Iterations = 0; res.Iterations < opts.MaxIter; res.Iterations++ {
		status := m.S.Solve()
		if status == sat.Unknown {
			return nil, fmt.Errorf("attack: miter solve exceeded budget at iteration %d", res.Iterations)
		}
		if status == sat.Unsat {
			if ks.S.Solve() != sat.Sat {
				res.Failed = true
				res.Duration = time.Since(start)
				res.OracleQueries = orc.Queries() - startQ
				return res, nil
			}
			res.Key = ks.Key()
			res.Duration = time.Since(start)
			res.OracleQueries = orc.Queries() - startQ
			return res, nil
		}
		x := m.Input()
		y := choosePattern(orc, x, opts.Ns, opts.DominanceThreshold, rng)
		outA, outB, err := m.AddDIPCopies(x)
		if err != nil {
			return nil, err
		}
		for i := range y {
			cnf.Equal(m.S, outA[i], y[i])
			cnf.Equal(m.S, outB[i], y[i])
		}
		outs, err := ks.AddDIPCopy(x)
		if err != nil {
			return nil, err
		}
		for i := range y {
			cnf.Equal(ks.S, outs[i], y[i])
		}
		// A wrong committed pattern may have made the formulas UNSAT
		// already; the next Solve detects it.
	}
	return nil, ErrIterationLimit
}

// choosePattern implements [15]'s pattern selection: dominant pattern
// if its frequency exceeds the threshold, else frequency-weighted
// sampling.
func choosePattern(orc oracle.Oracle, x []bool, ns int, threshold float64, rng *rand.Rand) []bool {
	counts := oracle.PatternCounts(orc, x, ns)
	// Deterministic iteration order for reproducibility.
	pats := make([]string, 0, len(counts))
	for p := range counts {
		pats = append(pats, p)
	}
	sort.Strings(pats)
	best, bestN := "", -1
	for _, p := range pats {
		if counts[p] > bestN {
			best, bestN = p, counts[p]
		}
	}
	if float64(bestN) > threshold*float64(ns) {
		return oracle.PatternToBits(best)
	}
	r := rng.Intn(ns)
	acc := 0
	for _, p := range pats {
		acc += counts[p]
		if r < acc {
			return oracle.PatternToBits(p)
		}
	}
	return oracle.PatternToBits(best)
}
