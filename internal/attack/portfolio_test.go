package attack

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"statsat/internal/gen"
	"statsat/internal/lock"
	"statsat/internal/oracle"
	"statsat/internal/trace"
)

// normalizeTrace strips the wall-clock fields (timestamps, durations)
// from a recorded event stream and marshals it, so two runs of the
// same deterministic attack can be compared byte for byte.
func normalizeTrace(t *testing.T, events []trace.Event) []byte {
	t.Helper()
	out := make([]trace.Event, len(events))
	for i, ev := range events {
		ev.TNs = 0
		if ev.Totals != nil {
			cp := *ev.Totals
			cp.DurationNs = 0
			ev.Totals = &cp
		}
		if ev.Eval != nil {
			cp := *ev.Eval
			cp.DurationNs = 0
			ev.Eval = &cp
		}
		out[i] = ev
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// antiSATLocked builds a small AntiSAT-locked circuit — the SAT-attack
// resistant technique the portfolio smoke tests target, since its
// near-exponential DIP count gives the racers real work.
func antiSATLocked(t *testing.T, keyBits int) *lock.Locked {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	orig := gen.Random("a", 10, 150, 8, 5)
	l, err := lock.AntiSAT(orig, keyBits, rng)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func sameKey(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSATPortfolioOffByteIdentical is the off-mode determinism
// guarantee: -portfolio-workers=1 must leave the standard SAT attack's
// trace byte-identical to a run without the flag.
func TestSATPortfolioOffByteIdentical(t *testing.T) {
	l := antiSATLocked(t, 4)
	run := func(workers int) ([]trace.Event, *Result) {
		rec := trace.NewRecorder()
		res, err := StandardSATOpt(context.Background(), l.Circuit,
			oracle.NewDeterministic(l.Circuit, l.Key),
			SATOptions{Tracer: rec, PortfolioWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return rec.Events(), res
	}
	evOff, resOff := run(0)
	evOne, resOne := run(1)
	if !sameKey(resOff.Key, resOne.Key) || resOff.Iterations != resOne.Iterations {
		t.Fatalf("one-worker result diverged: %v/%d vs %v/%d",
			resOne.Key, resOne.Iterations, resOff.Key, resOff.Iterations)
	}
	a, b := normalizeTrace(t, evOff), normalizeTrace(t, evOne)
	if string(a) != string(b) {
		t.Errorf("traces differ between workers=0 and workers=1:\n%s\nvs\n%s", a, b)
	}
}

// TestSATPortfolioSameKeyAsSequential is the N-worker determinism
// guarantee: racing changes wall-clock, never the recovered key or the
// DIP trajectory.
func TestSATPortfolioSameKeyAsSequential(t *testing.T) {
	l := antiSATLocked(t, 6)
	orc := func() oracle.Oracle { return oracle.NewDeterministic(l.Circuit, l.Key) }
	seq, err := StandardSATOpt(context.Background(), l.Circuit, orc(), SATOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := StandardSATOpt(context.Background(), l.Circuit, orc(),
		SATOptions{PortfolioWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !sameKey(seq.Key, par.Key) {
		t.Errorf("keys diverged: sequential %v, portfolio %v", seq.Key, par.Key)
	}
	if seq.Iterations != par.Iterations || seq.OracleQueries != par.OracleQueries {
		t.Errorf("trajectory diverged: %d iters/%d queries vs %d/%d",
			seq.Iterations, seq.OracleQueries, par.Iterations, par.OracleQueries)
	}
}

func TestPSATPortfolioSameKeyAsSequential(t *testing.T) {
	l := antiSATLocked(t, 4)
	run := func(workers int) *Result {
		res, err := PSAT(context.Background(), l.Circuit,
			oracle.NewDeterministic(l.Circuit, l.Key),
			PSATOptions{Ns: 20, Seed: 3, PortfolioWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(0), run(4)
	if !sameKey(seq.Key, par.Key) || seq.Iterations != par.Iterations {
		t.Errorf("PSAT diverged under portfolio: %v/%d vs %v/%d",
			par.Key, par.Iterations, seq.Key, seq.Iterations)
	}
}

func TestAppSATPortfolioSameKeyAsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	orig := gen.Random("s", 10, 150, 8, 5)
	l, err := lock.SFLLHD(orig, 6, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *AppSATResult {
		res, err := AppSAT(context.Background(), l.Circuit,
			oracle.NewDeterministic(l.Circuit, l.Key),
			AppSATOptions{Seed: 5, PortfolioWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(0), run(4)
	if !sameKey(seq.Key, par.Key) || seq.Iterations != par.Iterations ||
		seq.Rounds != par.Rounds || seq.EarlyExit != par.EarlyExit {
		t.Errorf("AppSAT diverged under portfolio: %+v vs %+v", par, seq)
	}
}

// TestPortfolioAttachDisabled pins the hook contract: workers <= 1
// yields no hook and no option echo.
func TestPortfolioAttachDisabled(t *testing.T) {
	oi := &trace.OptionsInfo{}
	for _, w := range []int{0, 1} {
		if h := portfolioAttach(w, 0, nil, oi); h != nil {
			t.Errorf("portfolioAttach(workers=%d) returned a hook", w)
		}
	}
	if oi.PortfolioWorkers != 0 || oi.PortfolioRacers != 0 {
		t.Errorf("disabled attach echoed options: %+v", oi)
	}
}
