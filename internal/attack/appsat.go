package attack

import (
	"context"
	"fmt"
	"math/rand"

	"statsat/internal/circuit"
	"statsat/internal/engine"
	"statsat/internal/oracle"
	"statsat/internal/sat"
	"statsat/internal/trace"
)

// AppSATOptions configures the AppSAT baseline (Shamsi et al.,
// HOST'17): the approximate SAT attack the paper's footnote 2 rules
// out for probabilistic oracles. AppSAT interleaves classic DIP
// iterations with random-query reconciliation rounds and terminates
// early once the candidate key's empirical error rate drops below a
// threshold, returning an *approximate* key.
type AppSATOptions struct {
	// QueryInterval is the number of DIP iterations between
	// reconciliation rounds (default 12).
	QueryInterval int
	// RandomQueries is the number of random patterns per round
	// (default 50).
	RandomQueries int
	// ErrorThreshold is the accepted fraction of mismatching random
	// patterns (default 0: exact agreement on the sample).
	ErrorThreshold float64
	// MaxIter bounds DIP iterations (0 = 1<<20).
	MaxIter int
	// Seed drives the random pattern generator.
	Seed int64
	// PortfolioWorkers / PortfolioRacers enable portfolio racing of
	// the miter solves (internal/portfolio).
	PortfolioWorkers int
	PortfolioRacers  int
	// Tracer, if set, receives structured trace events (the same
	// schema as the other attacks; see docs/OBSERVABILITY.md).
	Tracer trace.Tracer
	// Checkpoint, if set, receives a progress checkpoint after every
	// engine Step (see docs/ARCHITECTURE.md "Checkpoint contract").
	Checkpoint engine.CheckpointSink
}

func (o *AppSATOptions) setDefaults() {
	if o.QueryInterval <= 0 {
		o.QueryInterval = 12
	}
	if o.RandomQueries <= 0 {
		o.RandomQueries = 50
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 1 << 20
	}
}

// AppSATResult extends Result with the reconciliation statistics.
type AppSATResult struct {
	Result
	// Rounds counts reconciliation rounds executed.
	Rounds int
	// FinalErrorRate is the last measured random-query error rate of
	// the returned key (0 when the attack converged via UNSAT).
	FinalErrorRate float64
	// EarlyExit is set when the error threshold triggered termination
	// before the miter went UNSAT (the "approximate key" case).
	EarlyExit bool
}

// AppSAT runs the approximate SAT attack. Against a deterministic
// oracle it recovers an exact or approximate key. Against a
// probabilistic oracle it inherits the classic attack's failure mode —
// noisy responses recorded as hard constraints drive the formula
// UNSAT — which is exactly why the paper develops StatSAT instead.
func AppSAT(ctx context.Context, locked *circuit.Circuit, orc oracle.Oracle, opts AppSATOptions) (*AppSATResult, error) {
	opts.setDefaults()
	if locked.NumPIs() != orc.NumInputs() || locked.NumPOs() != orc.NumOutputs() {
		return nil, fmt.Errorf("attack: netlist/oracle interface mismatch")
	}
	eng := &engine.Engine{Locked: locked, Orc: orc, Tr: trace.NewEmitter(opts.Tracer), Ckpt: opts.Checkpoint}
	res := &AppSATResult{}
	st := &appSATStrategy{
		eng: eng, res: res, opts: opts,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		scratch: make([]bool, locked.NumGates()),
	}
	cfg := engine.Config{
		Name: "appsat", MaxIter: opts.MaxIter,
		Attach: portfolioAttach(opts.PortfolioWorkers, opts.PortfolioRacers, eng.Tr, nil),
	}
	r, err := finishRun(&res.Result, eng.Run(ctx, cfg, st, &res.Result))
	if r == nil {
		return nil, err
	}
	return res, err
}

// appSATStrategy interleaves classic DIP recording with random-query
// reconciliation rounds (the AppSAT augmentation).
type appSATStrategy struct {
	eng     *engine.Engine
	res     *AppSATResult
	opts    AppSATOptions
	rng     *rand.Rand
	scratch []bool
}

func (s *appSATStrategy) Converged(ctx context.Context, inst *engine.Instance) error {
	return engine.DefaultConverged(ctx, inst, &s.res.Result)
}

func (s *appSATStrategy) Respond(ctx context.Context, inst *engine.Instance, x []bool) (string, bool, error) {
	y := s.eng.Orc.Query(x)
	if err := engine.InstallDIP(inst, x, y); err != nil {
		return "", false, err
	}
	if inst.Iterations%s.opts.QueryInterval != 0 {
		return "dip", false, nil
	}

	// Reconciliation round.
	s.res.Rounds++
	switch inst.KS.S.SolveCtx(ctx) {
	case sat.Sat:
	case sat.Unknown:
		if err := ctx.Err(); err != nil {
			return "", false, &engine.InterruptedError{Cause: err, Instance: inst.ID, Iterations: inst.Iterations}
		}
		fallthrough
	default:
		s.res.Failed = true
		s.res.Key = nil
		return "dead", true, nil
	}
	key := inst.KS.Key()
	locked := s.eng.Locked
	mismatches := 0
	var badX, badY [][]bool
	for q := 0; q < s.opts.RandomQueries; q++ {
		rx := locked.RandomInputs(s.rng)
		ry := s.eng.Orc.Query(rx)
		got := locked.Eval(rx, key, s.scratch)
		same := true
		for i := range ry {
			if got[i] != ry[i] {
				same = false
				break
			}
		}
		if !same {
			mismatches++
			badX = append(badX, rx)
			badY = append(badY, ry)
		}
	}
	s.res.FinalErrorRate = float64(mismatches) / float64(s.opts.RandomQueries)
	if s.res.FinalErrorRate <= s.opts.ErrorThreshold {
		s.res.EarlyExit = true
		s.res.Failed = false
		s.res.Key = key
		return "accept", true, nil
	}
	// Feed the failing patterns back as constraints.
	for i := range badX {
		if err := engine.InstallDIP(inst, badX[i], badY[i]); err != nil {
			return "", false, err
		}
	}
	return "dip", false, nil
}
