package attack

import (
	"fmt"
	"math/rand"
	"time"

	"statsat/internal/circuit"
	"statsat/internal/cnf"
	"statsat/internal/oracle"
	"statsat/internal/sat"
)

// AppSATOptions configures the AppSAT baseline (Shamsi et al.,
// HOST'17): the approximate SAT attack the paper's footnote 2 rules
// out for probabilistic oracles. AppSAT interleaves classic DIP
// iterations with random-query reconciliation rounds and terminates
// early once the candidate key's empirical error rate drops below a
// threshold, returning an *approximate* key.
type AppSATOptions struct {
	// QueryInterval is the number of DIP iterations between
	// reconciliation rounds (default 12).
	QueryInterval int
	// RandomQueries is the number of random patterns per round
	// (default 50).
	RandomQueries int
	// ErrorThreshold is the accepted fraction of mismatching random
	// patterns (default 0: exact agreement on the sample).
	ErrorThreshold float64
	// MaxIter bounds DIP iterations (0 = 1<<20).
	MaxIter int
	// Seed drives the random pattern generator.
	Seed int64
}

func (o *AppSATOptions) setDefaults() {
	if o.QueryInterval <= 0 {
		o.QueryInterval = 12
	}
	if o.RandomQueries <= 0 {
		o.RandomQueries = 50
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 1 << 20
	}
}

// AppSATResult extends Result with the reconciliation statistics.
type AppSATResult struct {
	Result
	// Rounds counts reconciliation rounds executed.
	Rounds int
	// FinalErrorRate is the last measured random-query error rate of
	// the returned key (0 when the attack converged via UNSAT).
	FinalErrorRate float64
	// EarlyExit is set when the error threshold triggered termination
	// before the miter went UNSAT (the "approximate key" case).
	EarlyExit bool
}

// AppSAT runs the approximate SAT attack. Against a deterministic
// oracle it recovers an exact or approximate key. Against a
// probabilistic oracle it inherits the classic attack's failure mode —
// noisy responses recorded as hard constraints drive the formula
// UNSAT — which is exactly why the paper develops StatSAT instead.
func AppSAT(locked *circuit.Circuit, orc oracle.Oracle, opts AppSATOptions) (*AppSATResult, error) {
	opts.setDefaults()
	if locked.NumPIs() != orc.NumInputs() || locked.NumPOs() != orc.NumOutputs() {
		return nil, fmt.Errorf("attack: netlist/oracle interface mismatch")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	start := time.Now()
	startQ := orc.Queries()
	m, err := cnf.NewMiter(locked)
	if err != nil {
		return nil, err
	}
	ks := cnf.NewKeySolver(locked)
	res := &AppSATResult{}
	scratch := make([]bool, locked.NumGates())

	finish := func(failed bool, key []bool) *AppSATResult {
		res.Failed = failed
		res.Key = key
		res.Duration = time.Since(start)
		res.OracleQueries = orc.Queries() - startQ
		return res
	}

	addConstraint := func(x, y []bool) error {
		outA, outB, err := m.AddDIPCopies(x)
		if err != nil {
			return err
		}
		for i := range y {
			cnf.Equal(m.S, outA[i], y[i])
			cnf.Equal(m.S, outB[i], y[i])
		}
		outs, err := ks.AddDIPCopy(x)
		if err != nil {
			return err
		}
		for i := range y {
			cnf.Equal(ks.S, outs[i], y[i])
		}
		return nil
	}

	for res.Iterations = 0; res.Iterations < opts.MaxIter; res.Iterations++ {
		status := m.S.Solve()
		if status == sat.Unknown {
			return nil, fmt.Errorf("attack: miter solve exceeded budget at iteration %d", res.Iterations)
		}
		if status == sat.Unsat {
			if ks.S.Solve() != sat.Sat {
				return finish(true, nil), nil
			}
			return finish(false, ks.Key()), nil
		}
		x := m.Input()
		y := orc.Query(x)
		if err := addConstraint(x, y); err != nil {
			return nil, err
		}

		// Reconciliation round (the AppSAT augmentation).
		if (res.Iterations+1)%opts.QueryInterval != 0 {
			continue
		}
		res.Rounds++
		if ks.S.Solve() != sat.Sat {
			return finish(true, nil), nil
		}
		key := ks.Key()
		mismatches := 0
		var badX, badY [][]bool
		for q := 0; q < opts.RandomQueries; q++ {
			rx := locked.RandomInputs(rng)
			ry := orc.Query(rx)
			got := locked.Eval(rx, key, scratch)
			same := true
			for i := range ry {
				if got[i] != ry[i] {
					same = false
					break
				}
			}
			if !same {
				mismatches++
				badX = append(badX, rx)
				badY = append(badY, ry)
			}
		}
		res.FinalErrorRate = float64(mismatches) / float64(opts.RandomQueries)
		if res.FinalErrorRate <= opts.ErrorThreshold {
			res.EarlyExit = true
			return finish(false, key), nil
		}
		// Feed the failing patterns back as constraints.
		for i := range badX {
			if err := addConstraint(badX[i], badY[i]); err != nil {
				return nil, err
			}
		}
	}
	return nil, ErrIterationLimit
}
