package attack

import (
	"context"
	"math/rand"
	"testing"

	"statsat/internal/gen"
	"statsat/internal/lock"
	"statsat/internal/metrics"
	"statsat/internal/oracle"
)

func TestStandardSATRecoversRLLKey(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	orig := gen.C17()
	l, err := lock.RLL(orig, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle.NewDeterministic(l.Circuit, l.Key)
	res, err := StandardSAT(context.Background(), l.Circuit, orc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed || res.Key == nil {
		t.Fatal("attack failed on deterministic oracle")
	}
	eq, err := metrics.KeysEquivalent(l.Circuit, res.Key, l.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("recovered key %v not equivalent to %v", res.Key, l.Key)
	}
	if res.Iterations < 1 {
		t.Error("expected at least one DIP iteration")
	}
	if res.OracleQueries != int64(res.Iterations) {
		t.Errorf("standard SAT should query once per iteration: %d vs %d",
			res.OracleQueries, res.Iterations)
	}
}

func TestStandardSATRecoversSLLKey(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	orig := gen.Random("s", 10, 150, 8, 5)
	l, err := lock.SLL(orig, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle.NewDeterministic(l.Circuit, l.Key)
	res, err := StandardSAT(context.Background(), l.Circuit, orc, 0)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := metrics.EquivalentToOriginal(l.Circuit, res.Key, orig)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("SLL key recovery failed")
	}
}

func TestStandardSATRecoversSFLLKey(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orig := gen.Random("f", 12, 100, 6, 9)
	l, err := lock.SFLLHD(orig, 6, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle.NewDeterministic(l.Circuit, l.Key)
	res, err := StandardSAT(context.Background(), l.Circuit, orc, 0)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := metrics.EquivalentToOriginal(l.Circuit, res.Key, orig)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("SFLL key recovery failed")
	}
	// SFLL-HD^0 with 6-bit key: iteration count should be on the order
	// of the keyspace (each DIP eliminates ~1 key) — at least a
	// handful, at most 2^6.
	if res.Iterations > 64 {
		t.Errorf("iterations %d exceed keyspace bound", res.Iterations)
	}
}

func TestStandardSATIterationLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	orig := gen.Random("f", 12, 100, 6, 10)
	l, err := lock.SFLLHD(orig, 8, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle.NewDeterministic(l.Circuit, l.Key)
	if _, err := StandardSAT(context.Background(), l.Circuit, orc, 2); err != ErrIterationLimit {
		t.Errorf("err = %v, want ErrIterationLimit", err)
	}
}

func TestStandardSATInterfaceMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l, _ := lock.RLL(gen.C17(), 3, rng)
	other := gen.Random("o", 4, 20, 3, 2)
	orc := oracle.NewDeterministic(other, nil)
	if _, err := StandardSAT(context.Background(), l.Circuit, orc, 0); err == nil {
		t.Error("want interface mismatch error")
	}
}

// TestStandardSATFailsOnNoisyOracle reproduces the paper's §III
// motivation: the classic attack breaks on a probabilistic oracle —
// it either goes UNSAT or returns a non-equivalent key.
func TestStandardSATFailsOnNoisyOracle(t *testing.T) {
	failures := 0
	const runs = 10
	for seed := int64(0); seed < runs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		bm, _ := gen.ByName("c880")
		orig := bm.BuildScaled(8)
		l, err := lock.RLL(orig, 12, rng)
		if err != nil {
			t.Fatal(err)
		}
		orc := oracle.NewProbabilistic(l.Circuit, l.Key, 0.05, seed+100)
		res, err := StandardSAT(context.Background(), l.Circuit, orc, 500)
		if err != nil {
			failures++ // iteration explosion also counts as failure
			continue
		}
		if res.Failed || res.Key == nil {
			failures++
			continue
		}
		eq, err := metrics.KeysEquivalent(l.Circuit, res.Key, l.Key)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			failures++
		}
	}
	if failures < runs/2 {
		t.Errorf("standard SAT succeeded on noisy oracle %d/%d times; expected mostly failure",
			runs-failures, runs)
	}
}

func TestPSATOnDeterministicOracleMatchesStandard(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	orig := gen.C17()
	l, err := lock.RLL(orig, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle.NewDeterministic(l.Circuit, l.Key)
	res, err := PSAT(context.Background(), l.Circuit, orc, PSATOptions{Ns: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed || res.Key == nil {
		t.Fatal("PSAT failed on deterministic oracle")
	}
	eq, _ := metrics.KeysEquivalent(l.Circuit, res.Key, l.Key)
	if !eq {
		t.Error("PSAT key wrong on deterministic oracle")
	}
	if res.OracleQueries != int64(res.Iterations*5) {
		t.Errorf("queries %d, want %d", res.OracleQueries, res.Iterations*5)
	}
}

func TestPSATLowNoiseSucceedsSometimes(t *testing.T) {
	// At very low eps, PSAT should complete at least occasionally
	// (paper Table V: c880 at 1.0% succeeded 20/20).
	succ := 0
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed + 40))
		bm, _ := gen.ByName("c880")
		orig := bm.BuildScaled(8)
		l, err := lock.RLL(orig, 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		orc := oracle.NewProbabilistic(l.Circuit, l.Key, 0.002, seed+200)
		res, err := PSAT(context.Background(), l.Circuit, orc, PSATOptions{Ns: 100, MaxIter: 300, Seed: seed})
		if err != nil || res.Failed || res.Key == nil {
			continue
		}
		if eq, _ := metrics.KeysEquivalent(l.Circuit, res.Key, l.Key); eq {
			succ++
		}
	}
	if succ == 0 {
		t.Error("PSAT never succeeded at eps=0.2%; baseline too weak")
	}
}

func TestPSATHighNoiseFails(t *testing.T) {
	// Table V: PSAT collapses as eps grows (0/20 at c880 2.0% in the
	// paper). With wide-output circuits the dominant pattern rarely
	// exists, committed patterns contain errors, and runs end UNSAT or
	// with wrong keys.
	fails := 0
	const runs = 6
	for seed := int64(0); seed < runs; seed++ {
		rng := rand.New(rand.NewSource(seed + 60))
		bm, _ := gen.ByName("c880")
		orig := bm.BuildScaled(8)
		l, err := lock.RLL(orig, 12, rng)
		if err != nil {
			t.Fatal(err)
		}
		orc := oracle.NewProbabilistic(l.Circuit, l.Key, 0.05, seed+300)
		res, err := PSAT(context.Background(), l.Circuit, orc, PSATOptions{Ns: 60, MaxIter: 400, Seed: seed})
		if err != nil || res.Failed || res.Key == nil {
			fails++
			continue
		}
		if eq, _ := metrics.KeysEquivalent(l.Circuit, res.Key, l.Key); !eq {
			fails++
		}
	}
	if fails < runs/2 {
		t.Errorf("PSAT succeeded %d/%d at eps=5%%; expected mostly failure", runs-fails, runs)
	}
}

func TestPSATDefaults(t *testing.T) {
	var o PSATOptions
	o.setDefaults()
	if o.Ns != 500 || o.DominanceThreshold != 0.5 || o.MaxIter != 1<<20 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestChoosePatternDominant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l, _ := lock.RLL(gen.C17(), 2, rng)
	det := oracle.NewDeterministic(l.Circuit, l.Key)
	x := []bool{true, false, true, false, true}
	want := det.Query(x)
	got := choosePattern(context.Background(), det, x, 9, 0.5, rng)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("dominant pattern should match deterministic output")
		}
	}
}

func BenchmarkStandardSATC880Scale8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bm, _ := gen.ByName("c880")
	orig := bm.BuildScaled(8)
	l, err := lock.RLL(orig, 16, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		orc := oracle.NewDeterministic(l.Circuit, l.Key)
		if _, err := StandardSAT(context.Background(), l.Circuit, orc, 0); err != nil {
			b.Fatal(err)
		}
	}
}
