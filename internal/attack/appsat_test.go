package attack

import (
	"context"
	"math/rand"
	"testing"

	"statsat/internal/gen"
	"statsat/internal/lock"
	"statsat/internal/metrics"
	"statsat/internal/oracle"
)

func TestAppSATDeterministicRecoversKey(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	orig := gen.Random("a", 10, 120, 8, 7)
	l, err := lock.RLL(orig, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle.NewDeterministic(l.Circuit, l.Key)
	res, err := AppSAT(context.Background(), l.Circuit, orc, AppSATOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed || res.Key == nil {
		t.Fatal("AppSAT failed on deterministic oracle")
	}
	eq, err := metrics.KeysEquivalent(l.Circuit, res.Key, l.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("AppSAT key not equivalent on deterministic oracle")
	}
}

func TestAppSATEarlyExitOnSFLL(t *testing.T) {
	// SFLL-HD is the classic compound-lock scenario AppSAT targets: an
	// approximate key (wrong only on the stripped cubes) passes random
	// queries overwhelmingly. With a generous threshold AppSAT should
	// usually exit early with a low-error key.
	rng := rand.New(rand.NewSource(3))
	orig := gen.Random("s", 24, 200, 10, 9)
	l, err := lock.SFLLHD(orig, 12, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle.NewDeterministic(l.Circuit, l.Key)
	res, err := AppSAT(context.Background(), l.Circuit, orc, AppSATOptions{
		QueryInterval:  5,
		RandomQueries:  30,
		ErrorThreshold: 0.05,
		MaxIter:        200,
		Seed:           4,
	})
	if err == ErrIterationLimit {
		t.Skip("no early exit within budget on this seed")
	}
	if err != nil {
		t.Fatal(err)
	}
	if res.Key == nil {
		t.Fatal("no key returned")
	}
	// The returned key must be approximately correct: at most ~5% of
	// random patterns mismatch (the stripped-cube fraction is 2^-12).
	errRate := sampleErrorRate(l, res.Key, 400)
	if errRate > 0.1 {
		t.Errorf("AppSAT approximate key error rate %.3f too high", errRate)
	}
	if res.Rounds == 0 {
		t.Error("no reconciliation rounds ran")
	}
}

func sampleErrorRate(l *lock.Locked, key []bool, n int) float64 {
	rng := rand.New(rand.NewSource(99))
	bad := 0
	for i := 0; i < n; i++ {
		x := l.Circuit.RandomInputs(rng)
		a := l.Circuit.Eval(x, key, nil)
		b := l.Circuit.Eval(x, l.Key, nil)
		for j := range a {
			if a[j] != b[j] {
				bad++
				break
			}
		}
	}
	return float64(bad) / float64(n)
}

// TestAppSATFailsOnNoisyOracle validates the paper's footnote 2:
// AppSAT requires a deterministic oracle; under the probabilistic
// error model its hard constraints go inconsistent or its key is wrong.
func TestAppSATFailsOnNoisyOracle(t *testing.T) {
	failures := 0
	const runs = 8
	for seed := int64(0); seed < runs; seed++ {
		rng := rand.New(rand.NewSource(seed + 10))
		bm, _ := gen.ByName("c880")
		orig := bm.BuildScaled(8)
		l, err := lock.RLL(orig, 12, rng)
		if err != nil {
			t.Fatal(err)
		}
		orc := oracle.NewProbabilistic(l.Circuit, l.Key, 0.05, seed+500)
		res, err := AppSAT(context.Background(), l.Circuit, orc, AppSATOptions{
			QueryInterval: 6, RandomQueries: 20, MaxIter: 400, Seed: seed,
		})
		if err != nil || res.Failed || res.Key == nil {
			failures++
			continue
		}
		eq, err := metrics.KeysEquivalent(l.Circuit, res.Key, l.Key)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			failures++
		}
	}
	if failures < runs/2 {
		t.Errorf("AppSAT succeeded %d/%d on a noisy oracle; footnote 2 predicts failure", runs-failures, runs)
	}
}

func TestAppSATDefaults(t *testing.T) {
	var o AppSATOptions
	o.setDefaults()
	if o.QueryInterval != 12 || o.RandomQueries != 50 || o.MaxIter != 1<<20 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestAppSATInterfaceMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l, _ := lock.RLL(gen.C17(), 3, rng)
	other := gen.Random("o", 4, 20, 3, 2)
	orc := oracle.NewDeterministic(other, nil)
	if _, err := AppSAT(context.Background(), l.Circuit, orc, AppSATOptions{}); err == nil {
		t.Error("want interface mismatch error")
	}
}
