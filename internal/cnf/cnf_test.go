package cnf

import (
	"context"
	"math/rand"
	"testing"

	"statsat/internal/circuit"
	"statsat/internal/gen"
	"statsat/internal/lock"
	"statsat/internal/sat"
)

// randomCircuit builds a random valid circuit for property tests.
func randomCircuit(seed int64, nIn, nKey, nGates, nOut int) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New("rc")
	for i := 0; i < nIn; i++ {
		c.AddInput("")
	}
	for i := 0; i < nKey; i++ {
		c.AddKey("")
	}
	types := []circuit.GateType{
		circuit.And, circuit.Nand, circuit.Or, circuit.Nor,
		circuit.Xor, circuit.Xnor, circuit.Not, circuit.Buf, circuit.Mux,
	}
	for i := 0; i < nGates; i++ {
		ty := types[rng.Intn(len(types))]
		n := len(c.Gates)
		switch ty {
		case circuit.Not, circuit.Buf:
			c.AddGate(ty, "", rng.Intn(n))
		case circuit.Mux:
			c.AddGate(ty, "", rng.Intn(n), rng.Intn(n), rng.Intn(n))
		default:
			c.AddGate(ty, "", rng.Intn(n), rng.Intn(n))
		}
	}
	for i := 0; i < nOut; i++ {
		c.AddOutput(nIn+nKey+rng.Intn(nGates), "")
	}
	return c
}

// solveWithInputs fixes the copy's free PI/key literals to the given
// values and returns the modelled outputs.
func solveWithInputs(t *testing.T, s *sat.Solver, cp *Copy, pi, key []bool) []bool {
	t.Helper()
	var assumps []sat.Lit
	for i, w := range cp.PIs {
		if w.Const {
			if w.Val != pi[i] {
				t.Fatalf("PI %d folded to constant %v, cannot assume %v", i, w.Val, pi[i])
			}
			continue
		}
		assumps = append(assumps, mkAssump(w.Lit, pi[i]))
	}
	for i, w := range cp.Keys {
		if w.Const {
			continue
		}
		assumps = append(assumps, mkAssump(w.Lit, key[i]))
	}
	if got := s.Solve(assumps...); got != sat.Sat {
		t.Fatalf("copy unsat under input assignment: %v", got)
	}
	outs := make([]bool, len(cp.Outs))
	for i, w := range cp.Outs {
		if w.Const {
			outs[i] = w.Val
		} else {
			outs[i] = s.ModelLit(w.Lit)
		}
	}
	return outs
}

func mkAssump(l sat.Lit, val bool) sat.Lit {
	if val {
		return l
	}
	return l.Not()
}

// TestEncodeMatchesSimulation is the central consistency property:
// for random circuits and random input/key vectors, the CNF encoding
// evaluates exactly like the simulator.
func TestEncodeMatchesSimulation(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		c := randomCircuit(seed, 6, 3, 40, 5)
		s := sat.New()
		cp, err := Encode(s, c, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rng := rand.New(rand.NewSource(seed + 1000))
		for trial := 0; trial < 20; trial++ {
			pi := c.RandomInputs(rng)
			key := c.RandomKey(rng)
			want := c.Eval(pi, key, nil)
			got := solveWithInputs(t, s, cp, pi, key)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d trial %d: output %d = %v, want %v", seed, trial, i, got[i], want[i])
				}
			}
		}
	}
}

// TestEncodeFixedPIsMatchesSimulation checks the constant-folding path.
func TestEncodeFixedPIsMatchesSimulation(t *testing.T) {
	for seed := int64(20); seed < 30; seed++ {
		c := randomCircuit(seed, 6, 3, 40, 5)
		rng := rand.New(rand.NewSource(seed))
		pi := c.RandomInputs(rng)
		s := sat.New()
		cp, err := Encode(s, c, Options{FixedPIs: pi})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			key := c.RandomKey(rng)
			want := c.Eval(pi, key, nil)
			got := solveWithInputs(t, s, cp, pi, key)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d: fixed-PI output %d mismatch", seed, i)
				}
			}
		}
	}
}

func TestEncodeFixedKeys(t *testing.T) {
	c := randomCircuit(3, 5, 4, 30, 4)
	rng := rand.New(rand.NewSource(5))
	key := c.RandomKey(rng)
	s := sat.New()
	cp, err := Encode(s, c, Options{FixedKeys: key})
	if err != nil {
		t.Fatal(err)
	}
	pi := c.RandomInputs(rng)
	want := c.Eval(pi, key, nil)
	got := solveWithInputs(t, s, cp, pi, key)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fixed-key output %d mismatch", i)
		}
	}
}

func TestEncodeOptionValidation(t *testing.T) {
	c := randomCircuit(1, 4, 2, 10, 2)
	s := sat.New()
	if _, err := Encode(s, c, Options{FixedPIs: []bool{true}}); err == nil {
		t.Error("want error for short FixedPIs")
	}
	if _, err := Encode(s, c, Options{PILits: []sat.Lit{0}}); err == nil {
		t.Error("want error for short PILits")
	}
	if _, err := Encode(s, c, Options{KeyLits: []sat.Lit{0}}); err == nil {
		t.Error("want error for short KeyLits")
	}
	if _, err := Encode(s, c, Options{FixedKeys: []bool{true}}); err == nil {
		t.Error("want error for short FixedKeys")
	}
}

func TestWireNot(t *testing.T) {
	if ConstWire(true).Not().Val {
		t.Error("¬1 should be 0")
	}
	s := sat.New()
	l := FreshLit(s)
	if LitWire(l).Not().Lit != l.Not() {
		t.Error("literal negation broken")
	}
}

func TestAndFolding(t *testing.T) {
	s := sat.New()
	a := LitWire(FreshLit(s))
	if w := And(s, a, ConstWire(false)); !w.Const || w.Val {
		t.Error("x ∧ 0 should fold to 0")
	}
	if w := And(s, a, ConstWire(true)); w.Const || w.Lit != a.Lit {
		t.Error("x ∧ 1 should fold to x")
	}
	if w := And(s); !w.Const || !w.Val {
		t.Error("empty conjunction is 1")
	}
}

func TestOrFolding(t *testing.T) {
	s := sat.New()
	a := LitWire(FreshLit(s))
	if w := Or(s, a, ConstWire(true)); !w.Const || !w.Val {
		t.Error("x ∨ 1 should fold to 1")
	}
	if w := Or(s, a, ConstWire(false)); w.Const || w.Lit != a.Lit {
		t.Error("x ∨ 0 should fold to x")
	}
}

func TestXorFolding(t *testing.T) {
	s := sat.New()
	a := LitWire(FreshLit(s))
	if w := Xor2(s, a, a); !w.Const || w.Val {
		t.Error("x ⊕ x = 0")
	}
	if w := Xor2(s, a, a.Not()); !w.Const || !w.Val {
		t.Error("x ⊕ ¬x = 1")
	}
	if w := Xor2(s, a, ConstWire(true)); w.Const || w.Lit != a.Lit.Not() {
		t.Error("x ⊕ 1 = ¬x")
	}
}

func TestMuxFolding(t *testing.T) {
	s := sat.New()
	a := LitWire(FreshLit(s))
	b := LitWire(FreshLit(s))
	if w := Mux(s, ConstWire(false), a, b); w.Lit != a.Lit {
		t.Error("mux(0,a,b) = a")
	}
	if w := Mux(s, ConstWire(true), a, b); w.Lit != b.Lit {
		t.Error("mux(1,a,b) = b")
	}
	sel := LitWire(FreshLit(s))
	if w := Mux(s, sel, ConstWire(false), ConstWire(true)); w.Lit != sel.Lit {
		t.Error("mux(s,0,1) = s")
	}
	if w := Mux(s, sel, ConstWire(true), ConstWire(false)); w.Lit != sel.Lit.Not() {
		t.Error("mux(s,1,0) = ¬s")
	}
	if w := Mux(s, sel, a, a); w.Lit != a.Lit {
		t.Error("mux(s,a,a) = a")
	}
}

func TestEqualOnConstants(t *testing.T) {
	s := sat.New()
	if !Equal(s, ConstWire(true), true) {
		t.Error("1 == 1 should succeed")
	}
	if Equal(s, ConstWire(true), false) {
		t.Error("1 == 0 should fail")
	}
	if s.Okay() {
		t.Error("solver must be poisoned by contradictory Equal")
	}
}

func TestNotEqualAnyAllConstEqual(t *testing.T) {
	s := sat.New()
	a := []Wire{ConstWire(true), ConstWire(false)}
	if NotEqualAny(s, a, a) {
		t.Error("identical constant vectors can never differ")
	}
	if s.Okay() {
		t.Error("solver should be inconsistent")
	}
}

func TestNotEqualAnyStructuralDiff(t *testing.T) {
	s := sat.New()
	a := []Wire{ConstWire(true)}
	b := []Wire{ConstWire(false)}
	if !NotEqualAny(s, a, b) {
		t.Error("constant difference should trivially satisfy")
	}
	if !s.Okay() {
		t.Error("solver should stay consistent")
	}
}

// xorLock builds a tiny XOR-locked circuit whose correct key is known.
func xorLock(t *testing.T) (*circuit.Circuit, []bool) {
	t.Helper()
	c := circuit.New("tiny")
	a := c.AddInput("a")
	b := c.AddInput("b")
	k0 := c.AddKey("keyinput0")
	k1 := c.AddKey("keyinput1")
	g1 := c.AddGate(circuit.And, "g1", a, b)
	g2 := c.AddGate(circuit.Xor, "g2", g1, k0) // correct k0 = 0
	g3 := c.AddGate(circuit.Xnor, "g3", g2, k1)
	g4 := c.AddGate(circuit.Not, "g4", g3) // correct k1 = 1 makes g4 = and(a,b)... verify below
	c.AddOutput(g4, "y")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Find the key that makes c equivalent to AND(a,b) by brute force.
	for kbits := 0; kbits < 4; kbits++ {
		key := []bool{kbits&1 == 1, kbits&2 == 2}
		ok := true
		for m := 0; m < 4; m++ {
			pi := []bool{m&1 == 1, m&2 == 2}
			if c.Eval(pi, key, nil)[0] != (pi[0] && pi[1]) {
				ok = false
				break
			}
		}
		if ok {
			return c, key
		}
	}
	t.Fatal("no correct key exists for the test circuit")
	return nil, nil
}

func TestMiterFindsDistinguishingInput(t *testing.T) {
	c, correct := xorLock(t)
	m, err := NewMiter(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.S.Solve() != sat.Sat {
		t.Fatal("fresh miter must be satisfiable (wrong keys exist)")
	}
	x := m.Input()
	ka, kb := m.KeyAModel(), m.KeyBModel()
	outA := c.Eval(x, ka, nil)
	outB := c.Eval(x, kb, nil)
	same := true
	for i := range outA {
		if outA[i] != outB[i] {
			same = false
		}
	}
	if same {
		t.Errorf("DI %v does not distinguish keys %v and %v", x, ka, kb)
	}
	_ = correct
}

func TestMiterFullAttackLoop(t *testing.T) {
	// Run the complete classic SAT attack on the tiny locked circuit.
	c, correct := xorLock(t)
	m, err := NewMiter(c)
	if err != nil {
		t.Fatal(err)
	}
	ks := NewKeySolver(c)
	for iter := 0; iter < 20; iter++ {
		if m.S.Solve() != sat.Sat {
			// No more DIs: extract key.
			if ks.S.Solve() != sat.Sat {
				t.Fatal("key solver unsat at convergence")
			}
			key := ks.Key()
			for mInt := 0; mInt < 4; mInt++ {
				pi := []bool{mInt&1 == 1, mInt&2 == 2}
				if c.Eval(pi, key, nil)[0] != c.Eval(pi, correct, nil)[0] {
					t.Fatalf("recovered key %v not equivalent to %v", key, correct)
				}
			}
			return
		}
		x := m.Input()
		y := c.Eval(x, correct, nil) // oracle
		outA, outB, err := m.AddDIPCopies(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range y {
			Equal(m.S, outA[i], y[i])
			Equal(m.S, outB[i], y[i])
		}
		outs, err := ks.AddDIPCopy(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range y {
			Equal(ks.S, outs[i], y[i])
		}
	}
	t.Fatal("attack did not converge in 20 iterations")
}

func TestKeySolverEnumerateKeys(t *testing.T) {
	c, _ := xorLock(t)
	ks := NewKeySolver(c)
	keys := ks.EnumerateKeys(context.Background(), 10)
	if len(keys) != 4 {
		t.Fatalf("unconstrained 2-bit keyspace: got %d keys, want 4", len(keys))
	}
	seen := map[[2]bool]bool{}
	for _, k := range keys {
		kk := [2]bool{k[0], k[1]}
		if seen[kk] {
			t.Fatalf("duplicate key %v enumerated", k)
		}
		seen[kk] = true
	}
	// Enumeration must not poison future solving.
	if ks.S.Solve() != sat.Sat {
		t.Error("key solver unusable after enumeration")
	}
	// Second enumeration still sees all keys (blocking clauses retired).
	if again := ks.EnumerateKeys(context.Background(), 10); len(again) != 4 {
		t.Errorf("second enumeration found %d keys, want 4", len(again))
	}
}

func TestKeySolverEnumerateZero(t *testing.T) {
	c, _ := xorLock(t)
	ks := NewKeySolver(c)
	if keys := ks.EnumerateKeys(context.Background(), 0); keys != nil {
		t.Error("max=0 should return nil")
	}
}

func TestMiterCloneIndependence(t *testing.T) {
	c, correct := xorLock(t)
	m, err := NewMiter(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.S.Solve() != sat.Sat {
		t.Fatal("miter should be sat")
	}
	x := m.Input()
	y := c.Eval(x, correct, nil)
	m2 := m.Clone()
	// Constrain only the original.
	outA, outB, _ := m.AddDIPCopies(x)
	for i := range y {
		Equal(m.S, outA[i], y[i])
		Equal(m.S, outB[i], y[i])
	}
	if m2.S.NumClauses() == m.S.NumClauses() {
		t.Error("clone should not see the original's new clauses")
	}
	if m2.S.Solve() != sat.Sat {
		t.Error("clone must still be satisfiable")
	}
}

func TestEncodeConstGateTypes(t *testing.T) {
	c := circuit.New("k")
	z := c.AddGate(circuit.Const0, "z")
	o := c.AddGate(circuit.Const1, "o")
	y := c.AddGate(circuit.Nand, "y", z, o)
	c.AddOutput(y, "")
	s := sat.New()
	cp, err := Encode(s, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Outs[0].Const || !cp.Outs[0].Val {
		t.Errorf("NAND(0,1) should fold to constant 1, got %+v", cp.Outs[0])
	}
}

func BenchmarkEncodeRandom500(b *testing.B) {
	c := randomCircuit(1, 30, 16, 500, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sat.New()
		if _, err := Encode(s, c, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMiterBuild500(b *testing.B) {
	c := randomCircuit(1, 30, 16, 500, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewMiter(c); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEncodeShareCacheSoundness: two copies over shared PI literals
// and a shared cone cache must each still evaluate exactly like the
// simulator under independent keys — sharing may only merge gates
// that genuinely compute the same function.
func TestEncodeShareCacheSoundness(t *testing.T) {
	for seed := int64(50); seed < 60; seed++ {
		c := randomCircuit(seed, 6, 3, 60, 5)
		s := sat.New()
		pis := FreshLits(s, c.NumPIs())
		keyA := FreshLits(s, c.NumKeys())
		keyB := FreshLits(s, c.NumKeys())
		share := NewShareCache()
		ca, err := Encode(s, c, Options{PILits: pis, KeyLits: keyA, Share: share})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cb, err := Encode(s, c, Options{PILits: pis, KeyLits: keyB, Share: share})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rng := rand.New(rand.NewSource(seed + 2000))
		for trial := 0; trial < 12; trial++ {
			pi := c.RandomInputs(rng)
			ka := c.RandomKey(rng)
			kb := c.RandomKey(rng)
			var assumps []sat.Lit
			for i, l := range pis {
				assumps = append(assumps, mkAssump(l, pi[i]))
			}
			for i, l := range keyA {
				assumps = append(assumps, mkAssump(l, ka[i]))
			}
			for i, l := range keyB {
				assumps = append(assumps, mkAssump(l, kb[i]))
			}
			if got := s.Solve(assumps...); got != sat.Sat {
				t.Fatalf("seed %d trial %d: unsat under full assignment: %v", seed, trial, got)
			}
			wantA := c.Eval(pi, ka, nil)
			wantB := c.Eval(pi, kb, nil)
			for i := range wantA {
				gotA, gotB := wireVal(s, ca.Outs[i]), wireVal(s, cb.Outs[i])
				if gotA != wantA[i] || gotB != wantB[i] {
					t.Fatalf("seed %d trial %d output %d: copyA %v/%v copyB %v/%v",
						seed, trial, i, gotA, wantA[i], gotB, wantB[i])
				}
			}
		}
	}
}

func wireVal(s *sat.Solver, w Wire) bool {
	if w.Const {
		return w.Val
	}
	return s.ModelLit(w.Lit)
}

// TestShareCacheSolverGuard: reusing a cache in a different solver
// would splice dangling literals into the new formula; it must panic.
func TestShareCacheSolverGuard(t *testing.T) {
	c := randomCircuit(3, 4, 2, 20, 3)
	share := NewShareCache()
	s1 := sat.New()
	if _, err := Encode(s1, c, Options{Share: share}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on cross-solver cache reuse")
		}
	}()
	s2 := sat.New()
	Encode(s2, c, Options{Share: share}) //nolint:errcheck // panics first
}

// TestMiterSharingReducesVars measures the simplified, shared-cone
// miter on the c880 stand-in locked with 32 key bits (Table V's
// configuration). The new NewMiter (structural-hash rewriting +
// shared key-independent cone + polarity-dual variable reuse) must
// allocate at least 30% fewer solver variables than the pre-sharing
// construction: two independent encodings of the raw netlist, as the
// encoder produced before ShareCache existed. The new miter must
// also still drive a noiseless DIP loop to convergence.
func TestMiterSharingReducesVars(t *testing.T) {
	bm, ok := gen.ByName("c880")
	if !ok {
		t.Fatal("c880 benchmark missing")
	}
	orig := bm.Build()
	lk, err := lock.RLL(orig, 32, rand.New(rand.NewSource(880)))
	if err != nil {
		t.Fatal(err)
	}
	locked := lk.Circuit

	// New encoding: NewMiter (simplify + shared cone).
	m, err := NewMiter(locked)
	if err != nil {
		t.Fatal(err)
	}
	sharedVars := m.S.NumVars()

	// Reference encoding: the miter as built before this
	// optimisation — raw netlist, two full independent copies.
	s := sat.New()
	pis := FreshLits(s, locked.NumPIs())
	ca, err := Encode(s, locked, Options{PILits: pis, KeyLits: FreshLits(s, locked.NumKeys())})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Encode(s, locked, Options{PILits: pis, KeyLits: FreshLits(s, locked.NumKeys())})
	if err != nil {
		t.Fatal(err)
	}
	NotEqualAny(s, ca.Outs, cb.Outs)
	refVars := s.NumVars()

	t.Logf("c880/RLL32 miter: new=%d vars, ref=%d vars, %.1f%% reduction",
		sharedVars, refVars, 100*float64(refVars-sharedVars)/float64(refVars))
	if 10*sharedVars > 7*refVars {
		t.Errorf("sharing saved too little: %d vs %d vars (want ≥30%% reduction)",
			sharedVars, refVars)
	}

	// The leaner miter must still converge on the same workload.
	oracle := func(x []bool) []bool { return locked.Eval(x, lk.Key, nil) }
	const maxIter = 400
	iters := 0
	for ; iters < maxIter && m.S.Solve() == sat.Sat; iters++ {
		x := m.Input()
		y := oracle(x)
		outA, outB, err := m.AddDIPCopies(x)
		if err != nil {
			t.Fatal(err)
		}
		for j := range y {
			Equal(m.S, outA[j], y[j])
			Equal(m.S, outB[j], y[j])
		}
	}
	if iters == maxIter {
		t.Fatalf("attack did not converge within %d iterations", maxIter)
	}
	t.Logf("noiseless DIP loop converged after %d DIPs, %d vars total", iters, m.S.NumVars())
}

// TestMiterSharedAttackLoop re-runs the c17 attack loop of
// TestMiterFullAttackLoop semantics on a locked random circuit to
// check end-to-end behaviour with shared cones and DIP-copy caches:
// the recovered key must be functionally correct.
func TestMiterSharedAttackLoop(t *testing.T) {
	bm := gen.Benchmark{Name: "t", Inputs: 10, Gates: 120, Outputs: 6, Seed: 7}
	orig := bm.Build()
	lk, err := lock.RLL(orig, 8, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	locked := lk.Circuit
	m, err := NewMiter(locked)
	if err != nil {
		t.Fatal(err)
	}
	ks := NewKeySolver(locked)
	oracle := func(x []bool) []bool { return locked.Eval(x, lk.Key, nil) }
	for iter := 0; iter < 200; iter++ {
		if m.S.Solve() != sat.Sat {
			break // no distinguishing input left
		}
		x := m.Input()
		y := oracle(x)
		outA, outB, err := m.AddDIPCopies(x)
		if err != nil {
			t.Fatal(err)
		}
		outs, err := ks.AddDIPCopy(x)
		if err != nil {
			t.Fatal(err)
		}
		for j := range y {
			Equal(m.S, outA[j], y[j])
			Equal(m.S, outB[j], y[j])
			Equal(ks.S, outs[j], y[j])
		}
	}
	if ks.S.Solve() != sat.Sat {
		t.Fatal("key solver unsat after attack loop")
	}
	key := ks.Key()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		x := locked.RandomInputs(rng)
		want := oracle(x)
		got := locked.Eval(x, key, nil)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("recovered key wrong on input %v output %d", x, i)
			}
		}
	}
}
