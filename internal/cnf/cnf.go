// Package cnf translates gate-level circuits into CNF for the SAT
// solver (Tseitin transformation with constant folding) and builds the
// miter formulations used by the SAT-attack family.
//
// Wires are represented symbolically: a wire is either a constant or a
// literal over solver variables. Constant folding matters here because
// the attacks hardwire distinguishing inputs into per-DIP circuit
// copies; folding shrinks those copies substantially.
package cnf

import (
	"context"
	"fmt"

	"statsat/internal/circuit"
	"statsat/internal/sat"
)

// Wire is a symbolic circuit wire: either a compile-time constant or a
// solver literal.
type Wire struct {
	Const bool
	Val   bool    // meaningful when Const
	Lit   sat.Lit // meaningful when !Const
}

// ConstWire returns a constant wire.
func ConstWire(v bool) Wire { return Wire{Const: true, Val: v} }

// LitWire wraps a literal as a wire.
func LitWire(l sat.Lit) Wire { return Wire{Lit: l} }

// Not returns the complement wire (free: flips const or literal).
func (w Wire) Not() Wire {
	if w.Const {
		return ConstWire(!w.Val)
	}
	return LitWire(w.Lit.Not())
}

// FreshLit allocates a new variable and returns its positive literal.
func FreshLit(s *sat.Solver) sat.Lit { return sat.PosLit(s.NewVar()) }

// FreshLits allocates n new variables.
func FreshLits(s *sat.Solver, n int) []sat.Lit {
	out := make([]sat.Lit, n)
	for i := range out {
		out[i] = FreshLit(s)
	}
	return out
}

// Options controls how Encode instantiates a circuit copy.
type Options struct {
	// FixedPIs, if non-nil, hardwires the primary inputs to constants
	// (the copy then has no PI variables). Length must equal NumPIs.
	FixedPIs []bool
	// PILits, if non-nil, reuses existing literals for the PIs
	// (shared-input miter copies). Ignored when FixedPIs is set.
	PILits []sat.Lit
	// KeyLits, if non-nil, reuses existing literals for the keys.
	KeyLits []sat.Lit
	// FixedKeys, if non-nil, hardwires the key inputs to constants.
	FixedKeys []bool
}

// Copy is one CNF instantiation of a circuit.
type Copy struct {
	PIs  []Wire
	Keys []Wire
	Outs []Wire
}

// Encode instantiates circuit c into solver s per opts and returns the
// copy's interface wires.
func Encode(s *sat.Solver, c *circuit.Circuit, opts Options) (*Copy, error) {
	if opts.FixedPIs != nil && len(opts.FixedPIs) != c.NumPIs() {
		return nil, fmt.Errorf("cnf: FixedPIs length %d, want %d", len(opts.FixedPIs), c.NumPIs())
	}
	if opts.PILits != nil && len(opts.PILits) != c.NumPIs() {
		return nil, fmt.Errorf("cnf: PILits length %d, want %d", len(opts.PILits), c.NumPIs())
	}
	if opts.KeyLits != nil && len(opts.KeyLits) != c.NumKeys() {
		return nil, fmt.Errorf("cnf: KeyLits length %d, want %d", len(opts.KeyLits), c.NumKeys())
	}
	if opts.FixedKeys != nil && len(opts.FixedKeys) != c.NumKeys() {
		return nil, fmt.Errorf("cnf: FixedKeys length %d, want %d", len(opts.FixedKeys), c.NumKeys())
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}

	wires := make([]Wire, c.NumGates())
	cp := &Copy{
		PIs:  make([]Wire, c.NumPIs()),
		Keys: make([]Wire, c.NumKeys()),
		Outs: make([]Wire, c.NumPOs()),
	}
	for i, id := range c.PIs {
		switch {
		case opts.FixedPIs != nil:
			wires[id] = ConstWire(opts.FixedPIs[i])
		case opts.PILits != nil:
			wires[id] = LitWire(opts.PILits[i])
		default:
			wires[id] = LitWire(FreshLit(s))
		}
		cp.PIs[i] = wires[id]
	}
	for i, id := range c.Keys {
		switch {
		case opts.FixedKeys != nil:
			wires[id] = ConstWire(opts.FixedKeys[i])
		case opts.KeyLits != nil:
			wires[id] = LitWire(opts.KeyLits[i])
		default:
			wires[id] = LitWire(FreshLit(s))
		}
		cp.Keys[i] = wires[id]
	}

	var fan []Wire
	for _, id := range order {
		g := &c.Gates[id]
		switch g.Type {
		case circuit.Input, circuit.Key:
			continue
		case circuit.Const0:
			wires[id] = ConstWire(false)
			continue
		case circuit.Const1:
			wires[id] = ConstWire(true)
			continue
		}
		fan = fan[:0]
		for _, f := range g.Fanin {
			fan = append(fan, wires[f])
		}
		w, err := encodeGate(s, g.Type, fan)
		if err != nil {
			return nil, fmt.Errorf("cnf: gate %d (%s): %w", id, g.Name, err)
		}
		wires[id] = w
	}
	for i, po := range c.POs {
		cp.Outs[i] = wires[po]
	}
	return cp, nil
}

func encodeGate(s *sat.Solver, t circuit.GateType, fan []Wire) (Wire, error) {
	switch t {
	case circuit.Buf:
		return fan[0], nil
	case circuit.Not:
		return fan[0].Not(), nil
	case circuit.And:
		return And(s, fan...), nil
	case circuit.Nand:
		return And(s, fan...).Not(), nil
	case circuit.Or:
		return Or(s, fan...), nil
	case circuit.Nor:
		return Or(s, fan...).Not(), nil
	case circuit.Xor:
		return XorN(s, fan...), nil
	case circuit.Xnor:
		return XorN(s, fan...).Not(), nil
	case circuit.Mux:
		return Mux(s, fan[0], fan[1], fan[2]), nil
	}
	return Wire{}, fmt.Errorf("unsupported gate type %v", t)
}

// And encodes an n-ary conjunction with constant folding.
func And(s *sat.Solver, in ...Wire) Wire {
	lits := make([]sat.Lit, 0, len(in))
	for _, w := range in {
		if w.Const {
			if !w.Val {
				return ConstWire(false)
			}
			continue
		}
		lits = append(lits, w.Lit)
	}
	switch len(lits) {
	case 0:
		return ConstWire(true)
	case 1:
		return LitWire(lits[0])
	}
	z := FreshLit(s)
	// z → each lit; (all lits) → z.
	big := make([]sat.Lit, 0, len(lits)+1)
	for _, l := range lits {
		s.AddClause(z.Not(), l)
		big = append(big, l.Not())
	}
	big = append(big, z)
	s.AddClause(big...)
	return LitWire(z)
}

// Or encodes an n-ary disjunction with constant folding.
func Or(s *sat.Solver, in ...Wire) Wire {
	neg := make([]Wire, len(in))
	for i, w := range in {
		neg[i] = w.Not()
	}
	return And(s, neg...).Not()
}

// Xor2 encodes a binary XOR with constant folding.
func Xor2(s *sat.Solver, a, b Wire) Wire {
	if a.Const {
		if a.Val {
			return b.Not()
		}
		return b
	}
	if b.Const {
		if b.Val {
			return a.Not()
		}
		return a
	}
	if a.Lit == b.Lit {
		return ConstWire(false)
	}
	if a.Lit == b.Lit.Not() {
		return ConstWire(true)
	}
	z := FreshLit(s)
	s.AddClause(z.Not(), a.Lit, b.Lit)
	s.AddClause(z.Not(), a.Lit.Not(), b.Lit.Not())
	s.AddClause(z, a.Lit.Not(), b.Lit)
	s.AddClause(z, a.Lit, b.Lit.Not())
	return LitWire(z)
}

// XorN encodes an n-ary parity.
func XorN(s *sat.Solver, in ...Wire) Wire {
	acc := ConstWire(false)
	for _, w := range in {
		acc = Xor2(s, acc, w)
	}
	return acc
}

// Mux encodes sel ? b : a (matching circuit.Mux fanin order sel,a,b).
func Mux(s *sat.Solver, sel, a, b Wire) Wire {
	if sel.Const {
		if sel.Val {
			return b
		}
		return a
	}
	if a.Const && b.Const {
		switch {
		case a.Val == b.Val:
			return a
		case b.Val: // 0 when sel=0, 1 when sel=1
			return sel
		default:
			return sel.Not()
		}
	}
	if !a.Const && !b.Const && a.Lit == b.Lit {
		return a
	}
	z := FreshLit(s)
	// sel=0 → z=a ; sel=1 → z=b (with const specialisation).
	implyEq := func(cond sat.Lit, w Wire) {
		if w.Const {
			if w.Val {
				s.AddClause(cond.Not(), z)
			} else {
				s.AddClause(cond.Not(), z.Not())
			}
			return
		}
		s.AddClause(cond.Not(), w.Lit.Not(), z)
		s.AddClause(cond.Not(), w.Lit, z.Not())
	}
	implyEq(sel.Lit, b)       // sel=1 → z=b
	implyEq(sel.Lit.Not(), a) // sel=0 → z=a
	return LitWire(z)
}

// Equal adds clauses forcing w == val; it returns false if that is
// already contradictory (w is the opposite constant).
func Equal(s *sat.Solver, w Wire, val bool) bool {
	if w.Const {
		if w.Val != val {
			// Record inconsistency in the solver itself.
			s.AddClause()
			return false
		}
		return true
	}
	if val {
		return s.AddClause(w.Lit)
	}
	return s.AddClause(w.Lit.Not())
}

// NotEqualAny adds the constraint that at least one pair (a_i, b_i)
// differs. It returns false if the constraint is vacuously
// unsatisfiable (all pairs identical constants).
func NotEqualAny(s *sat.Solver, a, b []Wire) bool {
	if len(a) != len(b) {
		panic("cnf: NotEqualAny length mismatch")
	}
	var disj []sat.Lit
	for i := range a {
		d := Xor2(s, a[i], b[i])
		if d.Const {
			if d.Val {
				return true // a pair differs structurally: constraint trivially holds
			}
			continue
		}
		disj = append(disj, d.Lit)
	}
	if len(disj) == 0 {
		s.AddClause()
		return false
	}
	return s.AddClause(disj...)
}

// Miter is the SAT-attack formulation: two copies of a locked circuit
// share the primary-input variables, carry independent key variable
// sets, and are constrained to disagree on at least one output.
type Miter struct {
	S    *sat.Solver
	C    *circuit.Circuit
	PIs  []sat.Lit
	KeyA []sat.Lit
	KeyB []sat.Lit
	OutA []Wire
	OutB []Wire
}

// NewMiter builds the miter for locked circuit c in a fresh solver.
func NewMiter(c *circuit.Circuit) (*Miter, error) {
	s := sat.New()
	pis := FreshLits(s, c.NumPIs())
	keyA := FreshLits(s, c.NumKeys())
	keyB := FreshLits(s, c.NumKeys())
	ca, err := Encode(s, c, Options{PILits: pis, KeyLits: keyA})
	if err != nil {
		return nil, err
	}
	cb, err := Encode(s, c, Options{PILits: pis, KeyLits: keyB})
	if err != nil {
		return nil, err
	}
	m := &Miter{S: s, C: c, PIs: pis, KeyA: keyA, KeyB: keyB, OutA: ca.Outs, OutB: cb.Outs}
	NotEqualAny(s, ca.Outs, cb.Outs)
	return m, nil
}

// Input reads the distinguishing input from the last model.
func (m *Miter) Input() []bool {
	x := make([]bool, len(m.PIs))
	for i, l := range m.PIs {
		x[i] = m.S.ModelLit(l)
	}
	return x
}

// KeyAModel and KeyBModel read the two distinguishing keys from the
// last model.
func (m *Miter) KeyAModel() []bool { return modelOf(m.S, m.KeyA) }
func (m *Miter) KeyBModel() []bool { return modelOf(m.S, m.KeyB) }

func modelOf(s *sat.Solver, lits []sat.Lit) []bool {
	out := make([]bool, len(lits))
	for i, l := range lits {
		out[i] = s.ModelLit(l)
	}
	return out
}

// AddDIPCopies instantiates two copies of the circuit with the primary
// inputs hardwired to x, keyed by KeyA and KeyB respectively, and
// returns their output wires so the caller can constrain individual
// bits (StatSAT specifies bits incrementally).
func (m *Miter) AddDIPCopies(x []bool) (outA, outB []Wire, err error) {
	ca, err := Encode(m.S, m.C, Options{FixedPIs: x, KeyLits: m.KeyA})
	if err != nil {
		return nil, nil, err
	}
	cb, err := Encode(m.S, m.C, Options{FixedPIs: x, KeyLits: m.KeyB})
	if err != nil {
		return nil, nil, err
	}
	return ca.Outs, cb.Outs, nil
}

// KeySolver maintains the "all recorded DIPs" formula over a single
// key vector; it enumerates satisfying keys (for BER estimation) and
// produces the final key of an instance.
type KeySolver struct {
	S    *sat.Solver
	C    *circuit.Circuit
	Keys []sat.Lit
}

// NewKeySolver builds an empty key-constraint solver for c.
func NewKeySolver(c *circuit.Circuit) *KeySolver {
	s := sat.New()
	return &KeySolver{S: s, C: c, Keys: FreshLits(s, c.NumKeys())}
}

// AddDIPCopy instantiates a copy with PIs fixed to x over the shared
// key vector and returns its output wires.
func (k *KeySolver) AddDIPCopy(x []bool) ([]Wire, error) {
	cp, err := Encode(k.S, k.C, Options{FixedPIs: x, KeyLits: k.Keys})
	if err != nil {
		return nil, err
	}
	return cp.Outs, nil
}

// Key reads the key vector from the last model.
func (k *KeySolver) Key() []bool { return modelOf(k.S, k.Keys) }

// EnumerateKeys returns up to max distinct keys satisfying the current
// constraints. Enumeration uses a throwaway activation literal so the
// blocking clauses are retired afterwards and do not constrain future
// queries. Cancelling ctx stops the enumeration early; the keys found
// so far are returned.
func (k *KeySolver) EnumerateKeys(ctx context.Context, max int) [][]bool {
	if max <= 0 {
		return nil
	}
	act := FreshLit(k.S)
	var keys [][]bool
	for len(keys) < max && k.S.SolveCtx(ctx, act) == sat.Sat {
		key := k.Key()
		keys = append(keys, key)
		// Block this key while act holds.
		block := make([]sat.Lit, 0, len(k.Keys)+1)
		block = append(block, act.Not())
		for i, l := range k.Keys {
			if key[i] {
				block = append(block, l.Not())
			} else {
				block = append(block, l)
			}
		}
		k.S.AddClause(block...)
	}
	// Retire the blocking clauses permanently.
	k.S.AddClause(act.Not())
	return keys
}

// Clone deep-copies the key solver (instance duplication).
func (k *KeySolver) Clone() *KeySolver {
	return &KeySolver{S: k.S.Clone(), C: k.C, Keys: append([]sat.Lit(nil), k.Keys...)}
}

// CloneMiter deep-copies a miter (instance duplication).
func (m *Miter) Clone() *Miter {
	return &Miter{
		S:    m.S.Clone(),
		C:    m.C,
		PIs:  append([]sat.Lit(nil), m.PIs...),
		KeyA: append([]sat.Lit(nil), m.KeyA...),
		KeyB: append([]sat.Lit(nil), m.KeyB...),
		OutA: append([]Wire(nil), m.OutA...),
		OutB: append([]Wire(nil), m.OutB...),
	}
}
