// Package cnf translates gate-level circuits into CNF for the SAT
// solver (Tseitin transformation with constant folding) and builds the
// miter formulations used by the SAT-attack family.
//
// Wires are represented symbolically: a wire is either a constant or a
// literal over solver variables. Constant folding matters here because
// the attacks hardwire distinguishing inputs into per-DIP circuit
// copies; folding shrinks those copies substantially.
package cnf

import (
	"context"
	"fmt"

	"statsat/internal/circuit"
	"statsat/internal/sat"
)

// Wire is a symbolic circuit wire: either a compile-time constant or a
// solver literal.
type Wire struct {
	Const bool
	Val   bool    // meaningful when Const
	Lit   sat.Lit // meaningful when !Const
}

// ConstWire returns a constant wire.
func ConstWire(v bool) Wire { return Wire{Const: true, Val: v} }

// LitWire wraps a literal as a wire.
func LitWire(l sat.Lit) Wire { return Wire{Lit: l} }

// Not returns the complement wire (free: flips const or literal).
func (w Wire) Not() Wire {
	if w.Const {
		return ConstWire(!w.Val)
	}
	return LitWire(w.Lit.Not())
}

// FreshLit allocates a new variable and returns its positive literal.
func FreshLit(s *sat.Solver) sat.Lit { return sat.PosLit(s.NewVar()) }

// FreshLits allocates n new variables.
func FreshLits(s *sat.Solver, n int) []sat.Lit {
	out := make([]sat.Lit, n)
	for i := range out {
		out[i] = FreshLit(s)
	}
	return out
}

// Options controls how Encode instantiates a circuit copy.
type Options struct {
	// FixedPIs, if non-nil, hardwires the primary inputs to constants
	// (the copy then has no PI variables). Length must equal NumPIs.
	FixedPIs []bool
	// PILits, if non-nil, reuses existing literals for the PIs
	// (shared-input miter copies). Ignored when FixedPIs is set.
	PILits []sat.Lit
	// KeyLits, if non-nil, reuses existing literals for the keys.
	KeyLits []sat.Lit
	// FixedKeys, if non-nil, hardwires the key inputs to constants.
	FixedKeys []bool
	// Share, if non-nil, memoizes the wires of key-independent gates
	// across Encode calls: a gate whose fanin cone contains no Key
	// input computes the same function in every copy that binds the
	// primary inputs identically, so later copies reuse the first
	// copy's encoding instead of emitting fresh variables and clauses.
	// All copies sharing a cache must target the same solver and the
	// same PI binding (identical PILits or identical FixedPIs); the
	// miter constructors manage those lifetimes.
	Share *ShareCache
	// Scratch, if non-nil, provides reusable clause-literal buffers
	// for the gate encoders so repeated copies (one per DIP, two per
	// miter) stop allocating per-gate temporaries.
	Scratch *Scratch
}

// ShareCache memoizes encoded wires of a circuit's key-independent
// cone. The zero value is not usable; create with NewShareCache. The
// key-dependence marking is computed once per circuit on first use
// and survives Reset; the memoized wires are per PI binding and are
// cleared by Reset.
type ShareCache struct {
	s     *sat.Solver // bound on first use; guards cross-solver reuse
	dep   []bool      // gate cone contains a Key input
	wires []Wire
	has   []bool
}

// NewShareCache returns an empty cache. One cache serves one
// (solver, circuit, PI binding) combination at a time; call Reset
// when moving to a new PI binding in the same solver.
func NewShareCache() *ShareCache { return &ShareCache{} }

// Reset forgets the memoized wires but keeps the (binding-
// independent) key-dependence marking.
func (sc *ShareCache) Reset() {
	for i := range sc.has {
		sc.has[i] = false
	}
}

func (sc *ShareCache) bind(s *sat.Solver, c *circuit.Circuit, order []int) {
	if sc.s == nil {
		sc.s = s
	} else if sc.s != s {
		panic("cnf: ShareCache reused across solvers")
	}
	if sc.dep != nil {
		return
	}
	dep := make([]bool, len(c.Gates))
	for _, id := range order {
		g := &c.Gates[id]
		if g.Type == circuit.Key {
			dep[id] = true
			continue
		}
		for _, f := range g.Fanin {
			if dep[f] {
				dep[id] = true
				break
			}
		}
	}
	sc.dep = dep
	sc.wires = make([]Wire, len(c.Gates))
	sc.has = make([]bool, len(c.Gates))
}

// Scratch holds reusable buffers for the gate encoders. The zero
// value is ready for use; a Scratch is not safe for concurrent use.
type Scratch struct {
	fan  []Wire
	neg  []Wire
	lits []sat.Lit
	big  []sat.Lit
}

// Copy is one CNF instantiation of a circuit.
type Copy struct {
	PIs  []Wire
	Keys []Wire
	Outs []Wire
}

// Encode instantiates circuit c into solver s per opts and returns the
// copy's interface wires.
func Encode(s *sat.Solver, c *circuit.Circuit, opts Options) (*Copy, error) {
	if opts.FixedPIs != nil && len(opts.FixedPIs) != c.NumPIs() {
		return nil, fmt.Errorf("cnf: FixedPIs length %d, want %d", len(opts.FixedPIs), c.NumPIs())
	}
	if opts.PILits != nil && len(opts.PILits) != c.NumPIs() {
		return nil, fmt.Errorf("cnf: PILits length %d, want %d", len(opts.PILits), c.NumPIs())
	}
	if opts.KeyLits != nil && len(opts.KeyLits) != c.NumKeys() {
		return nil, fmt.Errorf("cnf: KeyLits length %d, want %d", len(opts.KeyLits), c.NumKeys())
	}
	if opts.FixedKeys != nil && len(opts.FixedKeys) != c.NumKeys() {
		return nil, fmt.Errorf("cnf: FixedKeys length %d, want %d", len(opts.FixedKeys), c.NumKeys())
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}

	wires := make([]Wire, c.NumGates())
	cp := &Copy{
		PIs:  make([]Wire, c.NumPIs()),
		Keys: make([]Wire, c.NumKeys()),
		Outs: make([]Wire, c.NumPOs()),
	}
	for i, id := range c.PIs {
		switch {
		case opts.FixedPIs != nil:
			wires[id] = ConstWire(opts.FixedPIs[i])
		case opts.PILits != nil:
			wires[id] = LitWire(opts.PILits[i])
		default:
			wires[id] = LitWire(FreshLit(s))
		}
		cp.PIs[i] = wires[id]
	}
	for i, id := range c.Keys {
		switch {
		case opts.FixedKeys != nil:
			wires[id] = ConstWire(opts.FixedKeys[i])
		case opts.KeyLits != nil:
			wires[id] = LitWire(opts.KeyLits[i])
		default:
			wires[id] = LitWire(FreshLit(s))
		}
		cp.Keys[i] = wires[id]
	}

	share := opts.Share
	if share != nil {
		share.bind(s, c, order)
	}
	sc := opts.Scratch
	if sc == nil {
		sc = &Scratch{}
	}
	fan := sc.fan[:0]
	for _, id := range order {
		g := &c.Gates[id]
		switch g.Type {
		case circuit.Input, circuit.Key:
			continue
		case circuit.Const0:
			wires[id] = ConstWire(false)
			continue
		case circuit.Const1:
			wires[id] = ConstWire(true)
			continue
		}
		if share != nil && !share.dep[id] && share.has[id] {
			wires[id] = share.wires[id]
			continue
		}
		fan = fan[:0]
		for _, f := range g.Fanin {
			fan = append(fan, wires[f])
		}
		w, err := encodeGateScratch(s, g.Type, fan, sc)
		if err != nil {
			return nil, fmt.Errorf("cnf: gate %d (%s): %w", id, g.Name, err)
		}
		wires[id] = w
		if share != nil && !share.dep[id] {
			share.wires[id] = w
			share.has[id] = true
		}
	}
	sc.fan = fan[:0]
	for i, po := range c.POs {
		cp.Outs[i] = wires[po]
	}
	return cp, nil
}

func encodeGateScratch(s *sat.Solver, t circuit.GateType, fan []Wire, sc *Scratch) (Wire, error) {
	switch t {
	case circuit.Buf:
		return fan[0], nil
	case circuit.Not:
		return fan[0].Not(), nil
	case circuit.And:
		return andScratch(s, fan, sc), nil
	case circuit.Nand:
		return andScratch(s, fan, sc).Not(), nil
	case circuit.Or:
		return orScratch(s, fan, sc), nil
	case circuit.Nor:
		return orScratch(s, fan, sc).Not(), nil
	case circuit.Xor:
		return XorN(s, fan...), nil
	case circuit.Xnor:
		return XorN(s, fan...).Not(), nil
	case circuit.Mux:
		return Mux(s, fan[0], fan[1], fan[2]), nil
	}
	return Wire{}, fmt.Errorf("unsupported gate type %v", t)
}

// And encodes an n-ary conjunction with constant folding.
func And(s *sat.Solver, in ...Wire) Wire {
	return andScratch(s, in, &Scratch{})
}

// andScratch is And over caller-owned scratch buffers. The solver
// copies every clause it is handed, so reusing sc across gates (and
// across Encode calls) is safe.
func andScratch(s *sat.Solver, in []Wire, sc *Scratch) Wire {
	lits := sc.lits[:0]
	for _, w := range in {
		if w.Const {
			if !w.Val {
				return ConstWire(false)
			}
			continue
		}
		lits = append(lits, w.Lit)
	}
	sc.lits = lits[:0]
	switch len(lits) {
	case 0:
		return ConstWire(true)
	case 1:
		return LitWire(lits[0])
	}
	z := FreshLit(s)
	// z → each lit; (all lits) → z.
	big := sc.big[:0]
	for _, l := range lits {
		s.AddClause(z.Not(), l)
		big = append(big, l.Not())
	}
	big = append(big, z)
	s.AddClause(big...)
	sc.big = big[:0]
	return LitWire(z)
}

// Or encodes an n-ary disjunction with constant folding.
func Or(s *sat.Solver, in ...Wire) Wire {
	return orScratch(s, in, &Scratch{})
}

func orScratch(s *sat.Solver, in []Wire, sc *Scratch) Wire {
	neg := sc.neg[:0]
	for _, w := range in {
		neg = append(neg, w.Not())
	}
	out := andScratch(s, neg, sc).Not()
	sc.neg = neg[:0]
	return out
}

// Xor2 encodes a binary XOR with constant folding.
func Xor2(s *sat.Solver, a, b Wire) Wire {
	if a.Const {
		if a.Val {
			return b.Not()
		}
		return b
	}
	if b.Const {
		if b.Val {
			return a.Not()
		}
		return a
	}
	if a.Lit == b.Lit {
		return ConstWire(false)
	}
	if a.Lit == b.Lit.Not() {
		return ConstWire(true)
	}
	z := FreshLit(s)
	s.AddClause(z.Not(), a.Lit, b.Lit)
	s.AddClause(z.Not(), a.Lit.Not(), b.Lit.Not())
	s.AddClause(z, a.Lit.Not(), b.Lit)
	s.AddClause(z, a.Lit, b.Lit.Not())
	return LitWire(z)
}

// XorN encodes an n-ary parity.
func XorN(s *sat.Solver, in ...Wire) Wire {
	acc := ConstWire(false)
	for _, w := range in {
		acc = Xor2(s, acc, w)
	}
	return acc
}

// Mux encodes sel ? b : a (matching circuit.Mux fanin order sel,a,b).
func Mux(s *sat.Solver, sel, a, b Wire) Wire {
	if sel.Const {
		if sel.Val {
			return b
		}
		return a
	}
	if a.Const && b.Const {
		switch {
		case a.Val == b.Val:
			return a
		case b.Val: // 0 when sel=0, 1 when sel=1
			return sel
		default:
			return sel.Not()
		}
	}
	if !a.Const && !b.Const && a.Lit == b.Lit {
		return a
	}
	z := FreshLit(s)
	// sel=0 → z=a ; sel=1 → z=b (with const specialisation).
	implyEq := func(cond sat.Lit, w Wire) {
		if w.Const {
			if w.Val {
				s.AddClause(cond.Not(), z)
			} else {
				s.AddClause(cond.Not(), z.Not())
			}
			return
		}
		s.AddClause(cond.Not(), w.Lit.Not(), z)
		s.AddClause(cond.Not(), w.Lit, z.Not())
	}
	implyEq(sel.Lit, b)       // sel=1 → z=b
	implyEq(sel.Lit.Not(), a) // sel=0 → z=a
	return LitWire(z)
}

// Equal adds clauses forcing w == val; it returns false if that is
// already contradictory (w is the opposite constant).
func Equal(s *sat.Solver, w Wire, val bool) bool {
	if w.Const {
		if w.Val != val {
			// Record inconsistency in the solver itself.
			s.AddClause()
			return false
		}
		return true
	}
	if val {
		return s.AddClause(w.Lit)
	}
	return s.AddClause(w.Lit.Not())
}

// NotEqualAny adds the constraint that at least one pair (a_i, b_i)
// differs. It returns false if the constraint is vacuously
// unsatisfiable (all pairs identical constants).
func NotEqualAny(s *sat.Solver, a, b []Wire) bool {
	if len(a) != len(b) {
		panic("cnf: NotEqualAny length mismatch")
	}
	var disj []sat.Lit
	for i := range a {
		d := Xor2(s, a[i], b[i])
		if d.Const {
			if d.Val {
				return true // a pair differs structurally: constraint trivially holds
			}
			continue
		}
		disj = append(disj, d.Lit)
	}
	if len(disj) == 0 {
		s.AddClause()
		return false
	}
	return s.AddClause(disj...)
}

// Miter is the SAT-attack formulation: two copies of a locked circuit
// share the primary-input variables, carry independent key variable
// sets, and are constrained to disagree on at least one output.
type Miter struct {
	S    *sat.Solver
	C    *circuit.Circuit
	PIs  []sat.Lit
	KeyA []sat.Lit
	KeyB []sat.Lit
	OutA []Wire
	OutB []Wire

	// dipShare memoizes the key-independent cone across the two copies
	// of one AddDIPCopies call; scratch backs the per-gate encoder
	// buffers. Both are lazily (re)created, so cloned miters start
	// fresh instead of racing on the parent's caches.
	dipShare *ShareCache
	scratch  *Scratch
}

// NewMiter builds the miter for locked circuit c in a fresh solver.
//
// Two formula-size reductions are applied. First, the circuit is run
// through circuit.Simplify — interface-preserving, so distinguishing
// inputs and recovered keys transfer verbatim to the original locked
// netlist — which strips the redundancy (buffer chains, duplicate
// cones, constant logic) that synthetic and resynthesised benchmarks
// carry. Second, the two symbolic copies share the primary-input
// variables AND the entire key-independent cone: a gate with no Key
// input in its fanin cone computes the same function of the shared
// PIs in both copies, so copy B reuses copy A's encoding for it. The
// per-DIP copies added later reuse the same simplified netlist.
func NewMiter(c *circuit.Circuit) (*Miter, error) {
	c, err := circuit.Simplify(c)
	if err != nil {
		return nil, err
	}
	s := sat.New()
	pis := FreshLits(s, c.NumPIs())
	keyA := FreshLits(s, c.NumKeys())
	keyB := FreshLits(s, c.NumKeys())
	share := NewShareCache()
	scratch := &Scratch{}
	ca, err := Encode(s, c, Options{PILits: pis, KeyLits: keyA, Share: share, Scratch: scratch})
	if err != nil {
		return nil, err
	}
	cb, err := Encode(s, c, Options{PILits: pis, KeyLits: keyB, Share: share, Scratch: scratch})
	if err != nil {
		return nil, err
	}
	m := &Miter{S: s, C: c, PIs: pis, KeyA: keyA, KeyB: keyB, OutA: ca.Outs, OutB: cb.Outs,
		scratch: scratch}
	NotEqualAny(s, ca.Outs, cb.Outs)
	return m, nil
}

// Input reads the distinguishing input from the last model.
func (m *Miter) Input() []bool {
	x := make([]bool, len(m.PIs))
	for i, l := range m.PIs {
		x[i] = m.S.ModelLit(l)
	}
	return x
}

// KeyAModel and KeyBModel read the two distinguishing keys from the
// last model.
func (m *Miter) KeyAModel() []bool { return modelOf(m.S, m.KeyA) }
func (m *Miter) KeyBModel() []bool { return modelOf(m.S, m.KeyB) }

func modelOf(s *sat.Solver, lits []sat.Lit) []bool {
	out := make([]bool, len(lits))
	for i, l := range lits {
		out[i] = s.ModelLit(l)
	}
	return out
}

// AddDIPCopies instantiates two copies of the circuit with the primary
// inputs hardwired to x, keyed by KeyA and KeyB respectively, and
// returns their output wires so the caller can constrain individual
// bits (StatSAT specifies bits incrementally).
func (m *Miter) AddDIPCopies(x []bool) (outA, outB []Wire, err error) {
	if m.dipShare == nil {
		m.dipShare = NewShareCache()
	}
	if m.scratch == nil {
		m.scratch = &Scratch{}
	}
	// Both copies fix the PIs to the same x, so the key-independent
	// cone is shareable within this call; Reset drops the previous
	// DIP's binding.
	m.dipShare.Reset()
	ca, err := Encode(m.S, m.C, Options{FixedPIs: x, KeyLits: m.KeyA, Share: m.dipShare, Scratch: m.scratch})
	if err != nil {
		return nil, nil, err
	}
	cb, err := Encode(m.S, m.C, Options{FixedPIs: x, KeyLits: m.KeyB, Share: m.dipShare, Scratch: m.scratch})
	if err != nil {
		return nil, nil, err
	}
	return ca.Outs, cb.Outs, nil
}

// KeySolver maintains the "all recorded DIPs" formula over a single
// key vector; it enumerates satisfying keys (for BER estimation) and
// produces the final key of an instance.
type KeySolver struct {
	S    *sat.Solver
	C    *circuit.Circuit
	Keys []sat.Lit

	scratch *Scratch // lazily created; not carried across Clone
}

// NewKeySolver builds an empty key-constraint solver for c. Like
// NewMiter it works on the simplified netlist (interface-preserving,
// so keys transfer verbatim); when simplification fails the original
// circuit is used — per-DIP encoding tolerates any valid netlist.
func NewKeySolver(c *circuit.Circuit) *KeySolver {
	if sc, err := circuit.Simplify(c); err == nil {
		c = sc
	}
	s := sat.New()
	return &KeySolver{S: s, C: c, Keys: FreshLits(s, c.NumKeys())}
}

// AddDIPCopy instantiates a copy with PIs fixed to x over the shared
// key vector and returns its output wires. Each call has a distinct
// PI binding, so there is no cone to share — only the encoder
// scratch buffers are reused.
func (k *KeySolver) AddDIPCopy(x []bool) ([]Wire, error) {
	if k.scratch == nil {
		k.scratch = &Scratch{}
	}
	cp, err := Encode(k.S, k.C, Options{FixedPIs: x, KeyLits: k.Keys, Scratch: k.scratch})
	if err != nil {
		return nil, err
	}
	return cp.Outs, nil
}

// Key reads the key vector from the last model.
func (k *KeySolver) Key() []bool { return modelOf(k.S, k.Keys) }

// EnumerateKeys returns up to max distinct keys satisfying the current
// constraints. Enumeration uses a throwaway activation literal so the
// blocking clauses are retired afterwards and do not constrain future
// queries. Cancelling ctx stops the enumeration early; the keys found
// so far are returned.
func (k *KeySolver) EnumerateKeys(ctx context.Context, max int) [][]bool {
	if max <= 0 {
		return nil
	}
	act := FreshLit(k.S)
	var keys [][]bool
	for len(keys) < max && k.S.SolveCtx(ctx, act) == sat.Sat {
		key := k.Key()
		keys = append(keys, key)
		// Block this key while act holds.
		block := make([]sat.Lit, 0, len(k.Keys)+1)
		block = append(block, act.Not())
		for i, l := range k.Keys {
			if key[i] {
				block = append(block, l.Not())
			} else {
				block = append(block, l)
			}
		}
		k.S.AddClause(block...)
	}
	// Retire the blocking clauses permanently.
	k.S.AddClause(act.Not())
	return keys
}

// Clone deep-copies the key solver (instance duplication).
func (k *KeySolver) Clone() *KeySolver {
	return &KeySolver{S: k.S.Clone(), C: k.C, Keys: append([]sat.Lit(nil), k.Keys...)}
}

// CloneMiter deep-copies a miter (instance duplication).
func (m *Miter) Clone() *Miter {
	return &Miter{
		S:    m.S.Clone(),
		C:    m.C,
		PIs:  append([]sat.Lit(nil), m.PIs...),
		KeyA: append([]sat.Lit(nil), m.KeyA...),
		KeyB: append([]sat.Lit(nil), m.KeyB...),
		OutA: append([]Wire(nil), m.OutA...),
		OutB: append([]Wire(nil), m.OutB...),
	}
}
