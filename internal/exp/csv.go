package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"reflect"
	"strconv"
)

// WriteCSV emits any experiment row slice (e.g. []TableIIRow,
// []Fig6Point) as CSV with a header row derived from the struct field
// names. Unexported and non-scalar fields are skipped.
func WriteCSV(w io.Writer, rows interface{}) error {
	v := reflect.ValueOf(rows)
	if v.Kind() != reflect.Slice {
		return fmt.Errorf("exp: WriteCSV wants a slice, got %T", rows)
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if v.Len() == 0 {
		return nil
	}
	t := v.Index(0).Type()
	if t.Kind() != reflect.Struct {
		return fmt.Errorf("exp: WriteCSV wants a slice of structs, got %T", rows)
	}
	var cols []int
	var header []string
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.PkgPath != "" { // unexported
			continue
		}
		switch f.Type.Kind() {
		case reflect.String, reflect.Bool,
			reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
			reflect.Float32, reflect.Float64:
			cols = append(cols, i)
			header = append(header, f.Name)
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(cols))
	for r := 0; r < v.Len(); r++ {
		row := v.Index(r)
		for j, i := range cols {
			rec[j] = formatCSVValue(row.Field(i))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

func formatCSVValue(v reflect.Value) string {
	switch v.Kind() {
	case reflect.String:
		return v.String()
	case reflect.Bool:
		return strconv.FormatBool(v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return strconv.FormatInt(v.Int(), 10)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return strconv.FormatUint(v.Uint(), 10)
	case reflect.Float32, reflect.Float64:
		return strconv.FormatFloat(v.Float(), 'g', 6, 64)
	}
	return ""
}
