package exp

import (
	"context"
	"fmt"
	"math/rand"

	"statsat/internal/circuit"
	"statsat/internal/core"
	"statsat/internal/gen"
	"statsat/internal/lock"
	"statsat/internal/metrics"
	"statsat/internal/oracle"
)

// Workload is one locked benchmark ready to attack.
type Workload struct {
	Bench  gen.Benchmark
	Orig   *circuit.Circuit
	Locked *lock.Locked
}

// LockName reports the locking technique (Table II's "Lock" column).
func (w Workload) LockName() string { return w.Locked.Technique }

// BuildWorkload synthesises the stand-in circuit at the profile's
// scale and locks it the way the paper does: SLL for ex1010, RLL for
// c880 (Table V's "32-bit key" random locking), SFLL-HD^0 for the
// rest.
func BuildWorkload(p Profile, name string) (Workload, error) {
	bm, ok := gen.ByName(name)
	if !ok {
		return Workload{}, fmt.Errorf("exp: unknown benchmark %q", name)
	}
	// Clamp the scale so every workload keeps at least ~100 gates —
	// deep scaling would otherwise degenerate small circuits (c880)
	// into netlists with fewer gates than key bits.
	scale := p.Scale
	if scale > 1 && bm.Gates/scale < 100 {
		scale = bm.Gates / 100
		if scale < 1 {
			scale = 1
		}
	}
	orig := bm.BuildScaled(scale)
	rng := rand.New(rand.NewSource(p.Seed ^ bm.Seed))
	var (
		l   *lock.Locked
		err error
	)
	switch name {
	case "ex1010":
		keys := p.SLLKeyBits
		if max := orig.NumLogicGates() / 2; keys > max {
			keys = max
		}
		l, err = lock.SLL(orig, keys, rng)
	case "c880":
		l, err = lock.RLL(orig, p.C880KeyBits, rng)
	default:
		keys := p.SFLLKeyBits
		if keys > orig.NumPIs() {
			keys = orig.NumPIs()
		}
		l, err = lock.SFLLHD(orig, keys, 0, rng)
	}
	if err != nil {
		return Workload{}, fmt.Errorf("exp: locking %s: %w", name, err)
	}
	// Warm the topological-order caches now: attack runs on different
	// scheduler workers share the circuit read-only, and the lazily
	// built cache is the one field evaluation would otherwise write.
	orig.MustTopoOrder()
	l.Circuit.MustTopoOrder()
	return Workload{Bench: bm, Orig: orig, Locked: l}, nil
}

// attackOpts builds core.Options from the profile.
func (p Profile) attackOpts(epsG float64, nInst int, seed int64) core.Options {
	return core.Options{
		Ns:           p.Ns,
		NSatis:       p.NSatis,
		NEval:        p.NEval,
		EvalNs:       p.EvalNs,
		NInst:        nInst,
		EpsG:         epsG,
		MaxTotalIter: p.MaxTotalIter,
		Seed:         seed,
	}
}

// RunOutcome is one attack run with its ground-truth verdict.
type RunOutcome struct {
	Res     *core.Result
	NInst   int
	Correct bool // best key ≡ ground-truth key
	// CorrectAny marks whether ANY returned key is equivalent.
	CorrectAny bool
}

// runAttack performs one StatSAT run and checks the keys against the
// ground truth. When the profile enables tracing, the run's events are
// recorded to a fresh JSON-lines file under p.TraceDir named after
// tag, the run's unique coordinate string (so concurrent runs never
// share a file and names are stable across worker counts).
func runAttack(ctx context.Context, p Profile, w Workload, eps float64, opts core.Options, oracleSeed int64, tag string) (RunOutcome, error) {
	orc := oracle.NewProbabilistic(w.Locked.Circuit, w.Locked.Key, eps, oracleSeed)
	closeTrace := p.attachTrace(&opts, tag)
	defer closeTrace()
	res, err := core.Attack(ctx, w.Locked.Circuit, orc, opts)
	if err == core.ErrNoInstances {
		return RunOutcome{Res: res, NInst: opts.NInst}, nil
	}
	if err != nil {
		// Interrupted runs carry a best-effort result, but a half-run
		// cell is not table data: propagate so the scheduler stops and
		// the completed prefix is flushed.
		return RunOutcome{}, err
	}
	out := RunOutcome{Res: res, NInst: opts.NInst}
	for i := range res.Keys {
		eq, err := metrics.KeysEquivalent(w.Locked.Circuit, res.Keys[i].Key, w.Locked.Key)
		if err != nil {
			return RunOutcome{}, err
		}
		if eq {
			out.CorrectAny = true
			if i == 0 {
				out.Correct = true
			}
		}
	}
	return out, nil
}

// runDoubling reruns the attack with N_inst = 1, 2, 4, ... (the
// paper's Table II protocol) until the correct key is found or the
// profile cap is hit; it returns the successful outcome (or the last
// attempt). Following §V(A), a run that fails to produce *any* key is
// retried once with lowered U_lambda / E_lambda thresholds. All
// randomness is derived from the run's coordinates (tag, technique,
// eps, N_inst), never from execution order.
func runDoubling(ctx context.Context, p Profile, w Workload, eps float64, tag string) (RunOutcome, error) {
	var last RunOutcome
	for nInst := 1; nInst <= p.MaxNInst; nInst *= 2 {
		runTag := fmt.Sprintf("%s_n%d", tag, nInst)
		seed := deriveSeed(p.Seed, "attack", w.Bench.Name, w.LockName(), eps, tag, nInst)
		opts := p.attackOpts(eps, nInst, seed)
		oseed := deriveSeed(p.Seed, "oracle", w.Bench.Name, w.LockName(), eps, tag, nInst)
		out, err := runAttack(ctx, p, w, eps, opts, oseed, runTag)
		if err != nil {
			return RunOutcome{}, err
		}
		if out.Res == nil || len(out.Res.Keys) == 0 {
			// "If the attack doesn't find a single key, we restart
			// with lower values of one/both."
			opts.ULambda = 0.15
			opts.ELambda = 0.20
			oseed = deriveSeed(p.Seed, "oracle-retry", w.Bench.Name, w.LockName(), eps, tag, nInst)
			out, err = runAttack(ctx, p, w, eps, opts, oseed, runTag+"_retry")
			if err != nil {
				return RunOutcome{}, err
			}
		}
		last = out
		if out.CorrectAny {
			return out, nil
		}
	}
	return last, nil
}

// newSeededRand builds a deterministic RNG for harness-side sampling.
func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
