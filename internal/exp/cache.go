package exp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"

	"statsat/internal/core"
)

// Figures 4-6 re-plot the Table II / Table III runs rather than
// re-running them; a process-local memo keyed by profile and circuit
// selection keeps `-exp all` from paying for the sweeps twice.
// Experiment functions remain deterministic in (profile, circuit
// list) — and in particular independent of Profile.Workers — so
// caching cannot change results.
//
// The memo is singleflight-style: the whole check-compute-store is
// guarded per key, so when two generators race on the same profile
// (e.g. Fig4 and Fig5 jobs in the scheduler pool, or concurrent table
// generation in tests) the workload is computed exactly once and the
// loser blocks until the winner's rows are ready.
type memo[T any] struct {
	mu sync.Mutex
	m  map[string]*memoEntry[T]
}

// memoEntry guards one key's compute with its own mutex (not a
// sync.Once: the table generators prime the memo from *inside* a
// cached computation via storeTableII, and a reentrant Once.Do would
// deadlock — put uses TryLock to stay a no-op in that case).
type memoEntry[T any] struct {
	mu   sync.Mutex
	done bool
	rows T
	err  error
}

func (c *memo[T]) entry(key string) *memoEntry[T] {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = map[string]*memoEntry[T]{}
	}
	e, ok := c.m[key]
	if !ok {
		e = &memoEntry[T]{}
		c.m[key] = e
	}
	return e
}

// get returns the memoised rows for key, invoking compute at most once
// per key process-wide; concurrent callers block until the winner's
// rows are ready. Errors are memoised too: the computation is
// deterministic in the key, so retrying cannot help — with one
// exception. Cancellation errors reflect the *caller's* context, not
// the key, so they are never memoised: a later caller with a live
// context recomputes from scratch.
func (c *memo[T]) get(key string, compute func() (T, error)) (T, error) {
	e := c.entry(key)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		return e.rows, e.err
	}
	rows, err := compute()
	if isCancellation(err) {
		var zero T
		return zero, err
	}
	e.rows, e.err = rows, err
	e.done = true
	return e.rows, e.err
}

// isCancellation reports whether err stems from context cancellation
// or deadline expiry (directly or via an interrupted attack).
func isCancellation(err error) bool {
	return err != nil && (errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, core.ErrInterrupted))
}

// put primes the memo with already-computed rows. It is best-effort:
// when the key is already computed, primed, or mid-computation
// (including by the calling goroutine itself — see memoEntry), it is
// a no-op; results are deterministic, so the first value is as good
// as any.
func (c *memo[T]) put(key string, rows T) {
	e := c.entry(key)
	if !e.mu.TryLock() {
		return
	}
	defer e.mu.Unlock()
	if !e.done {
		e.rows = rows
		e.done = true
	}
}

var (
	tableIIMemo  memo[[]TableIIRow]
	tableIIIMemo memo[[]TableIIIRow]
)

// cacheKey folds every profile knob that can influence experiment
// rows (Workers deliberately excluded: results are worker-count
// invariant) plus the circuit selection.
func cacheKey(p Profile, circuits []string) string {
	return fmt.Sprintf("%s|seed=%d|scale=%d|ns=%d|nsatis=%d|neval=%d|evalns=%d|keys=%d/%d/%d|ber=%d/%d|eps=%g|pts=%d|ninst=%d|iter=%d|runs=%d|%s",
		p.Name, p.Seed, p.Scale, p.Ns, p.NSatis, p.NEval, p.EvalNs,
		p.SFLLKeyBits, p.SLLKeyBits, p.C880KeyBits,
		p.BERInputs, p.BERSamples,
		p.EpsFactor, p.EpsPoints, p.MaxNInst, p.MaxTotalIter, p.Runs,
		strings.Join(circuits, ","))
}

func tableIICached(ctx context.Context, p Profile) ([]TableIIRow, error) {
	return tableIIMemo.get(cacheKey(p, tableIICircuits), func() ([]TableIIRow, error) {
		return TableII(ctx, p, io.Discard)
	})
}

func tableIIICached(ctx context.Context, p Profile) ([]TableIIIRow, error) {
	return tableIIIMemo.get(cacheKey(p, tableIIICircuits), func() ([]TableIIIRow, error) {
		return TableIII(ctx, p, io.Discard)
	})
}

// storeTableII primes the cache (TableII calls it so an explicit
// table2 run also feeds later fig4/fig5 calls).
func storeTableII(p Profile, rows []TableIIRow) {
	tableIIMemo.put(cacheKey(p, tableIICircuits), rows)
}

func storeTableIII(p Profile, rows []TableIIIRow) {
	tableIIIMemo.put(cacheKey(p, tableIIICircuits), rows)
}
