package exp

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Figures 4-6 re-plot the Table II / Table III runs rather than
// re-running them; a process-local memo keyed by profile and circuit
// selection keeps `-exp all` from paying for the sweeps twice.
// Experiment functions remain deterministic in (profile, circuit
// list), so caching cannot change results.
var (
	cacheMu      sync.Mutex
	tableIIMemo  = map[string][]TableIIRow{}
	tableIIIMemo = map[string][]TableIIIRow{}
)

func cacheKey(p Profile, circuits []string) string {
	return fmt.Sprintf("%s|scale=%d|ns=%d|eps=%g|pts=%d|ninst=%d|%s",
		p.Name, p.Scale, p.Ns, p.EpsFactor, p.EpsPoints, p.MaxNInst,
		strings.Join(circuits, ","))
}

func tableIICached(p Profile) ([]TableIIRow, error) {
	key := cacheKey(p, tableIICircuits)
	cacheMu.Lock()
	rows, ok := tableIIMemo[key]
	cacheMu.Unlock()
	if ok {
		return rows, nil
	}
	rows, err := TableII(p, io.Discard)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	tableIIMemo[key] = rows
	cacheMu.Unlock()
	return rows, nil
}

func tableIIICached(p Profile) ([]TableIIIRow, error) {
	key := cacheKey(p, tableIIICircuits)
	cacheMu.Lock()
	rows, ok := tableIIIMemo[key]
	cacheMu.Unlock()
	if ok {
		return rows, nil
	}
	rows, err := TableIII(p, io.Discard)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	tableIIIMemo[key] = rows
	cacheMu.Unlock()
	return rows, nil
}

// storeTableII primes the cache (TableII calls it so an explicit
// table2 run also feeds later fig4/fig5 calls).
func storeTableII(p Profile, rows []TableIIRow) {
	cacheMu.Lock()
	tableIIMemo[cacheKey(p, tableIICircuits)] = rows
	cacheMu.Unlock()
}

func storeTableIII(p Profile, rows []TableIIIRow) {
	cacheMu.Lock()
	tableIIIMemo[cacheKey(p, tableIIICircuits)] = rows
	cacheMu.Unlock()
}
