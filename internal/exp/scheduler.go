package exp

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
)

// This file is the experiment scheduler. Every table, figure, sweep
// and defense study decomposes into independent jobs — one per
// (circuit, technique, eps, trial) cell — whose randomness comes from
// deriveSeed, a pure function of the profile seed and the job's
// coordinates. Because no job's result depends on when (or on which
// worker) it runs, runOrdered can fan jobs out across a bounded pool
// and still emit rows in job-index order: the output byte stream is
// identical to the sequential harness for any worker count. See
// docs/PERFORMANCE.md for the contract.

// workers resolves the profile's worker count: Profile.Workers when
// positive, else one worker per available CPU. Workers=1 forces the
// strictly sequential path (useful for debugging and bisection).
func (p Profile) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// deriveSeed maps a run's coordinates to a stable, well-mixed 63-bit
// seed: seed = FNV-1a(base || coords...). Unlike a "next counter
// value" scheme, the seed of a run does not depend on how many runs
// happened before it or on scheduling order, so results are
// reproducible for any worker count — and adding an experiment never
// perturbs the seeds of the others.
func deriveSeed(base int64, coords ...interface{}) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", base)
	for _, c := range coords {
		fmt.Fprintf(h, "|%v", c)
	}
	return int64(h.Sum64() &^ (1 << 63)) // keep it non-negative
}

// runOrdered executes jobs 0..n-1 on up to `workers` concurrent
// goroutines and calls emit(i) exactly once per completed job, in
// strictly increasing index order (ordered aggregation). Workers pull
// the next index from a shared queue, so long jobs never block short
// ones behind a static split. emit runs under the scheduler lock: it
// may write to shared output streams without further synchronisation,
// and must not call back into the scheduler.
//
// The first job error stops the scheduler: no new jobs start, running
// jobs finish, emit is not called for any job at or after the first
// failed index, and the error is returned. With workers <= 1 (or a
// single job) everything runs inline on the caller's goroutine in
// index order — the sequential path is the same code minus the pool.
//
// Cancelling ctx stops the scheduler the same way an error does: no
// new jobs start, running jobs finish (jobs observe the same ctx and
// cut themselves short), the completed prefix is still emitted —
// that is the flush-on-cancel contract cmd/experiments relies on to
// keep partial CSV output — and ctx's error is returned unless a job
// failed first.
func runOrdered(ctx context.Context, workers, n int, run func(i int) error, emit func(i int)) error {
	if n <= 0 {
		return nil
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := run(i); err != nil {
				return err
			}
			if emit != nil {
				emit(i)
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	var (
		mu       sync.Mutex
		next     int // next job index to hand out
		emitted  int // jobs emitted so far (== length of the done prefix)
		firstErr error
		failedAt = n // index of the earliest failed job
		done     = make([]bool, n)
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if firstErr != nil || next >= n || ctx.Err() != nil {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				err := run(i)

				mu.Lock()
				done[i] = true
				if err != nil {
					if firstErr == nil || i < failedAt {
						firstErr = err
						failedAt = i
					}
				}
				if emit != nil {
					// Emit the completed prefix, stopping at the first
					// failure so partial output never precedes the error.
					for emitted < n && done[emitted] && emitted < failedAt {
						emit(emitted)
						emitted++
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return firstErr
}
