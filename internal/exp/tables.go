package exp

import (
	"fmt"
	"io"

	"statsat/internal/attack"
	"statsat/internal/core"
	"statsat/internal/metrics"
	"statsat/internal/oracle"
)

// TableIRow is one benchmark inventory line.
type TableIRow struct {
	Name    string
	Source  string
	Inputs  int
	Gates   int
	Outputs int
}

// TableI regenerates the benchmark inventory at the profile's scale
// (at scale 1 the numbers equal the published ones).
func TableI(p Profile, w io.Writer) []TableIRow {
	fmt.Fprintf(w, "TABLE I: Benchmark circuits and their source (profile %s, scale %d)\n", p.Name, p.Scale)
	fmt.Fprintf(w, "%-10s %-8s %8s %8s %8s\n", "Benchmark", "Source", "Inputs", "Gates", "Outputs")
	hr(w, 46)
	var rows []TableIRow
	for _, bm := range benchOrder {
		b, _ := ProfileBench(p, bm)
		rows = append(rows, b)
		fmt.Fprintf(w, "%-10s %-8s %8d %8d %8d\n", b.Name, b.Source, b.Inputs, b.Gates, b.Outputs)
	}
	return rows
}

// benchOrder is Table I's row order (c880 appended for Table V).
var benchOrder = []string{"c3540", "c7552", "ex1010", "seq", "b14", "b15", "c880"}

// ProfileBench reports the actual dimensions of a stand-in at the
// profile's scale.
func ProfileBench(p Profile, name string) (TableIRow, error) {
	w, err := BuildWorkload(p, name)
	if err != nil {
		return TableIRow{}, err
	}
	s := w.Orig.Summary()
	return TableIRow{Name: w.Orig.Name, Source: w.Bench.Source, Inputs: s.Inputs, Gates: s.Gates, Outputs: s.Outputs}, nil
}

// TableIIRow is one (circuit, eps_g) attack line of Table II.
type TableIIRow struct {
	Bench   string
	Lock    string
	EpsPct  float64 // profile-adjusted, in percent
	Label   string  // A, B, C, ...
	AvgBER  float64
	MaxBER  float64
	NInst   int
	NumKeys int
	HDBest  float64
	Correct bool
	// Iterations/time feed Fig. 4/5 from the same runs.
	Iterations     int
	AttackSeconds  float64
	EvalPerKeySecs float64
	// Standard SAT on the deterministic circuit, for Fig. 4/5 bars.
	StdIterations int
	StdSeconds    float64
}

// tableIICircuits are the circuits the paper sweeps in Table II.
var tableIICircuits = []string{"c3540", "c7552", "seq", "b14", "ex1010", "b15"}

// TableII runs the headline experiment: for each circuit and eps_g,
// double N_inst until the correct key is recovered; report measured
// oracle BERs, the number of keys returned, and HD(K*).
func TableII(p Profile, w io.Writer) ([]TableIIRow, error) {
	fmt.Fprintf(w, "TABLE II: N_inst required to find the correct key vs eps_g (profile %s)\n", p.Name)
	fmt.Fprintf(w, "%-12s %-10s %6s %4s %9s %9s %6s %4s %9s %5s %7s %8s\n",
		"Bench", "Lock", "eps%", "", "AvgBER", "MaxBER", "Ninst", "|K|", "HD(K*)", "corr", "iters", "T_atk(s)")
	hr(w, 106)
	var rows []TableIIRow
	for _, name := range tableIICircuits {
		wl, err := BuildWorkload(p, name)
		if err != nil {
			return nil, err
		}
		det, err := stdAttackBaseline(p, wl)
		if err != nil {
			return nil, err
		}
		for i, eps := range p.epsList(paperEps[name]) {
			ber := metrics.MeasureBER(wl.Locked.Circuit, wl.Locked.Key, eps,
				p.BERInputs, p.BERSamples, p.Seed+int64(i))
			out, err := runDoubling(p, wl, eps, p.Seed+int64(i)*101)
			if err != nil {
				return nil, err
			}
			row := TableIIRow{
				Bench:         wl.Orig.Name,
				Lock:          wl.LockName(),
				EpsPct:        eps * 100,
				Label:         epsLabel(i),
				AvgBER:        ber.Avg,
				MaxBER:        ber.Max,
				NInst:         out.NInst,
				StdIterations: det.Iterations,
				StdSeconds:    det.Duration.Seconds(),
			}
			if out.Res != nil {
				row.NumKeys = len(out.Res.Keys)
				row.AttackSeconds = out.Res.AttackDuration.Seconds()
				row.EvalPerKeySecs = out.Res.EvalPerKey.Seconds()
				if out.Res.Best != nil {
					row.HDBest = out.Res.Best.HD
					row.Correct = out.CorrectAny
					row.Iterations = bestIterations(out)
				}
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-12s %-10s %6.2f (%s) %9.4f %9.4f %6d %4d %9.4f %5v %7d %8.2f\n",
				row.Bench, row.Lock, row.EpsPct, row.Label, row.AvgBER, row.MaxBER,
				row.NInst, row.NumKeys, row.HDBest, row.Correct, row.Iterations, row.AttackSeconds)
		}
	}
	storeTableII(p, rows)
	return rows, nil
}

// bestIterations returns the iteration count of the instance that
// produced the correct key when known, else the best key's instance.
func bestIterations(out RunOutcome) int {
	if out.Res == nil || out.Res.Best == nil {
		return 0
	}
	return out.Res.Best.Iterations
}

// stdAttackBaseline runs the standard SAT attack on the deterministic
// version of the locked circuit ("only for the sake of comparison",
// Fig. 4's grey bars).
func stdAttackBaseline(p Profile, wl Workload) (*attack.Result, error) {
	orc := oracle.NewDeterministic(wl.Locked.Circuit, wl.Locked.Key)
	return attack.StandardSAT(wl.Locked.Circuit, orc, p.MaxTotalIter)
}

// TableIIIRow is one (circuit, N_inst) entry: HD(K*) across the
// N_inst sweep; Correct mirrors the paper's boldface.
type TableIIIRow struct {
	Bench   string
	EpsPct  float64
	NInst   int
	NumKeys int
	HDBest  float64
	FMBest  float64
	Correct bool
	// TotalSeconds = T_attack + |K|·T_eval (Fig. 6's x-axis).
	TotalSeconds float64
}

// tableIIICircuits: the paper uses a fixed eps per circuit; we take
// point B of each circuit's sweep.
var tableIIICircuits = []string{"c3540", "c7552", "seq", "b14"}

// TableIII sweeps N_inst at fixed eps_g, reporting HD(K*) (Table III)
// and FM(K*) vs total time (Fig. 6 uses the same rows).
func TableIII(p Profile, w io.Writer) ([]TableIIIRow, error) {
	fmt.Fprintf(w, "TABLE III: HD(K*) vs N_inst at fixed eps_g (profile %s; * marks the correct key)\n", p.Name)
	fmt.Fprintf(w, "%-12s %6s %6s %4s %9s %9s %10s\n", "Bench", "eps%", "Ninst", "|K|", "HD(K*)", "FM(K*)", "T_total(s)")
	hr(w, 64)
	var rows []TableIIIRow
	for _, name := range tableIIICircuits {
		wl, err := BuildWorkload(p, name)
		if err != nil {
			return nil, err
		}
		epsPts := p.epsList(paperEps[name])
		eps := epsPts[min(1, len(epsPts)-1)] // point B
		for nInst := 1; nInst <= p.MaxNInst; nInst *= 2 {
			opts := p.attackOpts(eps, nInst, p.Seed+int64(nInst))
			out, err := runAttack(p, wl, eps, opts, p.Seed+int64(nInst)*2003)
			if err != nil {
				return nil, err
			}
			row := TableIIIRow{Bench: wl.Orig.Name, EpsPct: eps * 100, NInst: nInst}
			if out.Res != nil && out.Res.Best != nil {
				row.NumKeys = len(out.Res.Keys)
				row.HDBest = out.Res.Best.HD
				row.FMBest = out.Res.Best.FM
				row.Correct = out.CorrectAny
				row.TotalSeconds = out.Res.AttackDuration.Seconds() +
					float64(len(out.Res.Keys))*out.Res.EvalPerKey.Seconds()
			}
			rows = append(rows, row)
			mark := " "
			if row.Correct {
				mark = "*"
			}
			if row.NumKeys == 0 {
				fmt.Fprintf(w, "%-12s %6.2f %6d    -         -         -          -\n",
					row.Bench, row.EpsPct, row.NInst)
				continue
			}
			fmt.Fprintf(w, "%-12s %6.2f %6d %4d %8.4f%s %9.4f %10.2f\n",
				row.Bench, row.EpsPct, row.NInst, row.NumKeys, row.HDBest, mark, row.FMBest, row.TotalSeconds)
		}
	}
	storeTableIII(p, rows)
	return rows, nil
}

// TableIVRow is one eps'_g estimation line.
type TableIVRow struct {
	Bench     string
	EpsPct    float64 // true eps_g (percent)
	EpsEstPct float64 // attacker's estimate (percent)
	HDBest    float64
	Correct   bool
	KeysFound int
}

// tableIVCircuits matches the paper (c3540, c7552, b14).
var tableIVCircuits = []string{"c3540", "c7552", "b14"}

// TableIV relaxes the eps_g-knowledge assumption: the attacker
// estimates eps'_g from uncertainty matching (§V-E) and attacks with
// it (with E_lambda lowered, since the estimate undershoots).
func TableIV(p Profile, w io.Writer) ([]TableIVRow, error) {
	fmt.Fprintf(w, "TABLE IV: attacker-estimated eps'_g and resulting HD(K*) (profile %s)\n", p.Name)
	fmt.Fprintf(w, "%-12s %8s %8s %9s %5s\n", "Bench", "eps%", "eps'%", "HD(K*)", "corr")
	hr(w, 48)
	var rows []TableIVRow
	for _, name := range tableIVCircuits {
		wl, err := BuildWorkload(p, name)
		if err != nil {
			return nil, err
		}
		for i, eps := range p.epsList(paperEps[name]) {
			orc := oracle.NewProbabilistic(wl.Locked.Circuit, wl.Locked.Key, eps, p.Seed+int64(i)*31)
			est := core.EstimateGateError(wl.Locked.Circuit, orc, core.EstimateOptions{
				NProbe: max(5, p.BERInputs/4),
				Ns:     p.Ns,
				NKeys:  4,
				Seed:   p.Seed + int64(i),
			})
			// Attack with the estimate; lower E_lambda as the paper
			// does because eps' < eps deflates the BER estimates.
			var out RunOutcome
			for nInst := 1; nInst <= p.MaxNInst; nInst *= 2 {
				opts := p.attackOpts(est, nInst, p.Seed+int64(nInst)*7)
				opts.ELambda = 0.15
				out, err = runAttack(p, wl, eps, opts, p.Seed+int64(nInst)*4001+int64(i))
				if err != nil {
					return nil, err
				}
				if out.CorrectAny {
					break
				}
			}
			row := TableIVRow{Bench: wl.Orig.Name, EpsPct: eps * 100, EpsEstPct: est * 100}
			if out.Res != nil && out.Res.Best != nil {
				row.HDBest = out.Res.Best.HD
				row.Correct = out.CorrectAny
				row.KeysFound = len(out.Res.Keys)
			}
			rows = append(rows, row)
			mark := " "
			if row.Correct {
				mark = "*"
			}
			fmt.Fprintf(w, "%-12s %8.2f %8.3f %8.4f%s %5v\n",
				row.Bench, row.EpsPct, row.EpsEstPct, row.HDBest, mark, row.Correct)
		}
	}
	return rows, nil
}

// TableVRow is one PSAT-vs-StatSAT comparison line.
type TableVRow struct {
	Bench        string
	EpsPct       float64
	Runs         int
	PSATSuccess  int
	StatSATFound bool
}

// tableVWorkloads matches the paper's Table V columns. The c880
// ladder is shifted low relative to Table II so the PSAT-success →
// PSAT-failure gradient of the paper's Table V stays visible on the
// scaled stand-in (whose per-output BER at a given eps_g differs from
// the original netlist's).
var tableVWorkloads = []struct {
	name   string
	epsPct []float64
}{
	{"c880", []float64{0.2, 0.5, 1.0}},
	{"b15", []float64{0.1, 0.2}},
	{"c3540", []float64{1.25}},
	{"b14", []float64{0.5}},
	{"c7552", []float64{2.0}},
}

// TableV compares PSAT's success rate over repeated runs with whether
// StatSAT recovers the correct key.
func TableV(p Profile, w io.Writer) ([]TableVRow, error) {
	fmt.Fprintf(w, "TABLE V: runs (out of %d) in which PSAT found the correct key vs StatSAT (profile %s)\n", p.Runs, p.Name)
	fmt.Fprintf(w, "%-12s %6s %12s %10s\n", "Circuit", "eps%", "PSAT-succ", "StatSAT?")
	hr(w, 44)
	var rows []TableVRow
	for _, tv := range tableVWorkloads {
		wl, err := BuildWorkload(p, tv.name)
		if err != nil {
			return nil, err
		}
		epsPts := tv.epsPct
		if p.EpsPoints > 0 && p.EpsPoints < len(epsPts) {
			epsPts = epsPts[:p.EpsPoints]
		}
		for i, pct := range epsPts {
			eps := pct / 100 * p.EpsFactor
			succ := 0
			for r := 0; r < p.Runs; r++ {
				orc := oracle.NewProbabilistic(wl.Locked.Circuit, wl.Locked.Key, eps, p.Seed+int64(r)*97+int64(i))
				res, err := attack.PSAT(wl.Locked.Circuit, orc, attack.PSATOptions{
					Ns:      p.Ns,
					MaxIter: p.MaxTotalIter,
					Seed:    p.Seed + int64(r),
				})
				if err != nil || res.Failed || res.Key == nil {
					continue
				}
				eq, err := metrics.KeysEquivalent(wl.Locked.Circuit, res.Key, wl.Locked.Key)
				if err != nil {
					return nil, err
				}
				if eq {
					succ++
				}
			}
			out, err := runDoubling(p, wl, eps, p.Seed+int64(i)*313)
			if err != nil {
				return nil, err
			}
			row := TableVRow{
				Bench:        wl.Orig.Name,
				EpsPct:       eps * 100,
				Runs:         p.Runs,
				PSATSuccess:  succ,
				StatSATFound: out.CorrectAny,
			}
			rows = append(rows, row)
			statsatStr := "No"
			if row.StatSATFound {
				statsatStr = "Yes"
			}
			fmt.Fprintf(w, "%-12s %6.2f %8d/%-3d %10s\n", row.Bench, row.EpsPct, succ, p.Runs, statsatStr)
		}
	}
	return rows, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
