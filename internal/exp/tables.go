package exp

import (
	"context"
	"fmt"
	"io"

	"statsat/internal/attack"
	"statsat/internal/core"
	"statsat/internal/metrics"
	"statsat/internal/oracle"
)

// TableIRow is one benchmark inventory line.
type TableIRow struct {
	Name    string
	Source  string
	Inputs  int
	Gates   int
	Outputs int
}

// TableI regenerates the benchmark inventory at the profile's scale
// (at scale 1 the numbers equal the published ones). Workload builds
// fan out across the scheduler pool; rows print in Table I order.
func TableI(ctx context.Context, p Profile, w io.Writer) []TableIRow {
	fmt.Fprintf(w, "TABLE I: Benchmark circuits and their source (profile %s, scale %d)\n", p.Name, p.Scale)
	fmt.Fprintf(w, "%-10s %-8s %8s %8s %8s\n", "Benchmark", "Source", "Inputs", "Gates", "Outputs")
	hr(w, 46)
	rows := make([]TableIRow, len(benchOrder))
	runOrdered(ctx, p.workers(), len(benchOrder), func(i int) error {
		b, _ := ProfileBench(p, benchOrder[i])
		rows[i] = b
		return nil
	}, func(i int) {
		b := rows[i]
		fmt.Fprintf(w, "%-10s %-8s %8d %8d %8d\n", b.Name, b.Source, b.Inputs, b.Gates, b.Outputs)
	})
	return rows
}

// benchOrder is Table I's row order (c880 appended for Table V).
var benchOrder = []string{"c3540", "c7552", "ex1010", "seq", "b14", "b15", "c880"}

// ProfileBench reports the actual dimensions of a stand-in at the
// profile's scale.
func ProfileBench(p Profile, name string) (TableIRow, error) {
	w, err := BuildWorkload(p, name)
	if err != nil {
		return TableIRow{}, err
	}
	s := w.Orig.Summary()
	return TableIRow{Name: w.Orig.Name, Source: w.Bench.Source, Inputs: s.Inputs, Gates: s.Gates, Outputs: s.Outputs}, nil
}

// TableIIRow is one (circuit, eps_g) attack line of Table II.
type TableIIRow struct {
	Bench   string
	Lock    string
	EpsPct  float64 // profile-adjusted, in percent
	Label   string  // A, B, C, ...
	AvgBER  float64
	MaxBER  float64
	NInst   int
	NumKeys int
	HDBest  float64
	Correct bool
	// Iterations/time feed Fig. 4/5 from the same runs.
	Iterations     int
	AttackSeconds  float64
	EvalPerKeySecs float64
	// Standard SAT on the deterministic circuit, for Fig. 4/5 bars.
	StdIterations int
	StdSeconds    float64
}

// tableIICircuits are the circuits the paper sweeps in Table II.
var tableIICircuits = []string{"c3540", "c7552", "seq", "b14", "ex1010", "b15"}

// TableII runs the headline experiment: for each circuit and eps_g,
// double N_inst until the correct key is recovered; report measured
// oracle BERs, the number of keys returned, and HD(K*). Every
// (circuit, eps) cell is an independent scheduler job with
// coordinate-derived seeds; rows are emitted in table order, so the
// output is byte-identical for any Profile.Workers.
func TableII(ctx context.Context, p Profile, w io.Writer) ([]TableIIRow, error) {
	fmt.Fprintf(w, "TABLE II: N_inst required to find the correct key vs eps_g (profile %s)\n", p.Name)
	fmt.Fprintf(w, "%-12s %-10s %6s %4s %9s %9s %6s %4s %9s %5s %7s %8s\n",
		"Bench", "Lock", "eps%", "", "AvgBER", "MaxBER", "Ninst", "|K|", "HD(K*)", "corr", "iters", "T_atk(s)")
	hr(w, 106)
	nw := p.workers()

	// Stage 1: per-circuit workloads and deterministic SAT baselines.
	wls := make([]Workload, len(tableIICircuits))
	dets := make([]*attack.Result, len(tableIICircuits))
	if err := runOrdered(ctx, nw, len(tableIICircuits), func(i int) error {
		wl, err := BuildWorkload(p, tableIICircuits[i])
		if err != nil {
			return err
		}
		det, err := stdAttackBaseline(ctx, p, wl)
		if err != nil {
			return err
		}
		wls[i], dets[i] = wl, det
		return nil
	}, nil); err != nil {
		return nil, err
	}

	// Stage 2: one job per (circuit, eps) cell.
	type cell struct {
		ci, ei int
		eps    float64
	}
	var cells []cell
	for ci, name := range tableIICircuits {
		for ei, eps := range p.epsList(paperEps[name]) {
			cells = append(cells, cell{ci, ei, eps})
		}
	}
	rows := make([]TableIIRow, len(cells))
	emitted := 0
	err := runOrdered(ctx, nw, len(cells), func(i int) error {
		c := cells[i]
		wl, det := wls[c.ci], dets[c.ci]
		ber := metrics.MeasureBER(wl.Locked.Circuit, wl.Locked.Key, c.eps,
			p.BERInputs, p.BERSamples, deriveSeed(p.Seed, "table2-ber", wl.Bench.Name, c.eps))
		out, err := runDoubling(ctx, p, wl, c.eps,
			fmt.Sprintf("table2/%s/eps%s", wl.Bench.Name, epsLabel(c.ei)))
		if err != nil {
			return err
		}
		row := TableIIRow{
			Bench:         wl.Orig.Name,
			Lock:          wl.LockName(),
			EpsPct:        c.eps * 100,
			Label:         epsLabel(c.ei),
			AvgBER:        ber.Avg,
			MaxBER:        ber.Max,
			NInst:         out.NInst,
			StdIterations: det.Iterations,
			StdSeconds:    det.Duration.Seconds(),
		}
		if out.Res != nil {
			row.NumKeys = len(out.Res.Keys)
			row.AttackSeconds = out.Res.AttackDuration.Seconds()
			row.EvalPerKeySecs = out.Res.EvalPerKey.Seconds()
			if out.Res.Best != nil {
				row.HDBest = out.Res.Best.HD
				row.Correct = out.CorrectAny
				row.Iterations = bestIterations(out)
			}
		}
		rows[i] = row
		return nil
	}, func(i int) {
		row := rows[i]
		fmt.Fprintf(w, "%-12s %-10s %6.2f (%s) %9.4f %9.4f %6d %4d %9.4f %5v %7d %8.2f\n",
			row.Bench, row.Lock, row.EpsPct, row.Label, row.AvgBER, row.MaxBER,
			row.NInst, row.NumKeys, row.HDBest, row.Correct, row.Iterations, row.AttackSeconds)
		emitted = i + 1
	})
	if err != nil {
		// Partial-output contract: the rows already emitted (a prefix,
		// in table order) are returned so callers can flush partial CSV.
		return rows[:emitted], err
	}
	storeTableII(p, rows)
	return rows, nil
}

// bestIterations returns the iteration count of the instance that
// produced the correct key when known, else the best key's instance.
func bestIterations(out RunOutcome) int {
	if out.Res == nil || out.Res.Best == nil {
		return 0
	}
	return out.Res.Best.Iterations
}

// stdAttackBaseline runs the standard SAT attack on the deterministic
// version of the locked circuit ("only for the sake of comparison",
// Fig. 4's grey bars).
func stdAttackBaseline(ctx context.Context, p Profile, wl Workload) (*attack.Result, error) {
	orc := oracle.NewDeterministic(wl.Locked.Circuit, wl.Locked.Key)
	return attack.StandardSAT(ctx, wl.Locked.Circuit, orc, p.MaxTotalIter)
}

// TableIIIRow is one (circuit, N_inst) entry: HD(K*) across the
// N_inst sweep; Correct mirrors the paper's boldface.
type TableIIIRow struct {
	Bench   string
	EpsPct  float64
	NInst   int
	NumKeys int
	HDBest  float64
	FMBest  float64
	Correct bool
	// TotalSeconds = T_attack + |K|·T_eval (Fig. 6's x-axis).
	TotalSeconds float64
}

// tableIIICircuits: the paper uses a fixed eps per circuit; we take
// point B of each circuit's sweep.
var tableIIICircuits = []string{"c3540", "c7552", "seq", "b14"}

// nInstLadder lists the N_inst sweep points 1, 2, 4, ..., cap.
func nInstLadder(cap int) []int {
	var out []int
	for n := 1; n <= cap; n *= 2 {
		out = append(out, n)
	}
	return out
}

// TableIII sweeps N_inst at fixed eps_g, reporting HD(K*) (Table III)
// and FM(K*) vs total time (Fig. 6 uses the same rows). Each
// (circuit, N_inst) point is an independent scheduler job.
func TableIII(ctx context.Context, p Profile, w io.Writer) ([]TableIIIRow, error) {
	fmt.Fprintf(w, "TABLE III: HD(K*) vs N_inst at fixed eps_g (profile %s; * marks the correct key)\n", p.Name)
	fmt.Fprintf(w, "%-12s %6s %6s %4s %9s %9s %10s\n", "Bench", "eps%", "Ninst", "|K|", "HD(K*)", "FM(K*)", "T_total(s)")
	hr(w, 64)
	nw := p.workers()

	wls := make([]Workload, len(tableIIICircuits))
	if err := runOrdered(ctx, nw, len(tableIIICircuits), func(i int) error {
		wl, err := BuildWorkload(p, tableIIICircuits[i])
		if err != nil {
			return err
		}
		wls[i] = wl
		return nil
	}, nil); err != nil {
		return nil, err
	}

	ladder := nInstLadder(p.MaxNInst)
	type cell struct {
		ci    int
		nInst int
	}
	var cells []cell
	for ci := range tableIIICircuits {
		for _, n := range ladder {
			cells = append(cells, cell{ci, n})
		}
	}
	rows := make([]TableIIIRow, len(cells))
	emitted := 0
	err := runOrdered(ctx, nw, len(cells), func(i int) error {
		c := cells[i]
		wl := wls[c.ci]
		epsPts := p.epsList(paperEps[tableIIICircuits[c.ci]])
		eps := epsPts[min(1, len(epsPts)-1)] // point B
		opts := p.attackOpts(eps, c.nInst,
			deriveSeed(p.Seed, "table3-attack", wl.Bench.Name, wl.LockName(), eps, c.nInst))
		out, err := runAttack(ctx, p, wl, eps, opts,
			deriveSeed(p.Seed, "table3-oracle", wl.Bench.Name, wl.LockName(), eps, c.nInst),
			fmt.Sprintf("table3/%s/n%d", wl.Bench.Name, c.nInst))
		if err != nil {
			return err
		}
		row := TableIIIRow{Bench: wl.Orig.Name, EpsPct: eps * 100, NInst: c.nInst}
		if out.Res != nil && out.Res.Best != nil {
			row.NumKeys = len(out.Res.Keys)
			row.HDBest = out.Res.Best.HD
			row.FMBest = out.Res.Best.FM
			row.Correct = out.CorrectAny
			row.TotalSeconds = out.Res.AttackDuration.Seconds() +
				float64(len(out.Res.Keys))*out.Res.EvalPerKey.Seconds()
		}
		rows[i] = row
		return nil
	}, func(i int) {
		row := rows[i]
		emitted = i + 1
		if row.NumKeys == 0 {
			fmt.Fprintf(w, "%-12s %6.2f %6d    -         -         -          -\n",
				row.Bench, row.EpsPct, row.NInst)
			return
		}
		mark := " "
		if row.Correct {
			mark = "*"
		}
		fmt.Fprintf(w, "%-12s %6.2f %6d %4d %8.4f%s %9.4f %10.2f\n",
			row.Bench, row.EpsPct, row.NInst, row.NumKeys, row.HDBest, mark, row.FMBest, row.TotalSeconds)
	})
	if err != nil {
		return rows[:emitted], err
	}
	storeTableIII(p, rows)
	return rows, nil
}

// TableIVRow is one eps'_g estimation line.
type TableIVRow struct {
	Bench     string
	EpsPct    float64 // true eps_g (percent)
	EpsEstPct float64 // attacker's estimate (percent)
	HDBest    float64
	Correct   bool
	KeysFound int
}

// tableIVCircuits matches the paper (c3540, c7552, b14).
var tableIVCircuits = []string{"c3540", "c7552", "b14"}

// TableIV relaxes the eps_g-knowledge assumption: the attacker
// estimates eps'_g from uncertainty matching (§V-E) and attacks with
// it (with E_lambda lowered, since the estimate undershoots). One
// scheduler job per (circuit, eps) cell; the estimation and its
// doubling search stay inside the cell.
func TableIV(ctx context.Context, p Profile, w io.Writer) ([]TableIVRow, error) {
	fmt.Fprintf(w, "TABLE IV: attacker-estimated eps'_g and resulting HD(K*) (profile %s)\n", p.Name)
	fmt.Fprintf(w, "%-12s %8s %8s %9s %5s\n", "Bench", "eps%", "eps'%", "HD(K*)", "corr")
	hr(w, 48)
	nw := p.workers()

	wls := make([]Workload, len(tableIVCircuits))
	if err := runOrdered(ctx, nw, len(tableIVCircuits), func(i int) error {
		wl, err := BuildWorkload(p, tableIVCircuits[i])
		if err != nil {
			return err
		}
		wls[i] = wl
		return nil
	}, nil); err != nil {
		return nil, err
	}

	type cell struct {
		ci  int
		eps float64
	}
	var cells []cell
	for ci, name := range tableIVCircuits {
		for _, eps := range p.epsList(paperEps[name]) {
			cells = append(cells, cell{ci, eps})
		}
	}
	rows := make([]TableIVRow, len(cells))
	emitted := 0
	err := runOrdered(ctx, nw, len(cells), func(i int) error {
		c := cells[i]
		wl := wls[c.ci]
		orc := oracle.NewProbabilistic(wl.Locked.Circuit, wl.Locked.Key, c.eps,
			deriveSeed(p.Seed, "table4-est-oracle", wl.Bench.Name, c.eps))
		est := core.EstimateGateError(ctx, wl.Locked.Circuit, orc, core.EstimateOptions{
			NProbe: max(5, p.BERInputs/4),
			Ns:     p.Ns,
			NKeys:  4,
			Seed:   deriveSeed(p.Seed, "table4-est", wl.Bench.Name, c.eps),
		})
		// Attack with the estimate; lower E_lambda as the paper
		// does because eps' < eps deflates the BER estimates.
		var out RunOutcome
		for _, nInst := range nInstLadder(p.MaxNInst) {
			opts := p.attackOpts(est, nInst,
				deriveSeed(p.Seed, "table4-attack", wl.Bench.Name, wl.LockName(), c.eps, nInst))
			opts.ELambda = 0.15
			var err error
			out, err = runAttack(ctx, p, wl, c.eps, opts,
				deriveSeed(p.Seed, "table4-oracle", wl.Bench.Name, wl.LockName(), c.eps, nInst),
				fmt.Sprintf("table4/%s/eps%.4g_n%d", wl.Bench.Name, c.eps, nInst))
			if err != nil {
				return err
			}
			if out.CorrectAny {
				break
			}
		}
		row := TableIVRow{Bench: wl.Orig.Name, EpsPct: c.eps * 100, EpsEstPct: est * 100}
		if out.Res != nil && out.Res.Best != nil {
			row.HDBest = out.Res.Best.HD
			row.Correct = out.CorrectAny
			row.KeysFound = len(out.Res.Keys)
		}
		rows[i] = row
		return nil
	}, func(i int) {
		row := rows[i]
		mark := " "
		if row.Correct {
			mark = "*"
		}
		fmt.Fprintf(w, "%-12s %8.2f %8.3f %8.4f%s %5v\n",
			row.Bench, row.EpsPct, row.EpsEstPct, row.HDBest, mark, row.Correct)
		emitted = i + 1
	})
	if err != nil {
		return rows[:emitted], err
	}
	return rows, nil
}

// TableVRow is one PSAT-vs-StatSAT comparison line.
type TableVRow struct {
	Bench        string
	EpsPct       float64
	Runs         int
	PSATSuccess  int
	StatSATFound bool
}

// tableVWorkloads matches the paper's Table V columns. The c880
// ladder is shifted low relative to Table II so the PSAT-success →
// PSAT-failure gradient of the paper's Table V stays visible on the
// scaled stand-in (whose per-output BER at a given eps_g differs from
// the original netlist's).
var tableVWorkloads = []struct {
	name   string
	epsPct []float64
}{
	{"c880", []float64{0.2, 0.5, 1.0}},
	{"b15", []float64{0.1, 0.2}},
	{"c3540", []float64{1.25}},
	{"b14", []float64{0.5}},
	{"c7552", []float64{2.0}},
}

// TableV compares PSAT's success rate over repeated runs with whether
// StatSAT recovers the correct key. The job fan-out is trial-level:
// every PSAT repetition and every StatSAT doubling search is its own
// scheduler job (the paper's 20 PSAT runs per cell dominate the
// cost), and a cell's row is emitted once its last job lands.
func TableV(ctx context.Context, p Profile, w io.Writer) ([]TableVRow, error) {
	fmt.Fprintf(w, "TABLE V: runs (out of %d) in which PSAT found the correct key vs StatSAT (profile %s)\n", p.Runs, p.Name)
	fmt.Fprintf(w, "%-12s %6s %12s %10s\n", "Circuit", "eps%", "PSAT-succ", "StatSAT?")
	hr(w, 44)
	nw := p.workers()

	// Distinct circuits, then cells referencing them.
	wls := make([]Workload, len(tableVWorkloads))
	if err := runOrdered(ctx, nw, len(tableVWorkloads), func(i int) error {
		wl, err := BuildWorkload(p, tableVWorkloads[i].name)
		if err != nil {
			return err
		}
		wls[i] = wl
		return nil
	}, nil); err != nil {
		return nil, err
	}

	type cell struct {
		wi  int
		eps float64
	}
	var cells []cell
	for wi, tv := range tableVWorkloads {
		epsPts := tv.epsPct
		if p.EpsPoints > 0 && p.EpsPoints < len(epsPts) {
			epsPts = epsPts[:p.EpsPoints]
		}
		for _, pct := range epsPts {
			cells = append(cells, cell{wi, pct / 100 * p.EpsFactor})
		}
	}

	// Job layout: p.Runs PSAT trials then one StatSAT search per cell.
	perCell := p.Runs + 1
	psatOK := make([]bool, len(cells)*p.Runs)
	statOut := make([]RunOutcome, len(cells))
	rows := make([]TableVRow, 0, len(cells))
	err := runOrdered(ctx, nw, len(cells)*perCell, func(i int) error {
		ci, r := i/perCell, i%perCell
		c := cells[ci]
		wl := wls[c.wi]
		if r == p.Runs {
			out, err := runDoubling(ctx, p, wl, c.eps,
				fmt.Sprintf("table5/%s/eps%.4g", wl.Bench.Name, c.eps))
			if err != nil {
				return err
			}
			statOut[ci] = out
			return nil
		}
		orc := oracle.NewProbabilistic(wl.Locked.Circuit, wl.Locked.Key, c.eps,
			deriveSeed(p.Seed, "table5-psat-oracle", wl.Bench.Name, c.eps, r))
		res, err := attack.PSAT(ctx, wl.Locked.Circuit, orc, attack.PSATOptions{
			Ns:      p.Ns,
			MaxIter: p.MaxTotalIter,
			Seed:    deriveSeed(p.Seed, "table5-psat", wl.Bench.Name, c.eps, r),
		})
		if err != nil || res.Failed || res.Key == nil {
			return nil // a failed PSAT run is data, not an error
		}
		eq, err := metrics.KeysEquivalent(wl.Locked.Circuit, res.Key, wl.Locked.Key)
		if err != nil {
			return err
		}
		psatOK[ci*p.Runs+r] = eq
		return nil
	}, func(i int) {
		ci, r := i/perCell, i%perCell
		if r != perCell-1 {
			return // row completes with the cell's last job
		}
		c := cells[ci]
		succ := 0
		for _, ok := range psatOK[ci*p.Runs : (ci+1)*p.Runs] {
			if ok {
				succ++
			}
		}
		row := TableVRow{
			Bench:        wls[c.wi].Orig.Name,
			EpsPct:       c.eps * 100,
			Runs:         p.Runs,
			PSATSuccess:  succ,
			StatSATFound: statOut[ci].CorrectAny,
		}
		rows = append(rows, row)
		statsatStr := "No"
		if row.StatSATFound {
			statsatStr = "Yes"
		}
		fmt.Fprintf(w, "%-12s %6.2f %8d/%-3d %10s\n", row.Bench, row.EpsPct, succ, p.Runs, statsatStr)
	})
	if err != nil {
		// rows accumulates in emit order, so it already holds exactly
		// the flushed prefix of cells.
		return rows, err
	}
	return rows, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
