package exp

import (
	"context"
	"fmt"
	"io"
	"strings"
)

// Fig4Row is one bar pair of Fig. 4: StatSAT iterations (winning
// instance) vs standard SAT iterations on the deterministic circuit.
type Fig4Row struct {
	Bench         string
	Label         string
	EpsPct        float64
	StatSATIters  int
	StandardIters int
}

// Fig4 regenerates the iteration comparison from the Table II runs.
func Fig4(ctx context.Context, p Profile, w io.Writer) ([]Fig4Row, error) {
	rows, err := tableIICached(ctx, p)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "FIG 4: iterations of StatSAT (winning instance) vs standard SAT (profile %s)\n", p.Name)
	fmt.Fprintf(w, "%-12s %4s %6s %10s %10s  %s\n", "Bench", "", "eps%", "StatSAT", "StdSAT", "bar (# = StatSAT, . = StdSAT)")
	hr(w, 92)
	var out []Fig4Row
	maxIter := 1
	for _, r := range rows {
		if r.Iterations > maxIter {
			maxIter = r.Iterations
		}
		if r.StdIterations > maxIter {
			maxIter = r.StdIterations
		}
	}
	for _, r := range rows {
		fr := Fig4Row{Bench: r.Bench, Label: r.Label, EpsPct: r.EpsPct,
			StatSATIters: r.Iterations, StandardIters: r.StdIterations}
		out = append(out, fr)
		fmt.Fprintf(w, "%-12s (%s) %6.2f %10d %10d  %s\n",
			fr.Bench, fr.Label, fr.EpsPct, fr.StatSATIters, fr.StandardIters,
			bar(fr.StatSATIters, maxIter, '#')+" "+bar(fr.StandardIters, maxIter, '.'))
	}
	return out, nil
}

// Fig5Row is one bar group of Fig. 5: T_attack per eps_g and T_eval
// per key, against the standard SAT attack time.
type Fig5Row struct {
	Bench          string
	Label          string
	EpsPct         float64
	AttackSeconds  float64
	EvalPerKeySecs float64
	StdSeconds     float64
}

// Fig5 regenerates the timing comparison from the Table II runs.
func Fig5(ctx context.Context, p Profile, w io.Writer) ([]Fig5Row, error) {
	rows, err := tableIICached(ctx, p)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "FIG 5: T_attack and per-key T_eval vs standard SAT time (profile %s)\n", p.Name)
	fmt.Fprintf(w, "%-12s %4s %6s %12s %12s %12s\n", "Bench", "", "eps%", "T_attack(s)", "T_eval/key(s)", "T_stdSAT(s)")
	hr(w, 66)
	var out []Fig5Row
	for _, r := range rows {
		fr := Fig5Row{Bench: r.Bench, Label: r.Label, EpsPct: r.EpsPct,
			AttackSeconds: r.AttackSeconds, EvalPerKeySecs: r.EvalPerKeySecs, StdSeconds: r.StdSeconds}
		out = append(out, fr)
		fmt.Fprintf(w, "%-12s (%s) %6.2f %12.3f %12.3f %12.3f\n",
			fr.Bench, fr.Label, fr.EpsPct, fr.AttackSeconds, fr.EvalPerKeySecs, fr.StdSeconds)
	}
	return out, nil
}

// Fig6Point is one scatter point of Fig. 6: FM(K*) vs total time,
// annotated with N_inst.
type Fig6Point struct {
	Bench        string
	NInst        int
	TotalSeconds float64
	FMBest       float64
	Correct      bool
}

// Fig6 regenerates the time/quality trade-off from the Table III runs.
func Fig6(ctx context.Context, p Profile, w io.Writer) ([]Fig6Point, error) {
	rows, err := tableIIICached(ctx, p)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "FIG 6: FM(K*) vs total attack time, annotated with N_inst (profile %s)\n", p.Name)
	fmt.Fprintf(w, "%-12s %6s %12s %9s %5s\n", "Bench", "Ninst", "T_total(s)", "FM(K*)", "corr")
	hr(w, 50)
	var out []Fig6Point
	for _, r := range rows {
		if r.NumKeys == 0 {
			continue
		}
		pt := Fig6Point{Bench: r.Bench, NInst: r.NInst, TotalSeconds: r.TotalSeconds,
			FMBest: r.FMBest, Correct: r.Correct}
		out = append(out, pt)
		fmt.Fprintf(w, "%-12s %6d %12.2f %9.4f %5v\n", pt.Bench, pt.NInst, pt.TotalSeconds, pt.FMBest, pt.Correct)
	}
	return out, nil
}

func bar(v, max int, ch byte) string {
	const width = 24
	n := 0
	if max > 0 {
		n = v * width / max
	}
	if n > width {
		n = width
	}
	return strings.Repeat(string(ch), n)
}

// AblationRow is one line of the design-choice ablation study
// (DESIGN.md §5): gating and key-averaging switched off one at a time.
type AblationRow struct {
	Variant   string
	NumKeys   int
	HDBest    float64
	Correct   bool
	Dead      int
	Forks     int
	AttackSec float64
}

// Ablations runs StatSAT variants on the suite's highest-BER workload
// (seq at its hottest eps point — the regime where gating and
// duplication carry the attack): full (paper defaults), no-U-gating
// (U_lambda=0.5), no-E-gating (E_lambda=1.0), no-duplication
// (N_inst=1) and single-key BER estimation (N_satis=1).
func Ablations(ctx context.Context, p Profile, w io.Writer) ([]AblationRow, error) {
	wl, err := BuildWorkload(p, "seq")
	if err != nil {
		return nil, err
	}
	epsPts := p.epsList(paperEps["seq"])
	eps := epsPts[len(epsPts)-1]
	fmt.Fprintf(w, "ABLATIONS on %s at eps=%.2f%% (profile %s)\n", wl.Orig.Name, eps*100, p.Name)
	fmt.Fprintf(w, "%-16s %4s %9s %5s %5s %6s %9s\n", "Variant", "|K|", "HD(K*)", "corr", "dead", "forks", "T_atk(s)")
	hr(w, 60)

	variants := []struct {
		name   string
		mutate func(*Profile, *float64, *float64, *int, *int)
	}{
		{"full", func(*Profile, *float64, *float64, *int, *int) {}},
		{"no-U-gating", func(_ *Profile, ul *float64, _ *float64, _ *int, _ *int) { *ul = 0.5 }},
		{"no-E-gating", func(_ *Profile, _ *float64, el *float64, _ *int, _ *int) { *el = 1.0 }},
		{"no-duplication", func(_ *Profile, _ *float64, _ *float64, ni *int, _ *int) { *ni = 1 }},
		{"single-key-BER", func(_ *Profile, _ *float64, _ *float64, _ *int, ns *int) { *ns = 1 }},
	}
	// One scheduler job per variant, all sharing the warmed workload.
	rows := make([]AblationRow, len(variants))
	emitted := 0
	err = runOrdered(ctx, p.workers(), len(variants), func(i int) error {
		v := variants[i]
		pp := p                      // each job mutates its own profile copy
		uLambda, eLambda := 0.0, 0.0 // 0 selects the paper defaults
		nInst, nSatis := pp.MaxNInst, pp.NSatis
		v.mutate(&pp, &uLambda, &eLambda, &nInst, &nSatis)
		opts := pp.attackOpts(eps, nInst, deriveSeed(p.Seed, "ablation-attack", v.name))
		opts.ULambda = uLambda
		opts.ELambda = eLambda
		opts.NSatis = nSatis
		out, err := runAttack(ctx, pp, wl, eps, opts,
			deriveSeed(p.Seed, "ablation-oracle", v.name),
			fmt.Sprintf("ablation/%s", v.name))
		if err != nil {
			return err
		}
		row := AblationRow{Variant: v.name}
		if out.Res != nil {
			row.Dead = out.Res.DeadInstances
			row.Forks = out.Res.Forks
			row.AttackSec = out.Res.AttackDuration.Seconds()
			if out.Res.Best != nil {
				row.NumKeys = len(out.Res.Keys)
				row.HDBest = out.Res.Best.HD
				row.Correct = out.CorrectAny
			}
		}
		rows[i] = row
		return nil
	}, func(i int) {
		row := rows[i]
		fmt.Fprintf(w, "%-16s %4d %9.4f %5v %5d %6d %9.2f\n",
			row.Variant, row.NumKeys, row.HDBest, row.Correct, row.Dead, row.Forks, row.AttackSec)
		emitted = i + 1
	})
	if err != nil {
		return rows[:emitted], err
	}
	return rows, nil
}
