// Package exp is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (§V) — Table I (benchmarks),
// Table II (N_inst vs eps_g), Table III (HD vs N_inst), Table IV
// (estimated eps'_g), Table V (PSAT comparison), Fig. 4 (iterations),
// Fig. 5 (attack/eval time) and Fig. 6 (FM vs total time) — plus the
// ablations called out in DESIGN.md §5.
//
// Experiments run under a Profile: "paper" keeps the published
// parameters (full-size circuits, Ns=500, N_eval=2000, 16-bit SFLL
// keys) and takes hours; "quick" scales circuits and sampling down so
// the full suite finishes in minutes while preserving every trend the
// paper claims; "smoke" is for unit tests and the bench harness.
package exp

import (
	"fmt"
	"io"
)

// Profile fixes every knob of an experiment run.
type Profile struct {
	Name string
	// Scale divides benchmark gate counts (1 = published size).
	Scale int
	// Attack-side parameters (paper: 500 / 100 / 2000).
	Ns     int
	NSatis int
	NEval  int
	EvalNs int
	// Key widths: the paper uses 16-bit SFLL-HD keys, a 253-bit SLL
	// key on ex1010, and 32-bit keys on c880 (Table V).
	SFLLKeyBits int
	SLLKeyBits  int
	C880KeyBits int
	// BER measurement (Table II: 100 random inputs).
	BERInputs  int
	BERSamples int
	// MaxNInst caps the N_inst doubling search.
	MaxNInst int
	// EpsFactor rescales the paper's eps_g percentages: scaled-down
	// stand-in circuits are shallower, so the same gate error yields
	// lower output BERs; a factor > 1 restores comparable BER levels.
	EpsFactor float64
	// EpsPoints limits how many eps_g rows run per circuit (0 = all).
	EpsPoints int
	// Runs is the number of repetitions for Table V (paper: 20).
	Runs int
	// MaxTotalIter is the per-attack iteration safety net.
	MaxTotalIter int
	// Seed namespaces all randomness.
	Seed int64
	// Workers bounds the experiment scheduler's worker pool: every
	// (circuit, technique, eps, trial) cell is an independent job with
	// a seed derived from its coordinates, so results are byte-identical
	// for any worker count. 0 means one worker per CPU
	// (runtime.GOMAXPROCS); 1 forces the sequential path.
	Workers int
	// TraceDir, when non-empty, records one JSON-lines trace file per
	// attack run under this directory (schema: docs/OBSERVABILITY.md).
	// Trace files ride alongside the CSV exports; tracing failures are
	// reported on stderr but never fail an experiment.
	TraceDir string
	// Verbose additionally streams a human-readable rendering of every
	// trace event to stderr.
	Verbose bool
}

// Paper reproduces the published setup. Expect multi-hour runtimes.
var Paper = Profile{
	Name:        "paper",
	Scale:       1,
	Ns:          500,
	NSatis:      100,
	NEval:       2000,
	EvalNs:      500,
	SFLLKeyBits: 16,
	SLLKeyBits:  253,
	C880KeyBits: 32,
	BERInputs:   100,
	BERSamples:  500,
	MaxNInst:    64,
	EpsFactor:   1,
	Runs:        20,

	MaxTotalIter: 200000,
	Seed:         20200720,
}

// Quick preserves the paper's trends at CI-friendly cost (minutes).
var Quick = Profile{
	Name:        "quick",
	Scale:       16,
	Ns:          512,
	NSatis:      16,
	NEval:       100,
	EvalNs:      256,
	SFLLKeyBits: 8,
	SLLKeyBits:  24,
	C880KeyBits: 16,
	BERInputs:   64,
	BERSamples:  256,
	MaxNInst:    64,
	EpsFactor:   1.5,
	Runs:        8,

	MaxTotalIter: 6000,
	Seed:         20200720,
}

// Smoke is for unit tests: seconds, trends still visible on the
// smallest circuits.
var Smoke = Profile{
	Name:        "smoke",
	Scale:       48,
	Ns:          128,
	NSatis:      8,
	NEval:       25,
	EvalNs:      128,
	SFLLKeyBits: 6,
	SLLKeyBits:  10,
	C880KeyBits: 10,
	BERInputs:   15,
	BERSamples:  60,
	MaxNInst:    8,
	EpsFactor:   2.5,
	EpsPoints:   2,
	Runs:        3,

	MaxTotalIter: 2500,
	Seed:         20200720,
}

// ProfileByName resolves "paper", "quick" or "smoke".
func ProfileByName(name string) (Profile, bool) {
	switch name {
	case "paper":
		return Paper, true
	case "quick":
		return Quick, true
	case "smoke":
		return Smoke, true
	}
	return Profile{}, false
}

// epsList returns the profile-adjusted eps_g values (fractions, not
// percent) for a circuit, honouring EpsPoints.
func (p Profile) epsList(paperPct []float64) []float64 {
	n := len(paperPct)
	if p.EpsPoints > 0 && p.EpsPoints < n {
		n = p.EpsPoints
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = paperPct[i] / 100 * p.EpsFactor
	}
	return out
}

// paperEps lists Table II's eps_g points (percent) per circuit, plus
// Table V's c880 points.
var paperEps = map[string][]float64{
	"c3540":  {1.25, 1.50, 1.75, 2.00},
	"c7552":  {2.00, 2.25, 2.50, 3.00},
	"seq":    {6.0, 7.0, 8.0, 9.0},
	"b14":    {0.50, 0.75, 0.80, 0.85},
	"ex1010": {0.4, 0.5, 0.6},
	"b15":    {0.2, 0.4, 0.5, 0.6},
	"c880":   {1.0, 1.5, 2.0},
}

// labels A, B, C, D used in the paper's tables and figure axes.
func epsLabel(i int) string { return string(rune('A' + i)) }

// hr prints a horizontal rule.
func hr(w io.Writer, n int) {
	for i := 0; i < n; i++ {
		fmt.Fprint(w, "-")
	}
	fmt.Fprintln(w)
}
