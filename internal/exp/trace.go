package exp

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"statsat/internal/core"
	"statsat/internal/trace"
)

// traceSeq numbers trace files process-wide so repeated runs of the
// same workload (doubling search, Table V repetitions) never collide.
var traceSeq atomic.Int64

// attachTrace wires a tracer into opts when the profile asks for one:
// a JSON-lines file per attack run under TraceDir, and/or a
// human-readable stream on stderr under Verbose. The returned closer
// flushes and closes the file; it is always safe to call. Tracing
// failures warn on stderr but never fail the experiment.
func (p Profile) attachTrace(opts *core.Options, w Workload, eps float64) func() {
	noop := func() {}
	var sinks []trace.Tracer
	if p.Verbose {
		sinks = append(sinks, trace.NewText(os.Stderr))
	}
	closer := noop
	if p.TraceDir != "" {
		if err := os.MkdirAll(p.TraceDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "exp: trace dir: %v\n", err)
		} else {
			name := fmt.Sprintf("%04d_%s_eps%.4g_n%d.jsonl",
				traceSeq.Add(1), w.Bench.Name, eps, opts.NInst)
			f, err := os.Create(filepath.Join(p.TraceDir, name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "exp: trace file: %v\n", err)
			} else {
				bw := bufio.NewWriter(f)
				sinks = append(sinks, trace.NewJSONL(bw))
				closer = func() {
					bw.Flush()
					f.Close()
				}
			}
		}
	}
	opts.Tracer = trace.Multi(sinks...)
	return closer
}
