package exp

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"statsat/internal/core"
	"statsat/internal/trace"
)

// traceFileName turns a run tag (its unique coordinate string, e.g.
// "table2/c3540/epsA_n2_retry") into a flat file name. Tags are
// unique by construction, so names are collision-free, deterministic,
// and independent of scheduling order or worker count — unlike a
// process-wide counter, which would number files by completion order.
func traceFileName(tag string) string {
	r := strings.NewReplacer("/", "_", " ", "_", "%", "pct")
	return r.Replace(tag) + ".jsonl"
}

// attachTrace wires a tracer into opts when the profile asks for one:
// a JSON-lines file per attack run under TraceDir (named after the
// run's tag), and/or a human-readable stream on stderr under Verbose.
// Each run writes its own file, so concurrent scheduler workers never
// interleave events. The returned closer flushes and closes the file;
// it is always safe to call. Tracing failures warn on stderr but
// never fail the experiment.
func (p Profile) attachTrace(opts *core.Options, tag string) func() {
	noop := func() {}
	var sinks []trace.Tracer
	if p.Verbose {
		sinks = append(sinks, trace.NewText(os.Stderr))
	}
	closer := noop
	if p.TraceDir != "" {
		if err := os.MkdirAll(p.TraceDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "exp: trace dir: %v\n", err)
		} else {
			f, err := os.Create(filepath.Join(p.TraceDir, traceFileName(tag)))
			if err != nil {
				fmt.Fprintf(os.Stderr, "exp: trace file: %v\n", err)
			} else {
				bw := bufio.NewWriter(f)
				sinks = append(sinks, trace.NewJSONL(bw))
				closer = func() {
					bw.Flush()
					f.Close()
				}
			}
		}
	}
	opts.Tracer = trace.Multi(sinks...)
	return closer
}
