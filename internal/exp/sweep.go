package exp

import (
	"context"
	"fmt"
	"io"

	"statsat/internal/metrics"
	"statsat/internal/oracle"
)

// SweepRow is one point of the Ns sweep: the oracle-sampling budget
// per distinguishing input against attack success and key quality.
// The paper fixes Ns=500 and notes T_eval ∝ Ns; this sweep makes the
// underlying trade-off explicit and adds the analytic sampling-noise
// floor (metrics.SamplingHDFloor) that explains the HD(K*) of exactly
// correct keys.
type SweepRow struct {
	Bench         string
	EpsPct        float64
	Ns            int
	Correct       bool
	HDBest        float64
	HDFloor       float64
	OracleQueries int64
	AttackSecs    float64
}

// SweepNs runs StatSAT on one mid-noise workload across sampling
// budgets Ns ∈ {32, 64, ..., p.Ns}.
func SweepNs(ctx context.Context, p Profile, w io.Writer) ([]SweepRow, error) {
	wl, err := BuildWorkload(p, "c3540")
	if err != nil {
		return nil, err
	}
	epsPts := p.epsList(paperEps["c3540"])
	eps := epsPts[min(1, len(epsPts)-1)]

	fmt.Fprintf(w, "SWEEP: HD(K*) and success vs oracle sampling budget Ns on %s at eps=%.2f%% (profile %s)\n",
		wl.Orig.Name, eps*100, p.Name)
	fmt.Fprintf(w, "%6s %5s %9s %10s %10s %9s\n", "Ns", "corr", "HD(K*)", "HDfloor", "queries", "T_atk(s)")
	hr(w, 56)

	var nsPts []int
	for ns := 32; ns <= p.Ns; ns *= 2 {
		nsPts = append(nsPts, ns)
	}
	rows := make([]SweepRow, len(nsPts))
	emitted := 0
	err = runOrdered(ctx, p.workers(), len(nsPts), func(i int) error {
		ns := nsPts[i]
		opts := p.attackOpts(eps, p.MaxNInst/2+1, deriveSeed(p.Seed, "sweep-attack", ns))
		opts.Ns = ns
		opts.EvalNs = ns
		out, err := runAttack(ctx, p, wl, eps, opts,
			deriveSeed(p.Seed, "sweep-oracle", ns), fmt.Sprintf("sweep/ns%d", ns))
		if err != nil {
			return err
		}
		row := SweepRow{Bench: wl.Orig.Name, EpsPct: eps * 100, Ns: ns}
		if out.Res != nil && out.Res.Best != nil {
			row.Correct = out.CorrectAny
			row.HDBest = out.Res.Best.HD
			row.OracleQueries = out.Res.OracleQueries
			row.AttackSecs = out.Res.AttackDuration.Seconds()
		}
		// Analytic floor for this Ns (fresh oracle, modest estimate).
		orc := oracle.NewProbabilistic(wl.Locked.Circuit, wl.Locked.Key, eps,
			deriveSeed(p.Seed, "sweep-floor-oracle", ns))
		rngInputs := metrics.RandomInputSet(wl.Locked.Circuit, 10,
			newSeededRand(deriveSeed(p.Seed, "sweep-floor-inputs", ns)))
		row.HDFloor = metrics.SamplingHDFloor(ctx, orc, rngInputs, ns, 2048)
		rows[i] = row
		return nil
	}, func(i int) {
		row := rows[i]
		fmt.Fprintf(w, "%6d %5v %9.4f %10.4f %10d %9.2f\n",
			row.Ns, row.Correct, row.HDBest, row.HDFloor, row.OracleQueries, row.AttackSecs)
		emitted = i + 1
	})
	if err != nil {
		return rows[:emitted], err
	}
	fmt.Fprintln(w, "\nReading: HD(K*) of a correct key tracks the sampling floor ~ 1/sqrt(Ns);")
	fmt.Fprintln(w, "the paper's remark that HD(K*) is pure sampling error is quantitative.")
	return rows, nil
}
