package exp

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"statsat/internal/lock"
	"statsat/internal/metrics"
)

// DefenseRow is one point of the future-work defense study: the same
// netlist locked with shallow (plain RLL) vs depth-targeted (RLL-deep)
// key gates, attacked by StatSAT at increasing eps_g. FuncBER is the
// chip's own average output error — the accuracy cost a defender pays
// for operating at that noise level.
type DefenseRow struct {
	Variant string
	EpsPct  float64
	FuncBER float64
	Correct bool
	HDBest  float64
	Forks   int
	Dead    int
	Iters   int
}

// Defense runs the defense exploration the paper's conclusion calls
// for: can noise placement/level defeat StatSAT, and at what cost?
func Defense(ctx context.Context, p Profile, w io.Writer) ([]DefenseRow, error) {
	wl, err := BuildWorkload(p, "c880") // plain RLL baseline workload
	if err != nil {
		return nil, err
	}
	// Depth-targeted variant on the same original netlist.
	rng := rand.New(rand.NewSource(p.Seed ^ 0xdef))
	deep, err := lock.RLLDeep(wl.Orig, p.C880KeyBits, rng)
	if err != nil {
		return nil, err
	}
	// Scheduler jobs share the deep circuit read-only; warm its lazy
	// topo-order cache like BuildWorkload does for the RLL one.
	deep.Circuit.MustTopoOrder()

	fmt.Fprintf(w, "DEFENSE STUDY: shallow RLL vs depth-targeted RLL-deep under StatSAT (profile %s)\n", p.Name)
	fmt.Fprintf(w, "%-10s %6s %9s %5s %9s %6s %5s %6s\n",
		"Variant", "eps%", "FuncBER", "corr", "HD(K*)", "forks", "dead", "iters")
	hr(w, 64)

	variants := []struct {
		name string
		l    *lock.Locked
	}{
		{"RLL", wl.Locked},
		{"RLL-deep", deep},
	}
	type cell struct {
		eps float64
		vi  int
	}
	var cells []cell
	for _, eps := range p.epsList(paperEps["c880"]) {
		for vi := range variants {
			cells = append(cells, cell{eps, vi})
		}
	}
	rows := make([]DefenseRow, len(cells))
	emitted := 0
	err = runOrdered(ctx, p.workers(), len(cells), func(i int) error {
		c := cells[i]
		v := variants[c.vi]
		vwl := Workload{Bench: wl.Bench, Orig: wl.Orig, Locked: v.l}
		ber := metrics.MeasureBER(v.l.Circuit, v.l.Key, c.eps, p.BERInputs, p.BERSamples,
			deriveSeed(p.Seed, "defense-ber", v.name, c.eps))
		out, err := runDoubling(ctx, p, vwl, c.eps,
			fmt.Sprintf("defense/%s/eps%.4g", v.name, c.eps))
		if err != nil {
			return err
		}
		row := DefenseRow{Variant: v.name, EpsPct: c.eps * 100, FuncBER: ber.Avg}
		if out.Res != nil {
			row.Forks = out.Res.Forks
			row.Dead = out.Res.DeadInstances
			if out.Res.Best != nil {
				row.Correct = out.CorrectAny
				row.HDBest = out.Res.Best.HD
				row.Iters = out.Res.Best.Iterations
			}
		}
		rows[i] = row
		return nil
	}, func(i int) {
		row := rows[i]
		fmt.Fprintf(w, "%-10s %6.2f %9.4f %5v %9.4f %6d %5d %6d\n",
			row.Variant, row.EpsPct, row.FuncBER, row.Correct, row.HDBest, row.Forks, row.Dead, row.Iters)
		emitted = i + 1
	})
	if err != nil {
		return rows[:emitted], err
	}
	fmt.Fprintln(w, "\nReading: if RLL-deep rows flip to corr=false (or need far more forks) at the")
	fmt.Fprintln(w, "same FuncBER cost, depth-targeted key placement is a viable StatSAT defence.")
	return rows, nil
}
