package exp

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	p := Smoke
	p.Workers = 3
	if got := p.workers(); got != 3 {
		t.Errorf("workers() = %d, want 3", got)
	}
	p.Workers = 0
	if got := p.workers(); got < 1 {
		t.Errorf("workers() = %d, want >= 1 for Workers=0", got)
	}
}

func TestDeriveSeed(t *testing.T) {
	a := deriveSeed(42, "table2", "c3540", 0.0125, 2)
	b := deriveSeed(42, "table2", "c3540", 0.0125, 2)
	if a != b {
		t.Fatalf("deriveSeed not stable: %d vs %d", a, b)
	}
	if a < 0 {
		t.Errorf("deriveSeed returned negative seed %d", a)
	}
	// Any coordinate change must move the seed.
	variants := []int64{
		deriveSeed(43, "table2", "c3540", 0.0125, 2),
		deriveSeed(42, "table3", "c3540", 0.0125, 2),
		deriveSeed(42, "table2", "c7552", 0.0125, 2),
		deriveSeed(42, "table2", "c3540", 0.015, 2),
		deriveSeed(42, "table2", "c3540", 0.0125, 4),
	}
	for i, v := range variants {
		if v == a {
			t.Errorf("variant %d collided with base seed %d", i, a)
		}
	}
}

func TestRunOrderedMatchesSequential(t *testing.T) {
	const n = 37
	for _, workers := range []int{1, 2, 8, 64} {
		results := make([]int, n)
		var order []int
		err := runOrdered(context.Background(), workers, n, func(i int) error {
			results[i] = i * i
			return nil
		}, func(i int) {
			order = append(order, i)
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(order) != n {
			t.Fatalf("workers=%d: emitted %d jobs, want %d", workers, len(order), n)
		}
		for i := 0; i < n; i++ {
			if order[i] != i {
				t.Fatalf("workers=%d: emit order %v not increasing at %d", workers, order[:i+1], i)
			}
			if results[i] != i*i {
				t.Fatalf("workers=%d: results[%d] = %d", workers, i, results[i])
			}
		}
	}
}

func TestRunOrderedFailingJob(t *testing.T) {
	boom := errors.New("job 17 exploded")
	for _, workers := range []int{1, 8} {
		var order []int
		err := runOrdered(context.Background(), workers, 64, func(i int) error {
			if i == 17 {
				return boom
			}
			if i == 40 {
				return errors.New("later failure, must not win")
			}
			return nil
		}, func(i int) {
			order = append(order, i)
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want the earliest failure", workers, err)
		}
		for _, i := range order {
			if i >= 17 {
				t.Fatalf("workers=%d: emitted job %d at/after the failed index", workers, i)
			}
		}
	}
}

func TestRunOrderedEmitNil(t *testing.T) {
	var ran int64
	if err := runOrdered(context.Background(), 8, 100, func(i int) error {
		atomic.AddInt64(&ran, 1)
		return nil
	}, nil); err != nil {
		t.Fatal(err)
	}
	if ran != 100 {
		t.Fatalf("ran %d jobs, want 100", ran)
	}
}

// TestRunOrderedStress shakes the pool under the race detector: many
// tiny jobs, shared result slice, emit-side aggregation.
func TestRunOrderedStress(t *testing.T) {
	const n = 500
	results := make([]int, n)
	sum := 0
	if err := runOrdered(context.Background(), 16, n, func(i int) error {
		results[i] = i
		return nil
	}, func(i int) {
		sum += results[i]
	}); err != nil {
		t.Fatal(err)
	}
	if want := n * (n - 1) / 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestMemoSingleflight(t *testing.T) {
	var m memo[int]
	var computes int64
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := m.get("k", func() (int, error) {
				atomic.AddInt64(&computes, 1)
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("get = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}
	// put after done is a no-op.
	m.put("k", 99)
	if v, _ := m.get("k", func() (int, error) { return -1, nil }); v != 7 {
		t.Fatalf("put overwrote a computed entry: got %d", v)
	}
}

// TestMemoReentrantPut is the deadlock regression test: the table
// generators prime the memo from *inside* a cached computation
// (TableII calls storeTableII), so put on a mid-computation key must
// be a silent no-op, not a self-deadlock.
func TestMemoReentrantPut(t *testing.T) {
	var m memo[int]
	v, err := m.get("k", func() (int, error) {
		m.put("k", 99) // same key, same goroutine, mid-compute
		return 7, nil
	})
	if err != nil || v != 7 {
		t.Fatalf("reentrant get = %d, %v; want 7, nil", v, err)
	}
}

func TestMemoMemoisesErrors(t *testing.T) {
	var m memo[int]
	boom := errors.New("boom")
	var computes int
	for i := 0; i < 2; i++ {
		if _, err := m.get("k", func() (int, error) {
			computes++
			return 0, boom
		}); !errors.Is(err, boom) {
			t.Fatalf("err = %v, want boom", err)
		}
	}
	if computes != 1 {
		t.Fatalf("error not memoised: %d computes", computes)
	}
}

// zeroCSV serialises rows with WriteCSV after the caller zeroed the
// wall-clock fields (the only legitimately nondeterministic columns).
func zeroCSV(t *testing.T, rows interface{}) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// collectSuite runs every generator at the given worker count and
// returns comparable output per experiment: raw table text where no
// wall-clock column exists, CSV with timing fields zeroed elsewhere.
func collectSuite(t *testing.T, workers int) map[string]string {
	t.Helper()
	p := Smoke
	p.Workers = workers
	out := map[string]string{}
	var buf bytes.Buffer

	buf.Reset()
	TableI(context.Background(), p, &buf)
	out["table1/text"] = buf.String()

	buf.Reset()
	r2, err := TableII(context.Background(), p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r2 {
		r2[i].AttackSeconds, r2[i].EvalPerKeySecs, r2[i].StdSeconds = 0, 0, 0
	}
	out["table2/csv"] = zeroCSV(t, r2)

	buf.Reset()
	r3, err := TableIII(context.Background(), p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r3 {
		r3[i].TotalSeconds = 0
	}
	out["table3/csv"] = zeroCSV(t, r3)

	buf.Reset()
	r4, err := TableIV(context.Background(), p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out["table4/text"] = buf.String()
	out["table4/csv"] = zeroCSV(t, r4)

	buf.Reset()
	r5, err := TableV(context.Background(), p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out["table5/text"] = buf.String()
	out["table5/csv"] = zeroCSV(t, r5)

	buf.Reset()
	ra, err := Ablations(context.Background(), p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ra {
		ra[i].AttackSec = 0
	}
	out["ablations/csv"] = zeroCSV(t, ra)

	buf.Reset()
	rd, err := Defense(context.Background(), p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out["defense/text"] = buf.String()
	out["defense/csv"] = zeroCSV(t, rd)

	buf.Reset()
	rs, err := SweepNs(context.Background(), p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		rs[i].AttackSecs = 0
	}
	out["sweep/csv"] = zeroCSV(t, rs)

	return out
}

// TestParallelOutputByteIdentical is the tentpole's acceptance test:
// every experiment must produce byte-identical results for any worker
// count. Tables without wall-clock columns are compared as raw text
// (headers, padding, row order and all); the rest as CSV with only
// the measured-seconds fields zeroed.
func TestParallelOutputByteIdentical(t *testing.T) {
	// Trim circuit lists so two full suite runs stay test-sized.
	oldII, oldIII, oldIV, oldV := tableIICircuits, tableIIICircuits, tableIVCircuits, tableVWorkloads
	tableIICircuits = []string{"c3540", "ex1010"}
	tableIIICircuits = []string{"c3540"}
	tableIVCircuits = []string{"c3540"}
	tableVWorkloads = tableVWorkloads[:2]
	defer func() {
		tableIICircuits, tableIIICircuits, tableIVCircuits, tableVWorkloads = oldII, oldIII, oldIV, oldV
	}()

	seq := collectSuite(t, 1)
	par := collectSuite(t, 8)
	if len(seq) != len(par) {
		t.Fatalf("suite key mismatch: %d vs %d", len(seq), len(par))
	}
	for k, want := range seq {
		got, ok := par[k]
		if !ok {
			t.Errorf("missing %s in parallel run", k)
			continue
		}
		if got != want {
			t.Errorf("%s differs between workers=1 and workers=8:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				k, want, got)
		}
	}
}

// TestRunOrderedCancelSequential pins the sequential path's contract
// exactly: cancelling inside job k still emits job k (it completed),
// then the loop stops before job k+1 and returns the context error.
func TestRunOrderedCancelSequential(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var order []int
	err := runOrdered(ctx, 1, 10, func(i int) error {
		if i == 3 {
			cancel()
		}
		return nil
	}, func(i int) {
		order = append(order, i)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(order) != 4 {
		t.Fatalf("emitted %v, want exactly jobs 0..3", order)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("emit order %v is not the prefix 0..3", order)
		}
	}
}

// TestRunOrderedCancelEmitsPrefix is the flush-on-cancel contract
// cmd/experiments relies on: cancelling mid-run stops new jobs, lets
// running jobs finish, and still emits a contiguous in-order prefix of
// completed jobs — never the full set, never a gap. Jobs past the
// cancelling one park on ctx.Done() so the test is deterministic: the
// scheduler hands out indices monotonically, so at most workers-1 jobs
// beyond index 5 are in flight when cancel fires, and each completes
// exactly once before its worker observes the cancellation and exits.
func TestRunOrderedCancelEmitsPrefix(t *testing.T) {
	const n, workers = 200, 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var order []int
	err := runOrdered(ctx, workers, n, func(i int) error {
		if i == 5 {
			cancel()
		}
		if i > 5 {
			<-ctx.Done()
		}
		return nil
	}, func(i int) {
		order = append(order, i)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("emitted %v: not a contiguous in-order prefix at position %d", order, i)
		}
	}
	if len(order) < 6 || len(order) > 5+workers {
		t.Fatalf("emitted %d jobs, want between 6 and %d (prefix through the cancelling job plus in-flight stragglers)",
			len(order), 5+workers)
	}
}

// TestMemoCancellationNotCached: a computation that fails with a
// cancellation error must not poison the memo — the next caller (with
// a live context) recomputes and gets the real rows.
func TestMemoCancellationNotCached(t *testing.T) {
	var m memo[int]
	calls := 0
	compute := func(err error) func() (int, error) {
		return func() (int, error) {
			calls++
			if err != nil {
				return 0, err
			}
			return 42, nil
		}
	}
	if _, err := m.get("k", compute(context.Canceled)); !errors.Is(err, context.Canceled) {
		t.Fatalf("first get err = %v, want context.Canceled", err)
	}
	if _, err := m.get("k", compute(context.DeadlineExceeded)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second get err = %v, want context.DeadlineExceeded", err)
	}
	got, err := m.get("k", compute(nil))
	if err != nil || got != 42 {
		t.Fatalf("third get = %d, %v; want 42, nil", got, err)
	}
	if calls != 3 {
		t.Fatalf("compute ran %d times, want 3 (cancellations not memoised)", calls)
	}
	// Now the value is cached: no further compute calls.
	if got, _ := m.get("k", compute(nil)); got != 42 || calls != 3 {
		t.Fatalf("cached get = %d with %d calls, want 42 with 3", got, calls)
	}
}
