package exp

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"
)

func TestProfileByName(t *testing.T) {
	for _, n := range []string{"paper", "quick", "smoke"} {
		p, ok := ProfileByName(n)
		if !ok || p.Name != n {
			t.Errorf("ProfileByName(%q) = %+v, %v", n, p, ok)
		}
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("unknown profile resolved")
	}
}

func TestEpsList(t *testing.T) {
	p := Smoke // EpsFactor 2.5, EpsPoints 2
	got := p.epsList([]float64{1.0, 2.0, 3.0})
	if len(got) != 2 {
		t.Fatalf("len = %d, want 2", len(got))
	}
	if got[0] != 0.025 || got[1] != 0.05 {
		t.Errorf("epsList = %v", got)
	}
	q := Paper
	if n := len(q.epsList([]float64{1, 2, 3, 4})); n != 4 {
		t.Errorf("paper profile truncated eps points: %d", n)
	}
}

func TestEpsLabel(t *testing.T) {
	if epsLabel(0) != "A" || epsLabel(3) != "D" {
		t.Error("labels wrong")
	}
}

func TestBuildWorkloadLockChoices(t *testing.T) {
	cases := map[string]string{
		"ex1010": "SLL",
		"c880":   "RLL",
		"c3540":  "SFLL-HD^0",
	}
	for name, wantLock := range cases {
		w, err := BuildWorkload(Smoke, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w.LockName() != wantLock {
			t.Errorf("%s locked with %s, want %s", name, w.LockName(), wantLock)
		}
		if w.Locked.Circuit.NumKeys() == 0 {
			t.Errorf("%s: no key inputs", name)
		}
	}
	if _, err := BuildWorkload(Smoke, "nonexistent"); err == nil {
		t.Error("want error for unknown benchmark")
	}
}

func TestTableI(t *testing.T) {
	var buf bytes.Buffer
	rows := TableI(context.Background(), Smoke, &buf)
	if len(rows) != 7 {
		t.Fatalf("TableI rows = %d", len(rows))
	}
	out := buf.String()
	for _, name := range []string{"c3540", "c7552", "ex1010", "seq", "b14", "b15", "c880"} {
		if !strings.Contains(out, name) {
			t.Errorf("output missing %s", name)
		}
	}
}

func TestTableIPaperDimensions(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size build in -short mode")
	}
	r, err := ProfileBench(Paper, "c7552")
	if err != nil {
		t.Fatal(err)
	}
	if r.Inputs != 207 || r.Gates != 3512 || r.Outputs != 108 {
		t.Errorf("paper-profile c7552 = %+v, want published dims", r)
	}
}

// TestTableIISmoke runs the flagship experiment end-to-end on the
// smallest profile and asserts the paper's qualitative claims.
func TestTableIISmoke(t *testing.T) {
	p := Smoke
	// Restrict to two circuits for test runtime.
	old := tableIICircuits
	tableIICircuits = []string{"c3540", "ex1010"}
	defer func() { tableIICircuits = old }()

	var buf bytes.Buffer
	rows, err := TableII(context.Background(), p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 circuits × EpsPoints(2)
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	correct := 0
	for _, r := range rows {
		if r.AvgBER < 0 || r.AvgBER > 1 || r.MaxBER < r.AvgBER {
			t.Errorf("%s %s: BER stats inconsistent: %+v", r.Bench, r.Label, r)
		}
		if r.NumKeys > r.NInst {
			t.Errorf("%s: more keys (%d) than instances (%d)", r.Bench, r.NumKeys, r.NInst)
		}
		if r.Correct {
			correct++
			if r.HDBest > 0.3 {
				t.Errorf("%s: correct key with huge HD %.4f", r.Bench, r.HDBest)
			}
		}
	}
	if correct == 0 {
		t.Error("StatSAT never found the correct key in the smoke Table II")
	}
	// Higher eps within a circuit needs >= as many instances (trend).
	for i := 1; i < len(rows); i++ {
		if rows[i].Bench == rows[i-1].Bench && rows[i].Correct && rows[i-1].Correct {
			if rows[i].NInst < rows[i-1].NInst {
				t.Logf("note: N_inst dipped (%d → %d) between eps points on %s — tolerated (stochastic)",
					rows[i-1].NInst, rows[i].NInst, rows[i].Bench)
			}
		}
	}
	t.Logf("\n%s", buf.String())
}

func TestTableIIISmoke(t *testing.T) {
	old := tableIIICircuits
	tableIIICircuits = []string{"c3540"}
	defer func() { tableIIICircuits = old }()
	p := Smoke
	p.MaxNInst = 4
	var buf bytes.Buffer
	rows, err := TableIII(context.Background(), p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // N_inst 1,2,4
		t.Fatalf("rows = %d", len(rows))
	}
	anyKey := false
	for _, r := range rows {
		if r.NumKeys > 0 {
			anyKey = true
			if r.HDBest < 0 || r.FMBest < r.HDBest-1e-9 {
				t.Errorf("metric inconsistency: %+v (FM must be >= HD)", r)
			}
		}
	}
	if !anyKey {
		t.Error("no N_inst point produced a key")
	}
	t.Logf("\n%s", buf.String())
}

func TestTableIVSmoke(t *testing.T) {
	old := tableIVCircuits
	tableIVCircuits = []string{"c3540"}
	defer func() { tableIVCircuits = old }()
	var buf bytes.Buffer
	rows, err := TableIV(context.Background(), Smoke, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.EpsEstPct <= 0 {
			t.Errorf("estimate missing: %+v", r)
		}
		// Paper: the estimate undershoots the true value; allow some
		// slack but reject wild overestimates.
		if r.EpsEstPct > 3*r.EpsPct {
			t.Errorf("estimate %.3f%% wildly above true %.2f%%", r.EpsEstPct, r.EpsPct)
		}
	}
	t.Logf("\n%s", buf.String())
}

func TestTableVSmoke(t *testing.T) {
	old := tableVWorkloads
	tableVWorkloads = tableVWorkloads[:1] // c880 only
	defer func() { tableVWorkloads = old }()
	var buf bytes.Buffer
	rows, err := TableV(context.Background(), Smoke, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // EpsPoints=2
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PSATSuccess > r.Runs {
			t.Errorf("PSAT successes %d exceed runs %d", r.PSATSuccess, r.Runs)
		}
	}
	// The paper's claim: StatSAT succeeds where PSAT degrades. At the
	// highest eps point StatSAT must still have found the correct key.
	lastRow := rows[len(rows)-1]
	if !lastRow.StatSATFound {
		t.Errorf("StatSAT failed at eps=%.2f%% where the paper claims success", lastRow.EpsPct)
	}
	t.Logf("\n%s", buf.String())
}

func TestFig4And5FromSharedRuns(t *testing.T) {
	old := tableIICircuits
	tableIICircuits = []string{"ex1010"}
	defer func() { tableIICircuits = old }()
	var buf bytes.Buffer
	f4, err := Fig4(context.Background(), Smoke, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(f4) != 2 {
		t.Fatalf("fig4 rows = %d", len(f4))
	}
	for _, r := range f4 {
		if r.StandardIters <= 0 {
			t.Errorf("standard SAT iterations missing: %+v", r)
		}
	}
	f5, err := Fig5(context.Background(), Smoke, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(f5) != len(f4) {
		t.Errorf("fig5 rows %d != fig4 rows %d", len(f5), len(f4))
	}
	for _, r := range f5 {
		if r.AttackSeconds < 0 || r.StdSeconds < 0 {
			t.Errorf("negative timing: %+v", r)
		}
	}
	t.Logf("\n%s", buf.String())
}

func TestFig6Smoke(t *testing.T) {
	old := tableIIICircuits
	tableIIICircuits = []string{"c3540"}
	defer func() { tableIIICircuits = old }()
	p := Smoke
	p.MaxNInst = 4
	var buf bytes.Buffer
	pts, err := Fig6(context.Background(), p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no Fig6 points")
	}
	for _, pt := range pts {
		if pt.FMBest < 0 || pt.FMBest > 1 {
			t.Errorf("FM out of range: %+v", pt)
		}
	}
	t.Logf("\n%s", buf.String())
}

func TestAblationsSmoke(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Ablations(context.Background(), Smoke, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("ablation variants = %d", len(rows))
	}
	if rows[0].Variant != "full" {
		t.Errorf("first variant = %s", rows[0].Variant)
	}
	// The full variant must produce at least one key on this workload.
	if rows[0].NumKeys == 0 {
		t.Error("full StatSAT produced no key in ablation baseline")
	}
	// no-duplication can never fork.
	for _, r := range rows {
		if r.Variant == "no-duplication" && r.Forks > 0 {
			t.Errorf("N_inst=1 variant forked %d times", r.Forks)
		}
	}
	t.Logf("\n%s", buf.String())
}

func TestWriteCSV(t *testing.T) {
	rows := []TableVRow{
		{Bench: "c880", EpsPct: 2.5, Runs: 3, PSATSuccess: 2, StatSATFound: true},
		{Bench: "c880", EpsPct: 3.75, Runs: 3, PSATSuccess: 0, StatSATFound: true},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Bench,EpsPct,Runs,PSATSuccess,StatSATFound") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "c880,2.5,3,2,true") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestWriteCSVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, 42); err == nil {
		t.Error("want error for non-slice")
	}
	if err := WriteCSV(&buf, []int{1}); err == nil {
		t.Error("want error for non-struct elements")
	}
	if err := WriteCSV(&buf, []TableVRow{}); err != nil {
		t.Errorf("empty slice should be fine: %v", err)
	}
}

func TestBarRendering(t *testing.T) {
	if bar(0, 10, '#') != "" {
		t.Error("zero bar should be empty")
	}
	if len(bar(10, 10, '#')) != 24 {
		t.Errorf("full bar length = %d", len(bar(10, 10, '#')))
	}
	if len(bar(20, 10, '#')) != 24 {
		t.Error("bar must clamp")
	}
}

func TestDefenseSmoke(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Defense(context.Background(), Smoke, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// 2 variants × EpsPoints(2) points.
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		if rows[i].Variant != "RLL" || rows[i+1].Variant != "RLL-deep" {
			t.Errorf("variant ordering wrong at %d", i)
		}
	}
	t.Logf("\n%s", buf.String())
}

func TestSweepNsSmoke(t *testing.T) {
	var buf bytes.Buffer
	rows, err := SweepNs(context.Background(), Smoke, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.HDFloor <= 0 {
			t.Errorf("row %d: floor missing", i)
		}
		if i > 0 && r.Ns <= rows[i-1].Ns {
			t.Error("Ns not increasing")
		}
	}
	// The sampling floor must shrink with Ns (~1/sqrt trend).
	first, last := rows[0], rows[len(rows)-1]
	if last.HDFloor >= first.HDFloor {
		t.Errorf("floor did not shrink: %.4f -> %.4f", first.HDFloor, last.HDFloor)
	}
	t.Logf("\n%s", buf.String())
}
