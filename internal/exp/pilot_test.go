package exp

import (
	"context"
	"fmt"
	"os"
	"testing"
)

// TestPaperPilotC3540A runs ONE full-size paper-profile point —
// c3540 (1669 gates) locked with 16-bit SFLL-HD at eps_g = 1.25%,
// Ns=500, N_eval=2000 — as evidence that the paper profile is viable
// end-to-end. It takes many minutes, so it only runs when
// STATSAT_PAPER_PILOT=1 is set:
//
//	STATSAT_PAPER_PILOT=1 go test ./internal/exp -run TestPaperPilot -v -timeout 2h
func TestPaperPilotC3540A(t *testing.T) {
	if os.Getenv("STATSAT_PAPER_PILOT") == "" {
		t.Skip("set STATSAT_PAPER_PILOT=1 to run the full-size paper-profile pilot")
	}
	p := Paper
	wl, err := BuildWorkload(p, "c3540")
	if err != nil {
		t.Fatal(err)
	}
	s := wl.Orig.Summary()
	fmt.Printf("pilot workload: %s %d/%d/%d, %s %d key bits\n",
		s.Name, s.Inputs, s.Gates, s.Outputs, wl.LockName(), wl.Locked.Circuit.NumKeys())

	const eps = 0.0125 // the paper's c3540 point A
	for nInst := 1; nInst <= 4; nInst *= 2 {
		opts := p.attackOpts(eps, nInst, p.Seed)
		opts.Parallel = true
		out, err := runAttack(context.Background(), p, wl, eps, opts,
			deriveSeed(p.Seed, "pilot-oracle", nInst), fmt.Sprintf("pilot/c3540/n%d", nInst))
		if err != nil {
			t.Fatal(err)
		}
		if out.Res == nil || out.Res.Best == nil {
			fmt.Printf("N_inst=%d: no key\n", nInst)
			continue
		}
		fmt.Printf("N_inst=%d: correct=%v HD=%.4f iters=%d T_attack=%v T_eval/key=%v queries=%d\n",
			nInst, out.CorrectAny, out.Res.Best.HD, out.Res.Best.Iterations,
			out.Res.AttackDuration, out.Res.EvalPerKey, out.Res.OracleQueries)
		if out.CorrectAny {
			return
		}
	}
	t.Error("paper-profile pilot did not recover the correct key within N_inst=4")
}
