// Package portfolio races diverse solver configurations on the live
// StatSAT instances and exchanges learnt clauses between them through
// internal/sat's shared clause pool (docs/SOLVER.md).
//
// Each registered instance (a "sibling" in the fork tree) keeps its
// base miter solver exactly as in sequential mode and gains up to K
// helper solvers: clones configured with different VSIDS decay,
// restart schedules and phase initialisation, all publishing and
// importing learnts through the pool. On every miter solve the base
// runs on the calling goroutine while helpers race it on a bounded
// worker pool with first-winner cancellation over the existing
// SolveCtx plumbing.
//
// Determinism is the design constraint, enforced structurally:
//
//   - Base solvers never import shared clauses and are the only
//     solvers whose models are ever read, so the DIP sequence — and
//     with it the oracle query order, the fork tree and the accepted
//     keys — is the same for any worker count.
//   - Helpers may decide a race only by proving UNSAT. An UNSAT
//     verdict is model-free and canonical (any sound solver returns
//     the same one), so taking it early changes wall-clock time, not
//     the trajectory.
//
// With Workers <= 1 the portfolio is entirely absent (New returns nil)
// and every attack's output is byte-identical to sequential mode.
package portfolio

import (
	"context"
	"fmt"

	"statsat/internal/sat"
	"statsat/internal/trace"
)

// Options parameterises a portfolio.
type Options struct {
	// Workers bounds the solver goroutines added by racing (the base
	// solves don't count: they ride the engine's own goroutines).
	// Values <= 1 disable the portfolio entirely.
	Workers int
	// Racers is the number of helper configurations raced per instance
	// solve, capped by free worker slots at launch (default 3).
	Racers int
	// MaxShareLen / MaxShareLBD filter which learnts are exported to
	// the pool (defaults 30 literals / LBD 8).
	MaxShareLen int
	MaxShareLBD int
	// PoolCap bounds the shared pool (default sat.DefaultPoolCap).
	PoolCap int
}

func (o *Options) setDefaults() {
	if o.Racers <= 0 {
		o.Racers = 3
	}
	if o.MaxShareLen <= 0 {
		o.MaxShareLen = 30
	}
	if o.MaxShareLBD <= 0 {
		o.MaxShareLBD = 8
	}
}

// raceConfigs is the palette of helper search strategies, cycled in
// order as helpers are created. The base solver keeps the stock
// configuration (VarDecay 0.95, RestartBase 100, phase false).
var raceConfigs = []sat.Config{
	{VarDecay: 0.85, RestartBase: 50},                   // agile: fast decay, rapid restarts
	{VarDecay: 0.99, RestartBase: 300, PhaseTrue: true}, // focused: slow decay, long runs, inverted phase
	{VarDecay: 0.95, RestartBase: 100, PhaseTrue: true}, // stock schedule, inverted phase
	{VarDecay: 0.90, RestartBase: 200},                  // middle decay, longer restarts
	{VarDecay: 0.80, RestartBase: 150, PhaseTrue: true}, // aggressive decay, inverted phase
}

// Portfolio owns the shared clause pool and the helper worker slots
// for one attack run. Create one per run with New; nil (from Workers
// <= 1) is a valid "disabled" portfolio for callers that pass it
// around unconditionally.
type Portfolio struct {
	opts Options
	pool *sat.Pool
	sem  chan struct{} // helper slots (Workers - 1)
	tr   *trace.Emitter
}

// New builds a portfolio, or returns nil when opts.Workers <= 1 —
// sequential mode needs no portfolio at all, which is what keeps
// off-mode runs byte-identical.
func New(opts Options, tr *trace.Emitter) *Portfolio {
	if opts.Workers <= 1 {
		return nil
	}
	opts.setDefaults()
	return &Portfolio{
		opts: opts,
		pool: sat.NewPool(opts.PoolCap),
		sem:  make(chan struct{}, opts.Workers-1),
		tr:   tr,
	}
}

// Enabled reports whether p actually races (nil-safe).
func (p *Portfolio) Enabled() bool { return p != nil }

// Pool exposes the shared clause pool (tests and diagnostics).
func (p *Portfolio) Pool() *sat.Pool { return p.pool }

// Root registers an instance's base miter solver with the portfolio
// and returns its sibling handle. The solver starts journaling its
// clause additions so lazily created helpers can be kept in sync.
// Nil-safe: a disabled portfolio returns a nil sibling, whose use as
// an engine override is in turn nil (no override).
func (p *Portfolio) Root(id int, base *sat.Solver) *Sibling {
	if p == nil {
		return nil
	}
	p.pool.RegisterRoot(id)
	return p.newSibling(id, base)
}

func (p *Portfolio) newSibling(id int, base *sat.Solver) *Sibling {
	client := p.pool.Attach(id)
	base.EnableLog()
	base.SetExporter(client.Export, p.opts.MaxShareLen, int32(p.opts.MaxShareLBD))
	// The base never imports: its trajectory (including every model it
	// produces) must not depend on what other solvers learned.
	return &Sibling{p: p, id: id, base: base, client: client}
}

// Sibling is one registered instance: the untouched base solver plus
// its racing helpers. Methods must be called from the goroutine
// driving the instance (helpers are launched and always drained within
// one Solve call, so the sibling itself needs no locking).
type Sibling struct {
	p       *Portfolio
	id      int
	base    *sat.Solver
	client  *sat.PoolClient
	helpers []*helper

	// lastExported/lastImported track emitted clause_shared deltas.
	lastExported int64
	lastImported int64
}

// helper is one racing solver: a clone of the base at creation time,
// kept in sync by replaying the base's clause journal before each
// race.
type helper struct {
	name   string
	s      *sat.Solver
	client *sat.PoolClient
	synced int // base journal cursor
}

// ID returns the sibling's instance id.
func (sb *Sibling) ID() int { return sb.id }

// Fork registers a fork child: bumps the global epoch (adopted by both
// bases so the diverging key-bit pins are watermarked correctly) and
// returns the child's sibling. MUST be called after the child's
// solvers are cloned and BEFORE either side adds its pin — core's
// handleRepeat sits exactly between the two.
func (sb *Sibling) Fork(childID int, childBase *sat.Solver) *Sibling {
	e := sb.p.pool.Fork(sb.id, childID)
	sb.base.SetEpoch(e)
	childBase.SetEpoch(e)
	return sb.p.newSibling(childID, childBase)
}

// Solve runs one raced miter solve: the base on the calling goroutine,
// helpers (as many as free worker slots allow) on their own. The first
// UNSAT — from anyone — cancels the rest. Only the base may return
// Sat; a helper's Sat is discarded (its model is not the base
// trajectory's model). Implements engine.MiterSolver.
func (sb *Sibling) Solve(ctx context.Context) sat.Status {
	p := sb.p
	var running []*helper
acquire:
	for i := 0; i < p.opts.Racers && i < len(raceConfigs); i++ {
		select {
		case p.sem <- struct{}{}:
			running = append(running, sb.helper(i))
		default:
			break acquire // no free slot: race with what we have
		}
	}
	if len(running) == 0 {
		return sb.base.SolveCtx(ctx)
	}

	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan sat.Status, len(running))
	for _, h := range running {
		go func(h *helper) {
			st := h.s.SolveCtx(rctx)
			if st == sat.Unsat {
				cancel() // first winner: tear the race down
			}
			<-p.sem
			results <- st
		}(h)
	}

	base := sb.base.SolveCtx(rctx)
	cancel()
	// Drain every helper before returning: their solvers are reused on
	// the next race and must not be running when we sync them.
	helperUnsat := false
	for range running {
		if <-results == sat.Unsat {
			helperUnsat = true
		}
	}

	st := base
	if base == sat.Unknown && ctx.Err() == nil && helperUnsat {
		// The base was cancelled by a winning helper, not by the caller
		// or its budget: adopt the helper's (canonical) UNSAT verdict.
		st = sat.Unsat
		p.tr.Emit(trace.Event{
			Type: trace.RaceWinner, Instance: sb.id,
			Race: &trace.RaceInfo{
				Winner: sb.winnerName(running), Status: sat.Unsat.String(),
				Racers: len(running) + 1,
			},
		})
	}
	sb.emitShare()
	return st
}

// winnerName reports which helper proved UNSAT. Solvers are quiescent
// here (the race is drained), so reading their Okay state is safe; if
// several finished UNSAT the first in config order is credited.
func (sb *Sibling) winnerName(running []*helper) string {
	for _, h := range running {
		if !h.s.Okay() {
			return h.name
		}
	}
	// UNSAT under assumptions (or after cancelUntil) can leave Okay
	// true; fall back to the generic label.
	return "helper"
}

// helper returns the i-th racing helper, creating it on first use and
// syncing it with the base's clause journal.
func (sb *Sibling) helper(i int) *helper {
	for len(sb.helpers) <= i {
		j := len(sb.helpers)
		cfg := raceConfigs[j%len(raceConfigs)]
		h := &helper{name: fmt.Sprintf("cfg%d", j), s: sb.base.Clone()}
		h.s.SetConfig(cfg)
		h.client = sb.p.pool.Attach(sb.id)
		h.s.SetExporter(h.client.Export, sb.p.opts.MaxShareLen, int32(sb.p.opts.MaxShareLBD))
		h.s.SetImporter(h.client.Imports)
		h.synced = sb.base.LogLen()
		sb.helpers = append(sb.helpers, h)
	}
	h := sb.helpers[i]
	sb.sync(h)
	return h
}

// sync replays the base's journal into a helper: missing variables
// first, then the recorded clauses with their original epochs.
func (sb *Sibling) sync(h *helper) {
	if n := sb.base.NumVars() - h.s.NumVars(); n > 0 {
		h.s.NewVars(n)
	}
	for _, e := range sb.base.LogSince(h.synced) {
		h.s.AddClauseEpoch(e.Epoch, e.Lits...)
	}
	h.synced = sb.base.LogLen()
}

// emitShare emits a clause_shared event when this sibling's solvers
// moved clauses since the last solve.
func (sb *Sibling) emitShare() {
	if !sb.p.tr.Enabled() {
		return
	}
	exp, imp := sb.client.Stats()
	for _, h := range sb.helpers {
		he, hi := h.client.Stats()
		exp += he
		imp += hi
	}
	dExp, dImp := exp-sb.lastExported, imp-sb.lastImported
	if dExp == 0 && dImp == 0 {
		return
	}
	sb.lastExported, sb.lastImported = exp, imp
	sb.p.tr.Emit(trace.Event{
		Type: trace.ClauseShared, Instance: sb.id,
		Share: &trace.ShareInfo{Exported: dExp, Imported: dImp, Pool: sb.p.pool.Size()},
	})
}
