package portfolio

import (
	"context"
	"testing"

	"statsat/internal/sat"
)

// benchSolve runs one fresh random 3-CNF solve per iteration, raced
// (workers >= 2) or sequential (workers <= 1, where the portfolio is
// structurally absent). The 500/120 clause/variable ratio sits near
// the phase transition, so the solves actually search and the two
// variants are comparable end to end — solver construction included,
// identically in both.
func benchSolve(b *testing.B, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base := sat.New()
		randomCNF(base, 120, 500, int64(i))
		sb := New(Options{Workers: workers}, nil).Root(0, base)
		if sb != nil {
			sb.Solve(context.Background())
		} else {
			base.SolveCtx(context.Background())
		}
	}
}

func BenchmarkSolveSequential(b *testing.B) { benchSolve(b, 1) }
func BenchmarkSolveRaced4(b *testing.B)     { benchSolve(b, 4) }

// BenchmarkHelperSync measures the lazy helper's journal replay: the
// base adds a clause between races, and the next race brings one
// helper back in sync before solving a trivially satisfiable formula.
func BenchmarkHelperSync(b *testing.B) {
	base := sat.New()
	base.NewVars(2)
	base.AddClause(sat.PosLit(0))
	p := New(Options{Workers: 2, Racers: 1}, nil)
	sb := p.Root(0, base)
	v := base.NewVar()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base.AddClause(sat.PosLit(v)) // journaled; replayed at next race
		sb.Solve(context.Background())
	}
}
