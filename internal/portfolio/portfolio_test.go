package portfolio

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"statsat/internal/sat"
	"statsat/internal/trace"
)

func TestDisabledPortfolio(t *testing.T) {
	for _, w := range []int{-1, 0, 1} {
		if p := New(Options{Workers: w}, nil); p != nil {
			t.Errorf("New(Workers=%d) = %v, want nil", w, p)
		}
	}
	var p *Portfolio
	if p.Enabled() {
		t.Error("nil portfolio claims enabled")
	}
	if sb := p.Root(0, sat.New()); sb != nil {
		t.Errorf("nil portfolio Root = %v, want nil", sb)
	}
}

// randomCNF loads a random 3-CNF into s and returns the clause list.
func randomCNF(s *sat.Solver, nVars, nClauses int, seed int64) [][]sat.Lit {
	rng := rand.New(rand.NewSource(seed))
	s.NewVars(nVars)
	out := make([][]sat.Lit, 0, nClauses)
	for i := 0; i < nClauses; i++ {
		c := make([]sat.Lit, 3)
		for j := range c {
			c[j] = sat.MkLit(sat.Var(rng.Intn(nVars)), rng.Intn(2) == 1)
		}
		s.AddClause(c...)
		out = append(out, c)
	}
	return out
}

func TestRacedSatMatchesBaseModel(t *testing.T) {
	// Satisfiable formula: no sound helper can prove UNSAT, so the base
	// always finishes and its model must equal an un-raced control's.
	base := sat.New()
	clauses := randomCNF(base, 40, 120, 7) // ratio 3: satisfiable
	control := base.Clone()

	p := New(Options{Workers: 4}, nil)
	sb := p.Root(0, base)
	st := sb.Solve(context.Background())
	if want := control.Solve(); st != want {
		t.Fatalf("raced Solve = %v, control = %v", st, want)
	}
	if st != sat.Sat {
		t.Fatalf("formula expected satisfiable, got %v", st)
	}
	for v := sat.Var(0); v < 40; v++ {
		if base.ModelValue(v) != control.ModelValue(v) {
			t.Fatalf("raced model diverged from sequential at var %d", v)
		}
	}
	_ = clauses
}

func TestRacedUnsat(t *testing.T) {
	// All eight sign patterns over three vars: UNSAT however you race.
	base := sat.New()
	base.NewVars(3)
	for m := 0; m < 8; m++ {
		lits := make([]sat.Lit, 3)
		for j := 0; j < 3; j++ {
			lits[j] = sat.MkLit(sat.Var(j), m&(1<<j) != 0)
		}
		base.AddClause(lits...)
	}
	p := New(Options{Workers: 4}, nil)
	sb := p.Root(0, base)
	if st := sb.Solve(context.Background()); st != sat.Unsat {
		t.Fatalf("Solve = %v, want Unsat", st)
	}
	// The sibling stays usable after an UNSAT race (helpers drained).
	if st := sb.Solve(context.Background()); st != sat.Unsat {
		t.Fatalf("second Solve = %v, want Unsat", st)
	}
}

func TestRaceCancelledContext(t *testing.T) {
	base := sat.New()
	randomCNF(base, 60, 255, 3)
	p := New(Options{Workers: 3}, nil)
	sb := p.Root(0, base)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if st := sb.Solve(ctx); st != sat.Unknown {
		t.Fatalf("cancelled Solve = %v, want Unknown", st)
	}
	// A later solve with a live context recovers.
	if st := sb.Solve(context.Background()); st == sat.Unknown {
		t.Fatal("sibling unusable after cancelled race")
	}
}

func TestForkEpochPinning(t *testing.T) {
	base := sat.New()
	randomCNF(base, 20, 60, 5)
	p := New(Options{Workers: 2}, nil)
	root := p.Root(0, base)
	if root.ID() != 0 {
		t.Fatalf("root ID = %d", root.ID())
	}
	childBase := base.Clone()
	child := root.Fork(1, childBase)
	if child.ID() != 1 {
		t.Fatalf("child ID = %d", child.ID())
	}
	if base.Epoch() != 1 || childBase.Epoch() != 1 {
		t.Fatalf("epochs after fork = %d/%d, want 1/1", base.Epoch(), childBase.Epoch())
	}
	if p.Pool().Epoch() != 1 {
		t.Fatalf("pool epoch = %d, want 1", p.Pool().Epoch())
	}
}

// TestConcurrentShareUnderCancellation is the -race workout: siblings
// race helpers (concurrent pool export/import against the base's own
// exports) while the caller cancels at random points. Verdicts that do
// land must stay consistent — a formula cannot be both Sat and Unsat.
func TestConcurrentShareUnderCancellation(t *testing.T) {
	for round := 0; round < 4; round++ {
		p := New(Options{Workers: 4}, nil)
		var sawSat, sawUnsat bool
		var siblings []*Sibling
		for i := 0; i < 2; i++ {
			base := sat.New()
			randomCNF(base, 120, 500, int64(40+round)) // same formula per round
			siblings = append(siblings, p.Root(i, base))
		}
		var mu sync.Mutex
		var wg sync.WaitGroup
		for i, sb := range siblings {
			wg.Add(1)
			go func(i int, sb *Sibling) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(11 + round*10 + i)))
				for k := 0; k < 3; k++ {
					ctx, cancel := context.WithTimeout(context.Background(),
						time.Duration(rng.Int63n(3)+1)*time.Millisecond)
					st := sb.Solve(ctx)
					cancel()
					mu.Lock()
					switch st {
					case sat.Sat:
						sawSat = true
					case sat.Unsat:
						sawUnsat = true
					}
					mu.Unlock()
				}
				// One undisturbed solve so every round decides.
				st := sb.Solve(context.Background())
				mu.Lock()
				switch st {
				case sat.Sat:
					sawSat = true
				case sat.Unsat:
					sawUnsat = true
				}
				mu.Unlock()
			}(i, sb)
		}
		wg.Wait()
		if sawSat && sawUnsat {
			t.Fatalf("round %d: same formula decided both Sat and Unsat", round)
		}
		if !sawSat && !sawUnsat {
			t.Fatalf("round %d: no solve ever decided", round)
		}
	}
}

func TestShareEventEmission(t *testing.T) {
	rec := trace.NewRecorder()
	em := trace.NewEmitter(rec)
	base := sat.New()
	randomCNF(base, 80, 330, 9)
	p := New(Options{Workers: 4, MaxShareLen: 50, MaxShareLBD: 50}, em)
	sb := p.Root(0, base)
	for k := 0; k < 4; k++ {
		sb.Solve(context.Background())
	}
	exp, _ := int64(0), 0
	for _, h := range sb.helpers {
		he, _ := h.client.Stats()
		exp += he
	}
	be, _ := sb.client.Stats()
	exp += be
	if exp == 0 {
		t.Skip("no learnts exported on this formula; nothing to assert")
	}
	var shared int64
	for _, ev := range rec.Events() {
		if ev.Type == trace.ClauseShared {
			if ev.Share == nil {
				t.Fatal("clause_shared without payload")
			}
			shared += ev.Share.Exported
		}
	}
	if shared != exp {
		t.Errorf("clause_shared deltas sum to %d, clients exported %d", shared, exp)
	}
}

func TestOptionDefaults(t *testing.T) {
	o := Options{Workers: 2}
	o.setDefaults()
	if o.Racers != 3 || o.MaxShareLen != 30 || o.MaxShareLBD != 8 {
		t.Errorf("defaults = %+v", o)
	}
}
