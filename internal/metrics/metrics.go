// Package metrics implements the paper's evaluation quantities: the
// figure of merit FM(K) (eq. 7), the signal-probability Hamming
// distance HD(K) (eq. 8), measured oracle BERs (Table II columns) and
// SAT-based key equivalence checking (used to decide whether an attack
// recovered "the correct key").
package metrics

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"statsat/internal/circuit"
	"statsat/internal/cnf"
	"statsat/internal/oracle"
	"statsat/internal/sat"
)

// FM computes the figure of merit of eq. 7 from two signal-probability
// matrices indexed [input j][output i]: the per-output maximum
// absolute difference over the evaluation inputs, averaged over
// outputs. Smaller is better.
func FM(oracleProbs, keyProbs [][]float64) float64 {
	if len(oracleProbs) != len(keyProbs) || len(oracleProbs) == 0 {
		panic("metrics: FM needs equal, non-empty probability matrices")
	}
	n := len(oracleProbs[0])
	sum := 0.0
	for i := 0; i < n; i++ {
		maxDiff := 0.0
		for j := range oracleProbs {
			d := math.Abs(oracleProbs[j][i] - keyProbs[j][i])
			if d > maxDiff {
				maxDiff = d
			}
		}
		sum += maxDiff
	}
	return sum / float64(n)
}

// HD computes the average signal-probability Hamming distance of
// eq. 8: the per-input mean absolute difference over outputs,
// averaged over the evaluation inputs.
func HD(oracleProbs, keyProbs [][]float64) float64 {
	if len(oracleProbs) != len(keyProbs) || len(oracleProbs) == 0 {
		panic("metrics: HD needs equal, non-empty probability matrices")
	}
	n := float64(len(oracleProbs[0]))
	total := 0.0
	for j := range oracleProbs {
		rowSum := 0.0
		for i := range oracleProbs[j] {
			rowSum += math.Abs(oracleProbs[j][i] - keyProbs[j][i])
		}
		total += rowSum / n
	}
	return total / float64(len(oracleProbs))
}

// BERStats reports measured oracle BERs (Table II's "Avg. BER" and
// "Max. BER" columns).
type BERStats struct {
	Avg float64
	Max float64
}

// MeasureBER samples the probabilistic oracle ns times on each of
// nInputs random vectors and reports the average and maximum
// per-(input, output) bit error ratio relative to the deterministic
// reference behaviour. Sampling is bit-parallel in blocked passes of
// up to BlockWords×circuit.BatchLanes samples, so ns is rounded up to
// a whole number of 64-lane words — never fewer samples than
// requested, and the sampled bits are block-width independent.
func MeasureBER(c *circuit.Circuit, key []bool, eps float64, nInputs, ns int, seed int64) BERStats {
	rng := rand.New(rand.NewSource(seed))
	det := oracle.NewDeterministic(c, key)
	prob := oracle.NewProbabilistic(c, key, eps, seed+1)
	passes := (ns + circuit.BatchLanes - 1) / circuit.BatchLanes
	total := passes * circuit.BatchLanes
	var stats BERStats
	count := 0
	wrong := make([]int, c.NumPOs())
	for in := 0; in < nInputs; in++ {
		x := c.RandomInputs(rng)
		ref := det.Query(x)
		for i := range wrong {
			wrong[i] = 0
		}
		for left := passes; left > 0; {
			wblk := prob.BlockWords()
			if left < wblk {
				wblk = left
			}
			words := prob.QueryBlock(x, wblk)
			for i := range wrong {
				for _, w := range words[i*wblk : (i+1)*wblk] {
					if ref[i] {
						w = ^w // mismatching lanes
					}
					wrong[i] += bits.OnesCount64(w)
				}
			}
			left -= wblk
		}
		for i := range wrong {
			ber := float64(wrong[i]) / float64(total)
			stats.Avg += ber
			if ber > stats.Max {
				stats.Max = ber
			}
			count++
		}
	}
	if count > 0 {
		stats.Avg /= float64(count)
	}
	return stats
}

// SignalProbMatrix samples signal probabilities for each input vector
// (rows) over ns queries each, producing the matrices FM/HD consume.
// Cancelling ctx leaves the remaining rows as best-effort partial (or
// all-zero) estimates; see oracle.SignalProbs.
func SignalProbMatrix(ctx context.Context, o oracle.Oracle, inputs [][]bool, ns int) [][]float64 {
	out := make([][]float64, len(inputs))
	for j, x := range inputs {
		out[j] = oracle.SignalProbs(ctx, o, x, ns)
	}
	return out
}

// RandomInputSet draws nEval distinct-ish random input vectors for key
// evaluation (eq. 7's X_1..X_Neval).
func RandomInputSet(c *circuit.Circuit, nEval int, rng *rand.Rand) [][]bool {
	out := make([][]bool, nEval)
	for i := range out {
		out[i] = c.RandomInputs(rng)
	}
	return out
}

// SamplingHDFloor estimates the HD value that pure sampling noise
// produces for the *correct* key: even when the unlocked circuit and
// the oracle have identical signal probabilities p, two independent
// Ns-sample estimates differ by E|p̂₁-p̂₂| ≈ sqrt(2·p(1-p)/Ns)·sqrt(2/π)
// per output (normal approximation to the binomial). Table II's remark
// that "it is only due to sampling error that HD(K*) is non-zero" is
// quantified by comparing measured HD(K*) against this floor.
//
// The true per-(input,output) signal probabilities are estimated from
// the oracle itself with refNs samples per input (choose refNs >> ns).
func SamplingHDFloor(ctx context.Context, o oracle.Oracle, inputs [][]bool, ns, refNs int) float64 {
	if ns <= 0 || refNs <= 0 {
		panic("metrics: SamplingHDFloor needs positive sample counts")
	}
	const sqrt2OverPi = 0.7978845608028654 // sqrt(2/pi)
	total := 0.0
	count := 0
	var probs []float64
	for _, x := range inputs {
		probs = oracle.SignalProbsInto(ctx, o, x, refNs, probs)
		for _, p := range probs {
			sd := math.Sqrt(2 * p * (1 - p) / float64(ns))
			total += sd * sqrt2OverPi
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// KeysEquivalent reports whether two keys induce the same function on
// the locked circuit, decided exactly with a SAT miter: UNSAT ⇔ no
// input distinguishes them ⇔ the keys are equivalent (footnote 1 of
// the paper).
func KeysEquivalent(locked *circuit.Circuit, keyA, keyB []bool) (bool, error) {
	if len(keyA) != locked.NumKeys() || len(keyB) != locked.NumKeys() {
		return false, fmt.Errorf("metrics: key widths %d/%d, circuit has %d", len(keyA), len(keyB), locked.NumKeys())
	}
	s := sat.New()
	pis := cnf.FreshLits(s, locked.NumPIs())
	// Both copies bind the PIs to the same literals, so the
	// key-independent cone is encoded once and shared.
	share := cnf.NewShareCache()
	ca, err := cnf.Encode(s, locked, cnf.Options{PILits: pis, FixedKeys: keyA, Share: share})
	if err != nil {
		return false, err
	}
	cb, err := cnf.Encode(s, locked, cnf.Options{PILits: pis, FixedKeys: keyB, Share: share})
	if err != nil {
		return false, err
	}
	cnf.NotEqualAny(s, ca.Outs, cb.Outs)
	switch s.Solve() {
	case sat.Unsat:
		return true, nil
	case sat.Sat:
		return false, nil
	}
	return false, fmt.Errorf("metrics: equivalence check exceeded budget")
}

// EquivalentToOriginal reports whether locked circuit + key matches an
// unlocked reference circuit exactly (same PI order, same PO order).
func EquivalentToOriginal(locked *circuit.Circuit, key []bool, orig *circuit.Circuit) (bool, error) {
	if locked.NumPIs() != orig.NumPIs() || locked.NumPOs() != orig.NumPOs() {
		return false, fmt.Errorf("metrics: interface mismatch (%d/%d PIs, %d/%d POs)",
			locked.NumPIs(), orig.NumPIs(), locked.NumPOs(), orig.NumPOs())
	}
	s := sat.New()
	pis := cnf.FreshLits(s, locked.NumPIs())
	cl, err := cnf.Encode(s, locked, cnf.Options{PILits: pis, FixedKeys: key})
	if err != nil {
		return false, err
	}
	co, err := cnf.Encode(s, orig, cnf.Options{PILits: pis})
	if err != nil {
		return false, err
	}
	cnf.NotEqualAny(s, cl.Outs, co.Outs)
	switch s.Solve() {
	case sat.Unsat:
		return true, nil
	case sat.Sat:
		return false, nil
	}
	return false, fmt.Errorf("metrics: equivalence check exceeded budget")
}
