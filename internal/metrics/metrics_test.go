package metrics

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"statsat/internal/gen"
	"statsat/internal/lock"
	"statsat/internal/oracle"
)

func TestFMIdenticalMatricesZero(t *testing.T) {
	m := [][]float64{{0.1, 0.9}, {0.4, 0.6}}
	if got := FM(m, m); got != 0 {
		t.Errorf("FM(m,m) = %v", got)
	}
	if got := HD(m, m); got != 0 {
		t.Errorf("HD(m,m) = %v", got)
	}
}

func TestFMHandComputed(t *testing.T) {
	a := [][]float64{{0.0, 1.0}, {0.5, 0.5}}
	b := [][]float64{{0.2, 0.9}, {0.1, 0.5}}
	// Output 0 diffs: |0-0.2|=0.2, |0.5-0.1|=0.4 → max 0.4.
	// Output 1 diffs: 0.1, 0.0 → max 0.1. FM = (0.4+0.1)/2 = 0.25.
	if got := FM(a, b); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("FM = %v, want 0.25", got)
	}
	// HD: row0 mean = (0.2+0.1)/2 = 0.15; row1 = (0.4+0)/2 = 0.2.
	// HD = 0.175.
	if got := HD(a, b); math.Abs(got-0.175) > 1e-12 {
		t.Errorf("HD = %v, want 0.175", got)
	}
}

func TestFMPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	FM([][]float64{{1}}, [][]float64{})
}

func TestHDPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	HD(nil, nil)
}

func TestFMBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		rows, cols := 1+rng.Intn(5), 1+rng.Intn(5)
		a := make([][]float64, rows)
		b := make([][]float64, rows)
		for j := range a {
			a[j] = make([]float64, cols)
			b[j] = make([]float64, cols)
			for i := range a[j] {
				a[j][i] = rng.Float64()
				b[j][i] = rng.Float64()
			}
		}
		fm, hd := FM(a, b), HD(a, b)
		if fm < 0 || fm > 1 || hd < 0 || hd > 1 {
			t.Fatalf("metrics out of [0,1]: FM=%v HD=%v", fm, hd)
		}
		if hd > fm+1e-12 {
			t.Fatalf("HD (%v) exceeded FM (%v): mean-of-max ≥ mean-of-mean must hold", hd, fm)
		}
	}
}

func TestMeasureBERZeroEps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l, err := lock.RLL(gen.C17(), 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	s := MeasureBER(l.Circuit, l.Key, 0, 20, 50, 7)
	if s.Avg != 0 || s.Max != 0 {
		t.Errorf("eps=0 BER stats = %+v", s)
	}
}

func TestMeasureBERGrowsWithEps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bm, _ := gen.ByName("c880")
	orig := bm.BuildScaled(4)
	l, err := lock.RLL(orig, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	low := MeasureBER(l.Circuit, l.Key, 0.005, 20, 100, 7)
	high := MeasureBER(l.Circuit, l.Key, 0.03, 20, 100, 7)
	if !(high.Avg > low.Avg) {
		t.Errorf("avg BER not increasing: %.4f → %.4f", low.Avg, high.Avg)
	}
	if high.Max < high.Avg {
		t.Errorf("max (%v) below avg (%v)", high.Max, high.Avg)
	}
}

func TestSignalProbMatrixShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l, err := lock.RLL(gen.C17(), 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	o := oracle.NewProbabilistic(l.Circuit, l.Key, 0.02, 9)
	inputs := RandomInputSet(l.Circuit, 7, rng)
	m := SignalProbMatrix(context.Background(), o, inputs, 30)
	if len(m) != 7 || len(m[0]) != 2 {
		t.Fatalf("matrix shape %dx%d", len(m), len(m[0]))
	}
	for _, row := range m {
		for _, p := range row {
			if p < 0 || p > 1 {
				t.Fatal("probability out of range")
			}
		}
	}
}

func TestKeysEquivalentExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l, err := lock.RLL(gen.C17(), 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := KeysEquivalent(l.Circuit, l.Key, l.Key)
	if err != nil || !eq {
		t.Errorf("key not equivalent to itself: %v %v", eq, err)
	}
	wrong := append([]bool(nil), l.Key...)
	wrong[0] = !wrong[0]
	eq, err = KeysEquivalent(l.Circuit, l.Key, wrong)
	if err != nil || eq {
		t.Errorf("flipped XOR key bit reported equivalent: %v %v", eq, err)
	}
}

func TestKeysEquivalentSFLLAntipodal(t *testing.T) {
	// SFLL-HD with h = keyBits/2: the antipodal key is functionally
	// equivalent; the equivalence checker must agree.
	rng := rand.New(rand.NewSource(6))
	l, err := lock.SFLLHD(gen.C17(), 4, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	anti := make([]bool, len(l.Key))
	for i, b := range l.Key {
		anti[i] = !b
	}
	eq, err := KeysEquivalent(l.Circuit, l.Key, anti)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("antipodal SFLL-HD^{k/2} key should be equivalent")
	}
}

func TestKeysEquivalentWidthError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l, _ := lock.RLL(gen.C17(), 3, rng)
	if _, err := KeysEquivalent(l.Circuit, []bool{true}, l.Key); err == nil {
		t.Error("want width error")
	}
}

func TestEquivalentToOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	orig := gen.C17()
	l, err := lock.SLL(orig, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := EquivalentToOriginal(l.Circuit, l.Key, orig)
	if err != nil || !eq {
		t.Errorf("correct key should restore original: %v %v", eq, err)
	}
	wrong := append([]bool(nil), l.Key...)
	wrong[2] = !wrong[2]
	eq, err = EquivalentToOriginal(l.Circuit, wrong, orig)
	if err != nil || eq {
		t.Errorf("wrong key reported equivalent: %v %v", eq, err)
	}
}

func TestEquivalentToOriginalInterfaceMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l, _ := lock.RLL(gen.C17(), 3, rng)
	other := gen.Random("other", 4, 20, 3, 1)
	if _, err := EquivalentToOriginal(l.Circuit, l.Key, other); err == nil {
		t.Error("want interface mismatch error")
	}
}

// TestSamplingHDFloorExplainsCorrectKeyHD validates the paper's
// Table II remark: the measured HD of the exactly-correct key should
// sit near the analytic sampling-noise floor.
func TestSamplingHDFloorExplainsCorrectKeyHD(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	bm, _ := gen.ByName("c880")
	orig := bm.BuildScaled(8)
	l, err := lock.RLL(orig, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.01
	const ns = 200
	inputs := RandomInputSet(l.Circuit, 25, rng)
	oraProbs := SignalProbMatrix(context.Background(), oracle.NewProbabilistic(l.Circuit, l.Key, eps, 70), inputs, ns)
	keyProbs := SignalProbMatrix(context.Background(), oracle.NewProbabilistic(l.Circuit, l.Key, eps, 71), inputs, ns)
	measured := HD(oraProbs, keyProbs)
	floor := SamplingHDFloor(context.Background(), oracle.NewProbabilistic(l.Circuit, l.Key, eps, 72), inputs, ns, 4000)
	if floor <= 0 {
		t.Fatal("floor should be positive under noise")
	}
	// The measured correct-key HD must be within ~2.5x of the floor
	// (it IS the floor up to estimation noise).
	if measured > 2.5*floor || floor > 2.5*measured {
		t.Errorf("measured HD(K*) %.5f vs sampling floor %.5f diverge", measured, floor)
	}
}

func TestSamplingHDFloorZeroNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	l, _ := lock.RLL(gen.C17(), 3, rng)
	inputs := RandomInputSet(l.Circuit, 10, rng)
	floor := SamplingHDFloor(context.Background(), oracle.NewDeterministic(l.Circuit, l.Key), inputs, 100, 500)
	if floor != 0 {
		t.Errorf("deterministic oracle floor = %v, want 0", floor)
	}
}

func TestSamplingHDFloorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for ns=0")
		}
	}()
	SamplingHDFloor(context.Background(), nil, nil, 0, 10)
}

func TestFMDiscriminatesKeyQuality(t *testing.T) {
	// FM of the correct key must beat FM of a corrupted key when both
	// are evaluated against the same noisy oracle.
	rng := rand.New(rand.NewSource(10))
	bm, _ := gen.ByName("c880")
	orig := bm.BuildScaled(4)
	l, err := lock.RLL(orig, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.01
	inputs := RandomInputSet(l.Circuit, 30, rng)
	oraProbs := SignalProbMatrix(context.Background(), oracle.NewProbabilistic(l.Circuit, l.Key, eps, 50), inputs, 200)
	goodProbs := SignalProbMatrix(context.Background(), oracle.NewProbabilistic(l.Circuit, l.Key, eps, 51), inputs, 200)
	wrong := append([]bool(nil), l.Key...)
	wrong[0], wrong[3] = !wrong[0], !wrong[3]
	badProbs := SignalProbMatrix(context.Background(), oracle.NewProbabilistic(l.Circuit, wrong, eps, 52), inputs, 200)
	fmGood := FM(oraProbs, goodProbs)
	fmBad := FM(oraProbs, badProbs)
	if fmGood >= fmBad {
		t.Errorf("FM(correct)=%.4f not better than FM(wrong)=%.4f", fmGood, fmBad)
	}
	if hdGood, hdBad := HD(oraProbs, goodProbs), HD(oraProbs, badProbs); hdGood >= hdBad {
		t.Errorf("HD(correct)=%.4f not better than HD(wrong)=%.4f", hdGood, hdBad)
	}
}

func BenchmarkKeysEquivalentScale8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bm, _ := gen.ByName("c3540")
	orig := bm.BuildScaled(8)
	l, err := lock.RLL(orig, 32, rng)
	if err != nil {
		b.Fatal(err)
	}
	wrong := append([]bool(nil), l.Key...)
	wrong[0] = !wrong[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := KeysEquivalent(l.Circuit, l.Key, wrong); err != nil {
			b.Fatal(err)
		}
	}
}
