package engine

import (
	"sync"
	"testing"

	"statsat/internal/trace"
)

func TestProgressAggregatesEvents(t *testing.T) {
	var p Progress
	feed := []trace.Event{
		{Type: trace.AttackStart, Attack: "statsat"},
		{Type: trace.IterStart, Iter: 0, OracleQueries: 10},
		{Type: trace.DIPFound, OracleQueries: 510},
		{Type: trace.IterEnd, Iter: 0},
		{Type: trace.Fork},
		{Type: trace.ForceProceed},
		{Type: trace.IterEnd, Iter: 1},
		{Type: trace.InstanceDead},
		{Type: trace.KeyAccepted, Key: &trace.KeyInfo{Key: "1011"}},
		{Type: trace.AttackEnd, Totals: &trace.TotalsInfo{OracleQueries: 999}},
		{Type: trace.EvalEnd, Score: &trace.ScoreInfo{FM: 0.97, HD: 0.01}},
	}
	for _, ev := range feed {
		p.Emit(ev)
	}
	s := p.Snapshot()
	if s.Attack != "statsat" {
		t.Errorf("Attack = %q", s.Attack)
	}
	if s.Events != int64(len(feed)) {
		t.Errorf("Events = %d, want %d", s.Events, len(feed))
	}
	if s.Iterations != 2 || s.DIPs != 1 || s.Forks != 1 || s.ForceProceeds != 1 || s.DeadInstances != 1 {
		t.Errorf("counters = %+v", s)
	}
	if s.KeysAccepted != 1 || s.LastKey != "1011" {
		t.Errorf("keys = %d lastKey = %q", s.KeysAccepted, s.LastKey)
	}
	if s.OracleQueries != 999 {
		t.Errorf("OracleQueries = %d, want 999 (attack_end totals win)", s.OracleQueries)
	}
	if !s.AttackDone || !s.Scored || s.BestFM != 0.97 || s.BestHD != 0.01 {
		t.Errorf("terminal flags = %+v", s)
	}
	if s.Interrupted {
		t.Error("Interrupted set without an interrupted event")
	}
}

func TestProgressInterrupted(t *testing.T) {
	var p Progress
	p.Emit(trace.Event{Type: trace.Interrupted, Interrupt: &trace.InterruptInfo{Cause: "context canceled"}})
	if !p.Snapshot().Interrupted {
		t.Fatal("Interrupted not set")
	}
}

func TestProgressOracleQueriesMonotonic(t *testing.T) {
	var p Progress
	p.Emit(trace.Event{Type: trace.IterStart, OracleQueries: 100})
	p.Emit(trace.Event{Type: trace.IterStart, OracleQueries: 40}) // another instance, lower stamp
	if got := p.Snapshot().OracleQueries; got != 100 {
		t.Fatalf("OracleQueries = %d, want max-observed 100", got)
	}
}

func TestProgressConcurrentSnapshot(t *testing.T) {
	var p Progress
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			p.Emit(trace.Event{Type: trace.IterEnd, Iter: i})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			_ = p.Snapshot()
		}
	}()
	wg.Wait()
	if got := p.Snapshot().Iterations; got != 1000 {
		t.Fatalf("Iterations = %d, want 1000", got)
	}
}

// Progress must satisfy trace.Tracer so it can ride any attack's
// tracer chain.
var _ trace.Tracer = (*Progress)(nil)
