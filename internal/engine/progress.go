package engine

import (
	"sync"

	"statsat/internal/trace"
)

// Progress is a race-safe live view of a running attack, aggregated
// from its trace stream. It implements trace.Tracer, so observers
// (statsatd's job status endpoint, tests, dashboards) attach it
// alongside their other sinks — trace.Multi(stream, progress) — and
// poll Snapshot from any goroutine while the attack runs. Because it
// consumes the same documented event schema every engine emits
// (docs/OBSERVABILITY.md), one Progress works for all four attacks
// without touching their loops.
//
// The zero value is ready to use.
type Progress struct {
	mu   sync.Mutex
	snap ProgressSnapshot
}

// ProgressSnapshot is a point-in-time copy of the counters. All fields
// are monotonic over the life of a run except LastKey, which tracks
// the most recently accepted key.
type ProgressSnapshot struct {
	// Attack is the engine name from attack_start ("statsat", "psat",
	// "sat"); empty until the run opens its trace.
	Attack string `json:"attack,omitempty"`
	// Events counts every trace event observed.
	Events int64 `json:"events"`
	// Iterations counts completed iterations (iteration_end events,
	// summed across instances).
	Iterations int `json:"iterations"`
	// DIPs counts distinguishing inputs recorded (dip_found).
	DIPs int `json:"dips"`
	// Forks and ForceProceeds count eq. 5 / eq. 6 events (StatSAT).
	Forks         int `json:"forks,omitempty"`
	ForceProceeds int `json:"force_proceeds,omitempty"`
	// DeadInstances counts instance_dead events.
	DeadInstances int `json:"dead_instances,omitempty"`
	// KeysAccepted counts key_accepted events; LastKey is the most
	// recent one's key bits — the caller's best-effort "key so far"
	// while the run is still going.
	KeysAccepted int    `json:"keys_accepted"`
	LastKey      string `json:"last_key,omitempty"`
	// OracleQueries is the highest cumulative query count stamped on
	// any event so far.
	OracleQueries int64 `json:"oracle_queries"`
	// Interrupted is set once an interrupted event arrives: everything
	// after it is best-effort.
	Interrupted bool `json:"interrupted,omitempty"`
	// AttackDone is set by attack_end; Scored (with BestFM/BestHD) by
	// eval_end.
	AttackDone bool    `json:"attack_done,omitempty"`
	Scored     bool    `json:"scored,omitempty"`
	BestFM     float64 `json:"best_fm,omitempty"`
	BestHD     float64 `json:"best_hd,omitempty"`
}

// Emit implements trace.Tracer.
func (p *Progress) Emit(ev trace.Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := &p.snap
	s.Events++
	if ev.OracleQueries > s.OracleQueries {
		s.OracleQueries = ev.OracleQueries
	}
	switch ev.Type {
	case trace.AttackStart:
		s.Attack = ev.Attack
	case trace.IterEnd:
		s.Iterations++
	case trace.DIPFound:
		s.DIPs++
	case trace.Fork:
		s.Forks++
	case trace.ForceProceed:
		s.ForceProceeds++
	case trace.InstanceDead:
		s.DeadInstances++
	case trace.KeyAccepted:
		s.KeysAccepted++
		if ev.Key != nil {
			s.LastKey = ev.Key.Key
		}
	case trace.Interrupted:
		s.Interrupted = true
	case trace.AttackEnd:
		s.AttackDone = true
		if ev.Totals != nil && ev.Totals.OracleQueries > s.OracleQueries {
			s.OracleQueries = ev.Totals.OracleQueries
		}
	case trace.EvalEnd:
		s.Scored = true
		if ev.Score != nil {
			s.BestFM, s.BestHD = ev.Score.FM, ev.Score.HD
		}
	}
}

// Snapshot returns a copy of the current counters; safe to call from
// any goroutine at any time.
func (p *Progress) Snapshot() ProgressSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snap
}
