package engine

import (
	"statsat/internal/trace"
)

// The emit helpers keep every attack on the same event schema
// (docs/OBSERVABILITY.md). All are nil-safe: with no tracer configured
// the Emitter no-ops, and the payload-building ones additionally gate
// on Enabled so untraced runs skip the allocation entirely.

// EmitStart opens a trace with the run-scoped attack_start event.
func (e *Engine) EmitStart(name string, opts *trace.OptionsInfo) {
	if !e.Tr.Enabled() {
		return
	}
	e.Tr.Emit(trace.Event{
		Type: trace.AttackStart, Attack: name, Instance: -1,
		Circuit: &trace.CircuitInfo{
			Name: e.Locked.Name, PIs: e.Locked.NumPIs(), POs: e.Locked.NumPOs(), Keys: e.Locked.NumKeys(),
		},
		Opts: opts,
	})
}

// EmitIterStart opens one iteration attempt with a pre-solve snapshot.
func (e *Engine) EmitIterStart(inst *Instance, iter int) {
	if !e.Tr.Enabled() {
		return
	}
	e.Tr.Emit(trace.Event{
		Type: trace.IterStart, Instance: inst.ID, Iter: iter,
		Solver: trace.SolverSnapshot(inst.M.S), OracleQueries: e.Orc.Queries() - e.StartQ,
	})
}

// EmitIterEnd closes one iteration attempt with its outcome and a
// post-iteration solver snapshot.
func (e *Engine) EmitIterEnd(inst *Instance, iter int, status string) {
	if !e.Tr.Enabled() {
		return
	}
	e.Tr.Emit(trace.Event{
		Type: trace.IterEnd, Instance: inst.ID, Iter: iter, Status: status,
		Solver: trace.SolverSnapshot(inst.M.S), OracleQueries: e.Orc.Queries() - e.StartQ,
	})
}

// EmitDIP records a distinguishing input. The caller builds the
// DIPInfo (the baselines specify every bit; StatSAT adds candidate
// counts and partial vectors).
func (e *Engine) EmitDIP(inst *Instance, iter int, info *trace.DIPInfo) {
	if !e.Tr.Enabled() {
		return
	}
	e.Tr.Emit(trace.Event{
		Type: trace.DIPFound, Instance: inst.ID, Iter: iter,
		OracleQueries: e.Orc.Queries() - e.StartQ,
		DIP:           info,
	})
}

// EmitInterrupted records a cancellation: the run-scoped marker that
// everything after it (and the totals that follow) is best-effort.
func (e *Engine) EmitInterrupted(cause error, iterations int) {
	if !e.Tr.Enabled() {
		return
	}
	e.Tr.Emit(trace.Event{
		Type: trace.Interrupted, Instance: -1,
		Interrupt: &trace.InterruptInfo{Cause: cause.Error(), Iterations: iterations},
	})
}

// EmitSingleOutcome reports a converged single-instance attack's key
// (key_accepted) or failure (instance_dead).
func (e *Engine) EmitSingleOutcome(res *Result) {
	if !e.Tr.Enabled() {
		return
	}
	if res.Key != nil {
		e.Tr.Emit(trace.Event{
			Type: trace.KeyAccepted, Instance: 0,
			Key: &trace.KeyInfo{Key: BitString(res.Key), Iterations: res.Iterations, DIPs: res.Iterations},
		})
	} else {
		e.Tr.Emit(trace.Event{
			Type: trace.InstanceDead, Instance: 0,
			Key: &trace.KeyInfo{Iterations: res.Iterations, DIPs: res.Iterations},
		})
	}
}

// EmitSingleEnd closes a single-instance trace with its totals.
func (e *Engine) EmitSingleEnd(res *Result) {
	if !e.Tr.Enabled() {
		return
	}
	keys := 0
	if res.Key != nil {
		keys = 1
	}
	dead := 0
	if res.Failed {
		dead = 1
	}
	e.Tr.Emit(trace.Event{
		Type: trace.AttackEnd, Instance: -1,
		Totals: &trace.TotalsInfo{
			Keys: keys, Iterations: res.Iterations, InstancesCreated: 1, PeakLive: 1,
			DeadInstances: dead, OracleQueries: res.OracleQueries,
			DurationNs: res.Duration.Nanoseconds(),
		},
	})
}
