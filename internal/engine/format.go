package engine

// BitString renders a bit vector as a '0'/'1' string for trace events
// and logs.
func BitString(bits []bool) string {
	return string(AppendBits(nil, bits))
}

// AppendBits renders x as '0'/'1' bytes into buf. Looking a []byte up
// in a map via m[string(buf)] compiles to an allocation-free access,
// which is why per-iteration repeat checks use this form.
func AppendBits(buf []byte, x []bool) []byte {
	for _, v := range x {
		if v {
			buf = append(buf, '1')
		} else {
			buf = append(buf, '0')
		}
	}
	return buf
}

// FmtY renders a partially-specified output vector ('x' = unspecified).
func FmtY(y []int8) string {
	b := make([]byte, len(y))
	for i, v := range y {
		switch v {
		case 0:
			b[i] = '0'
		case 1:
			b[i] = '1'
		default:
			b[i] = 'x'
		}
	}
	return string(b)
}
