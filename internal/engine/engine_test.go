package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"statsat/internal/cnf"
	"statsat/internal/gen"
	"statsat/internal/lock"
	"statsat/internal/sat"
)

func TestInterruptedErrorMatching(t *testing.T) {
	ie := &InterruptedError{Cause: context.DeadlineExceeded, Instance: 2, Iterations: 9}
	if !errors.Is(ie, ErrInterrupted) {
		t.Error("InterruptedError must match ErrInterrupted")
	}
	if !errors.Is(ie, context.DeadlineExceeded) {
		t.Error("InterruptedError must unwrap to its cause")
	}
	if errors.Is(ie, context.Canceled) {
		t.Error("InterruptedError matched a cause it does not carry")
	}
	if errors.Is(ErrIterationLimit, ErrInterrupted) {
		t.Error("the sentinels must stay distinct")
	}
	want := "attack: interrupted at instance 2 after 9 iterations: context deadline exceeded"
	if got := ie.Error(); got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
}

func TestBestEffortKey(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l, err := lock.RLL(gen.C17(), 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	ks := cnf.NewKeySolver(l.Circuit)
	ks.S.ConflictBudget = 123
	key := BestEffortKey(ks)
	if key == nil {
		t.Fatal("unconstrained key solver must yield a candidate")
	}
	if len(key) != len(l.Key) {
		t.Errorf("key has %d bits, want %d", len(key), len(l.Key))
	}
	if ks.S.ConflictBudget != 123 {
		t.Errorf("ConflictBudget = %d after extraction, want the caller's 123 restored",
			ks.S.ConflictBudget)
	}
	// An unsatisfiable solver yields no candidate (and no panic).
	ks.S.AddClause() // empty clause
	if got := BestEffortKey(ks); got != nil {
		t.Errorf("BestEffortKey on UNSAT solver = %v, want nil", got)
	}
}

func TestStepInterruptedOnDeadCtx(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l, err := lock.RLL(gen.C17(), 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Locked: l.Circuit}
	inst, err := e.NewInstance(0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done, err := e.Step(ctx, inst, nil) // strategy untouched on the interrupt path
	if !done {
		t.Error("interrupted Step must report done")
	}
	var ie *InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InterruptedError", err, err)
	}
	if ie.Instance != 0 || ie.Iterations != 0 {
		t.Errorf("payload = %+v, want instance 0 at iteration 0", ie)
	}
	if inst.Iterations != 0 {
		t.Errorf("interrupted Step advanced Iterations to %d", inst.Iterations)
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := BitString([]bool{true, false, true, true}); got != "1011" {
		t.Errorf("BitString = %q", got)
	}
	if got := BitString(nil); got != "" {
		t.Errorf("BitString(nil) = %q", got)
	}
	buf := AppendBits([]byte("k="), []bool{false, true})
	if string(buf) != "k=01" {
		t.Errorf("AppendBits = %q", buf)
	}
	if got := FmtY([]int8{0, 1, -1, 1}); got != "01x1" {
		t.Errorf("FmtY = %q", got)
	}
}

func TestDefaultConvergedInterrupted(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l, err := lock.RLL(gen.C17(), 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Locked: l.Circuit}
	inst, err := e.NewInstance(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var res Result
	err = DefaultConverged(ctx, inst, &res)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if res.Failed {
		t.Error("a cancelled convergence solve is not a failed attack")
	}
	// With a live context the unconstrained solver converges to a key.
	res = Result{}
	if err := DefaultConverged(context.Background(), inst, &res); err != nil {
		t.Fatal(err)
	}
	if res.Failed || res.Key == nil {
		t.Errorf("live convergence: failed=%v key=%v", res.Failed, res.Key)
	}
	if inst.KS.S.Solve() != sat.Sat {
		t.Error("key solver left unusable after convergence")
	}
}
