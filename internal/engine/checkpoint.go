package engine

// Checkpoint is the serializable progress marker captured at the
// Engine.Step boundary — the natural cut point the ROADMAP's
// distributed-fabric direction names, since between Steps all attack
// state is reconstructible from the run's inputs plus the oracle
// interactions consumed so far (docs/ARCHITECTURE.md "Checkpoint
// contract"). A checkpoint does not snapshot solver internals: resume
// re-executes the attack deterministically against the recorded
// oracle tape (internal/oracle's Journal), and the checkpoint's
// counters locate — and cross-check — how far the durable tape
// reaches. Any durable tape prefix resumes correctly; checkpoint
// cadence therefore tunes durability granularity, never correctness.
type Checkpoint struct {
	// Instance is the SAT instance that completed the Step (root /
	// single-instance = 0; StatSAT's fork-tree children count up).
	Instance int `json:"instance"`
	// Iterations is that instance's completed DIP iteration count.
	Iterations int `json:"iterations"`
	// OracleQueries is the cumulative chip-query count relative to
	// attack start (the same origin trace events are stamped with).
	OracleQueries int64 `json:"oracle_queries"`
	// NoiseDraws is the noisy oracle's rng stream position, when the
	// oracle counts one (oracle.NoiseCounter); zero otherwise.
	NoiseDraws uint64 `json:"noise_draws,omitempty"`
}

// CheckpointSink receives one Checkpoint after every completed Step.
// Sinks run on the attack goroutine between iterations; a durable sink
// (statsatd's WAL group-commit barrier) makes everything the attack
// consumed up to this boundary stable before the next Step begins.
type CheckpointSink func(Checkpoint)

// Covers reports whether c is at or past prev on every axis — the
// monotonicity invariant of a checkpoint stream. WAL replay uses it to
// reject logs whose checkpoint records went backwards (a mixed-up or
// hand-edited data directory) before committing to a resume.
func (c Checkpoint) Covers(prev Checkpoint) bool {
	return c.Iterations >= prev.Iterations &&
		c.OracleQueries >= prev.OracleQueries &&
		c.NoiseDraws >= prev.NoiseDraws
}

// emitCkpt delivers the post-Step checkpoint when a sink is installed.
func (e *Engine) emitCkpt(inst *Instance) {
	if e.Ckpt == nil {
		return
	}
	ck := Checkpoint{
		Instance:      inst.ID,
		Iterations:    inst.Iterations,
		OracleQueries: e.Orc.Queries() - e.StartQ,
	}
	if nc, ok := e.Orc.(interface{ NoiseDraws() uint64 }); ok {
		ck.NoiseDraws = nc.NoiseDraws()
	}
	e.Ckpt(ck)
}
