// Package engine owns the oracle-guided attack loop shared by every
// attack in this repository. The classic SAT attack, PSAT, AppSAT
// (internal/attack) and StatSAT (internal/core) all iterate the same
// skeleton — solve the miter, extract a distinguishing input, ask the
// oracle, constrain the solvers, repeat until UNSAT — and differ only
// in how they answer a DIP and how they declare convergence. That
// variable part is the Strategy interface; the invariant part
// (miter/key-solver lifecycle, iteration bookkeeping, trace emission,
// cancellation, best-effort result extraction) lives here exactly
// once.
//
// Two entry points:
//
//   - Engine.Run drives a complete single-instance attack (the
//     baselines) including the attack_start/attack_end envelope;
//   - Engine.Step performs one iteration for one instance, which
//     multi-instance schedulers (StatSAT's fork tree) call directly.
//
// Cancellation contract: every Step checks the context through
// sat.Solver.SolveCtx (amortized over conflicts). On cancellation or
// deadline expiry the attack stops with a *InterruptedError — which
// matches both ErrInterrupted and the context cause via errors.Is —
// and the caller still receives a best-effort result. See
// docs/ARCHITECTURE.md for the full contract.
package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"statsat/internal/circuit"
	"statsat/internal/cnf"
	"statsat/internal/oracle"
	"statsat/internal/sat"
	"statsat/internal/trace"
)

// ErrIterationLimit is returned when an attack exceeds its iteration
// budget without converging.
var ErrIterationLimit = errors.New("attack: iteration limit exceeded")

// ErrInterrupted is the sentinel every interrupted attack matches:
// errors.Is(err, ErrInterrupted) holds for any *InterruptedError.
// Interrupted attacks return it alongside a non-nil best-effort
// result, never instead of one.
var ErrInterrupted = errors.New("attack: interrupted")

// InterruptedError reports a cancelled or deadlined attack: the
// context cause plus how far the run got. It matches ErrInterrupted
// via Is and the underlying context error (context.Canceled /
// context.DeadlineExceeded) via Unwrap.
type InterruptedError struct {
	// Cause is the context's error at interrupt time.
	Cause error
	// Instance is the SAT instance that observed the interrupt.
	Instance int
	// Iterations counts iterations completed before the interrupt
	// (the interrupting instance's counter for single-instance runs,
	// the global total for StatSAT).
	Iterations int
}

func (e *InterruptedError) Error() string {
	return fmt.Sprintf("attack: interrupted at instance %d after %d iterations: %v",
		e.Instance, e.Iterations, e.Cause)
}

// Unwrap exposes the context cause to errors.Is/As chains.
func (e *InterruptedError) Unwrap() error { return e.Cause }

// Is makes errors.Is(err, ErrInterrupted) succeed for any
// InterruptedError regardless of cause.
func (e *InterruptedError) Is(target error) bool { return target == ErrInterrupted }

// Result reports the outcome of a single-instance oracle-guided
// attack (the baselines; StatSAT aggregates a richer core.Result).
type Result struct {
	// Key is the recovered key, nil if the attack failed (PSAT's CNF
	// can become unsatisfiable when a wrong pattern is recorded). On
	// an interrupted run it holds the best-effort key candidate
	// satisfying the DIPs recorded so far, when one exists.
	Key []bool
	// Iterations is the number of distinguishing inputs processed.
	Iterations int
	// Duration is the wall-clock attack time (T_attack).
	Duration time.Duration
	// OracleQueries counts total chip queries.
	OracleQueries int64
	// Failed is set when the formula became UNSAT before a key was
	// produced (inconsistent DIPs — the §III failure mode).
	Failed bool
}

// Instance is one SAT formulation of the attack: the miter whose
// models are distinguishing inputs, the key solver accumulating the
// recorded DIP constraints, and the iteration counter. Multi-instance
// attacks embed it and fork clones.
type Instance struct {
	// ID names the instance in trace events (root/single = 0).
	ID int
	// M is the miter solver (two keyed copies disagreeing on x).
	M *cnf.Miter
	// KS is the key solver (one copy per recorded DIP).
	KS *cnf.KeySolver
	// Iterations counts DIP iterations completed by this instance.
	Iterations int
	// Port, when non-nil, overrides how Step solves the miter — the
	// portfolio races helper configurations against M.S through it
	// (internal/portfolio). Nil keeps the plain sequential solve.
	Port MiterSolver
}

// MiterSolver is Step's pluggable miter-solve: given the iteration's
// context it returns the miter verdict, with any Sat model left in
// Instance.M.S (the portfolio contract: only the base solver may
// produce models, so Instance.M.Input() stays valid either way).
type MiterSolver interface {
	Solve(ctx context.Context) sat.Status
}

// solveMiter dispatches one miter solve through the portfolio override
// when present.
func (inst *Instance) solveMiter(ctx context.Context) sat.Status {
	if inst.Port != nil {
		return inst.Port.Solve(ctx)
	}
	return inst.M.S.SolveCtx(ctx)
}

// Strategy is the attack-specific part of the loop.
type Strategy interface {
	// Respond handles a satisfiable miter: x is the distinguishing
	// input just extracted (Instance.Iterations has already been
	// advanced to count it). The strategy queries the oracle,
	// constrains the solvers and returns the iteration outcome for
	// the iteration_end trace event ("dip", "repeat", "dead", ...).
	// done terminates the loop early (AppSAT's approximate exit).
	Respond(ctx context.Context, inst *Instance, x []bool) (status string, done bool, err error)
	// Converged handles an unsatisfiable miter: no distinguishing
	// input remains, so the recorded constraints pin the key class.
	// Called before the final iteration_end("unsat") event, which is
	// where StatSAT emits key_accepted/instance_dead.
	Converged(ctx context.Context, inst *Instance) error
}

// Engine bundles what every iteration needs: the attacked netlist,
// the oracle, and the trace emitter. One Engine serves all instances
// of a run.
type Engine struct {
	Locked *circuit.Circuit
	Orc    oracle.Oracle
	// Tr stamps and forwards trace events; nil-safe (all emits
	// no-op when no tracer is configured).
	Tr *trace.Emitter
	// StartQ is subtracted from the oracle's cumulative counter when
	// stamping events: the baselines stamp queries relative to attack
	// start, StatSAT stamps the absolute shared-chip counter (0).
	StartQ int64
	// Ckpt, when non-nil, receives a Checkpoint after every completed
	// Step — the durable-resume boundary (see checkpoint.go).
	Ckpt CheckpointSink
}

// NewInstance builds a fresh instance (miter + key solver) for the
// engine's circuit.
func (e *Engine) NewInstance(id int) (*Instance, error) {
	m, err := cnf.NewMiter(e.Locked)
	if err != nil {
		return nil, err
	}
	return &Instance{ID: id, M: m, KS: cnf.NewKeySolver(e.Locked)}, nil
}

// Step runs one iteration of the shared loop for inst: emit the
// pre-solve snapshot, solve the miter under ctx, and dispatch to the
// strategy. It returns done=true when the loop should stop (converged,
// strategy early-exit, or error). A context interrupt surfaces as a
// *InterruptedError; the caller owns emitting the interrupted event
// and assembling the best-effort result.
func (e *Engine) Step(ctx context.Context, inst *Instance, st Strategy) (bool, error) {
	iter := inst.Iterations + 1
	e.EmitIterStart(inst, iter)
	switch inst.solveMiter(ctx) {
	case sat.Unknown:
		if err := ctx.Err(); err != nil {
			return true, &InterruptedError{Cause: err, Instance: inst.ID, Iterations: inst.Iterations}
		}
		return true, fmt.Errorf("attack: instance %d miter solve exceeded budget at iteration %d",
			inst.ID, inst.Iterations)
	case sat.Unsat:
		if err := st.Converged(ctx, inst); err != nil {
			return true, err
		}
		e.EmitIterEnd(inst, iter, "unsat")
		e.emitCkpt(inst)
		return true, nil
	}
	inst.Iterations++
	x := inst.M.Input()
	status, done, err := st.Respond(ctx, inst, x)
	if err != nil {
		return true, err
	}
	e.EmitIterEnd(inst, iter, status)
	e.emitCkpt(inst)
	return done, nil
}

// Config parameterises Run.
type Config struct {
	// Name is the engine name stamped on attack_start ("sat", "psat").
	Name string
	// MaxIter bounds the number of DIP iterations.
	MaxIter int
	// Opts echoes the attack parameters on attack_start.
	Opts *trace.OptionsInfo
	// Attach, when non-nil, is called on the freshly built instance
	// before the iteration loop. The baselines use it to register the
	// instance with a portfolio and install its Port override.
	Attach func(*Instance)
}

// Run drives a complete single-instance attack: attack_start, the
// iteration loop via Step, and the closing events. res must be
// non-nil; Run fills its counters in place so strategies may share the
// pointer (AppSAT's reconciliation statistics ride alongside).
//
// Returns ErrIterationLimit (res is then incomplete and should be
// discarded), a *InterruptedError (res holds the best-effort state,
// including a key candidate when one is extractable), or nil.
func (e *Engine) Run(ctx context.Context, cfg Config, st Strategy, res *Result) error {
	e.EmitStart(cfg.Name, cfg.Opts)
	start := time.Now()
	e.StartQ = e.Orc.Queries()
	inst, err := e.NewInstance(0)
	if err != nil {
		return err
	}
	if cfg.Attach != nil {
		cfg.Attach(inst)
	}
	for inst.Iterations < cfg.MaxIter {
		done, err := e.Step(ctx, inst, st)
		if err != nil {
			var ie *InterruptedError
			if errors.As(err, &ie) {
				res.Iterations = inst.Iterations
				res.Duration = time.Since(start)
				res.OracleQueries = e.Orc.Queries() - e.StartQ
				if res.Key == nil {
					res.Key = BestEffortKey(inst.KS)
				}
				e.EmitInterrupted(ie.Cause, inst.Iterations)
				e.EmitSingleEnd(res)
			}
			return err
		}
		if done {
			res.Iterations = inst.Iterations
			res.Duration = time.Since(start)
			res.OracleQueries = e.Orc.Queries() - e.StartQ
			e.EmitSingleOutcome(res)
			e.EmitSingleEnd(res)
			return nil
		}
	}
	return ErrIterationLimit
}

// DefaultConverged is the baseline convergence rule: any key
// satisfying the recorded DIPs is in the equivalence class the miter
// just proved unique, so extract one; an unsatisfiable key solver
// means a wrong pattern was committed (Failed).
func DefaultConverged(ctx context.Context, inst *Instance, res *Result) error {
	switch inst.KS.S.SolveCtx(ctx) {
	case sat.Sat:
		res.Key = inst.KS.Key()
	case sat.Unknown:
		if err := ctx.Err(); err != nil {
			return &InterruptedError{Cause: err, Instance: inst.ID, Iterations: inst.Iterations}
		}
		res.Failed = true
	default:
		res.Failed = true
	}
	return nil
}

// InstallDIP adds one fully specified distinguishing I/O pair to the
// instance's miter and key solvers (the baseline constraint shape;
// StatSAT installs partially specified vectors instead).
func InstallDIP(inst *Instance, x, y []bool) error {
	outA, outB, err := inst.M.AddDIPCopies(x)
	if err != nil {
		return err
	}
	for i := range y {
		cnf.Equal(inst.M.S, outA[i], y[i])
		cnf.Equal(inst.M.S, outB[i], y[i])
	}
	outs, err := inst.KS.AddDIPCopy(x)
	if err != nil {
		return err
	}
	for i := range y {
		cnf.Equal(inst.KS.S, outs[i], y[i])
	}
	return nil
}

// bestEffortConflictBudget bounds the post-interrupt key extraction:
// the context is already dead, so the solve runs under a conflict
// budget instead of a deadline.
const bestEffortConflictBudget = 50000

// BestEffortKey extracts the current key candidate satisfying the
// DIP constraints recorded so far — the "best so far" answer an
// interrupted attack still owes its caller. Returns nil when no
// candidate is found within a bounded search.
func BestEffortKey(ks *cnf.KeySolver) []bool {
	saved := ks.S.ConflictBudget
	ks.S.ConflictBudget = bestEffortConflictBudget
	defer func() { ks.S.ConflictBudget = saved }()
	if ks.S.Solve() == sat.Sat {
		return ks.Key()
	}
	return nil
}
