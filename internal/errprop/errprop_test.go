package errprop

import (
	"math"
	"math/rand"
	"testing"

	"statsat/internal/circuit"
	"statsat/internal/gen"
)

func TestSingleBufGate(t *testing.T) {
	c := circuit.New("buf")
	a := c.AddInput("a")
	b := c.AddGate(circuit.Buf, "b", a)
	c.AddOutput(b, "")
	const eps = 0.2
	e, err := OutputBERs(c, []bool{true}, nil, eps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e[0]-eps) > 1e-12 {
		t.Errorf("BER = %v, want %v", e[0], eps)
	}
}

func TestTwoBufChain(t *testing.T) {
	// Two noisy buffers: wrong iff exactly one flips:
	// p = eps(1-eps) + (1-eps)eps.
	c := circuit.New("chain")
	a := c.AddInput("a")
	b1 := c.AddGate(circuit.Buf, "b1", a)
	b2 := c.AddGate(circuit.Buf, "b2", b1)
	c.AddOutput(b2, "")
	const eps = 0.1
	e, err := OutputBERs(c, []bool{false}, nil, eps)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * eps * (1 - eps)
	if math.Abs(e[0]-want) > 1e-12 {
		t.Errorf("BER = %v, want %v", e[0], want)
	}
}

func TestAndGateMasking(t *testing.T) {
	// AND with inputs (0,0): a single input flip cannot change the
	// output (still 0); both must flip. With noise-free inputs feeding
	// noisy bufs... construct: in0,in1 -> BUF -> AND.
	c := circuit.New("and")
	a := c.AddInput("a")
	b := c.AddInput("b")
	ba := c.AddGate(circuit.Buf, "ba", a)
	bb := c.AddGate(circuit.Buf, "bb", b)
	g := c.AddGate(circuit.And, "g", ba, bb)
	c.AddOutput(g, "")
	const eps = 0.2
	e, err := OutputBERs(c, []bool{false, false}, nil, eps)
	if err != nil {
		t.Fatal(err)
	}
	// q = P(both buf outputs flipped) = eps². BER = q(1-eps)+(1-q)eps.
	q := eps * eps
	want := q*(1-eps) + (1-q)*eps
	if math.Abs(e[0]-want) > 1e-12 {
		t.Errorf("BER = %v, want %v", e[0], want)
	}
	// With inputs (1,1) a single flip changes the output: q = 1-(1-eps)².
	e2, _ := OutputBERs(c, []bool{true, true}, nil, eps)
	q2 := 1 - (1-eps)*(1-eps)
	want2 := q2*(1-eps) + (1-q2)*eps
	if math.Abs(e2[0]-want2) > 1e-12 {
		t.Errorf("BER(1,1) = %v, want %v", e2[0], want2)
	}
}

func TestXorAlwaysPropagates(t *testing.T) {
	// XOR propagates any odd number of input flips regardless of values.
	c := circuit.New("xor")
	a := c.AddInput("a")
	b := c.AddInput("b")
	ba := c.AddGate(circuit.Buf, "ba", a)
	bb := c.AddGate(circuit.Buf, "bb", b)
	g := c.AddGate(circuit.Xor, "g", ba, bb)
	c.AddOutput(g, "")
	const eps = 0.15
	for _, in := range [][]bool{{false, false}, {false, true}, {true, false}, {true, true}} {
		e, err := OutputBERs(c, in, nil, eps)
		if err != nil {
			t.Fatal(err)
		}
		q := 2 * eps * (1 - eps) // exactly one input flipped
		want := q*(1-eps) + (1-q)*eps
		if math.Abs(e[0]-want) > 1e-12 {
			t.Errorf("BER(%v) = %v, want %v", in, e[0], want)
		}
	}
}

func TestEpsZeroGivesZero(t *testing.T) {
	c := gen.C17()
	e, err := OutputBERs(c, []bool{true, false, true, false, true}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range e {
		if v != 0 {
			t.Errorf("output %d BER = %v with eps=0", i, v)
		}
	}
}

func TestEpsRangeError(t *testing.T) {
	c := gen.C17()
	if _, err := OutputBERs(c, []bool{true, false, true, false, true}, nil, -0.1); err == nil {
		t.Error("want error for negative eps")
	}
	if _, err := OutputBERs(c, []bool{true, false, true, false, true}, nil, 1.1); err == nil {
		t.Error("want error for eps>1")
	}
}

// TestMonteCarloAgreementTree compares the analytic estimate with
// Monte-Carlo simulation on a fanout-free (tree) circuit, where the
// independence assumption is exact.
func TestMonteCarloAgreementTree(t *testing.T) {
	c := circuit.New("tree")
	var leaves []int
	for i := 0; i < 8; i++ {
		leaves = append(leaves, c.AddInput(""))
	}
	l1a := c.AddGate(circuit.Nand, "", leaves[0], leaves[1])
	l1b := c.AddGate(circuit.Or, "", leaves[2], leaves[3])
	l1c := c.AddGate(circuit.Xor, "", leaves[4], leaves[5])
	l1d := c.AddGate(circuit.Nor, "", leaves[6], leaves[7])
	l2a := c.AddGate(circuit.And, "", l1a, l1b)
	l2b := c.AddGate(circuit.Xnor, "", l1c, l1d)
	root := c.AddGate(circuit.Nand, "", l2a, l2b)
	c.AddOutput(root, "")

	rng := rand.New(rand.NewSource(42))
	const eps = 0.05
	const trials = 60000
	for rep := 0; rep < 3; rep++ {
		x := c.RandomInputs(rng)
		ref := c.Eval(x, nil, nil)[0]
		wrong := 0
		for i := 0; i < trials; i++ {
			if c.EvalNoisy(x, nil, eps, rng, nil)[0] != ref {
				wrong++
			}
		}
		mc := float64(wrong) / trials
		e, err := OutputBERs(c, x, nil, eps)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(e[0]-mc) > 0.01 {
			t.Errorf("x=%v: analytic %.4f vs MC %.4f", x, e[0], mc)
		}
	}
}

// TestMonteCarloRoughAgreementDAG checks the estimate stays in the
// right ballpark on circuits WITH reconvergent fanout (the paper's
// "rough" regime): we only require the same order of magnitude.
func TestMonteCarloRoughAgreementDAG(t *testing.T) {
	c := gen.Random("dag", 10, 80, 6, 3)
	rng := rand.New(rand.NewSource(9))
	const eps = 0.02
	const trials = 20000
	x := c.RandomInputs(rng)
	ref := c.Eval(x, nil, nil)
	wrong := make([]int, c.NumPOs())
	for i := 0; i < trials; i++ {
		y := c.EvalNoisy(x, nil, eps, rng, nil)
		for j := range y {
			if y[j] != ref[j] {
				wrong[j]++
			}
		}
	}
	e, err := OutputBERs(c, x, nil, eps)
	if err != nil {
		t.Fatal(err)
	}
	for j := range e {
		mc := float64(wrong[j]) / trials
		// Correlation effects can bias the analytic value; demand
		// agreement within an absolute 0.1 or factor of 3.
		if math.Abs(e[j]-mc) > 0.1 && (e[j] > 3*mc+0.01 || mc > 3*e[j]+0.01) {
			t.Errorf("output %d: analytic %.4f vs MC %.4f too far apart", j, e[j], mc)
		}
	}
}

func TestBERsMonotoneInDepthOnChain(t *testing.T) {
	// Deeper buffer chains accumulate error monotonically (below 0.5).
	prev := 0.0
	for depth := 1; depth <= 10; depth++ {
		c := circuit.New("chain")
		w := c.AddInput("a")
		for i := 0; i < depth; i++ {
			w = c.AddGate(circuit.Buf, "", w)
		}
		c.AddOutput(w, "")
		e, err := OutputBERs(c, []bool{true}, nil, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if e[0] <= prev {
			t.Errorf("depth %d: BER %.5f not increasing (prev %.5f)", depth, e[0], prev)
		}
		if e[0] > 0.5 {
			t.Errorf("depth %d: BER %.5f exceeded 0.5 asymptote", depth, e[0])
		}
		prev = e[0]
	}
}

func TestProbabilitiesWithinUnitInterval(t *testing.T) {
	c := gen.Random("r", 12, 300, 10, 17)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 5; trial++ {
		x := c.RandomInputs(rng)
		p, err := WireErrorProbs(c, x, nil, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		for id, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("wire %d error prob %v out of range", id, v)
			}
		}
	}
}

func TestAverageOutputBERs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	orig := gen.Random("avg", 8, 60, 4, 21)
	// Fake "locked" circuit: reuse the same netlist with zero keys; the
	// average over identical keys must equal a single estimate.
	x := orig.RandomInputs(rng)
	single, err := OutputBERs(orig, x, nil, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := AverageOutputBERs(orig, x, [][]bool{nil, nil, nil}, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	for i := range single {
		if math.Abs(single[i]-avg[i]) > 1e-12 {
			t.Errorf("output %d: avg %v vs single %v", i, avg[i], single[i])
		}
	}
	if _, err := AverageOutputBERs(orig, x, nil, 0.03); err == nil {
		t.Error("want error for empty key set")
	}
}

func TestFaninLimit(t *testing.T) {
	c := circuit.New("wide")
	var ins []int
	for i := 0; i < MaxEnumFanin+1; i++ {
		ins = append(ins, c.AddInput(""))
	}
	g := c.AddGate(circuit.And, "g", ins...)
	c.AddOutput(g, "")
	x := make([]bool, MaxEnumFanin+1)
	if _, err := OutputBERs(c, x, nil, 0.1); err == nil {
		t.Error("want error for fanin beyond enumeration limit")
	}
}

func TestHighBEROutputsExist(t *testing.T) {
	// §IV-A/IV-C: outputs can have BER > 0.5 (e.g. an inverter chain
	// where the deterministic value is re-inverted by dominant error
	// paths is hard to build; instead: NOT driven by a wire that is
	// almost always wrong). A 30-deep chain at eps=0.2 approaches 0.5
	// but never exceeds it under independence; BER > 0.5 arises with
	// correlations in real circuits. Here we simply check the deep
	// chain approaches 0.5.
	c := circuit.New("deep")
	w := c.AddInput("a")
	for i := 0; i < 30; i++ {
		w = c.AddGate(circuit.Not, "", w)
	}
	c.AddOutput(w, "")
	e, err := OutputBERs(c, []bool{false}, nil, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if e[0] < 0.45 || e[0] > 0.5 {
		t.Errorf("deep chain BER %v, want ≈0.5", e[0])
	}
}

func BenchmarkOutputBERsScale8(b *testing.B) {
	bm, _ := gen.ByName("c3540")
	c := bm.BuildScaled(8)
	rng := rand.New(rand.NewSource(1))
	x := c.RandomInputs(rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := OutputBERs(c, x, nil, 0.0125); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireErrorProbs measures the package-level convenience path,
// which pays a fresh Estimator (and its scratch) per call.
func BenchmarkWireErrorProbs(b *testing.B) {
	bm, _ := gen.ByName("c3540")
	c := bm.BuildScaled(8)
	rng := rand.New(rand.NewSource(1))
	x := c.RandomInputs(rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := WireErrorProbs(c, x, nil, 0.0125); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireErrorProbsEstimator is the reusable-buffer path the
// attack hot loop uses: one Estimator, zero per-call allocations.
func BenchmarkWireErrorProbsEstimator(b *testing.B) {
	bm, _ := gen.ByName("c3540")
	c := bm.BuildScaled(8)
	rng := rand.New(rand.NewSource(1))
	x := c.RandomInputs(rng)
	est := NewEstimator(c)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := est.WireErrorProbs(x, nil, 0.0125); err != nil {
			b.Fatal(err)
		}
	}
}
