// Package errprop estimates per-output bit error ratios (BERs) of a
// probabilistic circuit for a specific input/key assignment using the
// Boolean Difference Calculus style of probabilistic error propagation
// (Mohyuddin et al.), which §IV-C of the paper relies on.
//
// Model: every logic gate inverts its computed output with probability
// eps, independently. For a concrete input vector the deterministic
// value of every wire is known; the propagated quantity is the
// probability that a wire's actual value differs from its
// deterministic value. Gate inputs are treated as independent (the
// standard approximation — reconvergent fanout correlations are
// ignored, which is why the paper calls the estimate "rough").
package errprop

import (
	"fmt"

	"statsat/internal/circuit"
)

// MaxEnumFanin bounds the exact flip-pattern enumeration per gate.
const MaxEnumFanin = 16

// WireErrorProbs returns, for every gate ID, the probability that the
// wire's value differs from its deterministic value, for input x, key
// k and per-gate error probability eps.
func WireErrorProbs(c *circuit.Circuit, x, k []bool, eps float64) ([]float64, error) {
	if eps < 0 || eps > 1 {
		return nil, fmt.Errorf("errprop: eps %v out of [0,1]", eps)
	}
	vals := c.EvalWires(x, k, nil)
	p := make([]float64, c.NumGates())
	var faninVals [MaxEnumFanin]bool
	var faninErrs [MaxEnumFanin]float64
	var flipped [MaxEnumFanin]bool
	for _, id := range c.MustTopoOrder() {
		g := &c.Gates[id]
		if g.Type.IsInputType() {
			p[id] = 0 // inputs and constants are noise-free
			continue
		}
		n := len(g.Fanin)
		if n > MaxEnumFanin {
			return nil, fmt.Errorf("errprop: gate %d (%s) fanin %d exceeds enumeration limit %d",
				id, g.Name, n, MaxEnumFanin)
		}
		for i, f := range g.Fanin {
			faninVals[i] = vals[f]
			faninErrs[i] = p[f]
		}
		correct := vals[id]
		// q = P(gate function over (possibly flipped) inputs differs
		// from the deterministic output), enumerating flip patterns.
		q := 0.0
		for mask := 0; mask < 1<<uint(n); mask++ {
			prob := 1.0
			for i := 0; i < n; i++ {
				if mask>>uint(i)&1 == 1 {
					prob *= faninErrs[i]
					flipped[i] = !faninVals[i]
				} else {
					prob *= 1 - faninErrs[i]
					flipped[i] = faninVals[i]
				}
			}
			if prob == 0 {
				continue
			}
			if g.Type.Eval(flipped[:n]) != correct {
				q += prob
			}
		}
		// Fold in the gate's own flip: wrong iff exactly one of
		// (inputs made it wrong, gate flipped).
		p[id] = q*(1-eps) + (1-q)*eps
	}
	return p, nil
}

// OutputBERs returns the per-output BER estimate for input x and key k
// under gate error eps (the attacker's E vector of §IV-C for one
// candidate key).
func OutputBERs(c *circuit.Circuit, x, k []bool, eps float64) ([]float64, error) {
	p, err := WireErrorProbs(c, x, k, eps)
	if err != nil {
		return nil, err
	}
	out := make([]float64, c.NumPOs())
	for i, po := range c.POs {
		out[i] = p[po]
	}
	return out, nil
}

// AverageOutputBERs averages OutputBERs over several candidate keys,
// exactly as §IV-C prescribes: the satisfying keys of the previous
// DIPs each yield a BER estimate; their mean is the E used for
// thresholding. Returns an error if keys is empty.
func AverageOutputBERs(c *circuit.Circuit, x []bool, keys [][]bool, eps float64) ([]float64, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("errprop: no candidate keys to average over")
	}
	acc := make([]float64, c.NumPOs())
	for _, k := range keys {
		e, err := OutputBERs(c, x, k, eps)
		if err != nil {
			return nil, err
		}
		for i, v := range e {
			acc[i] += v
		}
	}
	for i := range acc {
		acc[i] /= float64(len(keys))
	}
	return acc, nil
}
