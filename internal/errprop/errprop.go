// Package errprop estimates per-output bit error ratios (BERs) of a
// probabilistic circuit for a specific input/key assignment using the
// Boolean Difference Calculus style of probabilistic error propagation
// (Mohyuddin et al.), which §IV-C of the paper relies on.
//
// Model: every logic gate inverts its computed output with probability
// eps, independently. For a concrete input vector the deterministic
// value of every wire is known; the propagated quantity is the
// probability that a wire's actual value differs from its
// deterministic value. Gate inputs are treated as independent (the
// standard approximation — reconvergent fanout correlations are
// ignored, which is why the paper calls the estimate "rough").
package errprop

import (
	"fmt"

	"statsat/internal/circuit"
)

// MaxEnumFanin bounds the exact flip-pattern enumeration per gate.
const MaxEnumFanin = 16

// estOp is one logic gate of the estimator's flattened schedule: the
// gate type and output ID plus an offset into the shared flat fanin
// array, laid out in topological order so the propagation loop
// streams three dense arrays instead of chasing Gate pointers.
type estOp struct {
	typ  circuit.GateType
	out  int32
	off  int32
	nfan int32
}

// Estimator carries the per-circuit scratch (deterministic wire
// values and per-wire error probabilities) and a flattened gate
// schedule that WireErrorProbs needs, so the per-DIP BER estimation
// loop — N_satis candidate keys per distinguishing input — reuses its
// buffers and topological order instead of rebuilding them for every
// key. An Estimator is bound to one circuit and is NOT safe for
// concurrent use; give each goroutine its own (they are cheap: a few
// NumGates-sized slices).
type Estimator struct {
	c     *circuit.Circuit
	vals  []bool
	p     []float64
	ops   []estOp
	fanin []int32
}

// NewEstimator returns an estimator for c with pre-sized scratch and
// a pre-flattened propagation schedule.
func NewEstimator(c *circuit.Circuit) *Estimator {
	est := &Estimator{
		c:    c,
		vals: make([]bool, c.NumGates()),
		p:    make([]float64, c.NumGates()),
	}
	for _, id := range c.MustTopoOrder() {
		g := &c.Gates[id]
		if g.Type.IsInputType() {
			continue // inputs and constants are noise-free: p stays 0
		}
		est.ops = append(est.ops, estOp{
			typ:  g.Type,
			out:  int32(id),
			off:  int32(len(est.fanin)),
			nfan: int32(len(g.Fanin)),
		})
		for _, f := range g.Fanin {
			est.fanin = append(est.fanin, int32(f))
		}
	}
	return est
}

// WireErrorProbs returns, for every gate ID, the probability that the
// wire's value differs from its deterministic value, for input x, key
// k and per-gate error probability eps.
func WireErrorProbs(c *circuit.Circuit, x, k []bool, eps float64) ([]float64, error) {
	return NewEstimator(c).WireErrorProbs(x, k, eps)
}

// WireErrorProbs is the buffer-reusing form of the package-level
// function: the returned slice is the estimator's scratch, valid only
// until the next call on the same estimator. Copy it to retain it.
func (est *Estimator) WireErrorProbs(x, k []bool, eps float64) ([]float64, error) {
	c := est.c
	if eps < 0 || eps > 1 {
		return nil, fmt.Errorf("errprop: eps %v out of [0,1]", eps)
	}
	vals := c.EvalWires(x, k, est.vals)
	p := est.p[:c.NumGates()]
	var faninVals [MaxEnumFanin]bool
	var faninErrs [MaxEnumFanin]float64
	var flipped [MaxEnumFanin]bool
	for oi := range est.ops {
		op := &est.ops[oi]
		id := int(op.out)
		n := int(op.nfan)
		if n > MaxEnumFanin {
			return nil, fmt.Errorf("errprop: gate %d (%s) fanin %d exceeds enumeration limit %d",
				id, c.Gates[id].Name, n, MaxEnumFanin)
		}
		for i, f := range est.fanin[op.off : op.off+op.nfan] {
			faninVals[i] = vals[f]
			faninErrs[i] = p[f]
		}
		correct := vals[id]
		// q = P(gate function over (possibly flipped) inputs differs
		// from the deterministic output), enumerating flip patterns.
		q := 0.0
		for mask := 0; mask < 1<<uint(n); mask++ {
			prob := 1.0
			for i := 0; i < n; i++ {
				if mask>>uint(i)&1 == 1 {
					prob *= faninErrs[i]
					flipped[i] = !faninVals[i]
				} else {
					prob *= 1 - faninErrs[i]
					flipped[i] = faninVals[i]
				}
			}
			//lint:ignore floateq exact-zero short-circuit: prob is a product that is 0.0 only when a factor is exactly 0, and the branch is a pure skip-work optimisation
			if prob == 0 {
				continue
			}
			if op.typ.Eval(flipped[:n]) != correct {
				q += prob
			}
		}
		// Fold in the gate's own flip: wrong iff exactly one of
		// (inputs made it wrong, gate flipped).
		p[id] = q*(1-eps) + (1-q)*eps
	}
	return p, nil
}

// OutputBERs returns the per-output BER estimate for input x and key k
// under gate error eps (the attacker's E vector of §IV-C for one
// candidate key).
func OutputBERs(c *circuit.Circuit, x, k []bool, eps float64) ([]float64, error) {
	return NewEstimator(c).OutputBERsInto(nil, x, k, eps)
}

// OutputBERsInto computes the per-output BER estimate into dst (which
// backs the result when cap-sufficient; nil allocates).
func (est *Estimator) OutputBERsInto(dst []float64, x, k []bool, eps float64) ([]float64, error) {
	p, err := est.WireErrorProbs(x, k, eps)
	if err != nil {
		return nil, err
	}
	c := est.c
	if cap(dst) >= c.NumPOs() {
		dst = dst[:c.NumPOs()]
	} else {
		dst = make([]float64, c.NumPOs())
	}
	for i, po := range c.POs {
		dst[i] = p[po]
	}
	return dst, nil
}

// AverageOutputBERs averages OutputBERs over several candidate keys,
// exactly as §IV-C prescribes: the satisfying keys of the previous
// DIPs each yield a BER estimate; their mean is the E used for
// thresholding. Returns an error if keys is empty.
func AverageOutputBERs(c *circuit.Circuit, x []bool, keys [][]bool, eps float64) ([]float64, error) {
	return NewEstimator(c).AverageOutputBERs(x, keys, eps)
}

// AverageOutputBERs is the buffer-reusing form: the per-key wire
// probabilities live in the estimator's scratch, so only the returned
// averaged vector is allocated (it is freshly allocated on every call
// because callers retain it per DIP).
func (est *Estimator) AverageOutputBERs(x []bool, keys [][]bool, eps float64) ([]float64, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("errprop: no candidate keys to average over")
	}
	c := est.c
	acc := make([]float64, c.NumPOs())
	for _, k := range keys {
		p, err := est.WireErrorProbs(x, k, eps)
		if err != nil {
			return nil, err
		}
		for i, po := range c.POs {
			acc[i] += p[po]
		}
	}
	for i := range acc {
		acc[i] /= float64(len(keys))
	}
	return acc, nil
}
